// Quickstart: build a small region of IR, parallelize it with DSWP + COCO,
// execute both versions, and compare results and dynamic instruction
// counts.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	gmt "repro"
)

func main() {
	// Build a region: sum = Σ arr[i]*3 + 1 over 256 elements.
	b := gmt.NewBuilder("quickstart")
	arr := b.Array("arr", 256)
	n := b.Param()

	loop := b.Block("loop")
	exit := b.Block("exit")
	i := b.F.NewReg()
	sum := b.F.NewReg()
	b.ConstTo(i, 0)
	b.ConstTo(sum, 0)
	b.Jump(loop)

	b.SetBlock(loop)
	v := b.Load(b.Add(b.AddrOf(arr), i), 0)
	scaled := b.Add(b.Mul(v, b.Const(3)), b.Const(1))
	b.Op2To(sum, gmt.OpAdd, sum, scaled)
	b.Op2To(i, gmt.OpAdd, i, b.Const(1))
	b.Br(b.CmpLT(i, n), loop, exit)

	b.SetBlock(exit)
	b.Ret(sum)
	b.F.SplitCriticalEdges()

	// Inputs: the profile ("train") input and the measured input.
	mkMem := func() []int64 {
		mem := make([]int64, 256)
		for k := range mem {
			mem[k] = int64(k * 7 % 11)
		}
		return mem
	}
	args := []int64{256}

	// The single-threaded golden run.
	want, steps, err := gmt.ExecuteSingle(b.F, args, mkMem())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-threaded: sum=%d in %d instructions\n", want[0], steps)

	// Parallelize with DSWP, with and without COCO.
	for _, useCoco := range []bool{false, true} {
		res, err := gmt.Parallelize(b.F, b.Objects, gmt.Config{
			Scheduler: gmt.SchedulerDSWP,
			COCO:      useCoco,
			Profile:   gmt.ProfileInput{Args: args, Mem: mkMem()},
		})
		if err != nil {
			log.Fatal(err)
		}
		out, err := gmt.Execute(res, args, mkMem())
		if err != nil {
			log.Fatal(err)
		}
		label := "MTCG"
		if useCoco {
			label = "MTCG+COCO"
		}
		fmt.Printf("%-10s sum=%d  computation=%d  communication=%d  queues=%d\n",
			label, out.LiveOuts[0], out.Stats.Compute, out.Stats.Comm(), res.NumQueues)
		if out.LiveOuts[0] != want[0] {
			log.Fatalf("%s produced %d, want %d", label, out.LiveOuts[0], want[0])
		}
	}
}
