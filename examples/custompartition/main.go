// Custompartition: the Figure 2 extension point. The GMT framework accepts
// any partitioner; MTCG generates provably correct multi-threaded code for
// whatever assignment it returns, and COCO optimizes its communication.
// This example plugs in an "odd/even block" partitioner — a deliberately
// naive scheduler — and shows that the generated code is still correct.
//
// Run with:
//
//	go run ./examples/custompartition
package main

import (
	"fmt"
	"log"

	gmt "repro"
	"repro/internal/ir"
	"repro/internal/pdg"
)

// byBlockParity assigns instructions to threads by their basic block's
// parity. It knows nothing about dependences; MTCG inserts whatever
// communication the PDG demands.
type byBlockParity struct{}

func (byBlockParity) Name() string { return "block-parity" }

func (byBlockParity) Partition(f *ir.Function, g *pdg.Graph, prof *ir.Profile, n int) (map[*ir.Instr]int, error) {
	assign := map[*ir.Instr]int{}
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.Jump || in.Op == ir.Nop {
			return
		}
		assign[in] = in.Block().ID % n
	})
	return assign, nil
}

func main() {
	// A hammock-rich kernel: clamp and accumulate.
	b := gmt.NewBuilder("clampsum")
	arr := b.Array("arr", 128)
	loop := b.Block("loop")
	clampHi := b.Block("clampHi")
	setHi := b.Block("setHi")
	acc := b.Block("acc")
	exit := b.Block("exit")

	i := b.F.NewReg()
	sum := b.F.NewReg()
	v := b.F.NewReg()
	b.ConstTo(i, 0)
	b.ConstTo(sum, 0)
	b.Jump(loop)

	b.SetBlock(loop)
	b.LoadTo(v, b.Add(b.AddrOf(arr), i), 0)
	b.Br(b.CmpGT(v, b.Const(50)), clampHi, acc)

	b.SetBlock(clampHi)
	b.Br(b.CmpGT(v, b.Const(90)), setHi, acc)

	b.SetBlock(setHi)
	b.ConstTo(v, 90)
	b.Jump(acc)

	b.SetBlock(acc)
	b.Op2To(sum, gmt.OpAdd, sum, v)
	b.Op2To(i, gmt.OpAdd, i, b.Const(1))
	b.Br(b.CmpLT(i, b.Const(128)), loop, exit)

	b.SetBlock(exit)
	b.Ret(sum)
	b.F.SplitCriticalEdges()

	mkMem := func() []int64 {
		mem := make([]int64, 128)
		for k := range mem {
			mem[k] = int64(k)
		}
		return mem
	}

	want, _, err := gmt.ExecuteSingle(b.F, nil, mkMem())
	if err != nil {
		log.Fatal(err)
	}

	for _, useCoco := range []bool{false, true} {
		res, err := gmt.Parallelize(b.F, b.Objects, gmt.Config{
			Custom:  byBlockParity{},
			COCO:    useCoco,
			Profile: gmt.ProfileInput{Mem: mkMem()},
		})
		if err != nil {
			log.Fatal(err)
		}
		out, err := gmt.Execute(res, nil, mkMem())
		if err != nil {
			log.Fatal(err)
		}
		if out.LiveOuts[0] != want[0] {
			log.Fatalf("result %d, want %d", out.LiveOuts[0], want[0])
		}
		label := "MTCG"
		if useCoco {
			label = "MTCG+COCO"
		}
		fmt.Printf("%-10s result=%d (correct), communication instructions=%d\n",
			label, out.LiveOuts[0], out.Stats.Comm())
	}
	fmt.Println("MTCG generated correct code for an arbitrary custom partition (Figure 2).")
}
