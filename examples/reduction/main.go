// Reduction: the paper's Figure 4 scenario end to end. A first loop
// produces a live-out that a second loop consumes. Plain MTCG communicates
// the value on every iteration of the first loop and replicates the loop in
// the consumer thread; COCO moves the communication to the loop exit,
// deleting the replicated loop entirely.
//
// Run with:
//
//	go run ./examples/reduction
package main

import (
	"fmt"
	"log"

	gmt "repro"
	"repro/internal/ir"
	"repro/internal/pdg"
)

// splitAtLoops is the Figure 4 partition: the producing loop in thread 0,
// the consuming loop in thread 1.
type splitAtLoops struct{ boundary int }

func (splitAtLoops) Name() string { return "figure-4" }

func (p splitAtLoops) Partition(f *ir.Function, g *pdg.Graph, prof *ir.Profile, n int) (map[*ir.Instr]int, error) {
	assign := map[*ir.Instr]int{}
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.Jump || in.Op == ir.Nop {
			return
		}
		if in.Block().ID <= p.boundary {
			assign[in] = 0
		} else {
			assign[in] = 1
		}
	})
	return assign, nil
}

func main() {
	// Loop 1 (1000 iterations) accumulates r; loop 2 (10 iterations)
	// consumes the final r.
	b := gmt.NewBuilder("fig4")
	loop1 := b.Block("loop1")
	mid := b.Block("mid")
	loop2 := b.Block("loop2")
	exit := b.Block("exit")

	r := b.F.NewReg()
	i := b.F.NewReg()
	s := b.F.NewReg()
	j := b.F.NewReg()

	b.ConstTo(r, 0)
	b.ConstTo(i, 0)
	b.Jump(loop1)

	b.SetBlock(loop1)
	b.Op2To(i, gmt.OpAdd, i, b.Const(1))
	b.Op2To(r, gmt.OpAdd, r, i)
	b.Br(b.CmpLT(i, b.Const(1000)), loop1, mid)

	b.SetBlock(mid)
	b.ConstTo(j, 0)
	b.ConstTo(s, 0)
	b.Jump(loop2)

	b.SetBlock(loop2)
	b.Op2To(s, gmt.OpAdd, s, r)
	b.Op2To(j, gmt.OpAdd, j, b.Const(1))
	b.Br(b.CmpLT(j, b.Const(10)), loop2, exit)

	b.SetBlock(exit)
	b.Ret(s)
	b.F.SplitCriticalEdges()

	want, _, err := gmt.ExecuteSingle(b.F, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-threaded result: %d\n", want[0])

	// Split the two loops across threads (the Figure 4 partition) and
	// compare MTCG's communication against COCO's.
	for _, useCoco := range []bool{false, true} {
		res, err := gmt.Parallelize(b.F, b.Objects, gmt.Config{
			Custom:  splitAtLoops{boundary: loop1.ID},
			COCO:    useCoco,
			Profile: gmt.ProfileInput{},
		})
		if err != nil {
			log.Fatal(err)
		}
		out, err := gmt.Execute(res, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		if out.LiveOuts[0] != want[0] {
			log.Fatalf("wrong result %d, want %d", out.LiveOuts[0], want[0])
		}
		label := "MTCG      "
		if useCoco {
			label = "MTCG+COCO "
		}
		fmt.Printf("%s produces=%d consumes=%d duplicated-branch-executions=%d\n",
			label, out.Stats.Produce, out.Stats.Consume, out.Stats.DupBranch)
	}
	fmt.Println("COCO communicates the live-out once, at the loop exit (Figure 4).")
}
