// Pipeline: DSWP on a pointer-chasing traversal — the workload class that
// motivated decoupled software pipelining. A linked list is chased in one
// stage while the per-node computation runs in the other; the simulator
// shows the pipeline overlapping the two.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	gmt "repro"
)

const nodes = 2048

// buildTraversal constructs:
//
//	while ptr != -1 { v = data[ptr]; work = hash-ish(v); total += work; ptr = next[ptr] }
func buildTraversal() (*gmt.Function, []gmt.MemObject) {
	b := gmt.NewBuilder("traverse")
	next := b.Array("next", nodes)
	data := b.Array("data", nodes)

	loop := b.Block("loop")
	exit := b.Block("exit")
	ptr := b.F.NewReg()
	total := b.F.NewReg()
	b.ConstTo(ptr, 0)
	b.ConstTo(total, 0)
	b.Jump(loop)

	b.SetBlock(loop)
	v := b.Load(b.Add(b.AddrOf(data), ptr), 0)
	// A little computation per node (long enough to overlap with the
	// next pointer chase).
	h := b.Xor(b.Mul(v, b.Const(2654435761)), b.Shr(v, b.Const(7)))
	h2 := b.Mul(h, h)
	b.Op2To(total, gmt.OpAdd, total, b.Add(h2, b.And(h, b.Const(1023))))
	b.LoadTo(ptr, b.Add(b.AddrOf(next), ptr), 0)
	b.Br(b.CmpGE(ptr, b.Const(0)), loop, exit)

	b.SetBlock(exit)
	b.Ret(total)
	b.F.SplitCriticalEdges()
	return b.F, b.Objects
}

func mkMem() []int64 {
	mem := make([]int64, 2*nodes)
	// A shuffled singly linked list over all nodes, ending in -1.
	perm := make([]int64, nodes)
	for i := range perm {
		perm[i] = int64(i)
	}
	state := uint64(42)
	for i := nodes - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1
		j := int(state>>33) % (i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	// Chain starting at node 0: next[perm[k]] = perm[k+1] with perm[0]=0.
	for i := range perm {
		if perm[i] == 0 {
			perm[0], perm[i] = perm[i], perm[0]
			break
		}
	}
	for k := 0; k < nodes-1; k++ {
		mem[perm[k]] = perm[k+1]
	}
	mem[perm[nodes-1]] = -1
	for k := 0; k < nodes; k++ {
		mem[nodes+k] = int64(k*k%977 + 1)
	}
	return mem
}

func main() {
	f, objs := buildTraversal()

	want, _, err := gmt.ExecuteSingle(f, nil, mkMem())
	if err != nil {
		log.Fatal(err)
	}

	res, err := gmt.Parallelize(f, objs, gmt.Config{
		Scheduler: gmt.SchedulerDSWP,
		COCO:      true,
		Profile:   gmt.ProfileInput{Mem: mkMem()},
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := gmt.Execute(res, nil, mkMem())
	if err != nil {
		log.Fatal(err)
	}
	if out.LiveOuts[0] != want[0] {
		log.Fatalf("parallel result %d, want %d", out.LiveOuts[0], want[0])
	}
	fmt.Printf("result %d matches single-threaded run\n", out.LiveOuts[0])

	// Show the pipeline stages.
	for t, ft := range res.Threads {
		n := 0
		for _, in := range res.Assign {
			if in == t {
				n++
			}
		}
		fmt.Printf("stage %d (%s): %d instructions assigned\n", t, ft.Name, n)
	}

	// Time both versions on the simulated dual-core machine.
	cfg := gmt.DefaultMachine()
	st, err := gmt.SimulateSingle(f, cfg, nil, mkMem())
	if err != nil {
		log.Fatal(err)
	}
	mt, err := gmt.Simulate(res, cfg, nil, mkMem())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-threaded: %d cycles\npipelined (2 cores): %d cycles\nspeedup: %.2fx\n",
		st, mt, float64(st)/float64(mt))
}
