// Benchmark-regression suite: the BenchmarkSuite* benchmarks cover each
// pipeline stage (PDG construction, min-cut, the full per-workload
// pipelines, the multi-threaded interpreter, the cycle-level simulator)
// and serialize their results — wall-clock ns/op plus each stage's
// deterministic work metrics — to BENCH_pipeline.json whenever benchmarks
// run:
//
//	go test -run '^$' -bench BenchmarkSuite -benchtime 1x .
//
// CI archives the file per commit; the deterministic metrics must not
// drift between commits unless the change intends them to.
package gmt_test

import (
	"flag"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/benchsuite"
	"repro/internal/budget"
	"repro/internal/coco"
	"repro/internal/exp"
	"repro/internal/interp"
	"repro/internal/partition"
	"repro/internal/pdg"
	"repro/internal/sim"
	"repro/internal/workloads"
)

var (
	suiteOnce sync.Once
	suiteRec  *benchsuite.Recorder
)

// allocMark snapshots the runtime's cumulative allocation counters so a
// benchmark can report per-op allocations alongside ns/op. Take the mark
// after setup (where b.ResetTimer goes) and pass it to suiteRecord.
type allocMark struct {
	mallocs, bytes uint64
}

func markAllocs() allocMark {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return allocMark{mallocs: m.Mallocs, bytes: m.TotalAlloc}
}

// suiteRecord appends one BenchmarkSuite result to BENCH_pipeline.json.
// It records only when benchmarks actually run (-bench is set), so plain
// `go test` never touches the file.
func suiteRecord(b *testing.B, mark allocMark, metrics map[string]float64) {
	b.Helper()
	f := flag.Lookup("test.bench")
	if f == nil || f.Value.String() == "" {
		return
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	suiteOnce.Do(func() { suiteRec = benchsuite.NewRecorder("BENCH_pipeline.json") })
	res := benchsuite.Result{
		Name:        b.Name(),
		Iterations:  b.N,
		NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp: float64(m.Mallocs-mark.mallocs) / float64(b.N),
		BytesPerOp:  float64(m.TotalAlloc-mark.bytes) / float64(b.N),
		Metrics:     metrics,
	}
	if err := suiteRec.Record(res); err != nil {
		b.Fatal(err)
	}
}

func suiteWorkload(b *testing.B, name string) *workloads.Workload {
	b.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkSuitePDGBuild(b *testing.B) {
	w := suiteWorkload(b, "ks")
	mark := markAllocs()
	b.ResetTimer()
	var g *pdg.Graph
	for i := 0; i < b.N; i++ {
		g = pdg.Build(w.F, w.Objects)
	}
	suiteRecord(b, mark, map[string]float64{
		"arcs":  float64(g.NumArcs()),
		"nodes": float64(w.F.NumInstrs()),
	})
}

func BenchmarkSuiteMinCutDinic(b *testing.B) {
	mark := markAllocs()
	var flow int64
	for i := 0; i < b.N; i++ {
		g, s, t := cfgShapedGraph(60, rand.New(rand.NewSource(5)))
		flow = g.MaxFlowDinic(s, t)
		g.MinCutSourceSide(s)
	}
	suiteRecord(b, mark, map[string]float64{"max-flow": float64(flow)})
}

func BenchmarkSuiteMinCutEdmondsKarp(b *testing.B) {
	mark := markAllocs()
	var flow int64
	for i := 0; i < b.N; i++ {
		g, s, t := cfgShapedGraph(60, rand.New(rand.NewSource(5)))
		flow = g.MaxFlow(s, t)
		g.MinCutSourceSide(s)
	}
	suiteRecord(b, mark, map[string]float64{"max-flow": float64(flow)})
}

func BenchmarkSuiteMinCutPushRelabel(b *testing.B) {
	mark := markAllocs()
	var flow int64
	for i := 0; i < b.N; i++ {
		g, s, t := cfgShapedGraph(60, rand.New(rand.NewSource(5)))
		flow = g.MaxFlowPushRelabel(s, t)
		g.MinCutSourceSide(s)
	}
	suiteRecord(b, mark, map[string]float64{"max-flow": float64(flow)})
}

// benchSuitePipeline times the full compilation pipeline (profile, PDG,
// partition, MTCG, COCO, queue allocation) for one workload × partitioner.
func benchSuitePipeline(b *testing.B, workload string, part partition.Partitioner) {
	w := suiteWorkload(b, workload)
	mark := markAllocs()
	b.ResetTimer()
	var p *exp.Pipeline
	for i := 0; i < b.N; i++ {
		var err error
		p, err = exp.Build(w, part, coco.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	suiteRecord(b, mark, map[string]float64{
		"coco-instrs":  suiteProgInstrs(p, true),
		"coco-queues":  float64(p.Coco.NumQueues),
		"naive-instrs": suiteProgInstrs(p, false),
		"naive-queues": float64(p.Naive.NumQueues),
	})
}

func suiteProgInstrs(p *exp.Pipeline, coco bool) float64 {
	prog := p.Naive
	if coco {
		prog = p.Coco
	}
	var n int
	for _, f := range prog.Threads {
		n += f.NumInstrs()
	}
	return float64(n)
}

func BenchmarkSuitePipelineKSGremio(b *testing.B) {
	benchSuitePipeline(b, "ks", partition.GREMIO{})
}

func BenchmarkSuitePipelineKSDSWP(b *testing.B) {
	benchSuitePipeline(b, "ks", partition.DSWP{})
}

func BenchmarkSuitePipelineMpeg2encGremio(b *testing.B) {
	benchSuitePipeline(b, "mpeg2enc", partition.GREMIO{})
}

func BenchmarkSuiteMTInterpKS(b *testing.B) {
	w := suiteWorkload(b, "ks")
	p, err := exp.Build(w, partition.DSWP{}, coco.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	mark := markAllocs()
	b.ResetTimer()
	var mt *interp.MTResult
	for i := 0; i < b.N; i++ {
		in := w.Ref()
		mt, err = interp.RunMT(interp.MTConfig{
			Threads: p.Coco.Threads, NumQueues: p.Coco.NumQueues, QueueCap: p.QueueCap,
			Assign: p.Assign, Args: in.Args, Mem: in.Mem,
			MaxSteps: budget.Experiments().MeasureSteps,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	suiteRecord(b, mark, map[string]float64{
		"produce": float64(mt.Stats.Produce),
		"steps":   float64(mt.Steps),
	})
}

func BenchmarkSuiteSimKS(b *testing.B) {
	w := suiteWorkload(b, "ks")
	p, err := exp.Build(w, partition.GREMIO{}, coco.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	mark := markAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		cycles, err = p.MeasureCycles(p.Machine(sim.DefaultConfig()), p.Coco)
		if err != nil {
			b.Fatal(err)
		}
	}
	suiteRecord(b, mark, map[string]float64{"cycles": float64(cycles)})
}
