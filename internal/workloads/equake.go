package workloads

import "repro/internal/ir"

// Equake builds the smvp kernel of 183.equake (63% of execution): a sparse
// matrix-vector product in CSR form — an outer loop over rows and an inner
// loop gathering A[k]*v[col[k]] — the canonical irregular-FP shape DSWP
// pipelines into a traversal thread and a compute thread.
func Equake() *Workload {
	const maxRows = 1024
	const maxNNZ = 16384
	b := ir.NewBuilder("equake")
	rowObj := b.Array("rowstart", maxRows+1)
	colObj := b.Array("colidx", maxNNZ)
	aObj := b.Array("A", maxNNZ)
	vObj := b.Array("v", maxRows)
	wObj := b.Array("w", maxRows)
	rows := b.Param()

	rloop := b.Block("rloop")
	kcheck := b.Block("kcheck")
	kloop := b.Block("kloop")
	rlatch := b.Block("rlatch")
	exit := b.Block("exit")

	f := b.F
	row := f.NewReg()
	k := f.NewReg()
	kend := f.NewReg()
	sum := f.NewReg()
	acc := f.NewReg()

	b.ConstTo(row, 0)
	b.MovTo(acc, b.FConst(0))
	b.Jump(rloop)

	b.SetBlock(rloop)
	b.LoadTo(k, b.Add(b.AddrOf(rowObj), row), 0)
	b.LoadTo(kend, b.Add(b.AddrOf(rowObj), row), 1)
	b.MovTo(sum, b.FConst(0))
	b.Jump(kcheck)

	b.SetBlock(kcheck)
	b.Br(b.CmpLT(k, kend), kloop, rlatch)

	b.SetBlock(kloop)
	col := b.Load(b.Add(b.AddrOf(colObj), k), 0)
	av := b.Load(b.Add(b.AddrOf(aObj), k), 0)
	vv := b.Load(b.Add(b.AddrOf(vObj), col), 0)
	b.Op2To(sum, ir.FAdd, sum, b.FMul(av, vv))
	b.Op2To(k, ir.Add, k, b.Const(1))
	b.Jump(kcheck)

	b.SetBlock(rlatch)
	b.Store(sum, b.Add(b.AddrOf(wObj), row), 0)
	b.Op2To(acc, ir.FAdd, acc, sum)
	b.Op2To(row, ir.Add, row, b.Const(1))
	b.Br(b.CmpLT(row, rows), rloop, exit)

	b.SetBlock(exit)
	checksum := b.FtoI(acc)
	b.Ret(checksum)

	f.SplitCriticalEdges()

	mkInput := func(rows, avgNNZ int64, seed uint64) Input {
		mem := make([]int64, b.MemSize())
		g := newLCG(seed)
		nnz := int64(0)
		for r := int64(0); r < rows; r++ {
			mem[rowObj.Base+r] = nnz
			cnt := 1 + g.intn(2*avgNNZ-1)
			for c := int64(0); c < cnt && nnz < maxNNZ; c++ {
				mem[colObj.Base+nnz] = g.intn(rows)
				mem[aObj.Base+nnz] = fbits(g.f64() - 0.5)
				nnz++
			}
		}
		mem[rowObj.Base+rows] = nnz
		for r := int64(0); r < rows; r++ {
			mem[vObj.Base+r] = fbits(g.f64())
		}
		return Input{Args: []int64{rows}, Mem: mem}
	}
	return &Workload{
		Name: "183.equake", Function: "smvp", Suite: "SPEC-CPU", ExecPct: 63,
		F: f, Objects: b.Objects,
		Train: func() Input { return mkInput(96, 6, 71) },
		Ref:   func() Input { return mkInput(maxRows, 12, 72) },
	}
}
