package workloads

import "repro/internal/ir"

// stepsizeTable is the standard IMA ADPCM quantizer lookup table.
var stepsizeTable = []int64{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

// indexTable is the IMA ADPCM index adjustment table.
var indexTable = []int64{
	-1, -1, -1, -1, 2, 4, 6, 8,
	-1, -1, -1, -1, 2, 4, 6, 8,
}

const adpcmMaxN = 16384

// ADPCMDec builds the adpcm_decoder kernel (MediaBench adpcmdec, 100% of
// execution): a single loop with a chain of data-dependent hammocks
// updating the predictor state, the benchmark shape of Figure 1's left
// columns.
func ADPCMDec() *Workload {
	b := ir.NewBuilder("adpcmdec")
	stepObj := b.Array("stepsizeTable", int64(len(stepsizeTable)))
	idxObj := b.Array("indexTable", int64(len(indexTable)))
	inObj := b.Array("in", adpcmMaxN)
	outObj := b.Array("out", adpcmMaxN)
	n := b.Param()

	loop := b.Block("loop")
	bit4 := b.Block("bit4")
	chk2 := b.Block("chk2")
	bit2 := b.Block("bit2")
	chk1 := b.Block("chk1")
	bit1 := b.Block("bit1")
	sign := b.Block("sign")
	signNeg := b.Block("signNeg")
	signPos := b.Block("signPos")
	clampLo := b.Block("clampLo")
	setLo := b.Block("setLo")
	clampHi := b.Block("clampHi")
	setHi := b.Block("setHi")
	idxUpd := b.Block("idxUpd")
	setIdx0 := b.Block("setIdx0")
	chkIdxHi := b.Block("chkIdxHi")
	setIdx88 := b.Block("setIdx88")
	store := b.Block("store")
	exit := b.Block("exit")

	f := b.F
	i := f.NewReg()
	valpred := f.NewReg()
	index := f.NewReg()
	diffq := f.NewReg()
	code := f.NewReg()
	stepv := f.NewReg()

	b.ConstTo(i, 0)
	b.ConstTo(valpred, 0)
	b.ConstTo(index, 0)
	b.Jump(loop)

	b.SetBlock(loop)
	b.LoadTo(code, b.Add(b.AddrOf(inObj), i), 0)
	b.LoadTo(stepv, b.Add(b.AddrOf(stepObj), index), 0)
	b.Op2To(diffq, ir.Shr, stepv, b.Const(3))
	b.Br(b.And(code, b.Const(4)), bit4, chk2)

	b.SetBlock(bit4)
	b.Op2To(diffq, ir.Add, diffq, stepv)
	b.Jump(chk2)

	b.SetBlock(chk2)
	b.Br(b.And(code, b.Const(2)), bit2, chk1)

	b.SetBlock(bit2)
	b.Op2To(diffq, ir.Add, diffq, b.Shr(stepv, b.Const(1)))
	b.Jump(chk1)

	b.SetBlock(chk1)
	b.Br(b.And(code, b.Const(1)), bit1, sign)

	b.SetBlock(bit1)
	b.Op2To(diffq, ir.Add, diffq, b.Shr(stepv, b.Const(2)))
	b.Jump(sign)

	b.SetBlock(sign)
	b.Br(b.And(code, b.Const(8)), signNeg, signPos)

	b.SetBlock(signNeg)
	b.Op2To(valpred, ir.Sub, valpred, diffq)
	b.Jump(clampLo)

	b.SetBlock(signPos)
	b.Op2To(valpred, ir.Add, valpred, diffq)
	b.Jump(clampLo)

	b.SetBlock(clampLo)
	b.Br(b.CmpLT(valpred, b.Const(-32768)), setLo, clampHi)

	b.SetBlock(setLo)
	b.ConstTo(valpred, -32768)
	b.Jump(idxUpd)

	b.SetBlock(clampHi)
	b.Br(b.CmpGT(valpred, b.Const(32767)), setHi, idxUpd)

	b.SetBlock(setHi)
	b.ConstTo(valpred, 32767)
	b.Jump(idxUpd)

	b.SetBlock(idxUpd)
	delta := b.Load(b.Add(b.AddrOf(idxObj), code), 0)
	b.Op2To(index, ir.Add, index, delta)
	b.Br(b.CmpLT(index, b.Const(0)), setIdx0, chkIdxHi)

	b.SetBlock(setIdx0)
	b.ConstTo(index, 0)
	b.Jump(store)

	b.SetBlock(chkIdxHi)
	b.Br(b.CmpGT(index, b.Const(88)), setIdx88, store)

	b.SetBlock(setIdx88)
	b.ConstTo(index, 88)
	b.Jump(store)

	b.SetBlock(store)
	b.Store(valpred, b.Add(b.AddrOf(outObj), i), 0)
	b.Op2To(i, ir.Add, i, b.Const(1))
	b.Br(b.CmpLT(i, n), loop, exit)

	b.SetBlock(exit)
	b.Ret(valpred, index)

	f.SplitCriticalEdges()

	mkInput := func(n int64, seed uint64) Input {
		mem := make([]int64, b.MemSize())
		copy(mem[stepObj.Base:], stepsizeTable)
		copy(mem[idxObj.Base:], indexTable)
		g := newLCG(seed)
		for k := int64(0); k < n; k++ {
			mem[inObj.Base+k] = g.intn(16)
		}
		return Input{Args: []int64{n}, Mem: mem}
	}
	return &Workload{
		Name: "adpcmdec", Function: "adpcm_decoder", Suite: "MediaBench", ExecPct: 100,
		F: f, Objects: b.Objects,
		Train: func() Input { return mkInput(1024, 11) },
		Ref:   func() Input { return mkInput(adpcmMaxN, 12) },
	}
}

// ADPCMEnc builds the adpcm_coder kernel (MediaBench adpcmenc, 100% of
// execution): quantization of the prediction error with successive
// compare-subtract hammocks, followed by the same predictor update as the
// decoder.
func ADPCMEnc() *Workload {
	b := ir.NewBuilder("adpcmenc")
	stepObj := b.Array("stepsizeTable", int64(len(stepsizeTable)))
	idxObj := b.Array("indexTable", int64(len(indexTable)))
	inObj := b.Array("in", adpcmMaxN)
	outObj := b.Array("out", adpcmMaxN)
	n := b.Param()

	loop := b.Block("loop")
	negD := b.Block("negDelta")
	posD := b.Block("posDelta")
	q4 := b.Block("q4")
	q4hit := b.Block("q4hit")
	q2 := b.Block("q2")
	q2hit := b.Block("q2hit")
	q1 := b.Block("q1")
	q1hit := b.Block("q1hit")
	recon := b.Block("recon")
	reconNeg := b.Block("reconNeg")
	reconPos := b.Block("reconPos")
	clampLo := b.Block("clampLo")
	setLo := b.Block("setLo")
	clampHi := b.Block("clampHi")
	setHi := b.Block("setHi")
	idxUpd := b.Block("idxUpd")
	setIdx0 := b.Block("setIdx0")
	chkIdxHi := b.Block("chkIdxHi")
	setIdx88 := b.Block("setIdx88")
	store := b.Block("store")
	exit := b.Block("exit")

	f := b.F
	i := f.NewReg()
	valpred := f.NewReg()
	index := f.NewReg()
	stepv := f.NewReg()
	delta := f.NewReg()
	sign := f.NewReg()
	code := f.NewReg()
	tmp := f.NewReg()
	diffq := f.NewReg()

	b.ConstTo(i, 0)
	b.ConstTo(valpred, 0)
	b.ConstTo(index, 0)
	b.Jump(loop)

	b.SetBlock(loop)
	val := b.Load(b.Add(b.AddrOf(inObj), i), 0)
	b.LoadTo(stepv, b.Add(b.AddrOf(stepObj), index), 0)
	b.Op2To(delta, ir.Sub, val, valpred)
	b.Br(b.CmpLT(delta, b.Const(0)), negD, posD)

	b.SetBlock(negD)
	b.ConstTo(sign, 8)
	b.Op2To(delta, ir.Sub, b.Const(0), delta)
	b.Jump(q4)

	b.SetBlock(posD)
	b.ConstTo(sign, 0)
	b.Jump(q4)

	b.SetBlock(q4)
	b.ConstTo(code, 0)
	b.MovTo(tmp, stepv)
	b.Br(b.CmpGE(delta, tmp), q4hit, q2)

	b.SetBlock(q4hit)
	b.ConstTo(code, 4)
	b.Op2To(delta, ir.Sub, delta, tmp)
	b.Jump(q2)

	b.SetBlock(q2)
	b.Op2To(tmp, ir.Shr, tmp, b.Const(1))
	b.Br(b.CmpGE(delta, tmp), q2hit, q1)

	b.SetBlock(q2hit)
	b.Op2To(code, ir.Or, code, b.Const(2))
	b.Op2To(delta, ir.Sub, delta, tmp)
	b.Jump(q1)

	b.SetBlock(q1)
	b.Op2To(tmp, ir.Shr, tmp, b.Const(1))
	b.Br(b.CmpGE(delta, tmp), q1hit, recon)

	b.SetBlock(q1hit)
	b.Op2To(code, ir.Or, code, b.Const(1))
	b.Jump(recon)

	// Reconstruct the decoder's predictor so encoder and decoder stay in
	// sync (the original computes vpdiff incrementally; the dependence
	// shape is the same).
	b.SetBlock(recon)
	b.Op2To(diffq, ir.Shr, stepv, b.Const(3))
	t4 := b.And(code, b.Const(4))
	d4 := b.Mul(t4, b.Shr(stepv, b.Const(2))) // (code&4)/4*step == bit ? step : 0
	b.Op2To(diffq, ir.Add, diffq, d4)
	t2 := b.Shr(b.And(code, b.Const(2)), b.Const(1))
	d2 := b.Mul(t2, b.Shr(stepv, b.Const(1)))
	b.Op2To(diffq, ir.Add, diffq, d2)
	t1 := b.And(code, b.Const(1))
	d1 := b.Mul(t1, b.Shr(stepv, b.Const(2)))
	b.Op2To(diffq, ir.Add, diffq, d1)
	b.Br(sign, reconNeg, reconPos)

	b.SetBlock(reconNeg)
	b.Op2To(valpred, ir.Sub, valpred, diffq)
	b.Jump(clampLo)

	b.SetBlock(reconPos)
	b.Op2To(valpred, ir.Add, valpred, diffq)
	b.Jump(clampLo)

	b.SetBlock(clampLo)
	b.Br(b.CmpLT(valpred, b.Const(-32768)), setLo, clampHi)

	b.SetBlock(setLo)
	b.ConstTo(valpred, -32768)
	b.Jump(idxUpd)

	b.SetBlock(clampHi)
	b.Br(b.CmpGT(valpred, b.Const(32767)), setHi, idxUpd)

	b.SetBlock(setHi)
	b.ConstTo(valpred, 32767)
	b.Jump(idxUpd)

	b.SetBlock(idxUpd)
	adj := b.Load(b.Add(b.AddrOf(idxObj), code), 0)
	b.Op2To(index, ir.Add, index, adj)
	b.Br(b.CmpLT(index, b.Const(0)), setIdx0, chkIdxHi)

	b.SetBlock(setIdx0)
	b.ConstTo(index, 0)
	b.Jump(store)

	b.SetBlock(chkIdxHi)
	b.Br(b.CmpGT(index, b.Const(88)), setIdx88, store)

	b.SetBlock(setIdx88)
	b.ConstTo(index, 88)
	b.Jump(store)

	b.SetBlock(store)
	outv := b.Or(code, sign)
	b.Store(outv, b.Add(b.AddrOf(outObj), i), 0)
	b.Op2To(i, ir.Add, i, b.Const(1))
	b.Br(b.CmpLT(i, n), loop, exit)

	b.SetBlock(exit)
	b.Ret(valpred, index)

	f.SplitCriticalEdges()

	mkInput := func(n int64, seed uint64) Input {
		mem := make([]int64, b.MemSize())
		copy(mem[stepObj.Base:], stepsizeTable)
		copy(mem[idxObj.Base:], indexTable)
		g := newLCG(seed)
		cur := int64(0)
		for k := int64(0); k < n; k++ {
			cur += g.intn(2001) - 1000 // a wandering waveform
			if cur > 32767 {
				cur = 32767
			}
			if cur < -32768 {
				cur = -32768
			}
			mem[inObj.Base+k] = cur
		}
		return Input{Args: []int64{n}, Mem: mem}
	}
	return &Workload{
		Name: "adpcmenc", Function: "adpcm_coder", Suite: "MediaBench", ExecPct: 100,
		F: f, Objects: b.Objects,
		Train: func() Input { return mkInput(1024, 21) },
		Ref:   func() Input { return mkInput(adpcmMaxN, 22) },
	}
}
