package workloads

import "repro/internal/ir"

// KS builds the FindMaxGpAndSwap kernel of the Pointer-Intensive suite's ks
// (Kernighan–Schweikert graph partitioner, 100% of execution): repeated
// passes of a doubly nested max-gain reduction followed by a swap. The
// live-out accumulation consumed after the nest is the structure behind the
// paper's largest COCO win (73.7% communication reduction, the Figure 4
// pattern).
func KS() *Workload {
	const maxN = 40 // group size; cost matrix is maxN x maxN
	b := ir.NewBuilder("ks")
	dObj := b.Array("D", 2*maxN)
	costObj := b.Array("cost", maxN*maxN)
	n := b.Param() // elements per group
	passes := b.Param()

	outer := b.Block("outer")
	iloop := b.Block("iloop")
	jloop := b.Block("jloop")
	better := b.Block("better")
	jlatch := b.Block("jlatch")
	ilatch := b.Block("ilatch")
	swap := b.Block("swap")
	exit := b.Block("exit")

	f := b.F
	pass := f.NewReg()
	i := f.NewReg()
	j := f.NewReg()
	maxGain := f.NewReg()
	bi := f.NewReg()
	bj := f.NewReg()
	total := f.NewReg()
	di := f.NewReg()

	b.ConstTo(pass, 0)
	b.ConstTo(total, 0)
	b.Jump(outer)

	b.SetBlock(outer)
	b.ConstTo(maxGain, -1<<40)
	b.ConstTo(bi, 0)
	b.ConstTo(bj, 0)
	b.ConstTo(i, 0)
	b.Jump(iloop)

	b.SetBlock(iloop)
	b.LoadTo(di, b.Add(b.AddrOf(dObj), i), 0)
	b.ConstTo(j, 0)
	b.Jump(jloop)

	b.SetBlock(jloop)
	dj := b.Load(b.Add(b.Add(b.AddrOf(dObj), n), j), 0)
	row := b.Mul(i, n)
	cij := b.Load(b.Add(b.Add(b.AddrOf(costObj), row), j), 0)
	gain := b.Sub(b.Add(di, dj), b.Shl(cij, b.Const(1)))
	b.Br(b.CmpGT(gain, maxGain), better, jlatch)

	b.SetBlock(better)
	b.MovTo(maxGain, gain)
	b.MovTo(bi, i)
	b.MovTo(bj, j)
	b.Jump(jlatch)

	b.SetBlock(jlatch)
	b.Op2To(j, ir.Add, j, b.Const(1))
	b.Br(b.CmpLT(j, n), jloop, ilatch)

	b.SetBlock(ilatch)
	b.Op2To(i, ir.Add, i, b.Const(1))
	b.Br(b.CmpLT(i, n), iloop, swap)

	// Swap the chosen pair's D entries and decay them so later passes
	// pick different pairs (the original updates D values from the cost
	// matrix; the dependence shape — reduction result feeding stores and
	// the accumulated total — is preserved).
	b.SetBlock(swap)
	pa := b.Add(b.AddrOf(dObj), bi)
	pb := b.Add(b.Add(b.AddrOf(dObj), n), bj)
	va := b.Load(pa, 0)
	vb := b.Load(pb, 0)
	b.Store(b.Shr(vb, b.Const(1)), pa, 0)
	b.Store(b.Shr(va, b.Const(1)), pb, 0)
	b.Op2To(total, ir.Add, total, maxGain)
	b.Op2To(pass, ir.Add, pass, b.Const(1))
	b.Br(b.CmpLT(pass, passes), outer, exit)

	b.SetBlock(exit)
	b.Ret(total)

	f.SplitCriticalEdges()

	mkInput := func(n, passes int64, seed uint64) Input {
		mem := make([]int64, b.MemSize())
		g := newLCG(seed)
		for k := int64(0); k < 2*maxN; k++ {
			mem[dObj.Base+k] = g.intn(1000)
		}
		for k := int64(0); k < maxN*maxN; k++ {
			mem[costObj.Base+k] = g.intn(100)
		}
		return Input{Args: []int64{n, passes}, Mem: mem}
	}
	return &Workload{
		Name: "ks", Function: "FindMaxGpAndSwap", Suite: "Pointer-Intensive", ExecPct: 100,
		F: f, Objects: b.Objects,
		Train: func() Input { return mkInput(12, 6, 31) },
		Ref:   func() Input { return mkInput(40, 24, 32) },
	}
}
