package workloads_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/workloads"
)

// run executes a workload on its reference input.
func run(t *testing.T, name string) (*workloads.Workload, *interp.Result) {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	in := w.Ref()
	res, err := interp.Run(w.F, in.Args, in.Mem, 50_000_000)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return w, res
}

func TestADPCMDecoderSemantics(t *testing.T) {
	w, res := run(t, "adpcmdec")
	// Live-outs: predictor in [-32768, 32767], index in [0, 88].
	if v := res.LiveOuts[0]; v < -32768 || v > 32767 {
		t.Errorf("valpred = %d, outside 16-bit range", v)
	}
	if idx := res.LiveOuts[1]; idx < 0 || idx > 88 {
		t.Errorf("index = %d, outside [0,88]", idx)
	}
	// Every output sample must also be clamped.
	var out ir.MemObject
	for _, o := range w.Objects {
		if o.Name == "out" {
			out = o
		}
	}
	for a := out.Base; a < out.Base+out.Size; a++ {
		if v := res.Mem[a]; v < -32768 || v > 32767 {
			t.Fatalf("out[%d] = %d, outside 16-bit range", a-out.Base, v)
		}
	}
}

func TestADPCMEncoderOutputsAreCodes(t *testing.T) {
	w, res := run(t, "adpcmenc")
	var out ir.MemObject
	for _, o := range w.Objects {
		if o.Name == "out" {
			out = o
		}
	}
	n := w.Ref().Args[0]
	for a := out.Base; a < out.Base+n; a++ {
		if v := res.Mem[a]; v < 0 || v > 15 {
			t.Fatalf("code out[%d] = %d, outside 4-bit range", a-out.Base, v)
		}
	}
}

func TestKSGainIsFinite(t *testing.T) {
	_, res := run(t, "ks")
	total := res.LiveOuts[0]
	if total <= -(1 << 39) {
		t.Errorf("ks total gain %d looks like the -inf sentinel escaped", total)
	}
}

func TestMPEG2SADNonNegative(t *testing.T) {
	_, res := run(t, "mpeg2enc")
	if res.LiveOuts[0] < 0 {
		t.Errorf("total SAD = %d, must be non-negative", res.LiveOuts[0])
	}
}

func TestMesaWritesBounded(t *testing.T) {
	w, res := run(t, "177.mesa")
	in := w.Ref()
	maxWrites := in.Args[0] * in.Args[1] // spans * width
	if res.LiveOuts[0] < 0 || res.LiveOuts[0] > maxWrites {
		t.Errorf("z-pass writes = %d, outside [0,%d]", res.LiveOuts[0], maxWrites)
	}
	if res.LiveOuts[0] == 0 {
		t.Error("no pixel ever passed the z test; inputs degenerate")
	}
}

func TestMCFPotentialsPropagate(t *testing.T) {
	w, res := run(t, "181.mcf")
	// Every node's potential must have been written (root starts at
	// 100000 and costs are < 500, so potentials stay within a band).
	var pot ir.MemObject
	for _, o := range w.Objects {
		if o.Name == "potential" {
			pot = o
		}
	}
	n := w.Ref().Args[0]
	for k := int64(1); k < n; k++ {
		v := res.Mem[pot.Base+k]
		if v < 100000-500*int64(n) || v > 100000+500*int64(n) {
			t.Fatalf("potential[%d] = %d, outside plausible band", k, v)
		}
	}
}

func TestEquakeOutputVectorWritten(t *testing.T) {
	w, res := run(t, "183.equake")
	var wObj ir.MemObject
	for _, o := range w.Objects {
		if o.Name == "w" {
			wObj = o
		}
	}
	rows := w.Ref().Args[0]
	nonzero := 0
	for k := int64(0); k < rows; k++ {
		if res.Mem[wObj.Base+k] != 0 {
			nonzero++
		}
	}
	if nonzero < int(rows)/2 {
		t.Errorf("only %d of %d result rows nonzero", nonzero, rows)
	}
}

func TestAMMPHitsWithinCutoff(t *testing.T) {
	w, res := run(t, "188.ammp")
	hits := res.LiveOuts[1]
	pairs := w.Ref().Args[0]
	if hits <= 0 || hits > pairs {
		t.Errorf("cutoff hits = %d of %d pairs", hits, pairs)
	}
}

func TestTwolfCostPositive(t *testing.T) {
	_, res := run(t, "300.twolf")
	if res.LiveOuts[0] <= 0 {
		t.Errorf("bounding-box cost = %d, want positive", res.LiveOuts[0])
	}
}

func TestSjengScoreComponents(t *testing.T) {
	_, res := run(t, "458.sjeng")
	material := res.LiveOuts[1]
	// ~40% of 64*1024 squares hold pieces worth 100..900.
	if material < 100*1000 {
		t.Errorf("material = %d, implausibly low", material)
	}
}

func TestGromacsEnergyFinite(t *testing.T) {
	_, res := run(t, "435.gromacs")
	e := res.LiveOuts[0]
	// Scaled by 1e6; particles are at least distance ~0 apart but
	// separated coordinates keep it bounded.
	if e == 0 {
		t.Error("total energy is exactly zero; inputs degenerate")
	}
}
