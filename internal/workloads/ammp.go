package workloads

import "repro/internal/ir"

// AMMP builds the mm_fv_update_nonbon kernel of 188.ammp (79% of
// execution): the non-bonded force update over atom pairs — distance
// computation, a cutoff hammock, and reciprocal-distance force
// accumulation with scattered read-modify-write stores.
func AMMP() *Workload {
	const maxAtoms = 512
	const maxPairs = 16384
	b := ir.NewBuilder("ammp")
	xObj := b.Array("x", maxAtoms)
	yObj := b.Array("y", maxAtoms)
	zObj := b.Array("z", maxAtoms)
	qObj := b.Array("q", maxAtoms)
	fxObj := b.Array("fx", maxAtoms)
	piObj := b.Array("pi", maxPairs)
	pjObj := b.Array("pj", maxPairs)
	npairs := b.Param()
	cutoff := b.Param() // float64 bits

	loop := b.Block("loop")
	inRange := b.Block("inRange")
	latch := b.Block("latch")
	exit := b.Block("exit")

	f := b.F
	p := f.NewReg()
	energy := f.NewReg()
	hits := f.NewReg()

	b.ConstTo(p, 0)
	b.MovTo(energy, b.FConst(0))
	b.ConstTo(hits, 0)
	b.Jump(loop)

	b.SetBlock(loop)
	ai := b.Load(b.Add(b.AddrOf(piObj), p), 0)
	aj := b.Load(b.Add(b.AddrOf(pjObj), p), 0)
	dx := b.FSub(b.Load(b.Add(b.AddrOf(xObj), ai), 0), b.Load(b.Add(b.AddrOf(xObj), aj), 0))
	dy := b.FSub(b.Load(b.Add(b.AddrOf(yObj), ai), 0), b.Load(b.Add(b.AddrOf(yObj), aj), 0))
	dz := b.FSub(b.Load(b.Add(b.AddrOf(zObj), ai), 0), b.Load(b.Add(b.AddrOf(zObj), aj), 0))
	r2 := b.FAdd(b.FAdd(b.FMul(dx, dx), b.FMul(dy, dy)), b.FMul(dz, dz))
	b.Br(b.FCmpLT(r2, cutoff), inRange, latch)

	b.SetBlock(inRange)
	inv := b.FDiv(b.FConst(1.0), r2)
	qq := b.FMul(b.Load(b.Add(b.AddrOf(qObj), ai), 0), b.Load(b.Add(b.AddrOf(qObj), aj), 0))
	fscal := b.FMul(qq, inv)
	b.Op2To(energy, ir.FAdd, energy, fscal)
	// Scatter the force to both atoms (read-modify-write).
	fi := b.Load(b.Add(b.AddrOf(fxObj), ai), 0)
	b.Store(b.FAdd(fi, b.FMul(fscal, dx)), b.Add(b.AddrOf(fxObj), ai), 0)
	fj := b.Load(b.Add(b.AddrOf(fxObj), aj), 0)
	b.Store(b.FSub(fj, b.FMul(fscal, dx)), b.Add(b.AddrOf(fxObj), aj), 0)
	b.Op2To(hits, ir.Add, hits, b.Const(1))
	b.Jump(latch)

	b.SetBlock(latch)
	b.Op2To(p, ir.Add, p, b.Const(1))
	b.Br(b.CmpLT(p, npairs), loop, exit)

	b.SetBlock(exit)
	e := b.FtoI(b.FMul(energy, b.FConst(1000.0)))
	b.Ret(e, hits)

	f.SplitCriticalEdges()

	mkInput := func(npairs int64, seed uint64) Input {
		mem := make([]int64, b.MemSize())
		g := newLCG(seed)
		for a := int64(0); a < maxAtoms; a++ {
			mem[xObj.Base+a] = fbits(10 * g.f64())
			mem[yObj.Base+a] = fbits(10 * g.f64())
			mem[zObj.Base+a] = fbits(10 * g.f64())
			mem[qObj.Base+a] = fbits(g.f64() - 0.5)
		}
		for k := int64(0); k < npairs; k++ {
			mem[piObj.Base+k] = g.intn(maxAtoms)
			mem[pjObj.Base+k] = g.intn(maxAtoms)
		}
		return Input{Args: []int64{npairs, fbits(25.0)}, Mem: mem}
	}
	return &Workload{
		Name: "188.ammp", Function: "mm_fv_update_nonbon", Suite: "SPEC-CPU", ExecPct: 79,
		F: f, Objects: b.Objects,
		Train: func() Input { return mkInput(1024, 81) },
		Ref:   func() Input { return mkInput(maxPairs, 82) },
	}
}
