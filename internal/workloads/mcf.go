package workloads

import "repro/internal/ir"

// MCF builds the refresh_potential kernel of 181.mcf (32% of execution):
// a pass over the spanning-tree nodes updating each node's potential from
// its parent's — pointer-chasing loads (parent index, then the parent's
// potential) with an orientation hammock, the classic mcf dependence shape.
func MCF() *Workload {
	const maxNodes = 8192
	b := ir.NewBuilder("mcf")
	parentObj := b.Array("parent", maxNodes)
	orientObj := b.Array("orientation", maxNodes)
	costObj := b.Array("cost", maxNodes)
	potObj := b.Array("potential", maxNodes)
	n := b.Param()

	loop := b.Block("loop")
	up := b.Block("up")
	down := b.Block("down")
	latch := b.Block("latch")
	exit := b.Block("exit")

	f := b.F
	i := f.NewReg()
	checksum := f.NewReg()
	pot := f.NewReg()

	b.ConstTo(i, 1) // node 0 is the root
	b.ConstTo(checksum, 0)
	b.Jump(loop)

	b.SetBlock(loop)
	parent := b.Load(b.Add(b.AddrOf(parentObj), i), 0)
	ppot := b.Load(b.Add(b.AddrOf(potObj), parent), 0)
	cost := b.Load(b.Add(b.AddrOf(costObj), i), 0)
	orient := b.Load(b.Add(b.AddrOf(orientObj), i), 0)
	b.Br(orient, up, down)

	b.SetBlock(up)
	b.Op2To(pot, ir.Add, ppot, cost)
	b.Jump(latch)

	b.SetBlock(down)
	b.Op2To(pot, ir.Sub, ppot, cost)
	b.Jump(latch)

	b.SetBlock(latch)
	b.Store(pot, b.Add(b.AddrOf(potObj), i), 0)
	b.Op2To(checksum, ir.Add, checksum, pot)
	b.Op2To(i, ir.Add, i, b.Const(1))
	b.Br(b.CmpLT(i, n), loop, exit)

	b.SetBlock(exit)
	b.Ret(checksum)

	f.SplitCriticalEdges()

	mkInput := func(n int64, seed uint64) Input {
		mem := make([]int64, b.MemSize())
		g := newLCG(seed)
		mem[potObj.Base] = 100000
		for k := int64(1); k < n; k++ {
			mem[parentObj.Base+k] = g.intn(k) // tree: parent precedes child
			mem[orientObj.Base+k] = g.intn(2)
			mem[costObj.Base+k] = g.intn(500)
		}
		return Input{Args: []int64{n}, Mem: mem}
	}
	return &Workload{
		Name: "181.mcf", Function: "refresh_potential", Suite: "SPEC-CPU", ExecPct: 32,
		F: f, Objects: b.Objects,
		Train: func() Input { return mkInput(512, 61) },
		Ref:   func() Input { return mkInput(maxNodes, 62) },
	}
}
