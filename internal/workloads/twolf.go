package workloads

import "repro/internal/ir"

// Twolf builds the new_dbox_a kernel of 300.twolf (30% of execution):
// per-net bounding-box cost evaluation — an outer loop over nets and an
// inner loop over terminals with min/max hammocks on both coordinates,
// pure integer control-heavy code.
func Twolf() *Workload {
	const maxNets = 512
	const maxTerms = 8192
	b := ir.NewBuilder("twolf")
	netStartObj := b.Array("netstart", maxNets+1)
	termCellObj := b.Array("termcell", maxTerms)
	xposObj := b.Array("xpos", 1024)
	yposObj := b.Array("ypos", 1024)
	xoffObj := b.Array("xoff", maxTerms)
	yoffObj := b.Array("yoff", maxTerms)
	nets := b.Param()

	nloop := b.Block("nloop")
	tcheck := b.Block("tcheck")
	tloop := b.Block("tloop")
	xlo := b.Block("xlo")
	xhiChk := b.Block("xhiChk")
	xhi := b.Block("xhi")
	ylo := b.Block("ylo")
	yloSet := b.Block("yloSet")
	yhiChk := b.Block("yhiChk")
	yhi := b.Block("yhi")
	tlatch := b.Block("tlatch")
	nlatch := b.Block("nlatch")
	exit := b.Block("exit")

	f := b.F
	net := f.NewReg()
	t := f.NewReg()
	tend := f.NewReg()
	xmin := f.NewReg()
	xmax := f.NewReg()
	ymin := f.NewReg()
	ymax := f.NewReg()
	xv := f.NewReg()
	yv := f.NewReg()
	cost := f.NewReg()

	b.ConstTo(net, 0)
	b.ConstTo(cost, 0)
	b.Jump(nloop)

	b.SetBlock(nloop)
	b.LoadTo(t, b.Add(b.AddrOf(netStartObj), net), 0)
	b.LoadTo(tend, b.Add(b.AddrOf(netStartObj), net), 1)
	b.ConstTo(xmin, 1<<30)
	b.ConstTo(xmax, -(1 << 30))
	b.ConstTo(ymin, 1<<30)
	b.ConstTo(ymax, -(1 << 30))
	b.Jump(tcheck)

	b.SetBlock(tcheck)
	b.Br(b.CmpLT(t, tend), tloop, nlatch)

	b.SetBlock(tloop)
	cell := b.Load(b.Add(b.AddrOf(termCellObj), t), 0)
	b.Op2To(xv, ir.Add,
		b.Load(b.Add(b.AddrOf(xposObj), cell), 0),
		b.Load(b.Add(b.AddrOf(xoffObj), t), 0))
	b.Op2To(yv, ir.Add,
		b.Load(b.Add(b.AddrOf(yposObj), cell), 0),
		b.Load(b.Add(b.AddrOf(yoffObj), t), 0))
	b.Br(b.CmpLT(xv, xmin), xlo, xhiChk)

	b.SetBlock(xlo)
	b.MovTo(xmin, xv)
	b.Jump(xhiChk)

	b.SetBlock(xhiChk)
	b.Br(b.CmpGT(xv, xmax), xhi, ylo)

	b.SetBlock(xhi)
	b.MovTo(xmax, xv)
	b.Jump(ylo)

	b.SetBlock(ylo)
	b.Br(b.CmpLT(yv, ymin), yloSet, yhiChk)

	b.SetBlock(yloSet)
	b.MovTo(ymin, yv)
	b.Jump(yhiChk)

	b.SetBlock(yhiChk)
	b.Br(b.CmpGT(yv, ymax), yhi, tlatch)

	b.SetBlock(yhi)
	b.MovTo(ymax, yv)
	b.Jump(tlatch)

	b.SetBlock(tlatch)
	b.Op2To(t, ir.Add, t, b.Const(1))
	b.Jump(tcheck)

	b.SetBlock(nlatch)
	span := b.Add(b.Sub(xmax, xmin), b.Sub(ymax, ymin))
	b.Op2To(cost, ir.Add, cost, span)
	b.Op2To(net, ir.Add, net, b.Const(1))
	b.Br(b.CmpLT(net, nets), nloop, exit)

	b.SetBlock(exit)
	b.Ret(cost)

	f.SplitCriticalEdges()

	mkInput := func(nets, termsPerNet int64, seed uint64) Input {
		mem := make([]int64, b.MemSize())
		g := newLCG(seed)
		pos := int64(0)
		for nt := int64(0); nt < nets; nt++ {
			mem[netStartObj.Base+nt] = pos
			cnt := 2 + g.intn(termsPerNet)
			for c := int64(0); c < cnt && pos < maxTerms; c++ {
				mem[termCellObj.Base+pos] = g.intn(1024)
				mem[xoffObj.Base+pos] = g.intn(50) - 25
				mem[yoffObj.Base+pos] = g.intn(50) - 25
				pos++
			}
		}
		mem[netStartObj.Base+nets] = pos
		for c := int64(0); c < 1024; c++ {
			mem[xposObj.Base+c] = g.intn(10000)
			mem[yposObj.Base+c] = g.intn(10000)
		}
		return Input{Args: []int64{nets}, Mem: mem}
	}
	return &Workload{
		Name: "300.twolf", Function: "new_dbox_a", Suite: "SPEC-CPU", ExecPct: 30,
		F: f, Objects: b.Objects,
		Train: func() Input { return mkInput(48, 6, 91) },
		Ref:   func() Input { return mkInput(maxNets, 14, 92) },
	}
}
