package workloads

import "repro/internal/ir"

// Gromacs builds the inl1130 kernel of 435.gromacs (75% of execution): the
// water-water non-bonded inner loop — neighbor-list gather, reciprocal
// square root, Lennard-Jones + Coulomb force evaluation, and force
// accumulation into loop-carried FP registers. Long FP dependence chains
// make it the highest-speedup DSWP benchmark in Figure 8 (2.44x).
func Gromacs() *Workload {
	const maxAtoms = 1024
	const maxNeighbors = 12288
	b := ir.NewBuilder("gromacs")
	xObj := b.Array("x", maxAtoms)
	yObj := b.Array("y", maxAtoms)
	zObj := b.Array("z", maxAtoms)
	qObj := b.Array("q", maxAtoms)
	jidxObj := b.Array("jidx", maxNeighbors)
	fObj := b.Array("faction", maxAtoms)
	nn := b.Param()
	ix := b.Param() // i-particle coordinates (float bits)
	iy := b.Param()
	iz := b.Param()

	loop := b.Block("loop")
	exit := b.Block("exit")

	f := b.F
	k := f.NewReg()
	fxAcc := f.NewReg()
	vtot := f.NewReg()

	b.ConstTo(k, 0)
	b.MovTo(fxAcc, b.FConst(0))
	b.MovTo(vtot, b.FConst(0))
	b.Jump(loop)

	b.SetBlock(loop)
	j := b.Load(b.Add(b.AddrOf(jidxObj), k), 0)
	dx := b.FSub(ix, b.Load(b.Add(b.AddrOf(xObj), j), 0))
	dy := b.FSub(iy, b.Load(b.Add(b.AddrOf(yObj), j), 0))
	dz := b.FSub(iz, b.Load(b.Add(b.AddrOf(zObj), j), 0))
	rsq := b.FAdd(b.FAdd(b.FMul(dx, dx), b.FMul(dy, dy)), b.FMul(dz, dz))
	rinv := b.FDiv(b.FConst(1.0), b.Op1(ir.FSqrt, rsq))
	rinvsq := b.FMul(rinv, rinv)
	// Coulomb term.
	qq := b.Load(b.Add(b.AddrOf(qObj), j), 0)
	vcoul := b.FMul(qq, rinv)
	// Lennard-Jones 6-12 terms from rinv^6.
	rinv6 := b.FMul(b.FMul(rinvsq, rinvsq), rinvsq)
	vnb6 := b.FMul(rinv6, b.FConst(1.5))
	vnb12 := b.FMul(b.FMul(rinv6, rinv6), b.FConst(0.5))
	fs := b.FMul(b.FAdd(vcoul, b.FSub(b.FMul(vnb12, b.FConst(12.0)), b.FMul(vnb6, b.FConst(6.0)))), rinvsq)
	b.Op2To(vtot, ir.FAdd, vtot, b.FAdd(vcoul, b.FSub(vnb12, vnb6)))
	b.Op2To(fxAcc, ir.FAdd, fxAcc, b.FMul(fs, dx))
	// Scatter reaction force to atom j.
	fj := b.Load(b.Add(b.AddrOf(fObj), j), 0)
	b.Store(b.FSub(fj, b.FMul(fs, dx)), b.Add(b.AddrOf(fObj), j), 0)
	b.Op2To(k, ir.Add, k, b.Const(1))
	b.Br(b.CmpLT(k, nn), loop, exit)

	b.SetBlock(exit)
	e := b.FtoI(b.FMul(vtot, b.FConst(1.0e6)))
	fx := b.FtoI(b.FMul(fxAcc, b.FConst(1.0e6)))
	b.Ret(e, fx)

	f.SplitCriticalEdges()

	mkInput := func(nn int64, seed uint64) Input {
		mem := make([]int64, b.MemSize())
		g := newLCG(seed)
		for a := int64(0); a < maxAtoms; a++ {
			mem[xObj.Base+a] = fbits(1.0 + 20.0*g.f64())
			mem[yObj.Base+a] = fbits(1.0 + 20.0*g.f64())
			mem[zObj.Base+a] = fbits(1.0 + 20.0*g.f64())
			mem[qObj.Base+a] = fbits(0.4*g.f64() - 0.2)
		}
		for t := int64(0); t < nn; t++ {
			mem[jidxObj.Base+t] = g.intn(maxAtoms)
		}
		return Input{
			Args: []int64{nn, fbits(50.0), fbits(50.0), fbits(50.0)},
			Mem:  mem,
		}
	}
	return &Workload{
		Name: "435.gromacs", Function: "inl1130", Suite: "SPEC-CPU", ExecPct: 75,
		F: f, Objects: b.Objects,
		Train: func() Input { return mkInput(1024, 101) },
		Ref:   func() Input { return mkInput(maxNeighbors, 102) },
	}
}
