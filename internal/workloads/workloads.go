// Package workloads provides the eleven benchmark kernels of Figure 6(b)
// hand-written in the framework's IR. Each kernel mirrors the loop
// structure, control flow, and dependence shape of the original function
// (adpcm_decoder, FindMaxGpAndSwap, dist1, refresh_potential, smvp, ...);
// the data is synthetic, generated deterministically, because the figures
// are driven by dependence structure rather than by particular values.
//
// Every workload carries a "train" input (used for profiling, as in the
// paper's methodology) and a larger "reference" input (used for
// measurement).
package workloads

import (
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/ir"
)

// Input is one input set: parameter values and an initial memory image.
type Input struct {
	Args []int64
	Mem  []int64
}

// Workload is one benchmark kernel.
type Workload struct {
	// Name is the short benchmark name used throughout the paper's
	// figures (e.g. "ks", "mpeg2enc").
	Name string
	// Function is the parallelized function's name in the original
	// benchmark (Figure 6(b)).
	Function string
	// Suite is the benchmark suite of origin.
	Suite string
	// ExecPct is the fraction of benchmark execution time the function
	// accounts for (Figure 6(b)).
	ExecPct int

	F       *ir.Function
	Objects []ir.MemObject

	// Train and Ref build fresh input sets (memory images are mutated by
	// runs, so each call returns a new copy).
	Train func() Input
	Ref   func() Input

	fpOnce sync.Once
	fp     string
}

// Fingerprint returns a content hash over everything that determines the
// workload's analysis artifacts and measurements: the IR (canonical
// text), the memory objects, and both input sets. Two workloads that
// merely share a Name have different fingerprints when any of those
// differ — which is what lets caches key on content instead of on names.
// The fingerprint is computed once per Workload value; the IR and inputs
// are treated as immutable after first use, like the rest of the
// framework does.
func (w *Workload) Fingerprint() string {
	w.fpOnce.Do(func() {
		h := cache.NewHasher(1)
		h.Field("name", w.Name)
		h.Field("ir", w.F.String())
		for _, o := range w.Objects {
			h.Field("object", o.Name)
			h.Int("base", o.Base)
			h.Int("size", o.Size)
		}
		train, ref := w.Train(), w.Ref()
		h.Int64s("train.args", train.Args)
		h.Int64s("train.mem", train.Mem)
		h.Int64s("ref.args", ref.Args)
		h.Int64s("ref.mem", ref.Mem)
		w.fp = h.Sum()
	})
	return w.fp
}

// All returns every workload, in the order of Figure 6(b).
func All() []*Workload {
	return []*Workload{
		ADPCMDec(),
		ADPCMEnc(),
		KS(),
		MPEG2Enc(),
		Mesa(),
		MCF(),
		Equake(),
		AMMP(),
		Twolf(),
		Gromacs(),
		Sjeng(),
	}
}

// ByName returns the workload with the given name.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// lcg is a small deterministic generator for synthetic inputs.
type lcg struct{ state uint64 }

func newLCG(seed uint64) *lcg { return &lcg{state: seed*6364136223846793005 + 1442695040888963407} }

func (g *lcg) next() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return g.state >> 17
}

// intn returns a value in [0, n).
func (g *lcg) intn(n int64) int64 { return int64(g.next() % uint64(n)) }

// f64 returns a value in [0, 1).
func (g *lcg) f64() float64 { return float64(g.next()%(1<<30)) / float64(1<<30) }

// fbits returns the register encoding of a float64.
func fbits(v float64) int64 { return int64(ir.Float64Bits(v)) }
