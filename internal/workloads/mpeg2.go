package workloads

import "repro/internal/ir"

// MPEG2Enc builds the dist1 kernel of MediaBench mpeg2enc (58% of
// execution): the 16x16 sum-of-absolute-differences of motion estimation,
// with the absolute value implemented as a hammock and the original's
// early-exit distance test every row — "COCO optimized the register
// communication in various hammocks" (Section 4).
func MPEG2Enc() *Workload {
	const blockWords = 256 // one 16x16 block
	const maxBlocks = 256
	b := ir.NewBuilder("mpeg2enc")
	refObj := b.Array("ref", maxBlocks*blockWords)
	curObj := b.Array("cur", maxBlocks*blockWords)
	sadObj := b.Array("sad", maxBlocks)
	nblocks := b.Param()
	limit := b.Param()

	bloop := b.Block("bloop")
	rowLoop := b.Block("rowLoop")
	colLoop := b.Block("colLoop")
	negDiff := b.Block("negDiff")
	colLatch := b.Block("colLatch")
	rowCheck := b.Block("rowCheck")
	rowLatch := b.Block("rowLatch")
	blkDone := b.Block("blkDone")
	exit := b.Block("exit")

	f := b.F
	blk := f.NewReg()
	row := f.NewReg()
	col := f.NewReg()
	s := f.NewReg()
	d := f.NewReg()
	base := f.NewReg()
	total := f.NewReg()

	b.ConstTo(blk, 0)
	b.ConstTo(total, 0)
	b.Jump(bloop)

	b.SetBlock(bloop)
	b.Op2To(base, ir.Mul, blk, b.Const(blockWords))
	b.ConstTo(s, 0)
	b.ConstTo(row, 0)
	b.Jump(rowLoop)

	b.SetBlock(rowLoop)
	b.ConstTo(col, 0)
	b.Jump(colLoop)

	b.SetBlock(colLoop)
	off := b.Add(base, b.Add(b.Mul(row, b.Const(16)), col))
	va := b.Load(b.Add(b.AddrOf(refObj), off), 0)
	vb := b.Load(b.Add(b.AddrOf(curObj), off), 0)
	b.Op2To(d, ir.Sub, va, vb)
	b.Br(b.CmpLT(d, b.Const(0)), negDiff, colLatch)

	b.SetBlock(negDiff)
	b.Op2To(d, ir.Sub, b.Const(0), d)
	b.Jump(colLatch)

	b.SetBlock(colLatch)
	b.Op2To(s, ir.Add, s, d)
	b.Op2To(col, ir.Add, col, b.Const(1))
	b.Br(b.CmpLT(col, b.Const(16)), colLoop, rowCheck)

	// Early exit: dist1 abandons the block once the accumulated distance
	// exceeds the best found so far.
	b.SetBlock(rowCheck)
	b.Br(b.CmpGT(s, limit), blkDone, rowLatch)

	b.SetBlock(rowLatch)
	b.Op2To(row, ir.Add, row, b.Const(1))
	b.Br(b.CmpLT(row, b.Const(16)), rowLoop, blkDone)

	b.SetBlock(blkDone)
	b.Store(s, b.Add(b.AddrOf(sadObj), blk), 0)
	b.Op2To(total, ir.Add, total, s)
	b.Op2To(blk, ir.Add, blk, b.Const(1))
	b.Br(b.CmpLT(blk, nblocks), bloop, exit)

	b.SetBlock(exit)
	b.Ret(total)

	f.SplitCriticalEdges()

	mkInput := func(nblocks, limit int64, seed uint64) Input {
		mem := make([]int64, b.MemSize())
		g := newLCG(seed)
		for k := int64(0); k < nblocks*blockWords; k++ {
			mem[refObj.Base+k] = g.intn(256)
			mem[curObj.Base+k] = g.intn(256)
		}
		return Input{Args: []int64{nblocks, limit}, Mem: mem}
	}
	return &Workload{
		Name: "mpeg2enc", Function: "dist1", Suite: "MediaBench", ExecPct: 58,
		F: f, Objects: b.Objects,
		Train: func() Input { return mkInput(16, 6000, 41) },
		Ref:   func() Input { return mkInput(maxBlocks, 9000, 42) },
	}
}
