package workloads_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/coco"
	"repro/internal/interp"
	"repro/internal/mtcg"
	"repro/internal/partition"
	"repro/internal/pdg"
	"repro/internal/queue"
	"repro/internal/workloads"
)

const stepBudget = 50_000_000

func TestAllWorkloadsVerifyAndRun(t *testing.T) {
	for _, w := range workloads.All() {
		t.Run(w.Name, func(t *testing.T) {
			if err := w.F.Verify(); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			for _, in := range []struct {
				name string
				in   workloads.Input
			}{{"train", w.Train()}, {"ref", w.Ref()}} {
				res, err := interp.Run(w.F, in.in.Args, in.in.Mem, stepBudget)
				if err != nil {
					t.Fatalf("%s run: %v", in.name, err)
				}
				if res.Steps == 0 {
					t.Errorf("%s: no instructions executed", in.name)
				}
				if len(res.LiveOuts) == 0 {
					t.Errorf("%s: no live-outs", in.name)
				}
			}
			// Reference inputs must be substantially larger than train.
			train, _ := interp.Run(w.F, w.Train().Args, w.Train().Mem, stepBudget)
			ref, _ := interp.Run(w.F, w.Ref().Args, w.Ref().Mem, stepBudget)
			if ref.Steps < 4*train.Steps {
				t.Errorf("ref (%d steps) not much larger than train (%d steps)", ref.Steps, train.Steps)
			}
		})
	}
}

func TestWorkloadNamesUniqueAndComplete(t *testing.T) {
	all := workloads.All()
	if len(all) != 11 {
		t.Fatalf("got %d workloads, want 11 (Figure 6(b))", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
		if w.ExecPct <= 0 || w.ExecPct > 100 {
			t.Errorf("%s: exec%% = %d", w.Name, w.ExecPct)
		}
		if w.Function == "" || w.Suite == "" {
			t.Errorf("%s: missing metadata", w.Name)
		}
	}
	if _, err := workloads.ByName("ks"); err != nil {
		t.Errorf("ByName(ks): %v", err)
	}
	if _, err := workloads.ByName("nope"); err == nil {
		t.Error("ByName accepted unknown workload")
	}
}

// TestFullPipelineEquivalence runs every workload through both partitioners,
// both plans (naive MTCG and COCO), queue allocation, and the deterministic
// MT interpreter, checking equivalence with the single-threaded result on
// the train input.
func TestFullPipelineEquivalence(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			in := w.Train()
			st, err := interp.Run(w.F, in.Args, append([]int64(nil), in.Mem...), stepBudget)
			if err != nil {
				t.Fatalf("ST: %v", err)
			}
			g := pdg.Build(w.F, w.Objects)
			prof := st.Profile

			for _, part := range []partition.Partitioner{partition.DSWP{}, partition.GREMIO{}} {
				assign, err := part.Partition(w.F, g, prof, 2)
				if err != nil {
					t.Fatalf("%s: %v", part.Name(), err)
				}
				plans := map[string]*mtcg.Plan{}
				plans["naive"] = mtcg.NaivePlan(w.F, g, assign, 2)
				cocoPlan, err := coco.Plan(w.F, g, assign, 2, prof, coco.DefaultOptions())
				if err != nil {
					t.Fatalf("%s coco: %v", part.Name(), err)
				}
				plans["coco"] = cocoPlan

				var commCounts = map[string]int64{}
				for name, plan := range plans {
					prog, err := mtcg.Generate(plan)
					if err != nil {
						t.Fatalf("%s/%s generate: %v", part.Name(), name, err)
					}
					for _, ft := range prog.Threads {
						if err := ft.Verify(); err != nil {
							t.Fatalf("%s/%s thread: %v", part.Name(), name, err)
						}
					}
					queue.Allocate(prog)
					mt, err := interp.RunMT(interp.MTConfig{
						Threads: prog.Threads, NumQueues: prog.NumQueues,
						Assign: assign, Args: in.Args,
						Mem: append([]int64(nil), in.Mem...), MaxSteps: stepBudget,
					})
					if err != nil {
						t.Fatalf("%s/%s MT: %v", part.Name(), name, err)
					}
					if len(mt.LiveOuts) != len(st.LiveOuts) {
						t.Fatalf("%s/%s live-out count %d, want %d",
							part.Name(), name, len(mt.LiveOuts), len(st.LiveOuts))
					}
					for i := range st.LiveOuts {
						if mt.LiveOuts[i] != st.LiveOuts[i] {
							t.Errorf("%s/%s live-out %d: MT %d, ST %d",
								part.Name(), name, i, mt.LiveOuts[i], st.LiveOuts[i])
						}
					}
					for a := range st.Mem {
						if mt.Mem[a] != st.Mem[a] {
							t.Fatalf("%s/%s mem[%d]: MT %d, ST %d",
								part.Name(), name, a, mt.Mem[a], st.Mem[a])
						}
					}
					commCounts[name] = mt.Stats.Comm()
				}
				if commCounts["coco"] > commCounts["naive"] {
					t.Errorf("%s: COCO increased communication (%d > %d)",
						part.Name(), commCounts["coco"], commCounts["naive"])
				}
			}
		})
	}
}

// TestWorkloadSharedReadSafety exercises the concurrency contract the
// experiment engine depends on: one *Workload — its IR function, objects,
// and input constructors — is shared by many goroutines that
// simultaneously profile it, build its PDG, and interpret it. The IR is
// immutable after construction and Train/Ref return fresh copies, so this
// must be race-free (CI runs this package under -race).
func TestWorkloadSharedReadSafety(t *testing.T) {
	w, err := workloads.ByName("ks")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			in := w.Train()
			if _, err := interp.Run(w.F, in.Args, in.Mem, stepBudget); err != nil {
				errs <- err
				return
			}
			g := pdg.Build(w.F, w.Objects)
			if g.NumArcs() == 0 {
				errs <- fmt.Errorf("empty PDG")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
