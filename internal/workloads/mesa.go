package workloads

import "repro/internal/ir"

// Mesa builds the general_textured_triangle span kernel of 177.mesa (32% of
// execution): per-span floating-point interpolation of depth and color with
// a z-buffer test hammock and framebuffer stores. The stores and the
// z-buffer loads create the inter-thread memory dependences for which COCO
// removes ">99% of the dynamic memory synchronizations" under GREMIO.
func Mesa() *Workload {
	const maxW = 64
	const maxSpans = 128
	b := ir.NewBuilder("mesa")
	zbufObj := b.Array("zbuf", maxSpans*maxW)
	fbObj := b.Array("fb", maxSpans*maxW)
	zslopeObj := b.Array("zslope", maxSpans)
	cslopeObj := b.Array("cslope", maxSpans)
	spans := b.Param()
	width := b.Param()

	sloop := b.Block("sloop")
	xloop := b.Block("xloop")
	zpass := b.Block("zpass")
	xlatch := b.Block("xlatch")
	slatch := b.Block("slatch")
	exit := b.Block("exit")

	f := b.F
	s := f.NewReg()
	x := f.NewReg()
	z := f.NewReg()
	r := f.NewReg()
	dz := f.NewReg()
	dr := f.NewReg()
	rowBase := f.NewReg()
	written := f.NewReg()

	b.ConstTo(s, 0)
	b.ConstTo(written, 0)
	b.Jump(sloop)

	b.SetBlock(sloop)
	b.LoadTo(dz, b.Add(b.AddrOf(zslopeObj), s), 0)
	b.LoadTo(dr, b.Add(b.AddrOf(cslopeObj), s), 0)
	zinit := b.FConst(1.0e6)
	b.MovTo(z, zinit)
	b.MovTo(r, b.FConst(0.25))
	b.Op2To(rowBase, ir.Mul, s, width)
	b.ConstTo(x, 0)
	b.Jump(xloop)

	b.SetBlock(xloop)
	idx := b.Add(rowBase, x)
	zb := b.Load(b.Add(b.AddrOf(zbufObj), idx), 0)
	b.Br(b.FCmpLT(z, zb), zpass, xlatch)

	b.SetBlock(zpass)
	b.Store(z, b.Add(b.AddrOf(zbufObj), idx), 0)
	color := b.FtoI(b.FMul(r, b.FConst(255.0)))
	b.Store(color, b.Add(b.AddrOf(fbObj), idx), 0)
	b.Op2To(written, ir.Add, written, b.Const(1))
	b.Jump(xlatch)

	b.SetBlock(xlatch)
	b.Op2To(z, ir.FAdd, z, dz)
	b.Op2To(r, ir.FAdd, r, dr)
	b.Op2To(x, ir.Add, x, b.Const(1))
	b.Br(b.CmpLT(x, width), xloop, slatch)

	b.SetBlock(slatch)
	b.Op2To(s, ir.Add, s, b.Const(1))
	b.Br(b.CmpLT(s, spans), sloop, exit)

	b.SetBlock(exit)
	b.Ret(written)

	f.SplitCriticalEdges()

	mkInput := func(spans, width int64, seed uint64) Input {
		mem := make([]int64, b.MemSize())
		g := newLCG(seed)
		for k := int64(0); k < spans*width; k++ {
			mem[zbufObj.Base+k] = fbits(1.0e5 + 1.0e7*g.f64())
		}
		for k := int64(0); k < spans; k++ {
			mem[zslopeObj.Base+k] = fbits(-500.0 + 30000.0*g.f64())
			mem[cslopeObj.Base+k] = fbits(0.01 * g.f64())
		}
		return Input{Args: []int64{spans, width}, Mem: mem}
	}
	return &Workload{
		Name: "177.mesa", Function: "general_textured_triangle", Suite: "SPEC-CPU", ExecPct: 32,
		F: f, Objects: b.Objects,
		Train: func() Input { return mkInput(16, 32, 51) },
		Ref:   func() Input { return mkInput(maxSpans, maxW, 52) },
	}
}
