package workloads

import "repro/internal/ir"

// Sjeng builds the std_eval kernel of 458.sjeng (26% of execution): a pass
// over the 64 board squares with a piece-type dispatch (a chain of
// compare-and-branch cases), per-piece square-table lookups, and separate
// material/positional accumulators — branchy integer code with many small
// hammocks, repeated over a set of positions.
func Sjeng() *Workload {
	const maxPositions = 1024
	b := ir.NewBuilder("sjeng")
	boardObj := b.Array("board", maxPositions*64)
	pawnTblObj := b.Array("pawnTbl", 64)
	knightTblObj := b.Array("knightTbl", 64)
	bishopTblObj := b.Array("bishopTbl", 64)
	rookTblObj := b.Array("rookTbl", 64)
	positions := b.Param()

	ploop := b.Block("ploop")
	sqloop := b.Block("sqloop")
	isPawn := b.Block("isPawn")
	chkKnight := b.Block("chkKnight")
	isKnight := b.Block("isKnight")
	chkBishop := b.Block("chkBishop")
	isBishop := b.Block("isBishop")
	chkRook := b.Block("chkRook")
	isRook := b.Block("isRook")
	isQueen := b.Block("isQueen")
	sqlatch := b.Block("sqlatch")
	platch := b.Block("platch")
	exit := b.Block("exit")

	f := b.F
	pos := f.NewReg()
	sq := f.NewReg()
	score := f.NewReg()
	material := f.NewReg()
	base := f.NewReg()
	piece := f.NewReg()

	b.ConstTo(pos, 0)
	b.ConstTo(score, 0)
	b.ConstTo(material, 0)
	b.Jump(ploop)

	b.SetBlock(ploop)
	b.Op2To(base, ir.Mul, pos, b.Const(64))
	b.ConstTo(sq, 0)
	b.Jump(sqloop)

	b.SetBlock(sqloop)
	b.LoadTo(piece, b.Add(b.AddrOf(boardObj), b.Add(base, sq)), 0)
	b.Br(b.CmpEQ(piece, b.Const(1)), isPawn, chkKnight)

	b.SetBlock(isPawn)
	v := b.Load(b.Add(b.AddrOf(pawnTblObj), sq), 0)
	b.Op2To(score, ir.Add, score, v)
	b.Op2To(material, ir.Add, material, b.Const(100))
	b.Jump(sqlatch)

	b.SetBlock(chkKnight)
	b.Br(b.CmpEQ(piece, b.Const(2)), isKnight, chkBishop)

	b.SetBlock(isKnight)
	v = b.Load(b.Add(b.AddrOf(knightTblObj), sq), 0)
	b.Op2To(score, ir.Add, score, v)
	b.Op2To(material, ir.Add, material, b.Const(300))
	b.Jump(sqlatch)

	b.SetBlock(chkBishop)
	b.Br(b.CmpEQ(piece, b.Const(3)), isBishop, chkRook)

	b.SetBlock(isBishop)
	v = b.Load(b.Add(b.AddrOf(bishopTblObj), sq), 0)
	b.Op2To(score, ir.Add, score, v)
	b.Op2To(material, ir.Add, material, b.Const(310))
	b.Jump(sqlatch)

	b.SetBlock(chkRook)
	b.Br(b.CmpEQ(piece, b.Const(4)), isRook, isQueen)

	b.SetBlock(isRook)
	v = b.Load(b.Add(b.AddrOf(rookTblObj), sq), 0)
	b.Op2To(score, ir.Add, score, v)
	b.Op2To(material, ir.Add, material, b.Const(500))
	b.Jump(sqlatch)

	b.SetBlock(isQueen)
	// Empty squares (piece 0) add nothing; piece 5 is a queen.
	isQ := b.CmpEQ(piece, b.Const(5))
	b.Op2To(material, ir.Add, material, b.Mul(isQ, b.Const(900)))
	b.Jump(sqlatch)

	b.SetBlock(sqlatch)
	b.Op2To(sq, ir.Add, sq, b.Const(1))
	b.Br(b.CmpLT(sq, b.Const(64)), sqloop, platch)

	b.SetBlock(platch)
	b.Op2To(pos, ir.Add, pos, b.Const(1))
	b.Br(b.CmpLT(pos, positions), ploop, exit)

	b.SetBlock(exit)
	b.Ret(score, material)

	f.SplitCriticalEdges()

	mkInput := func(positions int64, seed uint64) Input {
		mem := make([]int64, b.MemSize())
		g := newLCG(seed)
		for k := int64(0); k < positions*64; k++ {
			// ~60% empty squares, pieces 1..5 otherwise.
			if g.intn(10) < 6 {
				mem[boardObj.Base+k] = 0
			} else {
				mem[boardObj.Base+k] = 1 + g.intn(5)
			}
		}
		for s := int64(0); s < 64; s++ {
			mem[pawnTblObj.Base+s] = g.intn(40) - 20
			mem[knightTblObj.Base+s] = g.intn(60) - 30
			mem[bishopTblObj.Base+s] = g.intn(60) - 30
			mem[rookTblObj.Base+s] = g.intn(40) - 20
		}
		return Input{Args: []int64{positions}, Mem: mem}
	}
	return &Workload{
		Name: "458.sjeng", Function: "std_eval", Suite: "SPEC-CPU", ExecPct: 26,
		F: f, Objects: b.Objects,
		Train: func() Input { return mkInput(64, 111) },
		Ref:   func() Input { return mkInput(maxPositions, 112) },
	}
}
