package pdg

import (
	"strings"
	"testing"

	"repro/internal/testprog"
)

func TestWriteDOT(t *testing.T) {
	p := testprog.Fig5()
	g := Build(p.F, p.Objects)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, p.Assign); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "digraph pdg {") || !strings.HasSuffix(out, "}\n") {
		t.Error("not a DOT digraph")
	}
	for _, want := range []string{"cluster_b", "style=dashed", "style=dotted", "fillcolor"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Every instruction appears as a node.
	n := strings.Count(out, "n0 [label=")
	if n != 1 {
		t.Errorf("instruction node n0 appears %d times", n)
	}
}

func TestWriteCFGDOT(t *testing.T) {
	p := testprog.Fig3()
	var sb strings.Builder
	if err := WriteCFGDOT(&sb, p.F); err != nil {
		t.Fatalf("WriteCFGDOT: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "digraph cfg {") {
		t.Error("not a CFG digraph")
	}
	// Branch edges carry T/F labels.
	if !strings.Contains(out, `[label="T"]`) || !strings.Contains(out, `[label="F"]`) {
		t.Error("missing branch edge labels")
	}
	// One node per block.
	for _, b := range p.F.Blocks {
		if !strings.Contains(out, b.Name+":") {
			t.Errorf("block %s missing from CFG DOT", b.Name)
		}
	}
}

func TestEscapeRecord(t *testing.T) {
	in := `a{b}|c<d>"e\`
	out := escapeRecord(in)
	for _, meta := range []string{"{", "}", "|", "<", ">"} {
		if strings.Contains(strings.ReplaceAll(out, "\\"+meta, ""), meta) {
			t.Errorf("unescaped %q in %q", meta, out)
		}
	}
}
