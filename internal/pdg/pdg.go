// Package pdg builds the Program Dependence Graph [Ferrante et al.] for a
// function: the representation every GMT instruction scheduler partitions
// (Figure 2 of the paper). Nodes are instructions; arcs are register data
// dependences (def→use chains), memory dependences (may-aliasing accesses
// ordered by control-flow reachability), and control dependences (branch →
// controlled instruction).
package pdg

import (
	"fmt"

	"repro/internal/alias"
	"repro/internal/analysis"
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// Kind classifies a dependence arc.
type Kind uint8

const (
	// KindReg is a register flow dependence: From defines a register that
	// To may read.
	KindReg Kind = iota
	// KindMem is a memory dependence (true, anti, or output): From and To
	// access may-aliasing locations and From may execute before To.
	KindMem
	// KindControl is a control dependence: From is a branch that decides
	// whether To executes.
	KindControl
)

// String returns "reg", "mem" or "control".
func (k Kind) String() string {
	switch k {
	case KindReg:
		return "reg"
	case KindMem:
		return "mem"
	case KindControl:
		return "control"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Arc is one dependence.
type Arc struct {
	From, To *ir.Instr
	Kind     Kind
	Reg      ir.Reg // the register carrying a KindReg dependence
}

// String renders the arc for diagnostics.
func (a *Arc) String() string {
	s := fmt.Sprintf("(%v) -%s", a.From, a.Kind)
	if a.Kind == KindReg {
		s += fmt.Sprintf("[%v]", a.Reg)
	}
	return s + fmt.Sprintf("-> (%v)", a.To)
}

// Graph is the PDG of one function.
type Graph struct {
	Fn   *ir.Function
	Arcs []*Arc

	out map[int][]*Arc // instr ID -> outgoing arcs
	in  map[int][]*Arc // instr ID -> incoming arcs
}

// Build constructs the PDG of f. objects is the memory-object table used by
// the points-to analysis; pass nil if f performs no memory accesses.
func Build(f *ir.Function, objects []ir.MemObject) *Graph {
	g := &Graph{Fn: f, out: map[int][]*Arc{}, in: map[int][]*Arc{}}
	seen := map[string]bool{}
	add := func(a Arc) {
		key := fmt.Sprintf("%d/%d/%d/%d", a.From.ID, a.To.ID, a.Kind, a.Reg)
		if seen[key] {
			return
		}
		seen[key] = true
		arc := &a
		g.Arcs = append(g.Arcs, arc)
		g.out[a.From.ID] = append(g.out[a.From.ID], arc)
		g.in[a.To.ID] = append(g.in[a.To.ID], arc)
	}

	// Register dependences from reaching-definition chains. Parameter
	// pseudo-definitions (nil) need no arcs: every thread starts with a
	// copy of the live-ins.
	rd := dataflow.ComputeReachingDefs(f)
	for _, uc := range rd.Chains(dataflow.AllUses) {
		for _, def := range uc.Defs {
			if def == nil {
				continue
			}
			add(Arc{From: def, To: uc.Use, Kind: KindReg, Reg: uc.Reg})
		}
	}

	// Memory dependences: for each may-aliasing pair with at least one
	// store, an arc in every direction permitted by control flow. Inside
	// loops both directions are typically reachable, which is what makes
	// memory dependences "essentially bi-directional" (Section 4) and
	// forces the instructions into one DSWP pipeline stage.
	al := alias.Analyze(f, objects)
	var mems []*ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op.IsMemAccess() {
			mems = append(mems, in)
		}
	})
	reach := analysis.Reachability(f)
	ordered := func(a, b *ir.Instr) bool {
		if a.Block() == b.Block() {
			if a.Index() < b.Index() {
				return true
			}
			// Later instruction reaches the earlier one only around a
			// cycle through the block itself.
			return reach[a.Block().ID][b.Block().ID]
		}
		return reach[a.Block().ID][b.Block().ID]
	}
	for i, a := range mems {
		for _, b := range mems[i+1:] {
			if a.Op != ir.Store && b.Op != ir.Store {
				continue // load-load pairs are unordered
			}
			if !al.MayAlias(a, b) {
				continue
			}
			if ordered(a, b) {
				add(Arc{From: a, To: b, Kind: KindMem})
			}
			if ordered(b, a) {
				add(Arc{From: b, To: a, Kind: KindMem})
			}
		}
	}

	// Control dependences: the branch terminating block u controls every
	// instruction of each block control dependent on u.
	cdg := analysis.MustControlDeps(f, nil)
	for _, blk := range f.Blocks {
		for _, d := range cdg.Deps(blk) {
			br := d.Branch.Terminator()
			for _, in := range blk.Instrs {
				if in == br || in.Op == ir.Jump {
					// A branch needs no self arc, and unconditional
					// jumps are structural: thread CFGs rebuild their
					// own terminators, so jumps take no part in
					// partitioning or dependence enforcement.
					continue
				}
				add(Arc{From: br, To: in, Kind: KindControl})
			}
		}
	}
	return g
}

// OutArcs returns the dependences whose source is in.
func (g *Graph) OutArcs(in *ir.Instr) []*Arc { return g.out[in.ID] }

// InArcs returns the dependences whose target is in.
func (g *Graph) InArcs(in *ir.Instr) []*Arc { return g.in[in.ID] }

// NumArcs returns the number of dependence arcs.
func (g *Graph) NumArcs() int { return len(g.Arcs) }

// ArcsBetween returns the arcs from one instruction set into another, where
// membership is given by thread assignment.
func (g *Graph) ArcsBetween(assign map[*ir.Instr]int, from, to int) []*Arc {
	var out []*Arc
	for _, a := range g.Arcs {
		if assign[a.From] == from && assign[a.To] == to && from != to {
			out = append(out, a)
		}
	}
	return out
}
