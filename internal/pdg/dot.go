package pdg

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/ir"
)

// WriteDOT renders the PDG in Graphviz DOT format for inspection: one node
// per instruction (clustered by basic block), solid arcs for register
// dependences (labelled with the register), dashed arcs for memory
// dependences, and dotted arcs for control dependences. assign, when
// non-nil, colors nodes by thread.
func (g *Graph) WriteDOT(w io.Writer, assign map[*ir.Instr]int) error {
	var b strings.Builder
	b.WriteString("digraph pdg {\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\", fontsize=10];\n")

	colors := []string{"lightblue", "lightsalmon", "palegreen", "khaki",
		"plum", "lightgray"}
	for _, blk := range g.Fn.Blocks {
		fmt.Fprintf(&b, "  subgraph cluster_b%d {\n    label=%q;\n", blk.ID, blk.Name)
		for _, in := range blk.Instrs {
			attrs := ""
			if assign != nil {
				if t, ok := assign[in]; ok {
					attrs = fmt.Sprintf(", style=filled, fillcolor=%q",
						colors[t%len(colors)])
				}
			}
			fmt.Fprintf(&b, "    n%d [label=%q%s];\n", in.ID, in.String(), attrs)
		}
		b.WriteString("  }\n")
	}
	for _, a := range g.Arcs {
		switch a.Kind {
		case KindReg:
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", a.From.ID, a.To.ID, a.Reg.String())
		case KindMem:
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, color=red];\n", a.From.ID, a.To.ID)
		case KindControl:
			fmt.Fprintf(&b, "  n%d -> n%d [style=dotted, color=blue];\n", a.From.ID, a.To.ID)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCFGDOT renders a function's control-flow graph in DOT format, one
// node per basic block with its instructions as the label.
func WriteCFGDOT(w io.Writer, f *ir.Function) error {
	var b strings.Builder
	b.WriteString("digraph cfg {\n")
	b.WriteString("  node [shape=record, fontname=\"monospace\", fontsize=10];\n")
	for _, blk := range f.Blocks {
		var lines []string
		lines = append(lines, blk.Name+":")
		for _, in := range blk.Instrs {
			lines = append(lines, escapeRecord(in.String()))
		}
		fmt.Fprintf(&b, "  b%d [label=\"{%s}\"];\n", blk.ID, strings.Join(lines, "\\l"))
		for i, s := range blk.Succs {
			label := ""
			if len(blk.Succs) == 2 {
				if i == 0 {
					label = " [label=\"T\"]"
				} else {
					label = " [label=\"F\"]"
				}
			}
			fmt.Fprintf(&b, "  b%d -> b%d%s;\n", blk.ID, s.ID, label)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeRecord escapes DOT record-label metacharacters.
func escapeRecord(s string) string {
	r := strings.NewReplacer(
		"\\", "\\\\", "\"", "\\\"", "{", "\\{", "}", "\\}",
		"|", "\\|", "<", "\\<", ">", "\\>",
	)
	return r.Replace(s)
}
