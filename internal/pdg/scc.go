package pdg

import "repro/internal/ir"

// SCC is a strongly connected component of the PDG: a set of instructions
// that must stay in one DSWP pipeline stage because they form a dependence
// cycle.
type SCC struct {
	Instrs []*ir.Instr
	// Succs are the indices (into the SCC list) of components this one has
	// arcs into.
	Succs []int
}

// SCCs computes the strongly connected components of the graph with
// Tarjan's algorithm and returns them in a topological order of the
// condensation (sources first). The result also carries the condensed
// successor relation.
func (g *Graph) SCCs() []*SCC {
	index := map[int]int{} // instr ID -> visitation index
	low := map[int]int{}
	onStack := map[int]bool{}
	var stack []*ir.Instr
	var comps [][]*ir.Instr
	counter := 0

	var strongconnect func(v *ir.Instr)
	strongconnect = func(v *ir.Instr) {
		index[v.ID] = counter
		low[v.ID] = counter
		counter++
		stack = append(stack, v)
		onStack[v.ID] = true

		for _, a := range g.out[v.ID] {
			w := a.To
			if _, seen := index[w.ID]; !seen {
				strongconnect(w)
				if low[w.ID] < low[v.ID] {
					low[v.ID] = low[w.ID]
				}
			} else if onStack[w.ID] && index[w.ID] < low[v.ID] {
				low[v.ID] = index[w.ID]
			}
		}

		if low[v.ID] == index[v.ID] {
			var comp []*ir.Instr
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w.ID] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}

	g.Fn.Instrs(func(in *ir.Instr) {
		if _, seen := index[in.ID]; !seen {
			strongconnect(in)
		}
	})

	// Tarjan emits components in reverse topological order; reverse them.
	for i, j := 0, len(comps)-1; i < j; i, j = i+1, j-1 {
		comps[i], comps[j] = comps[j], comps[i]
	}

	sccOf := map[int]int{}
	out := make([]*SCC, len(comps))
	for ci, comp := range comps {
		out[ci] = &SCC{Instrs: comp}
		for _, in := range comp {
			sccOf[in.ID] = ci
		}
	}
	for ci, comp := range comps {
		seen := map[int]bool{}
		for _, in := range comp {
			for _, a := range g.out[in.ID] {
				tj := sccOf[a.To.ID]
				if tj != ci && !seen[tj] {
					seen[tj] = true
					out[ci].Succs = append(out[ci].Succs, tj)
				}
			}
		}
	}
	return out
}
