package pdg

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/testprog"
)

func hasArc(g *Graph, from, to *ir.Instr, k Kind) bool {
	for _, a := range g.OutArcs(from) {
		if a.To == to && a.Kind == k {
			return true
		}
	}
	return false
}

func TestFig3Dependences(t *testing.T) {
	p := testprog.Fig3()
	if err := p.F.Verify(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	g := Build(p.F, p.Objects)

	// The paper's three inter-thread dependences (for the given
	// partition): register deps (A->F) and (E->F) on r1, and control dep
	// (D->E) which makes (D->F) transitive.
	if !hasArc(g, p.Instrs["A"], p.Instrs["F"], KindReg) {
		t.Error("missing register dep A->F")
	}
	if !hasArc(g, p.Instrs["E"], p.Instrs["F"], KindReg) {
		t.Error("missing register dep E->F")
	}
	if !hasArc(g, p.Instrs["D"], p.Instrs["E"], KindControl) {
		t.Error("missing control dep D->E")
	}
	// E also uses r1 defined by A (same iteration). A redefines r1 at the
	// top of every iteration, so E's definition never survives a back
	// edge: no loop-carried E->E arc may exist.
	if !hasArc(g, p.Instrs["A"], p.Instrs["E"], KindReg) {
		t.Error("missing register dep A->E")
	}
	if hasArc(g, p.Instrs["E"], p.Instrs["E"], KindReg) {
		t.Error("spurious loop-carried E->E arc (A kills r1 each iteration)")
	}
	// C->D carries r2.
	found := false
	for _, a := range g.OutArcs(p.Instrs["C"]) {
		if a.To == p.Instrs["D"] && a.Kind == KindReg && a.Reg == p.Regs["r2"] {
			found = true
		}
	}
	if !found {
		t.Error("missing register dep C->D on r2")
	}
	// Loop branch G controls the loop body instructions.
	if !hasArc(g, p.Instrs["G"], p.Instrs["A"], KindControl) {
		t.Error("missing control dep G->A (loop re-execution)")
	}
	// B controls C (the B2 block).
	if !hasArc(g, p.Instrs["B"], p.Instrs["C"], KindControl) {
		t.Error("missing control dep B->C")
	}
	// No dependence from F back into thread 1's computation besides ret.
	if hasArc(g, p.Instrs["F"], p.Instrs["A"], KindReg) {
		t.Error("spurious dep F->A")
	}
}

func TestFig4SingleInterThreadDep(t *testing.T) {
	p := testprog.Fig4()
	g := Build(p.F, p.Objects)

	inter := g.ArcsBetween(p.Assign, 0, 1)
	// Paper: "The only inter-thread dependence is the register dependence
	// (B->E)". Plus our explicit live-out arcs into ret: s is defined in
	// T_t, so only (B->E) crosses threads.
	for _, a := range inter {
		if a.Kind != KindReg || a.Reg != p.Regs["r1"] {
			t.Errorf("unexpected inter-thread arc %v", a)
		}
		if a.From != p.Instrs["B"] || a.To != p.Instrs["E"] {
			t.Errorf("inter-thread arc %v, want B->E", a)
		}
	}
	if len(inter) != 1 {
		t.Errorf("%d inter-thread arcs, want 1 (B->E)", len(inter))
	}
	// No arcs flow T_t -> T_s (the partition is a pipeline).
	if back := g.ArcsBetween(p.Assign, 1, 0); len(back) != 0 {
		t.Errorf("unexpected backward arcs: %v", back)
	}
}

func TestFig5MemoryDependences(t *testing.T) {
	p := testprog.Fig5()
	g := Build(p.F, p.Objects)

	if !hasArc(g, p.Instrs["D"], p.Instrs["K"], KindMem) {
		t.Error("missing memory dep D->K (store y -> load y)")
	}
	if !hasArc(g, p.Instrs["G"], p.Instrs["J"], KindMem) {
		t.Error("missing memory dep G->J (store x -> load x)")
	}
	// x and y are distinct objects: no cross arcs.
	if hasArc(g, p.Instrs["D"], p.Instrs["J"], KindMem) {
		t.Error("spurious memory dep D->J (y vs x)")
	}
	if hasArc(g, p.Instrs["G"], p.Instrs["K"], KindMem) {
		t.Error("spurious memory dep G->K (x vs y)")
	}
	// The program is acyclic: no backward memory arcs load->store.
	if hasArc(g, p.Instrs["K"], p.Instrs["D"], KindMem) {
		t.Error("spurious backward memory dep K->D in acyclic code")
	}
	// Branch H controls I and J.
	if !hasArc(g, p.Instrs["H"], p.Instrs["J"], KindControl) {
		t.Error("missing control dep H->J")
	}
	if hasArc(g, p.Instrs["H"], p.Instrs["K"], KindControl) {
		t.Error("spurious control dep H->K (B9 post-dominates B8)")
	}
}

func TestMemoryDepsBidirectionalInLoop(t *testing.T) {
	// A store and load of the same array inside one loop depend on each
	// other in both directions — the property that forces them into one
	// DSWP stage (Section 4).
	b := ir.NewBuilder("memloop")
	arr := b.Array("a", 8)
	loop := b.Block("loop")
	exit := b.Block("exit")
	i := b.F.NewReg()
	b.ConstTo(i, 0)
	b.Jump(loop)
	b.SetBlock(loop)
	base := b.AddrOf(arr)
	pa := b.Add(base, i)
	v := b.Load(pa, 0)
	b.Store(v, pa, 1)
	one := b.Const(1)
	b.Op2To(i, ir.Add, i, one)
	lim := b.Const(8)
	c := b.CmpLT(i, lim)
	b.Br(c, loop, exit)
	b.SetBlock(exit)
	b.Ret()
	b.F.SplitCriticalEdges()

	g := Build(b.F, b.Objects)
	var load, store *ir.Instr
	b.F.Instrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.Load:
			load = in
		case ir.Store:
			store = in
		}
	})
	if !hasArc(g, load, store, KindMem) || !hasArc(g, store, load, KindMem) {
		t.Error("loop memory dependences must be bidirectional")
	}
}

func TestSCCCondensationTopological(t *testing.T) {
	p := testprog.Fig4()
	g := Build(p.F, p.Objects)
	sccs := g.SCCs()

	// Loop 1's induction (A: i++ feeding the compare feeding branch C,
	// which controls A) must form a multi-instruction SCC.
	sccOf := map[*ir.Instr]int{}
	for ci, c := range sccs {
		for _, in := range c.Instrs {
			sccOf[in] = ci
		}
	}
	if sccOf[p.Instrs["A"]] != sccOf[p.Instrs["C"]] {
		t.Error("induction A and branch C should share an SCC")
	}
	if len(sccs[sccOf[p.Instrs["A"]]].Instrs) < 3 {
		t.Errorf("induction SCC has %d instrs, want >= 3 (A, compare, C)",
			len(sccs[sccOf[p.Instrs["A"]]].Instrs))
	}
	// B and E must be in different SCCs, with B's before E's in topo order.
	bi, ei := sccOf[p.Instrs["B"]], sccOf[p.Instrs["E"]]
	if bi == ei {
		t.Fatal("B and E must not share an SCC")
	}
	if bi > ei {
		t.Errorf("SCC order: B's (%d) should precede E's (%d)", bi, ei)
	}
	// Succs must respect topological numbering.
	for ci, c := range sccs {
		for _, s := range c.Succs {
			if s <= ci {
				t.Errorf("SCC %d has successor %d (not topological)", ci, s)
			}
		}
	}
	// Every instruction appears exactly once.
	n := 0
	for _, c := range sccs {
		n += len(c.Instrs)
	}
	if n != p.F.NumInstrs() {
		t.Errorf("SCCs cover %d instrs, function has %d", n, p.F.NumInstrs())
	}
}

func TestJumpsExcludedFromControlDeps(t *testing.T) {
	p := testprog.Fig4()
	g := Build(p.F, p.Objects)
	p.F.Instrs(func(in *ir.Instr) {
		if in.Op == ir.Jump {
			if arcs := g.InArcs(in); len(arcs) != 0 {
				t.Errorf("jump %v has dependence arcs %v", in, arcs)
			}
		}
	})
}
