package oracle

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/partition"
)

// The corpus format is the IR's own textual form prefixed with directive
// comments, so a reproducer file is simultaneously valid input to
// ir.Parse (which strips ';' comments) and self-describing:
//
//	; oracle case: seed=42 (shrunk)
//	; seed: 42
//	; trace: 6fd43a2f8c91e0b4
//	; args: 3 -7
//	; mem: 1 0 0 5
//	; object: arr 0 16
//	; replay: partitioner=dswp threads=2 schedule=adversarial qcap=1
//	func rand(r1, r2)
//	entry:
//		...
//
// The optional replay directive pins the exact matrix cell the failure was
// found in (cmd/gmtstress writes it); without one, a replay runs the full
// default matrix. The optional trace directive carries the deterministic
// trace ID of the run that found the failure (obs.TraceID form), linking
// a reproducer back to its telemetry; gmtcheck -replay echoes it.
// cmd/gmtcheck prints failing cases in this format and replays them with
// -replay; files checked into testdata/corpus are re-run by the
// regression tests.

// ReplayConfig pins one matrix cell so a reproducer re-runs in exactly
// the configuration that failed. The zero value means "the full default
// matrix" — FormatRepro then writes no directive at all.
type ReplayConfig struct {
	// Partitioner restricts the partition source: "dswp", "gremio", or
	// "random" (one seed-derived uniform random partition). "" keeps the
	// default set.
	Partitioner string
	// Threads restricts the thread count (0 = default {2, 3}).
	Threads int
	// Schedule restricts the scheduling policy ("" = full matrix);
	// ScheduleSeed parameterizes the random policy.
	Schedule     string
	ScheduleSeed int64
	// QueueCap restricts the synchronization-array depth (0 = defaults).
	QueueCap int
	// Fault arms deterministic fault injection of this class ("" = none).
	Fault     fault.Class
	FaultSeed int64
	// NoSim skips the cycle-level simulator cross-check.
	NoSim bool
}

// IsZero reports whether the config selects the full default matrix.
func (rc ReplayConfig) IsZero() bool { return rc == ReplayConfig{} }

// String renders the config as it appears in the replay directive
// ("full-matrix" for the zero config).
func (rc ReplayConfig) String() string {
	if rc.IsZero() {
		return "full-matrix"
	}
	return rc.directive()
}

// directive renders the config as the replay directive's key=value body.
// Only non-default fields appear, so hand-written corpus files stay terse.
func (rc ReplayConfig) directive() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if rc.Partitioner != "" {
		add("partitioner", rc.Partitioner)
	}
	if rc.Threads != 0 {
		add("threads", strconv.Itoa(rc.Threads))
	}
	if rc.Schedule != "" {
		add("schedule", rc.Schedule)
	}
	if rc.ScheduleSeed != 0 {
		add("sched-seed", strconv.FormatInt(rc.ScheduleSeed, 10))
	}
	if rc.QueueCap != 0 {
		add("qcap", strconv.Itoa(rc.QueueCap))
	}
	if rc.Fault != "" {
		add("fault", string(rc.Fault))
	}
	if rc.FaultSeed != 0 {
		add("fault-seed", strconv.FormatInt(rc.FaultSeed, 10))
	}
	if rc.NoSim {
		add("nosim", "1")
	}
	return strings.Join(parts, " ")
}

// parseReplay parses the body of a replay directive. Unknown keys and
// malformed values are hard errors — a reproducer that silently dropped
// half its configuration would "replay" a different cell.
func parseReplay(body string) (*ReplayConfig, error) {
	rc := &ReplayConfig{}
	for _, field := range strings.Fields(body) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("replay field %q is not key=value", field)
		}
		var err error
		switch k {
		case "partitioner":
			rc.Partitioner = v
		case "threads":
			rc.Threads, err = strconv.Atoi(v)
		case "schedule":
			rc.Schedule = v
		case "sched-seed":
			rc.ScheduleSeed, err = strconv.ParseInt(v, 10, 64)
		case "qcap":
			rc.QueueCap, err = strconv.Atoi(v)
		case "fault":
			var cls fault.Class
			cls, err = fault.ParseClass(v)
			rc.Fault = cls
		case "fault-seed":
			rc.FaultSeed, err = strconv.ParseInt(v, 10, 64)
		case "nosim":
			rc.NoSim = v == "1" || v == "true"
		default:
			return nil, fmt.Errorf("unknown replay key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("replay field %q: %v", field, err)
		}
	}
	return rc, nil
}

// Apply narrows opts to the recorded cell: every set field of the config
// overrides the corresponding matrix dimension. An unknown partitioner
// name is an error.
func (rc *ReplayConfig) Apply(o Options) (Options, error) {
	if rc == nil {
		return o, nil
	}
	switch rc.Partitioner {
	case "":
	case "random":
		o.Partitioners = []partition.Partitioner{}
		o.RandomParts = 1
	case "dswp":
		o.Partitioners = []partition.Partitioner{partition.DSWP{}}
		o.RandomParts = -1
	case "gremio":
		o.Partitioners = []partition.Partitioner{partition.GREMIO{}}
		o.RandomParts = -1
	default:
		return o, fmt.Errorf("oracle: replay: unknown partitioner %q (want dswp, gremio, or random)", rc.Partitioner)
	}
	if rc.Threads > 0 {
		o.Threads = []int{rc.Threads}
	}
	if rc.Schedule != "" {
		o.Schedules = []SchedSpec{{Name: rc.Schedule, Seed: rc.ScheduleSeed}}
	}
	if rc.QueueCap > 0 {
		o.QueueCaps = []int{rc.QueueCap}
	}
	if rc.Fault != "" {
		o.Inject = &fault.Spec{Class: rc.Fault, Seed: rc.FaultSeed}
		if o.SimStallLimit == 0 {
			// Injected deadlocks should fail fast, not burn the sim budget.
			o.SimStallLimit = 50_000
		}
	}
	if rc.NoSim {
		o.SkipSim = true
	}
	return o, nil
}

// FormatCase renders a case as a reproducer file (with its replay
// directive when the case carries one).
func FormatCase(c *Case) string { return FormatRepro(c, c.Replay) }

// FormatRepro renders a case pinned to one matrix cell. A nil or zero
// config writes no replay directive.
func FormatRepro(c *Case, rc *ReplayConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "; oracle case: %s\n", c.Name)
	if c.Seed != 0 {
		fmt.Fprintf(&b, "; seed: %d\n", c.Seed)
	}
	if c.TraceID != "" {
		fmt.Fprintf(&b, "; trace: %s\n", c.TraceID)
	}
	fmt.Fprintf(&b, "; args:%s\n", formatInts(c.Args))
	fmt.Fprintf(&b, "; mem:%s\n", formatInts(c.Mem))
	for _, o := range c.Objects {
		fmt.Fprintf(&b, "; object: %s %d %d\n", o.Name, o.Base, o.Size)
	}
	if rc != nil && !rc.IsZero() {
		fmt.Fprintf(&b, "; replay: %s\n", rc.directive())
	}
	b.WriteString(c.F.String())
	return b.String()
}

func formatInts(vs []int64) string {
	var b strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&b, " %d", v)
	}
	return b.String()
}

// ParseCase parses a reproducer file back into a Case (the replay
// directive, if any, lands in Case.Replay). Truncated or corrupt files —
// malformed directives, unknown replay keys, bad object geometry, an arg
// count that disagrees with the IR, or unparseable IR — are hard errors,
// never best-effort cases.
func ParseCase(text string) (*Case, error) {
	c := &Case{Name: "corpus"}
	for num, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, ";") {
			continue
		}
		line = strings.TrimSpace(strings.TrimPrefix(line, ";"))
		key, rest, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		rest = strings.TrimSpace(rest)
		var err error
		switch strings.TrimSpace(key) {
		case "oracle case":
			c.Name = rest
		case "seed":
			c.Seed, err = strconv.ParseInt(rest, 10, 64)
		case "trace":
			c.TraceID = rest
		case "args":
			c.Args, err = parseInts(rest)
		case "mem":
			c.Mem, err = parseInts(rest)
		case "object":
			var o ir.MemObject
			f := strings.Fields(rest)
			if len(f) != 3 {
				err = fmt.Errorf("want 'name base size', got %q", rest)
				break
			}
			o.Name = f[0]
			if o.Base, err = strconv.ParseInt(f[1], 10, 64); err != nil {
				break
			}
			if o.Size, err = strconv.ParseInt(f[2], 10, 64); err != nil {
				break
			}
			if o.Base < 0 || o.Size <= 0 {
				err = fmt.Errorf("object %s has impossible geometry base=%d size=%d", o.Name, o.Base, o.Size)
				break
			}
			c.Objects = append(c.Objects, o)
		case "replay":
			if c.Replay != nil {
				err = fmt.Errorf("duplicate replay directive")
				break
			}
			c.Replay, err = parseReplay(rest)
		}
		if err != nil {
			return nil, fmt.Errorf("oracle: corpus line %d: %v", num+1, err)
		}
	}
	f, err := ir.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("oracle: corpus IR: %w", err)
	}
	c.F = f
	if err := f.Verify(); err != nil {
		return nil, fmt.Errorf("oracle: corpus IR: %w", err)
	}
	if len(c.Args) != len(f.Params) {
		return nil, fmt.Errorf("oracle: corpus: %d args for %d params", len(c.Args), len(f.Params))
	}
	// Size memory to cover every declared object even when the mem
	// directive is short (trailing zeros may be omitted).
	need := int64(len(c.Mem))
	for _, o := range c.Objects {
		if o.Base+o.Size > need {
			need = o.Base + o.Size
		}
	}
	for int64(len(c.Mem)) < need {
		c.Mem = append(c.Mem, 0)
	}
	return c, nil
}

func parseInts(s string) ([]int64, error) {
	fields := strings.Fields(s)
	vs := make([]int64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, err
		}
		vs = append(vs, v)
	}
	return vs, nil
}

// LoadCorpus parses every .ir file in dir (sorted by name). Each case's
// Name is its file name. A missing directory yields an empty corpus.
func LoadCorpus(dir string) ([]*Case, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".ir") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var cases []*Case
	for _, name := range names {
		text, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		c, err := ParseCase(string(text))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		c.Name = name
		cases = append(cases, c)
	}
	return cases, nil
}
