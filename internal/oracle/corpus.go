package oracle

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// The corpus format is the IR's own textual form prefixed with directive
// comments, so a reproducer file is simultaneously valid input to
// ir.Parse (which strips ';' comments) and self-describing:
//
//	; oracle case: seed=42 (shrunk)
//	; seed: 42
//	; args: 3 -7
//	; mem: 1 0 0 5
//	; object: arr 0 16
//	func rand(r1, r2)
//	entry:
//		...
//
// cmd/gmtcheck prints failing cases in this format; files checked into
// testdata/corpus are re-run by the regression tests.

// FormatCase renders a case as a reproducer file.
func FormatCase(c *Case) string {
	var b strings.Builder
	fmt.Fprintf(&b, "; oracle case: %s\n", c.Name)
	if c.Seed != 0 {
		fmt.Fprintf(&b, "; seed: %d\n", c.Seed)
	}
	fmt.Fprintf(&b, "; args:%s\n", formatInts(c.Args))
	fmt.Fprintf(&b, "; mem:%s\n", formatInts(c.Mem))
	for _, o := range c.Objects {
		fmt.Fprintf(&b, "; object: %s %d %d\n", o.Name, o.Base, o.Size)
	}
	b.WriteString(c.F.String())
	return b.String()
}

func formatInts(vs []int64) string {
	var b strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&b, " %d", v)
	}
	return b.String()
}

// ParseCase parses a reproducer file back into a Case.
func ParseCase(text string) (*Case, error) {
	c := &Case{Name: "corpus"}
	for num, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, ";") {
			continue
		}
		line = strings.TrimSpace(strings.TrimPrefix(line, ";"))
		key, rest, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		rest = strings.TrimSpace(rest)
		var err error
		switch strings.TrimSpace(key) {
		case "oracle case":
			c.Name = rest
		case "seed":
			c.Seed, err = strconv.ParseInt(rest, 10, 64)
		case "args":
			c.Args, err = parseInts(rest)
		case "mem":
			c.Mem, err = parseInts(rest)
		case "object":
			var o ir.MemObject
			f := strings.Fields(rest)
			if len(f) != 3 {
				err = fmt.Errorf("want 'name base size', got %q", rest)
				break
			}
			o.Name = f[0]
			if o.Base, err = strconv.ParseInt(f[1], 10, 64); err != nil {
				break
			}
			if o.Size, err = strconv.ParseInt(f[2], 10, 64); err != nil {
				break
			}
			c.Objects = append(c.Objects, o)
		}
		if err != nil {
			return nil, fmt.Errorf("oracle: corpus line %d: %v", num+1, err)
		}
	}
	f, err := ir.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("oracle: corpus IR: %w", err)
	}
	c.F = f
	if len(c.Args) != len(f.Params) {
		return nil, fmt.Errorf("oracle: corpus: %d args for %d params", len(c.Args), len(f.Params))
	}
	// Size memory to cover every declared object even when the mem
	// directive is short (trailing zeros may be omitted).
	need := int64(len(c.Mem))
	for _, o := range c.Objects {
		if o.Base+o.Size > need {
			need = o.Base + o.Size
		}
	}
	for int64(len(c.Mem)) < need {
		c.Mem = append(c.Mem, 0)
	}
	return c, nil
}

func parseInts(s string) ([]int64, error) {
	fields := strings.Fields(s)
	vs := make([]int64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, err
		}
		vs = append(vs, v)
	}
	return vs, nil
}

// LoadCorpus parses every .ir file in dir (sorted by name). Each case's
// Name is its file name. A missing directory yields an empty corpus.
func LoadCorpus(dir string) ([]*Case, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".ir") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var cases []*Case
	for _, name := range names {
		text, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		c, err := ParseCase(string(text))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		c.Name = name
		cases = append(cases, c)
	}
	return cases, nil
}
