package oracle

import (
	"fmt"

	"repro/internal/ir"
)

// Property reports whether a candidate case still exhibits the behavior
// being minimized (typically: "the oracle still reports this failure" —
// see StillFails).
type Property func(*Case) bool

// DefaultShrinkChecks bounds how many candidate evaluations Shrink may
// spend; each evaluation runs the property, which for StillFails is a
// full oracle pass.
const DefaultShrinkChecks = 2000

// Shrink greedily minimizes a failing case while preserving the
// property. Each round it tries, in order of aggressiveness, to collapse
// a conditional branch to one side (deleting the subgraph that becomes
// unreachable), delete a single instruction, drop a live-out, simplify
// an immediate, and zero inputs; the first accepted candidate restarts
// the round. It returns the smallest case found (possibly c itself).
// maxChecks <= 0 means DefaultShrinkChecks.
//
// Candidates are built on structural clones (print→parse round trips), so
// the input case is never mutated and the result shares no state with it.
//
// A clone that fails to re-parse is an IR printing bug; Shrink stops and
// returns it alongside the best case found so far rather than shrinking
// around it (or crashing mid-shrink).
func Shrink(c *Case, still Property, maxChecks int) (*Case, error) {
	if maxChecks <= 0 {
		maxChecks = DefaultShrinkChecks
	}
	cur := c
	for {
		improved := false
		cands, err := candidates(cur)
		if err != nil {
			return cur, err
		}
		for _, cand := range cands {
			if maxChecks <= 0 {
				return cur, nil
			}
			maxChecks--
			if still(cand) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			return cur, nil
		}
	}
}

// StillFails returns the property "Check with these options still
// reports a failure of kind k" (any kind when k is empty). Candidates
// whose golden run fails (e.g. a shrink broke termination) do not
// qualify.
func StillFails(opts Options, k Kind) Property {
	return func(c *Case) bool {
		rep, err := Check(c, opts)
		if err != nil {
			return false
		}
		if k == "" {
			return !rep.Ok()
		}
		return rep.Has(k)
	}
}

// candidates enumerates one-mutation reductions of c, most aggressive
// first. Every returned case verifies. The error is the first clone
// failure, with whatever candidates were built before it.
func candidates(c *Case) ([]*Case, error) {
	var out []*Case
	var firstErr error
	add := func(m *Case, err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if m != nil && m.F.Verify() == nil {
			out = append(out, m)
		}
	}

	// Collapse each conditional branch to one side; unreachable blocks
	// (often whole loop bodies or hammock arms) disappear with it.
	for bi, b := range c.F.Blocks {
		if t := b.Terminator(); t != nil && t.Op == ir.Br {
			add(collapseBranch(c, bi, 0))
			add(collapseBranch(c, bi, 1))
		}
	}
	// Straighten jump chains: merge a block into its successor when the
	// successor has no other predecessor, deleting the jump.
	for bi, b := range c.F.Blocks {
		if t := b.Terminator(); t != nil && t.Op == ir.Jump {
			add(mergeWithSucc(c, bi))
		}
	}
	// Delete individual non-terminator instructions. A deleted
	// definition leaves its register zero, which the interpreters allow.
	for bi, b := range c.F.Blocks {
		for ii := range b.Body() {
			add(dropInstr(c, bi, ii))
		}
	}
	// Drop live-outs from the Ret.
	if ret := c.F.RetInstr(); ret != nil {
		for i := range ret.Srcs {
			add(dropLiveOut(c, i))
		}
	}
	// Simplify immediates toward zero.
	for bi, b := range c.F.Blocks {
		for ii, in := range b.Instrs {
			if in.Imm != 0 {
				add(setImm(c, bi, ii, 0))
				if in.Imm/2 != 0 {
					add(setImm(c, bi, ii, in.Imm/2))
				}
			}
		}
	}
	// Zero inputs: arguments, then all of memory, then single words.
	for i, a := range c.Args {
		if a != 0 {
			add(setArg(c, i, 0))
		}
	}
	zeroed := false
	for _, v := range c.Mem {
		if v != 0 {
			zeroed = true
			break
		}
	}
	if zeroed {
		m, err := clone(c)
		if m != nil {
			for i := range m.Mem {
				m.Mem[i] = 0
			}
		}
		add(m, err)
	}
	for i, v := range c.Mem {
		if v != 0 {
			m, err := clone(c)
			if m != nil {
				m.Mem[i] = 0
			}
			add(m, err)
		}
	}
	return out, firstErr
}

// clone deep-copies a case via a print→parse round trip of the function
// (the same round trip the IR tests guarantee is lossless). The case came
// from the builder or a previous parse, so a failure to re-parse means an
// IR printing bug, which must be surfaced — not silently shrunk around.
func clone(c *Case) (*Case, error) {
	f, err := ir.Parse(c.F.String())
	if err != nil {
		return nil, fmt.Errorf("oracle: clone %s: %w", c.Name, err)
	}
	return &Case{
		Name:    c.Name,
		Seed:    c.Seed,
		F:       f,
		Objects: append([]ir.MemObject(nil), c.Objects...),
		Args:    append([]int64(nil), c.Args...),
		Mem:     append([]int64(nil), c.Mem...),
		Replay:  c.Replay,
	}, nil
}

// collapseBranch replaces block bi's conditional branch with an
// unconditional jump to successor side, then prunes unreachable blocks.
func collapseBranch(c *Case, bi, side int) (*Case, error) {
	m, err := clone(c)
	if err != nil {
		return nil, err
	}
	b := m.F.Blocks[bi]
	t := b.Terminator()
	if t == nil || t.Op != ir.Br || side >= len(b.Succs) {
		return nil, nil
	}
	keep := b.Succs[side]
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
	b.Append(m.F.NewInstr(ir.Jump, ir.NoReg))
	b.SetSuccs(keep)
	pruneUnreachable(m.F)
	return m, nil
}

// mergeWithSucc splices block bi's sole successor into it, dropping the
// jump between them. Legal only when the successor has no other
// predecessor (so execution order is unchanged).
func mergeWithSucc(c *Case, bi int) (*Case, error) {
	m, err := clone(c)
	if err != nil {
		return nil, err
	}
	b := m.F.Blocks[bi]
	t := b.Terminator()
	if t == nil || t.Op != ir.Jump {
		return nil, nil
	}
	s := b.Succs[0]
	if s == b || len(s.Preds) != 1 {
		return nil, nil
	}
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
	for _, in := range s.Instrs {
		b.Append(in)
	}
	b.SetSuccs(s.Succs...)
	s.Instrs = nil
	pruneUnreachable(m.F)
	return m, nil
}

// dropInstr deletes the ii-th body instruction of block bi.
func dropInstr(c *Case, bi, ii int) (*Case, error) {
	m, err := clone(c)
	if err != nil {
		return nil, err
	}
	b := m.F.Blocks[bi]
	if ii >= len(b.Body()) {
		return nil, nil
	}
	b.Instrs = append(b.Instrs[:ii], b.Instrs[ii+1:]...)
	return m, nil
}

// dropLiveOut removes the i-th live-out from the Ret.
func dropLiveOut(c *Case, i int) (*Case, error) {
	m, err := clone(c)
	if err != nil {
		return nil, err
	}
	ret := m.F.RetInstr()
	if ret == nil || i >= len(ret.Srcs) {
		return nil, nil
	}
	ret.Srcs = append(append([]ir.Reg(nil), ret.Srcs[:i]...), ret.Srcs[i+1:]...)
	return m, nil
}

// setImm replaces the immediate of instruction (bi, ii) with v.
func setImm(c *Case, bi, ii int, v int64) (*Case, error) {
	m, err := clone(c)
	if err != nil {
		return nil, err
	}
	b := m.F.Blocks[bi]
	if ii >= len(b.Instrs) {
		return nil, nil
	}
	b.Instrs[ii].Imm = v
	return m, nil
}

// setArg replaces argument i with v.
func setArg(c *Case, i int, v int64) (*Case, error) {
	m, err := clone(c)
	if err != nil {
		return nil, err
	}
	m.Args[i] = v
	return m, nil
}

// pruneUnreachable removes blocks unreachable from the entry, reindexing
// block IDs and predecessor lists so the function verifies again.
func pruneUnreachable(f *ir.Function) {
	reach := map[*ir.Block]bool{f.Entry(): true}
	work := []*ir.Block{f.Entry()}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = append([]*ir.Block(nil), kept...)
	for i, b := range f.Blocks {
		b.ID = i
		preds := b.Preds[:0]
		for _, p := range b.Preds {
			if reach[p] {
				preds = append(preds, p)
			}
		}
		b.Preds = append([]*ir.Block(nil), preds...)
	}
}
