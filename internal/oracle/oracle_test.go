package oracle

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/pdg"
	"repro/internal/queue"
)

// TestCheckKnownGoodSeeds is the seeded smoke pass: the full differential
// matrix must be clean on generated programs. The native fuzz target
// (FuzzMTEquivalence) explores beyond these seeds.
func TestCheckKnownGoodSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 42}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		c := Generate(seed)
		rep, err := Check(c, Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Err(); err != nil {
			t.Errorf("seed %d: %v\nreproducer:\n%s", seed, err, FormatCase(c))
		}
		if rep.Runs == 0 || rep.Programs == 0 {
			t.Fatalf("seed %d: oracle ran nothing (%d runs, %d programs)", seed, rep.Runs, rep.Programs)
		}
	}
}

// tinyCase builds a deterministic two-thread case with one cross-thread
// register dependence, returning the compiled program for corruption
// tests.
func tinyCase(t *testing.T) (*Case, *Golden, *mtcg.Program) {
	t.Helper()
	b := ir.NewBuilder("tiny")
	p1 := b.Param()
	c5 := b.Const(5)
	sum := b.Add(p1, c5)
	prod := b.Mul(sum, p1)
	b.Ret(sum, prod)

	c := &Case{Name: "tiny", F: b.F, Args: []int64{7}, Mem: []int64{}}
	g, err := RunGolden(c, 1000)
	if err != nil {
		t.Fatal(err)
	}

	assign := map[*ir.Instr]int{}
	b.F.Instrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.Jump, ir.Nop:
		case ir.Mul, ir.Ret:
			assign[in] = 1
		default:
			assign[in] = 0
		}
	})
	plan := mtcg.NaivePlan(b.F, pdg.Build(b.F, nil), assign, 2)
	prog, err := mtcg.Generate(plan)
	if err != nil {
		t.Fatal(err)
	}
	queue.Allocate(prog)
	return c, g, prog
}

// TestCheckProgramAcceptsCorrectCode pins the baseline: the uncorrupted
// tiny program is clean.
func TestCheckProgramAcceptsCorrectCode(t *testing.T) {
	c, g, prog := tinyCase(t)
	rep := &Report{}
	CheckProgram(rep, c.Name, g, "tiny", prog, c.Args, c.Mem, Options{})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckProgramDetectsWrongValue corrupts a constant in one thread:
// every interpreter schedule and the simulator must report the wrong
// live-outs.
func TestCheckProgramDetectsWrongValue(t *testing.T) {
	c, g, prog := tinyCase(t)
	corrupted := false
	prog.Threads[0].Instrs(func(in *ir.Instr) {
		if in.Op == ir.Const && in.Imm == 5 {
			in.Imm = 6
			corrupted = true
		}
	})
	if !corrupted {
		t.Fatal("no constant found to corrupt")
	}
	rep := &Report{}
	CheckProgram(rep, c.Name, g, "tiny", prog, c.Args, c.Mem, Options{})
	if !rep.Has(LiveOutMismatch) {
		t.Fatalf("corrupted constant not detected: %+v", rep.Failures)
	}
	if !rep.Has(SimDivergence) {
		t.Fatalf("simulator did not flag the corrupted constant: %+v", rep.Failures)
	}
}

// TestCheckProgramDetectsMissingProduce deletes a produce instruction:
// the consumer must block forever and the oracle must classify it as a
// deadlock, quoting the blocked-thread diagnostic.
func TestCheckProgramDetectsMissingProduce(t *testing.T) {
	c, g, prog := tinyCase(t)
	deleted := false
	for _, blk := range prog.Threads[0].Blocks {
		for i, in := range blk.Instrs {
			if in.Op == ir.Produce {
				blk.Instrs = append(blk.Instrs[:i], blk.Instrs[i+1:]...)
				deleted = true
				break
			}
		}
		if deleted {
			break
		}
	}
	if !deleted {
		t.Fatal("no produce found to delete")
	}
	rep := &Report{}
	CheckProgram(rep, c.Name, g, "tiny", prog, c.Args, c.Mem, Options{})
	if !rep.Has(Deadlock) {
		t.Fatalf("missing produce not detected as deadlock: %+v", rep.Failures)
	}
	for _, f := range rep.Failures {
		if f.Kind == Deadlock && !strings.Contains(f.Detail, "blocked at") {
			t.Fatalf("deadlock report lacks the blocked-thread diagnostic: %q", f.Detail)
		}
	}
}

// TestCheckProgramDetectsQueueImbalance injects a produce whose value is
// never consumed: queue balance must fail even though live-outs remain
// correct.
func TestCheckProgramDetectsQueueImbalance(t *testing.T) {
	c, g, prog := tinyCase(t)
	q := prog.NumQueues
	extra := prog.Threads[0].NewInstr(ir.ProduceSync, ir.NoReg)
	extra.Queue = q
	prog.Threads[0].Entry().InsertAt(0, extra)
	prog.NumQueues = q + 1
	prog.Threads[0].NumQueues = q + 1

	rep := &Report{}
	CheckProgram(rep, c.Name, g, "tiny", prog, c.Args, c.Mem, Options{})
	if !rep.Has(InvariantViolation) {
		t.Fatalf("unconsumed produce not detected: %+v", rep.Failures)
	}
	if rep.Has(LiveOutMismatch) || rep.Has(MemMismatch) {
		t.Fatalf("imbalance corrupted outputs unexpectedly: %+v", rep.Failures)
	}
}

// TestShrinkMinimizes shrinks a generated program against a synthetic
// property ("still contains a multiply") and must reduce it to a
// near-minimal function.
func TestShrinkMinimizes(t *testing.T) {
	hasMul := func(c *Case) bool {
		found := false
		c.F.Instrs(func(in *ir.Instr) {
			if in.Op == ir.Mul {
				found = true
			}
		})
		return found
	}
	var c *Case
	for seed := int64(1); seed < 50; seed++ {
		if cand := Generate(seed); hasMul(cand) && cand.F.NumInstrs() >= 20 {
			c = cand
			break
		}
	}
	if c == nil {
		t.Fatal("no seed produced a program with a multiply")
	}
	min, err := Shrink(c, hasMul, 100_000)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if err := min.F.Verify(); err != nil {
		t.Fatalf("shrunk program invalid: %v\n%s", err, min.F)
	}
	if !hasMul(min) {
		t.Fatalf("shrink lost the property:\n%s", min.F)
	}
	if got, orig := min.F.NumInstrs(), c.F.NumInstrs(); got >= orig {
		t.Fatalf("no reduction: %d instrs, started with %d", got, orig)
	}
	if got := min.F.NumInstrs(); got > 4 {
		t.Errorf("shrink left %d instructions, want <= 4 (mul + ret and little else):\n%s", got, min.F)
	}
	if got := len(min.F.Blocks); got > 2 {
		t.Errorf("shrink left %d blocks, want <= 2:\n%s", got, min.F)
	}
}

// TestShrinkPreservesOracleFailure shrinks a case against the oracle
// property itself, seeded with a corrupted-compilation detector: a
// program whose golden run breaks under shrinking must be rejected.
func TestShrinkStillFailsRejectsBrokenGolden(t *testing.T) {
	// A case whose function fails verification would panic the clone; a
	// case that exceeds the step budget must simply not satisfy the
	// property.
	b := ir.NewBuilder("spin")
	p := b.Param()
	loop := b.Block("loop")
	b.Jump(loop)
	b.SetBlock(loop)
	b.Jump(loop)
	_ = p
	c := &Case{Name: "spin", F: b.F, Args: []int64{0}, Mem: []int64{}}
	if StillFails(Options{MaxSteps: 1000}, "")(c) {
		t.Fatal("non-terminating case satisfied the failure property")
	}
}

// TestFormatParseRoundTrip checks the corpus format reconstructs a case
// exactly.
func TestFormatParseRoundTrip(t *testing.T) {
	c := Generate(7)
	text := FormatCase(c)
	got, err := ParseCase(text)
	if err != nil {
		t.Fatalf("ParseCase: %v\n%s", err, text)
	}
	if got.Name != c.Name || got.Seed != c.Seed {
		t.Errorf("identity lost: %q/%d, want %q/%d", got.Name, got.Seed, c.Name, c.Seed)
	}
	if got.F.String() != c.F.String() {
		t.Errorf("function changed:\n%s\nvs\n%s", got.F, c.F)
	}
	if len(got.Args) != len(c.Args) || len(got.Mem) != len(c.Mem) ||
		len(got.Objects) != len(c.Objects) {
		t.Fatalf("shape changed: %d args %d mem %d objects", len(got.Args), len(got.Mem), len(got.Objects))
	}
	for i := range c.Args {
		if got.Args[i] != c.Args[i] {
			t.Errorf("arg %d = %d, want %d", i, got.Args[i], c.Args[i])
		}
	}
	for i := range c.Mem {
		if got.Mem[i] != c.Mem[i] {
			t.Errorf("mem %d = %d, want %d", i, got.Mem[i], c.Mem[i])
		}
	}
	if got.Objects[0] != c.Objects[0] {
		t.Errorf("object 0 = %+v, want %+v", got.Objects[0], c.Objects[0])
	}
}

// TestCorpusRegressions re-runs every checked-in reproducer through the
// full oracle: once a bug is fixed, its shrunk case stays fixed.
func TestCorpusRegressions(t *testing.T) {
	cases, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("corpus is empty; testdata/corpus must hold at least one reproducer")
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			rep, err := Check(c, Options{Seed: c.Seed})
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckDeterministicRepeat pins corpus-level determinism end to end:
// the optimized interpreter and simulator hot paths (ring queues, fast
// scheduler loop, memoized stall cycles) must not introduce any run-order
// or timing dependence, so two full oracle passes over the same corpus
// under the same seed render byte-identical reports.
func TestCheckDeterministicRepeat(t *testing.T) {
	cases, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		var b strings.Builder
		for _, c := range cases {
			rep, err := Check(c, Options{Seed: c.Seed})
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			fmt.Fprintf(&b, "%s: programs=%d runs=%d injected=%d sched=%q\n",
				c.Name, rep.Programs, rep.Runs, rep.Injected, rep.FaultSchedule)
			for _, f := range rep.Failures {
				fmt.Fprintf(&b, "  %s\n", f)
			}
		}
		return b.String()
	}
	first := render()
	for trial := 1; trial < 3; trial++ {
		if got := render(); got != first {
			t.Fatalf("oracle corpus report differs on repeat %d:\n--- first ---\n%s--- repeat ---\n%s",
				trial, first, got)
		}
	}
}
