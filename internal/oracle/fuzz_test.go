package oracle

import (
	"errors"
	"testing"

	"repro/internal/interp"
)

// FuzzMTEquivalence is the native entry point to the differential
// oracle: the fuzzer explores program-generator seeds, and every seed's
// program must be clean across the full executor × partition × schedule
// × queue-depth matrix. Run with
//
//	go test -fuzz=FuzzMTEquivalence -fuzztime=30s ./internal/oracle
//
// Failing seeds minimize automatically (the seed shrinks, then
// cmd/gmtcheck -seed N -shrink minimizes the program itself).
func FuzzMTEquivalence(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1337, 99991, -3} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := Generate(seed)
		rep, err := Check(c, Options{Seed: seed})
		if err != nil {
			// The generated program is unusable under the oracle budget
			// (not a correctness bug) — only acceptable for a step-limit
			// blowup, which generated programs should not hit.
			if errors.Is(err, interp.ErrStepLimit) {
				t.Skipf("seed %d exceeds the oracle step budget: %v", seed, err)
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("seed %d: %v\nreproducer:\n%s", seed, err, FormatCase(c))
		}
	})
}
