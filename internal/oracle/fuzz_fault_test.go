package oracle

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/interp"
)

// FuzzFaultInjection drives the detector-coverage contract over random
// programs: a random generator seed × a random fault schedule must always
// yield either a classified oracle failure (every failure carries a named
// Kind) or a clean tolerated run — never a panic, and for benign fault
// classes (bounded stalls, shrunken queues) never a wrong result. Run with
//
//	go test -fuzz=FuzzFaultInjection -fuzztime=30s ./internal/oracle
func FuzzFaultInjection(f *testing.F) {
	classes := fault.RuntimeClasses()
	for i := range classes {
		f.Add(int64(1), int64(1), byte(i))
		f.Add(int64(42), int64(7), byte(i))
	}
	f.Add(int64(557), int64(-3), byte(0))
	f.Fuzz(func(t *testing.T, progSeed, faultSeed int64, classIdx byte) {
		cls := classes[int(classIdx)%len(classes)]
		c := Generate(progSeed)
		opts := Options{
			Seed:          progSeed,
			Inject:        &fault.Spec{Class: cls, Seed: faultSeed},
			SimStallLimit: 50_000, // injected deadlocks fail fast in the sim
		}
		rep, err := Check(c, opts)
		if err != nil {
			// Infrastructure errors, not detections. Only a budget blowup
			// is acceptable for a generated program.
			if errors.Is(err, interp.ErrStepLimit) {
				t.Skipf("seed %d exceeds the oracle step budget: %v", progSeed, err)
			}
			t.Fatalf("seed %d class %s fault-seed %d: %v", progSeed, cls, faultSeed, err)
		}
		for _, fl := range rep.Failures {
			if fl.Kind == "" {
				t.Fatalf("seed %d class %s: unclassified failure: %v", progSeed, cls, fl)
			}
		}
		if cls.Benign() && !rep.Ok() {
			t.Fatalf("seed %d: benign class %s (fault-seed %d, %d injected) must be tolerated, got:\n%v\nreproducer:\n%s",
				progSeed, cls, faultSeed, rep.Injected, rep.Err(), FormatCase(c))
		}
		if rep.Injected > 0 && rep.FaultSchedule == "" {
			t.Fatalf("seed %d class %s: %d faults injected but no schedule recorded",
				progSeed, cls, rep.Injected)
		}
	})
}
