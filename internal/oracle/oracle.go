// Package oracle is the differential-execution oracle: it runs the same
// region through all three executors — the single-threaded interpreter
// (the golden reference), the multi-threaded interpreter under a matrix
// of scheduling policies and queue depths, and the cycle-level simulator
// — and cross-checks their outcomes.
//
// A correct MTCG compilation is schedule-independent: live-outs, final
// memory, and dynamic produce/consume counts must not depend on which
// runnable thread steps first or how deep the synchronization-array
// queues are. The oracle exploits this to turn any interleaving
// divergence, deadlock, or accounting mismatch into a reported failure.
// Beyond output equivalence it asserts internal invariants:
//
//   - queue balance: every value produced into a queue is consumed;
//   - queue ownership: each queue has exactly one producing and one
//     consuming thread, matching the communication plan;
//   - step accounting: RunMT's step counter equals the per-role totals;
//   - schedule independence: dynamic instruction and queue-traffic
//     counts are identical under every scheduling policy;
//   - sim agreement: the simulator's functional results and dynamic
//     produce/consume counts match the interpreter's.
//
// The package also ships a test-case shrinker (Shrink) that minimizes a
// failing random program to a small reproducer, and a corpus format
// (FormatCase/ParseCase) for checking reproducers in as regression tests.
package oracle

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/coco"
	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/partition"
	"repro/internal/pdg"
	"repro/internal/queue"
	"repro/internal/randprog"
	"repro/internal/sim"
)

// Case is one differential test case: a region plus one concrete input.
type Case struct {
	// Name identifies the case in failure reports ("seed=42", a corpus
	// file name, or a workload name).
	Name string
	// Seed records the randprog seed the case came from (0 if hand
	// written); it is provenance only.
	Seed    int64
	F       *ir.Function
	Objects []ir.MemObject
	Args    []int64
	Mem     []int64
	// Replay, when non-nil, records the matrix cell the case failed in;
	// it travels with the reproducer file (see corpus.go) but Check does
	// not apply it implicitly — callers opt in via ReplayConfig.Apply.
	Replay *ReplayConfig
	// TraceID, when set, links the reproducer back to the telemetry of
	// the run that found it (obs.TraceID form). Provenance only: it
	// never affects how the case runs.
	TraceID string
}

// FromProgram wraps a generated random program as a Case.
func FromProgram(name string, seed int64, p *randprog.Program) *Case {
	return &Case{Name: name, Seed: seed, F: p.F, Objects: p.Objects, Args: p.Args, Mem: p.Mem}
}

// Generate builds the deterministic random case for a seed.
func Generate(seed int64) *Case {
	rng := rand.New(rand.NewSource(seed))
	p := randprog.Generate(rng, randprog.DefaultOptions())
	return FromProgram(fmt.Sprintf("seed=%d", seed), seed, p)
}

// SchedSpec names a scheduling policy so a run can be reproduced from a
// report (scheduler values are stateful; each run needs a fresh one).
type SchedSpec struct {
	// Name is a policy accepted by interp.SchedulerByName.
	Name string
	// Seed parameterizes the random policy.
	Seed int64
}

// New instantiates the policy.
func (s SchedSpec) New() (interp.Scheduler, error) {
	return interp.SchedulerByName(s.Name, s.Seed)
}

// String renders the spec for failure labels.
func (s SchedSpec) String() string {
	if s.Name == "random" {
		return fmt.Sprintf("random(%d)", s.Seed)
	}
	return s.Name
}

// DefaultSchedules is the policy matrix the acceptance criteria require:
// round-robin, three seeded random interleavings, and the adversarial
// longest-blocked-first policy.
func DefaultSchedules(seed int64) []SchedSpec {
	return []SchedSpec{
		{Name: "round-robin"},
		{Name: "random", Seed: seed},
		{Name: "random", Seed: seed + 1},
		{Name: "random", Seed: seed + 2},
		{Name: "adversarial"},
	}
}

// Options configures the matrix Check explores. The zero value means the
// full default matrix (sim check included).
type Options struct {
	// Threads lists thread counts to partition into (default {2, 3}).
	Threads []int
	// Partitioners are the real partitioners to exercise (default DSWP
	// and GREMIO).
	Partitioners []partition.Partitioner
	// RandomParts is the number of uniform random partitions per thread
	// count (default 2; set negative to disable).
	RandomParts int
	// Seed drives the random partitions and the default schedule matrix.
	Seed int64
	// Schedules is the scheduling-policy matrix (default
	// DefaultSchedules(Seed)).
	Schedules []SchedSpec
	// QueueCaps lists synchronization-array depths to run under
	// (default {1, 32}: the two depths the paper evaluates).
	QueueCaps []int
	// SkipSim disables the cycle-level simulator cross-check.
	SkipSim bool
	// MaxSteps bounds each interpreter run (default 5M).
	MaxSteps int64
	// SimCycles bounds each simulator run (default 50M).
	SimCycles int64
	// SimStallLimit overrides the simulator's no-progress watchdog
	// (sim.Config.StallLimit); 0 keeps the default. Chaos runs lower it so
	// an injected deadlock fails fast.
	SimStallLimit int64
	// Inject, when non-nil, arms deterministic fault injection: every
	// executor run gets a fresh injector built from this spec, so the same
	// spec yields the same fault schedule on every run. The injected-fault
	// count and first fault schedule are reported in Report.Injected and
	// Report.FaultSchedule. With a destructive fault armed, failures are
	// the expected outcome — the detector-coverage matrix asserts they
	// appear.
	Inject *fault.Spec
}

func (o Options) withDefaults() Options {
	if o.Threads == nil {
		o.Threads = []int{2, 3}
	}
	if o.Partitioners == nil {
		o.Partitioners = []partition.Partitioner{partition.DSWP{}, partition.GREMIO{}}
	}
	if o.RandomParts == 0 {
		o.RandomParts = 2
	}
	if o.RandomParts < 0 {
		o.RandomParts = 0
	}
	if o.Schedules == nil {
		o.Schedules = DefaultSchedules(o.Seed)
	}
	if o.QueueCaps == nil {
		o.QueueCaps = []int{1, interp.DefaultQueueCap}
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 5_000_000
	}
	if o.SimCycles == 0 {
		o.SimCycles = 50_000_000
	}
	return o
}

// Kind classifies a failure.
type Kind string

const (
	// LiveOutMismatch: an executor's live-outs differ from the golden run.
	LiveOutMismatch Kind = "live-out-mismatch"
	// MemMismatch: an executor's final memory differs from the golden run.
	MemMismatch Kind = "memory-mismatch"
	// Deadlock: the multi-threaded run deadlocked.
	Deadlock Kind = "deadlock"
	// InvariantViolation: an internal invariant (queue balance, queue
	// ownership, step accounting, schedule independence) failed.
	InvariantViolation Kind = "invariant-violation"
	// SimDivergence: the simulator disagrees with the interpreters.
	SimDivergence Kind = "sim-divergence"
	// ExecError: a compilation stage or executor returned an error.
	ExecError Kind = "error"
)

// Failure is one divergence found by the oracle.
type Failure struct {
	// Case names the test case.
	Case string
	// Config identifies the configuration, e.g. "dswp/2t/coco/cap=1/adversarial".
	Config string
	Kind   Kind
	Detail string
}

// String renders the failure on one line (details may span more).
func (f Failure) String() string {
	return fmt.Sprintf("[%s] %s: %s: %s", f.Kind, f.Case, f.Config, f.Detail)
}

// Report aggregates an oracle pass.
type Report struct {
	// Programs is the number of generated multi-threaded programs checked.
	Programs int
	// Runs is the number of executor runs performed.
	Runs     int
	Failures []Failure
	// Injected counts faults injected across all runs (always 0 without
	// Options.Inject).
	Injected int64
	// FaultSchedule is the first run's rendered fault schedule — a
	// deterministic function of the fault spec and the program, so reports
	// under the same seed are byte-identical.
	FaultSchedule string
}

// Ok reports whether no failure was found.
func (r *Report) Ok() bool { return len(r.Failures) == 0 }

// Has reports whether a failure of kind k was found.
func (r *Report) Has(k Kind) bool {
	for _, f := range r.Failures {
		if f.Kind == k {
			return true
		}
	}
	return false
}

// Merge folds another report into r.
func (r *Report) Merge(o *Report) {
	r.Programs += o.Programs
	r.Runs += o.Runs
	r.Failures = append(r.Failures, o.Failures...)
	r.Injected += o.Injected
	if r.FaultSchedule == "" {
		r.FaultSchedule = o.FaultSchedule
	}
}

// Err returns nil when the report is clean, or an error summarizing the
// first failures.
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "oracle: %d failure(s) in %d runs over %d programs:",
		len(r.Failures), r.Runs, r.Programs)
	for i, f := range r.Failures {
		if i == 3 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(r.Failures)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", f)
	}
	return errors.New(b.String())
}

func (r *Report) add(caseName, config string, kind Kind, detail string) {
	r.Failures = append(r.Failures, Failure{Case: caseName, Config: config, Kind: kind, Detail: detail})
}

// Golden is the single-threaded reference outcome every other executor is
// compared against.
type Golden struct {
	LiveOuts []int64
	Mem      []int64
	Steps    int64
	Profile  *ir.Profile
}

// RunGolden executes the case single-threaded. An error here means the
// case itself is bad (e.g. it exceeds the step budget), not that a bug
// was found.
func RunGolden(c *Case, maxSteps int64) (*Golden, error) {
	res, err := interp.Run(c.F, c.Args, append([]int64(nil), c.Mem...), maxSteps)
	if err != nil {
		return nil, err
	}
	return &Golden{LiveOuts: res.LiveOuts, Mem: res.Mem, Steps: res.Steps, Profile: res.Profile}, nil
}

// Check runs the full differential matrix on one case: every partition
// source × {naive, COCO} communication plan, each compiled program
// executed under every scheduling policy and queue depth and (unless
// disabled) the cycle-level simulator. The returned error reports an
// unusable case (golden run failed); divergences are in the Report.
func Check(c *Case, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	g, err := RunGolden(c, opts.MaxSteps)
	if err != nil {
		return nil, fmt.Errorf("oracle: golden run of %s: %w", c.Name, err)
	}
	graph := pdg.Build(c.F, c.Objects)
	rep := &Report{}
	rng := rand.New(rand.NewSource(opts.Seed))

	type source struct {
		label  string
		assign map[*ir.Instr]int
		n      int
	}
	var sources []source
	for _, p := range opts.Partitioners {
		for _, n := range opts.Threads {
			label := fmt.Sprintf("%s/%dt", p.Name(), n)
			assign, err := p.Partition(c.F, graph, g.Profile, n)
			if err != nil {
				rep.add(c.Name, label, ExecError, "partition: "+err.Error())
				continue
			}
			sources = append(sources, source{label, assign, n})
		}
	}
	for _, n := range opts.Threads {
		for k := 0; k < opts.RandomParts; k++ {
			sources = append(sources, source{
				fmt.Sprintf("random-part%d/%dt", k, n),
				randprog.RandomPartition(rng, c.F, n), n,
			})
		}
	}

	for _, s := range sources {
		checkPlan(rep, c, g, s.label+"/naive", mtcg.NaivePlan(c.F, graph, s.assign, s.n), opts)
		cp, err := coco.Plan(c.F, graph, s.assign, s.n, g.Profile, coco.DefaultOptions())
		if err != nil {
			rep.add(c.Name, s.label+"/coco", ExecError, "coco: "+err.Error())
			continue
		}
		checkPlan(rep, c, g, s.label+"/coco", cp, opts)
	}
	return rep, nil
}

// checkPlan compiles one communication plan and cross-checks the result.
func checkPlan(rep *Report, c *Case, g *Golden, label string, plan *mtcg.Plan, opts Options) {
	prog, err := mtcg.Generate(plan)
	if err != nil {
		rep.add(c.Name, label, ExecError, "mtcg: "+err.Error())
		return
	}
	for _, ft := range prog.Threads {
		if err := ft.Verify(); err != nil {
			rep.add(c.Name, label, InvariantViolation,
				fmt.Sprintf("generated thread %s invalid: %v", ft.Name, err))
			return
		}
	}
	queue.Allocate(prog)
	// The compile-time fault class rewires the communication plan itself;
	// runtime injectors never see it (Injector ignores the class), so it
	// is applied here, between code generation and execution.
	if opts.Inject != nil && opts.Inject.Class == fault.MisplacePlan {
		mut, desc, applied, err := fault.Misplan(prog, opts.Inject.Seed)
		if err != nil {
			rep.add(c.Name, label, ExecError, "misplan: "+err.Error())
			return
		}
		if applied {
			prog = mut
			rep.Injected++
			if rep.FaultSchedule == "" {
				rep.FaultSchedule = desc
			}
		}
	}
	CheckProgram(rep, c.Name, g, label, prog, c.Args, c.Mem, opts)
}

// CheckProgram cross-checks one compiled multi-threaded program against
// the golden outcome: the interpreter under every schedule × queue depth
// of opts, the internal invariants, and (unless opts.SkipSim) the
// simulator. Failures are appended to rep. The experiment harness uses
// this entry point directly on the workload pipelines.
func CheckProgram(rep *Report, caseName string, g *Golden, label string,
	prog *mtcg.Program, args, mem []int64, opts Options) {
	opts = opts.withDefaults()
	rep.Programs++

	// Each executor run gets a fresh injector from the armed spec (an
	// injector is single-run state, like a Scheduler); afterwards the run's
	// injection count and first fault schedule fold into the report.
	newInjector := func() *fault.Injector {
		if opts.Inject == nil {
			return nil
		}
		return opts.Inject.New()
	}
	recordInjector := func(inj *fault.Injector) {
		if inj == nil {
			return
		}
		rep.Injected += inj.Count()
		if rep.FaultSchedule == "" {
			rep.FaultSchedule = inj.Schedule()
		}
	}

	prodOf, consOf, err := queueOwners(prog)
	if err != nil {
		rep.add(caseName, label, InvariantViolation, err.Error())
		return
	}

	// ref is the first successful interpreter run; every later run must
	// reproduce its dynamic counts exactly (schedule independence).
	var ref *interp.MTResult
	refConfig := ""
	for _, qcap := range opts.QueueCaps {
		for _, ss := range opts.Schedules {
			config := fmt.Sprintf("%s/cap=%d/%s", label, qcap, ss)
			sched, err := ss.New()
			if err != nil {
				rep.add(caseName, config, ExecError, err.Error())
				continue
			}
			inj := newInjector()
			mt, err := interp.RunMT(interp.MTConfig{
				Threads: prog.Threads, NumQueues: prog.NumQueues,
				QueueCap: qcap, Sched: sched, Assign: prog.Assign,
				Args: args, Mem: append([]int64(nil), mem...),
				MaxSteps: opts.MaxSteps, Inject: inj,
			})
			rep.Runs++
			recordInjector(inj)
			if err != nil {
				kind := ExecError
				if errors.Is(err, interp.ErrDeadlock) {
					kind = Deadlock
				}
				rep.add(caseName, config, kind, err.Error())
				continue
			}
			if d := diffVals("live-out", mt.LiveOuts, g.LiveOuts); d != "" {
				rep.add(caseName, config, LiveOutMismatch, d)
			}
			if d := diffVals("mem", mt.Mem, g.Mem); d != "" {
				rep.add(caseName, config, MemMismatch, d)
			}
			checkRunInvariants(rep, caseName, config, mt, prodOf, consOf)
			if ref == nil {
				ref, refConfig = mt, config
			} else {
				checkScheduleIndependence(rep, caseName, config, refConfig, mt, ref)
			}
		}
	}

	if opts.SkipSim || ref == nil {
		return
	}
	for _, qcap := range opts.QueueCaps {
		config := fmt.Sprintf("%s/cap=%d/sim", label, qcap)
		cfg := sim.DefaultConfig()
		cfg.QueueCap = qcap
		if len(prog.Threads) > cfg.Cores {
			cfg.Cores = len(prog.Threads)
		}
		if prog.NumQueues > cfg.NumQueues {
			cfg.NumQueues = prog.NumQueues
		}
		if opts.SimStallLimit > 0 {
			cfg.StallLimit = opts.SimStallLimit
		}
		inj := newInjector()
		sr, err := sim.RunInjected(cfg, prog.Threads, args, append([]int64(nil), mem...), opts.SimCycles, nil, inj)
		rep.Runs++
		recordInjector(inj)
		if err != nil {
			rep.add(caseName, config, SimDivergence, err.Error())
			continue
		}
		if d := diffVals("live-out", sr.LiveOuts, g.LiveOuts); d != "" {
			rep.add(caseName, config, SimDivergence, d)
		}
		if d := diffVals("mem", sr.Mem, g.Mem); d != "" {
			rep.add(caseName, config, SimDivergence, d)
		}
		var simProd, simCons int64
		for _, cs := range sr.PerCore {
			simProd += cs.Produces
			simCons += cs.Consumes
		}
		intProd := ref.Stats.Produce + ref.Stats.ProduceSync
		intCons := ref.Stats.Consume + ref.Stats.ConsumeSync
		if simProd != intProd || simCons != intCons {
			rep.add(caseName, config, SimDivergence, fmt.Sprintf(
				"dynamic communication disagrees with interpreter: sim produced %d consumed %d, interp produced %d consumed %d",
				simProd, simCons, intProd, intCons))
		}
	}
}

// queueOwners derives, from the generated thread code, which thread
// produces into and consumes from each queue, checking single-ownership
// and agreement with the communication table.
func queueOwners(prog *mtcg.Program) (prodOf, consOf []int, err error) {
	prodOf = make([]int, prog.NumQueues)
	consOf = make([]int, prog.NumQueues)
	for q := range prodOf {
		prodOf[q], consOf[q] = -1, -1
	}
	claim := func(owners []int, q, t int, role string) error {
		if q < 0 || q >= len(owners) {
			return fmt.Errorf("queue %d out of range [0,%d)", q, len(owners))
		}
		if owners[q] >= 0 && owners[q] != t {
			return fmt.Errorf("queue %d %sd by both thread %d and thread %d", q, role, owners[q], t)
		}
		owners[q] = t
		return nil
	}
	for t, fn := range prog.Threads {
		var werr error
		fn.Instrs(func(in *ir.Instr) {
			if werr != nil {
				return
			}
			switch in.Op {
			case ir.Produce, ir.ProduceSync:
				werr = claim(prodOf, in.Queue, t, "produce")
			case ir.Consume, ir.ConsumeSync:
				werr = claim(consOf, in.Queue, t, "consume")
			}
		})
		if werr != nil {
			return nil, nil, fmt.Errorf("queue ownership: %w", werr)
		}
	}
	for _, cm := range prog.Comms {
		if prodOf[cm.Queue] >= 0 && prodOf[cm.Queue] != cm.Src {
			return nil, nil, fmt.Errorf(
				"queue ownership: comm table says queue %d is produced by thread %d, code says thread %d",
				cm.Queue, cm.Src, prodOf[cm.Queue])
		}
		if consOf[cm.Queue] >= 0 && consOf[cm.Queue] != cm.Dst {
			return nil, nil, fmt.Errorf(
				"queue ownership: comm table says queue %d is consumed by thread %d, code says thread %d",
				cm.Queue, cm.Dst, consOf[cm.Queue])
		}
	}
	return prodOf, consOf, nil
}

// checkRunInvariants asserts the internal invariants of one successful
// multi-threaded run.
func checkRunInvariants(rep *Report, caseName, config string, mt *interp.MTResult, prodOf, consOf []int) {
	if mt.Steps != mt.Stats.Total() {
		rep.add(caseName, config, InvariantViolation, fmt.Sprintf(
			"step accounting: %d steps issued but role counts total %d", mt.Steps, mt.Stats.Total()))
	}
	for q, qs := range mt.PerQueue {
		if qs.Produced != qs.Consumed {
			rep.add(caseName, config, InvariantViolation, fmt.Sprintf(
				"queue balance: queue %d produced %d values, consumed %d", q, qs.Produced, qs.Consumed))
		}
	}
	for t := range mt.PerThread {
		var wantProd, wantCons int64
		for q, qs := range mt.PerQueue {
			if prodOf[q] == t {
				wantProd += qs.Produced
			}
			if consOf[q] == t {
				wantCons += qs.Consumed
			}
		}
		pt := mt.PerThread[t]
		if gotProd := pt.Produce + pt.ProduceSync; gotProd != wantProd {
			rep.add(caseName, config, InvariantViolation, fmt.Sprintf(
				"thread %d produced %d values but owns queues totalling %d", t, gotProd, wantProd))
		}
		if gotCons := pt.Consume + pt.ConsumeSync; gotCons != wantCons {
			rep.add(caseName, config, InvariantViolation, fmt.Sprintf(
				"thread %d consumed %d values but owns queues totalling %d", t, gotCons, wantCons))
		}
	}
}

// checkScheduleIndependence asserts that dynamic counts match the
// reference run: any divergence means some instruction's execution
// depended on the interleaving.
func checkScheduleIndependence(rep *Report, caseName, config, refConfig string, mt, ref *interp.MTResult) {
	if mt.Stats != ref.Stats {
		rep.add(caseName, config, InvariantViolation, fmt.Sprintf(
			"dynamic instruction counts depend on the schedule: %+v here, %+v under %s",
			mt.Stats, ref.Stats, refConfig))
	}
	for q := range mt.PerQueue {
		if q < len(ref.PerQueue) && mt.PerQueue[q] != ref.PerQueue[q] {
			rep.add(caseName, config, InvariantViolation, fmt.Sprintf(
				"queue %d traffic depends on the schedule: %+v here, %+v under %s",
				q, mt.PerQueue[q], ref.PerQueue[q], refConfig))
		}
	}
}

// diffVals compares two value vectors and renders the first few
// differences ("" when equal).
func diffVals(what string, got, want []int64) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%s count: got %d, want %d", what, len(got), len(want))
	}
	var diffs []string
	extra := 0
	for i := range want {
		if got[i] != want[i] {
			if len(diffs) < 3 {
				diffs = append(diffs, fmt.Sprintf("%s[%d] = %d, want %d", what, i, got[i], want[i]))
			} else {
				extra++
			}
		}
	}
	if len(diffs) == 0 {
		return ""
	}
	s := strings.Join(diffs, "; ")
	if extra > 0 {
		s += fmt.Sprintf(" (and %d more)", extra)
	}
	return s
}
