package oracle

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/fault"
)

// kinds renders a report's failure-kind multiset, sorted, so two runs can
// be compared for identical classification.
func kinds(rep *Report) string {
	var ks []string
	for _, f := range rep.Failures {
		ks = append(ks, string(f.Kind))
	}
	sort.Strings(ks)
	return strings.Join(ks, ",")
}

// TestReplayDirectiveRoundTrip pins the replay directive encoding: every
// config survives format → parse unchanged.
func TestReplayDirectiveRoundTrip(t *testing.T) {
	configs := []ReplayConfig{
		{},
		{Partitioner: "dswp", Threads: 2},
		{Partitioner: "gremio", Threads: 3, Schedule: "adversarial", QueueCap: 1},
		{Partitioner: "random", Threads: 2, Schedule: "random", ScheduleSeed: 5, QueueCap: 32},
		{Fault: fault.DropProduce, FaultSeed: 9, NoSim: true},
		{Partitioner: "dswp", Threads: 2, Schedule: "round-robin", QueueCap: 1,
			Fault: fault.MisplacePlan, FaultSeed: 3, NoSim: true},
	}
	for _, rc := range configs {
		got, err := parseReplay(rc.directive())
		if err != nil {
			t.Fatalf("parseReplay(%q): %v", rc.directive(), err)
		}
		if *got != rc {
			t.Errorf("directive %q parsed to %+v, want %+v", rc.directive(), *got, rc)
		}
	}
}

// replayCase finds a small generated case whose pinned destructive cell
// actually fails, so the round-trip test has a classification to compare.
func replayCase(t *testing.T) (*Case, *ReplayConfig) {
	t.Helper()
	rc := &ReplayConfig{
		Partitioner: "dswp", Threads: 2, Schedule: "round-robin",
		QueueCap: 1, Fault: fault.DropProduce, FaultSeed: 1, NoSim: true,
	}
	for seed := int64(1); seed < 40; seed++ {
		c := Generate(seed)
		c.Replay = rc
		opts, err := rc.Apply(Options{Seed: c.Seed})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Check(c, opts)
		if err != nil {
			continue
		}
		if !rep.Ok() && rep.Injected > 0 {
			return c, rc
		}
	}
	t.Fatal("no seed < 40 yields a failing drop-produce cell")
	return nil, nil
}

// TestReproRoundTripClassification is the satellite's core guarantee:
// writing a failing case to the corpus format, parsing it back, and
// re-running the recorded cell yields the identical mismatch
// classification (and identical failure report, since every stage is
// deterministic).
func TestReproRoundTripClassification(t *testing.T) {
	c, rc := replayCase(t)
	opts, err := rc.Apply(Options{Seed: c.Seed})
	if err != nil {
		t.Fatal(err)
	}
	before, err := Check(c, opts)
	if err != nil {
		t.Fatal(err)
	}

	text := FormatCase(c)
	if !strings.Contains(text, "; replay: ") {
		t.Fatalf("reproducer lost its replay directive:\n%s", text)
	}
	got, err := ParseCase(text)
	if err != nil {
		t.Fatalf("ParseCase: %v\n%s", err, text)
	}
	if got.Replay == nil {
		t.Fatal("parsed case has no replay config")
	}
	if *got.Replay != *rc {
		t.Fatalf("replay config changed: %+v, want %+v", *got.Replay, *rc)
	}

	opts2, err := got.Replay.Apply(Options{Seed: got.Seed})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Check(got, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if kinds(before) != kinds(after) {
		t.Fatalf("classification changed across the round trip:\nbefore %s\nafter  %s",
			kinds(before), kinds(after))
	}
	render := func(rep *Report) string {
		var b strings.Builder
		fmt.Fprintf(&b, "runs=%d injected=%d\n", rep.Runs, rep.Injected)
		for _, f := range rep.Failures {
			fmt.Fprintf(&b, "%s\n", f)
		}
		return b.String()
	}
	if render(before) != render(after) {
		t.Fatalf("report changed across the round trip:\n--- before ---\n%s--- after ---\n%s",
			render(before), render(after))
	}
}

// TestReplayMisplanDetected pins the compile-time fault path end to end: a
// reproducer whose replay directive arms misplan must re-run into a
// detected failure (ownership violation or deadlock), the sentinel
// mechanism gmtstress's CI job relies on.
func TestReplayMisplanDetected(t *testing.T) {
	rc := &ReplayConfig{
		Partitioner: "dswp", Threads: 2, Schedule: "round-robin",
		QueueCap: 32, Fault: fault.MisplacePlan, FaultSeed: 1, NoSim: true,
	}
	for seed := int64(1); seed < 40; seed++ {
		c := Generate(seed)
		c.Replay = rc
		got, err := ParseCase(FormatCase(c))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opts, err := got.Replay.Apply(Options{Seed: got.Seed})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Check(got, opts)
		if err != nil {
			continue
		}
		if rep.Injected == 0 {
			continue // no queues to misplace under this seed
		}
		if rep.Ok() {
			t.Fatalf("seed %d: misplanned program passed the oracle:\n%s",
				seed, FormatCase(got))
		}
		if rep.FaultSchedule == "" {
			t.Fatalf("seed %d: misplan applied but no fault schedule recorded", seed)
		}
		return
	}
	t.Fatal("no seed < 40 produced a misplaceable program")
}

// TestParseCaseRejectsCorrupt: truncated or corrupt reproducers are hard
// parse errors, never best-effort cases.
func TestParseCaseRejectsCorrupt(t *testing.T) {
	good := FormatCase(Generate(7))
	tests := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"truncated IR", good[:len(good)/2]},
		{"directives only", "; seed: 4\n; args: 1\n"},
		{"bad seed", strings.Replace(good, "; seed: 7", "; seed: pi", 1)},
		{"bad args", strings.Replace(good, "; args:", "; args: x", 1)},
		{"bad mem", strings.Replace(good, "; mem:", "; mem: 1 oops", 1)},
		{"short object", good + "; object: arr 0\n"},
		{"negative object base", good + "; object: arr -1 4\n"},
		{"zero object size", good + "; object: arr 0 0\n"},
		{"replay not key=value", good + "; replay: dswp\n"},
		{"unknown replay key", good + "; replay: partition=dswp\n"},
		{"bad replay int", good + "; replay: threads=two\n"},
		{"unknown replay fault", good + "; replay: fault=gamma-ray\n"},
		{"duplicate replay", good + "; replay: threads=2\n; replay: threads=3\n"},
		{"arg count mismatch", strings.Replace(good, "; args: ", "; args: 1 ", 1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseCase(tt.text); err == nil {
				t.Fatalf("corrupt reproducer accepted:\n%s", tt.text)
			}
		})
	}
}

// TestReplayApplyRejectsUnknownPartitioner: a replay naming a partitioner
// this binary doesn't have must fail loudly, not fall back to defaults.
func TestReplayApplyRejectsUnknownPartitioner(t *testing.T) {
	rc := &ReplayConfig{Partitioner: "hypothetical"}
	if _, err := rc.Apply(Options{}); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
}

// TestShrinkClonePreservesReplay: shrinking a replayed failure keeps the
// cell pinned, so the shrunk reproducer replays the same configuration.
func TestShrinkClonePreservesReplay(t *testing.T) {
	c, rc := replayCase(t)
	opts, err := rc.Apply(Options{Seed: c.Seed})
	if err != nil {
		t.Fatal(err)
	}
	min, err := Shrink(c, StillFails(opts, ""), 200)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if min.Replay == nil || *min.Replay != *rc {
		t.Fatalf("shrink dropped the replay config: %+v", min.Replay)
	}
}

// TestTraceDirectiveRoundTrip pins the trace directive: a case's trace ID
// survives format → parse, and a case without one writes no directive.
func TestTraceDirectiveRoundTrip(t *testing.T) {
	c := Generate(3)
	c.TraceID = "6fd43a2f8c91e0b4"
	text := FormatCase(c)
	if !strings.Contains(text, "; trace: 6fd43a2f8c91e0b4\n") {
		t.Fatalf("formatted case lacks trace directive:\n%s", text)
	}
	back, err := ParseCase(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.TraceID != c.TraceID {
		t.Errorf("TraceID round-tripped to %q, want %q", back.TraceID, c.TraceID)
	}

	c.TraceID = ""
	if text := FormatCase(c); strings.Contains(text, "; trace:") {
		t.Errorf("case without a trace ID wrote a trace directive:\n%s", text)
	}
}
