package oracle

import (
	"fmt"
	"testing"

	"repro/internal/coco"
	"repro/internal/interp"
	"repro/internal/mtcg"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/pdg"
	"repro/internal/queue"
	"repro/internal/sim"
)

// obsPrograms compiles every corpus case under both partitioners and both
// communication plans, returning the runnable programs with their case
// inputs. Partitions a corpus case is designed to defeat are skipped, as
// in the oracle itself.
func obsPrograms(t *testing.T) []struct {
	config string
	prog   *mtcg.Program
	c      *Case
} {
	t.Helper()
	cases, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("empty corpus")
	}
	var out []struct {
		config string
		prog   *mtcg.Program
		c      *Case
	}
	for _, c := range cases {
		g, err := RunGolden(c, 5_000_000)
		if err != nil {
			t.Fatalf("%s: golden: %v", c.Name, err)
		}
		graph := pdg.Build(c.F, c.Objects)
		for _, part := range []partition.Partitioner{partition.DSWP{}, partition.GREMIO{}} {
			assign, err := part.Partition(c.F, graph, g.Profile, 2)
			if err != nil {
				t.Logf("%s/%s: partition failed (%v) — skipped", c.Name, part.Name(), err)
				continue
			}
			type labelled struct {
				label string
				plan  *mtcg.Plan
			}
			plans := []labelled{{"naive", mtcg.NaivePlan(c.F, graph, assign, 2)}}
			if cp, err := coco.Plan(c.F, graph, assign, 2, g.Profile, coco.DefaultOptions()); err == nil {
				plans = append(plans, labelled{"coco", cp})
			} else {
				t.Logf("%s/%s: coco failed (%v) — skipped", c.Name, part.Name(), err)
			}
			for _, lp := range plans {
				prog, err := mtcg.Generate(lp.plan)
				if err != nil {
					t.Fatalf("%s/%s/%s: mtcg: %v", c.Name, part.Name(), lp.label, err)
				}
				queue.Allocate(prog)
				out = append(out, struct {
					config string
					prog   *mtcg.Program
					c      *Case
				}{c.Name + "/" + part.Name() + "/" + lp.label, prog, c})
			}
		}
	}
	return out
}

// TestInterpObsCountersMatchAccounting: the obs metrics RunMT records are
// a second, independent accounting path; on every corpus program they must
// reconcile exactly with the MTResult bookkeeping the oracle verifies.
func TestInterpObsCountersMatchAccounting(t *testing.T) {
	for _, pc := range obsPrograms(t) {
		for _, qcap := range []int{1, interp.DefaultQueueCap} {
			config := fmt.Sprintf("%s/cap=%d", pc.config, qcap)
			reg := obs.NewRegistry()
			mt, err := interp.RunMT(interp.MTConfig{
				Threads: pc.prog.Threads, NumQueues: pc.prog.NumQueues,
				QueueCap: qcap, Assign: pc.prog.Assign,
				Args: pc.c.Args, Mem: append([]int64(nil), pc.c.Mem...),
				MaxSteps: 5_000_000,
				Metrics:  reg.Scope("interp"),
			})
			if err != nil {
				t.Errorf("%s: %v", config, err)
				continue
			}
			check := func(name string, want int64) {
				t.Helper()
				if got := reg.Counter(name).Value(); got != want {
					t.Errorf("%s: counter %s = %d, MTResult accounting says %d", config, name, got, want)
				}
			}
			check("interp.steps", mt.Steps)
			check("interp.compute", mt.Stats.Compute)
			check("interp.produce", mt.Stats.Produce)
			check("interp.consume", mt.Stats.Consume)
			check("interp.produce_sync", mt.Stats.ProduceSync)
			check("interp.consume_sync", mt.Stats.ConsumeSync)
			check("interp.dup_branch", mt.Stats.DupBranch)
			check("interp.sched.picks", mt.Sched.Picks)
			check("interp.sched.blocked_turns", mt.Sched.BlockedTurns)
			if mt.Sched.Picks != mt.Steps+mt.Sched.BlockedTurns {
				t.Errorf("%s: scheduler accounting: %d picks != %d steps + %d blocked turns",
					config, mt.Sched.Picks, mt.Steps, mt.Sched.BlockedTurns)
			}
			if mt.Steps != mt.Stats.Total() {
				t.Errorf("%s: %d steps != role total %d", config, mt.Steps, mt.Stats.Total())
			}
			for q := range mt.PerQueue {
				check(fmt.Sprintf("interp.queue.%d.produced", q), mt.PerQueue[q].Produced)
				check(fmt.Sprintf("interp.queue.%d.consumed", q), mt.PerQueue[q].Consumed)
				hwm := reg.Gauge(fmt.Sprintf("interp.queue.%d.hwm", q)).Value()
				if hwm != mt.QueueHWM[q] {
					t.Errorf("%s: queue %d hwm gauge = %d, MTResult says %d", config, q, hwm, mt.QueueHWM[q])
				}
				if int(hwm) > qcap {
					t.Errorf("%s: queue %d hwm %d exceeds queue cap %d", config, q, hwm, qcap)
				}
				if mt.PerQueue[q].Produced > 0 && hwm < 1 {
					t.Errorf("%s: queue %d produced %d values but hwm = %d",
						config, q, mt.PerQueue[q].Produced, hwm)
				}
			}
		}
	}
}

// TestSimObsCountersMatchAccounting: the simulator's obs metrics must
// reconcile exactly with its Result bookkeeping on every corpus program.
func TestSimObsCountersMatchAccounting(t *testing.T) {
	for _, pc := range obsPrograms(t) {
		cfg := sim.DefaultConfig()
		if len(pc.prog.Threads) > cfg.Cores {
			cfg.Cores = len(pc.prog.Threads)
		}
		if pc.prog.NumQueues > cfg.NumQueues {
			cfg.NumQueues = pc.prog.NumQueues
		}
		reg := obs.NewRegistry()
		res, err := sim.RunObserved(cfg, pc.prog.Threads, pc.c.Args,
			append([]int64(nil), pc.c.Mem...), 50_000_000,
			&sim.Observer{Metrics: reg.Scope("sim")})
		if err != nil {
			t.Errorf("%s: %v", pc.config, err)
			continue
		}
		check := func(name string, want int64) {
			t.Helper()
			if got := reg.Counter(name).Value(); got != want {
				t.Errorf("%s: counter %s = %d, sim Result says %d", pc.config, name, got, want)
			}
		}
		if got := reg.Gauge("sim.cycles").Value(); got != res.Cycles {
			t.Errorf("%s: cycles gauge = %d, Result says %d", pc.config, got, res.Cycles)
		}
		for i, cs := range res.PerCore {
			check(fmt.Sprintf("sim.core%d.instrs", i), cs.Instrs)
			check(fmt.Sprintf("sim.core%d.stall_cycles", i), cs.IssueStallCycles)
			check(fmt.Sprintf("sim.core%d.produces", i), cs.Produces)
			check(fmt.Sprintf("sim.core%d.consumes", i), cs.Consumes)
			check(fmt.Sprintf("sim.core%d.mispreds", i), cs.Mispreds)
		}
		for q, qs := range res.PerQueue {
			check(fmt.Sprintf("sim.queue.%d.produced", q), qs.Produced)
			check(fmt.Sprintf("sim.queue.%d.consumed", q), qs.Consumed)
			if got := reg.Gauge(fmt.Sprintf("sim.queue.%d.hwm", q)).Value(); got != qs.HighWater {
				t.Errorf("%s: queue %d hwm gauge = %d, Result says %d", pc.config, q, got, qs.HighWater)
			}
			if qs.Produced != qs.Consumed {
				t.Errorf("%s: queue %d produced %d, consumed %d", pc.config, q, qs.Produced, qs.Consumed)
			}
			if int(qs.HighWater) > cfg.QueueCap {
				t.Errorf("%s: queue %d high water %d exceeds cap %d", pc.config, q, qs.HighWater, cfg.QueueCap)
			}
		}
	}
}
