package oracle

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/sim"
)

// TestSimAttrConservesOnCorpus: cycle attribution must conserve exactly —
// per-core bucket sums equal the run's cycle count, and instruction blame
// accounts for every non-idle cycle — on every corpus program, both clean
// and under benign fault injection (where the Fault bucket must absorb the
// injected stalls).
func TestSimAttrConservesOnCorpus(t *testing.T) {
	var faultCycles int64
	for _, pc := range obsPrograms(t) {
		cfg := sim.DefaultConfig()
		if len(pc.prog.Threads) > cfg.Cores {
			cfg.Cores = len(pc.prog.Threads)
		}
		if pc.prog.NumQueues > cfg.NumQueues {
			cfg.NumQueues = pc.prog.NumQueues
		}
		for _, spec := range []*fault.Spec{nil, {Class: fault.StallThread, Seed: 11}} {
			config := pc.config + "/clean"
			var inj *fault.Injector
			if spec != nil {
				config = pc.config + "/" + string(spec.Class)
				inj = spec.New()
			}
			res, err := sim.RunInjected(cfg, pc.prog.Threads, pc.c.Args,
				append([]int64(nil), pc.c.Mem...), 50_000_000,
				&sim.Observer{Attr: true}, inj)
			if err != nil {
				t.Errorf("%s: %v", config, err)
				continue
			}
			totals := make([]int64, len(res.PerCore))
			for i := range totals {
				totals[i] = res.Cycles
			}
			if err := res.Attr.CheckConservation(totals); err != nil {
				t.Errorf("%s: %v", config, err)
				continue
			}
			tot := res.Attr.TotalBuckets()
			if spec == nil && tot[attr.Fault] != 0 {
				t.Errorf("%s: clean run attributed %d cycles to fault", config, tot[attr.Fault])
			}
			if spec != nil {
				faultCycles += tot[attr.Fault]
			}
			if tot[attr.Issue] == 0 && res.Cycles > 0 {
				t.Errorf("%s: no issue cycles in %d-cycle run", config, res.Cycles)
			}
		}
	}
	if faultCycles == 0 {
		t.Error("stall injection left the fault bucket empty across the whole corpus")
	}
}

// TestInterpAttrConservesOnCorpus: the interpreter's pick attribution must
// conserve against per-thread pick counts on every corpus program, with
// Issue picks equal to executed steps and the queue buckets equal to the
// scheduler's blocked turns; injected stalls land in the Fault bucket.
func TestInterpAttrConservesOnCorpus(t *testing.T) {
	var faultPicks int64
	for _, pc := range obsPrograms(t) {
		for _, spec := range []*fault.Spec{nil, {Class: fault.StallThread, Seed: 11}} {
			config := pc.config + "/clean"
			var inj *fault.Injector
			if spec != nil {
				config = pc.config + "/" + string(spec.Class)
				inj = spec.New()
			}
			mt, err := interp.RunMT(interp.MTConfig{
				Threads: pc.prog.Threads, NumQueues: pc.prog.NumQueues,
				Assign: pc.prog.Assign,
				Args:   pc.c.Args, Mem: append([]int64(nil), pc.c.Mem...),
				MaxSteps: 5_000_000,
				Attr:     true,
				Inject:   inj,
			})
			if err != nil {
				t.Errorf("%s: %v", config, err)
				continue
			}
			if err := mt.Attr.CheckConservation(mt.ThreadPicks); err != nil {
				t.Errorf("%s: %v", config, err)
				continue
			}
			tot := mt.Attr.TotalBuckets()
			if tot[attr.Issue] != mt.Steps {
				t.Errorf("%s: issue picks %d != steps %d", config, tot[attr.Issue], mt.Steps)
			}
			// Injected stalls waste a turn without a queue being at fault,
			// so the Fault bucket joins the queue buckets in accounting for
			// every blocked turn (it is zero on clean runs).
			if got := tot[attr.QueueEmpty] + tot[attr.QueueFull] + tot[attr.Fault]; got != mt.Sched.BlockedTurns {
				t.Errorf("%s: queue+fault buckets %d != blocked turns %d", config, got, mt.Sched.BlockedTurns)
			}
			if spec == nil && tot[attr.Fault] != 0 {
				t.Errorf("%s: clean run attributed %d picks to fault", config, tot[attr.Fault])
			}
			if spec != nil {
				faultPicks += tot[attr.Fault]
			}
		}
	}
	if faultPicks == 0 {
		t.Error("stall injection left the fault bucket empty across the whole corpus")
	}
}
