// Package alias implements a flow-insensitive, Andersen-style points-to
// analysis over the IR's flat memory. It plays the role of the
// context-sensitive pointer analysis the paper's compiler uses [14]: its
// may-alias answers induce the memory dependence arcs of the PDG.
//
// Address provenance is rooted at constants that fall inside declared
// MemObjects (arrays). Pointer values may be stored into and loaded back
// out of memory (linked structures), which the analysis models with one
// content set per object. A memory access whose address has no known
// provenance is "wild" and conservatively aliases everything.
package alias

import (
	"math/bits"

	"repro/internal/ir"
)

type objSet []uint64

func newObjSet(n int) objSet { return make(objSet, (n+63)/64) }

func (s objSet) add(i int)      { s[i/64] |= 1 << (uint(i) % 64) }
func (s objSet) has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

func (s objSet) unionWith(o objSet) bool {
	changed := false
	for i := range s {
		if n := s[i] | o[i]; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

func (s objSet) intersects(o objSet) bool {
	for i := range s {
		if s[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

func (s objSet) empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

func (s objSet) elems() []int {
	var out []int
	for i, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*64+b)
			w &= w - 1
		}
	}
	return out
}

// Result holds the points-to solution for one function.
type Result struct {
	fn      *ir.Function
	objects []ir.MemObject
	pts     []objSet // register -> objects it may point into
	content []objSet // object -> objects whose addresses it may hold
	// constBase marks registers with exactly one definition, a Const:
	// their runtime value is fixed, enabling exact offset disambiguation.
	constBase map[ir.Reg]bool
}

// Analyze computes the points-to solution of f given its memory-object
// table.
func Analyze(f *ir.Function, objects []ir.MemObject) *Result {
	nObj := len(objects)
	r := &Result{
		fn:      f,
		objects: objects,
		pts:     make([]objSet, int(f.MaxReg())+1),
		content: make([]objSet, nObj),
	}
	for i := range r.pts {
		r.pts[i] = newObjSet(nObj)
	}
	for i := range r.content {
		r.content[i] = newObjSet(nObj)
	}

	// Seed: address constants; also find registers whose only definition
	// is a Const.
	r.constBase = map[ir.Reg]bool{}
	defCount := map[ir.Reg]int{}
	f.Instrs(func(in *ir.Instr) {
		if d := in.Defs(); d != ir.NoReg {
			defCount[d]++
			if in.Op == ir.Const {
				r.constBase[d] = true
			}
		}
		if in.Op != ir.Const {
			return
		}
		for oi, o := range objects {
			if o.Contains(in.Imm) {
				r.pts[in.Dst].add(oi)
			}
		}
	})
	for reg, n := range defCount {
		if n != 1 {
			delete(r.constBase, reg)
		}
	}

	// Propagate to fixpoint.
	for changed := true; changed; {
		changed = false
		f.Instrs(func(in *ir.Instr) {
			switch in.Op {
			case ir.Load:
				base := r.pts[in.Srcs[0]]
				for _, oi := range base.elems() {
					if r.pts[in.Dst].unionWith(r.content[oi]) {
						changed = true
					}
				}
			case ir.Store:
				base := r.pts[in.Srcs[1]]
				val := r.pts[in.Srcs[0]]
				for _, oi := range base.elems() {
					if r.content[oi].unionWith(val) {
						changed = true
					}
				}
			default:
				d := in.Defs()
				if d == ir.NoReg {
					return
				}
				for _, s := range in.Uses() {
					if r.pts[d].unionWith(r.pts[s]) {
						changed = true
					}
				}
			}
		})
	}
	return r
}

// PointsTo returns the indices (into the object table) of the objects
// register reg may point into. An empty result means the register has no
// address provenance.
func (r *Result) PointsTo(reg ir.Reg) []int { return r.pts[reg].elems() }

// baseReg returns the address base register of a memory access.
func baseReg(in *ir.Instr) ir.Reg {
	switch in.Op {
	case ir.Load:
		return in.Srcs[0]
	case ir.Store:
		return in.Srcs[1]
	}
	return ir.NoReg
}

// MayAlias reports whether two memory accesses may touch the same word.
// Non-memory instructions never alias. An access with unknown provenance
// aliases everything.
func (r *Result) MayAlias(a, b *ir.Instr) bool {
	ra, rb := baseReg(a), baseReg(b)
	if ra == ir.NoReg || rb == ir.NoReg {
		return false
	}
	pa, pb := r.pts[ra], r.pts[rb]
	if pa.empty() || pb.empty() {
		return true // wild access
	}
	if !pa.intersects(pb) {
		return false
	}
	// Refinement: identical once-defined constant base register with
	// distinct constant offsets -> provably distinct words. (The base
	// must be a fixed constant: a loop-varying base register can make
	// different static offsets collide across iterations.)
	if ra == rb && a.Imm != b.Imm && r.constBase[ra] {
		return false
	}
	return true
}
