package alias

import (
	"testing"

	"repro/internal/ir"
)

func TestDistinctArraysDoNotAlias(t *testing.T) {
	b := ir.NewBuilder("two")
	a := b.Array("a", 10)
	c := b.Array("c", 10)
	pa := b.AddrOf(a)
	pc := b.AddrOf(c)
	v := b.Load(pa, 0)
	b.Store(v, pc, 0)
	b.Ret()
	f := b.F

	res := Analyze(f, b.Objects)
	var load, store *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.Load:
			load = in
		case ir.Store:
			store = in
		}
	})
	if res.MayAlias(load, store) {
		t.Error("accesses to distinct arrays should not alias")
	}
	if got := res.PointsTo(load.Srcs[0]); len(got) != 1 || got[0] != 0 {
		t.Errorf("PointsTo(load base) = %v, want [0]", got)
	}
}

func TestSameArrayAliases(t *testing.T) {
	b := ir.NewBuilder("same")
	a := b.Array("a", 10)
	i := b.Param()
	base := b.AddrOf(a)
	p := b.Add(base, i) // derived pointer into a
	v := b.Load(base, 3)
	b.Store(v, p, 0)
	b.Ret()
	f := b.F

	res := Analyze(f, b.Objects)
	var load, store *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.Load:
			load = in
		case ir.Store:
			store = in
		}
	})
	if !res.MayAlias(load, store) {
		t.Error("variable-indexed store must alias load of same array")
	}
}

func TestConstantOffsetRefinement(t *testing.T) {
	b := ir.NewBuilder("off")
	a := b.Array("a", 10)
	base := b.AddrOf(a)
	v := b.Load(base, 2)
	b.Store(v, base, 5)
	w := b.Load(base, 5)
	b.Ret(w)
	f := b.F

	res := Analyze(f, b.Objects)
	var loads []*ir.Instr
	var store *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.Load:
			loads = append(loads, in)
		case ir.Store:
			store = in
		}
	})
	if res.MayAlias(loads[0], store) {
		t.Error("a[2] and a[5] with same base register must not alias")
	}
	if !res.MayAlias(loads[1], store) {
		t.Error("a[5] and a[5] must alias")
	}
}

func TestPointerThroughMemory(t *testing.T) {
	// next-pointer chasing: store &b into a[0], load it back, dereference.
	b := ir.NewBuilder("chase")
	a := b.Array("a", 4)
	c := b.Array("c", 4)
	pa := b.AddrOf(a)
	pc := b.AddrOf(c)
	b.Store(pc, pa, 0) // a[0] = &c
	p := b.Load(pa, 0) // p = a[0]
	v := b.Load(p, 1)  // v = p[1]  (reads c)
	b.Store(v, pc, 2)  // c[2] = v
	b.Ret()
	f := b.F

	res := Analyze(f, b.Objects)
	var indirectLoad, directStore *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.Load && in.Imm == 1 {
			indirectLoad = in
		}
		if in.Op == ir.Store && in.Imm == 2 {
			directStore = in
		}
	})
	if got := res.PointsTo(indirectLoad.Srcs[0]); len(got) != 1 || got[0] != 1 {
		t.Fatalf("loaded pointer points to %v, want [1] (object c)", got)
	}
	if !res.MayAlias(indirectLoad, directStore) {
		t.Error("indirect load via stored pointer must alias store to c")
	}
}

func TestWildAccessAliasesEverything(t *testing.T) {
	b := ir.NewBuilder("wild")
	a := b.Array("a", 4)
	p := b.Param() // unknown provenance used as an address
	v := b.Load(p, 0)
	b.Store(v, b.AddrOf(a), 0)
	b.Ret()
	f := b.F

	res := Analyze(f, b.Objects)
	var load, store *ir.Instr
	f.Instrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.Load:
			load = in
		case ir.Store:
			store = in
		}
	})
	if !res.MayAlias(load, store) {
		t.Error("wild access must alias everything")
	}
}

func TestNonMemoryInstructionsNeverAlias(t *testing.T) {
	b := ir.NewBuilder("nomem")
	x := b.Param()
	y := b.Add(x, x)
	b.Ret(y)
	res := Analyze(b.F, b.Objects)
	var add *ir.Instr
	b.F.Instrs(func(in *ir.Instr) {
		if in.Op == ir.Add {
			add = in
		}
	})
	if res.MayAlias(add, add) {
		t.Error("non-memory instructions must not alias")
	}
}
