package sim

// cache is one set-associative, LRU cache level tracking only line
// presence (timing model; data values live in the functional state). Tags
// and stamps are flat arrays indexed set*ways+way: the per-set slice
// representation cost two allocations per set — thousands per simulation
// run for the L3 — and scattered each set's ways across the heap.
type cache struct {
	sets  int
	ways  int
	line  int     // words per line
	tags  []int64 // tags[set*ways+way]; -1 empty
	lru   []int64 // last-touch stamps
	stamp int64
}

func newCache(sets, ways, line int) *cache {
	c := &cache{sets: sets, ways: ways, line: line}
	c.tags = make([]int64, sets*ways)
	c.lru = make([]int64, sets*ways)
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// lineOf returns the line-granular address.
func (c *cache) lineOf(addr int64) int64 { return addr / int64(c.line) }

// lookup reports whether the line holding addr is present, refreshing LRU
// on hit.
func (c *cache) lookup(addr int64) bool {
	ln := c.lineOf(addr)
	base := int(ln%int64(c.sets)) * c.ways
	for w, tag := range c.tags[base : base+c.ways] {
		if tag == ln {
			c.stamp++
			c.lru[base+w] = c.stamp
			return true
		}
	}
	return false
}

// fill inserts the line holding addr, evicting the LRU way.
func (c *cache) fill(addr int64) {
	ln := c.lineOf(addr)
	base := int(ln%int64(c.sets)) * c.ways
	victim, oldest := 0, int64(1<<62)
	for w, tag := range c.tags[base : base+c.ways] {
		if tag == -1 {
			victim = w
			break
		}
		if c.lru[base+w] < oldest {
			victim, oldest = w, c.lru[base+w]
		}
	}
	c.stamp++
	c.tags[base+victim] = ln
	c.lru[base+victim] = c.stamp
}

// invalidate drops the line holding addr if present (snoop-based
// write-invalidate coherence).
func (c *cache) invalidate(addr int64) {
	ln := c.lineOf(addr)
	base := int(ln%int64(c.sets)) * c.ways
	for w, tag := range c.tags[base : base+c.ways] {
		if tag == ln {
			c.tags[base+w] = -1
		}
	}
}

// hierarchy is one core's private L1+L2 over the shared L3.
type hierarchy struct {
	l1, l2 *cache
	l3     *cache // shared
	cfg    *Config
}

// MemStats counts accesses per level.
type MemStats struct {
	L1Hits, L2Hits, L3Hits, MemAccesses int64
}

// load returns the latency of a load and updates cache state.
func (h *hierarchy) load(addr int64, st *MemStats) int {
	if h.l1.lookup(addr) {
		st.L1Hits++
		return h.cfg.L1Lat
	}
	if h.l2.lookup(addr) {
		st.L2Hits++
		h.l1.fill(addr)
		return h.cfg.L2Lat
	}
	if h.l3.lookup(addr) {
		st.L3Hits++
		h.l2.fill(addr)
		h.l1.fill(addr)
		return h.cfg.L3Lat
	}
	st.MemAccesses++
	h.l3.fill(addr)
	h.l2.fill(addr)
	h.l1.fill(addr)
	return h.cfg.MemLat
}

// store performs a write-through-L1, write-back-L2 store: it fills the
// local hierarchy and invalidates the line in every other core's private
// caches.
func (h *hierarchy) store(addr int64, others []*hierarchy, st *MemStats) int {
	lat := h.cfg.L1Lat
	if !h.l1.lookup(addr) {
		h.l1.fill(addr)
	}
	if !h.l2.lookup(addr) {
		h.l2.fill(addr)
	}
	if !h.l3.lookup(addr) {
		h.l3.fill(addr)
	}
	for _, o := range others {
		o.l1.invalidate(addr)
		o.l2.invalidate(addr)
	}
	return lat
}
