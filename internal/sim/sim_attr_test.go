package sim

import (
	"bytes"
	"testing"

	"repro/internal/attr"
	"repro/internal/coco"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/obs"
	"repro/internal/obs/obstest"
	"repro/internal/pdg"
	"repro/internal/testprog"
)

// fig5Prog compiles the paper's Figure 5 program into two threads.
func fig5Prog(t *testing.T) *mtcg.Program {
	t.Helper()
	p := testprog.Fig5()
	g := pdg.Build(p.F, p.Objects)
	pl, err := coco.Plan(p.F, g, p.Assign, 2, p.Profile, coco.DefaultOptions())
	if err != nil {
		t.Fatalf("coco: %v", err)
	}
	prog, err := mtcg.Generate(pl)
	if err != nil {
		t.Fatalf("mtcg: %v", err)
	}
	return prog
}

func TestAttrConservesAndIsObservational(t *testing.T) {
	prog := fig5Prog(t)
	args := []int64{9, 1, 1}

	base, err := Run(DefaultConfig(), prog.Threads, args, make([]int64, 2), 10_000_000)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	var events []Event
	ob := &Observer{Attr: true, Events: func(e Event) { events = append(events, e) }}
	res, err := RunObserved(DefaultConfig(), prog.Threads, args, make([]int64, 2), 10_000_000, ob)
	if err != nil {
		t.Fatalf("attributed run: %v", err)
	}

	// Attribution must be purely observational: identical timing and
	// functional results.
	if res.Cycles != base.Cycles {
		t.Errorf("attribution changed timing: %d cycles vs %d", res.Cycles, base.Cycles)
	}
	for i := range base.PerCore {
		if res.PerCore[i] != base.PerCore[i] {
			t.Errorf("core %d stats diverged: %+v vs %+v", i, res.PerCore[i], base.PerCore[i])
		}
	}
	for i := range base.LiveOuts {
		if res.LiveOuts[i] != base.LiveOuts[i] {
			t.Errorf("live-out %d diverged: %d vs %d", i, res.LiveOuts[i], base.LiveOuts[i])
		}
	}

	// Exact conservation: per-core buckets sum to Cycles; instruction
	// blame sums to the core tally minus Idle.
	totals := make([]int64, len(res.PerCore))
	for i := range totals {
		totals[i] = res.Cycles
	}
	if err := res.Attr.CheckConservation(totals); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	// No fault injection → the Fault bucket must be empty.
	if tot := res.Attr.TotalBuckets(); tot[attr.Fault] != 0 {
		t.Errorf("clean run attributed %d cycles to fault", tot[attr.Fault])
	}

	// The event stream carries exactly the issued instructions, in
	// nondecreasing issue order per core.
	var instrs int64
	for _, c := range res.PerCore {
		instrs += c.Instrs
	}
	if int64(len(events)) != instrs {
		t.Errorf("%d events for %d issued instructions", len(events), instrs)
	}
	lastIssue := map[int]int64{}
	var produces, consumes int64
	for i, e := range events {
		if e.Issue < lastIssue[e.Core] {
			t.Fatalf("event %d: core %d issue %d before %d", i, e.Core, e.Issue, lastIssue[e.Core])
		}
		lastIssue[e.Core] = e.Issue
		if e.Done <= e.Issue && e.In.Op != ir.Ret {
			if e.Done < e.Issue {
				t.Fatalf("event %d: done %d before issue %d", i, e.Done, e.Issue)
			}
		}
		switch e.In.Op {
		case ir.Produce, ir.ProduceSync:
			produces++
			if e.Queue < 0 || e.Times != 1 {
				t.Fatalf("clean produce event %d has queue %d times %d", i, e.Queue, e.Times)
			}
		case ir.Consume, ir.ConsumeSync:
			consumes++
		}
	}
	var wantProd, wantCons int64
	for _, c := range res.PerCore {
		wantProd += c.Produces
		wantCons += c.Consumes
	}
	if produces != wantProd || consumes != wantCons {
		t.Errorf("event stream saw %d produces / %d consumes, stats say %d / %d",
			produces, consumes, wantProd, wantCons)
	}
}

func TestAttrBlamesQueueStalls(t *testing.T) {
	// Producer fills a 1-deep queue faster than the consumer drains it:
	// some cycles must land in queue-full (producer side) or queue-empty
	// (consumer side), and the queue must be blamed.
	mk := func(n int64, produce bool) *ir.Function {
		b := ir.NewBuilder("t")
		loop, exit := b.Block("loop"), b.Block("exit")
		i := b.F.NewReg()
		b.ConstTo(i, 0)
		b.Jump(loop)
		b.SetBlock(loop)
		if produce {
			b.F.Name = "prod"
			p := b.F.NewInstr(ir.Produce, ir.NoReg, i)
			p.Queue = 0
			b.Cur().Append(p)
		} else {
			b.F.Name = "cons"
			v := b.F.NewReg()
			cn := b.F.NewInstr(ir.Consume, v)
			cn.Queue = 0
			b.Cur().Append(cn)
			// Slow consumer: burn latency on dependent multiplies.
			v2 := b.Op2(ir.Mul, v, v)
			v3 := b.Op2(ir.Mul, v2, v2)
			_ = b.Op2(ir.Mul, v3, v3)
		}
		one := b.Const(1)
		b.Op2To(i, ir.Add, i, one)
		lim := b.Const(n)
		c := b.CmpLT(i, lim)
		b.Br(c, loop, exit)
		b.SetBlock(exit)
		b.Ret()
		b.F.SplitCriticalEdges()
		b.F.NumQueues = 1
		return b.F
	}
	cfg := DefaultConfig()
	cfg.QueueCap = 1
	ob := &Observer{Attr: true}
	res, err := RunObserved(cfg, []*ir.Function{mk(200, true), mk(200, false)}, nil, nil, 10_000_000, ob)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	totals := []int64{res.Cycles, res.Cycles}
	if err := res.Attr.CheckConservation(totals); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	tot := res.Attr.TotalBuckets()
	if tot[attr.QueueFull] == 0 {
		t.Errorf("slow consumer with 1-deep queue: no queue-full cycles attributed\n%+v", tot)
	}
	qb := &res.Attr.Queues[0]
	if qb[attr.QueueFull] != tot[attr.QueueFull] || qb[attr.QueueEmpty] != tot[attr.QueueEmpty] {
		t.Errorf("queue 0 blame %+v does not carry the full comm stall tally %+v", qb, tot)
	}
}

func TestFlowEventsMatchInTrace(t *testing.T) {
	prog := fig5Prog(t)
	args := []int64{9, 1, 1}
	tr := obs.NewTrace()
	tr.ProcessName(7, "fig5")
	ob := &Observer{Trace: tr, Pid: 7, Flows: true}
	res, err := RunObserved(DefaultConfig(), prog.Threads, args, make([]int64, 2), 10_000_000, ob)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("trace: %v", err)
	}
	// CheckTraceShape verifies every flow start has exactly one matching
	// finish — i.e. every produced value's arrow lands on its consume.
	obstest.CheckTraceShape(t, buf.Bytes())
	raw := buf.String()
	var prods int64
	for _, c := range res.PerCore {
		prods += c.Produces
	}
	if prods == 0 {
		t.Fatal("fig5 program produced nothing")
	}
	if n := int64(bytes.Count(buf.Bytes(), []byte(`"ph": "s"`))); n != prods {
		t.Errorf("%d flow starts for %d produces", n, prods)
	}
	for _, want := range []string{`"ph": "f", "bp": "e"`, `"name": "produce"`, `"name": "consume"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("trace lacks %s:\n%.2000s", want, raw)
		}
	}
}
