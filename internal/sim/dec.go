package sim

import "repro/internal/ir"

// decIns is the issue loop's flattened view of one instruction. The IR's
// *ir.Instr spreads the fields the simulator touches every cycle (opcode,
// sources, destination, immediate) across a pointer-rich heap object plus
// a separately allocated Srcs slice — two to three cache lines per
// instruction visit. Decoding once at system setup packs them into a
// contiguous 32-byte record with the first two sources and the port class
// inline, two records per cache line. The originating *ir.Instr (needed
// only on rare paths: faults, the execALU fallback, Ret live-out lists)
// lives in the parallel decBlock.irs slice.
type decIns struct {
	imm   int64
	dst   int32
	s0    int32
	s1    int32
	id    int32
	queue int32
	op    ir.Op
	cls   uint8
	nsrc  uint8
}

// decBlock mirrors one ir.Block: decoded instructions, the originating
// instructions (same indexing), and decoded successors (succs[0]=taken,
// succs[1]=fallthrough, as in ir.Block.Succs).
type decBlock struct {
	ins   []decIns
	irs   []*ir.Instr
	succs [2]*decBlock
}

// decodeFunction builds the decoded CFG for one thread function and
// returns its entry block.
func decodeFunction(f *ir.Function) *decBlock {
	m := map[*ir.Block]*decBlock{}
	var walk func(b *ir.Block) *decBlock
	walk = func(b *ir.Block) *decBlock {
		if d, ok := m[b]; ok {
			return d
		}
		d := &decBlock{ins: make([]decIns, len(b.Instrs)), irs: b.Instrs}
		m[b] = d
		for i, in := range b.Instrs {
			di := &d.ins[i]
			di.imm = in.Imm
			di.dst = int32(in.Dst)
			if len(in.Srcs) > 0 {
				di.s0 = int32(in.Srcs[0])
			}
			if len(in.Srcs) > 1 {
				di.s1 = int32(in.Srcs[1])
			}
			di.id = int32(in.ID)
			di.queue = int32(in.Queue)
			di.op = in.Op
			di.cls = uint8(portTab[in.Op]) & 3
			// nsrc only distinguishes 0/1/2/"more" (a Ret's live-out list
			// is walked through the originating instruction), so clamp it.
			if n := len(in.Srcs); n > 3 {
				di.nsrc = 3
			} else {
				di.nsrc = uint8(n)
			}
		}
		for i, sb := range b.Succs {
			if i < len(d.succs) {
				d.succs[i] = walk(sb)
			}
		}
		return d
	}
	return walk(f.Entry())
}
