// Package sim is a cycle-level model of the dual-core CMP the paper
// evaluates on (Figure 6(a)): validated Itanium 2-like in-order cores
// connected by the synchronization array (SA) of Rangan et al. [19]. The
// model captures the first-order effects the evaluation depends on:
// in-order issue with functional-unit port limits (communication uses the
// M pipeline), a three-level cache hierarchy with snoop-based write-
// invalidate coherence, blocking SA queues with 1-cycle access and shared
// request ports, and stall-on-use consume semantics.
package sim

// Config describes the simulated machine. DefaultConfig reproduces
// Figure 6(a).
type Config struct {
	// Core front end.
	IssueWidth  int // instructions issued per cycle per core
	ALUPorts    int
	MemPorts    int // M-type slots: loads, stores, produces, consumes
	FPPorts     int
	BranchPorts int
	// MispredictPenalty is the front-end bubble after a mispredicted
	// branch.
	MispredictPenalty int

	// Latencies (cycles).
	MulLatency  int
	DivLatency  int
	FPLatency   int
	FDivLatency int

	// Cache hierarchy. Lines are in memory words (the IR's unit); the
	// Itanium 2's 64-byte lines hold 8 words.
	L1Lat, L2Lat, L3Lat, MemLat int
	L1Sets, L1Ways, L1Line      int
	L2Sets, L2Ways, L2Line      int
	L3Sets, L3Ways, L3Line      int

	// Synchronization array.
	SALatency int // produce-to-consume latency
	SAPorts   int // request ports shared between cores
	QueueCap  int // elements per queue
	NumQueues int // hardware queues available

	// Cores is the number of cores (the paper evaluates 2).
	Cores int

	// StallLimit is the no-progress watchdog: the run aborts with
	// ErrNoProgress after this many consecutive cycles with no core
	// issuing. <= 0 selects the default (2,000,000 cycles). Chaos tests
	// lower it so an injected deadlock fails in microseconds, not seconds.
	StallLimit int64
}

// DefaultConfig returns the machine of Figure 6(a): dual-core Itanium 2 at
// 6-issue with 16KB/256KB/1.5MB caches, 141-cycle memory, and a 256-queue
// synchronization array with 32-entry queues and 4 shared ports.
func DefaultConfig() Config {
	return Config{
		IssueWidth:        6,
		ALUPorts:          6,
		MemPorts:          4,
		FPPorts:           2,
		BranchPorts:       3,
		MispredictPenalty: 6,

		MulLatency:  3,
		DivLatency:  12,
		FPLatency:   4,
		FDivLatency: 16,

		L1Lat: 1, L2Lat: 7, L3Lat: 12, MemLat: 141,
		// 16KB, 4-way, 64B lines = 8 words/line, 64 sets.
		L1Sets: 64, L1Ways: 4, L1Line: 8,
		// 256KB, 8-way, 128B lines = 16 words/line, 256 sets.
		L2Sets: 256, L2Ways: 8, L2Line: 16,
		// 1.5MB, 12-way, 128B lines = 16 words/line, 1024 sets (shared).
		L3Sets: 1024, L3Ways: 12, L3Line: 16,

		SALatency: 1,
		SAPorts:   4,
		QueueCap:  32,
		NumQueues: 256,

		Cores: 2,

		StallLimit: 2_000_000,
	}
}
