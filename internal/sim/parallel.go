package sim

import (
	"context"

	"repro/internal/ir"
	"repro/internal/par"
)

// parallelGroups decides whether this run can be split into core groups
// simulated concurrently with bit-identical results, and returns the
// groups (core indices, each group and the group list in ascending order)
// or nil when the run must stay serial.
//
// Two cores belong to the same group when their threads share a
// synchronization-array queue; groups are the connected components of
// that relation. A split is exact — not merely approximate — only when
// no cross-group coupling channel exists:
//
//   - No observer and no fault injector: observability sinks and the
//     injector's issue-slot schedule are ordered across all cores, so any
//     observed or injected run stays serial.
//   - At most one group touches memory (Load/Store): shared memory, the
//     shared L3, and write-invalidate coherence all couple through memory
//     accesses. Stores do invalidate other groups' private caches, but a
//     group without memory instructions never fills its caches, so those
//     invalidations find nothing and record nothing.
//   - The synchronization array's request ports can never saturate: a
//     core issues at most min(IssueWidth, MemPorts) SA operations per
//     cycle, so when SAPorts covers that worst case summed over all
//     cores, the global per-cycle port counter can never block anyone
//     and dropping it (per-group counters) is exact.
//
// Error paths may differ from the serial schedule in message detail (each
// group runs its own no-progress watchdog and cycle budget), but whether
// a run errors, and the fault it reports, are unchanged.
func (s *system) parallelGroups(ob *Observer) [][]int {
	if ob != nil || s.inj != nil || len(s.cores) < 2 {
		return nil
	}
	perCore := s.cfg.IssueWidth
	if s.cfg.MemPorts < perCore {
		perCore = s.cfg.MemPorts
	}
	if s.cfg.SAPorts < len(s.cores)*perCore {
		return nil
	}

	// Union-find over cores, rooted at the smallest member.
	parent := make([]int, len(s.cores))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}

	qOwner := make([]int, len(s.queues))
	for i := range qOwner {
		qOwner[i] = -1
	}
	mems := make([]bool, len(s.cores))
	for ci, c := range s.cores {
		ci := ci
		c.fn.Instrs(func(in *ir.Instr) {
			if in.Op.IsComm() {
				if qOwner[in.Queue] < 0 {
					qOwner[in.Queue] = ci
				} else {
					union(qOwner[in.Queue], ci)
				}
			}
			if in.Op.IsMemAccess() {
				mems[ci] = true
			}
		})
	}

	groupOf := map[int]int{}
	var groups [][]int
	memGroups := 0
	for ci := range s.cores {
		r := find(ci)
		gi, ok := groupOf[r]
		if !ok {
			gi = len(groups)
			groupOf[r] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], ci)
	}
	if len(groups) < 2 {
		return nil
	}
	for _, g := range groups {
		for _, ci := range g {
			if mems[ci] {
				memGroups++
				break
			}
		}
	}
	if memGroups > 1 {
		return nil
	}
	return groups
}

// runParallel simulates each core group in its own child system via the
// shared worker pool and merges deterministically: Cycles is the maximum
// over groups, per-core and per-queue statistics land in the same shared
// structures the serial path uses (groups touch disjoint cores and
// queues), and on failure the error of the lowest-indexed failing group
// is returned regardless of wall-clock finish order.
func (s *system) runParallel(groups [][]int, maxCycles int64) (int64, error) {
	cycles := make([]int64, len(groups))
	errs := make([]error, len(groups))
	par.Run(context.Background(), len(groups), len(groups), func(gi int) error {
		child := &system{
			cfg:    s.cfg,
			qcap:   s.qcap,
			queues: s.queues,
			qstats: s.qstats,
			mem:    s.mem,
			limits: s.limits,
			lat:    s.lat,
		}
		for _, ci := range groups[gi] {
			child.cores = append(child.cores, s.cores[ci])
		}
		// Every group runs to completion even if another fails, so the
		// merged result never depends on scheduling order.
		cycles[gi], errs[gi] = child.run(maxCycles)
		return nil
	})
	var max int64
	for gi := range groups {
		if errs[gi] != nil {
			return 0, errs[gi]
		}
		if cycles[gi] > max {
			max = cycles[gi]
		}
	}
	return max, nil
}
