package sim

import (
	"math"

	"repro/internal/attr"
	"repro/internal/ir"
	"repro/internal/obs"
)

// portClass buckets instructions onto Itanium 2 issue ports. Communication
// instructions use the M pipeline (Section 4), competing with loads and
// stores for the 4 M-type slots.
type portClass uint8

const (
	portALU portClass = iota
	portMem
	portFP
	portBranch
)

func classify(op ir.Op) portClass {
	switch {
	case op.IsMemAccess() || op.IsComm():
		return portMem
	case op.IsFloat():
		return portFP
	case op.IsTerminator():
		return portBranch
	}
	return portALU
}

// latencyOf returns the result latency of non-memory, non-communication
// instructions.
func (s *system) latencyOf(op ir.Op) int64 {
	switch op {
	case ir.Mul:
		return int64(s.cfg.MulLatency)
	case ir.Div, ir.Rem:
		return int64(s.cfg.DivLatency)
	case ir.FDiv, ir.FSqrt:
		return int64(s.cfg.FDivLatency)
	}
	if op.IsFloat() {
		return int64(s.cfg.FPLatency)
	}
	return 1
}

// cycleTag is stepCore's attribution verdict for one core-cycle: the cause
// bucket, the static instruction to blame (-1 only for Idle), and the queue
// to blame (-1 if none). When the core issued, the tag is Issue blaming the
// first instruction of the issue group; otherwise it names the first
// blocking hazard.
type cycleTag struct {
	bucket attr.Bucket
	instr  int
	queue  int
}

// blockTag resolves the cycle's tag at a stop site: Issue if anything
// already issued this cycle, else the blocking cause.
func blockTag(issued, firstID int, b attr.Bucket, instr, queue int) cycleTag {
	if issued > 0 {
		return cycleTag{bucket: attr.Issue, instr: firstID, queue: -1}
	}
	return cycleTag{bucket: b, instr: instr, queue: queue}
}

// stepCore issues as many instructions as the core can this cycle (in
// order, bounded by issue width, port availability, operand readiness and
// queue state). It returns the number of instructions issued and the
// cycle's attribution tag (meaningful only on attribution runs).
func (s *system) stepCore(c *core, cycle int64, saPortsUsed *int) (int, cycleTag) {
	if cycle < c.fetchReady {
		// Front-end bubble after a mispredict: blame the instruction whose
		// fetch is delayed.
		return 0, cycleTag{bucket: attr.Branch, instr: c.blk.Instrs[c.idx].ID, queue: -1}
	}
	cfg := &s.cfg
	issued := 0
	firstID := -1
	ports := [4]int{}
	limits := [4]int{cfg.ALUPorts, cfg.MemPorts, cfg.FPPorts, cfg.BranchPorts}

	for issued < cfg.IssueWidth && !c.done {
		in := c.blk.Instrs[c.idx]
		cls := classify(in.Op)
		if ports[cls] >= limits[cls] {
			// Structural hazard; in-order issue stops. At issued == 0 this
			// is only reachable with a zero-port config.
			return issued, blockTag(issued, firstID, attr.DepStall, in.ID, -1)
		}
		// Operand readiness (stall-on-use: the stall happens here, at
		// the first instruction that needs a late value). The stall is
		// blamed on the cause of the latest-arriving unready operand.
		opsReady := true
		for _, r := range in.Srcs {
			if c.ready[r] > cycle {
				opsReady = false
				break
			}
		}
		if !opsReady {
			b, bq := attr.DepStall, -1
			if c.readyCause != nil {
				var bestT int64 = -1
				for _, r := range in.Srcs {
					if c.ready[r] > cycle && c.ready[r] > bestT {
						bestT = c.ready[r]
						b = attr.Bucket(c.readyCause[r])
						bq = int(c.readyQueue[r])
					}
				}
			}
			return issued, blockTag(issued, firstID, b, in.ID, bq)
		}

		// done is the cycle the instruction's result becomes usable (the
		// Event.Done the profiler builds dependence edges from); evQueue
		// and evTimes describe communication effects.
		done := cycle + 1
		evQueue, evTimes := -1, 1
		stop := false // terminator: the issue group ends here

		switch in.Op {
		case ir.Produce, ir.ProduceSync:
			if s.queues[in.Queue].inFlight() >= s.qcap {
				// Queue full: blocked until the consumer frees a slot.
				return issued, blockTag(issued, firstID, attr.QueueFull, in.ID, in.Queue)
			}
			if *saPortsUsed >= cfg.SAPorts {
				// SA request ports exhausted this cycle: contention.
				return issued, blockTag(issued, firstID, attr.CommLatency, in.ID, in.Queue)
			}
			*saPortsUsed++
			v := int64(0)
			if in.Op == ir.Produce {
				v = c.regs[in.Srcs[0]]
			}
			// Core stats count the issued instruction; queue stats count
			// what actually lands in the array — under injection (drop,
			// dup, swap) the two diverge, which is the detection signal.
			tq, val, times := s.inj.Produce(c.id, in.Queue, v, len(s.queues), in.Op == ir.Produce)
			c.stats.Produces++
			for k := 0; k < times; k++ {
				q := s.queues[tq]
				q.vals = append(q.vals, val)
				q.arrival = append(q.arrival, cycle+int64(cfg.SALatency))
				qs := &s.qstats[tq]
				qs.Produced++
				if d := int64(q.inFlight()); d > qs.HighWater {
					qs.HighWater = d
				}
				if s.saLane != nil {
					s.saLane.Counter(s.qnames[tq], cycle, "depth", int64(q.inFlight()))
				}
				if s.flows {
					s.flowSeq++
					q.flowID = append(q.flowID, s.flowSeq)
					s.coreLanes[c.id].FlowStart(s.qnames[tq], "sa", s.flowSeq, cycle)
				}
			}
			if s.flows {
				s.coreLanes[c.id].SpanAt("produce", "sa", cycle, 1, obs.A("q", int64(tq)))
			}
			done = cycle + int64(cfg.SALatency)
			evQueue, evTimes = tq, times
		case ir.Consume, ir.ConsumeSync:
			q := s.queues[in.Queue]
			if q.nextPop >= len(q.vals) {
				// Nothing produced yet: the producing thread is behind.
				return issued, blockTag(issued, firstID, attr.QueueEmpty, in.ID, in.Queue)
			}
			if *saPortsUsed >= cfg.SAPorts {
				return issued, blockTag(issued, firstID, attr.CommLatency, in.ID, in.Queue)
			}
			*saPortsUsed++
			v := q.vals[q.nextPop]
			arr := q.arrival[q.nextPop]
			if s.flows {
				s.coreLanes[c.id].SpanAt("consume", "sa", cycle, 1, obs.A("q", int64(in.Queue)))
				s.coreLanes[c.id].FlowEnd(s.qnames[in.Queue], "sa", q.flowID[q.nextPop], cycle)
			}
			q.nextPop++
			c.stats.Consumes++
			s.qstats[in.Queue].Consumed++
			if s.saLane != nil {
				s.saLane.Counter(s.qnames[in.Queue], cycle, "depth", int64(q.inFlight()))
			}
			if in.Op == ir.Consume {
				c.regs[in.Dst] = v
				// Stall-on-use: the consume completes now; its value
				// becomes usable when the SA delivers it.
				if arr < cycle+1 {
					arr = cycle + 1
				}
				c.ready[in.Dst] = arr
				if c.readyCause != nil {
					c.readyCause[in.Dst] = uint8(attr.CommLatency)
					c.readyQueue[in.Dst] = int32(in.Queue)
				}
				done = arr
			}
			evQueue = in.Queue
		case ir.Load:
			addr := c.regs[in.Srcs[0]] + in.Imm
			if addr < 0 || addr >= int64(len(s.mem)) {
				s.fault(c, in, addr)
				return issued, blockTag(issued, firstID, attr.Memory, in.ID, -1)
			}
			lat := c.caches.load(addr, &c.stats.Mem)
			c.regs[in.Dst] = s.mem[addr]
			c.ready[in.Dst] = cycle + int64(lat)
			if c.readyCause != nil {
				c.readyCause[in.Dst] = uint8(attr.Memory)
				c.readyQueue[in.Dst] = -1
			}
			done = cycle + int64(lat)
		case ir.Store:
			addr := c.regs[in.Srcs[1]] + in.Imm
			if addr < 0 || addr >= int64(len(s.mem)) {
				s.fault(c, in, addr)
				return issued, blockTag(issued, firstID, attr.Memory, in.ID, -1)
			}
			var others []*hierarchy
			for _, o := range s.cores {
				if o != c {
					others = append(others, o.caches)
				}
			}
			c.caches.store(addr, others, &c.stats.Mem)
			s.mem[addr] = c.regs[in.Srcs[0]]
		case ir.Br:
			taken := c.regs[in.Srcs[0]] != 0
			predTaken := c.pred[in.ID] >= 2
			if taken != predTaken {
				c.stats.Mispreds++
				c.fetchReady = cycle + 1 + int64(cfg.MispredictPenalty)
				done = c.fetchReady
			}
			// 2-bit saturating counter update.
			if taken && c.pred[in.ID] < 3 {
				c.pred[in.ID]++
			} else if !taken && c.pred[in.ID] > 0 {
				c.pred[in.ID]--
			}
			next := c.blk.Succs[1]
			if taken {
				next = c.blk.Succs[0]
			}
			c.blk, c.idx = next, 0
			stop = true // control transfer ends the issue group
		case ir.Jump:
			c.blk, c.idx = c.blk.Succs[0], 0
			stop = true
		case ir.Ret:
			c.done = true
			if len(in.Srcs) > 0 {
				c.outs = []int64{}
				for _, r := range in.Srcs {
					c.outs = append(c.outs, c.regs[r])
				}
			}
			stop = true
		default:
			execALU(in, c.regs)
			c.ready[in.Dst] = cycle + s.latencyOf(in.Op)
			if c.readyCause != nil {
				c.readyCause[in.Dst] = uint8(attr.DepStall)
				c.readyQueue[in.Dst] = -1
			}
			done = cycle + s.latencyOf(in.Op)
		}

		ports[cls]++
		c.stats.Instrs++
		issued++
		if firstID < 0 {
			firstID = in.ID
		}
		if s.events != nil {
			s.events(Event{Core: c.id, In: in, Issue: cycle, Done: done, Queue: evQueue, Times: evTimes})
		}
		if stop {
			return issued, cycleTag{bucket: attr.Issue, instr: firstID, queue: -1}
		}
		c.idx++
	}
	return issued, blockTag(issued, firstID, attr.DepStall, -1, -1)
}

// fault records an out-of-range memory access and halts the core.
func (s *system) fault(c *core, in *ir.Instr, addr int64) {
	c.done = true
	if s.err == nil {
		s.err = &MemFaultError{Core: c.id, Instr: in, Addr: addr, Size: int64(len(s.mem))}
	}
}

// execALU evaluates arithmetic/logic instructions on the core's register
// file (the functional half of timing simulation).
func execALU(in *ir.Instr, regs []int64) {
	get := func(i int) int64 { return regs[in.Srcs[i]] }
	fget := func(i int) float64 { return ir.Float64FromBits(uint64(get(i))) }
	setf := func(v float64) { regs[in.Dst] = int64(ir.Float64Bits(v)) }
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch in.Op {
	case ir.Nop:
	case ir.Const:
		regs[in.Dst] = in.Imm
	case ir.Mov:
		regs[in.Dst] = get(0)
	case ir.Add:
		regs[in.Dst] = get(0) + get(1)
	case ir.Sub:
		regs[in.Dst] = get(0) - get(1)
	case ir.Mul:
		regs[in.Dst] = get(0) * get(1)
	case ir.Div:
		if get(1) == 0 {
			regs[in.Dst] = 0
		} else {
			regs[in.Dst] = get(0) / get(1)
		}
	case ir.Rem:
		if get(1) == 0 {
			regs[in.Dst] = 0
		} else {
			regs[in.Dst] = get(0) % get(1)
		}
	case ir.And:
		regs[in.Dst] = get(0) & get(1)
	case ir.Or:
		regs[in.Dst] = get(0) | get(1)
	case ir.Xor:
		regs[in.Dst] = get(0) ^ get(1)
	case ir.Shl:
		regs[in.Dst] = get(0) << (uint64(get(1)) & 63)
	case ir.Shr:
		regs[in.Dst] = get(0) >> (uint64(get(1)) & 63)
	case ir.Neg:
		regs[in.Dst] = -get(0)
	case ir.Not:
		regs[in.Dst] = ^get(0)
	case ir.Abs:
		if v := get(0); v < 0 {
			regs[in.Dst] = -v
		} else {
			regs[in.Dst] = v
		}
	case ir.CmpEQ:
		regs[in.Dst] = b2i(get(0) == get(1))
	case ir.CmpNE:
		regs[in.Dst] = b2i(get(0) != get(1))
	case ir.CmpLT:
		regs[in.Dst] = b2i(get(0) < get(1))
	case ir.CmpLE:
		regs[in.Dst] = b2i(get(0) <= get(1))
	case ir.CmpGT:
		regs[in.Dst] = b2i(get(0) > get(1))
	case ir.CmpGE:
		regs[in.Dst] = b2i(get(0) >= get(1))
	case ir.FAdd:
		setf(fget(0) + fget(1))
	case ir.FSub:
		setf(fget(0) - fget(1))
	case ir.FMul:
		setf(fget(0) * fget(1))
	case ir.FDiv:
		setf(fget(0) / fget(1))
	case ir.FNeg:
		setf(-fget(0))
	case ir.FAbs:
		if v := fget(0); v < 0 {
			setf(-v)
		} else {
			setf(v)
		}
	case ir.FSqrt:
		setf(math.Sqrt(fget(0)))
	case ir.FCmpLT:
		regs[in.Dst] = b2i(fget(0) < fget(1))
	case ir.FCmpGT:
		regs[in.Dst] = b2i(fget(0) > fget(1))
	case ir.ItoF:
		setf(float64(get(0)))
	case ir.FtoI:
		regs[in.Dst] = int64(fget(0))
	}
}
