package sim

import (
	"math"

	"repro/internal/attr"
	"repro/internal/ir"
	"repro/internal/obs"
)

// portClass buckets instructions onto Itanium 2 issue ports. Communication
// instructions use the M pipeline (Section 4), competing with loads and
// stores for the 4 M-type slots.
type portClass uint8

const (
	portALU portClass = iota
	portMem
	portFP
	portBranch
)

func classify(op ir.Op) portClass {
	switch {
	case op.IsMemAccess() || op.IsComm():
		return portMem
	case op.IsFloat():
		return portFP
	case op.IsTerminator():
		return portBranch
	}
	return portALU
}

// portTab is classify precomputed over the whole opcode space, so the
// issue loop buckets each instruction with one array load instead of a
// chain of predicate calls per issued instruction.
var portTab [256]portClass

func init() {
	for i := range portTab {
		portTab[i] = classify(ir.Op(i))
	}
}

// latencyOf returns the result latency of non-memory, non-communication
// instructions.
func (s *system) latencyOf(op ir.Op) int64 {
	switch op {
	case ir.Mul:
		return int64(s.cfg.MulLatency)
	case ir.Div, ir.Rem:
		return int64(s.cfg.DivLatency)
	case ir.FDiv, ir.FSqrt:
		return int64(s.cfg.FDivLatency)
	}
	if op.IsFloat() {
		return int64(s.cfg.FPLatency)
	}
	return 1
}

// cycleTag is stepCore's attribution verdict for one core-cycle: the cause
// bucket, the static instruction to blame (-1 only for Idle), and the queue
// to blame (-1 if none). When the core issued, the tag is Issue blaming the
// first instruction of the issue group; otherwise it names the first
// blocking hazard.
type cycleTag struct {
	bucket attr.Bucket
	instr  int
	queue  int
}

// blockTag resolves the cycle's tag at a stop site: Issue if anything
// already issued this cycle, else the blocking cause.
func blockTag(issued, firstID int, b attr.Bucket, instr, queue int) cycleTag {
	if issued > 0 {
		return cycleTag{bucket: attr.Issue, instr: firstID, queue: -1}
	}
	return cycleTag{bucket: b, instr: instr, queue: queue}
}

// stepCore issues as many instructions as the core can this cycle (in
// order, bounded by issue width, port availability, operand readiness and
// queue state). It returns the number of instructions issued and the
// cycle's attribution tag (meaningful only on attribution runs).
func (s *system) stepCore(c *core, cycle int64, saPortsUsed *int) (int, cycleTag) {
	if cycle < c.fetchReady {
		// Front-end bubble after a mispredict: blame the instruction whose
		// fetch is delayed. The bubble's end is known exactly.
		c.wake = c.fetchReady
		return 0, cycleTag{bucket: attr.Branch, instr: c.blk.Instrs[c.idx].ID, queue: -1}
	}
	cfg := &s.cfg
	issueWidth := cfg.IssueWidth
	limits := s.limits
	issued := 0
	firstID := -1
	ports := [4]int{}

	for issued < issueWidth && !c.done {
		in := c.blk.Instrs[c.idx]
		cls := portTab[in.Op]
		if ports[cls] >= limits[cls] {
			// Structural hazard; in-order issue stops. At issued == 0 this
			// is only reachable with a zero-port config.
			return issued, blockTag(issued, firstID, attr.DepStall, in.ID, -1)
		}
		// Operand readiness (stall-on-use: the stall happens here, at
		// the first instruction that needs a late value). The stall is
		// blamed on the cause of the latest-arriving unready operand, and
		// its clearing time — the latest ready time, which only this
		// core's own issues could ever move — is memoized as the wake.
		var lateT int64 = -1
		for _, r := range in.Srcs {
			if t := c.ready[r]; t > cycle && t > lateT {
				lateT = t
			}
		}
		if lateT >= 0 {
			b, bq := attr.DepStall, -1
			if c.readyCause != nil {
				for _, r := range in.Srcs {
					if c.ready[r] == lateT {
						b = attr.Bucket(c.readyCause[r])
						bq = int(c.readyQueue[r])
						break
					}
				}
			} else if issued == 0 {
				c.wake = lateT
			}
			return issued, blockTag(issued, firstID, b, in.ID, bq)
		}

		// done is the cycle the instruction's result becomes usable (the
		// Event.Done the profiler builds dependence edges from); evQueue
		// and evTimes describe communication effects.
		done := cycle + 1
		evQueue, evTimes := -1, 1
		stop := false // terminator: the issue group ends here

		switch in.Op {
		case ir.Produce, ir.ProduceSync:
			if s.queues[in.Queue].Len() >= s.qcap {
				// Queue full: blocked until the consumer frees a slot.
				if issued == 0 {
					c.blockedFullQ = int32(in.Queue)
				}
				return issued, blockTag(issued, firstID, attr.QueueFull, in.ID, in.Queue)
			}
			if *saPortsUsed >= cfg.SAPorts {
				// SA request ports exhausted this cycle: contention.
				return issued, blockTag(issued, firstID, attr.CommLatency, in.ID, in.Queue)
			}
			*saPortsUsed++
			v := int64(0)
			if in.Op == ir.Produce {
				v = c.regs[in.Srcs[0]]
			}
			// Core stats count the issued instruction; queue stats count
			// what actually lands in the array — under injection (drop,
			// dup, swap) the two diverge, which is the detection signal.
			tq, val, times := in.Queue, v, 1
			if s.inj != nil {
				tq, val, times = s.inj.Produce(c.id, in.Queue, v, len(s.queues), in.Op == ir.Produce)
			}
			c.stats.Produces++
			for k := 0; k < times; k++ {
				q := s.queues[tq]
				e := saEntry{val: val, arrival: cycle + int64(cfg.SALatency)}
				if s.flows {
					s.flowSeq++
					e.flow = s.flowSeq
				}
				q.Push(e)
				qs := &s.qstats[tq]
				qs.Produced++
				if d := int64(q.Len()); d > qs.HighWater {
					qs.HighWater = d
				}
				if s.saLane != nil {
					s.saLane.Counter(s.qnames[tq], cycle, "depth", int64(q.Len()))
				}
				if s.flows {
					s.coreLanes[c.id].FlowStart(s.qnames[tq], "sa", e.flow, cycle)
				}
			}
			if s.flows {
				s.coreLanes[c.id].SpanAt("produce", "sa", cycle, 1, obs.A("q", int64(tq)))
			}
			done = cycle + int64(cfg.SALatency)
			evQueue, evTimes = tq, times
		case ir.Consume, ir.ConsumeSync:
			q := s.queues[in.Queue]
			if q.Len() == 0 {
				// Nothing produced yet: the producing thread is behind.
				if issued == 0 {
					c.blockedEmptyQ = int32(in.Queue)
				}
				return issued, blockTag(issued, firstID, attr.QueueEmpty, in.ID, in.Queue)
			}
			if *saPortsUsed >= cfg.SAPorts {
				return issued, blockTag(issued, firstID, attr.CommLatency, in.ID, in.Queue)
			}
			*saPortsUsed++
			e := q.Pop()
			v := e.val
			arr := e.arrival
			if s.flows {
				s.coreLanes[c.id].SpanAt("consume", "sa", cycle, 1, obs.A("q", int64(in.Queue)))
				s.coreLanes[c.id].FlowEnd(s.qnames[in.Queue], "sa", e.flow, cycle)
			}
			c.stats.Consumes++
			s.qstats[in.Queue].Consumed++
			if s.saLane != nil {
				s.saLane.Counter(s.qnames[in.Queue], cycle, "depth", int64(q.Len()))
			}
			if in.Op == ir.Consume {
				c.regs[in.Dst] = v
				// Stall-on-use: the consume completes now; its value
				// becomes usable when the SA delivers it.
				if arr < cycle+1 {
					arr = cycle + 1
				}
				c.ready[in.Dst] = arr
				if c.readyCause != nil {
					c.readyCause[in.Dst] = uint8(attr.CommLatency)
					c.readyQueue[in.Dst] = int32(in.Queue)
				}
				done = arr
			}
			evQueue = in.Queue
		case ir.Load:
			addr := c.regs[in.Srcs[0]] + in.Imm
			if addr < 0 || addr >= int64(len(s.mem)) {
				s.fault(c, in, addr)
				return issued, blockTag(issued, firstID, attr.Memory, in.ID, -1)
			}
			lat := c.caches.load(addr, &c.stats.Mem)
			c.regs[in.Dst] = s.mem[addr]
			c.ready[in.Dst] = cycle + int64(lat)
			if c.readyCause != nil {
				c.readyCause[in.Dst] = uint8(attr.Memory)
				c.readyQueue[in.Dst] = -1
			}
			done = cycle + int64(lat)
		case ir.Store:
			addr := c.regs[in.Srcs[1]] + in.Imm
			if addr < 0 || addr >= int64(len(s.mem)) {
				s.fault(c, in, addr)
				return issued, blockTag(issued, firstID, attr.Memory, in.ID, -1)
			}
			c.caches.store(addr, c.inval, &c.stats.Mem)
			s.mem[addr] = c.regs[in.Srcs[0]]
		case ir.Br:
			taken := c.regs[in.Srcs[0]] != 0
			predTaken := c.pred[in.ID] >= 2
			if taken != predTaken {
				c.stats.Mispreds++
				c.fetchReady = cycle + 1 + int64(cfg.MispredictPenalty)
				done = c.fetchReady
			}
			// 2-bit saturating counter update.
			if taken && c.pred[in.ID] < 3 {
				c.pred[in.ID]++
			} else if !taken && c.pred[in.ID] > 0 {
				c.pred[in.ID]--
			}
			next := c.blk.Succs[1]
			if taken {
				next = c.blk.Succs[0]
			}
			c.blk, c.idx = next, 0
			stop = true // control transfer ends the issue group
		case ir.Jump:
			c.blk, c.idx = c.blk.Succs[0], 0
			stop = true
		case ir.Ret:
			c.done = true
			s.doneCores++
			if len(in.Srcs) > 0 {
				c.outs = []int64{}
				for _, r := range in.Srcs {
					c.outs = append(c.outs, c.regs[r])
				}
			}
			stop = true
		default:
			execALU(in, c.regs)
			done = cycle + s.lat[in.Op]
			c.ready[in.Dst] = done
			if c.readyCause != nil {
				c.readyCause[in.Dst] = uint8(attr.DepStall)
				c.readyQueue[in.Dst] = -1
			}
		}

		ports[cls]++
		c.stats.Instrs++
		issued++
		if firstID < 0 {
			firstID = in.ID
		}
		if s.events != nil {
			s.events(Event{Core: c.id, In: in, Issue: cycle, Done: done, Queue: evQueue, Times: evTimes})
		}
		if stop {
			return issued, cycleTag{bucket: attr.Issue, instr: firstID, queue: -1}
		}
		c.idx++
	}
	return issued, blockTag(issued, firstID, attr.DepStall, -1, -1)
}

// stepCoreFast is stepCore for runs with no observability sinks attached
// (no attribution, no event stream, no trace lanes, no flow arrows): the
// cycle's attribution tag is never read on that path, so the tag and
// first-issued-instruction bookkeeping, the per-instruction sink checks,
// and the readyCause plumbing all drop out of the issue loop, which runs
// over the decoded (flat, pointer-free) instruction stream instead of the
// IR. Timing, statistics, fault injection, and block memos are
// bit-identical to stepCore — TestStepCoreFastEquivalence pins the two
// against each other.
func (s *system) stepCoreFast(c *core, cycle int64, saPortsUsed *int) int {
	if cycle < c.fetchReady {
		c.wake = c.fetchReady
		return 0
	}
	cfg := &s.cfg
	issueWidth := cfg.IssueWidth
	saPorts := cfg.SAPorts
	regs := c.regs
	ready := c.ready
	issued := 0
	// avail counts remaining port slots per class; the &3 masks keep the
	// class in the compiler-provable [0,4) range so the array indexing is
	// bounds-check free. idx shadows c.idx in a register for the duration
	// of the call (written back at the single exit below).
	avail := s.limits
	ins := c.dblk.ins // stable within the call: taken branches break out
	idx := c.idx

loop:
	for issued < issueWidth && !c.done {
		di := &ins[idx]
		cls := di.cls & 3
		if avail[cls] == 0 {
			break loop
		}
		var lateT int64 = -1
		if di.nsrc > 0 {
			if t := ready[di.s0]; t > cycle {
				lateT = t
			}
			if di.nsrc > 1 {
				if t := ready[di.s1]; t > cycle && t > lateT {
					lateT = t
				}
				if di.nsrc > 2 {
					for _, r := range c.dblk.irs[idx].Srcs[2:] {
						if t := ready[r]; t > cycle && t > lateT {
							lateT = t
						}
					}
				}
			}
		}
		if lateT >= 0 {
			if issued == 0 {
				c.wake = lateT
			}
			break loop
		}

		stop := false

		switch di.op {
		case ir.Add:
			regs[di.dst] = regs[di.s0] + regs[di.s1]
			ready[di.dst] = cycle + 1
		case ir.Const:
			regs[di.dst] = di.imm
			ready[di.dst] = cycle + 1
		case ir.Mov:
			regs[di.dst] = regs[di.s0]
			ready[di.dst] = cycle + 1
		case ir.Sub:
			regs[di.dst] = regs[di.s0] - regs[di.s1]
			ready[di.dst] = cycle + 1
		case ir.CmpLT:
			if regs[di.s0] < regs[di.s1] {
				regs[di.dst] = 1
			} else {
				regs[di.dst] = 0
			}
			ready[di.dst] = cycle + 1
		case ir.CmpGT:
			if regs[di.s0] > regs[di.s1] {
				regs[di.dst] = 1
			} else {
				regs[di.dst] = 0
			}
			ready[di.dst] = cycle + 1
		case ir.Shl:
			regs[di.dst] = regs[di.s0] << (uint64(regs[di.s1]) & 63)
			ready[di.dst] = cycle + 1
		case ir.Shr:
			regs[di.dst] = regs[di.s0] >> (uint64(regs[di.s1]) & 63)
			ready[di.dst] = cycle + 1
		case ir.And:
			regs[di.dst] = regs[di.s0] & regs[di.s1]
			ready[di.dst] = cycle + 1
		case ir.Xor:
			regs[di.dst] = regs[di.s0] ^ regs[di.s1]
			ready[di.dst] = cycle + 1
		case ir.Produce, ir.ProduceSync:
			if s.queues[di.queue].Len() >= s.qcap {
				if issued == 0 {
					c.blockedFullQ = di.queue
				}
				break loop
			}
			if *saPortsUsed >= saPorts {
				break loop
			}
			*saPortsUsed++
			v := int64(0)
			if di.op == ir.Produce {
				v = regs[di.s0]
			}
			tq, val, times := int(di.queue), v, 1
			if s.inj != nil {
				tq, val, times = s.inj.Produce(c.id, int(di.queue), v, len(s.queues), di.op == ir.Produce)
			}
			c.stats.Produces++
			for k := 0; k < times; k++ {
				q := s.queues[tq]
				q.Push(saEntry{val: val, arrival: cycle + int64(cfg.SALatency)})
				qs := &s.qstats[tq]
				qs.Produced++
				if d := int64(q.Len()); d > qs.HighWater {
					qs.HighWater = d
				}
			}
		case ir.Consume, ir.ConsumeSync:
			q := s.queues[di.queue]
			if q.Len() == 0 {
				if issued == 0 {
					c.blockedEmptyQ = di.queue
				}
				break loop
			}
			if *saPortsUsed >= saPorts {
				break loop
			}
			*saPortsUsed++
			e := q.Pop()
			c.stats.Consumes++
			s.qstats[di.queue].Consumed++
			if di.op == ir.Consume {
				regs[di.dst] = e.val
				arr := e.arrival
				if arr < cycle+1 {
					arr = cycle + 1
				}
				ready[di.dst] = arr
			}
		case ir.Load:
			addr := regs[di.s0] + di.imm
			if addr < 0 || addr >= int64(len(s.mem)) {
				s.fault(c, c.dblk.irs[idx], addr)
				break loop
			}
			lat := c.caches.load(addr, &c.stats.Mem)
			regs[di.dst] = s.mem[addr]
			ready[di.dst] = cycle + int64(lat)
		case ir.Store:
			addr := regs[di.s1] + di.imm
			if addr < 0 || addr >= int64(len(s.mem)) {
				s.fault(c, c.dblk.irs[idx], addr)
				break loop
			}
			c.caches.store(addr, c.inval, &c.stats.Mem)
			s.mem[addr] = regs[di.s0]
		case ir.Br:
			taken := regs[di.s0] != 0
			predTaken := c.pred[di.id] >= 2
			if taken != predTaken {
				c.stats.Mispreds++
				c.fetchReady = cycle + 1 + int64(cfg.MispredictPenalty)
			}
			if taken && c.pred[di.id] < 3 {
				c.pred[di.id]++
			} else if !taken && c.pred[di.id] > 0 {
				c.pred[di.id]--
			}
			next := c.dblk.succs[1]
			if taken {
				next = c.dblk.succs[0]
			}
			c.dblk, idx = next, 0
			stop = true
		case ir.Jump:
			c.dblk, idx = c.dblk.succs[0], 0
			stop = true
		case ir.Ret:
			c.done = true
			s.doneCores++
			if di.nsrc > 0 {
				c.outs = []int64{}
				for _, r := range c.dblk.irs[idx].Srcs {
					c.outs = append(c.outs, regs[r])
				}
			}
			stop = true
		default:
			execALU(c.dblk.irs[idx], regs)
			ready[di.dst] = cycle + s.lat[di.op]
		}

		avail[cls]--
		c.stats.Instrs++
		issued++
		if stop {
			break loop
		}
		idx++
	}
	c.idx = idx
	return issued
}

// fault records an out-of-range memory access and halts the core.
func (s *system) fault(c *core, in *ir.Instr, addr int64) {
	c.done = true
	s.doneCores++
	if s.err == nil {
		s.err = &MemFaultError{Core: c.id, Instr: in, Addr: addr, Size: int64(len(s.mem))}
	}
}

// execALU evaluates arithmetic/logic instructions on the core's register
// file (the functional half of timing simulation).
func execALU(in *ir.Instr, regs []int64) {
	get := func(i int) int64 { return regs[in.Srcs[i]] }
	fget := func(i int) float64 { return ir.Float64FromBits(uint64(get(i))) }
	setf := func(v float64) { regs[in.Dst] = int64(ir.Float64Bits(v)) }
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch in.Op {
	case ir.Nop:
	case ir.Const:
		regs[in.Dst] = in.Imm
	case ir.Mov:
		regs[in.Dst] = get(0)
	case ir.Add:
		regs[in.Dst] = get(0) + get(1)
	case ir.Sub:
		regs[in.Dst] = get(0) - get(1)
	case ir.Mul:
		regs[in.Dst] = get(0) * get(1)
	case ir.Div:
		if get(1) == 0 {
			regs[in.Dst] = 0
		} else {
			regs[in.Dst] = get(0) / get(1)
		}
	case ir.Rem:
		if get(1) == 0 {
			regs[in.Dst] = 0
		} else {
			regs[in.Dst] = get(0) % get(1)
		}
	case ir.And:
		regs[in.Dst] = get(0) & get(1)
	case ir.Or:
		regs[in.Dst] = get(0) | get(1)
	case ir.Xor:
		regs[in.Dst] = get(0) ^ get(1)
	case ir.Shl:
		regs[in.Dst] = get(0) << (uint64(get(1)) & 63)
	case ir.Shr:
		regs[in.Dst] = get(0) >> (uint64(get(1)) & 63)
	case ir.Neg:
		regs[in.Dst] = -get(0)
	case ir.Not:
		regs[in.Dst] = ^get(0)
	case ir.Abs:
		if v := get(0); v < 0 {
			regs[in.Dst] = -v
		} else {
			regs[in.Dst] = v
		}
	case ir.CmpEQ:
		regs[in.Dst] = b2i(get(0) == get(1))
	case ir.CmpNE:
		regs[in.Dst] = b2i(get(0) != get(1))
	case ir.CmpLT:
		regs[in.Dst] = b2i(get(0) < get(1))
	case ir.CmpLE:
		regs[in.Dst] = b2i(get(0) <= get(1))
	case ir.CmpGT:
		regs[in.Dst] = b2i(get(0) > get(1))
	case ir.CmpGE:
		regs[in.Dst] = b2i(get(0) >= get(1))
	case ir.FAdd:
		setf(fget(0) + fget(1))
	case ir.FSub:
		setf(fget(0) - fget(1))
	case ir.FMul:
		setf(fget(0) * fget(1))
	case ir.FDiv:
		setf(fget(0) / fget(1))
	case ir.FNeg:
		setf(-fget(0))
	case ir.FAbs:
		if v := fget(0); v < 0 {
			setf(-v)
		} else {
			setf(v)
		}
	case ir.FSqrt:
		setf(math.Sqrt(fget(0)))
	case ir.FCmpLT:
		regs[in.Dst] = b2i(fget(0) < fget(1))
	case ir.FCmpGT:
		regs[in.Dst] = b2i(fget(0) > fget(1))
	case ir.ItoF:
		setf(float64(get(0)))
	case ir.FtoI:
		regs[in.Dst] = int64(fget(0))
	}
}
