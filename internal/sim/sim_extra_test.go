package sim

import (
	"testing"

	"repro/internal/ir"
)

// buildIndependentALUChain makes n independent adds (6-wide issue should
// retire ~6 per cycle).
func buildIndependentALUChain(n int) *ir.Function {
	b := ir.NewBuilder("wide")
	x := b.Param()
	for i := 0; i < n; i++ {
		b.Add(x, x)
	}
	b.Ret()
	return b.F
}

// buildDependentALUChain makes n serially dependent adds (one per cycle).
func buildDependentALUChain(n int) *ir.Function {
	b := ir.NewBuilder("serial")
	x := b.Param()
	cur := x
	for i := 0; i < n; i++ {
		cur = b.Add(cur, x)
	}
	b.Ret(cur)
	return b.F
}

func TestIssueWidthExploitsILP(t *testing.T) {
	cfg := DefaultConfig()
	n := 600
	wide, err := RunSingle(cfg, buildIndependentALUChain(n), []int64{1}, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunSingle(cfg, buildDependentALUChain(n), []int64{1}, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	// Independent ops issue up to 6/cycle; dependent ops at 1/cycle.
	if wide.Cycles*3 > serial.Cycles {
		t.Errorf("ILP not exploited: independent %d cycles vs dependent %d",
			wide.Cycles, serial.Cycles)
	}
	if ipc := wide.IPC(); ipc < 3 {
		t.Errorf("IPC of independent adds = %.2f, want > 3", ipc)
	}
	if ipc := serial.IPC(); ipc > 1.5 {
		t.Errorf("IPC of dependent chain = %.2f, want ~1", ipc)
	}
}

func TestMemPortLimitThrottlesLoads(t *testing.T) {
	// 400 independent loads of the same cached address: bounded by the 4
	// M-type slots per cycle, not the 6-wide issue.
	b := ir.NewBuilder("memports")
	addr := b.Const(0)
	for i := 0; i < 400; i++ {
		b.Load(addr, 0)
	}
	b.Ret()
	res, err := RunSingle(DefaultConfig(), b.F, nil, make([]int64, 8), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 100 {
		t.Errorf("%d cycles for 400 loads; 4 memory ports should bound this at >= 100", res.Cycles)
	}
}

func TestSAPortContentionSharedBetweenCores(t *testing.T) {
	// Two cores each performing produce->consume chatter share the 4 SA
	// ports; with 1 port total the same program takes longer.
	mk := func(producer bool, n int64) *ir.Function {
		f := ir.NewFunction("chatter")
		f.NumQueues = 2
		entry := f.NewBlock("entry")
		loop := f.NewBlock("loop")
		exit := f.NewBlock("exit")
		i, one, lim, c, v := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
		ci := f.NewInstr(ir.Const, i)
		entry.Append(ci)
		c1 := f.NewInstr(ir.Const, one)
		c1.Imm = 1
		entry.Append(c1)
		cl := f.NewInstr(ir.Const, lim)
		cl.Imm = n
		entry.Append(cl)
		entry.Append(f.NewInstr(ir.Jump, ir.NoReg))
		entry.SetSuccs(loop)
		q0, q1 := 0, 1
		if !producer {
			q0, q1 = 1, 0
		}
		p := f.NewInstr(ir.Produce, ir.NoReg, i)
		p.Queue = q0
		loop.Append(p)
		cons := f.NewInstr(ir.Consume, v)
		cons.Queue = q1
		loop.Append(cons)
		loop.Append(f.NewInstr(ir.Add, i, i, one))
		loop.Append(f.NewInstr(ir.CmpLT, c, i, lim))
		loop.Append(f.NewInstr(ir.Br, ir.NoReg, c))
		loop.SetSuccs(loop, exit)
		exit.Append(f.NewInstr(ir.Ret, ir.NoReg))
		return f
	}
	run := func(ports int) int64 {
		cfg := DefaultConfig()
		cfg.SAPorts = ports
		res, err := Run(cfg, []*ir.Function{mk(true, 400), mk(false, 400)}, nil, nil, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	wide, narrow := run(4), run(1)
	if narrow <= wide {
		t.Errorf("1 SA port (%d cycles) should be slower than 4 (%d cycles)", narrow, wide)
	}
}

func TestMispredictPenaltySlowsAlternatingBranch(t *testing.T) {
	// A branch alternating taken/not-taken defeats 2-bit prediction.
	build := func() *ir.Function {
		b := ir.NewBuilder("alt")
		loop := b.Block("loop")
		a := b.Block("a")
		bb := b.Block("b")
		latch := b.Block("latch")
		exit := b.Block("exit")
		i := b.F.NewReg()
		b.ConstTo(i, 0)
		b.Jump(loop)
		b.SetBlock(loop)
		par := b.And(i, b.Const(1))
		b.Br(par, a, bb)
		b.SetBlock(a)
		b.Jump(latch)
		b.SetBlock(bb)
		b.Jump(latch)
		b.SetBlock(latch)
		b.Op2To(i, ir.Add, i, b.Const(1))
		c := b.CmpLT(i, b.Const(400))
		b.Br(c, loop, exit)
		b.SetBlock(exit)
		b.Ret(i)
		b.F.SplitCriticalEdges()
		return b.F
	}
	fast := DefaultConfig()
	fast.MispredictPenalty = 0
	slow := DefaultConfig()
	slow.MispredictPenalty = 20

	rf, err := RunSingle(fast, build(), nil, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunSingle(slow, build(), nil, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rs.PerCore[0].Mispreds < 100 {
		t.Errorf("alternating branch mispredicted only %d times", rs.PerCore[0].Mispreds)
	}
	if rs.Cycles <= rf.Cycles {
		t.Errorf("mispredict penalty had no effect: %d vs %d cycles", rs.Cycles, rf.Cycles)
	}
}

func TestCoherenceInvalidation(t *testing.T) {
	// Core 0 stores to a line; core 1 then loads it. The line was
	// invalidated in core 1's private caches, so its load must go at
	// least to the shared L3 — observable as a non-L1 hit.
	// Handshake: reader warms its cache, signals q0; writer stores,
	// signals q1; reader reloads.
	mkWriter := func() *ir.Function {
		f := ir.NewFunction("w")
		f.NumQueues = 2
		e := f.NewBlock("entry")
		addr := f.NewReg()
		ca := f.NewInstr(ir.Const, addr)
		e.Append(ca)
		v := f.NewReg()
		cv := f.NewInstr(ir.Const, v)
		cv.Imm = 42
		e.Append(cv)
		c := f.NewInstr(ir.ConsumeSync, ir.NoReg)
		c.Queue = 0
		e.Append(c)
		st := f.NewInstr(ir.Store, ir.NoReg, v, addr)
		e.Append(st)
		p := f.NewInstr(ir.ProduceSync, ir.NoReg)
		p.Queue = 1
		e.Append(p)
		e.Append(f.NewInstr(ir.Ret, ir.NoReg))
		return f
	}
	mkReader := func() *ir.Function {
		f := ir.NewFunction("r")
		f.NumQueues = 2
		e := f.NewBlock("entry")
		addr := f.NewReg()
		ca := f.NewInstr(ir.Const, addr)
		e.Append(ca)
		// Warm the reader's cache.
		v1 := f.NewReg()
		l1 := f.NewInstr(ir.Load, v1, addr)
		e.Append(l1)
		p := f.NewInstr(ir.ProduceSync, ir.NoReg)
		p.Queue = 0
		e.Append(p)
		c := f.NewInstr(ir.ConsumeSync, ir.NoReg)
		c.Queue = 1
		e.Append(c)
		v2 := f.NewReg()
		l2 := f.NewInstr(ir.Load, v2, addr)
		e.Append(l2)
		ret := f.NewInstr(ir.Ret, ir.NoReg, v2)
		e.Append(ret)
		return f
	}
	res, err := Run(DefaultConfig(), []*ir.Function{mkWriter(), mkReader()}, nil, make([]int64, 8), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveOuts[0] != 42 {
		t.Fatalf("reader saw %d, want 42", res.LiveOuts[0])
	}
	// Reader: first load misses (cold), second load misses again because
	// of the invalidation — at most zero L1 hits.
	if res.PerCore[1].Mem.L1Hits != 0 {
		t.Errorf("reader had %d L1 hits; invalidation should have evicted the line",
			res.PerCore[1].Mem.L1Hits)
	}
}
