package sim

import (
	"fmt"

	"repro/internal/ir"
)

// MemFaultError reports an out-of-range memory access during simulation.
type MemFaultError struct {
	Core  int
	Instr *ir.Instr
	Addr  int64
	Size  int64
}

// Error implements error.
func (e *MemFaultError) Error() string {
	return fmt.Sprintf("sim: core %d: %v: address %d out of range [0,%d)",
		e.Core, e.Instr, e.Addr, e.Size)
}
