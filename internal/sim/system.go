package sim

import (
	"errors"
	"fmt"

	"repro/internal/attr"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/ring"
)

// ErrNoProgress is returned when no core issues an instruction for an
// implausibly long window, indicating a queue-placement deadlock.
var ErrNoProgress = errors.New("sim: no core made progress")

// ErrBadProgram is returned when a thread references a queue outside the
// program's queue range — a mis-specified plan. Validated up front so a
// corrupted program is a typed error, never an index panic mid-simulation.
var ErrBadProgram = errors.New("sim: program references queue out of range")

// ErrCycleLimit is returned when the cycle budget is exhausted.
var ErrCycleLimit = errors.New("sim: cycle limit exceeded")

// CoreStats aggregates one core's activity.
type CoreStats struct {
	Instrs   int64
	Mem      MemStats
	Mispreds int64
	// IssueStallCycles counts cycles where the core issued nothing while
	// still having work.
	IssueStallCycles int64
	// Produces and Consumes count dynamic synchronization-array operations
	// (synchronization tokens included). The differential oracle checks
	// they agree with the multi-threaded interpreter's counts.
	Produces int64
	Consumes int64
}

// QueueStats aggregates one synchronization-array queue's activity.
// Occupancy is tracked per (producer, consumer) queue, never folded into
// a global maximum, so DSWP's deep queues and the single-entry queues of
// the other partitioners report separately.
type QueueStats struct {
	Produced int64
	Consumed int64
	// HighWater is the largest number of values in flight (produced but
	// not yet consumed) at once.
	HighWater int64
}

// Result is the outcome of a timed run.
type Result struct {
	Cycles   int64
	PerCore  []CoreStats
	PerQueue []QueueStats
	LiveOuts []int64
	Mem      []int64
	// Attr is the cycle attribution (Observer.Attr runs only): every
	// core-cycle tagged with a cause bucket, per core, per static
	// instruction, and per queue arc. Per-core bucket sums equal Cycles
	// exactly — attribution is observational and conserves by
	// construction.
	Attr *attr.Run
}

// IPC returns total instructions per cycle across cores.
func (r *Result) IPC() float64 {
	var n int64
	for _, c := range r.PerCore {
		n += c.Instrs
	}
	if r.Cycles == 0 {
		return 0
	}
	return float64(n) / float64(r.Cycles)
}

// saEntry is one value in flight through a synchronization-array queue:
// the value, the cycle it becomes visible to the consumer, and (flow-
// tracing runs only) the trace flow-event binding id it was produced
// under, so the matching consume can close the produce→consume arrow.
type saEntry struct {
	val     int64
	arrival int64
	flow    int64
}

// saQueue is one synchronization-array queue's timing+value state: a ring
// sized by the architectural queue capacity, so occupancy-bounded traffic
// never reallocates (the previous slice representation retained every
// value ever produced — O(traffic) memory on a queue that is
// architecturally qcap deep).
type saQueue struct {
	ring.Buf[saEntry]
}

func (q *saQueue) inFlight() int { return q.Len() }

// core is one in-order processor.
type core struct {
	id    int
	fn    *ir.Function
	regs  []int64
	ready []int64 // reg -> cycle the value is available
	blk   *ir.Block
	// dblk is the decoded view of the current block, advanced by
	// stepCoreFast. A run drives either blk (stepCore, observed runs) or
	// dblk (stepCoreFast) exclusively — the sink set is fixed for the
	// whole run — so the two cursors never need reconciling.
	dblk *decBlock
	idx  int
	done bool
	// fetchReady is the first cycle issue may resume after a mispredict.
	fetchReady int64
	caches     *hierarchy
	// inval is the precomputed list of other cores' private caches this
	// core's stores must invalidate (write-invalidate coherence). Computed
	// once at setup so the Store hot path never allocates.
	inval []*hierarchy
	pred  []uint8 // 2-bit predictor state per instruction ID
	outs  []int64
	stats CoreStats

	// Block memos (non-attribution runs): when issue blocks with nothing
	// issued, stepCore records the one condition that must change before
	// the core can issue again, and the cycle loop requalifies it with a
	// single compare instead of a full stepCore call. wake is the first
	// cycle an operand/front-end stall can clear (register ready times are
	// only ever written by the core itself, so the bound is exact);
	// blockedEmptyQ/blockedFullQ name the queue whose occupancy must
	// change (-1 when not queue-blocked). Attribution runs bypass the
	// memos — they need stepCore's per-cycle cause tag.
	wake          int64
	blockedEmptyQ int32
	blockedFullQ  int32

	// readyCause/readyQueue (attribution runs only) remember why each
	// register's value is late: the attr.Bucket of the producing
	// instruction class (DepStall, Memory, CommLatency) and the queue a
	// consumed value travelled through (-1 otherwise). A stall-on-use
	// cycle is blamed on the cause of the latest-arriving unready operand.
	readyCause []uint8
	readyQueue []int32
}

// system couples the cores, the shared L3, and the SA.
type system struct {
	cfg    Config
	qcap   int // effective queue capacity (cfg.QueueCap, possibly shrunk)
	inj    *fault.Injector
	cores  []*core
	queues []*saQueue
	qstats []QueueStats
	mem    []int64
	err    error // first memory fault

	// Hot-path tables, derived from cfg once at setup so the issue loop
	// performs no per-instruction switch dispatch or per-call array
	// construction. limits is the port budget per class; lat maps every
	// opcode to its result latency.
	limits [4]int
	lat    [256]int64
	// doneCores counts finished cores so the cycle loop terminates on a
	// counter compare instead of scanning every core every cycle.
	doneCores int

	// Observability sinks (all optional). saLane carries queue-occupancy
	// counter tracks; coreLanes carry per-core coalesced stall spans.
	saLane    *obs.Lane
	coreLanes []*obs.Lane
	qnames    []string // cached "q<N>" counter-track names

	// Attribution sinks (all optional, observational only).
	attr    *attr.Run   // cycle-cause tally, conserving per core
	events  func(Event) // per-issued-instruction stream for the profiler
	flows   bool        // emit produce→consume flow events on coreLanes
	flowSeq int64       // deterministic flow-event binding ids
}

// Event is one issued instruction instance, streamed to Observer.Events as
// the simulation advances. The profiler (internal/profile) reconstructs the
// run's dynamic dependence graph from this stream: In identifies the static
// instruction, Issue/Done bound its execution in cycles, and Queue/Times
// describe what a communication instruction did to the synchronization
// array. Events are emitted in deterministic order: cycle-major, core-minor,
// issue-slot-minor.
type Event struct {
	// Core is the issuing core.
	Core int
	// In is the issued static instruction (of the core's thread function).
	In *ir.Instr
	// Issue is the cycle the instruction issued.
	Issue int64
	// Done is the cycle the instruction's result becomes usable: operand
	// ready time for value-producing instructions, SA arrival for
	// produces, branch-resolution (including any mispredict bubble) for
	// branches, Issue+1 otherwise.
	Done int64
	// Queue is the effective synchronization-array queue touched (after
	// any fault injection), or -1 for non-communication instructions.
	Queue int
	// Times is the number of values a produce actually landed (0 under an
	// injected drop, 2 under a dup); 1 for everything else.
	Times int
}

// Observer carries the optional observability sinks for one simulation
// run. It is passed alongside Config rather than inside it so Config
// stays comparable (the experiment engine memoizes simulation results
// keyed on it). All timestamps recorded through an Observer are simulator
// cycles, never wall-clock.
type Observer struct {
	// Metrics receives end-of-run totals: cycles, per-core
	// core<i>.{instrs,stall_cycles,produces,consumes,mispreds}, and
	// per-queue queue.<q>.{produced,consumed,hwm}.
	Metrics *obs.Scope
	// Trace receives the cycle timeline: coalesced issue-stall spans on
	// one lane per core (tid = core ID + 1) and queue-occupancy counter
	// series on the synchronization-array lane (tid 0).
	Trace *obs.Trace
	// Pid is the trace process ID the run's lanes are placed under; the
	// caller labels it with Trace.ProcessName.
	Pid int
	// Attr enables cycle attribution: every core-cycle is tagged with a
	// cause bucket into Result.Attr, conserving exactly (per-core bucket
	// sums equal Result.Cycles). Attribution is observational — it never
	// changes timing.
	Attr bool
	// Events, when non-nil, receives one Event per issued instruction, in
	// deterministic (cycle, core, issue-slot) order. The profiler uses the
	// stream to reconstruct the run's dynamic dependence graph.
	Events func(Event)
	// Flows additionally emits produce→consume flow events (and the
	// 1-cycle comm spans they bind to) on the per-core trace lanes, so
	// Perfetto draws cross-core arrows for every matched SA pair.
	// Requires Trace.
	Flows bool
}

// Run simulates the threads to completion on the configured machine and
// returns timing and functional results. The thread functions must all take
// the same parameters; mem is the shared memory image (mutated).
func Run(cfg Config, threads []*ir.Function, args []int64, mem []int64, maxCycles int64) (*Result, error) {
	return RunObserved(cfg, threads, args, mem, maxCycles, nil)
}

// RunObserved is Run with observability: per-queue occupancy and per-core
// stall timelines stream into ob's sinks as the simulation advances. A nil
// ob (or nil fields) records nothing and is exactly Run.
func RunObserved(cfg Config, threads []*ir.Function, args []int64, mem []int64, maxCycles int64, ob *Observer) (*Result, error) {
	return RunInjected(cfg, threads, args, mem, maxCycles, ob, nil)
}

// RunInjected is RunObserved with a deterministic fault injector consulted
// at each synchronization-array operation and core issue slot. The injector
// belongs to this run (create a fresh one per call); nil injects nothing
// and is exactly RunObserved.
func RunInjected(cfg Config, threads []*ir.Function, args []int64, mem []int64, maxCycles int64, ob *Observer, inj *fault.Injector) (*Result, error) {
	if len(threads) > cfg.Cores {
		return nil, fmt.Errorf("sim: %d threads exceed %d cores", len(threads), cfg.Cores)
	}
	numQueues := 0
	for _, f := range threads {
		if f.NumQueues > numQueues {
			numQueues = f.NumQueues
		}
	}
	if numQueues > cfg.NumQueues {
		return nil, fmt.Errorf("sim: program needs %d queues, hardware has %d (run queue allocation)",
			numQueues, cfg.NumQueues)
	}
	for _, f := range threads {
		var badQ error
		fn := f
		f.Instrs(func(in *ir.Instr) {
			if badQ == nil && in.Op.IsComm() && (in.Queue < 0 || in.Queue >= numQueues) {
				badQ = fmt.Errorf("%w: thread %s: %v references queue %d of %d",
					ErrBadProgram, fn.Name, in, in.Queue, numQueues)
			}
		})
		if badQ != nil {
			return nil, badQ
		}
	}

	l3 := newCache(cfg.L3Sets, cfg.L3Ways, cfg.L3Line)
	sys := &system{cfg: cfg, qcap: inj.QueueCap(cfg.QueueCap), inj: inj, mem: mem}
	for i, f := range threads {
		if len(args) != len(f.Params) {
			return nil, fmt.Errorf("sim: thread %s takes %d params, got %d", f.Name, len(f.Params), len(args))
		}
		c := &core{
			id:            i,
			fn:            f,
			regs:          make([]int64, int(f.MaxReg())+1),
			ready:         make([]int64, int(f.MaxReg())+1),
			blk:           f.Entry(),
			dblk:          decodeFunction(f),
			pred:          make([]uint8, f.NumInstrIDs()),
			blockedEmptyQ: -1,
			blockedFullQ:  -1,
			caches: &hierarchy{
				l1:  newCache(cfg.L1Sets, cfg.L1Ways, cfg.L1Line),
				l2:  newCache(cfg.L2Sets, cfg.L2Ways, cfg.L2Line),
				l3:  l3,
				cfg: &cfg,
			},
		}
		for j, p := range f.Params {
			c.regs[p] = args[j]
		}
		sys.cores = append(sys.cores, c)
	}
	for _, c := range sys.cores {
		for _, o := range sys.cores {
			if o != c {
				c.inval = append(c.inval, o.caches)
			}
		}
	}
	sys.limits = [4]int{cfg.ALUPorts, cfg.MemPorts, cfg.FPPorts, cfg.BranchPorts}
	for i := range sys.lat {
		sys.lat[i] = sys.latencyOf(ir.Op(i))
	}
	sys.queues = make([]*saQueue, numQueues)
	for i := range sys.queues {
		sys.queues[i] = &saQueue{}
		sys.queues[i].Init(sys.qcap)
	}
	sys.qstats = make([]QueueStats, numQueues)
	if ob != nil && ob.Trace != nil {
		sys.saLane = ob.Trace.Lane(ob.Pid, 0)
		ob.Trace.ThreadName(ob.Pid, 0, "sa-queues")
		sys.qnames = make([]string, numQueues)
		for i := range sys.qnames {
			sys.qnames[i] = fmt.Sprintf("q%d", i)
		}
		sys.coreLanes = make([]*obs.Lane, len(sys.cores))
		for i := range sys.cores {
			sys.coreLanes[i] = ob.Trace.Lane(ob.Pid, i+1)
			ob.Trace.ThreadName(ob.Pid, i+1, fmt.Sprintf("core%d", i))
		}
		sys.flows = ob.Flows
	}
	if ob != nil {
		sys.events = ob.Events
		if ob.Attr {
			ids := make([]int, len(threads))
			for i, f := range threads {
				ids[i] = f.NumInstrIDs()
			}
			sys.attr = attr.NewRun("cycles", ids, numQueues)
			for _, c := range sys.cores {
				c.readyCause = make([]uint8, len(c.ready))
				c.readyQueue = make([]int32, len(c.ready))
				for r := range c.readyQueue {
					c.readyQueue[r] = -1
				}
			}
		}
	}

	var cycle int64
	var err error
	if groups := sys.parallelGroups(ob); groups != nil {
		cycle, err = sys.runParallel(groups, maxCycles)
	} else {
		cycle, err = sys.run(maxCycles)
	}
	if err != nil {
		return nil, err
	}

	res := &Result{Cycles: cycle, PerQueue: sys.qstats, Mem: mem, Attr: sys.attr}
	for _, c := range sys.cores {
		res.PerCore = append(res.PerCore, c.stats)
		if c.outs != nil {
			res.LiveOuts = c.outs
		}
	}
	if ob != nil && ob.Metrics != nil {
		m := ob.Metrics
		m.Gauge("cycles").Set(cycle)
		for i, c := range sys.cores {
			cs := m.Child(fmt.Sprintf("core%d", i))
			cs.Counter("instrs").Add(c.stats.Instrs)
			cs.Counter("stall_cycles").Add(c.stats.IssueStallCycles)
			cs.Counter("produces").Add(c.stats.Produces)
			cs.Counter("consumes").Add(c.stats.Consumes)
			cs.Counter("mispreds").Add(c.stats.Mispreds)
		}
		for q, st := range sys.qstats {
			qs := m.Child(fmt.Sprintf("queue.%d", q))
			qs.Counter("produced").Add(st.Produced)
			qs.Counter("consumed").Add(st.Consumed)
			qs.Gauge("hwm").SetMax(st.HighWater)
		}
	}
	return res, nil
}

// run executes the cycle loop to completion over this system's cores and
// returns the cycle count. Observability hooks (attr, trace lanes, fault
// injector) are guarded behind nil checks so an unobserved run pays no
// per-cycle callback or allocation cost.
func (s *system) run(maxCycles int64) (int64, error) {
	// stallStart[i] is the cycle core i's current issue-stall episode
	// began, or -1 when issuing; consecutive stall cycles coalesce into
	// one trace span per episode.
	stallStart := make([]int64, len(s.cores))
	for i := range stallStart {
		stallStart[i] = -1
	}

	stallLimit := s.cfg.StallLimit
	if stallLimit <= 0 {
		stallLimit = 2_000_000
	}

	// Block memos are exact but skip stepCore's per-cycle cause analysis,
	// so attribution runs take the full call every cycle. With no sinks at
	// all the per-core step drops to the trimmed stepCoreFast.
	memo := s.attr == nil
	fast := memo && s.events == nil && s.saLane == nil && s.coreLanes == nil && !s.flows
	if fast && s.inj == nil {
		// No sinks and no injector: the whole cycle loop reduces to memo
		// requalification plus stepCoreFast, so run it without the
		// per-cycle injector/lane/attribution branches.
		return s.runFast(maxCycles, stallLimit)
	}

	var cycle, lastProgress int64
	for {
		// Termination is checked before the cycle is simulated so that
		// attribution sees exactly Result.Cycles iterations: every core
		// gets exactly one bucket note per counted cycle.
		if s.doneCores == len(s.cores) {
			break
		}
		saPortsUsed := 0
		anyIssued := false
		for ci, c := range s.cores {
			if c.done {
				if s.attr != nil {
					s.attr.Note(ci, attr.Idle, -1, -1)
				}
				continue
			}
			if s.inj != nil && s.inj.Stall(ci, len(s.cores)) {
				// Frozen core: issues nothing this cycle. The freeze window
				// always expires (far below the no-progress watchdog), so a
				// stall can delay but never deadlock the simulation.
				c.stats.IssueStallCycles++
				if s.attr != nil {
					s.attr.Note(ci, attr.Fault, c.blk.Instrs[c.idx].ID, -1)
				}
				if s.coreLanes != nil && stallStart[ci] < 0 {
					stallStart[ci] = cycle
				}
				continue
			}
			if memo {
				// Requalify a memoized block without entering stepCore: the
				// recorded condition is exactly what stepCore would find.
				if cycle < c.wake {
					c.stats.IssueStallCycles++
					if s.coreLanes != nil && stallStart[ci] < 0 {
						stallStart[ci] = cycle
					}
					continue
				}
				if q := c.blockedEmptyQ; q >= 0 {
					if s.queues[q].Len() == 0 {
						c.stats.IssueStallCycles++
						if s.coreLanes != nil && stallStart[ci] < 0 {
							stallStart[ci] = cycle
						}
						continue
					}
					c.blockedEmptyQ = -1
				}
				if q := c.blockedFullQ; q >= 0 {
					if s.queues[q].Len() >= s.qcap {
						c.stats.IssueStallCycles++
						if s.coreLanes != nil && stallStart[ci] < 0 {
							stallStart[ci] = cycle
						}
						continue
					}
					c.blockedFullQ = -1
				}
			}
			var issued int
			if fast {
				issued = s.stepCoreFast(c, cycle, &saPortsUsed)
			} else {
				var tag cycleTag
				issued, tag = s.stepCore(c, cycle, &saPortsUsed)
				if s.attr != nil {
					s.attr.Note(ci, tag.bucket, tag.instr, tag.queue)
				}
			}
			if issued > 0 {
				anyIssued = true
				if stallStart[ci] >= 0 {
					s.coreLanes[ci].SpanAt("stall", "sim", stallStart[ci], cycle-stallStart[ci])
					stallStart[ci] = -1
				}
			} else {
				c.stats.IssueStallCycles++
				if s.coreLanes != nil && stallStart[ci] < 0 {
					stallStart[ci] = cycle
				}
			}
		}
		if s.err != nil {
			return 0, s.err
		}
		if anyIssued {
			lastProgress = cycle
		}
		if cycle-lastProgress > stallLimit {
			return 0, fmt.Errorf("%w for %d cycles at cycle %d", ErrNoProgress, cycle-lastProgress, cycle)
		}
		cycle++
		if cycle > maxCycles {
			return 0, fmt.Errorf("%w (%d cycles)", ErrCycleLimit, maxCycles)
		}
	}

	// Close any stall episode still open at termination (defensive: a
	// core only finishes by issuing Ret, which closes its episode above).
	for i, st := range stallStart {
		if st >= 0 {
			s.coreLanes[i].SpanAt("stall", "sim", st, cycle-st)
		}
	}
	return cycle, nil
}

// runFast is the cycle loop for runs with no observability sinks and no
// fault injector: per-core work is memo requalification plus stepCoreFast,
// and cycles where no core can issue are jumped over in bulk. Timing,
// statistics, termination, and error behavior are identical to run.
func (s *system) runFast(maxCycles, stallLimit int64) (int64, error) {
	n := len(s.cores)
	var cycle, lastProgress int64
	for s.doneCores < n {
		saPortsUsed := 0
		anyIssued := false
		for _, c := range s.cores {
			if c.done {
				continue
			}
			// Requalify a memoized block without entering the step: the
			// recorded condition is exactly what stepCoreFast would find.
			if cycle < c.wake {
				c.stats.IssueStallCycles++
				continue
			}
			if q := c.blockedEmptyQ; q >= 0 {
				if s.queues[q].Len() == 0 {
					c.stats.IssueStallCycles++
					continue
				}
				c.blockedEmptyQ = -1
			}
			if q := c.blockedFullQ; q >= 0 {
				if s.queues[q].Len() >= s.qcap {
					c.stats.IssueStallCycles++
					continue
				}
				c.blockedFullQ = -1
			}
			if s.stepCoreFast(c, cycle, &saPortsUsed) > 0 {
				anyIssued = true
			} else {
				c.stats.IssueStallCycles++
			}
		}
		if s.err != nil {
			return 0, s.err
		}
		if anyIssued {
			lastProgress = cycle
		} else {
			if cycle-lastProgress > stallLimit {
				return 0, fmt.Errorf("%w for %d cycles at cycle %d", ErrNoProgress, cycle-lastProgress, cycle)
			}
			// Nothing issued, so every queue is frozen until some core
			// wakes. If each live core is blocked either until a known wake
			// cycle or on a queue (which cannot change before a wake), the
			// intervening cycles are pure stalls for every live core: skip
			// to the earliest wake and charge the skipped stalls in bulk.
			// The skip is capped so the no-progress watchdog and the cycle
			// budget fire on exactly the cycle they would serially.
			next := int64(1) << 62
			for _, c := range s.cores {
				if c.done {
					continue
				}
				if c.blockedEmptyQ >= 0 || c.blockedFullQ >= 0 {
					continue
				}
				if c.wake > cycle {
					if c.wake < next {
						next = c.wake
					}
				} else {
					// Blocked with no memoized end (SA-port contention or a
					// zero-port config): must re-step next cycle.
					next = cycle + 1
					break
				}
			}
			if lim := lastProgress + stallLimit + 1; next > lim {
				next = lim
			}
			if next > maxCycles+1 {
				next = maxCycles + 1
			}
			if d := next - cycle - 1; d > 0 {
				for _, c := range s.cores {
					if !c.done {
						c.stats.IssueStallCycles += d
					}
				}
				cycle = next - 1
			}
		}
		cycle++
		if cycle > maxCycles {
			return 0, fmt.Errorf("%w (%d cycles)", ErrCycleLimit, maxCycles)
		}
	}
	return cycle, nil
}

// RunSingle times a single-threaded function on one core of the machine —
// the baseline of Figure 8.
func RunSingle(cfg Config, f *ir.Function, args []int64, mem []int64, maxCycles int64) (*Result, error) {
	return Run(cfg, []*ir.Function{f}, args, mem, maxCycles)
}
