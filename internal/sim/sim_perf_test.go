package sim

import (
	"reflect"
	"testing"

	"repro/internal/ir"
)

// mkProdCons builds a producer or consumer loop over queue q with n
// iterations. The consumer burns latency on dependent multiplies so a
// shallow queue backs up, exercising queue-full and queue-empty blocks on
// both the memoized fast path and the attribution path.
func mkProdCons(n int64, q int, produce bool, numQueues int) *ir.Function {
	b := ir.NewBuilder("t")
	loop, exit := b.Block("loop"), b.Block("exit")
	i := b.F.NewReg()
	b.ConstTo(i, 0)
	b.Jump(loop)
	b.SetBlock(loop)
	if produce {
		b.F.Name = "prod"
		p := b.F.NewInstr(ir.Produce, ir.NoReg, i)
		p.Queue = q
		b.Cur().Append(p)
	} else {
		b.F.Name = "cons"
		v := b.F.NewReg()
		cn := b.F.NewInstr(ir.Consume, v)
		cn.Queue = q
		b.Cur().Append(cn)
		v2 := b.Op2(ir.Mul, v, v)
		v3 := b.Op2(ir.Mul, v2, v2)
		_ = b.Op2(ir.Mul, v3, v3)
	}
	one := b.Const(1)
	b.Op2To(i, ir.Add, i, one)
	lim := b.Const(n)
	c := b.CmpLT(i, lim)
	b.Br(c, loop, exit)
	b.SetBlock(exit)
	b.Ret(i)
	b.F.SplitCriticalEdges()
	b.F.NumQueues = numQueues
	return b.F
}

// mkMixed builds a single-thread loop mixing loads, stores, a multiply
// dependence chain, and a data-dependent alternating branch (worst case
// for the 2-bit predictor), touching the memory, latency, and mispredict
// corners of the issue loop.
func mkMixed(n int64) *ir.Function {
	b := ir.NewBuilder("mixed")
	loop, odd, join, exit := b.Block("loop"), b.Block("odd"), b.Block("join"), b.Block("exit")
	i := b.F.NewReg()
	acc := b.F.NewReg()
	b.ConstTo(i, 0)
	b.ConstTo(acc, 1)
	b.Jump(loop)
	b.SetBlock(loop)
	base := b.Const(0)
	v := b.Load(base, 0)
	m := b.Mul(acc, acc)
	m2 := b.Add(m, v)
	b.Store(m2, base, 1)
	one := b.Const(1)
	par := b.And(i, one)
	b.Br(par, odd, join)
	b.SetBlock(odd)
	b.Op2To(acc, ir.Add, acc, one)
	b.Jump(join)
	b.SetBlock(join)
	b.Op2To(i, ir.Add, i, one)
	lim := b.Const(n)
	c := b.CmpLT(i, lim)
	b.Br(c, loop, exit)
	b.SetBlock(exit)
	b.Ret(i, acc)
	b.F.SplitCriticalEdges()
	return b.F
}

// stripAttr compares everything a Result carries except the attribution
// (present only on the reference run by construction).
func resultsEqual(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if got.Cycles != want.Cycles {
		t.Errorf("%s: cycles %d vs %d", name, got.Cycles, want.Cycles)
	}
	if !reflect.DeepEqual(got.PerCore, want.PerCore) {
		t.Errorf("%s: per-core stats diverged:\n%+v\n%+v", name, got.PerCore, want.PerCore)
	}
	if !reflect.DeepEqual(got.PerQueue, want.PerQueue) {
		t.Errorf("%s: per-queue stats diverged:\n%+v\n%+v", name, got.PerQueue, want.PerQueue)
	}
	if !reflect.DeepEqual(got.LiveOuts, want.LiveOuts) {
		t.Errorf("%s: live-outs diverged: %v vs %v", name, got.LiveOuts, want.LiveOuts)
	}
	if !reflect.DeepEqual(got.Mem, want.Mem) {
		t.Errorf("%s: final memory diverged", name)
	}
}

// TestStepCoreFastEquivalence pins the trimmed fast path (stepCoreFast +
// runFast: decoded stream, block memos, cycle jumps) against the general
// path (stepCore under attribution, which disables memoization and steps
// every core every cycle). Every workload/config corner must produce
// bit-identical timing, statistics, live-outs, and memory.
func TestStepCoreFastEquivalence(t *testing.T) {
	deep := DefaultConfig()
	deep.QueueCap = 1
	narrow := DefaultConfig()
	narrow.SAPorts = 1
	cases := []struct {
		name    string
		cfg     Config
		threads []*ir.Function
		args    []int64
		mem     []int64
	}{
		{"fig5", DefaultConfig(), fig5Prog(t).Threads, []int64{9, 1, 1}, make([]int64, 2)},
		{"queue-cap-1", deep, []*ir.Function{mkProdCons(300, 0, true, 1), mkProdCons(300, 0, false, 1)}, nil, nil},
		{"sa-ports-1", narrow, []*ir.Function{mkProdCons(200, 0, true, 1), mkProdCons(200, 0, false, 1)}, nil, nil},
		{"mixed-single", DefaultConfig(), []*ir.Function{mkMixed(500)}, nil, make([]int64, 8)},
		{"coherence-pair", DefaultConfig(), []*ir.Function{mkMixed(400), mkMixed(400)}, nil, make([]int64, 8)},
	}
	for _, tc := range cases {
		mem2 := append([]int64(nil), tc.mem...)
		fast, err := Run(tc.cfg, tc.threads, tc.args, tc.mem, 10_000_000)
		if err != nil {
			t.Fatalf("%s: fast run: %v", tc.name, err)
		}
		ref, err := RunObserved(tc.cfg, tc.threads, tc.args, mem2, 10_000_000, &Observer{Attr: true})
		if err != nil {
			t.Fatalf("%s: reference run: %v", tc.name, err)
		}
		resultsEqual(t, tc.name, fast, ref)
	}
}

// TestParallelComponentsMatchSerial builds two queue-disjoint
// producer/consumer pairs and checks that the component-parallel path
// both triggers and reproduces the serial schedule exactly. The serial reference passes an empty Observer:
// a non-nil observer only disables the parallel split — with no sinks set
// the per-cycle machinery is otherwise identical.
func TestParallelComponentsMatchSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.SAPorts = 64 // enough that per-cycle SA ports can never block: split is exact
	mkThreads := func() []*ir.Function {
		return []*ir.Function{
			mkProdCons(400, 0, true, 2),
			mkProdCons(400, 0, false, 2),
			mkProdCons(250, 1, true, 2),
			mkProdCons(250, 1, false, 2),
		}
	}

	// White-box: the grouping must see two components.
	sys := &system{cfg: cfg, queues: make([]*saQueue, 2)}
	for _, f := range mkThreads() {
		sys.cores = append(sys.cores, &core{fn: f})
	}
	if groups := sys.parallelGroups(nil); len(groups) != 2 {
		t.Fatalf("parallelGroups = %v, want two components", groups)
	}

	ref, err := RunObserved(cfg, mkThreads(), nil, nil, 10_000_000, &Observer{})
	if err != nil {
		t.Fatalf("serial reference: %v", err)
	}
	// The parallel path races real goroutines, so repeat to shake out any
	// schedule dependence (and run under -race in CI).
	for trial := 0; trial < 5; trial++ {
		got, err := Run(cfg, mkThreads(), nil, nil, 10_000_000)
		if err != nil {
			t.Fatalf("parallel run %d: %v", trial, err)
		}
		resultsEqual(t, "parallel", got, ref)
	}
}

// TestRunFastDeterministicRepeat re-runs the same simulation many times
// and demands bit-identical results — the work-metric guarantee the bench
// gate relies on.
func TestRunFastDeterministicRepeat(t *testing.T) {
	prog := fig5Prog(t)
	args := []int64{9, 1, 1}
	first, err := Run(DefaultConfig(), prog.Threads, args, make([]int64, 2), 10_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 0; i < 20; i++ {
		res, err := Run(DefaultConfig(), prog.Threads, args, make([]int64, 2), 10_000_000)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !reflect.DeepEqual(res, first) {
			t.Fatalf("run %d diverged from first run", i)
		}
	}
}

// TestRunNoObserverAllocsConstant proves the unobserved simulator path
// allocates nothing per cycle: setup (system, cores, caches, decode) costs
// a fixed number of allocations, so a run 50× longer must cost exactly
// the same. Any per-cycle allocation — observer callbacks, event slices,
// attribution buckets — would add thousands and fail the equality.
func TestRunNoObserverAllocsConstant(t *testing.T) {
	cfg := DefaultConfig()
	run := func(n int64) {
		threads := []*ir.Function{
			mkProdCons(n, 0, true, 1),
			mkProdCons(n, 0, false, 1),
		}
		if _, err := Run(cfg, threads, nil, nil, 10_000_000); err != nil {
			t.Fatal(err)
		}
	}
	run(2000) // warm any lazily-grown runtime state
	short := testing.AllocsPerRun(10, func() { run(40) })
	long := testing.AllocsPerRun(10, func() { run(2000) })
	if short != long {
		t.Errorf("allocations scale with cycles: %v for 40 iterations vs %v for 2000", short, long)
	}
}

// BenchmarkRunNoObserver measures the raw unobserved cycle loop (the path
// BENCH_pipeline.json's SimKS entry exercises through the full pipeline);
// run with -benchmem to see the fixed setup-only allocation profile.
func BenchmarkRunNoObserver(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		threads := []*ir.Function{
			mkProdCons(10_000, 0, true, 1),
			mkProdCons(10_000, 0, false, 1),
		}
		if _, err := Run(cfg, threads, nil, nil, 10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
