package sim

import (
	"errors"
	"testing"

	"repro/internal/coco"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/pdg"
	"repro/internal/testprog"
)

func TestRunSingleMatchesInterpreter(t *testing.T) {
	p := testprog.Fig4()
	want, err := interp.Run(p.F, nil, nil, 1_000_000)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	got, err := RunSingle(DefaultConfig(), p.F, nil, nil, 10_000_000)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if len(got.LiveOuts) != 1 || got.LiveOuts[0] != want.LiveOuts[0] {
		t.Errorf("live-outs: sim %v, interp %v", got.LiveOuts, want.LiveOuts)
	}
	if got.PerCore[0].Instrs != want.Steps {
		t.Errorf("instr count: sim %d, interp %d", got.PerCore[0].Instrs, want.Steps)
	}
	// A 6-issue core cannot beat instrs/6 cycles and in-order execution
	// cannot beat 1 instruction per dependent chain step.
	if got.Cycles < got.PerCore[0].Instrs/6 {
		t.Errorf("cycles %d implausibly low for %d instrs", got.Cycles, got.PerCore[0].Instrs)
	}
}

func TestMultiThreadedSimMatchesInterpreter(t *testing.T) {
	p := testprog.Fig5()
	g := pdg.Build(p.F, p.Objects)
	pl, err := coco.Plan(p.F, g, p.Assign, 2, p.Profile, coco.DefaultOptions())
	if err != nil {
		t.Fatalf("coco: %v", err)
	}
	prog, err := mtcg.Generate(pl)
	if err != nil {
		t.Fatalf("mtcg: %v", err)
	}
	for _, p2 := range []int64{0, 1} {
		args := []int64{9, p2, 1}
		st, err := interp.Run(p.F, args, make(interp.Memory, 2), 1_000_000)
		if err != nil {
			t.Fatalf("interp: %v", err)
		}
		res, err := Run(DefaultConfig(), prog.Threads, args, make([]int64, 2), 10_000_000)
		if err != nil {
			t.Fatalf("sim MT: %v", err)
		}
		for i := range st.LiveOuts {
			if res.LiveOuts[i] != st.LiveOuts[i] {
				t.Errorf("p2=%d live-out %d: sim %d, interp %d", p2, i, res.LiveOuts[i], st.LiveOuts[i])
			}
		}
		for a := range st.Mem {
			if res.Mem[a] != st.Mem[a] {
				t.Errorf("p2=%d mem[%d]: sim %d, interp %d", p2, a, res.Mem[a], st.Mem[a])
			}
		}
	}
}

// buildLoadLoop loads mem[0] n times.
func buildLoadLoop(n int64) (*ir.Function, []ir.MemObject) {
	b := ir.NewBuilder("loads")
	arr := b.Array("a", 8)
	loop := b.Block("loop")
	exit := b.Block("exit")
	i := b.F.NewReg()
	b.ConstTo(i, 0)
	base := b.AddrOf(arr)
	b.Jump(loop)
	b.SetBlock(loop)
	v := b.Load(base, 0)
	one := b.Const(1)
	b.Op2To(i, ir.Add, i, one)
	lim := b.Const(n)
	c := b.CmpLT(i, lim)
	b.Br(c, loop, exit)
	b.SetBlock(exit)
	b.Ret(v)
	b.F.SplitCriticalEdges()
	return b.F, b.Objects
}

func TestCacheHitsAfterFirstMiss(t *testing.T) {
	f, _ := buildLoadLoop(100)
	res, err := RunSingle(DefaultConfig(), f, nil, make([]int64, 8), 1_000_000)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	st := res.PerCore[0].Mem
	if st.MemAccesses != 1 {
		t.Errorf("memory accesses = %d, want 1 (cold miss only)", st.MemAccesses)
	}
	if st.L1Hits != 99 {
		t.Errorf("L1 hits = %d, want 99", st.L1Hits)
	}
}

func TestColdMissesDominateLargeScan(t *testing.T) {
	// Scanning 4096 words with 8-word L1 lines: 512 cold L1 misses that
	// hit nothing below.
	b := ir.NewBuilder("scan")
	arr := b.Array("big", 4096)
	loop := b.Block("loop")
	exit := b.Block("exit")
	i := b.F.NewReg()
	sum := b.F.NewReg()
	b.ConstTo(i, 0)
	b.ConstTo(sum, 0)
	base := b.AddrOf(arr)
	b.Jump(loop)
	b.SetBlock(loop)
	pa := b.Add(base, i)
	v := b.Load(pa, 0)
	b.Op2To(sum, ir.Add, sum, v)
	one := b.Const(1)
	b.Op2To(i, ir.Add, i, one)
	lim := b.Const(4096)
	c := b.CmpLT(i, lim)
	b.Br(c, loop, exit)
	b.SetBlock(exit)
	b.Ret(sum)
	b.F.SplitCriticalEdges()

	res, err := RunSingle(DefaultConfig(), b.F, nil, make([]int64, 4096), 10_000_000)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	st := res.PerCore[0].Mem
	// 512 L1 misses (8-word lines); every other one hits the 16-word L2
	// line fetched by the previous miss, so 256 go to memory.
	if st.MemAccesses != 256 {
		t.Errorf("memory accesses = %d, want 256 (one per 16-word line)", st.MemAccesses)
	}
	if st.L2Hits != 256 {
		t.Errorf("L2 hits = %d, want 256", st.L2Hits)
	}
	if st.L1Hits != 4096-512 {
		t.Errorf("L1 hits = %d, want %d", st.L1Hits, 4096-512)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	f, _ := buildLoadLoop(1000)
	res, err := RunSingle(DefaultConfig(), f, nil, make([]int64, 8), 10_000_000)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	// A 2-bit counter mispredicts a monotone loop branch only a few
	// times (warm-up and the final exit).
	if res.PerCore[0].Mispreds > 4 {
		t.Errorf("mispredictions = %d, want <= 4 for a simple loop", res.PerCore[0].Mispreds)
	}
}

func TestMemoryFaultSurfaces(t *testing.T) {
	b := ir.NewBuilder("fault")
	addr := b.Const(999)
	v := b.Load(addr, 0)
	b.Ret(v)
	_, err := RunSingle(DefaultConfig(), b.F, nil, make([]int64, 4), 1000)
	var mf *MemFaultError
	if !errors.As(err, &mf) {
		t.Fatalf("err = %v, want MemFaultError", err)
	}
	if mf.Addr != 999 {
		t.Errorf("fault address = %d, want 999", mf.Addr)
	}
}

func TestQueueOverflowBlocksWithoutDeadlock(t *testing.T) {
	// Producer floods a queue far beyond its capacity while the consumer
	// drains slowly; the run must complete with bounded queue occupancy
	// (completion itself proves blocking works).
	n := int64(500)
	mk := func(producer bool) *ir.Function {
		f := ir.NewFunction("side")
		f.NumQueues = 1
		entry := f.NewBlock("entry")
		loop := f.NewBlock("loop")
		exit := f.NewBlock("exit")
		i := f.NewReg()
		one := f.NewReg()
		lim := f.NewReg()
		c := f.NewReg()
		ci := f.NewInstr(ir.Const, i)
		ci.Imm = 0
		c1 := f.NewInstr(ir.Const, one)
		c1.Imm = 1
		cl := f.NewInstr(ir.Const, lim)
		cl.Imm = n
		entry.Append(ci)
		entry.Append(c1)
		entry.Append(cl)
		entry.Append(f.NewInstr(ir.Jump, ir.NoReg))
		entry.SetSuccs(loop)
		var comm *ir.Instr
		if producer {
			comm = f.NewInstr(ir.Produce, ir.NoReg, i)
		} else {
			comm = f.NewInstr(ir.Consume, f.NewReg())
		}
		comm.Queue = 0
		loop.Append(comm)
		if !producer {
			// Slow consumer: extra serial work per iteration.
			prev := f.NewReg()
			pc := f.NewInstr(ir.Const, prev)
			pc.Imm = 3
			loop.Append(pc)
			for k := 0; k < 6; k++ {
				loop.Append(f.NewInstr(ir.Mul, prev, prev, prev))
			}
		}
		loop.Append(f.NewInstr(ir.Add, i, i, one))
		loop.Append(f.NewInstr(ir.CmpLT, c, i, lim))
		loop.Append(f.NewInstr(ir.Br, ir.NoReg, c))
		loop.SetSuccs(loop, exit)
		exit.Append(f.NewInstr(ir.Ret, ir.NoReg))
		return f
	}
	res, err := Run(DefaultConfig(), []*ir.Function{mk(true), mk(false)}, nil, nil, 10_000_000)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if res.Cycles == 0 {
		t.Error("no cycles simulated")
	}
}

func TestTooManyQueuesRejected(t *testing.T) {
	f := ir.NewFunction("q")
	f.NumQueues = 10_000
	e := f.NewBlock("entry")
	e.Append(f.NewInstr(ir.Ret, ir.NoReg))
	if _, err := Run(DefaultConfig(), []*ir.Function{f}, nil, nil, 1000); err == nil {
		t.Error("Run accepted a program needing more queues than the SA has")
	}
}

func TestDefaultConfigMatchesFig6a(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.IssueWidth != 6 || cfg.MemPorts != 4 || cfg.FPPorts != 2 || cfg.BranchPorts != 3 {
		t.Error("functional unit mix does not match Figure 6(a)")
	}
	if cfg.L1Lat != 1 || cfg.L3Lat != 12 || cfg.MemLat != 141 {
		t.Error("latencies do not match Figure 6(a)")
	}
	if cfg.L1Sets*cfg.L1Ways*cfg.L1Line != 2048 { // 16KB / 8B words
		t.Errorf("L1 capacity = %d words, want 2048", cfg.L1Sets*cfg.L1Ways*cfg.L1Line)
	}
	if cfg.L2Sets*cfg.L2Ways*cfg.L2Line != 32768 { // 256KB
		t.Errorf("L2 capacity = %d words, want 32768", cfg.L2Sets*cfg.L2Ways*cfg.L2Line)
	}
	if cfg.L3Sets*cfg.L3Ways*cfg.L3Line != 196608 { // 1.5MB in 8-byte words
		t.Errorf("L3 capacity = %d words, want 196608", cfg.L3Sets*cfg.L3Ways*cfg.L3Line)
	}
	if cfg.NumQueues != 256 || cfg.SAPorts != 4 || cfg.SALatency != 1 {
		t.Error("synchronization array does not match Section 4")
	}
}
