package sim

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/ir"
)

// faultPair builds a one-queue producer/consumer pair exchanging n values.
func faultPair(n int64) []*ir.Function {
	mk := func(producer bool) *ir.Function {
		f := ir.NewFunction("t")
		f.NumQueues = 1
		entry := f.NewBlock("entry")
		loop := f.NewBlock("loop")
		exit := f.NewBlock("exit")
		i := f.NewReg()
		one := f.NewReg()
		lim := f.NewReg()
		c := f.NewReg()
		ci := f.NewInstr(ir.Const, i)
		c1 := f.NewInstr(ir.Const, one)
		c1.Imm = 1
		cl := f.NewInstr(ir.Const, lim)
		cl.Imm = n
		entry.Append(ci)
		entry.Append(c1)
		entry.Append(cl)
		entry.Append(f.NewInstr(ir.Jump, ir.NoReg))
		entry.SetSuccs(loop)
		var comm *ir.Instr
		if producer {
			comm = f.NewInstr(ir.Produce, ir.NoReg, i)
		} else {
			comm = f.NewInstr(ir.Consume, f.NewReg())
		}
		comm.Queue = 0
		loop.Append(comm)
		loop.Append(f.NewInstr(ir.Add, i, i, one))
		loop.Append(f.NewInstr(ir.CmpLT, c, i, lim))
		loop.Append(f.NewInstr(ir.Br, ir.NoReg, c))
		loop.SetSuccs(loop, exit)
		exit.Append(f.NewInstr(ir.Ret, ir.NoReg))
		return f
	}
	return []*ir.Function{mk(true), mk(false)}
}

// TestSimBadProgramRejected: comm instructions referencing queues outside
// the program's range are caught up front as ErrBadProgram.
func TestSimBadProgramRejected(t *testing.T) {
	f := ir.NewFunction("bad")
	f.NumQueues = 2
	e := f.NewBlock("entry")
	cons := f.NewInstr(ir.Consume, f.NewReg())
	cons.Queue = 7
	e.Append(cons)
	e.Append(f.NewInstr(ir.Ret, ir.NoReg))
	if _, err := Run(DefaultConfig(), []*ir.Function{f}, nil, nil, 1000); !errors.Is(err, ErrBadProgram) {
		t.Errorf("err = %v, want ErrBadProgram", err)
	}
}

// TestSimInjectDropStalls: dropped produces starve the consumer core; with
// a low stall limit the watchdog converts the silent hang into a named
// no-progress error instead of burning the full cycle budget.
func TestSimInjectDropStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StallLimit = 10_000
	inj := fault.Spec{Class: fault.DropProduce, Seed: 1}.New()
	_, err := RunInjected(cfg, faultPair(2000), nil, nil, 50_000_000, nil, inj)
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	if inj.Count() == 0 {
		t.Error("no faults injected before the stall")
	}
}

// TestSimInjectStallTolerated: a bounded thread freeze costs cycles but
// the run completes; the frozen turns land in IssueStallCycles.
func TestSimInjectStallTolerated(t *testing.T) {
	clean, err := Run(DefaultConfig(), faultPair(500), nil, nil, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.Spec{Class: fault.StallThread, Seed: 3}.New()
	res, err := RunInjected(DefaultConfig(), faultPair(500), nil, nil, 10_000_000, nil, inj)
	if err != nil {
		t.Fatalf("stall must be tolerated, got %v", err)
	}
	if inj.Count() == 0 {
		t.Fatal("stall never fired")
	}
	var cleanIssued, faultIssued int64
	for i := range clean.PerCore {
		cleanIssued += clean.PerCore[i].Instrs
		faultIssued += res.PerCore[i].Instrs
	}
	if faultIssued != cleanIssued {
		t.Errorf("stalled run issued %d instructions, clean run %d", faultIssued, cleanIssued)
	}
}

// TestSimInjectShrinkTolerated: halved queue capacity adds back-pressure
// only; the run still completes with every value delivered.
func TestSimInjectShrinkTolerated(t *testing.T) {
	inj := fault.Spec{Class: fault.ShrinkQueue, Seed: 1}.New()
	res, err := RunInjected(DefaultConfig(), faultPair(500), nil, nil, 10_000_000, nil, inj)
	if err != nil {
		t.Fatalf("shrunk queue must be tolerated, got %v", err)
	}
	if inj.Count() != 1 {
		t.Errorf("shrink injected %d events, want 1", inj.Count())
	}
	if res.PerQueue[0].Consumed != 500 {
		t.Errorf("consumed %d values, want 500", res.PerQueue[0].Consumed)
	}
	if res.PerQueue[0].HighWater > 16 {
		t.Errorf("high-water %d exceeds the shrunken capacity 16", res.PerQueue[0].HighWater)
	}
}

// TestSimInjectDeterministic: the same spec yields the same cycle count
// and the same schedule, run after run.
func TestSimInjectDeterministic(t *testing.T) {
	run := func() (*Result, string) {
		inj := fault.Spec{Class: fault.DupProduce, Seed: 11}.New()
		cfg := DefaultConfig()
		cfg.StallLimit = 10_000
		res, _ := RunInjected(cfg, faultPair(300), nil, nil, 10_000_000, nil, inj)
		return res, inj.Schedule()
	}
	r1, s1 := run()
	r2, s2 := run()
	if s1 != s2 {
		t.Errorf("fault schedules differ:\n%s\nvs\n%s", s1, s2)
	}
	if (r1 == nil) != (r2 == nil) {
		t.Fatal("one run failed, the other succeeded")
	}
	if r1 != nil && r1.Cycles != r2.Cycles {
		t.Errorf("cycle counts differ: %d vs %d", r1.Cycles, r2.Cycles)
	}
}
