package partition

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/pdg"
	"repro/internal/testprog"
)

// profileOf runs the fixture to collect a real edge profile.
func profileOf(t *testing.T, f *ir.Function, args []int64, mem int64) *ir.Profile {
	t.Helper()
	res, err := interp.Run(f, args, make(interp.Memory, mem), 1_000_000)
	if err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	return res.Profile
}

func TestDSWPFormsAPipeline(t *testing.T) {
	p := testprog.Fig4()
	g := pdg.Build(p.F, p.Objects)
	prof := profileOf(t, p.F, nil, 0)

	assign, err := DSWP{}.Partition(p.F, g, prof, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	// Pipeline property: every dependence flows forward.
	for _, a := range g.Arcs {
		if a.From.Op == ir.Jump || a.To.Op == ir.Jump {
			continue
		}
		if assign[a.From] > assign[a.To] {
			t.Errorf("backward dependence %v: stage %d -> %d", a, assign[a.From], assign[a.To])
		}
	}
	// SCCs must not be split.
	for _, c := range g.SCCs() {
		first := assign[c.Instrs[0]]
		for _, in := range c.Instrs[1:] {
			if assign[in] != first {
				t.Errorf("SCC split across stages: %v in %d, %v in %d",
					c.Instrs[0], first, in, assign[in])
			}
		}
	}
	// Both stages should be used on this two-loop workload.
	if got := Threads(assign); len(got) != 2 {
		t.Errorf("threads used = %v, want both", got)
	}
}

func TestBalanceContiguous(t *testing.T) {
	tests := []struct {
		w      []int64
		k      int
		bounds []int
	}{
		// 10|10 -> cut at 1.
		{[]int64{10, 10}, 2, []int{1}},
		// 1,1,1,10 -> bottleneck 10: first three together.
		{[]int64{1, 1, 1, 10}, 2, []int{3}},
		// 10,1,1,1 -> 10 | 1,1,1.
		{[]int64{10, 1, 1, 1}, 2, []int{1}},
		// Everything in one stage if k exceeds items.
		{[]int64{5}, 2, []int{1}},
	}
	for _, tt := range tests {
		got := balanceContiguous(tt.w, tt.k, nil)
		if len(got) != len(tt.bounds) {
			t.Errorf("balance(%v, %d) = %v, want %v", tt.w, tt.k, got, tt.bounds)
			continue
		}
		for i := range got {
			if got[i] != tt.bounds[i] {
				t.Errorf("balance(%v, %d) = %v, want %v", tt.w, tt.k, got, tt.bounds)
				break
			}
		}
	}
}

func TestGREMIOProducesValidPartition(t *testing.T) {
	p := testprog.Fig5()
	g := pdg.Build(p.F, p.Objects)
	prof := profileOf(t, p.F, []int64{7, 1, 1}, 2)

	assign, err := GREMIO{}.Partition(p.F, g, prof, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	p.F.Instrs(func(in *ir.Instr) {
		if in.Op == ir.Jump {
			return
		}
		if tid, ok := assign[in]; !ok || tid < 0 || tid > 1 {
			t.Errorf("instruction %v assigned %d", in, tid)
		}
	})
}

// TestGREMIOChildLoopStraddlingRegionBlock is the shrunk form of a fuzzer
// finding (oracle seed 557): the inner loop's blocks straddle an
// outer-loop-only block in program order, so contracting the inner loop to
// one scheduling node turns instruction-level forward dependences into a
// node-level cycle. GREMIO's list scheduler used to never drain that cycle
// and left the straddled block's instructions unassigned.
func TestGREMIOChildLoopStraddlingRegionBlock(t *testing.T) {
	f, err := ir.Parse(`
func rand(r1, r2)
entry:
	jump body.b3
body.b3:  ; preds: entry exit.crit0
	jump body.b18
exit.b4:  ; preds: exit.b19
	ret
body.b18:  ; preds: body.b3 exit.crit0.b33
	store [r71+0] = r2
	jump exit.b24
exit.b19:  ; preds: exit.b24
	store [r106+0] = r13
	br r109 exit.crit0, exit.b4
exit.b24:  ; preds: body.b18
	r98 = add r97, r96
	store [r98+0] = r13
	r99 = const 0
	r58 = add r58, r99
	r101 = cmplt r58, r100
	br r101 exit.crit0.b33, exit.b19
exit.crit0:  ; preds: exit.b19
	jump body.b3
exit.crit0.b33:  ; preds: exit.b24
	jump body.b18
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	objects := []ir.MemObject{
		{Name: "arr", Base: 0, Size: 16},
		{Name: "arr", Base: 16, Size: 16},
	}
	g := pdg.Build(f, objects)
	prof := profileOf(t, f, []int64{0, 0}, 32)
	assign, err := GREMIO{}.Partition(f, g, prof, 2)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	f.Instrs(func(in *ir.Instr) {
		if !schedulable(in) {
			return
		}
		if _, ok := assign[in]; !ok {
			t.Errorf("instruction %v unassigned", in)
		}
	})
}

// endToEnd partitions, generates naive-MTCG code and checks equivalence
// against the single-threaded run.
func endToEnd(t *testing.T, part Partitioner, p *testprog.Prog, args []int64, memSize int64) {
	t.Helper()
	g := pdg.Build(p.F, p.Objects)
	prof := profileOf(t, p.F, args, memSize)
	assign, err := part.Partition(p.F, g, prof, 2)
	if err != nil {
		t.Fatalf("%s: %v", part.Name(), err)
	}
	prog, err := mtcg.Generate(mtcg.NaivePlan(p.F, g, assign, 2))
	if err != nil {
		t.Fatalf("%s Generate: %v", part.Name(), err)
	}
	for _, ft := range prog.Threads {
		if err := ft.Verify(); err != nil {
			t.Fatalf("%s thread invalid: %v\n%s", part.Name(), err, ft)
		}
	}
	st, err := interp.Run(p.F, args, make(interp.Memory, memSize), 1_000_000)
	if err != nil {
		t.Fatalf("ST: %v", err)
	}
	mt, err := interp.RunMT(interp.MTConfig{
		Threads: prog.Threads, NumQueues: prog.NumQueues,
		Assign: assign, Args: args, Mem: make(interp.Memory, memSize),
		MaxSteps: 1_000_000,
	})
	if err != nil {
		t.Fatalf("%s MT: %v", part.Name(), err)
	}
	for i := range st.LiveOuts {
		if st.LiveOuts[i] != mt.LiveOuts[i] {
			t.Errorf("%s: live-out %d: ST %d MT %d", part.Name(), i, st.LiveOuts[i], mt.LiveOuts[i])
		}
	}
	for a := range st.Mem {
		if st.Mem[a] != mt.Mem[a] {
			t.Errorf("%s: mem[%d]: ST %d MT %d", part.Name(), a, st.Mem[a], mt.Mem[a])
		}
	}
}

func TestPartitionersEndToEnd(t *testing.T) {
	parts := []Partitioner{DSWP{}, GREMIO{}}
	for _, part := range parts {
		t.Run(part.Name()+"/fig3", func(t *testing.T) {
			endToEnd(t, part, testprog.Fig3(), []int64{5, 1, 0}, 0)
		})
		t.Run(part.Name()+"/fig4", func(t *testing.T) {
			endToEnd(t, part, testprog.Fig4(), nil, 0)
		})
		t.Run(part.Name()+"/fig5", func(t *testing.T) {
			endToEnd(t, part, testprog.Fig5(), []int64{7, 1, 1}, 2)
		})
	}
}

func TestFixedPartitionerValidates(t *testing.T) {
	p := testprog.Fig4()
	g := pdg.Build(p.F, p.Objects)
	prof := profileOf(t, p.F, nil, 0)

	got, err := Fixed{Assignment: p.Assign, Label: "figure"}.Partition(p.F, g, prof, 2)
	if err != nil {
		t.Fatalf("Fixed: %v", err)
	}
	if len(got) != len(p.Assign) {
		t.Error("Fixed changed the assignment")
	}

	// Out-of-range assignment rejected.
	bad := map[*ir.Instr]int{}
	for in, tid := range p.Assign {
		bad[in] = tid + 5
	}
	if _, err := (Fixed{Assignment: bad}).Partition(p.F, g, prof, 2); err == nil {
		t.Error("Fixed accepted out-of-range threads")
	}
	// Missing assignment rejected.
	if _, err := (Fixed{Assignment: map[*ir.Instr]int{}}).Partition(p.F, g, prof, 2); err == nil {
		t.Error("Fixed accepted empty assignment")
	}
}
