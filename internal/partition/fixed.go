package partition

import (
	"repro/internal/ir"
	"repro/internal/pdg"
)

// Fixed is a partitioner that returns a precomputed assignment. It exists
// so tests and examples can drive MTCG/COCO with hand-crafted partitions
// (such as the paper's figures) through the same pipeline as DSWP and
// GREMIO.
type Fixed struct {
	Assignment map[*ir.Instr]int
	Label      string
}

// Name implements Partitioner.
func (p Fixed) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "fixed"
}

// Partition implements Partitioner.
func (p Fixed) Partition(f *ir.Function, g *pdg.Graph, prof *ir.Profile, numThreads int) (map[*ir.Instr]int, error) {
	if err := validate(f, p.Assignment, numThreads); err != nil {
		return nil, err
	}
	return p.Assignment, nil
}
