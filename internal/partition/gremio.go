package partition

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/pdg"
)

// GREMIO implements the global multi-threaded instruction scheduler of the
// MICRO 2007 paper [15]: a hierarchical scheduler over the loop-nest tree
// that assigns instructions to threads "based on their control relations
// and an estimate of when instructions will be ready to execute", allowing
// cyclic inter-thread dependences (unlike DSWP's pipeline).
//
// Scheduling proceeds bottom-up over the loop forest. Each loop's direct
// instructions are list-scheduled across threads by earliest estimated
// completion, with already-scheduled child loops appearing as atomic units
// that occupy all threads with their per-thread costs (the scheduler may
// swap a child's thread permutation to reduce communication). A
// cross-thread dependence costs an estimated communication latency once per
// execution of its producer, so partitions cross threads at low-frequency
// points — loop live-outs and cold slices — rather than inside hot chains.
type GREMIO struct {
	// CommLatency is the estimated per-value cost in cycles of a
	// cross-thread dependence. The zero value selects a default
	// calibrated to the synchronization array.
	CommLatency int64
}

// Name implements Partitioner.
func (GREMIO) Name() string { return "GREMIO" }

// gremioState carries one partitioning run.
type gremioState struct {
	f        *ir.Function
	g        *pdg.Graph
	prof     *ir.Profile
	n        int // threads
	commLat  int64
	lf       *analysis.LoopForest
	assign   map[*ir.Instr]int
	weightOf map[*ir.Instr]int64
	execsOf  map[*ir.Instr]int64
}

// Partition implements Partitioner.
func (g GREMIO) Partition(f *ir.Function, dg *pdg.Graph, prof *ir.Profile, numThreads int) (map[*ir.Instr]int, error) {
	commLat := g.CommLatency
	if commLat == 0 {
		commLat = 30
	}
	st := &gremioState{
		f: f, g: dg, prof: prof, n: numThreads, commLat: commLat,
		lf:       analysis.FindLoops(f, nil),
		assign:   map[*ir.Instr]int{},
		weightOf: map[*ir.Instr]int64{},
		execsOf:  map[*ir.Instr]int64{},
	}
	f.Instrs(func(in *ir.Instr) {
		if schedulable(in) {
			st.weightOf[in] = weight(in, prof)
			st.execsOf[in] = prof.BlockWeight(in.Block())
		}
	})

	// Bottom-up over the loop forest, then the root region.
	var scheduleLoop func(l *analysis.Loop) []int64
	costs := map[*analysis.Loop][]int64{}
	var order func(ls []*analysis.Loop)
	order = func(ls []*analysis.Loop) {
		for _, l := range ls {
			order(l.Childs)
			costs[l] = scheduleLoop(l)
		}
	}
	scheduleLoop = func(l *analysis.Loop) []int64 {
		return st.scheduleRegion(l, costs)
	}
	order(st.lf.TopLevel())
	st.scheduleRegion(nil, costs)
	st.refine()

	if err := validate(f, st.assign, numThreads); err != nil {
		return nil, err
	}
	return st.assign, nil
}

// refine is a Kernighan–Lin-style cleanup pass over the list-scheduled
// assignment: each instruction moves to the thread that minimizes its total
// communication cost plus the resulting load imbalance. List scheduling
// places zero-predecessor instructions (constants, loads of loop-invariant
// addresses) purely by load balance, scattering them away from their
// consumers; a few refinement sweeps pull them back.
func (st *gremioState) refine() {
	load := make([]int64, st.n)
	for in, t := range st.assign {
		load[t] += st.weightOf[in]
	}
	maxLoad := func() int64 {
		m := load[0]
		for _, l := range load[1:] {
			if l > m {
				m = l
			}
		}
		return m
	}
	// Communication cost of placing in on thread t, given the current
	// assignment of everything else. A crossing dependence costs a few
	// cycles of queue occupancy once per *dependence* — min(producer,
	// consumer) executions — since optimized communication placement
	// (COCO) communicates a value only as often as it is actually needed.
	const occupancy = 4
	commCost := func(in *ir.Instr, t int) int64 {
		var c int64
		seenSrc := map[*ir.Instr]bool{}
		for _, a := range st.g.InArcs(in) {
			tf, ok := st.assign[a.From]
			if !ok || tf == t || seenSrc[a.From] {
				continue
			}
			seenSrc[a.From] = true
			c += occupancy * min64(st.execsOf[a.From], st.execsOf[in])
		}
		seenDst := map[int]bool{}
		for _, a := range st.g.OutArcs(in) {
			tt, ok := st.assign[a.To]
			if !ok || tt == t || seenDst[tt] {
				continue
			}
			seenDst[tt] = true
			c += occupancy * min64(st.execsOf[in], st.execsOf[a.To])
		}
		return c
	}

	var instrs []*ir.Instr
	st.f.Instrs(func(in *ir.Instr) {
		if schedulable(in) {
			instrs = append(instrs, in)
		}
	})
	for sweep := 0; sweep < 4; sweep++ {
		moved := false
		for _, in := range instrs {
			cur := st.assign[in]
			w := st.weightOf[in]
			bestT, bestScore := cur, commCost(in, cur)+maxLoad()
			for t := 0; t < st.n; t++ {
				if t == cur {
					continue
				}
				load[cur] -= w
				load[t] += w
				score := commCost(in, t) + maxLoad()
				load[cur] += w
				load[t] -= w
				if score < bestScore {
					bestT, bestScore = t, score
				}
			}
			if bestT != cur {
				load[cur] -= w
				load[bestT] += w
				st.assign[in] = bestT
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

func schedulable(in *ir.Instr) bool { return in.Op != ir.Jump && in.Op != ir.Nop }

// node is one schedulable unit of a region: a direct instruction or an
// already-scheduled child loop.
type node struct {
	in    *ir.Instr      // non-nil for instruction nodes
	child *analysis.Loop // non-nil for child-loop units
}

// scheduleRegion schedules one region — loop l's direct blocks plus its
// immediate child loops, or (l == nil) the blocks outside all loops plus
// the top-level loops. It fills st.assign for the region's direct
// instructions, may permute child assignments, and returns the region's
// per-thread cost vector.
func (st *gremioState) scheduleRegion(l *analysis.Loop, costs map[*analysis.Loop][]int64) []int64 {
	// Collect nodes.
	var nodes []node
	nodeOf := map[*ir.Instr]int{} // instruction -> node index (incl. inside children)
	var children []*analysis.Loop
	if l == nil {
		children = st.lf.TopLevel()
	} else {
		children = l.Childs
	}
	childIdx := map[*analysis.Loop]int{}
	for _, c := range children {
		childIdx[c] = len(nodes)
		nodes = append(nodes, node{child: c})
	}
	inRegion := func(b *ir.Block) bool { return st.lf.InnermostLoop(b) == l }
	for _, b := range st.f.Blocks {
		if l != nil && !l.Contains(b) {
			continue
		}
		if inRegion(b) {
			for _, in := range b.Instrs {
				if schedulable(in) {
					nodeOf[in] = len(nodes)
					nodes = append(nodes, node{in: in})
				}
			}
			continue
		}
		// Block belongs to some child loop: map its instructions to the
		// immediate child containing it.
		if l != nil || st.lf.InnermostLoop(b) != nil {
			c := st.lf.InnermostLoop(b)
			for c != nil && c.Parent != l {
				c = c.Parent
			}
			if c != nil {
				for _, in := range b.Instrs {
					if schedulable(in) {
						nodeOf[in] = childIdx[c]
					}
				}
			}
		}
	}
	nn := len(nodes)
	if nn == 0 {
		return make([]int64, st.n)
	}

	// Forward dependence DAG between nodes, with per-arc source
	// instructions kept for communication costing. Forwardness must be
	// decided at node granularity, not instruction granularity: a child
	// loop contracts to one node but its blocks can straddle a region
	// block in program order (loop body ... region block ... loop latch),
	// so instruction-level "forward" arcs can run both into and out of the
	// contracted node, forming a cycle the list scheduler never drains.
	// Each node's position is the minimum program position over its
	// instructions — a strict total order, so keeping only arcs that
	// increase it yields a DAG.
	preds := make([][]*pdg.Arc, nn)
	succs := make([][]int, nn)
	addSucc := func(a, b int) {
		for _, s := range succs[a] {
			if s == b {
				return
			}
		}
		succs[a] = append(succs[a], b)
	}
	progPos := func(in *ir.Instr) int64 {
		return int64(in.Block().ID)<<20 | int64(in.Index())
	}
	nodePos := make([]int64, nn)
	for i := range nodePos {
		nodePos[i] = int64(1) << 62
	}
	for in, i := range nodeOf {
		if p := progPos(in); p < nodePos[i] {
			nodePos[i] = p
		}
	}
	for _, a := range st.g.Arcs {
		fi, okF := nodeOf[a.From]
		ti, okT := nodeOf[a.To]
		if !okF || !okT || fi == ti {
			continue
		}
		if nodePos[fi] < nodePos[ti] {
			preds[ti] = append(preds[ti], a)
			addSucc(fi, ti)
		}
	}
	indeg := make([]int, nn)
	for ti := range preds {
		seen := map[int]bool{}
		for _, a := range preds[ti] {
			fi := nodeOf[a.From]
			if !seen[fi] {
				seen[fi] = true
				indeg[ti]++
			}
		}
	}

	// Node weights and critical-path priorities.
	nodeWeight := func(i int) int64 {
		if nodes[i].in != nil {
			return st.weightOf[nodes[i].in]
		}
		var w int64
		for _, c := range costs[nodes[i].child] {
			w += c
		}
		return w
	}
	prio := make([]int64, nn)
	// Topological order via Kahn for priority computation.
	topo := make([]int, 0, nn)
	tmpDeg := append([]int(nil), indeg...)
	queue := []int{}
	for i := 0; i < nn; i++ {
		if tmpDeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		topo = append(topo, u)
		seen := map[int]bool{}
		for _, s := range succs[u] {
			if !seen[s] {
				seen[s] = true
				tmpDeg[s]--
				if tmpDeg[s] == 0 {
					queue = append(queue, s)
				}
			}
		}
	}
	for i := len(topo) - 1; i >= 0; i-- {
		u := topo[i]
		var best int64
		for _, s := range succs[u] {
			if prio[s] > best {
				best = prio[s]
			}
		}
		prio[u] = best + nodeWeight(u)
	}

	// List scheduling.
	avail := make([]int64, st.n)
	finish := make([]int64, nn)
	scheduledDeg := append([]int(nil), indeg...)
	ready := []int{}
	for i := 0; i < nn; i++ {
		if scheduledDeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	blockHome := map[int]int{}
	pop := func() int {
		bi := 0
		for i := 1; i < len(ready); i++ {
			if prio[ready[i]] > prio[ready[bi]] ||
				(prio[ready[i]] == prio[ready[bi]] && ready[i] < ready[bi]) {
				bi = i
			}
		}
		u := ready[bi]
		ready = append(ready[:bi], ready[bi+1:]...)
		return u
	}

	// crossCost sums communication penalties for arcs into node u if its
	// instructions run under the given thread lookup. Crossings cost the
	// communication latency once per dependence (min of producer and
	// consumer frequency), modelling optimized placement.
	crossCost := func(u int, threadOfTo func(*ir.Instr) int) int64 {
		var c int64
		type k struct {
			src *ir.Instr
			dst int
		}
		seen := map[k]bool{}
		for _, a := range preds[u] {
			tf, ok := st.assign[a.From]
			if !ok {
				continue
			}
			tt := threadOfTo(a.To)
			if tf == tt {
				continue
			}
			kk := k{a.From, tt}
			if seen[kk] {
				continue
			}
			seen[kk] = true
			c += st.commLat * min64(st.execsOf[a.From], st.execsOf[a.To])
		}
		return c
	}

	for len(ready) > 0 {
		u := pop()
		var est int64
		for _, a := range preds[u] {
			fi := nodeOf[a.From]
			if finish[fi] > est {
				est = finish[fi]
			}
		}

		if nd := nodes[u]; nd.in != nil {
			in := nd.in
			bestT, bestScore := 0, int64(-1)
			for t := 0; t < st.n; t++ {
				start := avail[t]
				if est > start {
					start = est
				}
				score := start + st.weightOf[in] +
					crossCost(u, func(*ir.Instr) int { return t })
				if home, ok := blockHome[in.Block().ID]; ok && home == t {
					score -= st.commLat * st.execsOf[in] / 2
				}
				if bestScore < 0 || score < bestScore {
					bestT, bestScore = t, score
				}
			}
			st.assign[in] = bestT
			if _, ok := blockHome[in.Block().ID]; !ok {
				blockHome[in.Block().ID] = bestT
			}
			start := avail[bestT]
			if est > start {
				start = est
			}
			finish[u] = start + st.weightOf[in]
			avail[bestT] = finish[u]
		} else {
			// Child loop: choose a thread permutation (identity or, for
			// two threads, the swap) minimizing completion plus
			// communication into the child.
			child := nd.child
			cv := costs[child]
			bestPerm, bestScore := 0, int64(-1)
			var bestFinish int64
			for perm := 0; perm < st.n && perm < 2; perm++ {
				mapT := func(t int) int {
					if perm == 0 || st.n < 2 {
						return t
					}
					// Swap threads 0 and 1.
					switch t {
					case 0:
						return 1
					case 1:
						return 0
					}
					return t
				}
				var completion int64
				for t := 0; t < st.n; t++ {
					end := avail[mapT(t)] + cv[t]
					if est > avail[mapT(t)] {
						end = est + cv[t]
					}
					if end > completion {
						completion = end
					}
				}
				score := completion + crossCost(u, func(to *ir.Instr) int {
					return mapT(st.assign[to])
				})
				if bestScore < 0 || score < bestScore {
					bestPerm, bestScore, bestFinish = perm, score, completion
				}
			}
			if bestPerm == 1 {
				// Apply the swap to the child's instructions.
				for in, t := range st.assign {
					if nodeOf[in] == u {
						switch t {
						case 0:
							st.assign[in] = 1
						case 1:
							st.assign[in] = 0
						}
					}
				}
				cv = append([]int64(nil), cv...)
				cv[0], cv[1] = cv[1], cv[0]
			}
			for t := 0; t < st.n; t++ {
				end := avail[t] + cv[t]
				if est > avail[t] {
					end = est + cv[t]
				}
				if end > avail[t] {
					avail[t] = end
				}
			}
			finish[u] = bestFinish
		}

		seen := map[int]bool{}
		for _, s := range succs[u] {
			if seen[s] {
				continue
			}
			seen[s] = true
			scheduledDeg[s]--
			if scheduledDeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}

	// Per-thread cost vector of this region.
	out := make([]int64, st.n)
	addInstr := func(in *ir.Instr) {
		if t, ok := st.assign[in]; ok {
			out[t] += st.weightOf[in]
		}
	}
	for _, b := range st.f.Blocks {
		if l == nil {
			if st.lf.InnermostLoop(b) == nil {
				for _, in := range b.Instrs {
					if schedulable(in) {
						addInstr(in)
					}
				}
			}
		} else if l.Contains(b) {
			for _, in := range b.Instrs {
				if schedulable(in) {
					addInstr(in)
				}
			}
		}
	}
	if l == nil {
		for _, c := range children {
			for t, w := range costs[c] {
				out[t] += w
			}
		}
	}
	return out
}

// Threads returns the sorted list of thread indices actually used by an
// assignment (a partitioner may leave threads empty on small regions).
func Threads(assign map[*ir.Instr]int) []int {
	set := map[int]bool{}
	for _, t := range assign {
		set[t] = true
	}
	var out []int
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}
