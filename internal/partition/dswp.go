package partition

import (
	"repro/internal/ir"
	"repro/internal/pdg"
)

// DSWP implements Decoupled Software Pipelining [16]: the PDG is condensed
// into strongly connected components (dependence cycles can never be split
// across a pipeline), the SCC DAG is cut into numThreads contiguous stages
// of a topological order, and stage weights are balanced so the slowest
// pipeline stage — which bounds throughput — is as light as possible.
// Dependences only flow forward through the pipeline.
type DSWP struct{}

// Name implements Partitioner.
func (DSWP) Name() string { return "DSWP" }

// QueueCap implements QueueCapper: the paper evaluates DSWP with 32-entry
// queues, which let pipeline stages decouple and run ahead.
func (DSWP) QueueCap() int { return 32 }

// Partition implements Partitioner.
func (DSWP) Partition(f *ir.Function, g *pdg.Graph, prof *ir.Profile, numThreads int) (map[*ir.Instr]int, error) {
	sccs := g.SCCs()
	weights := make([]int64, len(sccs))
	sccOf := map[int]int{}
	for i, c := range sccs {
		for _, in := range c.Instrs {
			weights[i] += weight(in, prof)
			sccOf[in.ID] = i
		}
	}

	// Dynamic communication cost of separating SCC a from SCC b: one
	// value per dependence — min(producer, consumer frequency), the rate
	// optimized placement (COCO) achieves — deduplicated per
	// (instruction, target SCC) since one queue serves all uses there.
	type crossKey struct {
		from  int
		toSCC int
	}
	crossing := map[crossKey]int64{}
	for _, a := range g.Arcs {
		fs, ts := sccOf[a.From.ID], sccOf[a.To.ID]
		if fs == ts {
			continue
		}
		k := crossKey{a.From.ID, ts}
		need := min64(prof.BlockWeight(a.From.Block()), prof.BlockWeight(a.To.Block()))
		if prev, seen := crossing[k]; !seen || need > prev {
			crossing[k] = need
		}
	}
	// commAcross[i] is the communication cost of cutting between SCCs
	// i-1 and i (arcs spanning the boundary), used to break ties among
	// equally balanced pipelines.
	commAcross := make([]int64, len(sccs)+1)
	for k, w := range crossing {
		fs := sccOf[k.from]
		lo, hi := fs, k.toSCC
		if lo > hi {
			lo, hi = hi, lo
		}
		for b := lo + 1; b <= hi; b++ {
			commAcross[b] += w
		}
	}

	bounds := balanceContiguous(weights, numThreads, commAcross)

	assign := map[*ir.Instr]int{}
	stage := 0
	for i, c := range sccs {
		for stage < numThreads-1 && i >= bounds[stage] {
			stage++
		}
		for _, in := range c.Instrs {
			assign[in] = stage
		}
	}
	if err := validate(f, assign, numThreads); err != nil {
		return nil, err
	}
	return assign, nil
}

// balanceContiguous cuts the weight sequence into k contiguous segments
// minimizing the maximum segment weight (the classic linear-partition
// problem, solved by binary search over the bottleneck), breaking ties
// among optimally balanced cuts by the communication cost of the chosen
// boundaries (commAcross[i] is the cost of cutting between items i-1 and
// i; pass nil to ignore). It returns the exclusive end index of each of
// the first k-1 segments.
func balanceContiguous(w []int64, k int, commAcross []int64) []int {
	n := len(w)
	var total, maxw int64
	for _, x := range w {
		total += x
		if x > maxw {
			maxw = x
		}
	}
	feasible := func(cap int64) bool {
		segments := 1
		var acc int64
		for _, x := range w {
			if acc+x > cap {
				segments++
				acc = 0
			}
			acc += x
		}
		return segments <= k
	}
	lo, hi := maxw, total
	for lo < hi {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}

	if k == 2 {
		// Exhaustive boundary choice: pick the cheapest-communication
		// cut among those achieving the optimal bottleneck.
		best, bestComm := -1, int64(1<<62)
		var prefix int64
		for i := 0; i <= n; i++ {
			if i > 0 {
				prefix += w[i-1]
			}
			if prefix > lo || total-prefix > lo {
				continue
			}
			c := int64(0)
			if commAcross != nil && i < len(commAcross) {
				c = commAcross[i]
			}
			// Prefer boundaries that leave both stages nonempty.
			empty := i == 0 || i == n
			bestEmpty := best == 0 || best == n
			better := best == -1 ||
				(bestEmpty && !empty) ||
				(empty == bestEmpty && c <= bestComm)
			if better {
				best, bestComm = i, c
			}
		}
		if best >= 0 {
			return []int{best}
		}
	}

	// General k: greedy reconstruction under the optimal bottleneck.
	bounds := make([]int, 0, k-1)
	var acc int64
	for i, x := range w {
		if acc+x > lo && len(bounds) < k-1 {
			bounds = append(bounds, i)
			acc = 0
		}
		acc += x
	}
	for len(bounds) < k-1 {
		bounds = append(bounds, n)
	}
	return bounds
}
