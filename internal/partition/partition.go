// Package partition implements the thread partitioners of the GMT
// scheduling framework (the pluggable middle stage of Figure 2): DSWP [16],
// which builds a pipeline of threads with acyclic inter-thread dependences,
// and GREMIO [15], which list-schedules the loop-nest hierarchy and allows
// cyclic inter-thread dependences.
package partition

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/pdg"
)

// Partitioner assigns every assignable instruction of a function to one of
// numThreads threads, based on the PDG and profile information. This is the
// interface new GMT schedulers plug into (Section 2: "Different GMT
// schedulers can be implemented simply by 'plugging' different partitioners
// in this framework").
type Partitioner interface {
	// Name identifies the partitioner in reports.
	Name() string
	// Partition returns the thread assignment. Implementations must
	// assign every instruction except unconditional jumps and must return
	// assignments in [0, numThreads).
	Partition(f *ir.Function, g *pdg.Graph, prof *ir.Profile, numThreads int) (map[*ir.Instr]int, error)
}

// QueueCapper is optionally implemented by partitioners whose generated
// code targets a particular synchronization-array queue depth. The paper
// evaluates DSWP with 32-entry queues and every other partitioner with
// single-entry queues (Section 4); queue depth is a property of the
// partitioning style because only pipeline partitions profit from deep
// decoupling buffers.
type QueueCapper interface {
	// QueueCap returns the queue depth the partitioner's programs are
	// measured with.
	QueueCap() int
}

// QueueCapFor returns the synchronization-array queue depth to execute and
// simulate p's programs with: the partitioner's own choice when it
// implements QueueCapper, and the paper's single-entry default otherwise.
func QueueCapFor(p Partitioner) int {
	if qc, ok := p.(QueueCapper); ok {
		return qc.QueueCap()
	}
	return 1
}

// latency estimates an instruction's execution latency in cycles, matching
// the simulator's functional-unit model. Partitioners use it to balance
// estimated dynamic cycles.
func latency(in *ir.Instr) int64 {
	switch in.Op {
	case ir.Mul:
		return 3
	case ir.Div, ir.Rem:
		return 12
	case ir.FAdd, ir.FSub, ir.FMul, ir.FNeg, ir.FAbs, ir.FCmpLT, ir.FCmpGT, ir.ItoF, ir.FtoI:
		return 4
	case ir.FDiv:
		return 16
	case ir.Load:
		return 2 // optimistic L1 hit weighting
	default:
		return 1
	}
}

// weight estimates the dynamic cycles contributed by an instruction: its
// latency times its block's profile weight.
func weight(in *ir.Instr, prof *ir.Profile) int64 {
	return latency(in) * prof.BlockWeight(in.Block())
}

// validate checks a partition for completeness and range.
func validate(f *ir.Function, assign map[*ir.Instr]int, numThreads int) error {
	var err error
	f.Instrs(func(in *ir.Instr) {
		if err != nil || in.Op == ir.Jump || in.Op == ir.Nop {
			return
		}
		t, ok := assign[in]
		if !ok {
			err = fmt.Errorf("partition: instruction %v unassigned", in)
			return
		}
		if t < 0 || t >= numThreads {
			err = fmt.Errorf("partition: instruction %v assigned to thread %d of %d", in, t, numThreads)
		}
	})
	return err
}

// min64 returns the smaller of two int64 values.
func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
