package ir

import "fmt"

// MemObject describes a named memory region (an array or a set of scalars)
// in the flat word-addressed memory. The alias analysis resolves address
// constants against the object table to derive points-to sets.
type MemObject struct {
	Name string
	Base int64 // first word index
	Size int64 // number of words
}

// Contains reports whether the word address a falls inside the object.
func (o MemObject) Contains(a int64) bool { return a >= o.Base && a < o.Base+o.Size }

// Builder constructs Functions imperatively, one block at a time. The zero
// value is not usable; call NewBuilder.
type Builder struct {
	F       *Function
	Objects []MemObject

	cur     *Block
	nextMem int64
}

// NewBuilder returns a builder for a fresh function with an entry block
// selected as the insertion point.
func NewBuilder(name string) *Builder {
	b := &Builder{F: NewFunction(name)}
	b.cur = b.F.NewBlock("entry")
	return b
}

// Block creates a new block and returns it without changing the insertion
// point.
func (b *Builder) Block(name string) *Block { return b.F.NewBlock(name) }

// SetBlock moves the insertion point to blk.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// Cur returns the current insertion block.
func (b *Builder) Cur() *Block { return b.cur }

// Param allocates a live-in register.
func (b *Builder) Param() Reg {
	r := b.F.NewReg()
	b.F.Params = append(b.F.Params, r)
	return r
}

// Array reserves size words of memory for a named object and returns it.
func (b *Builder) Array(name string, size int64) MemObject {
	o := MemObject{Name: name, Base: b.nextMem, Size: size}
	b.Objects = append(b.Objects, o)
	b.nextMem += size
	return o
}

// MemSize returns the number of memory words reserved so far.
func (b *Builder) MemSize() int64 { return b.nextMem }

func (b *Builder) emit(in *Instr) *Instr {
	if b.cur.Terminator() != nil {
		panic(fmt.Sprintf("ir: emitting %v into terminated block %s", in, b.cur.Name))
	}
	b.cur.Append(in)
	return in
}

// Const emits dst = v and returns dst.
func (b *Builder) Const(v int64) Reg {
	dst := b.F.NewReg()
	in := b.F.NewInstr(Const, dst)
	in.Imm = v
	b.emit(in)
	return dst
}

// FConst emits a float64 constant (stored as raw bits).
func (b *Builder) FConst(v float64) Reg { return b.Const(int64(Float64Bits(v))) }

// AddrOf emits a constant holding the base address of obj.
func (b *Builder) AddrOf(obj MemObject) Reg { return b.Const(obj.Base) }

// Op2 emits a two-source instruction and returns its destination.
func (b *Builder) Op2(op Op, x, y Reg) Reg {
	dst := b.F.NewReg()
	b.emit(b.F.NewInstr(op, dst, x, y))
	return dst
}

// Op1 emits a one-source instruction and returns its destination.
func (b *Builder) Op1(op Op, x Reg) Reg {
	dst := b.F.NewReg()
	b.emit(b.F.NewInstr(op, dst, x))
	return dst
}

// Arithmetic and comparison conveniences.

func (b *Builder) Add(x, y Reg) Reg    { return b.Op2(Add, x, y) }
func (b *Builder) Sub(x, y Reg) Reg    { return b.Op2(Sub, x, y) }
func (b *Builder) Mul(x, y Reg) Reg    { return b.Op2(Mul, x, y) }
func (b *Builder) Div(x, y Reg) Reg    { return b.Op2(Div, x, y) }
func (b *Builder) Rem(x, y Reg) Reg    { return b.Op2(Rem, x, y) }
func (b *Builder) And(x, y Reg) Reg    { return b.Op2(And, x, y) }
func (b *Builder) Or(x, y Reg) Reg     { return b.Op2(Or, x, y) }
func (b *Builder) Xor(x, y Reg) Reg    { return b.Op2(Xor, x, y) }
func (b *Builder) Shl(x, y Reg) Reg    { return b.Op2(Shl, x, y) }
func (b *Builder) Shr(x, y Reg) Reg    { return b.Op2(Shr, x, y) }
func (b *Builder) Abs(x Reg) Reg       { return b.Op1(Abs, x) }
func (b *Builder) Neg(x Reg) Reg       { return b.Op1(Neg, x) }
func (b *Builder) CmpEQ(x, y Reg) Reg  { return b.Op2(CmpEQ, x, y) }
func (b *Builder) CmpNE(x, y Reg) Reg  { return b.Op2(CmpNE, x, y) }
func (b *Builder) CmpLT(x, y Reg) Reg  { return b.Op2(CmpLT, x, y) }
func (b *Builder) CmpLE(x, y Reg) Reg  { return b.Op2(CmpLE, x, y) }
func (b *Builder) CmpGT(x, y Reg) Reg  { return b.Op2(CmpGT, x, y) }
func (b *Builder) CmpGE(x, y Reg) Reg  { return b.Op2(CmpGE, x, y) }
func (b *Builder) FAdd(x, y Reg) Reg   { return b.Op2(FAdd, x, y) }
func (b *Builder) FSub(x, y Reg) Reg   { return b.Op2(FSub, x, y) }
func (b *Builder) FMul(x, y Reg) Reg   { return b.Op2(FMul, x, y) }
func (b *Builder) FDiv(x, y Reg) Reg   { return b.Op2(FDiv, x, y) }
func (b *Builder) FCmpLT(x, y Reg) Reg { return b.Op2(FCmpLT, x, y) }
func (b *Builder) FCmpGT(x, y Reg) Reg { return b.Op2(FCmpGT, x, y) }
func (b *Builder) ItoF(x Reg) Reg      { return b.Op1(ItoF, x) }
func (b *Builder) FtoI(x Reg) Reg      { return b.Op1(FtoI, x) }

// Mov emits dst = x into a fresh register.
func (b *Builder) Mov(x Reg) Reg { return b.Op1(Mov, x) }

// MovTo emits dst = x into an existing register (the non-SSA idiom for loop
// variables and accumulators).
func (b *Builder) MovTo(dst, x Reg) {
	b.emit(b.F.NewInstr(Mov, dst, x))
}

// ConstTo emits dst = v into an existing register.
func (b *Builder) ConstTo(dst Reg, v int64) {
	in := b.F.NewInstr(Const, dst)
	in.Imm = v
	b.emit(in)
}

// Op2To emits dst = op(x, y) into an existing register.
func (b *Builder) Op2To(dst Reg, op Op, x, y Reg) {
	b.emit(b.F.NewInstr(op, dst, x, y))
}

// Load emits dst = mem[base+off].
func (b *Builder) Load(base Reg, off int64) Reg {
	dst := b.F.NewReg()
	in := b.F.NewInstr(Load, dst, base)
	in.Imm = off
	b.emit(in)
	return dst
}

// LoadTo emits dst = mem[base+off] into an existing register.
func (b *Builder) LoadTo(dst, base Reg, off int64) {
	in := b.F.NewInstr(Load, dst, base)
	in.Imm = off
	b.emit(in)
}

// Store emits mem[base+off] = val.
func (b *Builder) Store(val, base Reg, off int64) {
	in := b.F.NewInstr(Store, NoReg, val, base)
	in.Imm = off
	b.emit(in)
}

// Br terminates the current block with a conditional branch.
func (b *Builder) Br(cond Reg, taken, fall *Block) {
	b.emit(b.F.NewInstr(Br, NoReg, cond))
	b.cur.SetSuccs(taken, fall)
}

// Jump terminates the current block with an unconditional jump.
func (b *Builder) Jump(target *Block) {
	b.emit(b.F.NewInstr(Jump, NoReg))
	b.cur.SetSuccs(target)
}

// Ret terminates the current block, naming the region's live-out registers.
func (b *Builder) Ret(liveOuts ...Reg) {
	b.emit(b.F.NewInstr(Ret, NoReg, liveOuts...))
	b.cur.SetSuccs()
}
