package ir

import (
	"fmt"
	"strings"
)

// Reg names a virtual register. Register 0 is the invalid register; the
// framework never allocates it.
type Reg int

// NoReg is the invalid register.
const NoReg Reg = 0

// String returns the assembler spelling of the register, e.g. "r7".
func (r Reg) String() string {
	if r == NoReg {
		return "r?"
	}
	return fmt.Sprintf("r%d", int(r))
}

// NoQueue marks an instruction that does not use a communication queue.
const NoQueue = -1

// Instr is a single IR instruction. Instructions belong to exactly one basic
// block and carry a function-unique ID that all analyses key on.
type Instr struct {
	// ID is unique within the enclosing function and stable across
	// analyses. IDs order instructions arbitrarily, not by position.
	ID int

	Op   Op
	Dst  Reg   // defined register, NoReg if none
	Srcs []Reg // source registers (live-out list for Ret)
	Imm  int64 // immediate constant / memory offset

	// Queue is the synchronization-array queue used by communication
	// instructions; NoQueue otherwise.
	Queue int

	// Orig points to the original-program instruction this one was copied
	// from during multi-threaded code generation (branch duplication,
	// instruction placement). It is nil in source functions.
	Orig *Instr

	blk *Block
}

// Block returns the basic block containing the instruction, or nil if the
// instruction is detached.
func (in *Instr) Block() *Block { return in.blk }

// Defs returns the register defined by the instruction, or NoReg.
func (in *Instr) Defs() Reg { return in.Dst }

// Uses returns the registers read by the instruction. The returned slice
// aliases the instruction; callers must not modify it.
func (in *Instr) Uses() []Reg { return in.Srcs }

// UsesReg reports whether the instruction reads register r.
func (in *Instr) UsesReg(r Reg) bool {
	for _, s := range in.Srcs {
		if s == r {
			return true
		}
	}
	return false
}

// IsTerminator reports whether the instruction ends its block.
func (in *Instr) IsTerminator() bool { return in.Op.IsTerminator() }

// Index returns the instruction's position within its block, or -1 if the
// instruction is detached. It is a linear scan; analyses that need fast
// position lookup should build their own index.
func (in *Instr) Index() int {
	if in.blk == nil {
		return -1
	}
	for i, other := range in.blk.Instrs {
		if other == in {
			return i
		}
	}
	return -1
}

// String renders the instruction in assembler-like syntax.
func (in *Instr) String() string {
	var b strings.Builder
	switch in.Op {
	case Const:
		fmt.Fprintf(&b, "%s = const %d", in.Dst, in.Imm)
	case Load:
		fmt.Fprintf(&b, "%s = load [%s+%d]", in.Dst, in.Srcs[0], in.Imm)
	case Store:
		fmt.Fprintf(&b, "store [%s+%d] = %s", in.Srcs[1], in.Imm, in.Srcs[0])
	case Br:
		fmt.Fprintf(&b, "br %s", in.Srcs[0])
		if in.blk != nil && len(in.blk.Succs) == 2 {
			fmt.Fprintf(&b, " %s, %s", in.blk.Succs[0].Name, in.blk.Succs[1].Name)
		}
	case Jump:
		b.WriteString("jump")
		if in.blk != nil && len(in.blk.Succs) == 1 {
			fmt.Fprintf(&b, " %s", in.blk.Succs[0].Name)
		}
	case Ret:
		b.WriteString("ret")
		for i, s := range in.Srcs {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, " %s", s)
		}
	case Produce:
		fmt.Fprintf(&b, "produce [q%d] = %s", in.Queue, in.Srcs[0])
	case Consume:
		fmt.Fprintf(&b, "%s = consume [q%d]", in.Dst, in.Queue)
	case ProduceSync:
		fmt.Fprintf(&b, "produce.sync [q%d]", in.Queue)
	case ConsumeSync:
		fmt.Fprintf(&b, "consume.sync [q%d]", in.Queue)
	default:
		if in.Op.HasDst() {
			fmt.Fprintf(&b, "%s = %s", in.Dst, in.Op)
		} else {
			b.WriteString(in.Op.String())
		}
		for i, s := range in.Srcs {
			if i == 0 && !in.Op.HasDst() {
				b.WriteString(" ")
			} else if i == 0 {
				b.WriteString(" ")
			} else {
				b.WriteString(", ")
			}
			b.WriteString(s.String())
		}
	}
	return b.String()
}
