package ir

import (
	"strings"
	"testing"
)

// buildDiamond constructs:
//
//	entry -> then|else -> join(ret)
func buildDiamond(t *testing.T) (*Builder, Reg) {
	t.Helper()
	b := NewBuilder("diamond")
	p := b.Param()
	then := b.Block("then")
	els := b.Block("else")
	join := b.Block("join")

	out := b.F.NewReg()
	cond := b.CmpGT(p, b.Const(0))
	b.Br(cond, then, els)

	b.SetBlock(then)
	b.MovTo(out, b.Const(1))
	b.Jump(join)

	b.SetBlock(els)
	b.MovTo(out, b.Const(2))
	b.Jump(join)

	b.SetBlock(join)
	b.Ret(out)
	return b, out
}

func TestBuilderProducesVerifiableFunction(t *testing.T) {
	b, _ := buildDiamond(t)
	if err := b.F.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := len(b.F.Blocks); got != 4 {
		t.Fatalf("blocks = %d, want 4", got)
	}
	if b.F.RetInstr() == nil {
		t.Fatal("no Ret instruction found")
	}
	if got := len(b.F.LiveOuts()); got != 1 {
		t.Fatalf("live-outs = %d, want 1", got)
	}
}

func TestOpProperties(t *testing.T) {
	tests := []struct {
		op     Op
		term   bool
		hasDst bool
		nsrcs  int
		comm   bool
	}{
		{Const, false, true, 0, false},
		{Add, false, true, 2, false},
		{Load, false, true, 1, false},
		{Store, false, false, 2, false},
		{Br, true, false, 1, false},
		{Jump, true, false, 0, false},
		{Ret, true, false, -1, false},
		{Produce, false, false, 1, true},
		{Consume, false, true, 0, true},
		{ProduceSync, false, false, 0, true},
		{ConsumeSync, false, false, 0, true},
	}
	for _, tt := range tests {
		if got := tt.op.IsTerminator(); got != tt.term {
			t.Errorf("%v.IsTerminator() = %v, want %v", tt.op, got, tt.term)
		}
		if got := tt.op.HasDst(); got != tt.hasDst {
			t.Errorf("%v.HasDst() = %v, want %v", tt.op, got, tt.hasDst)
		}
		if got := tt.op.NumSrcs(); got != tt.nsrcs {
			t.Errorf("%v.NumSrcs() = %v, want %v", tt.op, got, tt.nsrcs)
		}
		if got := tt.op.IsComm(); got != tt.comm {
			t.Errorf("%v.IsComm() = %v, want %v", tt.op, got, tt.comm)
		}
	}
}

func TestOpStringsAreUniqueAndNamed(t *testing.T) {
	seen := map[string]Op{}
	for op := Nop; op < numOps; op++ {
		s := op.String()
		if strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("opcodes %d and %d share name %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	// entry -Br-> loop, exit ; loop -Br-> loop, exit
	// Both edges into exit come from multi-successor blocks, and loop has
	// two predecessors, so entry->loop, loop->loop, entry->exit and
	// loop->exit are all critical.
	b := NewBuilder("crit")
	p := b.Param()
	loop := b.Block("loop")
	exit := b.Block("exit")
	b.Br(p, loop, exit)
	b.SetBlock(loop)
	c := b.CmpGT(p, b.Const(0))
	b.Br(c, loop, exit)
	b.SetBlock(exit)
	b.Ret()

	if err := b.F.Verify(); err != nil {
		t.Fatalf("pre-split Verify: %v", err)
	}
	n := b.F.SplitCriticalEdges()
	if n != 4 {
		t.Fatalf("split %d edges, want 4", n)
	}
	if err := b.F.Verify(); err != nil {
		t.Fatalf("post-split Verify: %v", err)
	}
	for _, blk := range b.F.Blocks {
		if len(blk.Succs) >= 2 {
			for _, s := range blk.Succs {
				if len(s.Preds) >= 2 {
					t.Errorf("critical edge %s->%s survived", blk.Name, s.Name)
				}
			}
		}
	}
}

func TestVerifyCatchesBrokenFunctions(t *testing.T) {
	t.Run("unterminated block", func(t *testing.T) {
		f := NewFunction("bad")
		f.NewBlock("entry")
		if err := f.Verify(); err == nil {
			t.Error("Verify accepted unterminated block")
		}
	})
	t.Run("missing ret", func(t *testing.T) {
		f := NewFunction("bad")
		e := f.NewBlock("entry")
		e.Append(f.NewInstr(Jump, NoReg))
		e.SetSuccs(e)
		if err := f.Verify(); err == nil {
			t.Error("Verify accepted function without Ret")
		}
	})
	t.Run("bad source register", func(t *testing.T) {
		f := NewFunction("bad")
		e := f.NewBlock("entry")
		e.Append(f.NewInstr(Ret, NoReg, Reg(99)))
		if err := f.Verify(); err == nil {
			t.Error("Verify accepted unallocated source register")
		}
	})
	t.Run("queue out of range", func(t *testing.T) {
		f := NewFunction("bad")
		e := f.NewBlock("entry")
		p := f.NewInstr(ProduceSync, NoReg)
		p.Queue = 3
		e.Append(p)
		e.Append(f.NewInstr(Ret, NoReg))
		if err := f.Verify(); err == nil {
			t.Error("Verify accepted out-of-range queue")
		}
	})
	t.Run("unreachable block", func(t *testing.T) {
		f := NewFunction("bad")
		e := f.NewBlock("entry")
		e.Append(f.NewInstr(Ret, NoReg))
		dead := f.NewBlock("dead")
		dead.Append(f.NewInstr(Jump, NoReg))
		dead.SetSuccs(e)
		if err := f.Verify(); err == nil {
			t.Error("Verify accepted unreachable block")
		}
	})
}

func TestProfileWeights(t *testing.T) {
	b, _ := buildDiamond(t)
	f := b.F
	p := NewProfile()
	entry, then, els, join := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	p.AddEdge(entry, then, 7)
	p.AddEdge(entry, els, 3)
	p.AddEdge(then, join, 7)
	p.AddEdge(els, join, 3)
	if w := p.BlockWeight(join); w != 10 {
		t.Errorf("BlockWeight(join) = %d, want 10", w)
	}
	if w := p.BlockWeight(entry); w != 10 {
		t.Errorf("BlockWeight(entry) = %d, want 10", w)
	}
	if w := p.EdgeWeight(entry, els); w != 3 {
		t.Errorf("EdgeWeight(entry,else) = %d, want 3", w)
	}
	p.Scale(1, 5)
	if w := p.EdgeWeight(entry, els); w != 1 {
		t.Errorf("scaled EdgeWeight = %d, want 1 (rounds up to 1)", w)
	}
}

func TestInstrStringFormats(t *testing.T) {
	b := NewBuilder("strings")
	x := b.Param()
	y := b.Add(x, x)
	b.Store(y, x, 4)
	z := b.Load(x, 8)
	b.Ret(z)
	f := b.F

	var got []string
	f.Instrs(func(in *Instr) { got = append(got, in.String()) })
	want := []string{
		"r2 = add r1, r1",
		"store [r1+4] = r2",
		"r3 = load [r1+8]",
		"ret r3",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d instrs: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("instr %d = %q, want %q", i, got[i], want[i])
		}
	}
	if !strings.Contains(f.String(), "func strings(r1)") {
		t.Errorf("function header missing: %q", f.String())
	}
}

func TestInsertAtAndIndex(t *testing.T) {
	b := NewBuilder("ins")
	x := b.Param()
	b.Add(x, x)
	b.Ret()
	blk := b.F.Entry()
	in := b.F.NewInstr(Nop, NoReg)
	blk.InsertAt(1, in)
	if blk.Instrs[1] != in {
		t.Fatal("InsertAt did not place instruction")
	}
	if got := in.Index(); got != 1 {
		t.Errorf("Index = %d, want 1", got)
	}
	if in.Block() != blk {
		t.Error("Block link not set by InsertAt")
	}
}
