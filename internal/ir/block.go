package ir

// Block is a basic block: a maximal straight-line sequence of instructions
// ending in at most one terminator. Blocks form the nodes of a function's
// control-flow graph.
type Block struct {
	// ID is unique and dense within the enclosing function; Function.Blocks
	// is indexed by it.
	ID   int
	Name string

	// Instrs lists the block's instructions in execution order. If the
	// block has a terminator it is the last instruction.
	Instrs []*Instr

	// Succs are the control-flow successors. For a Br terminator Succs[0]
	// is the taken target and Succs[1] the not-taken target; a Jump has one
	// successor; a Ret has none.
	Succs []*Block
	// Preds are the control-flow predecessors, maintained by the function.
	Preds []*Block

	fn *Function
}

// Func returns the function containing the block.
func (b *Block) Func() *Function { return b.fn }

// Terminator returns the block's terminator instruction, or nil if the block
// is unterminated (only legal while under construction).
func (b *Block) Terminator() *Instr {
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].IsTerminator() {
		return b.Instrs[n-1]
	}
	return nil
}

// Body returns the block's instructions excluding the terminator.
func (b *Block) Body() []*Instr {
	if b.Terminator() != nil {
		return b.Instrs[:len(b.Instrs)-1]
	}
	return b.Instrs
}

// Append adds an instruction to the end of the block (before nothing); the
// caller must ensure terminator invariants.
func (b *Block) Append(in *Instr) {
	in.blk = b
	b.Instrs = append(b.Instrs, in)
}

// InsertAt inserts an instruction so that it becomes b.Instrs[idx].
// idx == len(b.Instrs) appends.
func (b *Block) InsertAt(idx int, in *Instr) {
	in.blk = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+1:], b.Instrs[idx:])
	b.Instrs[idx] = in
}

// HasInstr reports whether the block contains the given instruction.
func (b *Block) HasInstr(in *Instr) bool { return in.blk == b }

// addPred records p as a predecessor of b.
func (b *Block) addPred(p *Block) { b.Preds = append(b.Preds, p) }

// removePred removes p from b's predecessor list.
func (b *Block) removePred(p *Block) {
	for i, q := range b.Preds {
		if q == p {
			b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
			return
		}
	}
}

// SetSuccs replaces the block's successor list, updating predecessor lists on
// both the old and new successors.
func (b *Block) SetSuccs(succs ...*Block) {
	for _, s := range b.Succs {
		s.removePred(b)
	}
	b.Succs = append(b.Succs[:0:0], succs...)
	for _, s := range b.Succs {
		s.addPred(b)
	}
}

// ReplaceSucc redirects every successor edge from old to new, updating
// predecessor lists.
func (b *Block) ReplaceSucc(old, new *Block) {
	changed := false
	for i, s := range b.Succs {
		if s == old {
			b.Succs[i] = new
			changed = true
		}
	}
	if changed {
		old.removePred(b)
		new.addPred(b)
	}
}
