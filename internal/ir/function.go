package ir

import "fmt"

// Function is a single-entry region of code: the unit the GMT scheduling
// framework parallelizes. In the paper this corresponds to an arbitrary
// intraprocedural region (a loop nest or whole procedure body).
type Function struct {
	Name string

	// Blocks lists the basic blocks; Blocks[i].ID == i and Blocks[0] is the
	// entry block.
	Blocks []*Block

	// Params are the registers holding the region's live-in values; the
	// interpreter and simulator initialize them before execution.
	Params []Reg

	// NumQueues is the number of synchronization-array queues referenced
	// by communication instructions (0 for single-threaded code).
	NumQueues int

	nextReg  Reg
	nextInst int
}

// NewFunction returns an empty function with the given name.
func NewFunction(name string) *Function {
	return &Function{Name: name, nextReg: 1}
}

// NewBlock appends a new empty block with the given name.
func (f *Function) NewBlock(name string) *Block {
	b := &Block{ID: len(f.Blocks), Name: name, fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the function's entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// NewReg allocates a fresh virtual register.
func (f *Function) NewReg() Reg {
	r := f.nextReg
	f.nextReg++
	return r
}

// ReserveRegs ensures the next allocated register is at least r+1. It is
// used when constructing thread functions that share the original function's
// register name space.
func (f *Function) ReserveRegs(r Reg) {
	if f.nextReg <= r {
		f.nextReg = r + 1
	}
}

// MaxReg returns the highest allocated register number.
func (f *Function) MaxReg() Reg { return f.nextReg - 1 }

// NewInstr creates a detached instruction owned by this function's ID space.
func (f *Function) NewInstr(op Op, dst Reg, srcs ...Reg) *Instr {
	in := &Instr{ID: f.nextInst, Op: op, Dst: dst, Srcs: srcs, Queue: NoQueue}
	f.nextInst++
	return in
}

// NumInstrIDs returns an upper bound (exclusive) on instruction IDs in the
// function, suitable for sizing ID-indexed tables.
func (f *Function) NumInstrIDs() int { return f.nextInst }

// Instrs calls fn for every instruction in block order then position order.
func (f *Function) Instrs(fn func(*Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			fn(in)
		}
	}
}

// NumInstrs returns the total number of instructions in the function.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// RetInstr returns the function's Ret instruction. Well-formed functions
// have exactly one; nil is returned otherwise.
func (f *Function) RetInstr() *Instr {
	var ret *Instr
	for _, b := range f.Blocks {
		if t := b.Terminator(); t != nil && t.Op == Ret {
			if ret != nil {
				return nil
			}
			ret = t
		}
	}
	return ret
}

// LiveOuts returns the function's live-out registers (the sources of Ret).
func (f *Function) LiveOuts() []Reg {
	if ret := f.RetInstr(); ret != nil {
		return ret.Srcs
	}
	return nil
}

// BlockByName returns the block with the given name, or nil.
func (f *Function) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// SplitCriticalEdges inserts an empty block on every critical edge (an edge
// from a block with multiple successors to a block with multiple
// predecessors). Afterwards every CFG edge has a unique program point, which
// the communication-placement machinery relies on. It returns the number of
// edges split.
func (f *Function) SplitCriticalEdges() int {
	n := 0
	// Snapshot: splitting appends blocks.
	orig := append([]*Block(nil), f.Blocks...)
	for _, b := range orig {
		if len(b.Succs) < 2 {
			continue
		}
		for i, s := range b.Succs {
			if len(s.Preds) < 2 {
				continue
			}
			mid := f.NewBlock(fmt.Sprintf("%s.crit%d", b.Name, i))
			mid.Append(f.NewInstr(Jump, NoReg))
			// Rewire b's i-th successor to mid, preserving the
			// taken/fall-through slot order of Br.
			s.removePred(b)
			b.Succs[i] = mid
			mid.addPred(b)
			mid.Succs = []*Block{s}
			s.addPred(mid)
			n++
		}
	}
	return n
}

// Edge identifies a CFG edge by block IDs.
type Edge struct{ From, To int }

// Profile holds execution-frequency estimates: a count per CFG edge. These
// drive the costs in COCO's min-cut flow graphs.
type Profile struct {
	Edges map[Edge]int64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{Edges: map[Edge]int64{}} }

// EdgeWeight returns the execution count estimate of the edge from to.
func (p *Profile) EdgeWeight(from, to *Block) int64 {
	return p.Edges[Edge{from.ID, to.ID}]
}

// AddEdge adds n executions to the edge from to.
func (p *Profile) AddEdge(from, to *Block, n int64) {
	p.Edges[Edge{from.ID, to.ID}] += n
}

// BlockWeight returns the execution count estimate of block b: the sum of
// incoming edge counts, or of outgoing counts for the entry block.
func (p *Profile) BlockWeight(b *Block) int64 {
	if len(b.Preds) == 0 {
		var w int64
		for _, s := range b.Succs {
			w += p.EdgeWeight(b, s)
		}
		if w == 0 {
			w = 1 // entry executes once
		}
		return w
	}
	var w int64
	for _, pr := range b.Preds {
		w += p.EdgeWeight(pr, b)
	}
	return w
}

// Scale multiplies every edge count by num/den, rounding to at least 1 for
// nonzero counts. It is used to normalize train-input profiles.
func (p *Profile) Scale(num, den int64) {
	for e, w := range p.Edges {
		if w == 0 {
			continue
		}
		s := w * num / den
		if s == 0 {
			s = 1
		}
		p.Edges[e] = s
	}
}
