package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reconstructs a Function from the textual form produced by
// Function.String, enabling golden tests and file-based test cases. Memory
// objects are not part of the textual form; callers that need alias
// information must supply an object table separately.
//
// The grammar (one instruction per line, blocks introduced by "name:"):
//
//	func name(r1, r2)
//	entry:
//		r3 = const 5
//		r4 = add r1, r3
//		store [r4+2] = r3
//		r5 = load [r4+0]
//		produce [q0] = r5
//		r6 = consume [q1]
//		br r6 then, else
//	then: ...
func Parse(text string) (*Function, error) {
	p := &parser{}
	lines := strings.Split(text, "\n")
	for num, raw := range lines {
		line := raw
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("ir: line %d: %q: %w", num+1, raw, err)
		}
	}
	if p.f == nil {
		return nil, fmt.Errorf("ir: no function header")
	}
	if err := p.resolve(); err != nil {
		return nil, err
	}
	return p.f, nil
}

// MustParse is Parse for tests and examples with known-good text.
func MustParse(text string) *Function {
	f, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return f
}

type pendingBranch struct {
	block   *Block
	targets []string
}

type parser struct {
	f        *Function
	cur      *Block
	blocks   map[string]*Block
	pending  []pendingBranch
	maxQueue int
}

func (p *parser) line(line string) error {
	switch {
	case strings.HasPrefix(line, "func "):
		return p.header(line)
	case strings.HasSuffix(line, ":") && !strings.Contains(line, "="):
		return p.blockStart(strings.TrimSuffix(line, ":"))
	default:
		if p.cur == nil {
			return fmt.Errorf("instruction outside block")
		}
		return p.instr(line)
	}
}

func (p *parser) header(line string) error {
	if p.f != nil {
		return fmt.Errorf("duplicate function header")
	}
	open := strings.Index(line, "(")
	close := strings.LastIndex(line, ")")
	if open < 0 || close < open {
		return fmt.Errorf("malformed header")
	}
	name := strings.TrimSpace(line[len("func "):open])
	p.f = NewFunction(name)
	p.blocks = map[string]*Block{}
	params := strings.TrimSpace(line[open+1 : close])
	if params != "" {
		for _, ps := range strings.Split(params, ",") {
			r, err := p.reg(strings.TrimSpace(ps))
			if err != nil {
				return err
			}
			p.f.Params = append(p.f.Params, r)
		}
	}
	return nil
}

func (p *parser) blockStart(name string) error {
	if p.f == nil {
		return fmt.Errorf("block before function header")
	}
	if _, dup := p.blocks[name]; dup {
		return fmt.Errorf("duplicate block %q", name)
	}
	b := p.f.NewBlock(name)
	p.blocks[name] = b
	p.cur = b
	return nil
}

// reg parses "rN".
func (p *parser) reg(s string) (Reg, error) {
	if !strings.HasPrefix(s, "r") {
		return NoReg, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n <= 0 {
		return NoReg, fmt.Errorf("bad register %q", s)
	}
	r := Reg(n)
	p.f.ReserveRegs(r)
	return r, nil
}

// queueRef parses "[qN]".
func (p *parser) queueRef(s string) (int, error) {
	if !strings.HasPrefix(s, "[q") || !strings.HasSuffix(s, "]") {
		return 0, fmt.Errorf("bad queue %q", s)
	}
	n, err := strconv.Atoi(s[2 : len(s)-1])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad queue %q", s)
	}
	if n+1 > p.maxQueue {
		p.maxQueue = n + 1
	}
	return n, nil
}

// memRef parses "[rN+OFF]".
func (p *parser) memRef(s string) (Reg, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return NoReg, 0, fmt.Errorf("bad memory operand %q", s)
	}
	body := s[1 : len(s)-1]
	// The printer emits base+offset with a literal '+' even for negative
	// offsets ("[r1+-3]"), so split at the first '+'.
	split := strings.Index(body, "+")
	if split <= 0 {
		return NoReg, 0, fmt.Errorf("bad memory operand %q", s)
	}
	r, err := p.reg(body[:split])
	if err != nil {
		return NoReg, 0, err
	}
	off, err := strconv.ParseInt(body[split+1:], 10, 64)
	if err != nil {
		return NoReg, 0, fmt.Errorf("bad offset in %q", s)
	}
	return r, off, nil
}

var opByName = func() map[string]Op {
	m := map[string]Op{}
	for op := Nop; op < numOps; op++ {
		m[op.String()] = op
	}
	return m
}()

func (p *parser) emit(in *Instr) { p.cur.Append(in) }

func (p *parser) instr(line string) error {
	fields := strings.Fields(strings.ReplaceAll(line, ",", " , "))
	// Re-join and split on "=" first for assignment forms.
	if eq := strings.Index(line, "="); eq >= 0 && !strings.HasPrefix(line, "store") &&
		!strings.HasPrefix(line, "produce") {
		lhs := strings.TrimSpace(line[:eq])
		rhs := strings.TrimSpace(line[eq+1:])
		dst, err := p.reg(lhs)
		if err != nil {
			return err
		}
		return p.assign(dst, rhs)
	}
	switch fields[0] {
	case "store":
		// store [rM+OFF] = rN
		eq := strings.Index(line, "=")
		if eq < 0 {
			return fmt.Errorf("malformed store")
		}
		base, off, err := p.memRef(strings.TrimSpace(strings.TrimPrefix(line[:eq], "store")))
		if err != nil {
			return err
		}
		val, err := p.reg(strings.TrimSpace(line[eq+1:]))
		if err != nil {
			return err
		}
		in := p.f.NewInstr(Store, NoReg, val, base)
		in.Imm = off
		p.emit(in)
	case "produce":
		// produce [qK] = rN
		eq := strings.Index(line, "=")
		if eq < 0 {
			return fmt.Errorf("malformed produce")
		}
		q, err := p.queueRef(strings.TrimSpace(strings.TrimPrefix(line[:eq], "produce")))
		if err != nil {
			return err
		}
		src, err := p.reg(strings.TrimSpace(line[eq+1:]))
		if err != nil {
			return err
		}
		in := p.f.NewInstr(Produce, NoReg, src)
		in.Queue = q
		p.emit(in)
	case "produce.sync", "consume.sync":
		q, err := p.queueRef(strings.TrimSpace(strings.TrimPrefix(
			strings.TrimPrefix(line, "produce.sync"), "consume.sync")))
		if err != nil {
			return err
		}
		op := ProduceSync
		if fields[0] == "consume.sync" {
			op = ConsumeSync
		}
		in := p.f.NewInstr(op, NoReg)
		in.Queue = q
		p.emit(in)
	case "br":
		// br rN target1, target2
		if len(fields) < 2 {
			return fmt.Errorf("malformed br")
		}
		cond, err := p.reg(fields[1])
		if err != nil {
			return err
		}
		rest := strings.TrimSpace(line[strings.Index(line, fields[1])+len(fields[1]):])
		parts := strings.Split(rest, ",")
		if len(parts) != 2 {
			return fmt.Errorf("br needs two targets")
		}
		p.emit(p.f.NewInstr(Br, NoReg, cond))
		p.pending = append(p.pending, pendingBranch{
			block:   p.cur,
			targets: []string{strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])},
		})
	case "jump":
		if len(fields) < 2 {
			return fmt.Errorf("jump needs a target")
		}
		p.emit(p.f.NewInstr(Jump, NoReg))
		p.pending = append(p.pending, pendingBranch{block: p.cur, targets: []string{fields[1]}})
	case "ret":
		var srcs []Reg
		rest := strings.TrimSpace(strings.TrimPrefix(line, "ret"))
		if rest != "" {
			for _, rs := range strings.Split(rest, ",") {
				r, err := p.reg(strings.TrimSpace(rs))
				if err != nil {
					return err
				}
				srcs = append(srcs, r)
			}
		}
		p.emit(p.f.NewInstr(Ret, NoReg, srcs...))
	case "nop":
		p.emit(p.f.NewInstr(Nop, NoReg))
	default:
		return fmt.Errorf("unknown instruction %q", fields[0])
	}
	return nil
}

// assign handles "rN = ..." forms.
func (p *parser) assign(dst Reg, rhs string) error {
	fields := strings.Fields(rhs)
	if len(fields) == 0 {
		return fmt.Errorf("empty right-hand side")
	}
	switch fields[0] {
	case "const":
		if len(fields) != 2 {
			return fmt.Errorf("malformed const")
		}
		imm, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad immediate %q", fields[1])
		}
		in := p.f.NewInstr(Const, dst)
		in.Imm = imm
		p.emit(in)
	case "load":
		if len(fields) != 2 {
			return fmt.Errorf("malformed load")
		}
		base, off, err := p.memRef(fields[1])
		if err != nil {
			return err
		}
		in := p.f.NewInstr(Load, dst, base)
		in.Imm = off
		p.emit(in)
	case "consume":
		if len(fields) != 2 {
			return fmt.Errorf("malformed consume")
		}
		q, err := p.queueRef(fields[1])
		if err != nil {
			return err
		}
		in := p.f.NewInstr(Consume, dst)
		in.Queue = q
		p.emit(in)
	default:
		op, ok := opByName[fields[0]]
		if !ok || !op.HasDst() {
			return fmt.Errorf("unknown operation %q", fields[0])
		}
		operands := strings.TrimSpace(rhs[len(fields[0]):])
		var srcs []Reg
		if operands != "" {
			for _, rs := range strings.Split(operands, ",") {
				r, err := p.reg(strings.TrimSpace(rs))
				if err != nil {
					return err
				}
				srcs = append(srcs, r)
			}
		}
		if want := op.NumSrcs(); want >= 0 && len(srcs) != want {
			return fmt.Errorf("%s takes %d operands, got %d", op, want, len(srcs))
		}
		p.emit(p.f.NewInstr(op, dst, srcs...))
	}
	return nil
}

// resolve wires branch targets once all blocks exist.
func (p *parser) resolve() error {
	for _, pb := range p.pending {
		var succs []*Block
		for _, name := range pb.targets {
			b, ok := p.blocks[name]
			if !ok {
				return fmt.Errorf("ir: unknown branch target %q", name)
			}
			succs = append(succs, b)
		}
		pb.block.SetSuccs(succs...)
	}
	p.f.NumQueues = p.maxQueue
	return nil
}
