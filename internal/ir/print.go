package ir

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Float64Bits converts a float64 to its IEEE-754 bit pattern. It exists so
// clients of the IR need not import math for register encoding.
func Float64Bits(v float64) uint64 { return math.Float64bits(v) }

// Float64FromBits is the inverse of Float64Bits.
func Float64FromBits(b uint64) float64 { return math.Float64frombits(b) }

// String renders the function as assembler-like text, one block per
// paragraph. Duplicate block names are disambiguated with the block ID so
// the output always parses back (see Parse).
func (f *Function) String() string {
	label := map[int]string{}
	seen := map[string]bool{}
	for _, blk := range f.Blocks {
		name := blk.Name
		if seen[name] {
			name = fmt.Sprintf("%s.b%d", blk.Name, blk.ID)
		}
		seen[name] = true
		label[blk.ID] = name
	}

	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(")\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:", label[blk.ID])
		if len(blk.Preds) > 0 {
			b.WriteString("  ; preds:")
			names := make([]string, len(blk.Preds))
			for i, p := range blk.Preds {
				names[i] = label[p.ID]
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Fprintf(&b, " %s", n)
			}
		}
		b.WriteString("\n")
		for _, in := range blk.Instrs {
			switch {
			case in.Op == Br && len(blk.Succs) == 2:
				fmt.Fprintf(&b, "\tbr %s %s, %s\n", in.Srcs[0],
					label[blk.Succs[0].ID], label[blk.Succs[1].ID])
			case in.Op == Jump && len(blk.Succs) == 1:
				fmt.Fprintf(&b, "\tjump %s\n", label[blk.Succs[0].ID])
			default:
				fmt.Fprintf(&b, "\t%s\n", in)
			}
		}
	}
	return b.String()
}
