package ir

import "fmt"

// Verify checks the structural invariants of the function and returns the
// first violation found, or nil. The invariants are:
//
//   - Blocks is indexed by block ID and the entry block exists.
//   - Every block ends with exactly one terminator, and terminators appear
//     nowhere else.
//   - Successor counts match terminators (Br: 2, Jump: 1, Ret: 0).
//   - Pred/succ lists are mutually consistent.
//   - Instruction source counts match opcodes, and registers are allocated.
//   - Every instruction belongs to the block listing it, and IDs are unique.
//   - Exactly one Ret exists and every block reaches it or is reachable
//     from entry (no dangling unreachable garbage is allowed in source
//     functions; thread functions are built reachable by construction).
func (f *Function) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", f.Name)
	}
	seenID := make(map[int]*Instr)
	retCount := 0
	for i, b := range f.Blocks {
		if b.ID != i {
			return fmt.Errorf("%s: block %s has ID %d at index %d", f.Name, b.Name, b.ID, i)
		}
		if b.fn != f {
			return fmt.Errorf("%s: block %s has wrong owner", f.Name, b.Name)
		}
		t := b.Terminator()
		if t == nil {
			return fmt.Errorf("%s: block %s is unterminated", f.Name, b.Name)
		}
		for j, in := range b.Instrs {
			if in.blk != b {
				return fmt.Errorf("%s: instr %v in %s has wrong block link", f.Name, in, b.Name)
			}
			if prev, dup := seenID[in.ID]; dup {
				return fmt.Errorf("%s: duplicate instr ID %d (%v, %v)", f.Name, in.ID, prev, in)
			}
			seenID[in.ID] = in
			if in.IsTerminator() && j != len(b.Instrs)-1 {
				return fmt.Errorf("%s: terminator %v mid-block in %s", f.Name, in, b.Name)
			}
			if err := f.verifyInstr(in); err != nil {
				return fmt.Errorf("%s: block %s: %w", f.Name, b.Name, err)
			}
		}
		var wantSuccs int
		switch t.Op {
		case Br:
			wantSuccs = 2
		case Jump:
			wantSuccs = 1
		case Ret:
			wantSuccs = 0
			retCount++
		}
		if len(b.Succs) != wantSuccs {
			return fmt.Errorf("%s: block %s: %v with %d successors", f.Name, b.Name, t.Op, len(b.Succs))
		}
		for _, s := range b.Succs {
			if !containsBlock(s.Preds, b) {
				return fmt.Errorf("%s: edge %s->%s missing from pred list", f.Name, b.Name, s.Name)
			}
		}
		for _, p := range b.Preds {
			if !containsBlock(p.Succs, b) {
				return fmt.Errorf("%s: pred %s of %s lacks succ edge", f.Name, p.Name, b.Name)
			}
		}
	}
	if retCount != 1 {
		return fmt.Errorf("%s: %d Ret instructions, want exactly 1", f.Name, retCount)
	}
	// Reachability from entry.
	reached := make([]bool, len(f.Blocks))
	var stack []*Block
	stack = append(stack, f.Entry())
	reached[f.Entry().ID] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reached[s.ID] {
				reached[s.ID] = true
				stack = append(stack, s)
			}
		}
	}
	for _, b := range f.Blocks {
		if !reached[b.ID] {
			return fmt.Errorf("%s: block %s unreachable from entry", f.Name, b.Name)
		}
	}
	return nil
}

func (f *Function) verifyInstr(in *Instr) error {
	if n := in.Op.NumSrcs(); n >= 0 && len(in.Srcs) != n {
		return fmt.Errorf("%v: %d sources, want %d", in, len(in.Srcs), n)
	}
	if in.Op.HasDst() {
		if in.Dst == NoReg || in.Dst > f.MaxReg() {
			return fmt.Errorf("%v: bad destination register", in)
		}
	} else if in.Dst != NoReg {
		return fmt.Errorf("%v: unexpected destination register", in)
	}
	for _, s := range in.Srcs {
		if s == NoReg || s > f.MaxReg() {
			return fmt.Errorf("%v: bad source register %v", in, s)
		}
	}
	if in.Op.IsComm() {
		if in.Queue < 0 {
			return fmt.Errorf("%v: communication without queue", in)
		}
		if in.Queue >= f.NumQueues {
			return fmt.Errorf("%v: queue %d out of range (%d queues)", in, in.Queue, f.NumQueues)
		}
	} else if in.Queue != NoQueue {
		return fmt.Errorf("%v: non-communication instruction with queue", in)
	}
	return nil
}

func containsBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}
