package ir

import (
	"testing"
)

const sampleText = `
func sample(r1, r2)
entry:
	r3 = const 5
	r4 = add r1, r3
	store [r4+2] = r3
	r5 = load [r4+0]
	r6 = cmplt r5, r2
	br r6 then, join
then:
	r7 = mul r5, r5
	jump join
join:
	ret r5
`

func TestParseSample(t *testing.T) {
	f, err := Parse(sampleText)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if f.Name != "sample" {
		t.Errorf("name = %q", f.Name)
	}
	if len(f.Params) != 2 {
		t.Errorf("params = %d, want 2", len(f.Params))
	}
	if len(f.Blocks) != 3 {
		t.Errorf("blocks = %d, want 3", len(f.Blocks))
	}
	entry := f.BlockByName("entry")
	if got := entry.Instrs[0].Op; got != Const {
		t.Errorf("first instr op = %v, want const", got)
	}
	if got := entry.Instrs[0].Imm; got != 5 {
		t.Errorf("const imm = %d, want 5", got)
	}
	if got := entry.Instrs[2]; got.Op != Store || got.Imm != 2 {
		t.Errorf("store parsed as %v (imm %d)", got, got.Imm)
	}
	if succs := entry.Succs; len(succs) != 2 || succs[0].Name != "then" || succs[1].Name != "join" {
		t.Errorf("entry succs wrong: %v", succs)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	f, err := Parse(sampleText)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	text := f.String()
	g, err := Parse(text)
	if err != nil {
		t.Fatalf("re-Parse printed form: %v\n%s", err, text)
	}
	if got := g.String(); got != text {
		t.Errorf("round trip diverged:\nfirst:\n%s\nsecond:\n%s", text, got)
	}
}

func TestParseCommunicationInstructions(t *testing.T) {
	text := `
func comm(r1)
entry:
	produce [q0] = r1
	r2 = consume [q3]
	produce.sync [q1]
	consume.sync [q2]
	ret r2
`
	f, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.NumQueues != 4 {
		t.Errorf("NumQueues = %d, want 4 (max queue 3)", f.NumQueues)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	ops := []Op{Produce, Consume, ProduceSync, ConsumeSync, Ret}
	for i, in := range f.Entry().Instrs {
		if in.Op != ops[i] {
			t.Errorf("instr %d op = %v, want %v", i, in.Op, ops[i])
		}
	}
}

func TestParseNegativeImmediates(t *testing.T) {
	text := `
func neg(r1)
entry:
	r2 = const -32768
	r3 = load [r1+-3]
	store [r1+-7] = r2
	ret r3
`
	f, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ins := f.Entry().Instrs
	if ins[0].Imm != -32768 || ins[1].Imm != -3 || ins[2].Imm != -7 {
		t.Errorf("immediates = %d %d %d", ins[0].Imm, ins[1].Imm, ins[2].Imm)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"no header", "entry:\n\tret\n"},
		{"dup header", "func a()\nfunc b()\nentry:\n\tret\n"},
		{"instr outside block", "func a()\nr1 = const 1\n"},
		{"unknown op", "func a()\nentry:\n\tr1 = frobnicate r1\n\tret\n"},
		{"bad register", "func a()\nentry:\n\tx1 = const 1\n\tret\n"},
		{"unknown target", "func a()\nentry:\n\tjump nowhere\n"},
		{"dup block", "func a()\nentry:\n\tret\nentry:\n\tret\n"},
		{"wrong arity", "func a(r1)\nentry:\n\tr2 = add r1\n\tret\n"},
		{"bad queue", "func a(r1)\nentry:\n\tproduce [x0] = r1\n\tret\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.text); err == nil {
				t.Errorf("Parse accepted %q", tc.text)
			}
		})
	}
}

func TestMustParsePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("garbage")
}

func TestParseRoundTripAllOpcodeForms(t *testing.T) {
	// Build a function using the builder, print it, reparse, reprint.
	b := NewBuilder("every")
	x := b.Param()
	y := b.Param()
	loop := b.Block("loop")
	exit := b.Block("exit")
	f1 := b.FAdd(b.ItoF(x), b.FConst(1.5))
	f2 := b.FMul(f1, f1)
	i := b.FtoI(b.Op1(FSqrt, f2))
	b.Jump(loop)
	b.SetBlock(loop)
	v := b.Abs(b.Sub(i, y))
	c := b.CmpGT(v, b.Const(3))
	b.Br(c, exit, loop)
	b.SetBlock(exit)
	b.Ret(v)

	text := b.F.String()
	g, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if got := g.String(); got != text {
		t.Errorf("round trip diverged:\n%s\nvs\n%s", text, got)
	}
	if err := g.Verify(); err != nil {
		t.Errorf("Verify after parse: %v", err)
	}
}
