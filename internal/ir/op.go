// Package ir defines the assembly-level intermediate representation used by
// the global multi-threaded (GMT) instruction scheduling framework.
//
// The IR mirrors the representation the VELOCITY compiler operates on in the
// paper: a low-level, non-SSA register machine. Functions are control-flow
// graphs of basic blocks; instructions read and write virtual registers and a
// flat word-addressed memory. Inter-thread communication is expressed with
// produce/consume instructions over numbered hardware queues (the
// synchronization array).
//
// Because the IR is non-SSA and every generated thread owns a private
// register file, only flow (definition to use) register dependences ever
// cross threads — exactly the dependence model assumed by the MTCG
// algorithm.
package ir

import "fmt"

// Op identifies an instruction opcode.
type Op uint8

// Opcode space. Arithmetic is on signed 64-bit integers; the F-prefixed
// opcodes operate on float64 values stored bit-for-bit in registers and are
// dispatched to the FP units by the machine model.
const (
	Nop Op = iota

	// Data movement.
	Const // dst = Imm
	Mov   // dst = src0

	// Integer arithmetic and logic.
	Add // dst = src0 + src1
	Sub // dst = src0 - src1
	Mul // dst = src0 * src1
	Div // dst = src0 / src1 (src1 != 0; 0 otherwise)
	Rem // dst = src0 % src1 (src1 != 0; 0 otherwise)
	And // dst = src0 & src1
	Or  // dst = src0 | src1
	Xor // dst = src0 ^ src1
	Shl // dst = src0 << (src1 & 63)
	Shr // dst = src0 >> (src1 & 63), arithmetic
	Neg // dst = -src0
	Not // dst = ^src0
	Abs // dst = |src0|

	// Integer comparisons, producing 0 or 1.
	CmpEQ // dst = src0 == src1
	CmpNE // dst = src0 != src1
	CmpLT // dst = src0 < src1
	CmpLE // dst = src0 <= src1
	CmpGT // dst = src0 > src1
	CmpGE // dst = src0 >= src1

	// Floating point (float64 bits held in integer registers).
	FAdd   // dst = src0 +. src1
	FSub   // dst = src0 -. src1
	FMul   // dst = src0 *. src1
	FDiv   // dst = src0 /. src1
	FNeg   // dst = -.src0
	FAbs   // dst = |src0|.
	FSqrt  // dst = sqrt(src0)
	FCmpLT // dst = src0 <. src1 (0 or 1)
	FCmpGT // dst = src0 >. src1 (0 or 1)
	ItoF   // dst = float64(src0)
	FtoI   // dst = int64(src0)

	// Memory. Addresses are word indices into a flat memory; the effective
	// address is src-register + Imm.
	Load  // dst = mem[src0 + Imm]
	Store // mem[src1 + Imm] = src0

	// Control flow (block terminators).
	Br   // if src0 != 0 goto Succs[0] else Succs[1]
	Jump // goto Succs[0]
	Ret  // end of region; Srcs lists the function's live-out registers

	// Inter-thread communication over the synchronization array. Queue
	// selects the hardware queue. The .sync forms carry no operand and
	// have acquire/release memory semantics; they implement inter-thread
	// memory dependences.
	Produce     // queue[Queue] <- src0
	Consume     // dst = <-queue[Queue]
	ProduceSync // queue[Queue] <- token
	ConsumeSync // <-queue[Queue]

	numOps
)

var opNames = [numOps]string{
	Nop: "nop", Const: "const", Mov: "mov",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	Neg: "neg", Not: "not", Abs: "abs",
	CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt", CmpLE: "cmple",
	CmpGT: "cmpgt", CmpGE: "cmpge",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv",
	FNeg: "fneg", FAbs: "fabs", FSqrt: "fsqrt", FCmpLT: "fcmplt", FCmpGT: "fcmpgt",
	ItoF: "itof", FtoI: "ftoi",
	Load: "load", Store: "store",
	Br: "br", Jump: "jump", Ret: "ret",
	Produce: "produce", Consume: "consume",
	ProduceSync: "produce.sync", ConsumeSync: "consume.sync",
}

// String returns the assembler mnemonic for the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsTerminator reports whether the opcode ends a basic block.
func (op Op) IsTerminator() bool { return op == Br || op == Jump || op == Ret }

// IsBranch reports whether the opcode is a conditional branch.
func (op Op) IsBranch() bool { return op == Br }

// IsMemAccess reports whether the opcode reads or writes program memory.
func (op Op) IsMemAccess() bool { return op == Load || op == Store }

// IsComm reports whether the opcode is an inter-thread communication or
// synchronization instruction inserted by multi-threaded code generation.
func (op Op) IsComm() bool {
	return op == Produce || op == Consume || op == ProduceSync || op == ConsumeSync
}

// IsSync reports whether the opcode is a pure synchronization (memory
// dependence) instruction.
func (op Op) IsSync() bool { return op == ProduceSync || op == ConsumeSync }

// IsFloat reports whether the opcode executes on the floating-point units.
func (op Op) IsFloat() bool {
	switch op {
	case FAdd, FSub, FMul, FDiv, FNeg, FAbs, FSqrt, FCmpLT, FCmpGT, ItoF, FtoI:
		return true
	}
	return false
}

// HasDst reports whether instructions with this opcode define a register.
func (op Op) HasDst() bool {
	switch op {
	case Nop, Store, Br, Jump, Ret, Produce, ProduceSync, ConsumeSync:
		return false
	}
	return true
}

// NumSrcs returns the number of register sources the opcode reads. Ret is
// variadic (its sources are the live-out registers) and returns -1.
func (op Op) NumSrcs() int {
	switch op {
	case Nop, Const, Jump, ProduceSync, ConsumeSync, Consume:
		return 0
	case Mov, Neg, Not, Abs, FNeg, FAbs, FSqrt, ItoF, FtoI, Load, Br, Produce:
		return 1
	case Ret:
		return -1
	}
	return 2
}
