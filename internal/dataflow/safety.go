package dataflow

import "repro/internal/ir"

// Safety is the paper's thread-aware SAFE analysis (equations (1) and (2)):
// the set of registers a source thread T_s is guaranteed to hold the latest
// value of at each program point. Communication of a register dependence
// from T_s must be placed only at points where the register is SAFE
// (Property 3).
//
// Transfer (per instruction n, forward):
//
//	SAFE_out(n) = DEF_Ts(n) ∪ USE_Ts(n) ∪ (SAFE_in(n) − DEF(n))
//	SAFE_in(n)  = ∩ over predecessors p of SAFE_out(p)
//
// DEF_Ts/USE_Ts are n's defs/uses when n executes in T_s — n is assigned to
// T_s, or n is a branch relevant to T_s (relevant branches are duplicated
// into the thread, so the thread observes their operands). DEF(n) is n's
// definition regardless of thread.
//
// The transfer functions are distributive bit operations, so the greatest
// fixpoint (initializing interior points to the universal set) equals the
// meet-over-paths solution; we compute that rather than the pessimistic
// least fixpoint. Live-in registers are SAFE at entry: every thread starts
// with a copy of the region's live-ins.
type Safety struct {
	fn      *ir.Function
	inTs    func(*ir.Instr) bool
	safeIn  []RegSet // block ID -> SAFE before first instruction
	safeOut []RegSet
}

// ComputeSafety runs the SAFE analysis for the thread characterized by inTs:
// inTs(n) reports whether instruction n executes in T_s (assigned there or a
// branch duplicated there).
func ComputeSafety(f *ir.Function, inTs func(*ir.Instr) bool) *Safety {
	s := &Safety{fn: f, inTs: inTs}
	n := len(f.Blocks)
	max := f.MaxReg()
	s.safeIn = make([]RegSet, n)
	s.safeOut = make([]RegSet, n)
	for i := 0; i < n; i++ {
		s.safeIn[i] = NewRegSet(max)
		s.safeOut[i] = NewRegSet(max)
		s.safeIn[i].Fill()
		s.safeOut[i].Fill()
	}
	// Entry: only live-ins are safe.
	entry := f.Entry()
	s.safeIn[entry.ID].Clear()
	for _, p := range f.Params {
		s.safeIn[entry.ID].Add(p)
	}

	order := rpo(f)
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			in := s.safeIn[b.ID]
			if b != entry {
				for _, p := range b.Preds {
					if in.IntersectWith(s.safeOut[p.ID]) {
						changed = true
					}
				}
			}
			out := in.Clone()
			for _, instr := range b.Instrs {
				s.transfer(instr, out)
			}
			if s.safeOut[b.ID].IntersectWith(out) {
				changed = true
			}
		}
	}
	return s
}

// transfer applies one instruction's forward SAFE transfer.
func (s *Safety) transfer(in *ir.Instr, safe RegSet) {
	if d := in.Defs(); d != ir.NoReg {
		safe.Remove(d) // another thread's def makes the value stale...
	}
	if s.inTs(in) {
		if d := in.Defs(); d != ir.NoReg {
			safe.Add(d) // ...but T_s's own def or use refreshes it
		}
		for _, r := range in.Uses() {
			safe.Add(r)
		}
	}
}

// SafeIn returns the SAFE set before the first instruction of b.
func (s *Safety) SafeIn(b *ir.Block) RegSet { return s.safeIn[b.ID] }

// SafeOut returns the SAFE set after the terminator of b.
func (s *Safety) SafeOut(b *ir.Block) RegSet { return s.safeOut[b.ID] }

// BlockSafe returns SAFE-before sets for every instruction position of b:
// entry i is the set before b.Instrs[i]; entry len(b.Instrs) is SAFE at
// block exit. The slices are fresh copies.
func (s *Safety) BlockSafe(b *ir.Block) []RegSet {
	n := len(b.Instrs)
	out := make([]RegSet, n+1)
	cur := s.safeIn[b.ID].Clone()
	out[0] = cur.Clone()
	for i, instr := range b.Instrs {
		s.transfer(instr, cur)
		out[i+1] = cur.Clone()
	}
	return out
}
