package dataflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func TestRegSetBasics(t *testing.T) {
	s := NewRegSet(100)
	if !s.Empty() {
		t.Error("new set not empty")
	}
	s.Add(3)
	s.Add(77)
	if !s.Has(3) || !s.Has(77) || s.Has(4) {
		t.Error("membership wrong after Add")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	s.Remove(3)
	if s.Has(3) {
		t.Error("Remove failed")
	}
	got := s.Regs()
	if len(got) != 1 || got[0] != 77 {
		t.Errorf("Regs = %v, want [77]", got)
	}
}

// regSetFrom builds a set over registers 1..64 from a bitmask.
func regSetFrom(mask uint64) RegSet {
	s := NewRegSet(64)
	for i := 0; i < 64; i++ {
		if mask&(1<<i) != 0 {
			s.Add(ir.Reg(i + 1))
		}
	}
	return s
}

func TestRegSetAlgebraQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}

	unionCommutes := func(a, b uint64) bool {
		x, y := regSetFrom(a), regSetFrom(b)
		x2, y2 := regSetFrom(a), regSetFrom(b)
		x.UnionWith(y2)
		y.UnionWith(x2)
		return x.Equal(y)
	}
	if err := quick.Check(unionCommutes, cfg); err != nil {
		t.Errorf("union not commutative: %v", err)
	}

	intersectSubset := func(a, b uint64) bool {
		x, y := regSetFrom(a), regSetFrom(b)
		z := x.Clone()
		z.IntersectWith(y)
		for _, r := range z.Regs() {
			if !x.Has(r) || !y.Has(r) {
				return false
			}
		}
		return z.Len() <= x.Len() && z.Len() <= y.Len()
	}
	if err := quick.Check(intersectSubset, cfg); err != nil {
		t.Errorf("intersection not a subset: %v", err)
	}

	unionChangedIffGrew := func(a, b uint64) bool {
		x, y := regSetFrom(a), regSetFrom(b)
		before := x.Len()
		changed := x.UnionWith(y)
		return changed == (x.Len() > before)
	}
	if err := quick.Check(unionChangedIffGrew, cfg); err != nil {
		t.Errorf("UnionWith change reporting wrong: %v", err)
	}
}

// buildCountLoop builds:
//
//	entry: i=0; sum=0 -> loop
//	loop:  sum=sum+i; i=i+1; c = i<n ; br c loop, exit
//	exit:  ret sum
func buildCountLoop() (*ir.Function, map[string]ir.Reg) {
	b := ir.NewBuilder("count")
	n := b.Param()
	loop := b.Block("loop")
	exit := b.Block("exit")

	i := b.F.NewReg()
	sum := b.F.NewReg()
	b.ConstTo(i, 0)
	b.ConstTo(sum, 0)
	b.Jump(loop)

	b.SetBlock(loop)
	b.Op2To(sum, ir.Add, sum, i)
	one := b.Const(1)
	b.Op2To(i, ir.Add, i, one)
	c := b.CmpLT(i, n)
	b.Br(c, loop, exit)

	b.SetBlock(exit)
	b.Ret(sum)
	return b.F, map[string]ir.Reg{"n": n, "i": i, "sum": sum, "c": c}
}

func TestLivenessLoop(t *testing.T) {
	f, regs := buildCountLoop()
	l := ComputeLiveness(f, AllUses)
	loop := f.BlockByName("loop")
	exit := f.BlockByName("exit")

	for _, r := range []string{"n", "i", "sum"} {
		if !l.LiveIn(loop).Has(regs[r]) {
			t.Errorf("%s should be live into loop", r)
		}
	}
	if l.LiveIn(exit).Has(regs["i"]) {
		t.Error("i must be dead at exit")
	}
	if !l.LiveIn(exit).Has(regs["sum"]) {
		t.Error("sum must be live at exit (live-out)")
	}
	if l.LiveIn(f.Entry()).Has(regs["i"]) {
		t.Error("i is defined before use; must not be live at entry")
	}
	if !l.LiveIn(f.Entry()).Has(regs["n"]) {
		t.Error("parameter n must be live at entry")
	}
}

func TestBlockLivePositions(t *testing.T) {
	f, regs := buildCountLoop()
	l := ComputeLiveness(f, AllUses)
	loop := f.BlockByName("loop")
	pos := l.BlockLive(loop)
	if len(pos) != len(loop.Instrs)+1 {
		t.Fatalf("BlockLive returned %d positions, want %d", len(pos), len(loop.Instrs)+1)
	}
	// Before the compare (second to last instr), c is dead; after it
	// (before the Br), c is live.
	brIdx := len(loop.Instrs) - 1
	if pos[brIdx-1].Has(regs["c"]) {
		t.Error("c live before its definition")
	}
	if !pos[brIdx].Has(regs["c"]) {
		t.Error("c dead right before the branch that uses it")
	}
}

func TestThreadAwareLivenessFiltersUses(t *testing.T) {
	f, regs := buildCountLoop()
	// Thread T_t owns nothing: no uses at all -> nothing live.
	none := ComputeLiveness(f, func(*ir.Instr) []ir.Reg { return nil })
	for _, b := range f.Blocks {
		if !none.LiveIn(b).Empty() {
			t.Fatalf("no-uses liveness nonempty in %s", b.Name)
		}
	}
	// T_t owns only the Ret: only sum's range to Ret is live.
	retOnly := ComputeLiveness(f, func(in *ir.Instr) []ir.Reg {
		if in.Op == ir.Ret {
			return in.Uses()
		}
		return nil
	})
	loop := f.BlockByName("loop")
	if !retOnly.LiveOut(loop).Has(regs["sum"]) {
		t.Error("sum should be live w.r.t. Ret-owning thread out of the loop block")
	}
	if retOnly.LiveIn(loop).Has(regs["sum"]) {
		t.Error("sum is redefined at loop top; not live in w.r.t. Ret-owning thread")
	}
	if retOnly.LiveIn(loop).Has(regs["n"]) {
		t.Error("n must not be live w.r.t. Ret-owning thread")
	}
}

func TestReachingDefsChains(t *testing.T) {
	f, regs := buildCountLoop()
	rd := ComputeReachingDefs(f)
	chains := ComputeChainsByUse(rd)

	// The Add that uses i (sum = sum+i) must see two defs of i: the
	// initializing const and the loop increment (loop-carried).
	var addUse UseChain
	found := false
	for _, uc := range chains {
		if uc.Use.Op == ir.Add && uc.Reg == regs["i"] && uc.Use.Dst == regs["sum"] {
			addUse = uc
			found = true
		}
	}
	if !found {
		t.Fatal("no chain found for use of i in sum+=i")
	}
	if len(addUse.Defs) != 2 {
		t.Fatalf("defs reaching i's use = %d, want 2 (init + loop-carried)", len(addUse.Defs))
	}

	// The compare's use of n must chain to the parameter pseudo-def (nil).
	for _, uc := range chains {
		if uc.Reg == regs["n"] {
			if len(uc.Defs) != 1 || uc.Defs[0] != nil {
				t.Errorf("n's defs = %v, want [param pseudo-def]", uc.Defs)
			}
		}
	}
}

// ComputeChainsByUse is a test helper wrapping Chains with AllUses.
func ComputeChainsByUse(rd *ReachingDefs) []UseChain { return rd.Chains(AllUses) }

func TestSafetyLoopLiveOut(t *testing.T) {
	// The Fig. 4 pattern: T_s defines r inside a loop; r stays SAFE for
	// T_s after the loop because no other thread defines it.
	f, regs := buildCountLoop()
	// T_s owns everything except Ret.
	safety := ComputeSafety(f, func(in *ir.Instr) bool { return in.Op != ir.Ret })
	exit := f.BlockByName("exit")
	if !safety.SafeIn(exit).Has(regs["sum"]) {
		t.Error("sum should be SAFE for T_s after the loop")
	}
	if !safety.SafeIn(f.BlockByName("loop")).Has(regs["n"]) {
		t.Error("live-in n should be SAFE throughout")
	}
}

func TestSafetyKilledByOtherThreadDef(t *testing.T) {
	// r defined by T_s then redefined by T_t: after T_t's def, r is no
	// longer SAFE for T_s.
	b := ir.NewBuilder("kill")
	r := b.F.NewReg()
	b.ConstTo(r, 1) // T_s
	mid := b.Block("mid")
	b.Jump(mid)
	b.SetBlock(mid)
	b.ConstTo(r, 2) // T_t (not owned by T_s)
	exit := b.Block("exit")
	b.Jump(exit)
	b.SetBlock(exit)
	b.Ret(r)
	f := b.F

	entryConst := f.Entry().Instrs[0]
	safety := ComputeSafety(f, func(in *ir.Instr) bool { return in == entryConst })
	if !safety.SafeIn(mid).Has(r) {
		t.Error("r should be SAFE before T_t's redefinition")
	}
	if safety.SafeIn(exit).Has(r) {
		t.Error("r must not be SAFE after T_t redefines it")
	}
}

func TestSafetyDiamondIntersection(t *testing.T) {
	// r redefined by T_t on one arm only: not SAFE at the join.
	b := ir.NewBuilder("dia")
	p := b.Param()
	r := b.F.NewReg()
	b.ConstTo(r, 5) // T_s def
	then := b.Block("then")
	els := b.Block("else")
	join := b.Block("join")
	b.Br(p, then, els)
	b.SetBlock(then)
	b.ConstTo(r, 6) // T_t def on one arm
	b.Jump(join)
	b.SetBlock(els)
	b.Jump(join)
	b.SetBlock(join)
	b.Ret(r)
	f := b.F

	tsDef := f.Entry().Instrs[0]
	safety := ComputeSafety(f, func(in *ir.Instr) bool { return in == tsDef })
	if safety.SafeIn(join).Has(r) {
		t.Error("r must not be SAFE at join (stale on one path)")
	}
	if !safety.SafeIn(els).Has(r) {
		t.Error("r should be SAFE on the untouched arm")
	}
}

func TestBlockSafePositions(t *testing.T) {
	f, regs := buildCountLoop()
	safety := ComputeSafety(f, func(in *ir.Instr) bool { return true })
	loop := f.BlockByName("loop")
	pos := safety.BlockSafe(loop)
	if len(pos) != len(loop.Instrs)+1 {
		t.Fatalf("BlockSafe returned %d positions, want %d", len(pos), len(loop.Instrs)+1)
	}
	// c is safe only after the compare defines it.
	cmpIdx := len(loop.Instrs) - 2
	if pos[cmpIdx].Has(regs["c"]) {
		// Before the compare in the first iteration c is undefined, but
		// on back edges it was defined by T_s, so it is actually safe.
		// The entry path intersects it away only at loop entry; inside
		// the block before the compare the back-edge value may persist.
		// What must hold: after the compare it is safe.
		_ = cmpIdx
	}
	if !pos[cmpIdx+1].Has(regs["c"]) {
		t.Error("c must be SAFE right after its definition")
	}
}
