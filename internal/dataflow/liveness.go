package dataflow

import "repro/internal/ir"

// Liveness holds per-block live-in/live-out register sets. The analysis is
// parameterized by a "use" function so the same machinery serves both
// classic liveness (all uses) and the paper's thread-aware variant — the
// live range of a register "considering only the uses of r in the
// instructions assigned to T_t" (Section 3.1.1), optionally extended with
// the operand uses of branches relevant to T_t.
type Liveness struct {
	fn      *ir.Function
	uses    func(*ir.Instr) []ir.Reg
	liveIn  []RegSet // block ID -> live before first instruction
	liveOut []RegSet // block ID -> live after terminator
}

// AllUses is the use function for classic liveness: every source register of
// every instruction counts as a use.
func AllUses(in *ir.Instr) []ir.Reg { return in.Uses() }

// ComputeLiveness runs the backward may analysis. uses selects which source
// registers of each instruction count as uses (defs always kill).
func ComputeLiveness(f *ir.Function, uses func(*ir.Instr) []ir.Reg) *Liveness {
	l := &Liveness{fn: f, uses: uses}
	n := len(f.Blocks)
	max := f.MaxReg()
	l.liveIn = make([]RegSet, n)
	l.liveOut = make([]RegSet, n)
	for i := 0; i < n; i++ {
		l.liveIn[i] = NewRegSet(max)
		l.liveOut[i] = NewRegSet(max)
	}
	// Iterate in postorder (reverse of RPO) until stable.
	// Worklist over blocks keeps it near-linear for reducible CFGs.
	order := reversed(rpo(f))
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			out := l.liveOut[b.ID]
			for _, s := range b.Succs {
				if out.UnionWith(l.liveIn[s.ID]) {
					changed = true
				}
			}
			in := out.Clone()
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				l.transfer(b.Instrs[i], in)
			}
			if !in.Equal(l.liveIn[b.ID]) {
				l.liveIn[b.ID].CopyFrom(in)
				changed = true
			}
		}
	}
	return l
}

// transfer applies one instruction's backward transfer to the live set.
func (l *Liveness) transfer(in *ir.Instr, live RegSet) {
	if d := in.Defs(); d != ir.NoReg {
		live.Remove(d)
	}
	for _, r := range l.uses(in) {
		live.Add(r)
	}
}

// LiveIn returns the registers live before the first instruction of b.
func (l *Liveness) LiveIn(b *ir.Block) RegSet { return l.liveIn[b.ID] }

// LiveOut returns the registers live after the terminator of b.
func (l *Liveness) LiveOut(b *ir.Block) RegSet { return l.liveOut[b.ID] }

// BlockLive returns live-before sets for every instruction position of b:
// entry i holds the set live immediately before b.Instrs[i], and entry
// len(b.Instrs) holds the block's live-out. The slices are fresh copies.
func (l *Liveness) BlockLive(b *ir.Block) []RegSet {
	n := len(b.Instrs)
	out := make([]RegSet, n+1)
	cur := l.liveOut[b.ID].Clone()
	out[n] = cur.Clone()
	for i := n - 1; i >= 0; i-- {
		l.transfer(b.Instrs[i], cur)
		out[i] = cur.Clone()
	}
	return out
}

func rpo(f *ir.Function) []*ir.Block {
	seen := make([]bool, len(f.Blocks))
	var post []*ir.Block
	var dfs func(*ir.Block)
	dfs = func(b *ir.Block) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

func reversed(bs []*ir.Block) []*ir.Block {
	out := make([]*ir.Block, len(bs))
	for i, b := range bs {
		out[len(bs)-1-i] = b
	}
	return out
}
