// Package dataflow implements the bit-vector data-flow analyses used by the
// GMT scheduling framework: classic liveness and reaching definitions for
// PDG construction, and the paper's thread-aware analyses — liveness with
// respect to a target thread and the SAFE analysis of equations (1)–(2) —
// that drive COCO's communication placement.
package dataflow

import (
	"math/bits"

	"repro/internal/ir"
)

// RegSet is a bit set over virtual registers. The zero value is unusable;
// allocate with NewRegSet.
type RegSet []uint64

// NewRegSet returns an empty set able to hold registers 0..max.
func NewRegSet(max ir.Reg) RegSet {
	return make(RegSet, (int(max)+64)/64)
}

// Add inserts r.
func (s RegSet) Add(r ir.Reg) { s[int(r)/64] |= 1 << (uint(r) % 64) }

// Remove deletes r.
func (s RegSet) Remove(r ir.Reg) { s[int(r)/64] &^= 1 << (uint(r) % 64) }

// Has reports whether r is in the set.
func (s RegSet) Has(r ir.Reg) bool { return s[int(r)/64]&(1<<(uint(r)%64)) != 0 }

// Clone returns an independent copy.
func (s RegSet) Clone() RegSet { return append(RegSet(nil), s...) }

// CopyFrom overwrites s with o (same capacity required).
func (s RegSet) CopyFrom(o RegSet) { copy(s, o) }

// Clear empties the set.
func (s RegSet) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Fill makes the set universal over its capacity.
func (s RegSet) Fill() {
	for i := range s {
		s[i] = ^uint64(0)
	}
}

// UnionWith adds all elements of o, reporting whether s changed.
func (s RegSet) UnionWith(o RegSet) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// IntersectWith removes elements not in o, reporting whether s changed.
func (s RegSet) IntersectWith(o RegSet) bool {
	changed := false
	for i := range s {
		n := s[i] & o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Equal reports whether the sets hold the same registers.
func (s RegSet) Equal(o RegSet) bool {
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Empty reports whether the set has no elements.
func (s RegSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of registers in the set.
func (s RegSet) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Regs returns the set's elements in increasing order.
func (s RegSet) Regs() []ir.Reg {
	var out []ir.Reg
	for i, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, ir.Reg(i*64+b))
			w &= w - 1
		}
	}
	return out
}
