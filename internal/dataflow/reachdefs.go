package dataflow

import "repro/internal/ir"

// defSet is a bit set over definition sites, indexed by a dense def number.
type defSet []uint64

func newDefSet(n int) defSet { return make(defSet, (n+63)/64) }

func (s defSet) add(i int)      { s[i/64] |= 1 << (uint(i) % 64) }
func (s defSet) has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }
func (s defSet) clone() defSet  { return append(defSet(nil), s...) }

func (s defSet) unionWith(o defSet) bool {
	changed := false
	for i := range s {
		if n := s[i] | o[i]; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

func (s defSet) andNot(o defSet) {
	for i := range s {
		s[i] &^= o[i]
	}
}

// ReachingDefs computes, for every use of a register, the set of definition
// instructions whose values may reach it. These def→use chains are the
// register data-dependence arcs of the PDG. Live-in registers (function
// parameters) have an implicit definition at function entry, represented by
// a nil *ir.Instr in chain results.
type ReachingDefs struct {
	fn       *ir.Function
	defs     []*ir.Instr // def number -> defining instruction
	defNum   map[*ir.Instr]int
	defsOf   map[ir.Reg]defSet // register -> set of its def numbers
	paramDef map[ir.Reg]int    // live-in pseudo-def numbers
	reachIn  []defSet          // block ID -> defs reaching block entry
}

// ComputeReachingDefs runs the forward may analysis over f.
func ComputeReachingDefs(f *ir.Function) *ReachingDefs {
	rd := &ReachingDefs{
		fn:       f,
		defNum:   map[*ir.Instr]int{},
		defsOf:   map[ir.Reg]defSet{},
		paramDef: map[ir.Reg]int{},
	}
	// Number definitions. Pseudo-defs for params come first.
	nDefs := 0
	for range f.Params {
		rd.defs = append(rd.defs, nil)
		nDefs++
	}
	f.Instrs(func(in *ir.Instr) {
		if in.Defs() != ir.NoReg {
			rd.defNum[in] = nDefs
			rd.defs = append(rd.defs, in)
			nDefs++
		}
	})
	ensure := func(r ir.Reg) defSet {
		s, ok := rd.defsOf[r]
		if !ok {
			s = newDefSet(nDefs)
			rd.defsOf[r] = s
		}
		return s
	}
	for i, p := range f.Params {
		rd.paramDef[p] = i
		ensure(p).add(i)
	}
	f.Instrs(func(in *ir.Instr) {
		if d := in.Defs(); d != ir.NoReg {
			ensure(d).add(rd.defNum[in])
		}
	})

	// Per-block gen/kill.
	n := len(f.Blocks)
	gen := make([]defSet, n)
	kill := make([]defSet, n)
	for _, b := range f.Blocks {
		g, k := newDefSet(nDefs), newDefSet(nDefs)
		for _, in := range b.Instrs {
			d := in.Defs()
			if d == ir.NoReg {
				continue
			}
			all := rd.defsOf[d]
			k.unionWith(all)
			g.andNot(all)
			g.add(rd.defNum[in])
		}
		gen[b.ID], kill[b.ID] = g, k
	}

	rd.reachIn = make([]defSet, n)
	reachOut := make([]defSet, n)
	for i := 0; i < n; i++ {
		rd.reachIn[i] = newDefSet(nDefs)
		reachOut[i] = newDefSet(nDefs)
	}
	// Parameters reach the entry.
	for _, p := range f.Params {
		rd.reachIn[f.Entry().ID].add(rd.paramDef[p])
	}
	order := rpo(f)
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			in := rd.reachIn[b.ID]
			for _, p := range b.Preds {
				if in.unionWith(reachOut[p.ID]) {
					changed = true
				}
			}
			out := in.clone()
			out.andNot(kill[b.ID])
			out.unionWith(gen[b.ID])
			if reachOut[b.ID].unionWith(out) {
				changed = true
			}
		}
	}
	return rd
}

// UseChain holds the definitions that may reach one register use.
type UseChain struct {
	Use  *ir.Instr
	Reg  ir.Reg
	Defs []*ir.Instr // nil entries denote the live-in pseudo-definition
}

// Chains returns the def→use chains for every register use in the function,
// visiting blocks in layout order. uses selects which sources of an
// instruction count (pass AllUses for every source).
func (rd *ReachingDefs) Chains(uses func(*ir.Instr) []ir.Reg) []UseChain {
	var out []UseChain
	for _, b := range rd.fn.Blocks {
		cur := rd.reachIn[b.ID].clone()
		for _, in := range b.Instrs {
			for _, r := range dedupRegs(uses(in)) {
				ds := rd.defsOf[r]
				if ds == nil {
					continue
				}
				uc := UseChain{Use: in, Reg: r}
				for i, def := range rd.defs {
					if ds.has(i) && cur.has(i) {
						uc.Defs = append(uc.Defs, def)
					}
				}
				if len(uc.Defs) > 0 {
					out = append(out, uc)
				}
			}
			if d := in.Defs(); d != ir.NoReg {
				cur.andNot(rd.defsOf[d])
				cur.add(rd.defNum[in])
			}
		}
	}
	return out
}

func dedupRegs(rs []ir.Reg) []ir.Reg {
	if len(rs) < 2 {
		return rs
	}
	out := rs[:0:0]
	for i, r := range rs {
		dup := false
		for _, q := range rs[:i] {
			if q == r {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, r)
		}
	}
	return out
}
