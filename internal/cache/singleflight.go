package cache

import (
	"sync"
	"sync/atomic"
)

// Group deduplicates concurrent work on the same key: while one caller
// (the leader) computes, every other caller with the same key blocks and
// receives the leader's exact result bytes instead of computing again.
// Completed flights are forgotten immediately, so a later request for the
// same key computes afresh (or, in the serving layer, hits the cache the
// leader filled).
type Group struct {
	mu     sync.Mutex
	flight map[string]*flight
	merged atomic.Int64
}

type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Do runs fn once per key among concurrent callers. It returns fn's
// result, and merged=true for the callers that waited on another's
// flight instead of running fn themselves. The returned bytes are shared
// between the leader and all merged callers and must not be mutated.
func (g *Group) Do(key string, fn func() ([]byte, error)) (val []byte, err error, merged bool) {
	g.mu.Lock()
	if g.flight == nil {
		g.flight = map[string]*flight{}
	}
	if f, ok := g.flight[key]; ok {
		// Counted at join time, so Merged() reflects callers currently
		// blocked on a flight as well as completed merges.
		g.merged.Add(1)
		g.mu.Unlock()
		<-f.done
		return f.val, f.err, true
	}
	f := &flight{done: make(chan struct{})}
	g.flight[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.flight, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, f.err, false
}

// Merged returns the number of calls that were deduplicated into another
// caller's flight since the group was created.
func (g *Group) Merged() int64 { return g.merged.Load() }
