package cache

import (
	"os"
	"path/filepath"
	"strings"
)

// recoverScan is the open-time crash-recovery pass. A crashed or failed
// Put can leave two kinds of debris: orphaned `.tmp-*` files (the write
// never reached its rename — they are invisible to Get and eviction and
// would otherwise leak forever) and entries whose envelope no longer
// validates (a torn or lost post-rename write). The scan removes the
// former (counted under `recovered`), quarantines the latter (counted
// under `corrupt` and `quarantined` — the same accounting a Get-time
// discovery uses), and returns the number of valid entries, which
// becomes the rebuilt disk-entry count.
//
// Individual unreadable or unmovable files never fail the open — the
// worst case is an entry that will be handled again at Get time. Only a
// failure to list the root directory itself is an error.
func (c *Cache) recoverScan() (int, error) {
	shards, err := c.fs.ReadDir(c.opts.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	valid := 0
	var recovered int64
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		sdir := filepath.Join(c.opts.Dir, shard.Name())
		files, err := c.fs.ReadDir(sdir)
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			path := filepath.Join(sdir, f.Name())
			if strings.HasPrefix(f.Name(), ".tmp-") {
				if c.fs.Remove(path) == nil {
					recovered++
				}
				continue
			}
			raw, err := c.readFile(path, nil)
			if err != nil {
				// Unreadable at open: quarantine rather than count an
				// entry we may never be able to serve.
				c.opts.Metrics.Counter("corrupt").Inc()
				c.quarantine(path, f.Name(), nil)
				continue
			}
			// The file name is the path key, so decodeEntry also catches
			// entries filed under the wrong name.
			if _, ok := decodeEntry(raw, f.Name()); !ok {
				c.opts.Metrics.Counter("corrupt").Inc()
				c.quarantine(path, f.Name(), nil)
				continue
			}
			valid++
		}
	}
	c.opts.Metrics.Counter("recovered").Add(recovered)
	return valid, nil
}
