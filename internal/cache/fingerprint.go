package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
)

// Hasher builds a collision-resistant fingerprint from labeled fields.
// Every field is length-prefixed before hashing, so no concatenation of
// names and values is ambiguous ("ab"+"c" never hashes like "a"+"bc"),
// and the schema version is folded in first — bumping it invalidates
// every previously issued key at once, which is the cache's versioning
// rule: any change to what a key's payload means is a schema bump, never
// an in-place reinterpretation.
type Hasher struct {
	h hash.Hash
}

// NewHasher starts a fingerprint bound to the given payload schema
// version.
func NewHasher(schema int) *Hasher {
	h := &Hasher{h: sha256.New()}
	h.Int("schema", int64(schema))
	return h
}

// Field folds one labeled string into the fingerprint.
func (h *Hasher) Field(name, value string) {
	fmt.Fprintf(h.h, "%d:%s=%d:%s;", len(name), name, len(value), value)
}

// Int folds one labeled integer into the fingerprint.
func (h *Hasher) Int(name string, v int64) {
	h.Field(name, fmt.Sprintf("%d", v))
}

// Bool folds one labeled boolean into the fingerprint.
func (h *Hasher) Bool(name string, v bool) {
	h.Field(name, fmt.Sprintf("%t", v))
}

// Int64s folds a labeled integer slice into the fingerprint.
func (h *Hasher) Int64s(name string, vs []int64) {
	fmt.Fprintf(h.h, "%d:%s=[%d]", len(name), name, len(vs))
	for _, v := range vs {
		fmt.Fprintf(h.h, "%d,", v)
	}
	h.h.Write([]byte(";"))
}

// Sum returns the fingerprint as 64 hex characters.
func (h *Hasher) Sum() string {
	return hex.EncodeToString(h.h.Sum(nil))
}
