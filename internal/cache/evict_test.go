package cache

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/vfs"
)

// entryPaths collects every on-disk entry path, sorted.
func entryPaths(t *testing.T, dir string) []string {
	t.Helper()
	var paths []string
	if err := walkEntries(vfs.OS{}, dir, func(p string, _ os.FileInfo) {
		paths = append(paths, p)
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	return paths
}

// stampAll gives every current entry the same modification time, creating
// the mtime tie the eviction order must break deterministically.
func stampAll(t *testing.T, dir string, mt time.Time) {
	t.Helper()
	for _, p := range entryPaths(t, dir) {
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDiskEvictionSharedMtimeTieBreak: when candidates share a
// modification time (coarse filesystem clocks make this common), the
// victim is chosen by path — deterministically — and exactly one entry
// goes per over-bound insert.
func TestDiskEvictionSharedMtimeTieBreak(t *testing.T) {
	victim := func(order []string) string {
		dir := t.TempDir()
		reg := obs.NewRegistry()
		c := mustNew(t, Options{Dir: dir, DiskEntries: 3, MemEntries: 1, Metrics: reg.Scope("cache")})
		for _, k := range order {
			if err := c.Put(k, []byte(k)); err != nil {
				t.Fatal(err)
			}
		}
		old := entryPaths(t, dir)
		stampAll(t, dir, time.Now().Add(-time.Hour))
		if err := c.Put("k3", []byte("k3")); err != nil {
			t.Fatal(err)
		}
		if v := reg.Counter("cache.evict.disk").Value(); v != 1 {
			t.Fatalf("evict.disk = %d, want 1", v)
		}
		if n, _ := countEntries(dir); n != 3 {
			t.Fatalf("disk entries = %d, want 3", n)
		}
		if c.disk != 3 {
			t.Fatalf("tracked disk count = %d, want 3", c.disk)
		}
		// The victim must be the lexicographically smallest of the tied
		// entries (the fresh k3 entry is newer and never a candidate).
		gone := ""
		for _, p := range old {
			if _, err := os.Stat(p); os.IsNotExist(err) {
				if gone != "" {
					t.Fatalf("two entries evicted: %s and %s", gone, p)
				}
				gone = p
			}
		}
		if gone != old[0] {
			t.Fatalf("evicted %q, want the smallest tied path %q", gone, old[0])
		}
		rel, err := filepath.Rel(dir, gone)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}

	// Insertion order must not matter: same keys, same tie, same victim.
	a := victim([]string{"k0", "k1", "k2"})
	b := victim([]string{"k2", "k0", "k1"})
	if a != b {
		t.Fatalf("tie-break depends on insertion order: %q vs %q", a, b)
	}
}

// TestDiskEvictOverRequestNoDoubleDelete: asking for more evictions than
// entries removes each entry exactly once and never drives the tracked
// count negative — a double-delete would make the counter drift and later
// bounds checks wrong.
func TestDiskEvictOverRequestNoDoubleDelete(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	c := mustNew(t, Options{Dir: dir, DiskEntries: 2, MemEntries: 1, Metrics: reg.Scope("cache")})
	for i := 0; i < 2; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	stampAll(t, dir, time.Now().Add(-time.Hour))

	c.evictDisk(5)
	if v := reg.Counter("cache.evict.disk").Value(); v != 2 {
		t.Fatalf("evict.disk = %d, want 2 (one per existing entry)", v)
	}
	if n, _ := countEntries(dir); n != 0 {
		t.Fatalf("disk entries = %d, want 0", n)
	}
	if c.disk != 0 {
		t.Fatalf("tracked disk count = %d, want 0", c.disk)
	}

	// A second sweep over the empty store must be a no-op, not a drift.
	c.evictDisk(3)
	if v := reg.Counter("cache.evict.disk").Value(); v != 2 {
		t.Fatalf("evict.disk after empty sweep = %d, want 2", v)
	}
	if c.disk != 0 {
		t.Fatalf("tracked disk count after empty sweep = %d, want 0", c.disk)
	}
}

// TestSingleflightJoinCountingUnderCancellation: a join is counted when
// the caller blocks on the flight, not when the flight succeeds — so a
// flight that ends in cancellation still shows the join, the joiner gets
// the leader's error, and the completed flight is forgotten either way.
func TestSingleflightJoinCountingUnderCancellation(t *testing.T) {
	var g Group
	started := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, err, _ := g.Do("key", func() ([]byte, error) {
			close(started)
			<-release
			return nil, context.Canceled
		})
		leaderDone <- err
	}()
	<-started

	joinerDone := make(chan struct{})
	var jerr error
	var jmerged bool
	go func() {
		_, jerr, jmerged = g.Do("key", func() ([]byte, error) {
			t.Error("joiner ran the flight function")
			return nil, nil
		})
		close(joinerDone)
	}()

	// Join-time counting: the merge is visible while the flight is still
	// open (and about to be cancelled).
	for g.Merged() != 1 {
		runtime.Gosched()
	}
	close(release)
	<-joinerDone

	if err := <-leaderDone; err != context.Canceled {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	if !jmerged {
		t.Fatal("joiner was not marked merged")
	}
	if jerr != context.Canceled {
		t.Fatalf("joiner error = %v, want the leader's context.Canceled", jerr)
	}
	if g.Merged() != 1 {
		t.Fatalf("Merged = %d, want 1 (completion must not re-count)", g.Merged())
	}
	// The cancelled flight is forgotten: a fresh call runs fresh.
	ran := false
	_, _, merged := g.Do("key", func() ([]byte, error) { ran = true; return nil, nil })
	if merged || !ran {
		t.Fatalf("post-cancellation call merged=%v ran=%v, want fresh execution", merged, ran)
	}
}
