// Package cache is the persistent, content-addressed artifact cache
// behind scheduling-as-a-service (cmd/gmtserve): response payloads are
// keyed by a fingerprint of everything that determines their bytes (IR
// content hash × partitioner × options × schema version, see Hasher) and
// stored in two layers — a bounded in-memory LRU in front of an on-disk
// store that survives process restarts.
//
// Every stored payload is wrapped in a checksummed envelope; a truncated,
// garbage, or tampered entry is indistinguishable from a miss (counted,
// deleted, and recomputed by the caller — never served). Writes are
// atomic (temp file + rename), so a crashed writer also degrades to a
// miss rather than a corrupt read. The cache stores opaque bytes and
// never re-serializes them, which is what lets the serving layer promise
// byte-identical responses whether a request is served cold, warm from
// memory, warm from disk, or merged into another request's flight (see
// Group).
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
)

// entryMagic versions the on-disk envelope (not the payload schema —
// that is the caller's SchemaVersion, hashed into the key). Bump it only
// if the envelope framing itself changes; old entries then read as
// corrupt, i.e. misses.
const entryMagic = "gmtcache1"

// Options configures a Cache.
type Options struct {
	// Dir is the on-disk store root; "" disables the disk layer (the
	// cache is then memory-only and does not survive restarts).
	Dir string
	// MemEntries bounds the in-memory LRU layer; <= 0 means 1024.
	MemEntries int
	// DiskEntries bounds the on-disk store; <= 0 means unbounded. When
	// the bound is exceeded the oldest entries (by modification time)
	// are evicted. Eviction order never affects response bytes — an
	// evicted entry is simply recomputed.
	DiskEntries int
	// Metrics, when non-nil, receives the cache counters: hit.mem,
	// hit.disk, miss, put, corrupt, evict.mem, evict.disk.
	Metrics *obs.Scope
}

// Cache is a two-layer (memory LRU + disk) content-addressed byte store.
// All methods are safe for concurrent use.
type Cache struct {
	opts Options

	mu   sync.Mutex
	mem  map[string]*list.Element
	lru  list.List // front = most recently used
	disk int       // tracked entry count when DiskEntries > 0
}

type memEntry struct {
	key     string
	payload []byte
}

// New opens (creating if needed) a cache rooted at opts.Dir.
func New(opts Options) (*Cache, error) {
	if opts.MemEntries <= 0 {
		opts.MemEntries = 1024
	}
	c := &Cache{opts: opts, mem: map[string]*list.Element{}}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
		if opts.DiskEntries > 0 {
			n, err := countEntries(opts.Dir)
			if err != nil {
				return nil, fmt.Errorf("cache: %w", err)
			}
			c.disk = n
		}
	}
	return c, nil
}

// pathKey is the content address of a key: its SHA-256, in hex. Keys are
// usually already fingerprints (see Hasher), but hashing again makes any
// string — including ones with separators or newlines — a safe filename.
func pathKey(key string) string {
	s := sha256.Sum256([]byte(key))
	return hex.EncodeToString(s[:])
}

// entryPath shards entries over 256 subdirectories by hash prefix.
func (c *Cache) entryPath(pk string) string {
	return filepath.Join(c.opts.Dir, pk[:2], pk)
}

// Get returns the payload stored under key. The second result reports
// whether the key was present (in either layer) with a valid checksum; a
// corrupt or truncated disk entry is deleted and reported as a miss.
// The returned slice is the caller's to keep.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.mem[key]; ok {
		c.lru.MoveToFront(el)
		p := el.Value.(*memEntry).payload
		out := append([]byte(nil), p...)
		c.mu.Unlock()
		c.opts.Metrics.Counter("hit.mem").Inc()
		return out, true
	}
	c.mu.Unlock()

	if c.opts.Dir == "" {
		c.opts.Metrics.Counter("miss").Inc()
		return nil, false
	}
	pk := pathKey(key)
	raw, err := os.ReadFile(c.entryPath(pk))
	if err != nil {
		c.opts.Metrics.Counter("miss").Inc()
		return nil, false
	}
	payload, ok := decodeEntry(raw, pk)
	if !ok {
		// Truncated or garbage entry: treat as a miss and drop the file
		// so the next Put rewrites it cleanly.
		c.opts.Metrics.Counter("corrupt").Inc()
		c.opts.Metrics.Counter("miss").Inc()
		if os.Remove(c.entryPath(pk)) == nil && c.opts.DiskEntries > 0 {
			c.mu.Lock()
			c.disk--
			c.mu.Unlock()
		}
		return nil, false
	}
	c.insertMem(key, payload)
	c.opts.Metrics.Counter("hit.disk").Inc()
	return append([]byte(nil), payload...), true
}

// Put stores payload under key in both layers. The payload is copied;
// later mutation of the argument does not affect the cache.
func (c *Cache) Put(key string, payload []byte) error {
	p := append([]byte(nil), payload...)
	c.insertMem(key, p)
	c.opts.Metrics.Counter("put").Inc()
	if c.opts.Dir == "" {
		return nil
	}
	pk := pathKey(key)
	path := c.entryPath(pk)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	_, statErr := os.Stat(path) // pre-existing entry? (overwrite ≠ growth)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	_, werr := tmp.Write(encodeEntry(p, pk))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: writing %s: %w", pk[:12], werr)
	}
	if c.opts.DiskEntries > 0 && statErr != nil {
		c.mu.Lock()
		c.disk++
		over := c.disk - c.opts.DiskEntries
		c.mu.Unlock()
		if over > 0 {
			c.evictDisk(over)
		}
	}
	return nil
}

// insertMem adds (or refreshes) a memory-layer entry, evicting from the
// LRU tail past the bound.
func (c *Cache) insertMem(key string, payload []byte) {
	c.mu.Lock()
	if el, ok := c.mem[key]; ok {
		el.Value.(*memEntry).payload = payload
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.mem[key] = c.lru.PushFront(&memEntry{key: key, payload: payload})
	var evicted int64
	for c.lru.Len() > c.opts.MemEntries {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.mem, tail.Value.(*memEntry).key)
		evicted++
	}
	c.mu.Unlock()
	c.opts.Metrics.Counter("evict.mem").Add(evicted)
}

// MemLen returns the number of entries in the memory layer.
func (c *Cache) MemLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// evictDisk removes the n oldest on-disk entries by modification time.
func (c *Cache) evictDisk(n int) {
	type aged struct {
		path string
		mod  int64
	}
	var entries []aged
	walkEntries(c.opts.Dir, func(path string, info os.FileInfo) {
		entries = append(entries, aged{path: path, mod: info.ModTime().UnixNano()})
	})
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].mod != entries[j].mod {
			return entries[i].mod < entries[j].mod
		}
		return entries[i].path < entries[j].path
	})
	var evicted int64
	for i := 0; i < n && i < len(entries); i++ {
		if os.Remove(entries[i].path) == nil {
			evicted++
		}
	}
	c.mu.Lock()
	c.disk -= int(evicted)
	c.mu.Unlock()
	c.opts.Metrics.Counter("evict.disk").Add(evicted)
}

// encodeEntry wraps a payload in the checksummed envelope:
//
//	gmtcache1 <path-key> <payload-len> <payload-sha256>\n<payload>
func encodeEntry(payload []byte, pk string) []byte {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d %s\n", entryMagic, pk, len(payload), hex.EncodeToString(sum[:]))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// decodeEntry validates an envelope read from disk: magic, key binding,
// length, and payload checksum must all match, otherwise the entry is
// corrupt.
func decodeEntry(raw []byte, pk string) ([]byte, bool) {
	nl := -1
	for i, b := range raw {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, false
	}
	fields := strings.Split(string(raw[:nl]), " ")
	if len(fields) != 4 || fields[0] != entryMagic || fields[1] != pk {
		return nil, false
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil || n < 0 {
		return nil, false
	}
	payload := raw[nl+1:]
	if len(payload) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[3] {
		return nil, false
	}
	return payload, true
}

// countEntries counts on-disk entries under root.
func countEntries(root string) (int, error) {
	n := 0
	err := walkEntries(root, func(string, os.FileInfo) { n++ })
	return n, err
}

// walkEntries visits every entry file under root (skipping temp files).
func walkEntries(root string, visit func(path string, info os.FileInfo)) error {
	shards, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(root, shard.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() || strings.HasPrefix(f.Name(), ".tmp-") {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			visit(filepath.Join(root, shard.Name(), f.Name()), info)
		}
	}
	return nil
}
