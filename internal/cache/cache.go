// Package cache is the persistent, content-addressed artifact cache
// behind scheduling-as-a-service (cmd/gmtserve): response payloads are
// keyed by a fingerprint of everything that determines their bytes (IR
// content hash × partitioner × options × schema version, see Hasher) and
// stored in two layers — a bounded in-memory LRU in front of an on-disk
// store that survives process restarts.
//
// The durability contract is checksum-or-absent: every stored payload is
// wrapped in a checksummed envelope, writes are atomic (temp + rename,
// optionally fsynced in Durable mode), opening the store runs a recovery
// scan that removes orphaned temp files and quarantines invalid
// envelopes, and a truncated, garbage, or tampered entry read later is
// quarantined and reported as a miss — never served. The cache stores
// opaque bytes and never re-serializes them, which is what lets the
// serving layer promise byte-identical responses whether a request is
// served cold, warm from memory, warm from disk, or merged into another
// request's flight (see Group).
//
// Every disk touch goes through an internal/vfs filesystem, so tests
// inject seeded faults (full disk, EIO, torn writes, crash points); the
// cache answers with bounded deterministic retries for transient faults
// and a circuit breaker that trips the disk layer to memory-only mode
// after too many consecutive faults, probing its way back. Disk failure
// therefore degrades warmth, never correctness or availability.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/vfs"
)

// entryMagic versions the on-disk envelope (not the payload schema —
// that is the caller's SchemaVersion, hashed into the key). Bump it only
// if the envelope framing itself changes; old entries then read as
// corrupt, i.e. misses.
const entryMagic = "gmtcache1"

// quarantineDir, under the cache root, receives invalid envelopes
// instead of deleting them: operators can inspect what the disk did to
// the bytes, and the entries are invisible to Get, eviction, and the
// disk-entry count (the directory name is not a two-character shard).
const quarantineDir = "quarantine"

// Options configures a Cache.
type Options struct {
	// Dir is the on-disk store root; "" disables the disk layer (the
	// cache is then memory-only and does not survive restarts).
	Dir string
	// MemEntries bounds the in-memory LRU layer; <= 0 means 1024.
	MemEntries int
	// DiskEntries bounds the on-disk store; <= 0 means unbounded. When
	// the bound is exceeded the oldest entries (by modification time)
	// are evicted. Eviction order never affects response bytes — an
	// evicted entry is simply recomputed.
	DiskEntries int
	// FS abstracts every disk touch; nil means the host filesystem
	// (vfs.OS). Tests inject a vfs.Faulty here.
	FS vfs.FS
	// Durable fsyncs each written entry and its parent directory, so a
	// completed Put survives a machine crash, at the cost of two fsyncs
	// per write. Without it a post-rename crash can tear an entry — the
	// recovery scan and checksums then turn it into a miss.
	Durable bool
	// Retries bounds per-operation retries of transient disk faults
	// (vfs.Transient); 0 means the default 2, < 0 disables retries.
	Retries int
	// RetryBase is the deterministic backoff unit: retry k sleeps
	// RetryBase << k. 0 means 2ms.
	RetryBase time.Duration
	// Sleep replaces time.Sleep in the backoff path (test hook).
	Sleep func(time.Duration)
	// BreakerThreshold trips the disk layer to memory-only mode after
	// this many consecutive disk faults; 0 means the default 8, < 0
	// disables the breaker.
	BreakerThreshold int
	// BreakerProbe, while the breaker is open, lets every Nth
	// disk-layer operation through as a probe; a probe that succeeds
	// closes the breaker. 0 means the default 16.
	BreakerProbe int
	// OnDiskState, when non-nil, is called on every breaker transition;
	// open=true means the disk layer just went offline. Calls are
	// serialized under the breaker's lock, so transitions arrive in
	// order; the callback must not call back into the cache.
	OnDiskState func(open bool)
	// Metrics, when non-nil, receives the cache counters: hit.mem,
	// hit.disk, miss, put, corrupt, evict.mem, evict.disk, recovered,
	// quarantined, read_error, write_error, retry, bypass,
	// breaker.trip, breaker.probe, breaker.close.
	Metrics *obs.Scope
}

// OpEvents collects the fault-handling events of a single cache call so
// the serving layer can attribute them to one request's trace. The
// fields mirror the registry counters (which aggregate across all
// requests and cannot say which request paid for a retry). A nil
// *OpEvents records nothing; a non-nil one must not be shared between
// concurrent calls.
type OpEvents struct {
	// Layer reports where a Get was answered: "mem", "disk", or "miss".
	Layer string
	// Retries counts transient-fault retries inside this call.
	Retries int64
	// ReadErrors and WriteErrors count disk faults that survived the
	// retry budget.
	ReadErrors  int64
	WriteErrors int64
	// Corrupt counts invalid envelopes this call tripped over.
	Corrupt int64
	// Quarantined counts envelopes this call moved to quarantine.
	Quarantined int64
	// Bypass counts disk accesses the open breaker suppressed.
	Bypass int64
	// Probes counts breaker probes this call performed.
	Probes int64
	// BreakerTrips and BreakerCloses count breaker transitions this
	// call caused.
	BreakerTrips  int64
	BreakerCloses int64
}

// Cache is a two-layer (memory LRU + disk) content-addressed byte store.
// All methods are safe for concurrent use.
type Cache struct {
	opts      Options
	fs        vfs.FS
	retries   int
	retryBase time.Duration
	sleep     func(time.Duration)
	brk       breaker

	mu   sync.Mutex
	mem  map[string]*list.Element
	lru  list.List // front = most recently used
	disk int       // tracked on-disk entry count (rebuilt by the open scan)
}

type memEntry struct {
	key     string
	payload []byte
}

// New opens (creating if needed) a cache rooted at opts.Dir and runs the
// crash-recovery scan: orphaned temp files from crashed or failed writes
// are removed, envelopes that fail validation are quarantined, and the
// disk-entry count is rebuilt from what actually survived.
func New(opts Options) (*Cache, error) {
	if opts.MemEntries <= 0 {
		opts.MemEntries = 1024
	}
	c := &Cache{opts: opts, mem: map[string]*list.Element{}}
	c.fs = opts.FS
	if c.fs == nil {
		c.fs = vfs.OS{}
	}
	switch {
	case opts.Retries < 0:
		c.retries = 0
	case opts.Retries == 0:
		c.retries = 2
	default:
		c.retries = opts.Retries
	}
	c.retryBase = opts.RetryBase
	if c.retryBase == 0 {
		c.retryBase = 2 * time.Millisecond
	}
	c.sleep = opts.Sleep
	if c.sleep == nil {
		c.sleep = time.Sleep
	}
	c.brk.init(opts.BreakerThreshold, opts.BreakerProbe, opts.OnDiskState)
	if opts.Dir != "" {
		if err := c.fs.MkdirAll(opts.Dir); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
		n, err := c.recoverScan()
		if err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
		c.disk = n
	}
	return c, nil
}

// DiskOffline reports whether the circuit breaker currently has the
// disk layer tripped to memory-only mode.
func (c *Cache) DiskOffline() bool { return c.brk.isOpen() }

// pathKey is the content address of a key: its SHA-256, in hex. Keys are
// usually already fingerprints (see Hasher), but hashing again makes any
// string — including ones with separators or newlines — a safe filename.
func pathKey(key string) string {
	s := sha256.Sum256([]byte(key))
	return hex.EncodeToString(s[:])
}

// entryPath shards entries over 256 subdirectories by hash prefix.
func (c *Cache) entryPath(pk string) string {
	return filepath.Join(c.opts.Dir, pk[:2], pk)
}

// readFile reads through the FS with bounded deterministic backoff on
// transient faults: retry k sleeps RetryBase << k.
func (c *Cache) readFile(path string, ev *OpEvents) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		raw, err := c.fs.ReadFile(path)
		if err == nil || !vfs.Transient(err) || attempt >= c.retries {
			return raw, err
		}
		c.opts.Metrics.Counter("retry").Inc()
		if ev != nil {
			ev.Retries++
		}
		c.sleep(c.retryBase << attempt)
	}
}

// writeFile writes through the FS with the same bounded backoff.
func (c *Cache) writeFile(path string, data []byte, ev *OpEvents) error {
	for attempt := 0; ; attempt++ {
		err := c.fs.WriteFile(path, data, c.opts.Durable)
		if err == nil || !vfs.Transient(err) || attempt >= c.retries {
			return err
		}
		c.opts.Metrics.Counter("retry").Inc()
		if ev != nil {
			ev.Retries++
		}
		c.sleep(c.retryBase << attempt)
	}
}

// diskResult feeds one disk-operation outcome to the breaker and counts
// any transition it caused.
func (c *Cache) diskResult(err error, ev *OpEvents) {
	switch c.brk.result(err == nil) {
	case +1:
		c.opts.Metrics.Counter("breaker.trip").Inc()
		if ev != nil {
			ev.BreakerTrips++
		}
	case -1:
		c.opts.Metrics.Counter("breaker.close").Inc()
		if ev != nil {
			ev.BreakerCloses++
		}
	}
}

// allowDisk asks the breaker whether this operation may touch the disk,
// counting bypasses and probes.
func (c *Cache) allowDisk(ev *OpEvents) bool {
	allow, probe := c.brk.allow()
	if !allow {
		c.opts.Metrics.Counter("bypass").Inc()
		if ev != nil {
			ev.Bypass++
		}
		return false
	}
	if probe {
		c.opts.Metrics.Counter("breaker.probe").Inc()
		if ev != nil {
			ev.Probes++
		}
	}
	return true
}

// Get returns the payload stored under key. The second result reports
// whether the key was present (in either layer) with a valid checksum;
// a corrupt or truncated disk entry is quarantined and reported as a
// miss, and a disk read fault — after retries — degrades to a miss
// rather than an error (fail-open: the caller recomputes).
func (c *Cache) Get(key string) ([]byte, bool) {
	return c.GetEv(key, nil)
}

// GetEv is Get with per-call event capture: retries, faults, breaker
// activity, and the answering layer are recorded into ev (which may be
// nil) in addition to the aggregate registry counters.
func (c *Cache) GetEv(key string, ev *OpEvents) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.mem[key]; ok {
		c.lru.MoveToFront(el)
		p := el.Value.(*memEntry).payload
		out := append([]byte(nil), p...)
		c.mu.Unlock()
		c.opts.Metrics.Counter("hit.mem").Inc()
		if ev != nil {
			ev.Layer = "mem"
		}
		return out, true
	}
	c.mu.Unlock()

	if ev != nil {
		ev.Layer = "miss"
	}
	if c.opts.Dir == "" || !c.allowDisk(ev) {
		c.opts.Metrics.Counter("miss").Inc()
		return nil, false
	}
	pk := pathKey(key)
	raw, err := c.readFile(c.entryPath(pk), ev)
	if err != nil {
		if !os.IsNotExist(err) {
			c.opts.Metrics.Counter("read_error").Inc()
			if ev != nil {
				ev.ReadErrors++
			}
		}
		// An honest "not there" is a healthy disk answer; anything else
		// counts against the breaker.
		c.diskResult(ignoreNotExist(err), ev)
		c.opts.Metrics.Counter("miss").Inc()
		return nil, false
	}
	c.diskResult(nil, ev)
	payload, ok := decodeEntry(raw, pk)
	if !ok {
		// Truncated or garbage entry: quarantine it and treat the read
		// as a miss so the next Put rewrites it cleanly.
		c.opts.Metrics.Counter("corrupt").Inc()
		c.opts.Metrics.Counter("miss").Inc()
		if ev != nil {
			ev.Corrupt++
		}
		if c.quarantine(c.entryPath(pk), pk, ev) {
			c.mu.Lock()
			c.disk--
			c.mu.Unlock()
		}
		return nil, false
	}
	c.insertMem(key, payload)
	c.opts.Metrics.Counter("hit.disk").Inc()
	if ev != nil {
		ev.Layer = "disk"
	}
	return append([]byte(nil), payload...), true
}

// ignoreNotExist maps a not-exist error to success for breaker
// accounting.
func ignoreNotExist(err error) error {
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// quarantine moves an invalid envelope under quarantineDir (falling back
// to deletion if the move fails) and reports whether the shard lost the
// file.
func (c *Cache) quarantine(path, name string, ev *OpEvents) bool {
	qdir := filepath.Join(c.opts.Dir, quarantineDir)
	ok := c.fs.MkdirAll(qdir) == nil && c.fs.Rename(path, filepath.Join(qdir, name)) == nil
	if !ok {
		ok = c.fs.Remove(path) == nil
	}
	if ok {
		c.opts.Metrics.Counter("quarantined").Inc()
		if ev != nil {
			ev.Quarantined++
		}
	}
	return ok
}

// Put stores payload under key in both layers. The payload is copied;
// later mutation of the argument does not affect the cache. A disk-layer
// failure is reported but the memory layer already holds the bytes, so
// callers treat the error as degraded durability, not a failed store.
func (c *Cache) Put(key string, payload []byte) error {
	return c.PutEv(key, payload, nil)
}

// PutEv is Put with per-call event capture into ev (which may be nil).
func (c *Cache) PutEv(key string, payload []byte, ev *OpEvents) error {
	p := append([]byte(nil), payload...)
	c.insertMem(key, p)
	c.opts.Metrics.Counter("put").Inc()
	if c.opts.Dir == "" || !c.allowDisk(ev) {
		return nil
	}
	pk := pathKey(key)
	path := c.entryPath(pk)
	if err := c.fs.MkdirAll(filepath.Dir(path)); err != nil {
		c.opts.Metrics.Counter("write_error").Inc()
		if ev != nil {
			ev.WriteErrors++
		}
		c.diskResult(err, ev)
		return fmt.Errorf("cache: %w", err)
	}
	_, statErr := c.fs.Stat(path) // pre-existing entry? (overwrite ≠ growth)
	if err := c.writeFile(path, encodeEntry(p, pk), ev); err != nil {
		c.opts.Metrics.Counter("write_error").Inc()
		if ev != nil {
			ev.WriteErrors++
		}
		c.diskResult(err, ev)
		return fmt.Errorf("cache: writing %s: %w", pk[:12], err)
	}
	c.diskResult(nil, ev)
	if statErr != nil {
		c.mu.Lock()
		c.disk++
		over := 0
		if c.opts.DiskEntries > 0 {
			over = c.disk - c.opts.DiskEntries
		}
		c.mu.Unlock()
		if over > 0 {
			c.evictDisk(over)
		}
	}
	return nil
}

// insertMem adds (or refreshes) a memory-layer entry, evicting from the
// LRU tail past the bound.
func (c *Cache) insertMem(key string, payload []byte) {
	c.mu.Lock()
	if el, ok := c.mem[key]; ok {
		el.Value.(*memEntry).payload = payload
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.mem[key] = c.lru.PushFront(&memEntry{key: key, payload: payload})
	var evicted int64
	for c.lru.Len() > c.opts.MemEntries {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.mem, tail.Value.(*memEntry).key)
		evicted++
	}
	c.mu.Unlock()
	c.opts.Metrics.Counter("evict.mem").Add(evicted)
}

// MemLen returns the number of entries in the memory layer.
func (c *Cache) MemLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// evictDisk removes the n oldest on-disk entries by modification time.
func (c *Cache) evictDisk(n int) {
	type aged struct {
		path string
		mod  int64
	}
	var entries []aged
	walkEntries(c.fs, c.opts.Dir, func(path string, info os.FileInfo) {
		entries = append(entries, aged{path: path, mod: info.ModTime().UnixNano()})
	})
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].mod != entries[j].mod {
			return entries[i].mod < entries[j].mod
		}
		return entries[i].path < entries[j].path
	})
	var evicted int64
	for i := 0; i < n && i < len(entries); i++ {
		if c.fs.Remove(entries[i].path) == nil {
			evicted++
		}
	}
	c.mu.Lock()
	c.disk -= int(evicted)
	c.mu.Unlock()
	c.opts.Metrics.Counter("evict.disk").Add(evicted)
}

// encodeEntry wraps a payload in the checksummed envelope:
//
//	gmtcache1 <path-key> <payload-len> <payload-sha256>\n<payload>
func encodeEntry(payload []byte, pk string) []byte {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d %s\n", entryMagic, pk, len(payload), hex.EncodeToString(sum[:]))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// decodeEntry validates an envelope read from disk: magic, key binding,
// length, and payload checksum must all match, otherwise the entry is
// corrupt.
func decodeEntry(raw []byte, pk string) ([]byte, bool) {
	nl := -1
	for i, b := range raw {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, false
	}
	fields := strings.Split(string(raw[:nl]), " ")
	if len(fields) != 4 || fields[0] != entryMagic || fields[1] != pk {
		return nil, false
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil || n < 0 {
		return nil, false
	}
	payload := raw[nl+1:]
	if len(payload) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[3] {
		return nil, false
	}
	return payload, true
}

// countEntries counts on-disk entries under root (host filesystem; used
// by tests and tooling).
func countEntries(root string) (int, error) {
	n := 0
	err := walkEntries(vfs.OS{}, root, func(string, os.FileInfo) { n++ })
	return n, err
}

// walkEntries visits every entry file under root (skipping temp files
// and the quarantine directory, whose name is not a two-character
// shard).
func walkEntries(fsys vfs.FS, root string, visit func(path string, info os.FileInfo)) error {
	shards, err := fsys.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		files, err := fsys.ReadDir(filepath.Join(root, shard.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() || strings.HasPrefix(f.Name(), ".tmp-") {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			visit(filepath.Join(root, shard.Name(), f.Name()), info)
		}
	}
	return nil
}
