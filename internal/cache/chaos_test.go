package cache

import (
	"strings"
	"testing"

	"repro/internal/vfs"
)

// TestChaosCrashSweep runs the crash-consistency harness across every
// crash point in both durability modes: zero contract violations, and a
// byte-identical report for the same seed (the chaos run itself is
// deterministic, so a failure is replayable from its seed alone).
func TestChaosCrashSweep(t *testing.T) {
	for _, durable := range []bool{false, true} {
		o := ChaosOptions{Seed: 1, Puts: 4, Durable: durable}
		r1, err := RunChaos(t.TempDir(), o)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Failures != 0 {
			t.Fatalf("durable=%v: %d contract violations:\n%s", durable, r1.Failures, r1)
		}
		if want := len(vfs.CrashSteps()) * o.Puts; r1.Cells != want {
			t.Fatalf("durable=%v: %d cells, want %d", durable, r1.Cells, want)
		}
		r2, err := RunChaos(t.TempDir(), o)
		if err != nil {
			t.Fatal(err)
		}
		if r1.String() != r2.String() {
			t.Fatalf("durable=%v: report not byte-identical across runs:\n--- run 1\n%s--- run 2\n%s",
				durable, r1, r2)
		}
	}
}

// TestChaosReportShape pins the report's observable claims: durable
// mode never loses a Put that completed (every cell fully intact up to
// the crashed op), and the non-durable after-rename rows are where
// quarantines appear.
func TestChaosReportShape(t *testing.T) {
	r, err := RunChaos(t.TempDir(), ChaosOptions{Seed: 2, Puts: 3, Durable: false})
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures != 0 {
		t.Fatalf("violations:\n%s", r)
	}
	s := r.String()
	if !strings.Contains(s, "step=after-rename") {
		t.Fatalf("report missing the after-rename rows:\n%s", s)
	}
	// Non-durable after-rename crashes tear the renamed entry; recovery
	// must quarantine at least one of them.
	sawQuarantine := false
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "step=after-rename") && !strings.Contains(line, "quarantined=0") {
			sawQuarantine = true
		}
	}
	if !sawQuarantine {
		t.Fatalf("no after-rename cell quarantined a torn entry:\n%s", s)
	}
}
