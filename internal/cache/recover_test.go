package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/vfs"
)

// TestRecoveryCleansDirtyDirectory is the temp-leak regression test: a
// cache opened over a pre-seeded dirty directory (orphaned temp files
// from crashed writes, a garbage entry, a truncated entry) removes the
// temps, quarantines the invalid envelopes, rebuilds the disk-entry
// count from survivors only, and still serves every valid entry.
func TestRecoveryCleansDirtyDirectory(t *testing.T) {
	dir := t.TempDir()
	c := mustNew(t, Options{Dir: dir, MemEntries: 1})
	for i := 0; i < 3; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Dirty the directory the way crashed Puts would.
	paths := entryPaths(t, dir)
	if len(paths) != 3 {
		t.Fatalf("seeded %d entries, want 3", len(paths))
	}
	shard := filepath.Dir(paths[0])
	for i, name := range []string{".tmp-1234", ".tmp-orphan"} {
		if err := os.WriteFile(filepath.Join(shard, name), []byte{byte(i)}, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(shard, "deadbeef"), []byte("not an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[1], raw[:len(raw)-3], 0o644); err != nil { // torn
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	c2 := mustNew(t, Options{Dir: dir, MemEntries: 1, Metrics: reg.Scope("cache")})
	if v := reg.Counter("cache.recovered").Value(); v != 2 {
		t.Errorf("recovered = %d, want 2 temp files", v)
	}
	if v := reg.Counter("cache.quarantined").Value(); v != 2 {
		t.Errorf("quarantined = %d, want 2 (garbage + torn)", v)
	}
	if v := reg.Counter("cache.corrupt").Value(); v != 2 {
		t.Errorf("corrupt = %d, want 2", v)
	}
	if c2.disk != 2 {
		t.Errorf("rebuilt disk count = %d, want the 2 survivors", c2.disk)
	}
	if n := countTempFiles(dir); n != 0 {
		t.Errorf("%d temp files survived recovery", n)
	}
	// The quarantined envelopes are preserved for inspection, outside the
	// shard namespace.
	qents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(qents) != 2 {
		t.Errorf("quarantine dir holds %d files (err %v), want 2", len(qents), err)
	}
	// Survivors still served, byte-intact; the torn key is an honest miss.
	tornKey := ""
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		want := []byte(fmt.Sprintf("payload-%d", i))
		got, ok := c2.Get(k)
		if !ok {
			if tornKey != "" {
				t.Fatalf("both %s and %s missing, want exactly one torn", tornKey, k)
			}
			tornKey = k
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s served %q, want %q", k, got, want)
		}
	}
	if tornKey == "" {
		t.Fatal("torn entry was served")
	}
}

// TestRecoveryIdempotent: a second open over an already-clean directory
// recovers nothing and changes nothing.
func TestRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	c := mustNew(t, Options{Dir: dir})
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		reg := obs.NewRegistry()
		c2 := mustNew(t, Options{Dir: dir, Metrics: reg.Scope("cache")})
		if v := reg.Counter("cache.recovered").Value(); v != 0 {
			t.Fatalf("open %d: recovered = %d, want 0", i, v)
		}
		if v := reg.Counter("cache.quarantined").Value(); v != 0 {
			t.Fatalf("open %d: quarantined = %d, want 0", i, v)
		}
		if c2.disk != 1 {
			t.Fatalf("open %d: disk count = %d, want 1", i, c2.disk)
		}
	}
}

// TestRetryOutlastsTransientReadFault: an EIO on the disk read path is
// retried with deterministic backoff and the retry serves the entry —
// no miss, no recompute. The Sleep hook captures the backoff schedule.
func TestRetryOutlastsTransientReadFault(t *testing.T) {
	dir := t.TempDir()
	seed := mustNew(t, Options{Dir: dir})
	payload := []byte("survives flaky reads")
	if err := seed.Put("k", payload); err != nil {
		t.Fatal(err)
	}

	var slept []time.Duration
	reg := obs.NewRegistry()
	c := mustNew(t, Options{
		Dir: dir, MemEntries: 1,
		FS:        vfs.NewFaulty(vfs.Spec{Class: vfs.ReadEIO, Seed: 1}),
		RetryBase: time.Millisecond,
		Sleep:     func(d time.Duration) { slept = append(slept, d) },
		Metrics:   reg.Scope("cache"),
	})

	// Hammer the disk path (MemEntries:1 with two keys alternating would
	// also work; here a fresh cache per Get keeps it simpler: evict the
	// memory layer by inserting another key between reads).
	faultsServed := 0
	for i := 0; i < 30; i++ {
		before := reg.Counter("cache.retry").Value()
		got, ok := c.Get("k")
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("Get %d = %q, %v; want the payload despite EIO", i, got, ok)
		}
		if reg.Counter("cache.retry").Value() > before {
			faultsServed++
		}
		c.insertMem(fmt.Sprintf("evict-%d", i), nil) // push k out of the memory layer
	}
	if faultsServed == 0 {
		t.Fatal("no read ever hit the fault schedule")
	}
	if v := reg.Counter("cache.miss").Value(); v != 0 {
		t.Fatalf("miss = %d, want 0 (every EIO outlasted by retry)", v)
	}
	// Backoff is deterministic: every recorded sleep is RetryBase << k.
	for _, d := range slept {
		if d != time.Millisecond && d != 2*time.Millisecond {
			t.Fatalf("unexpected backoff %v", d)
		}
	}
	if len(slept) == 0 {
		t.Fatal("retries recorded but no backoff slept")
	}
}

// scriptFS fails the first failWrites WriteFile calls with EIO, then
// passes through — the "disk heals" script the breaker tests need
// (Faulty's schedules never heal).
type scriptFS struct {
	vfs.OS
	mu         sync.Mutex
	failWrites int
	writes     int
}

func (s *scriptFS) WriteFile(path string, data []byte, durable bool) error {
	s.mu.Lock()
	s.writes++
	fail := s.writes <= s.failWrites
	s.mu.Unlock()
	if fail {
		return fmt.Errorf("scripted write fault: %w", syscall.EIO)
	}
	return s.OS.WriteFile(path, data, durable)
}

// TestBreakerTripProbeClose drives the full breaker cycle: consecutive
// disk faults trip it (memory-only mode, OnDiskState(true)), bypassed
// operations are counted and fail open, every Nth operation probes, and
// a probe that lands after the disk heals closes it (OnDiskState(false)).
func TestBreakerTripProbeClose(t *testing.T) {
	dir := t.TempDir()
	fs := &scriptFS{failWrites: 100} // heals only after the trip
	var transitions []bool
	reg := obs.NewRegistry()
	c := mustNew(t, Options{
		Dir: dir, MemEntries: 4,
		FS:               fs,
		Retries:          -1, // each failed write = one breaker strike
		BreakerThreshold: 3,
		BreakerProbe:     4,
		OnDiskState:      func(open bool) { transitions = append(transitions, open) },
		Metrics:          reg.Scope("cache"),
	})

	// Three consecutive write faults trip the breaker. The Puts still
	// succeed into the memory layer (error reports degraded durability).
	for i := 0; i < 3; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err == nil {
			t.Fatalf("Put %d reported success during scripted faults", i)
		}
	}
	if !c.DiskOffline() {
		t.Fatal("breaker not open after threshold consecutive faults")
	}
	if v := reg.Counter("cache.breaker.trip").Value(); v != 1 {
		t.Fatalf("breaker.trip = %d, want 1", v)
	}
	if len(transitions) != 1 || !transitions[0] {
		t.Fatalf("transitions = %v, want [true]", transitions)
	}
	// Memory still serves: fail-open, not fail-closed.
	if got, ok := c.Get("k0"); !ok || !bytes.Equal(got, []byte{0}) {
		t.Fatal("memory layer lost a payload the disk rejected")
	}

	// While open, disk ops are bypassed (Put reports success — memory is
	// authoritative) except every 4th, which probes the still-dead disk.
	fs.mu.Lock()
	writesAtTrip := fs.writes
	fs.mu.Unlock()
	for i := 0; i < 7; i++ {
		if err := c.Put(fmt.Sprintf("open%d", i), []byte{byte(i)}); err != nil && !vfs.Transient(err) {
			t.Fatalf("bypassed Put failed: %v", err)
		}
	}
	if v := reg.Counter("cache.bypass").Value(); v == 0 {
		t.Fatal("no bypasses counted while the breaker was open")
	}
	if v := reg.Counter("cache.breaker.probe").Value(); v == 0 {
		t.Fatal("no probes while the breaker was open")
	}
	fs.mu.Lock()
	probesHitDisk := fs.writes - writesAtTrip
	fs.mu.Unlock()
	if probesHitDisk == 0 || probesHitDisk >= 7 {
		t.Fatalf("%d of 7 open-state Puts touched the disk, want only the probes", probesHitDisk)
	}

	// Heal the disk; the next probe closes the breaker.
	fs.mu.Lock()
	fs.failWrites = 0
	fs.mu.Unlock()
	for i := 0; i < 8 && c.DiskOffline(); i++ {
		c.Put(fmt.Sprintf("heal%d", i), []byte{byte(i)})
	}
	if c.DiskOffline() {
		t.Fatal("breaker never closed after the disk healed")
	}
	if v := reg.Counter("cache.breaker.close").Value(); v != 1 {
		t.Fatalf("breaker.close = %d, want 1", v)
	}
	if len(transitions) != 2 || transitions[1] {
		t.Fatalf("transitions = %v, want [true false]", transitions)
	}
	// Closed again: writes reach the disk and survive a restart.
	if err := c.Put("after", []byte("back online")); err != nil {
		t.Fatal(err)
	}
	c2 := mustNew(t, Options{Dir: dir, MemEntries: 1})
	if got, ok := c2.Get("after"); !ok || !bytes.Equal(got, []byte("back online")) {
		t.Fatal("post-close write did not survive a restart")
	}
}

// TestDurablePutSurvivesAfterRenameCrash: the durable mode's contract —
// an entry whose Put completed before a machine crash at the worst
// point (after rename, data blocks unsynced) is served intact, where
// the non-durable cache quarantines a torn entry and misses.
func TestDurablePutSurvivesAfterRenameCrash(t *testing.T) {
	for _, durable := range []bool{false, true} {
		dir := t.TempDir()
		faulty := vfs.NewFaulty(vfs.Spec{Class: vfs.Crash, Seed: 21, CrashOp: 1, CrashStep: vfs.CrashAfterRename})
		c := mustNew(t, Options{Dir: dir, FS: faulty, Durable: durable, Retries: -1, BreakerThreshold: -1})
		payload := bytes.Repeat([]byte("d"), 400)
		c.Put("k", payload) // dies at the crash point

		reg := obs.NewRegistry()
		c2 := mustNew(t, Options{Dir: dir, MemEntries: 1, Durable: durable, Metrics: reg.Scope("cache")})
		got, ok := c2.Get("k")
		if durable {
			if !ok || !bytes.Equal(got, payload) {
				t.Fatalf("durable entry lost to an after-rename crash: %v", ok)
			}
		} else {
			if ok {
				t.Fatal("non-durable torn entry was served")
			}
			if v := reg.Counter("cache.quarantined").Value(); v != 1 {
				t.Fatalf("quarantined = %d, want the torn entry", v)
			}
		}
	}
}
