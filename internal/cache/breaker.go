package cache

import "sync"

// breaker is the disk layer's fail-open circuit breaker. Disk faults
// never fail a request — a failed read is a miss, a failed write leaves
// the memory layer authoritative — but a dying disk would otherwise tax
// every request with a doomed syscall plus retries. After threshold
// consecutive faults the breaker opens and the cache runs memory-only;
// while open, every probeEvery-th disk-layer operation is let through as
// a probe, and the first probe that succeeds closes the breaker again.
//
// The counting is deterministic given a deterministic operation
// sequence: no wall-clock cooldowns, only operation counts — the same
// discipline as internal/fault, so chaos runs report byte-identically.
type breaker struct {
	threshold  int // consecutive faults to open; <= 0 disables
	probeEvery int
	onChange   func(open bool)

	mu      sync.Mutex
	consec  int
	open    bool
	skipped int
}

// defaults applied by init when the caller passes zero values.
const (
	defaultBreakerThreshold = 8
	defaultBreakerProbe     = 16
)

func (b *breaker) init(threshold, probeEvery int, onChange func(bool)) {
	switch {
	case threshold < 0:
		b.threshold = 0 // disabled
	case threshold == 0:
		b.threshold = defaultBreakerThreshold
	default:
		b.threshold = threshold
	}
	b.probeEvery = probeEvery
	if b.probeEvery <= 0 {
		b.probeEvery = defaultBreakerProbe
	}
	b.onChange = onChange
}

// allow reports whether the next disk operation may proceed, and whether
// it proceeds as a probe of an open breaker.
func (b *breaker) allow() (allow, probe bool) {
	if b.threshold <= 0 {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true, false
	}
	b.skipped++
	if b.skipped%b.probeEvery == 0 {
		return true, true
	}
	return false, false
}

// result records the outcome of an allowed disk operation. It returns +1
// when this outcome tripped the breaker open, -1 when it closed it, and
// 0 otherwise, so the caller can count transitions. The onChange
// callback runs under the breaker lock, which serializes transitions in
// order; the callback must not reenter the cache.
func (b *breaker) result(ok bool) int {
	if b.threshold <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delta := 0
	if ok {
		b.consec = 0
		if b.open {
			b.open = false
			b.skipped = 0
			delta = -1
		}
	} else {
		b.consec++
		if !b.open && b.consec >= b.threshold {
			b.open = true
			b.skipped = 0
			delta = +1
		}
	}
	if delta != 0 && b.onChange != nil {
		b.onChange(delta > 0)
	}
	return delta
}

// isOpen reports whether the disk layer is currently tripped offline.
func (b *breaker) isOpen() bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}
