package cache

import (
	"bytes"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"

	"repro/internal/obs"
	"repro/internal/vfs"
)

// ChaosOptions configures a crash-consistency sweep.
type ChaosOptions struct {
	// Seed parameterizes keys, payloads, and every injected crash; the
	// same seed yields a byte-identical report.
	Seed int64
	// Puts is the number of Put operations per cell (each to its own
	// key); the sweep crashes at every one of them in turn. <= 0 means 5.
	Puts int
	// Durable runs the workload with fsync-on-Put, which upgrades the
	// after-rename crash point from "torn entry, quarantined on
	// recovery" to "complete entry, served intact".
	Durable bool
}

// ChaosReport is the outcome of RunChaos: one line per (crash step,
// crash op) cell plus a summary, deterministic for a given seed.
type ChaosReport struct {
	Cells    int
	Failures int
	lines    []string
}

// String renders the report, byte-identical across runs with one seed.
func (r *ChaosReport) String() string {
	var b strings.Builder
	for _, l := range r.lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "chaos: %d cells, %d failures\n", r.Cells, r.Failures)
	return b.String()
}

// RunChaos sweeps a Put workload across every injected crash point: for
// each crash step and each 1-based Put index, a fresh cache under a
// crashing vfs.Faulty runs the workload, "restarts" as a second cache
// over the same directory on a healthy filesystem (which runs the
// recovery scan), and the cell then asserts the crash-consistency
// contract — no temp residue survives recovery, every served payload is
// byte-identical to what was Put (torn entries are quarantined, never
// served), and the recovered cache accepts writes and serves all keys
// afterwards. Cell directories are created under root.
func RunChaos(root string, o ChaosOptions) (*ChaosReport, error) {
	if o.Puts <= 0 {
		o.Puts = 5
	}
	keys := make([]string, o.Puts)
	payloads := make([][]byte, o.Puts)
	for i := range keys {
		keys[i] = fmt.Sprintf("chaos-key-%d", i)
		payloads[i] = chaosPayload(o.Seed, i)
	}

	rep := &ChaosReport{}
	for _, step := range vfs.CrashSteps() {
		for op := 1; op <= o.Puts; op++ {
			rep.Cells++
			dir := filepath.Join(root, fmt.Sprintf("cell-%s-op%d", step, op))
			line, failed, err := runChaosCell(dir, o, step, op, keys, payloads)
			if err != nil {
				return nil, err
			}
			if failed {
				rep.Failures++
			}
			rep.lines = append(rep.lines, line)
		}
	}
	return rep, nil
}

// runChaosCell executes one crash cell and checks the recovery contract.
func runChaosCell(dir string, o ChaosOptions, step vfs.CrashStep, op int,
	keys []string, payloads [][]byte) (line string, failed bool, err error) {
	spec := vfs.Spec{Class: vfs.Crash, Seed: o.Seed + int64(op), CrashOp: int64(op), CrashStep: step}
	faulty := vfs.NewFaulty(spec)
	// Retries and the breaker are disabled so the cell's fault pattern —
	// and therefore the report — is a pure function of the crash point.
	c, err := New(Options{
		Dir: dir, MemEntries: 1, FS: faulty, Durable: o.Durable,
		Retries: -1, BreakerThreshold: -1,
	})
	if err != nil {
		return "", false, fmt.Errorf("chaos: opening %s: %w", dir, err)
	}
	putErrs := 0
	for i, k := range keys {
		if c.Put(k, payloads[i]) != nil {
			putErrs++
		}
	}

	// "Restart": a fresh cache over the same directory on a healthy
	// filesystem runs the recovery scan.
	reg := obs.NewRegistry()
	c2, err := New(Options{Dir: dir, MemEntries: 1, Metrics: reg.Scope("cache")})
	if err != nil {
		return "", false, fmt.Errorf("chaos: reopening %s: %w", dir, err)
	}

	var problems []string
	if n := countTempFiles(dir); n > 0 {
		problems = append(problems, fmt.Sprintf("%d temp files survived recovery", n))
	}
	intact, torn := 0, 0
	for i, k := range keys {
		if got, ok := c2.Get(k); ok {
			if bytes.Equal(got, payloads[i]) {
				intact++
			} else {
				torn++
			}
		}
	}
	if torn > 0 {
		problems = append(problems, fmt.Sprintf("%d torn payloads served", torn))
	}
	// The recovered cache must be fully writable and then serve every
	// key from disk (a third open forces the disk path past the tiny
	// memory layer).
	for i, k := range keys {
		if perr := c2.Put(k, payloads[i]); perr != nil {
			problems = append(problems, fmt.Sprintf("re-put %s failed: %v", k, perr))
			break
		}
	}
	c3, err := New(Options{Dir: dir, MemEntries: 1})
	if err != nil {
		return "", false, fmt.Errorf("chaos: third open of %s: %w", dir, err)
	}
	for i, k := range keys {
		got, ok := c3.Get(k)
		if !ok || !bytes.Equal(got, payloads[i]) {
			problems = append(problems, fmt.Sprintf("post-recovery %s not served intact", k))
			break
		}
	}

	verdict := "ok"
	if len(problems) > 0 {
		verdict = "FAIL: " + strings.Join(problems, "; ")
	}
	line = fmt.Sprintf("crash step=%-13s op=%d durable=%v: put_errors=%d recovered=%d quarantined=%d intact=%d/%d %s",
		step, op, o.Durable, putErrs,
		reg.Counter("cache.recovered").Value(), reg.Counter("cache.quarantined").Value(),
		intact, len(keys), verdict)
	return line, len(problems) > 0, nil
}

// chaosPayload derives a deterministic pseudo-random payload for key i.
func chaosPayload(seed int64, i int) []byte {
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i+1)
	n := 64 + int(h%256)
	b := make([]byte, n)
	for j := range b {
		h = h*6364136223846793005 + 1442695040888963407
		b[j] = byte(h >> 56)
	}
	return b
}

// countTempFiles counts surviving .tmp-* files anywhere under dir.
func countTempFiles(dir string) int {
	n := 0
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(filepath.Base(path), ".tmp-") {
			n++
		}
		return nil
	})
	return n
}
