package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func mustNew(t *testing.T, opts Options) *Cache {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	c := mustNew(t, Options{Dir: t.TempDir(), Metrics: reg.Scope("cache")})
	payload := []byte(`{"answer": 42}`)
	if _, ok := c.Get("k"); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	if err := c.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if v := reg.Counter("cache.hit.mem").Value(); v != 1 {
		t.Errorf("hit.mem = %d, want 1", v)
	}
	if v := reg.Counter("cache.miss").Value(); v != 1 {
		t.Errorf("miss = %d, want 1", v)
	}
}

// TestRestartDeterminism is the cross-process check: a fresh Cache over
// the same directory (a process restart) must serve byte-identical
// payloads from the disk layer.
func TestRestartDeterminism(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	payload := []byte(`{"workload":"ks","cycles":12345}`)

	c1 := mustNew(t, Options{Dir: dir})
	if err := c1.Put("req", payload); err != nil {
		t.Fatal(err)
	}

	c2 := mustNew(t, Options{Dir: dir, Metrics: reg.Scope("cache")})
	got, ok := c2.Get("req")
	if !ok {
		t.Fatal("entry did not survive restart")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("restart payload = %q, want %q", got, payload)
	}
	if v := reg.Counter("cache.hit.disk").Value(); v != 1 {
		t.Errorf("hit.disk = %d, want 1", v)
	}
	// Second read is promoted into the memory layer.
	if _, ok := c2.Get("req"); !ok {
		t.Fatal("promoted entry missing")
	}
	if v := reg.Counter("cache.hit.mem").Value(); v != 1 {
		t.Errorf("hit.mem after promotion = %d, want 1", v)
	}
}

// entryFile locates the single on-disk entry file.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	var found string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			found = path
		}
		return err
	})
	if err != nil || found == "" {
		t.Fatalf("no entry file under %s (err=%v)", dir, err)
	}
	return found
}

// TestCorruptionIsAMiss truncates and garbles entries: both must read as
// misses (never served), be deleted, and be rewritable.
func TestCorruptionIsAMiss(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(path string) error
	}{
		{"truncated", func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, raw[:len(raw)/2], 0o644)
		}},
		{"garbage", func(p string) error {
			return os.WriteFile(p, []byte("not a cache entry at all"), 0o644)
		}},
		{"bitflip", func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			raw[len(raw)-1] ^= 0x40
			return os.WriteFile(p, raw, 0o644)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			reg := obs.NewRegistry()
			c := mustNew(t, Options{Dir: dir, Metrics: reg.Scope("cache")})
			payload := []byte(`{"v":1}`)
			if err := c.Put("k", payload); err != nil {
				t.Fatal(err)
			}
			if err := tc.corrupt(entryFile(t, dir)); err != nil {
				t.Fatal(err)
			}
			// A fresh cache (no memory layer) must see a miss, not the
			// corrupt payload.
			c2 := mustNew(t, Options{Dir: dir, Metrics: reg.Scope("cache2")})
			if got, ok := c2.Get("k"); ok {
				t.Fatalf("corrupt entry served: %q", got)
			}
			if v := reg.Counter("cache2.corrupt").Value(); v != 1 {
				t.Errorf("corrupt counter = %d, want 1", v)
			}
			// The entry was dropped and can be rewritten and served again.
			if err := c2.Put("k", payload); err != nil {
				t.Fatal(err)
			}
			c3 := mustNew(t, Options{Dir: dir})
			if got, ok := c3.Get("k"); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("rewritten entry = %q, %v; want %q, true", got, ok, payload)
			}
		})
	}
}

func TestMemLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := mustNew(t, Options{MemEntries: 2, Metrics: reg.Scope("cache")})
	for i := 0; i < 3; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.MemLen(); n != 2 {
		t.Fatalf("MemLen = %d, want 2", n)
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 should have been evicted (memory-only cache)")
	}
	if v := reg.Counter("cache.evict.mem").Value(); v != 1 {
		t.Errorf("evict.mem = %d, want 1", v)
	}
	// Touch k1 so k2 is the LRU victim on the next insert.
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 missing")
	}
	if err := c.Put("k3", []byte{3}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k2"); ok {
		t.Fatal("k2 should have been evicted after k1 was touched")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 should have survived")
	}
}

func TestDiskEviction(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	c := mustNew(t, Options{Dir: dir, DiskEntries: 3, MemEntries: 1, Metrics: reg.Scope("cache")})
	for i := 0; i < 5; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := countEntries(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("disk entries = %d, want 3", n)
	}
	if v := reg.Counter("cache.evict.disk").Value(); v != 2 {
		t.Errorf("evict.disk = %d, want 2", v)
	}
	// Restart sees the surviving count.
	c2 := mustNew(t, Options{Dir: dir, DiskEntries: 3})
	if c2.disk != 3 {
		t.Fatalf("restart disk count = %d, want 3", c2.disk)
	}
}

// TestSingleflightExactlyOnce races N concurrent identical requests and
// asserts exactly one execution; run under -race in CI.
func TestSingleflightExactlyOnce(t *testing.T) {
	var g Group
	var execs atomic.Int64
	const workers = 64
	release := make(chan struct{})
	results := make([][]byte, workers)
	mergedCount := atomic.Int64{}

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, err, merged := g.Do("same-key", func() ([]byte, error) {
				execs.Add(1)
				<-release // hold the flight open until all callers arrived
				return []byte("payload"), nil
			})
			if err != nil {
				t.Error(err)
			}
			if merged {
				mergedCount.Add(1)
			}
			results[i] = val
		}(i)
	}
	// Merged() counts joins at wait time, so once it reaches workers-1
	// every non-leader is blocked on the leader's flight.
	for g.Merged() != workers-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("executions = %d, want exactly 1", n)
	}
	if mergedCount.Load() != workers-1 {
		t.Fatalf("merged callers = %d, want %d", mergedCount.Load(), workers-1)
	}
	for i, r := range results {
		if !bytes.Equal(r, []byte("payload")) {
			t.Fatalf("caller %d got %q", i, r)
		}
	}
	// After the flight completes, a new call executes again.
	_, _, merged := g.Do("same-key", func() ([]byte, error) { return nil, nil })
	if merged {
		t.Fatal("post-flight call should not merge")
	}
}

func TestHasherFields(t *testing.T) {
	sum := func(build func(h *Hasher)) string {
		h := NewHasher(1)
		build(h)
		return h.Sum()
	}
	a := sum(func(h *Hasher) { h.Field("ab", "c") })
	b := sum(func(h *Hasher) { h.Field("a", "bc") })
	if a == b {
		t.Fatal("length prefixing failed: ab=c and a=bc collide")
	}
	if sum(func(h *Hasher) { h.Int64s("m", []int64{1, 23}) }) ==
		sum(func(h *Hasher) { h.Int64s("m", []int64{12, 3}) }) {
		t.Fatal("Int64s ambiguity: [1,23] collides with [12,3]")
	}
	// Same fields, different schema version: different key space.
	h1, h2 := NewHasher(1), NewHasher(2)
	h1.Field("k", "v")
	h2.Field("k", "v")
	if h1.Sum() == h2.Sum() {
		t.Fatal("schema version not folded into the fingerprint")
	}
	// Determinism.
	if sum(func(h *Hasher) { h.Bool("b", true); h.Int("i", 7) }) !=
		sum(func(h *Hasher) { h.Bool("b", true); h.Int("i", 7) }) {
		t.Fatal("fingerprint not deterministic")
	}
}
