package coco_test

import (
	"math/rand"
	"testing"

	"repro/internal/coco"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/pdg"
	"repro/internal/randprog"
	"repro/internal/testprog"
)

// engineOpts returns every max-flow engine selection: Edmonds–Karp (the
// reference), Dinic, push-relabel, and the default size-based selector.
func engineOpts() []struct {
	name string
	opts coco.Options
} {
	ek := coco.DefaultOptions()
	ek.EdmondsKarp = true
	dn := coco.DefaultOptions()
	dn.Dinic = true
	pr := coco.DefaultOptions()
	pr.PushRelabel = true
	return []struct {
		name string
		opts coco.Options
	}{
		{"edmonds-karp", ek},
		{"dinic", dn},
		{"push-relabel", pr},
		{"auto", coco.DefaultOptions()},
	}
}

// comparePlans fails the test when two plans place communication
// differently.
func comparePlans(t *testing.T, label string, ek, other *mtcg.Plan) {
	t.Helper()
	if len(ek.Comms) != len(other.Comms) {
		t.Fatalf("%s: comm count: EK %d vs %d", label, len(ek.Comms), len(other.Comms))
	}
	for i := range ek.Comms {
		a, b := ek.Comms[i], other.Comms[i]
		if a.Kind != b.Kind || a.Reg != b.Reg || a.Src != b.Src || a.Dst != b.Dst {
			t.Errorf("%s: comm %d differs: %v vs %v", label, i, a, b)
			continue
		}
		if len(a.Points) != len(b.Points) {
			t.Errorf("%s: comm %d points: EK %v vs %v", label, i, a.Points, b.Points)
			continue
		}
		for j := range a.Points {
			if a.Points[j] != b.Points[j] {
				t.Errorf("%s: comm %d point %d: EK %v vs %v", label, i, j, a.Points[j], b.Points[j])
			}
		}
	}
}

// TestEnginesMatchOnFixtures checks that every max-flow engine — and the
// size-based auto selector — produces identical communication placements
// on every fixture.
func TestEnginesMatchOnFixtures(t *testing.T) {
	for _, fx := range []struct {
		name string
		p    *testprog.Prog
	}{
		{"fig3", testprog.Fig3()},
		{"fig4", testprog.Fig4()},
		{"fig5", testprog.Fig5()},
	} {
		t.Run(fx.name, func(t *testing.T) {
			variants := engineOpts()
			ek := plan(t, fx.p, variants[0].opts)
			for _, v := range variants[1:] {
				comparePlans(t, v.name, ek, plan(t, fx.p, v.opts))
			}
		})
	}
}

// TestEnginesMatchOnRandomPrograms extends the fixture check to random
// programs and random partitions: for every generated (program, partition)
// pair all max-flow engines and the auto selector must choose the same
// communication placements, because each min-cut flow network has a
// unique source-side and sink-side minimum cut regardless of the maximum
// flow found.
func TestEnginesMatchOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		p := randprog.Generate(rng, randprog.DefaultOptions())
		st, err := interp.Run(p.F, p.Args, append([]int64(nil), p.Mem...), 5_000_000)
		if err != nil {
			t.Fatalf("trial %d: single-threaded run: %v", trial, err)
		}
		g := pdg.Build(p.F, p.Objects)
		assign := map[*ir.Instr]int{}
		p.F.Instrs(func(in *ir.Instr) {
			if in.Op != ir.Jump && in.Op != ir.Nop {
				assign[in] = rng.Intn(2)
			}
		})

		variants := engineOpts()
		ek, errEK := coco.Plan(p.F, g, assign, 2, st.Profile, variants[0].opts)
		for _, v := range variants[1:] {
			pl, err := coco.Plan(p.F, g, assign, 2, st.Profile, v.opts)
			if (errEK == nil) != (err == nil) {
				t.Fatalf("trial %d: EK err %v, %s err %v", trial, errEK, v.name, err)
			}
			if errEK != nil {
				continue // all engines must reject the partition identically
			}
			comparePlans(t, v.name, ek, pl)
		}
	}
}

// TestThreeThreadPlanConverges splits Figure 5's consumer thread in two,
// making the thread graph have multiple arcs, and checks Algorithm 2
// converges and the result executes correctly.
func TestThreeThreadPlanConverges(t *testing.T) {
	p := testprog.Fig5()
	assign := map[*ir.Instr]int{}
	for in, tid := range p.Assign {
		assign[in] = tid
	}
	// Move the B9 block's instructions (K and ret) to a third thread.
	for in := range assign {
		if in.Block() == p.Blocks["B9"] {
			assign[in] = 2
		}
	}
	g := pdg.Build(p.F, p.Objects)
	pl, err := coco.Plan(p.F, g, assign, 3, p.Profile, coco.DefaultOptions())
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	prog, err := mtcg.Generate(pl)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(prog.Threads) != 3 {
		t.Fatalf("%d threads, want 3", len(prog.Threads))
	}
	for _, p2 := range []int64{0, 1} {
		for _, p3 := range []int64{0, 1} {
			args := []int64{7, p2, p3}
			st, err := interp.Run(p.F, args, make(interp.Memory, 2), 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			mt, err := interp.RunMT(interp.MTConfig{
				Threads: prog.Threads, NumQueues: prog.NumQueues, Assign: assign,
				Args: args, Mem: make(interp.Memory, 2), MaxSteps: 1_000_000,
			})
			if err != nil {
				t.Fatalf("p2=%d p3=%d: %v", p2, p3, err)
			}
			for i := range st.LiveOuts {
				if mt.LiveOuts[i] != st.LiveOuts[i] {
					t.Errorf("p2=%d p3=%d: live-out %d: %d vs %d",
						p2, p3, i, mt.LiveOuts[i], st.LiveOuts[i])
				}
			}
		}
	}
}

// TestCyclicThreadGraphConverges builds a partition whose thread graph is
// cyclic (T0 -> T1 and T1 -> T0), which forces the repeat-until loop of
// Algorithm 2 to iterate.
func TestCyclicThreadGraphConverges(t *testing.T) {
	b := ir.NewBuilder("cyc")
	loop := b.Block("loop")
	exit := b.Block("exit")
	x := b.F.NewReg()
	y := b.F.NewReg()
	i := b.F.NewReg()
	b.ConstTo(x, 1)
	b.ConstTo(y, 2)
	b.ConstTo(i, 0)
	b.Jump(loop)
	b.SetBlock(loop)
	b.Op2To(x, ir.Add, x, y) // T0, uses y from T1
	iX := lastInstr(b)
	b.Op2To(y, ir.Add, y, x) // T1, uses x from T0
	iY := lastInstr(b)
	b.Op2To(i, ir.Add, i, b.Const(1))
	c := b.CmpLT(i, b.Const(20))
	b.Br(c, loop, exit)
	b.SetBlock(exit)
	b.Ret(x, y)
	b.F.SplitCriticalEdges()

	assign := map[*ir.Instr]int{}
	b.F.Instrs(func(in *ir.Instr) {
		if in.Op == ir.Jump {
			return
		}
		assign[in] = 0
	})
	assign[iY] = 1

	st, err := interp.Run(b.F, nil, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	g := pdg.Build(b.F, nil)
	pl, err := coco.Plan(b.F, g, assign, 2, st.Profile, coco.DefaultOptions())
	if err != nil {
		t.Fatalf("Plan on cyclic thread graph: %v", err)
	}
	prog, err := mtcg.Generate(pl)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	mt, err := interp.RunMT(interp.MTConfig{
		Threads: prog.Threads, NumQueues: prog.NumQueues, Assign: assign,
		MaxSteps: 100_000,
	})
	if err != nil {
		t.Fatalf("RunMT: %v", err)
	}
	for i := range st.LiveOuts {
		if mt.LiveOuts[i] != st.LiveOuts[i] {
			t.Errorf("live-out %d: %d vs %d", i, mt.LiveOuts[i], st.LiveOuts[i])
		}
	}
	_ = iX
}

func lastInstr(b *ir.Builder) *ir.Instr {
	ins := b.Cur().Instrs
	return ins[len(ins)-1]
}

// TestPlanWithoutCommunication checks the degenerate case: a partition
// where nothing crosses threads yields an empty communication plan.
func TestPlanWithoutCommunication(t *testing.T) {
	p := testprog.Fig4()
	assign := map[*ir.Instr]int{}
	p.F.Instrs(func(in *ir.Instr) { assign[in] = 0 })
	g := pdg.Build(p.F, p.Objects)
	pl, err := coco.Plan(p.F, g, assign, 2, p.Profile, coco.DefaultOptions())
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(pl.Comms) != 0 {
		t.Errorf("empty partition produced communications: %v", pl.Comms)
	}
}
