package coco_test

import (
	"testing"

	"repro/internal/coco"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/pdg"
	"repro/internal/testprog"
)

// plan runs COCO with default options on a fixture.
func plan(t *testing.T, p *testprog.Prog, opts coco.Options) *mtcg.Plan {
	t.Helper()
	g := pdg.Build(p.F, p.Objects)
	pl, err := coco.Plan(p.F, g, p.Assign, 2, p.Profile, opts)
	if err != nil {
		t.Fatalf("coco.Plan: %v", err)
	}
	return pl
}

// generate materializes a plan, verifying every thread function.
func generate(t *testing.T, pl *mtcg.Plan) *mtcg.Program {
	t.Helper()
	prog, err := mtcg.Generate(pl)
	if err != nil {
		t.Fatalf("mtcg.Generate: %v", err)
	}
	for _, ft := range prog.Threads {
		if err := ft.Verify(); err != nil {
			t.Fatalf("thread %s invalid: %v\n%s", ft.Name, err, ft)
		}
	}
	return prog
}

// findComm locates the communication of a register (or memory when reg is
// NoReg) in a plan.
func findComm(pl *mtcg.Plan, reg ir.Reg) *mtcg.Comm {
	for _, c := range pl.Comms {
		if reg == ir.NoReg && c.Kind == pdg.KindMem {
			return c
		}
		if reg != ir.NoReg && c.Kind == pdg.KindReg && c.Reg == reg {
			return c
		}
	}
	return nil
}

func TestFig3MinCutAtB3Entry(t *testing.T) {
	p := testprog.Fig3()
	pl := plan(t, p, coco.DefaultOptions())

	// The paper: "arc (B3entry -> F) alone forms a min-cut, with a cost
	// of 10" — the communication of r1 moves to the start of B3.
	c := findComm(pl, p.Regs["r1"])
	if c == nil {
		t.Fatalf("no r1 communication: %v", pl.Comms)
	}
	want := mtcg.Point{Block: p.Blocks["B3"], Index: 0}
	if len(c.Points) != 1 || c.Points[0] != want {
		t.Fatalf("r1 placed at %v, want [%v]", c.Points, want)
	}

	// Branch D no longer becomes relevant to thread 2, so r2 need not be
	// communicated at all.
	if c2 := findComm(pl, p.Regs["r2"]); c2 != nil {
		t.Errorf("r2 still communicated: %v", c2)
	}
	if pl.Relevant[1][p.Blocks["B2"].ID] {
		t.Error("branch D (B2) should not be relevant to thread 2 after COCO")
	}
	// The loop-back branch G stays relevant (it controls F).
	if !pl.Relevant[1][p.Blocks["B3"].ID] {
		t.Error("loop branch G (B3) must stay relevant to thread 2")
	}
}

func TestFig3ThreadTwoLosesInnerBlocks(t *testing.T) {
	p := testprog.Fig3()
	prog := generate(t, plan(t, p, coco.DefaultOptions()))

	t1 := prog.Threads[1]
	for _, name := range []string{"B2", "B2e"} {
		if t1.BlockByName(name) != nil {
			t.Errorf("thread 2 still contains block %s after COCO:\n%s", name, t1)
		}
	}
	for _, name := range []string{"entry", "B3", "exit"} {
		if t1.BlockByName(name) == nil {
			t.Errorf("thread 2 lost required block %s:\n%s", name, t1)
		}
	}
}

func TestFig3EquivalenceAndReduction(t *testing.T) {
	p := testprog.Fig3()
	g := pdg.Build(p.F, p.Objects)

	naive, err := mtcg.Generate(mtcg.NaivePlan(p.F, g, p.Assign, 2))
	if err != nil {
		t.Fatalf("naive Generate: %v", err)
	}
	opt := generate(t, plan(t, p, coco.DefaultOptions()))

	for _, args := range [][]int64{{5, 1, 0}, {5, 0, 0}, {-3, 1, 0}} {
		st, err := interp.Run(p.F, args, nil, 1_000_000)
		if err != nil {
			t.Fatalf("ST run: %v", err)
		}
		var counts []int64
		for _, prog := range []*mtcg.Program{naive, opt} {
			mt, err := interp.RunMT(interp.MTConfig{
				Threads: prog.Threads, NumQueues: prog.NumQueues,
				Assign: p.Assign, Args: args, MaxSteps: 1_000_000,
			})
			if err != nil {
				t.Fatalf("MT run: %v", err)
			}
			if len(mt.LiveOuts) != 1 || mt.LiveOuts[0] != st.LiveOuts[0] {
				t.Errorf("args %v: MT live-outs %v, ST %v", args, mt.LiveOuts, st.LiveOuts)
			}
			counts = append(counts, mt.Stats.Comm())
		}
		if counts[1] > counts[0] {
			t.Errorf("args %v: COCO increased communication: naive %d, COCO %d",
				args, counts[0], counts[1])
		}
	}
}
