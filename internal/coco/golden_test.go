package coco_test

import (
	"testing"

	"repro/internal/coco"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/pdg"
	"repro/internal/testprog"
)

// fig3Thread2Golden is the COCO-optimized code of Figure 3's thread 2: the
// paper's desired outcome made concrete. Compare with naive MTCG (Figure
// 3(d)), where thread 2 also contains copies of B2/B2e, the duplicated
// branch D” and the communication of r2. Here thread 2 is just the B3 loop
// body: one consume for the paper's r1 (register r4 below) plus one for the
// constant operand, the computation F, and the replicated loop branch G
// whose operand is a live-in needing no communication.
const fig3Thread2Golden = `func fig3.t1(r1, r2, r3)
entry:  ; preds: B3
	jump B3
B3:  ; preds: entry
	r4 = consume [q0]
	r9 = consume [q1]
	r10 = mul r4, r9
	br r3 entry, exit
exit:  ; preds: B3
	ret r10
`

func TestFig3ThreadTwoGolden(t *testing.T) {
	p := testprog.Fig3()
	g := pdg.Build(p.F, p.Objects)
	pl, err := coco.Plan(p.F, g, p.Assign, 2, p.Profile, coco.DefaultOptions())
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	prog, err := mtcg.Generate(pl)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	got := prog.Threads[1].String()
	if got != fig3Thread2Golden {
		t.Errorf("thread 2 code changed:\n--- got ---\n%s--- want ---\n%s", got, fig3Thread2Golden)
	}
	// The golden text itself must parse and verify.
	f, err := ir.Parse(fig3Thread2Golden)
	if err != nil {
		t.Fatalf("golden text does not parse: %v", err)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("golden text does not verify: %v", err)
	}
}
