package coco

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/mincut"
	"repro/internal/mtcg"
	"repro/internal/pdg"
)

// Options selects COCO variants; the zero value disables everything, so use
// DefaultOptions for the paper's configuration.
type Options struct {
	// ControlPenalties enables the Section 3.1.2 arc-cost penalties that
	// steer cuts away from points requiring new branches in the target
	// thread.
	ControlPenalties bool
	// ShareMemSync enables the Section 3.1.3 multicut: all memory
	// dependences between a thread pair share synchronization points.
	// When false each memory dependence is cut (and synchronized)
	// independently — the ablation baseline.
	ShareMemSync bool
	// Dinic forces Dinic's algorithm for max-flow. With no engine flag
	// set, the engine is auto-selected by graph size
	// (mincut.MaxFlowAuto): Edmonds–Karp on small networks (its constant
	// factor wins there — the pipeline benchmarks showed it beating a
	// blanket Dinic default on COCO's per-dependence graphs), Dinic in
	// the middle range, push-relabel on large dense ones. Every engine
	// yields identical cut values and communication placements because
	// the source-side and sink-side minimum cuts are unique, independent
	// of which maximum flow an algorithm finds.
	Dinic bool
	// EdmondsKarp forces Edmonds–Karp max-flow (the paper's algorithm),
	// overriding Dinic and PushRelabel.
	EdmondsKarp bool
	// PushRelabel forces FIFO push-relabel max-flow, overriding Dinic.
	PushRelabel bool
}

// DefaultOptions returns the configuration evaluated in the paper. No
// max-flow engine is forced: the engine is picked per flow network by
// size, which never changes a placement (see Options.Dinic).
func DefaultOptions() Options {
	return Options{ControlPenalties: true, ShareMemSync: true}
}

// depKey identifies one optimized dependence bundle.
type depKey struct {
	kind   pdg.Kind
	reg    ir.Reg
	ts, td int
	// seq disambiguates per-dependence memory synchronizations when
	// sharing is disabled; 0 otherwise.
	seq int
}

// planner carries the state of one COCO run (Algorithm 2).
type planner struct {
	f        *ir.Function
	g        *pdg.Graph
	assign   map[*ir.Instr]int
	nThreads int
	prof     *ir.Profile
	opts     Options

	cdg    *analysis.CDG
	chains []dataflow.UseChain
	// relevant[t] is the set of block IDs whose terminating branch is
	// relevant to thread t (Definition 1). It only grows.
	relevant []map[int]bool
	// occupied[t][blockID] reports whether thread t has an instruction in
	// the block; used for the new-block tie-break penalty.
	occupied []map[int]bool
}

// blockPenaltyFor returns the tie-break cost of placing communication from
// ts to td in block b: one sub-unit per thread that would materialize the
// block only for this communication.
func (p *planner) blockPenaltyFor(ts, td int) func(*ir.Block) int64 {
	return func(b *ir.Block) int64 {
		var c int64
		if !p.occupied[ts][b.ID] {
			c++
		}
		if !p.occupied[td][b.ID] {
			c++
		}
		return c
	}
}

// Plan runs COCO (Algorithm 2) and returns the optimized communication plan
// for mtcg.Generate. The function must have had its critical edges split,
// and prof must cover every executed edge.
func Plan(f *ir.Function, g *pdg.Graph, assign map[*ir.Instr]int, numThreads int,
	prof *ir.Profile, opts Options) (*mtcg.Plan, error) {

	cdg, err := analysis.ControlDeps(f, nil)
	if err != nil {
		return nil, err
	}
	p := &planner{
		f: f, g: g, assign: assign, nThreads: numThreads, prof: prof, opts: opts,
		cdg: cdg,
	}
	rd := dataflow.ComputeReachingDefs(f)
	p.chains = rd.Chains(dataflow.AllUses)
	p.initRelevant()
	p.occupied = make([]map[int]bool, numThreads)
	for t := range p.occupied {
		p.occupied[t] = map[int]bool{}
	}
	f.Instrs(func(in *ir.Instr) {
		if in.Op != ir.Jump && in.Op != ir.Nop {
			p.occupied[assign[in]][in.Block().ID] = true
		}
	})

	deps := map[depKey][]mtcg.Point{}
	maxIter := 2 + numThreads*len(f.Blocks)
	for iter := 0; ; iter++ {
		if iter > maxIter {
			return nil, fmt.Errorf("coco: %s did not converge after %d iterations", f.Name, iter)
		}
		next, err := p.iterate()
		if err != nil {
			return nil, err
		}
		if depsEqual(deps, next) {
			deps = next
			break
		}
		deps = next
	}

	plan := &mtcg.Plan{
		F:          f,
		Assign:     assign,
		NumThreads: numThreads,
		Relevant:   p.relevant,
	}
	var keys []depKey
	for k := range deps {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.reg != b.reg {
			return a.reg < b.reg
		}
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.td != b.td {
			return a.td < b.td
		}
		return a.seq < b.seq
	})
	for _, k := range keys {
		if len(deps[k]) == 0 {
			continue
		}
		plan.Comms = append(plan.Comms, &mtcg.Comm{
			Kind: k.kind, Reg: k.reg, Src: k.ts, Dst: k.td, Points: deps[k],
		})
	}
	return plan, nil
}

// initRelevant seeds the relevant-branch sets with rules 1 and 3 of
// Definition 1 plus the branches controlling each thread's own instructions
// (whose control dependences must be implemented regardless of placement).
func (p *planner) initRelevant() {
	p.relevant = make([]map[int]bool, p.nThreads)
	seeds := make([]map[int]bool, p.nThreads)
	for t := range seeds {
		seeds[t] = map[int]bool{}
	}
	p.f.Instrs(func(in *ir.Instr) {
		if in.Op == ir.Jump || in.Op == ir.Nop {
			return
		}
		t := p.assign[in]
		if in.Op == ir.Br {
			seeds[t][in.Block().ID] = true
		}
		for _, d := range p.cdg.Deps(in.Block()) {
			seeds[t][d.Branch.ID] = true
		}
	})
	for t := range seeds {
		p.relevant[t] = p.cdg.ClosureOf(seeds[t])
	}
}

// markPointsRelevant adds the controllers of every chosen point to the
// target thread's relevant set (rule 2 of Definition 1 plus closure).
func (p *planner) markPointsRelevant(td int, pts []mtcg.Point) {
	add := map[int]bool{}
	for _, pt := range pts {
		for id := range p.cdg.Closure(pt.Block) {
			add[id] = true
		}
	}
	for id := range p.cdg.ClosureOf(add) {
		p.relevant[td][id] = true
	}
}

// pointRelevantTo implements Definition 2: every branch the block is
// directly control dependent on must be relevant to t (relevance is closed
// under rule 3, so direct controllers suffice).
func (p *planner) pointRelevantTo(t int, b *ir.Block) bool {
	for _, d := range p.cdg.Deps(b) {
		if !p.relevant[t][d.Branch.ID] {
			return false
		}
	}
	return true
}

// penaltyFor returns the Section 3.1.2 penalty for placing communication
// toward thread td in block b: the summed profile weight of every branch
// that would newly become relevant to td.
func (p *planner) penaltyFor(td int, b *ir.Block) int64 {
	if !p.opts.ControlPenalties {
		return 0
	}
	var pen int64
	for id := range p.cdg.Closure(b) {
		if !p.relevant[td][id] {
			pen += p.prof.BlockWeight(p.f.Blocks[id])
		}
	}
	return pen
}

// executesIn reports whether instruction in runs in thread t: assigned
// there, or a branch replicated there.
func (p *planner) executesIn(in *ir.Instr, t int) bool {
	if in.Op == ir.Jump || in.Op == ir.Nop {
		return false
	}
	if p.assign[in] == t {
		return true
	}
	return in.Op == ir.Br && p.relevant[t][in.Block().ID]
}

// threadPair is an arc of the thread graph G_T.
type threadPair struct{ ts, td int }

// pairs returns the thread-graph arcs in quasi-topological order.
func (p *planner) pairs() []threadPair {
	set := map[threadPair]bool{}
	for _, a := range p.g.Arcs {
		if a.From.Op == ir.Jump || a.To.Op == ir.Jump {
			continue
		}
		ts, td := p.assign[a.From], p.assign[a.To]
		if ts != td {
			set[threadPair{ts, td}] = true
		}
	}
	// Operand dependences of replicated branches also connect threads.
	for _, uc := range p.chains {
		for _, def := range uc.Defs {
			if def == nil {
				continue
			}
			ts := p.assign[def]
			if uc.Use.Op != ir.Br {
				continue
			}
			for td := 0; td < p.nThreads; td++ {
				if td != ts && p.relevant[td][uc.Use.Block().ID] {
					set[threadPair{ts, td}] = true
				}
			}
		}
	}

	// Quasi-topological order of threads (Kahn; cycles broken by thread
	// index).
	adj := make([][]int, p.nThreads)
	indeg := make([]int, p.nThreads)
	for pr := range set {
		adj[pr.ts] = append(adj[pr.ts], pr.td)
		indeg[pr.td]++
	}
	order := make([]int, 0, p.nThreads)
	used := make([]bool, p.nThreads)
	for len(order) < p.nThreads {
		best := -1
		for t := 0; t < p.nThreads; t++ {
			if !used[t] && indeg[t] == 0 {
				best = t
				break
			}
		}
		if best == -1 {
			for t := 0; t < p.nThreads; t++ {
				if !used[t] {
					best = t
					break
				}
			}
		}
		used[best] = true
		order = append(order, best)
		for _, d := range adj[best] {
			indeg[d]--
		}
	}
	pos := make([]int, p.nThreads)
	for i, t := range order {
		pos[t] = i
	}

	var out []threadPair
	for pr := range set {
		out = append(out, pr)
	}
	sort.Slice(out, func(i, j int) bool {
		if pos[out[i].ts] != pos[out[j].ts] {
			return pos[out[i].ts] < pos[out[j].ts]
		}
		return pos[out[i].td] < pos[out[j].td]
	})
	return out
}

// iterate performs one pass over all thread pairs (the body of the
// repeat-until loop of Algorithm 2), returning the dependence placements.
func (p *planner) iterate() (map[depKey][]mtcg.Point, error) {
	deps := map[depKey][]mtcg.Point{}
	for _, pr := range p.pairs() {
		if err := p.optimizePair(pr.ts, pr.td, deps); err != nil {
			return nil, err
		}
	}
	return deps, nil
}

// optimizePair computes placements for every register and for the memory
// dependences from ts to td (Sections 3.1.1–3.1.3).
func (p *planner) optimizePair(ts, td int, deps map[depKey][]mtcg.Point) error {
	// Thread-aware analyses for this pair under the current relevant sets.
	live := dataflow.ComputeLiveness(p.f, func(in *ir.Instr) []ir.Reg {
		if p.executesIn(in, td) {
			return in.Uses()
		}
		return nil
	})
	safety := dataflow.ComputeSafety(p.f, func(in *ir.Instr) bool {
		return p.executesIn(in, ts)
	})

	// Registers with a dependence from a definition in ts to a use in td
	// (including uses by branches replicated into td).
	regSet := map[ir.Reg]bool{}
	for _, uc := range p.chains {
		if !p.executesIn(uc.Use, td) {
			continue
		}
		for _, def := range uc.Defs {
			if def != nil && p.assign[def] == ts && ts != td {
				regSet[uc.Reg] = true
			}
		}
	}
	var regs []ir.Reg
	for r := range regSet {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })

	for _, r := range regs {
		pts, err := p.cutRegister(r, ts, td, live, safety)
		if err != nil {
			return err
		}
		deps[depKey{pdg.KindReg, r, ts, td, 0}] = pts
		p.markPointsRelevant(td, pts)
	}

	// Memory dependences ts -> td.
	var memArcs []*pdg.Arc
	for _, a := range p.g.Arcs {
		if a.Kind == pdg.KindMem && p.assign[a.From] == ts && p.assign[a.To] == td {
			memArcs = append(memArcs, a)
		}
	}
	sort.Slice(memArcs, func(i, j int) bool {
		if memArcs[i].From.ID != memArcs[j].From.ID {
			return memArcs[i].From.ID < memArcs[j].From.ID
		}
		return memArcs[i].To.ID < memArcs[j].To.ID
	})
	if len(memArcs) > 0 {
		if err := p.cutMemory(ts, td, memArcs, deps); err != nil {
			return err
		}
	}
	return nil
}

// cutRegister solves the single register min-cut problem of Section 3.1.1.
func (p *planner) cutRegister(r ir.Reg, ts, td int,
	live *dataflow.Liveness, safety *dataflow.Safety) ([]mtcg.Point, error) {

	// Per-block per-position live and safe tables.
	liveTab := make(map[int][]dataflow.RegSet)
	safeTab := make(map[int][]dataflow.RegSet)
	for _, b := range p.f.Blocks {
		liveTab[b.ID] = live.BlockLive(b)
		safeTab[b.ID] = safety.BlockSafe(b)
	}

	fg, err := newFlowGraph(p.f, arcCosts{
		prof:         p.prof,
		liveAt:       func(pt mtcg.Point) bool { return liveTab[pt.Block.ID][pt.Index].Has(r) },
		safeAt:       func(pt mtcg.Point) bool { return safeTab[pt.Block.ID][pt.Index].Has(r) },
		relevantSrc:  func(b *ir.Block) bool { return p.pointRelevantTo(ts, b) },
		penalty:      func(b *ir.Block) int64 { return p.penaltyFor(td, b) },
		blockPenalty: p.blockPenaltyFor(ts, td),
	})
	if err != nil {
		return nil, err
	}
	p.f.Instrs(func(in *ir.Instr) {
		if in.Defs() == r && p.assign[in] == ts {
			fg.addSource(in)
		}
		if in.UsesReg(r) && p.executesIn(in, td) {
			fg.addSink(in)
		}
	})

	var flow int64
	switch {
	case p.opts.EdmondsKarp:
		flow = fg.g.MaxFlow(fg.s, fg.t)
	case p.opts.PushRelabel:
		flow = fg.g.MaxFlowPushRelabel(fg.s, fg.t)
	case p.opts.Dinic:
		flow = fg.g.MaxFlowDinic(fg.s, fg.t)
	default:
		flow = fg.g.MaxFlowAuto(fg.s, fg.t)
	}
	if flow >= mincut.Inf {
		return nil, fmt.Errorf("coco: no finite cut for %v from thread %d to %d in %s",
			r, ts, td, p.f.Name)
	}
	if flow == 0 {
		return nil, nil // no live path: nothing to communicate
	}
	// Source-side cut: the earliest placement, pipelining values to the
	// consumer as soon as possible.
	return fg.cutPoints(fg.g.MinCutSourceSide(fg.s))
}

// cutMemory solves the multi source–sink problem of Section 3.1.3.
func (p *planner) cutMemory(ts, td int, arcs []*pdg.Arc, deps map[depKey][]mtcg.Point) error {
	build := func() (*flowGraph, error) {
		return newFlowGraph(p.f, arcCosts{
			prof:         p.prof,
			relevantSrc:  func(b *ir.Block) bool { return p.pointRelevantTo(ts, b) },
			penalty:      func(b *ir.Block) int64 { return p.penaltyFor(td, b) },
			blockPenalty: p.blockPenaltyFor(ts, td),
		})
	}

	if p.opts.ShareMemSync {
		// The successive-pair heuristic is order sensitive: cutting a
		// late-source pair first places synchronization where earlier
		// pairs' paths also flow, maximizing sharing. Try both program
		// orders and keep the cheaper outcome.
		reversed := make([]*pdg.Arc, len(arcs))
		for i, a := range arcs {
			reversed[len(arcs)-1-i] = a
		}
		var bestPts []mtcg.Point
		bestCost := int64(-1)
		for _, order := range [][]*pdg.Arc{reversed, arcs} {
			fg, err := build()
			if err != nil {
				return err
			}
			var pairs []mincut.Pair
			for _, a := range order {
				pairs = append(pairs, mincut.Pair{
					S: fg.instrNode[a.From.ID],
					T: fg.instrNode[a.To.ID],
				})
			}
			res := mincut.MultiCut(fg.g, pairs)
			if res.Cost >= mincut.Inf {
				return fmt.Errorf("coco: no finite memory multicut from thread %d to %d in %s",
					ts, td, p.f.Name)
			}
			pts, err := fg.cutPoints(res.Arcs)
			if err != nil {
				return err
			}
			if bestCost < 0 || res.Cost < bestCost ||
				(res.Cost == bestCost && len(pts) < len(bestPts)) {
				bestCost, bestPts = res.Cost, pts
			}
		}
		deps[depKey{pdg.KindMem, ir.NoReg, ts, td, 0}] = bestPts
		p.markPointsRelevant(td, bestPts)
		return nil
	}

	// Ablation: every memory dependence synchronized independently.
	for i, a := range arcs {
		fg, err := build()
		if err != nil {
			return err
		}
		if fg.g.MaxFlowAuto(fg.instrNode[a.From.ID], fg.instrNode[a.To.ID]) >= mincut.Inf {
			return fmt.Errorf("coco: no finite memory cut for %v in %s", a, p.f.Name)
		}
		pts, err := fg.cutPoints(fg.g.MinCutSinkSide(fg.instrNode[a.To.ID]))
		if err != nil {
			return err
		}
		deps[depKey{pdg.KindMem, ir.NoReg, ts, td, i + 1}] = pts
		p.markPointsRelevant(td, pts)
	}
	return nil
}

// depsEqual compares two placement maps.
func depsEqual(a, b map[depKey][]mtcg.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}
