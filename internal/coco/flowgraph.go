// Package coco implements the COmpiler Communication Optimization framework
// (Section 3 of the paper): thread-aware data-flow analyses combined with
// graph min-cut to place the communication and synchronization instructions
// that MTCG inserts, minimizing their dynamic count.
package coco

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/mincut"
	"repro/internal/mtcg"
)

// flowGraph is the G_f of Sections 3.1.1–3.1.3: nodes are the original
// instructions plus one entry node per basic block, plus the special source
// S and sink T; arcs are control flow at instruction granularity, each
// finite arc corresponding to one program point where communication may be
// placed.
type flowGraph struct {
	fn     *ir.Function
	g      *mincut.Graph
	s, t   int
	points map[mincut.ArcID]mtcg.Point
	// instrNode maps instruction IDs to node indices.
	instrNode []int
}

// arcCosts parameterizes flow-graph construction.
type arcCosts struct {
	prof *ir.Profile
	// liveAt reports whether the optimized value is live at the point;
	// dead points get no arc (they cannot lie on a def→use path). nil
	// means always live (memory).
	liveAt func(mtcg.Point) bool
	// safeAt reports Property 3 at the point; unsafe points cost Inf.
	// nil means always safe (memory).
	safeAt func(mtcg.Point) bool
	// relevantSrc reports Property 2: whether the point is relevant to
	// the source thread. Irrelevant points cost Inf.
	relevantSrc func(*ir.Block) bool
	// penalty is the Section 3.1.2 control-flow penalty added to arcs
	// whose points would make new branches relevant to the target thread.
	penalty func(*ir.Block) int64
	// blockPenalty is a sub-unit tie-break charged to points in blocks
	// that neither thread materializes anyway: placing communication
	// there adds whole blocks (and their jumps) to the generated thread
	// CFGs. All other costs are scaled by costScale so this never
	// overrides a genuinely cheaper cut.
	blockPenalty func(*ir.Block) int64
}

// costScale leaves room below one profile-count unit for tie-break
// penalties.
const costScale = 16

// nodeEntry returns the node index of a block's entry.
func (fg *flowGraph) nodeEntry(b *ir.Block) int { return b.ID }

// newFlowGraph builds the shared skeleton: every feasible point becomes an
// arc with its profile weight (plus penalties), or Inf when a property
// forbids cutting there. It fails on a function whose critical edges were
// not split — a malformed input, not a planner bug — so callers can surface
// the bad function instead of crashing.
func newFlowGraph(f *ir.Function, costs arcCosts) (*flowGraph, error) {
	nBlocks := len(f.Blocks)
	nInstrs := 0
	instrNode := make([]int, f.NumInstrIDs())
	for i := range instrNode {
		instrNode[i] = -1
	}
	f.Instrs(func(in *ir.Instr) {
		instrNode[in.ID] = nBlocks + nInstrs
		nInstrs++
	})
	fg := &flowGraph{
		fn:        f,
		g:         mincut.New(nBlocks + nInstrs + 2),
		s:         nBlocks + nInstrs,
		t:         nBlocks + nInstrs + 1,
		points:    map[mincut.ArcID]mtcg.Point{},
		instrNode: instrNode,
	}

	cost := func(pt mtcg.Point, base int64) (int64, bool) {
		if costs.liveAt != nil && !costs.liveAt(pt) {
			return 0, false
		}
		if !costs.relevantSrc(pt.Block) {
			return mincut.Inf, true
		}
		if costs.safeAt != nil && !costs.safeAt(pt) {
			return mincut.Inf, true
		}
		c := (base + costs.penalty(pt.Block)) * costScale
		if costs.blockPenalty != nil {
			c += costs.blockPenalty(pt.Block)
		}
		return c, true
	}
	addPoint := func(from, to int, pt mtcg.Point, base int64) {
		c, ok := cost(pt, base)
		if !ok {
			return
		}
		id := fg.g.AddArc(from, to, c)
		fg.points[id] = pt
	}

	for _, b := range f.Blocks {
		w := costs.prof.BlockWeight(b)
		prev := fg.nodeEntry(b)
		for i, in := range b.Instrs {
			node := instrNode[in.ID]
			addPoint(prev, node, mtcg.Point{Block: b, Index: i}, w)
			prev = node
		}
		// Cross-block arcs from the terminator to successor entries.
		// Critical edges are split, so each edge has a unique point:
		// before the terminator if the source has one successor,
		// otherwise at the target's entry.
		for _, s := range b.Succs {
			var pt mtcg.Point
			if len(b.Succs) == 1 {
				pt = mtcg.Point{Block: b, Index: len(b.Instrs) - 1}
			} else {
				if len(s.Preds) != 1 {
					return nil, fmt.Errorf("coco: critical edge %s->%s in %s not split",
						b.Name, s.Name, f.Name)
				}
				pt = mtcg.Point{Block: s, Index: 0}
			}
			addPoint(prev, fg.nodeEntry(s), pt, costs.prof.EdgeWeight(b, s))
		}
	}
	return fg, nil
}

// addSource connects S to an instruction node with infinite capacity.
func (fg *flowGraph) addSource(in *ir.Instr) {
	fg.g.AddArc(fg.s, fg.instrNode[in.ID], mincut.Inf)
}

// addSink connects an instruction node to T with infinite capacity.
func (fg *flowGraph) addSink(in *ir.Instr) {
	fg.g.AddArc(fg.instrNode[in.ID], fg.t, mincut.Inf)
}

// cutPoints converts cut arcs back to program points, deduplicated in
// deterministic order. A cut containing a special (source/sink/infinite)
// arc means the min-cut solver returned an unusable cut; report it rather
// than crash mid-optimization.
func (fg *flowGraph) cutPoints(arcs []mincut.ArcID) ([]mtcg.Point, error) {
	seen := map[mtcg.Point]bool{}
	var out []mtcg.Point
	for _, id := range arcs {
		pt, ok := fg.points[id]
		if !ok {
			return nil, fmt.Errorf("coco: cut in %s includes a special arc", fg.fn.Name)
		}
		if !seen[pt] {
			seen[pt] = true
			out = append(out, pt)
		}
	}
	return out, nil
}
