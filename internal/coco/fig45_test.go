package coco_test

import (
	"testing"

	"repro/internal/coco"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/pdg"
	"repro/internal/testprog"
)

func TestFig4CommunicationLeavesLoop(t *testing.T) {
	p := testprog.Fig4()
	pl := plan(t, p, coco.DefaultOptions())

	c := findComm(pl, p.Regs["r1"])
	if c == nil {
		t.Fatalf("no r1 communication: %v", pl.Comms)
	}
	if len(c.Points) != 1 {
		t.Fatalf("r1 placed at %d points %v, want 1", len(c.Points), c.Points)
	}
	// The paper: any cost-1 cut "essentially corresponds to communicating
	// r1 at block B3" — after loop 1, before loop 2.
	pt := c.Points[0]
	if pt.Block == p.Blocks["B2"] || pt.Block == p.Blocks["B4"] {
		t.Errorf("r1 communicated inside a loop at %v", pt)
	}
	// Loop 1's branch C must not be relevant to T_t: the first loop
	// disappears from the consumer thread.
	if pl.Relevant[1][p.Blocks["B2"].ID] {
		t.Error("loop-1 branch C still relevant to T_t")
	}
}

func TestFig4ThreadTwoLosesFirstLoop(t *testing.T) {
	p := testprog.Fig4()
	prog := generate(t, plan(t, p, coco.DefaultOptions()))

	if b := prog.Threads[1].BlockByName("B2"); b != nil {
		t.Errorf("thread 2 still contains loop-1 block B2:\n%s", prog.Threads[1])
	}

	mt, err := interp.RunMT(interp.MTConfig{
		Threads: prog.Threads, NumQueues: prog.NumQueues,
		Assign: p.Assign, MaxSteps: 1_000_000,
	})
	if err != nil {
		t.Fatalf("RunMT: %v", err)
	}
	// Dynamic communication drops from 10 (every loop-1 iteration) to 1.
	if mt.Stats.Produce != 1 || mt.Stats.Consume != 1 {
		t.Errorf("produce/consume = %d/%d, want 1/1", mt.Stats.Produce, mt.Stats.Consume)
	}
	if mt.Stats.DupBranch != 0 {
		t.Errorf("duplicated branches executed %d times, want 0", mt.Stats.DupBranch)
	}
	if len(mt.LiveOuts) != 1 || mt.LiveOuts[0] != 275 {
		t.Errorf("live-out = %v, want [275]", mt.LiveOuts)
	}
}

func TestFig5PenaltiesAvoidHammock(t *testing.T) {
	p := testprog.Fig5()
	pl := plan(t, p, coco.DefaultOptions())

	c := findComm(pl, p.Regs["r1"])
	if c == nil {
		t.Fatalf("no r1 communication: %v", pl.Comms)
	}
	// With control-flow penalties, communication of r1 must avoid the
	// B3/B4 arms (which would make branch B relevant to T_t): it lands in
	// B6 or at the top of B7, at cost 8.
	for _, pt := range c.Points {
		if pt.Block == p.Blocks["B3"] || pt.Block == p.Blocks["B4"] {
			t.Errorf("r1 placed in hammock arm at %v", pt)
		}
	}
	if pl.Relevant[1][p.Blocks["B2"].ID] {
		t.Error("branch B became relevant to T_t despite penalties")
	}

	// Without penalties the two placements tie (cost 8 either way); the
	// earliest-cut extraction then picks the arms, making B relevant.
	noPen := coco.DefaultOptions()
	noPen.ControlPenalties = false
	pl2 := plan(t, p, noPen)
	c2 := findComm(pl2, p.Regs["r1"])
	if c2 == nil {
		t.Fatal("no r1 communication without penalties")
	}
	inArms := 0
	for _, pt := range c2.Points {
		if pt.Block == p.Blocks["B3"] || pt.Block == p.Blocks["B4"] {
			inArms++
		}
	}
	if inArms == 0 {
		t.Log("penalty-free cut also avoided the arms (tie broken favourably); penalties still guarantee it")
	}
}

func TestFig5SharedMemorySync(t *testing.T) {
	p := testprog.Fig5()
	pl := plan(t, p, coco.DefaultOptions())

	c := findComm(pl, ir.NoReg)
	if c == nil {
		t.Fatalf("no memory synchronization: %v", pl.Comms)
	}
	// Both memory dependences (D->K on y, G->J on x) share one
	// synchronization point placed after G and before the load of x.
	if len(c.Points) != 1 {
		t.Fatalf("memory sync at %d points %v, want 1 shared point", len(c.Points), c.Points)
	}
	pt := c.Points[0]
	validBlocks := map[*ir.Block]bool{
		p.Blocks["B6"]: true, p.Blocks["B7"]: true, p.Blocks["B8"]: true,
	}
	if !validBlocks[pt.Block] {
		t.Errorf("memory sync at %v, want between G and the loads (B6/B7/B8)", pt)
	}
	// The H-controlled region is irrelevant to T_s: no sync there.
	if pt.Block == p.Blocks["B8a"] || pt.Block == p.Blocks["B9"] {
		t.Errorf("memory sync placed in T_t-only region at %v", pt)
	}
}

func TestFig5IndependentSyncCostsMore(t *testing.T) {
	p := testprog.Fig5()

	shared := plan(t, p, coco.DefaultOptions())
	noShare := coco.DefaultOptions()
	noShare.ShareMemSync = false
	indep := plan(t, p, noShare)

	count := func(pl *mtcg.Plan) int {
		n := 0
		for _, c := range pl.Comms {
			if c.Kind == pdg.KindMem {
				n += len(c.Points)
			}
		}
		return n
	}
	if count(shared) >= count(indep) {
		t.Errorf("shared sync points (%d) should be fewer than independent (%d)",
			count(shared), count(indep))
	}
}

func TestFig5EquivalenceAllPaths(t *testing.T) {
	p := testprog.Fig5()
	prog := generate(t, plan(t, p, coco.DefaultOptions()))

	for _, p2 := range []int64{0, 1} {
		for _, p3 := range []int64{0, 1} {
			args := []int64{7, p2, p3}
			st, err := interp.Run(p.F, args, make(interp.Memory, 2), 1_000_000)
			if err != nil {
				t.Fatalf("ST: %v", err)
			}
			mt, err := interp.RunMT(interp.MTConfig{
				Threads: prog.Threads, NumQueues: prog.NumQueues,
				Assign: p.Assign, Args: args,
				Mem: make(interp.Memory, 2), MaxSteps: 1_000_000,
			})
			if err != nil {
				t.Fatalf("MT (p2=%d,p3=%d): %v", p2, p3, err)
			}
			for i := range st.LiveOuts {
				if st.LiveOuts[i] != mt.LiveOuts[i] {
					t.Errorf("p2=%d p3=%d: live-out %d: ST %d MT %d",
						p2, p3, i, st.LiveOuts[i], mt.LiveOuts[i])
				}
			}
			for a := range st.Mem {
				if st.Mem[a] != mt.Mem[a] {
					t.Errorf("p2=%d p3=%d: mem[%d]: ST %d MT %d",
						p2, p3, a, st.Mem[a], mt.Mem[a])
				}
			}
		}
	}
}

func TestCOCONeverIncreasesCommunication(t *testing.T) {
	// Across all fixtures: dynamic communication with COCO <= naive MTCG
	// (the paper: "COCO never resulted in an increase").
	fixtures := []struct {
		name string
		prog *testprog.Prog
		args []int64
		mem  int64
	}{
		{"fig3", testprog.Fig3(), []int64{5, 1, 0}, 0},
		{"fig4", testprog.Fig4(), nil, 0},
		{"fig5", testprog.Fig5(), []int64{7, 1, 1}, 2},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			g := pdg.Build(fx.prog.F, fx.prog.Objects)
			naive, err := mtcg.Generate(mtcg.NaivePlan(fx.prog.F, g, fx.prog.Assign, 2))
			if err != nil {
				t.Fatalf("naive: %v", err)
			}
			opt := generate(t, plan(t, fx.prog, coco.DefaultOptions()))
			run := func(prog *mtcg.Program) int64 {
				mt, err := interp.RunMT(interp.MTConfig{
					Threads: prog.Threads, NumQueues: prog.NumQueues,
					Assign: fx.prog.Assign, Args: fx.args,
					Mem: make(interp.Memory, fx.mem), MaxSteps: 1_000_000,
				})
				if err != nil {
					t.Fatalf("RunMT: %v", err)
				}
				return mt.Stats.Comm()
			}
			n, o := run(naive), run(opt)
			if o > n {
				t.Errorf("COCO increased communication: naive %d, COCO %d", n, o)
			}
		})
	}
}
