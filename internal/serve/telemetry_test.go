package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/obstest"
	"repro/internal/vfs"
)

var updateGolden = flag.Bool("update", false, "rewrite the flight-recorder golden dump")

// TestTraceLifecycle: every request gets a trace ID — echoed in the
// X-Gmtserve-Trace header, in batch items, and (for errors) in the body
// — and its span tree is retrievable at GET /v1/trace/{id} while
// retained.
func TestTraceLifecycle(t *testing.T) {
	s := newServer(t, Options{Degrade: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := http.Post(ts.URL+"/v1/schedule", "application/json",
		strings.NewReader(`{"workload":"adpcmdec","partitioner":"dswp"}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	id := res.Header.Get("X-Gmtserve-Trace")
	if id == "" {
		t.Fatal("schedule response carries no X-Gmtserve-Trace header")
	}

	tr, err := http.Get(ts.URL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(tr.Body)
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/trace/%s: %d: %s", id, tr.StatusCode, buf.Bytes())
	}
	var doc struct {
		TraceID string `json:"trace_id"`
		Spans   []struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace body is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.TraceID != id {
		t.Errorf("trace body trace_id = %q, want %q", doc.TraceID, id)
	}
	names := map[string]bool{}
	for _, sp := range doc.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"request", "cache.lookup", "admission", "cache.recheck", "compute.comm", "cache.put"} {
		if !names[want] {
			t.Errorf("trace lacks span %q (spans: %v)", want, names)
		}
	}
	if doc.Spans[0].Attrs["status"] != float64(200) || doc.Spans[0].Attrs["source"] != "cold" {
		t.Errorf("root span attrs = %v", doc.Spans[0].Attrs)
	}

	// Unknown IDs 404 with a JSON error body (no trace_id of their own).
	tr, err = http.Get(ts.URL + "/v1/trace/no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if tr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", tr.StatusCode)
	}

	// Batch items carry per-request trace IDs, all distinct.
	br, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"requests":[{"workload":"adpcmdec","partitioner":"dswp"},{"workload":"nope"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var batch BatchResponse
	if err := json.NewDecoder(br.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	br.Body.Close()
	if len(batch.Responses) != 2 || batch.Responses[0].TraceID == "" || batch.Responses[1].TraceID == "" {
		t.Fatalf("batch items missing trace IDs: %+v", batch.Responses)
	}
	if batch.Responses[0].TraceID == batch.Responses[1].TraceID {
		t.Error("distinct batch items share a trace ID")
	}
	// The failed item's error body carries its trace ID inline.
	var eb errorBody
	if err := json.Unmarshal(batch.Responses[1].Body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.TraceID != batch.Responses[1].TraceID {
		t.Errorf("error body trace_id = %q, want %q", eb.TraceID, batch.Responses[1].TraceID)
	}

	if st := s.StatsSnapshot(); st.TracesRetained < 3 {
		t.Errorf("traces_retained = %d, want >= 3", st.TracesRetained)
	}
}

// TestGETEndpointContentTypes is the regression table over every GET
// endpoint's status code and Content-Type — including the Prometheus
// exposition, which must NOT be application/json.
func TestGETEndpointContentTypes(t *testing.T) {
	s := newServer(t, Options{Degrade: true})
	res := s.Do(context.Background(), &Request{Workload: "adpcmdec"})
	mustOK(t, res)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		path   string
		status int
		ct     string
	}{
		{"/v1/workloads", http.StatusOK, "application/json"},
		{"/v1/partitioners", http.StatusOK, "application/json"},
		{"/v1/stats", http.StatusOK, "application/json"},
		{"/v1/metrics", http.StatusOK, "application/json"},
		{"/v1/healthz", http.StatusOK, "application/json"},
		{"/v1/healthz?ready=1", http.StatusOK, "application/json"},
		{"/v1/trace/" + res.TraceID, http.StatusOK, "application/json"},
		{"/v1/trace/unknown", http.StatusNotFound, "application/json"},
		{"/metrics", http.StatusOK, obs.PromContentType},
	} {
		r, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := readAll(r)
		if r.StatusCode != tc.status {
			t.Errorf("GET %s: status %d, want %d", tc.path, r.StatusCode, tc.status)
		}
		if ct := r.Header.Get("Content-Type"); ct != tc.ct {
			t.Errorf("GET %s: Content-Type %q, want %q", tc.path, ct, tc.ct)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", tc.path)
		}
		// The Prometheus endpoint must satisfy the same parser the CI
		// smoke job applies to a live scrape.
		if tc.path == "/metrics" {
			fams := obstest.CheckProm(t, body)
			for _, want := range []string{"serve_requests", "serve_admission_queue_depth", "serve_admission_deadline_slack_ms"} {
				if fams[want] == nil {
					t.Errorf("/metrics lacks family %q", want)
				}
			}
		}
	}
}

func readAll(r *http.Response) ([]byte, error) {
	defer r.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r.Body)
	return buf.Bytes(), err
}

// TestHealthTransitionScript drives the availability state machine
// through a scripted event sequence — breaker trips, recoveries, drain —
// and asserts the /v1/healthz?ready=1 status code at every stop,
// including that draining is terminal (a later breaker close cannot
// resurrect readiness).
func TestHealthTransitionScript(t *testing.T) {
	s := newServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, step := range []struct {
		name      string
		event     func()
		wantState string
		wantReady int
	}{
		{"initial", func() {}, "healthy", http.StatusOK},
		{"breaker trips", func() { s.health.setBreaker(true) }, "degraded", http.StatusOK},
		{"breaker closes", func() { s.health.setBreaker(false) }, "healthy", http.StatusOK},
		{"breaker trips again", func() { s.health.setBreaker(true) }, "degraded", http.StatusOK},
		{"drain while degraded", func() { s.BeginDrain() }, "draining", http.StatusServiceUnavailable},
		{"breaker close cannot undrain", func() { s.health.setBreaker(false) }, "draining", http.StatusServiceUnavailable},
		{"second drain is idempotent", func() { s.BeginDrain() }, "draining", http.StatusServiceUnavailable},
	} {
		step.event()
		r, err := http.Get(ts.URL + "/v1/healthz?ready=1")
		if err != nil {
			t.Fatal(err)
		}
		var body healthzBody
		if derr := json.NewDecoder(r.Body).Decode(&body); derr != nil {
			t.Fatal(derr)
		}
		r.Body.Close()
		if r.StatusCode != step.wantReady || body.State != step.wantState || !body.Ok {
			t.Errorf("%s: readiness = %d state %q ok %v, want %d %q true",
				step.name, r.StatusCode, body.State, body.Ok, step.wantReady, step.wantState)
		}
		// Liveness stays 200 in every state.
		r, err = http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s: liveness = %d, want 200", step.name, r.StatusCode)
		}
	}
}

// histogramState renders every histogram metric in the registry — the
// slice of the registry whose serialization must be byte-stable across
// worker-pool sizes for an identical serial admission sequence.
func histogramState(s *Server) string {
	var b strings.Builder
	for _, m := range s.Metrics().Snapshot() {
		if m.Type != "histogram" {
			continue
		}
		fmt.Fprintf(&b, "%s sum=%d count=%d buckets=%v\n", m.Name, m.Value, m.Count, m.Buckets)
	}
	return b.String()
}

// TestAdmissionHistogramsStableAcrossJobs: the admission-time queue-depth
// and deadline-slack distributions are observed per computation, and an
// identical request sequence must serialize them byte-identically at any
// -j — colds run serially here, and the concurrent batch that exercises
// the pool afterwards is all warm hits, which never enter admission.
func TestAdmissionHistogramsStableAcrossJobs(t *testing.T) {
	run := func(jobs int) (string, Stats) {
		s := newServer(t, Options{Degrade: true, Jobs: jobs})
		ctx := context.Background()
		for _, req := range []*Request{
			{Workload: "ks", DeadlineMS: 30_000},
			{Workload: "adpcmdec"},
		} {
			mustOK(t, s.Do(ctx, req))
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		r, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(
			`{"requests":[{"workload":"ks","deadline_ms":30000},{"workload":"adpcmdec"},{"workload":"ks","deadline_ms":30000},{"workload":"adpcmdec"}]}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := readAll(r)
		var batch BatchResponse
		if err := json.Unmarshal(body, &batch); err != nil {
			t.Fatal(err)
		}
		for i, item := range batch.Responses {
			if item.Status != http.StatusOK || item.Source != "warm" {
				t.Fatalf("jobs=%d batch item %d: status %d source %q, want 200 warm", jobs, i, item.Status, item.Source)
			}
		}
		return histogramState(s), s.StatsSnapshot()
	}

	h1, st1 := run(1)
	h4, _ := run(4)
	if h1 != h4 {
		t.Errorf("histogram serialization differs between jobs=1 and jobs=4:\n%s\nvs\n%s", h1, h4)
	}
	if !strings.Contains(h1, "serve.admission.queue_depth sum=0 count=2") {
		t.Errorf("queue-depth histogram missing the two serial admissions:\n%s", h1)
	}
	if !strings.Contains(h1, "serve.admission.deadline_slack_ms") {
		t.Errorf("deadline-slack histogram missing:\n%s", h1)
	}
	// One observation per computation: the warm batch added none.
	if st1.Compute != 2 {
		t.Fatalf("compute = %d, want 2", st1.Compute)
	}
}

// TestAccessLog: one structured JSON line per request, in order, with
// the request's trace ID, outcome, cache path, and logical times.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	s := newServer(t, Options{Degrade: true, AccessLog: &buf})
	ctx := context.Background()
	cold := s.Do(ctx, &Request{Workload: "adpcmdec", Partitioner: "dswp"})
	mustOK(t, cold)
	warm := s.Do(ctx, &Request{Workload: "adpcmdec", Partitioner: "dswp"})
	mustOK(t, warm)
	bad := s.Do(ctx, &Request{Workload: "nope"})
	if bad.Status != http.StatusBadRequest {
		t.Fatalf("status = %d", bad.Status)
	}

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("access log has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var recs []accessLine
	for _, ln := range lines {
		var rec accessLine
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("access line is not valid JSON: %v\n%s", err, ln)
		}
		recs = append(recs, rec)
	}
	for i, want := range []struct {
		trace  string
		status int
		source string
		cache  string
	}{
		{cold.TraceID, 200, "cold", "miss"},
		{warm.TraceID, 200, "warm", "mem"},
		{bad.TraceID, 400, "error", "none"},
	} {
		got := recs[i]
		if got.TraceID != want.trace || got.Status != want.status || got.Source != want.source || got.Cache != want.cache {
			t.Errorf("line %d = %+v, want trace %s status %d source %s cache %s",
				i, got, want.trace, want.status, want.source, want.cache)
		}
		if got.End <= got.Start || got.Start <= 0 {
			t.Errorf("line %d: logical times [%d, %d] not increasing", i, got.Start, got.End)
		}
	}
	if recs[0].Workload != "adpcmdec" || recs[0].Partitioner != "dswp" || recs[0].Degraded != 0 {
		t.Errorf("cold line = %+v", recs[0])
	}
}

// eioSeedFiringFirst finds (deterministically) the smallest ReadEIO seed
// whose very first read is on the fault schedule, so a scenario's opening
// cache lookup is guaranteed to hit the fault and retry.
func eioSeedFiringFirst(t *testing.T) int64 {
	t.Helper()
	probe := filepath.Join(t.TempDir(), "does-not-exist")
	for seed := int64(1); seed <= 64; seed++ {
		f := vfs.NewFaulty(vfs.Spec{Class: vfs.ReadEIO, Seed: seed})
		if _, err := f.ReadFile(probe); errors.Is(err, syscall.EIO) {
			return seed
		}
	}
	t.Fatal("no ReadEIO seed <= 64 fires on the first read")
	return 0
}

// faultScenario runs the acceptance scenario once on a fresh durable
// server over injected read faults: a budget so tight the degradation
// chain exhausts, yielding a 5xx whose trace shows both the cache retry
// and every degradation hop, and whose flight dump lands on disk.
type faultScenario struct {
	res     Result
	trace   []byte
	dump    []byte
	metrics []byte
	access  []byte
	stats   Stats
}

func runFaultScenario(t *testing.T, seed int64) faultScenario {
	t.Helper()
	flightDir := t.TempDir()
	var access bytes.Buffer
	s := newServer(t, Options{
		CacheDir:  t.TempDir(),
		Degrade:   true,
		Durable:   true,
		FS:        vfs.NewFaulty(vfs.Spec{Class: vfs.ReadEIO, Seed: seed}),
		FlightDir: flightDir,
		AccessLog: &access,
	})
	req := &Request{Workload: "ks", Budget: Budget{MeasureSteps: 1}}
	res := s.Do(context.Background(), req)

	trace, ok := s.traces.Get(res.TraceID)
	if !ok {
		t.Fatalf("trace %s not retained", res.TraceID)
	}
	dump, err := os.ReadFile(filepath.Join(flightDir, "flight-001-5xx.json"))
	if err != nil {
		t.Fatalf("flight dump not written: %v", err)
	}
	var mb bytes.Buffer
	if err := s.Metrics().WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	return faultScenario{
		res:     res,
		trace:   append([]byte(nil), trace...),
		dump:    dump,
		metrics: mb.Bytes(),
		access:  append([]byte(nil), access.Bytes()...),
		stats:   s.StatsSnapshot(),
	}
}

// TestFaultedRequestTelemetry is the PR's acceptance scenario: on a
// durable server under injected disk read faults, a request whose budget
// exhausts the degradation chain yields a 5xx carrying its trace ID in
// the body; the retained span tree shows the cache retry and the
// degradation hops; the flight recorder snapshots to disk; and a second
// identical run reproduces every artifact byte for byte.
func TestFaultedRequestTelemetry(t *testing.T) {
	seed := eioSeedFiringFirst(t)
	a := runFaultScenario(t, seed)

	if a.res.Status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500: %s", a.res.Status, a.res.Body)
	}
	var eb errorBody
	if err := json.Unmarshal(a.res.Body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.TraceID != a.res.TraceID || eb.TraceID == "" {
		t.Fatalf("error body trace_id = %q, want %q", eb.TraceID, a.res.TraceID)
	}
	// The chain exhausts either with the engine's sentinel message or, when
	// the single-threaded last resort is the one that runs out of budget,
	// with that fallback's own error.
	if !strings.Contains(eb.Error, "degradation chain exhausted") &&
		!strings.Contains(eb.Error, "single-threaded fallback") {
		t.Fatalf("error = %q, want an exhausted degradation chain", eb.Error)
	}

	var doc struct {
		Spans []struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(a.trace, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, a.trace)
	}
	degrades, retries := 0, 0.0
	for _, sp := range doc.Spans {
		if sp.Name == "degrade" {
			degrades++
		}
		if sp.Name == "cache.lookup" {
			if v, ok := sp.Attrs["retries"].(float64); ok {
				retries = v
			}
		}
	}
	// gremio fails, dswp fails, single-threaded fails: two hops recorded
	// before the chain exhausts.
	if degrades < 2 {
		t.Errorf("trace shows %d degradation hops, want >= 2:\n%s", degrades, a.trace)
	}
	if retries < 1 {
		t.Errorf("cache.lookup span shows %v retries, want >= 1:\n%s", retries, a.trace)
	}

	if !json.Valid(a.dump) {
		t.Fatalf("flight dump is not valid JSON:\n%s", a.dump)
	}
	if !bytes.Contains(a.dump, []byte(a.res.TraceID)) {
		t.Error("flight dump does not contain the failing request's trace")
	}
	if a.stats.FlightDumps != 1 || a.stats.FlightDumpErrors != 0 {
		t.Errorf("flight_dumps = %d, errors = %d, want 1 / 0", a.stats.FlightDumps, a.stats.FlightDumpErrors)
	}
	if a.stats.CacheRetries < 1 {
		t.Errorf("cache_retries = %d, want >= 1", a.stats.CacheRetries)
	}

	// Determinism: a second identical run reproduces every artifact.
	b := runFaultScenario(t, seed)
	for _, art := range []struct {
		name string
		x, y []byte
	}{
		{"response body", a.res.Body, b.res.Body},
		{"trace", a.trace, b.trace},
		{"flight dump", a.dump, b.dump},
		{"metrics", a.metrics, b.metrics},
		{"access log", a.access, b.access},
	} {
		if !bytes.Equal(art.x, art.y) {
			t.Errorf("%s differs between identical runs:\n%s\nvs\n%s", art.name, art.x, art.y)
		}
	}
	if a.res.TraceID != b.res.TraceID {
		t.Errorf("trace IDs differ between identical runs: %s vs %s", a.res.TraceID, b.res.TraceID)
	}
}

// TestFlightDumpGolden pins the exact bytes of the fault scenario's
// flight-recorder dump: logical clocks and seeded faults make it fully
// deterministic, so any diff means the recorded request lifecycle
// changed. Regenerate deliberately with:
//
//	go test ./internal/serve -run FlightDumpGolden -update
func TestFlightDumpGolden(t *testing.T) {
	seed := eioSeedFiringFirst(t)
	got := runFaultScenario(t, seed).dump
	const path = "testdata/flight_dump.golden.json"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/serve -run FlightDumpGolden -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("flight dump differs from golden (%d bytes vs %d); if intended, rerun with -update\ngot:\n%s",
			len(got), len(want), got)
	}
}

// TestFlightDumpOnDrainAndBreaker: BeginDrain and a breaker trip each
// snapshot the recorder; with no flight dir configured, neither writes
// anything and nothing fails.
func TestFlightDumpOnDrainAndBreaker(t *testing.T) {
	flightDir := t.TempDir()
	s := newServer(t, Options{Degrade: true, FlightDir: flightDir})
	mustOK(t, s.Do(context.Background(), &Request{Workload: "adpcmdec"}))
	s.BeginDrain()
	dump, err := os.ReadFile(filepath.Join(flightDir, "flight-001-drain.json"))
	if err != nil {
		t.Fatalf("drain did not dump: %v", err)
	}
	if !json.Valid(dump) || !bytes.Contains(dump, []byte(`"reason": "drain"`)) {
		t.Fatalf("drain dump malformed:\n%s", dump)
	}
	if st := s.StatsSnapshot(); st.FlightDumps != 1 {
		t.Errorf("flight_dumps = %d, want 1", st.FlightDumps)
	}

	// Breaker trip dumps too (scripted via the health hook's path: a
	// tripping cache calls OnDiskState(true)). Exactly one scripted write
	// fault: the cache.put fails and trips the breaker, and the dump write
	// that follows goes through cleanly.
	flightDir2 := t.TempDir()
	fs := &failingFS{failWrites: 1}
	s2 := newServer(t, Options{
		CacheDir: t.TempDir(), Degrade: true, FlightDir: flightDir2,
		FS: fs, DiskRetries: -1, BreakerThreshold: 1,
	})
	mustOK(t, s2.Do(context.Background(), &Request{Workload: "adpcmdec"}))
	entries, err := os.ReadDir(flightDir2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if strings.Contains(e.Name(), "breaker") {
			found = true
		}
	}
	if !found {
		t.Errorf("breaker trip did not dump (dir: %v)", entries)
	}

	// No flight dir: dumping is disabled, nothing breaks.
	s3 := newServer(t, Options{})
	s3.BeginDrain()
	if st := s3.StatsSnapshot(); st.FlightDumps != 0 || st.FlightDumpErrors != 0 {
		t.Errorf("dir-less dump counted: %+v", st)
	}
}
