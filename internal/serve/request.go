package serve

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/cli"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/workloads"
)

// SchemaVersion identifies the response payload schema, which is also the
// cache payload schema: cached entries are the exact bytes served. It is
// folded into every cache key (first, see cache.NewHasher), so bumping it
// makes every old entry an automatic miss instead of a misread. Bump it
// whenever the meaning or layout of the response changes — adding a
// field, changing units, changing how a value is computed — never reuse a
// version for different bytes (see DESIGN.md).
const SchemaVersion = 1

// Request is one scheduling request: a workload (a named benchmark or an
// inline IR function), a partitioner, and options. The zero value of every
// optional field means "server default".
type Request struct {
	// Workload names a built-in benchmark (see GET /v1/workloads).
	// Mutually exclusive with IR.
	Workload string `json:"workload,omitempty"`

	// IR is an inline function in the framework's canonical IR text (the
	// format ir.Parse accepts and irdump prints). Name labels it in the
	// response (default "inline"); Args/Mem are its input; Objects
	// declares its memory objects for dependence analysis.
	IR      string      `json:"ir,omitempty"`
	Name    string      `json:"name,omitempty"`
	Args    []int64     `json:"args,omitempty"`
	Mem     []int64     `json:"mem,omitempty"`
	Objects []MemObject `json:"objects,omitempty"`

	// Partitioner selects the scheduler (default gremio; see GET
	// /v1/partitioners).
	Partitioner string `json:"partitioner,omitempty"`

	// Sim additionally runs the cycle-level simulator and reports cycle
	// counts and speedup.
	Sim bool `json:"sim,omitempty"`

	// Degrade overrides the server's graceful-degradation default:
	// requested partitioner → alternate partitioner → single-threaded.
	Degrade *bool `json:"degrade,omitempty"`

	// Budget bounds this request's interpreter and simulator runs. Zero
	// fields take the server defaults; all fields are clamped to the
	// server's caps.
	Budget Budget `json:"budget,omitempty"`

	// DeadlineMS bounds this request's wall-clock time in milliseconds;
	// 0 takes the server default, and either is clamped to the server
	// cap. Exceeding it returns 504. Unlike Budget, the deadline never
	// enters the cache key: it changes whether a response arrives in
	// time, never which bytes it holds.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// MemObject mirrors ir.MemObject for the wire.
type MemObject struct {
	Name string `json:"name"`
	Base int64  `json:"base"`
	Size int64  `json:"size"`
}

// Budget mirrors budget.Budget for the wire.
type Budget struct {
	ProfileSteps int64 `json:"profile_steps,omitempty"`
	MeasureSteps int64 `json:"measure_steps,omitempty"`
	SimCycles    int64 `json:"sim_cycles,omitempty"`
}

// Response is one scheduling result. Its JSON encoding is the cached
// payload: the same bytes are served cold, warm from memory, warm from
// disk, and merged into a concurrent flight.
type Response struct {
	Schema      int    `json:"schema"`
	Workload    string `json:"workload"`
	Partitioner string `json:"partitioner"`
	// Fingerprint is the workload's content hash (IR, memory objects,
	// inputs) — the identity the artifact cache keys on.
	Fingerprint string  `json:"fingerprint"`
	Comm        *Comm   `json:"comm"`
	Cycles      *Cycles `json:"cycles,omitempty"`
}

// Comm reports the dynamic communication measurement (Figures 1/7).
type Comm struct {
	Naive    interp.CommStats `json:"naive"`
	Coco     interp.CommStats `json:"coco"`
	NaivePct float64          `json:"naive_comm_pct"`
	CocoPct  float64          `json:"coco_comm_pct"`
	// Fallback records what the degradation chain substituted ("" = ran
	// as requested).
	Fallback string `json:"fallback,omitempty"`
}

// Cycles reports the cycle-level simulation (Figure 8).
type Cycles struct {
	SingleThreaded int64   `json:"single_threaded"`
	Naive          int64   `json:"naive"`
	Coco           int64   `json:"coco"`
	Speedup        float64 `json:"speedup"`
	Fallback       string  `json:"fallback,omitempty"`
}

// errorBody is the JSON body of every non-200 response. Error bodies
// are never cached, so — unlike success bodies, whose bytes must be
// identical across cold/warm/merged paths — they can carry the
// per-request trace ID inline.
type errorBody struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

// workload resolves the request's workload: a named benchmark (shared
// artifact caching across requests) or an inline IR function (transient).
func (r *Request) workload() (w *workloads.Workload, inline bool, err error) {
	switch {
	case r.Workload != "" && r.IR != "":
		return nil, false, fmt.Errorf("workload and ir are mutually exclusive")
	case r.Workload != "":
		w, err := cli.ResolveWorkload(r.Workload)
		return w, false, err
	case r.IR == "":
		return nil, false, fmt.Errorf("one of workload or ir is required")
	}
	f, err := ir.Parse(r.IR)
	if err != nil {
		return nil, false, fmt.Errorf("parsing ir: %v", err)
	}
	name := r.Name
	if name == "" {
		name = "inline"
	}
	objs := make([]ir.MemObject, len(r.Objects))
	for i, o := range r.Objects {
		if o.Size <= 0 {
			return nil, false, fmt.Errorf("object %q: size must be positive", o.Name)
		}
		objs[i] = ir.MemObject{Name: o.Name, Base: o.Base, Size: o.Size}
	}
	// Runs mutate the memory image, so each call hands out a fresh copy;
	// the inline input serves as both train and reference set.
	input := func() workloads.Input {
		return workloads.Input{
			Args: append([]int64(nil), r.Args...),
			Mem:  append([]int64(nil), r.Mem...),
		}
	}
	return &workloads.Workload{
		Name:     name,
		Function: name,
		Suite:    "inline",
		F:        f,
		Objects:  objs,
		Train:    input,
		Ref:      input,
	}, true, nil
}

// toBudget normalizes the wire budget against the server defaults and
// clamps it to the server caps. The clamped value — not the requested one
// — is what enters the cache key, so two requests that clamp to the same
// effective budget share an entry.
func (b Budget) toBudget(max budget.Budget) budget.Budget {
	eb := budget.Budget{
		ProfileSteps: b.ProfileSteps,
		MeasureSteps: b.MeasureSteps,
		SimCycles:    b.SimCycles,
	}.OrElse(budget.Experiments())
	if max.ProfileSteps > 0 && eb.ProfileSteps > max.ProfileSteps {
		eb.ProfileSteps = max.ProfileSteps
	}
	if max.MeasureSteps > 0 && eb.MeasureSteps > max.MeasureSteps {
		eb.MeasureSteps = max.MeasureSteps
	}
	if max.SimCycles > 0 && eb.SimCycles > max.SimCycles {
		eb.SimCycles = max.SimCycles
	}
	return eb
}

// requestKey is the cache key: a fingerprint over everything that
// determines the response bytes. The schema version is folded in first;
// the workload fingerprint already covers IR content, memory objects, and
// inputs.
func requestKey(w *workloads.Workload, partitioner string, sim bool, b budget.Budget, degrade bool) string {
	h := cache.NewHasher(SchemaVersion)
	h.Field("workload", w.Fingerprint())
	h.Field("partitioner", partitioner)
	h.Bool("sim", sim)
	h.Int("budget.profile", b.ProfileSteps)
	h.Int("budget.measure", b.MeasureSteps)
	h.Int("budget.sim", b.SimCycles)
	h.Bool("degrade", degrade)
	return h.Sum()
}
