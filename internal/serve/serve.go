// Package serve is the scheduling-as-a-service layer behind cmd/gmtserve:
// an HTTP/JSON daemon that accepts compile/schedule requests for IR
// functions, fans batches out over the internal/par worker pool, and
// backs every response with the persistent content-addressed artifact
// cache in internal/cache.
//
// The serving contract is byte determinism: a response is computed once,
// serialized once, and the exact bytes are cached — so a request served
// cold, warm from the memory layer, warm from disk after a restart, or
// merged into a concurrent identical request's flight (singleflight)
// returns identical bytes. The X-Gmtserve-Source header says which path
// served it without perturbing the body.
//
// Identical in-flight requests are deduplicated (cache.Group), admission
// is bounded (queue-full requests get 503 rather than unbounded pileup),
// per-request budgets are clamped to server caps, and failed cells walk
// the same graceful-degradation chain as the experiment engine. Cache
// hits, misses, evictions, singleflight merges, queue depth, and
// in-flight counts are all surfaced through internal/obs (GET /v1/stats
// and /v1/metrics).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/workloads"
)

// maxBody bounds request bodies; inline IR plus a memory image fits
// comfortably, unbounded bodies do not.
const maxBody = 8 << 20

// errQueueFull is returned by the admission queue; it maps to 503.
var errQueueFull = errors.New("server busy: admission queue is full, retry later")

// Options configures a Server.
type Options struct {
	// CacheDir roots the persistent artifact cache; "" keeps the cache
	// memory-only (no restart warmth).
	CacheDir string
	// MemEntries / DiskEntries bound the two cache layers (see
	// cache.Options).
	MemEntries  int
	DiskEntries int
	// Jobs sizes the worker pool batch requests fan out over; <= 0 means
	// GOMAXPROCS.
	Jobs int
	// Queue bounds concurrent computations (executing + waiting); further
	// cache-missing requests are rejected with 503. <= 0 means 64. Cache
	// hits and singleflight merges never occupy a slot.
	Queue int
	// MaxBudget caps per-request budgets field-by-field; zero fields are
	// uncapped.
	MaxBudget budget.Budget
	// Degrade is the graceful-degradation default for requests that do
	// not set their own.
	Degrade bool
	// DefaultDeadline bounds requests that set no deadline of their own;
	// 0 means none.
	DefaultDeadline time.Duration
	// MaxDeadline caps per-request deadlines (requested or default);
	// 0 means uncapped. Unlike budgets, deadlines never enter the cache
	// key — they change whether a response arrives, never its bytes.
	MaxDeadline time.Duration
	// Durable fsyncs cache entries and their directory on write, so a
	// completed Put survives a machine crash (see cache.Options.Durable).
	Durable bool
	// DiskRetries bounds transient-disk-fault retries per cache
	// operation; 0 means the cache default (2), < 0 disables.
	DiskRetries int
	// RetryBase is the deterministic backoff unit between retries
	// (attempt k sleeps RetryBase << k); 0 means the cache default.
	RetryBase time.Duration
	// BreakerThreshold trips the cache's disk layer to memory-only mode
	// after this many consecutive disk faults; 0 means the cache default
	// (8), < 0 disables the breaker.
	BreakerThreshold int
	// BreakerProbe, while tripped, probes the disk every Nth operation;
	// 0 means the cache default (16).
	BreakerProbe int
	// FS overrides the cache's filesystem (test hook for fault
	// injection); nil means the host filesystem.
	FS vfs.FS
	// Metrics receives all serve and cache instrumentation; a private
	// registry is created when nil.
	Metrics *obs.Registry
}

// engineKey identifies a shared engine: every option that changes what an
// engine would compute. Workload identity is handled inside the engine by
// content fingerprint.
type engineKey struct {
	budget  budget.Budget
	degrade bool
}

// Server implements the scheduling service. Create with New, mount
// Handler on an http.Server.
type Server struct {
	jobs        int
	maxBudget   budget.Budget
	defDegrade  bool
	defDeadline time.Duration
	maxDeadline time.Duration

	cache  *cache.Cache
	sf     cache.Group
	queue  chan struct{}
	health *health

	reg   *obs.Registry
	scope *obs.Scope

	inflight atomic.Int64

	mu      sync.Mutex
	engines map[engineKey]*exp.Engine
}

// New builds a server and opens (creating if needed) its cache
// directory; opening runs the cache's crash-recovery scan, so a server
// restarted over a dirty directory comes up clean.
func New(o Options) (*Server, error) {
	if o.Jobs <= 0 {
		o.Jobs = runtime.GOMAXPROCS(0)
	}
	if o.Queue <= 0 {
		o.Queue = 64
	}
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	h := newHealth(reg.Scope("serve"))
	c, err := cache.New(cache.Options{
		Dir:              o.CacheDir,
		MemEntries:       o.MemEntries,
		DiskEntries:      o.DiskEntries,
		FS:               o.FS,
		Durable:          o.Durable,
		Retries:          o.DiskRetries,
		RetryBase:        o.RetryBase,
		BreakerThreshold: o.BreakerThreshold,
		BreakerProbe:     o.BreakerProbe,
		OnDiskState:      h.setBreaker,
		Metrics:          reg.Scope("serve.cache"),
	})
	if err != nil {
		return nil, err
	}
	return &Server{
		jobs:        o.Jobs,
		maxBudget:   o.MaxBudget,
		defDegrade:  o.Degrade,
		defDeadline: o.DefaultDeadline,
		maxDeadline: o.MaxDeadline,
		cache:       c,
		queue:       make(chan struct{}, o.Queue),
		health:      h,
		reg:         reg,
		scope:       reg.Scope("serve"),
		engines:     map[engineKey]*exp.Engine{},
	}, nil
}

// BeginDrain moves the server into the terminal draining state:
// readiness turns false so load balancers stop routing here, while
// in-flight and already-routed requests still complete. Call it before
// http.Server.Shutdown.
func (s *Server) BeginDrain() { s.health.setDraining() }

// Health returns the current availability state.
func (s *Server) Health() State { return s.health.State() }

// Metrics returns the server's registry (for -metrics artifacts and
// tests).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Result is one served response: a status, the path that served it, and
// the exact body bytes.
type Result struct {
	Status int
	// Source is which path produced the bytes: "cold" (computed by this
	// request), "mem"/"disk" (cache layers), "merged" (joined another
	// request's flight), or "error".
	Source string
	Body   []byte
}

func errResult(status int, err error) Result {
	body, _ := json.Marshal(errorBody{Error: err.Error()})
	return Result{Status: status, Source: "error", Body: body}
}

// Do serves one request through the full path: validate, deadline, key,
// cache, singleflight, bounded compute. It never panics the caller;
// every failure is a Result with a JSON error body.
func (s *Server) Do(ctx context.Context, req *Request) Result {
	s.scope.Counter("requests").Inc()
	s.scope.Gauge("inflight").SetMax(s.inflight.Add(1))
	defer s.inflight.Add(-1)

	if d := s.deadlineFor(req); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	w, inline, err := req.workload()
	if err != nil {
		return errResult(http.StatusBadRequest, err)
	}
	partName := req.Partitioner
	if partName == "" {
		partName = "gremio"
	}
	p, err := cli.ResolvePartitioner(partName)
	if err != nil {
		return errResult(http.StatusBadRequest, err)
	}
	b := req.Budget.toBudget(s.maxBudget)
	degrade := s.defDegrade
	if req.Degrade != nil {
		degrade = *req.Degrade
	}
	key := requestKey(w, p.Name(), req.Sim, b, degrade)

	if body, ok := s.cache.Get(key); ok {
		// Which layer served it shows up in the hit.mem/hit.disk
		// counters; the header only distinguishes warm from cold/merged.
		return Result{Status: http.StatusOK, Source: "warm", Body: body}
	}

	body, err, merged := s.sf.Do(key, func() ([]byte, error) {
		select {
		case s.queue <- struct{}{}:
		default:
			s.scope.Counter("queue.rejected").Inc()
			return nil, errQueueFull
		}
		s.scope.Gauge("queue.depth").SetMax(int64(len(s.queue)))
		defer func() { <-s.queue }()
		// A flight that completed between our cache probe and joining the
		// group has already put its bytes; serve those rather than
		// recomputing.
		if body, ok := s.cache.Get(key); ok {
			return body, nil
		}
		return s.compute(ctx, w, inline, p, req.Sim, b, degrade, key)
	})
	switch {
	case err == nil && merged:
		s.scope.Counter("singleflight.merged").Inc()
		return Result{Status: http.StatusOK, Source: "merged", Body: body}
	case err == nil:
		return Result{Status: http.StatusOK, Source: "cold", Body: body}
	case errors.Is(err, errQueueFull):
		return errResult(http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.scope.Counter("deadline.exceeded").Inc()
		return errResult(http.StatusGatewayTimeout, err)
	case ctx.Err() != nil:
		return errResult(http.StatusServiceUnavailable, err)
	default:
		s.scope.Counter("errors").Inc()
		return errResult(http.StatusInternalServerError, err)
	}
}

// deadlineFor resolves a request's effective deadline: the requested
// value, else the server default, clamped to the server cap. The result
// never enters the cache key — a deadline changes whether a response
// arrives in time, never which bytes it holds.
func (s *Server) deadlineFor(req *Request) time.Duration {
	d := time.Duration(req.DeadlineMS) * time.Millisecond
	if d <= 0 {
		d = s.defDeadline
	}
	if s.maxDeadline > 0 && (d <= 0 || d > s.maxDeadline) {
		d = s.maxDeadline
	}
	return d
}

// compute runs the scheduling pipeline once and caches the exact response
// bytes. The serve.compute counter is the "did the pipeline actually
// run?" signal tests and the smoke job assert on.
func (s *Server) compute(ctx context.Context, w *workloads.Workload, inline bool,
	p partition.Partitioner, runSim bool, b budget.Budget, degrade bool, key string) ([]byte, error) {
	s.scope.Counter("compute").Inc()
	eng := s.engine(inline, b, degrade)

	resp := Response{
		Schema:      SchemaVersion,
		Workload:    w.Name,
		Partitioner: p.Name(),
		Fingerprint: w.Fingerprint(),
	}
	comm, err := eng.CommCell(ctx, w, p)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", w.Name, p.Name(), err)
	}
	resp.Comm = &Comm{
		Naive:    comm.Naive,
		Coco:     comm.Coco,
		NaivePct: commPct(comm.Naive),
		CocoPct:  commPct(comm.Coco),
		Fallback: comm.Fallback,
	}
	if runSim {
		row, err := eng.SpeedupCell(ctx, sim.DefaultConfig(), w, p)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", w.Name, p.Name(), err)
		}
		cy := &Cycles{
			SingleThreaded: row.STCycles,
			Naive:          row.NaiveCycles,
			Coco:           row.CocoCycles,
			Fallback:       row.Fallback,
		}
		if row.CocoCycles > 0 {
			cy.Speedup = float64(row.STCycles) / float64(row.CocoCycles)
		}
		resp.Cycles = cy
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		return nil, err
	}
	if err := s.cache.Put(key, body); err != nil {
		// A failed disk write must not fail the request: the bytes are
		// computed and the memory layer has them.
		s.scope.Counter("cache.put_errors").Inc()
	}
	return body, nil
}

func commPct(c interp.CommStats) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(c.Comm()) / float64(t)
}

// engine returns the shared engine for (budget, degrade) — named
// workloads reuse memoized artifacts across requests — or a transient one
// for inline IR, whose artifacts would otherwise accumulate without
// bound.
func (s *Server) engine(inline bool, b budget.Budget, degrade bool) *exp.Engine {
	opts := exp.EngineOptions{Jobs: 1, Budget: b, Degrade: degrade}
	if inline {
		return exp.NewEngine(opts)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := engineKey{budget: b, degrade: degrade}
	e := s.engines[k]
	if e == nil {
		e = exp.NewEngine(opts)
		s.engines[k] = e
	}
	return e
}

// Handler returns the HTTP API:
//
//	POST /v1/schedule     one request  -> one response
//	POST /v1/batch        {"requests":[...]} -> {"responses":[...]} in order
//	GET  /v1/workloads    built-in workload names
//	GET  /v1/partitioners partitioner names
//	GET  /v1/stats        serving counters (cache, singleflight, queue, health)
//	GET  /v1/metrics      the full metrics registry
//	GET  /v1/healthz      liveness; add ?ready=1 for readiness (503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"workloads": cli.WorkloadNames()})
	})
	mux.HandleFunc("GET /v1/partitioners", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"partitioners": cli.PartitionerNames()})
	})
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.reg.WriteJSON(w)
	})
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req Request
	if !readJSON(w, r, &req) {
		return
	}
	res := s.Do(r.Context(), &req)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Gmtserve-Source", res.Source)
	w.WriteHeader(res.Status)
	w.Write(res.Body)
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchItem is one in-order element of a batch response. Body carries the
// exact bytes the request would have received from /v1/schedule.
type BatchItem struct {
	Status int             `json:"status"`
	Source string          `json:"source"`
	Body   json.RawMessage `json:"body"`
}

// BatchResponse is the body of POST /v1/batch.
type BatchResponse struct {
	Responses []BatchItem `json:"responses"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	if !readJSON(w, r, &batch) {
		return
	}
	s.scope.Counter("batches").Inc()
	items := make([]BatchItem, len(batch.Requests))
	// Responses land in preallocated index-addressed slots, so the order
	// is the request order at any Jobs setting. Per-item failures are
	// item statuses, not batch failures; par.Run only propagates context
	// cancellation from Do (which never returns an error).
	par.Run(r.Context(), s.jobs, len(batch.Requests), func(i int) error {
		res := s.Do(r.Context(), &batch.Requests[i])
		items[i] = BatchItem{Status: res.Status, Source: res.Source, Body: res.Body}
		return nil
	})
	writeJSON(w, http.StatusOK, BatchResponse{Responses: items})
}

// Stats is the body of GET /v1/stats: the counters the smoke job and
// operators check.
type Stats struct {
	Schema             int   `json:"schema"`
	Requests           int64 `json:"requests"`
	Compute            int64 `json:"compute"`
	Errors             int64 `json:"errors"`
	CacheHitMem        int64 `json:"cache_hit_mem"`
	CacheHitDisk       int64 `json:"cache_hit_disk"`
	CacheMiss          int64 `json:"cache_miss"`
	CacheCorrupt       int64 `json:"cache_corrupt"`
	CacheEvictMem      int64 `json:"cache_evict_mem"`
	CacheEvictDisk     int64 `json:"cache_evict_disk"`
	SingleflightMerged int64 `json:"singleflight_merged"`
	QueueRejected      int64 `json:"queue_rejected"`
	QueueCapacity      int   `json:"queue_capacity"`
	QueueDepth         int   `json:"queue_depth"`
	Inflight           int64 `json:"inflight"`

	// Robustness counters: the health state machine, the disk breaker,
	// recovery-at-open results, and per-operation fault handling.
	Health           string `json:"health"`
	BreakerOpen      bool   `json:"breaker_open"`
	BreakerTrips     int64  `json:"breaker_trips"`
	BreakerCloses    int64  `json:"breaker_closes"`
	CacheRecovered   int64  `json:"cache_recovered"`
	CacheQuarantined int64  `json:"cache_quarantined"`
	CachePutErrors   int64  `json:"cache_put_errors"`
	CacheReadErrors  int64  `json:"cache_read_errors"`
	CacheWriteErrors int64  `json:"cache_write_errors"`
	CacheRetries     int64  `json:"cache_retries"`
	CacheBypass      int64  `json:"cache_bypass"`
	DeadlineExceeded int64  `json:"deadline_exceeded"`
}

// StatsSnapshot reads the current counters (also used by tests).
func (s *Server) StatsSnapshot() Stats {
	cs := s.reg.Scope("serve.cache")
	return Stats{
		Schema:             SchemaVersion,
		Requests:           s.scope.Counter("requests").Value(),
		Compute:            s.scope.Counter("compute").Value(),
		Errors:             s.scope.Counter("errors").Value(),
		CacheHitMem:        cs.Counter("hit.mem").Value(),
		CacheHitDisk:       cs.Counter("hit.disk").Value(),
		CacheMiss:          cs.Counter("miss").Value(),
		CacheCorrupt:       cs.Counter("corrupt").Value(),
		CacheEvictMem:      cs.Counter("evict.mem").Value(),
		CacheEvictDisk:     cs.Counter("evict.disk").Value(),
		SingleflightMerged: s.scope.Counter("singleflight.merged").Value(),
		QueueRejected:      s.scope.Counter("queue.rejected").Value(),
		QueueCapacity:      cap(s.queue),
		QueueDepth:         len(s.queue),
		Inflight:           s.inflight.Load(),
		Health:             s.health.State().String(),
		BreakerOpen:        s.health.BreakerOpen(),
		BreakerTrips:       cs.Counter("breaker.trip").Value(),
		BreakerCloses:      cs.Counter("breaker.close").Value(),
		CacheRecovered:     cs.Counter("recovered").Value(),
		CacheQuarantined:   cs.Counter("quarantined").Value(),
		CachePutErrors:     s.scope.Counter("cache.put_errors").Value(),
		CacheReadErrors:    cs.Counter("read_error").Value(),
		CacheWriteErrors:   cs.Counter("write_error").Value(),
		CacheRetries:       cs.Counter("retry").Value(),
		CacheBypass:        cs.Counter("bypass").Value(),
		DeadlineExceeded:   s.scope.Counter("deadline.exceeded").Value(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// healthzBody is the /v1/healthz response.
type healthzBody struct {
	// Ok is liveness: the process is up and answering. It stays true in
	// every state — even draining, where the process is alive on purpose
	// to finish in-flight work.
	Ok bool `json:"ok"`
	// State is the availability state machine's position:
	// healthy/degraded/draining.
	State string `json:"state"`
	// Ready is readiness: should a balancer route new work here. False
	// only while draining; degraded still serves (fail-open).
	Ready bool `json:"ready"`
}

// handleHealthz separates liveness from readiness: the plain endpoint is
// a liveness probe (always 200 while the process runs), and ?ready=1
// makes it a readiness probe (503 once draining, so balancers pull the
// instance while in-flight requests complete).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := s.health.State()
	body := healthzBody{Ok: true, State: state.String(), Ready: state != Draining}
	status := http.StatusOK
	if r.URL.Query().Get("ready") != "" && !body.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// readJSON decodes a bounded request body, replying 400 on bad JSON.
func readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err == nil {
		err = json.Unmarshal(body, into)
	}
	if err != nil {
		res := errResult(http.StatusBadRequest, fmt.Errorf("decoding request: %v", err))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.Status)
		w.Write(res.Body)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}
