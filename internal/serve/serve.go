// Package serve is the scheduling-as-a-service layer behind cmd/gmtserve:
// an HTTP/JSON daemon that accepts compile/schedule requests for IR
// functions, fans batches out over the internal/par worker pool, and
// backs every response with the persistent content-addressed artifact
// cache in internal/cache.
//
// The serving contract is byte determinism: a response is computed once,
// serialized once, and the exact bytes are cached — so a request served
// cold, warm from the memory layer, warm from disk after a restart, or
// merged into a concurrent identical request's flight (singleflight)
// returns identical bytes. The X-Gmtserve-Source header says which path
// served it without perturbing the body.
//
// Identical in-flight requests are deduplicated (cache.Group), admission
// is bounded (queue-full requests get 503 rather than unbounded pileup),
// per-request budgets are clamped to server caps, and failed cells walk
// the same graceful-degradation chain as the experiment engine. Cache
// hits, misses, evictions, singleflight merges, queue depth, and
// in-flight counts are all surfaced through internal/obs (GET /v1/stats
// and /v1/metrics).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/workloads"
)

// maxBody bounds request bodies; inline IR plus a memory image fits
// comfortably, unbounded bodies do not.
const maxBody = 8 << 20

// errQueueFull is returned by the admission queue; it maps to 503.
var errQueueFull = errors.New("server busy: admission queue is full, retry later")

// Options configures a Server.
type Options struct {
	// CacheDir roots the persistent artifact cache; "" keeps the cache
	// memory-only (no restart warmth).
	CacheDir string
	// MemEntries / DiskEntries bound the two cache layers (see
	// cache.Options).
	MemEntries  int
	DiskEntries int
	// Jobs sizes the worker pool batch requests fan out over; <= 0 means
	// GOMAXPROCS.
	Jobs int
	// Queue bounds concurrent computations (executing + waiting); further
	// cache-missing requests are rejected with 503. <= 0 means 64. Cache
	// hits and singleflight merges never occupy a slot.
	Queue int
	// MaxBudget caps per-request budgets field-by-field; zero fields are
	// uncapped.
	MaxBudget budget.Budget
	// Degrade is the graceful-degradation default for requests that do
	// not set their own.
	Degrade bool
	// DefaultDeadline bounds requests that set no deadline of their own;
	// 0 means none.
	DefaultDeadline time.Duration
	// MaxDeadline caps per-request deadlines (requested or default);
	// 0 means uncapped. Unlike budgets, deadlines never enter the cache
	// key — they change whether a response arrives, never its bytes.
	MaxDeadline time.Duration
	// Durable fsyncs cache entries and their directory on write, so a
	// completed Put survives a machine crash (see cache.Options.Durable).
	Durable bool
	// DiskRetries bounds transient-disk-fault retries per cache
	// operation; 0 means the cache default (2), < 0 disables.
	DiskRetries int
	// RetryBase is the deterministic backoff unit between retries
	// (attempt k sleeps RetryBase << k); 0 means the cache default.
	RetryBase time.Duration
	// BreakerThreshold trips the cache's disk layer to memory-only mode
	// after this many consecutive disk faults; 0 means the cache default
	// (8), < 0 disables the breaker.
	BreakerThreshold int
	// BreakerProbe, while tripped, probes the disk every Nth operation;
	// 0 means the cache default (16).
	BreakerProbe int
	// FS overrides the cache's filesystem (test hook for fault
	// injection); nil means the host filesystem.
	FS vfs.FS
	// Metrics receives all serve and cache instrumentation; a private
	// registry is created when nil.
	Metrics *obs.Registry
	// Clock supplies span-tree timestamps. nil means a logical
	// per-server counter that ticks once per trace event, which keeps
	// serial traces, dumps, and histograms byte-deterministic; inject a
	// wall clock here to trade that determinism for real durations.
	Clock func() int64
	// TraceRetain bounds how many completed request traces stay
	// queryable via GET /v1/trace/{id}; <= 0 means 256.
	TraceRetain int
	// FlightSize bounds the flight recorder's ring of recent traces
	// snapshotted to disk on 5xx, breaker trip, or drain; <= 0 means 32.
	FlightSize int
	// FlightDir is where flight-recorder dumps are written (atomically,
	// through the server's vfs); "" disables dumping (the in-memory
	// recorder still runs).
	FlightDir string
	// AccessLog, when non-nil, receives one structured JSON line per
	// served request: trace ID, outcome, cache path, degradation count,
	// and logical durations.
	AccessLog io.Writer
}

// engineKey identifies a shared engine: every option that changes what an
// engine would compute. Workload identity is handled inside the engine by
// content fingerprint.
type engineKey struct {
	budget  budget.Budget
	degrade bool
}

// Server implements the scheduling service. Create with New, mount
// Handler on an http.Server.
type Server struct {
	jobs        int
	maxBudget   budget.Budget
	defDegrade  bool
	defDeadline time.Duration
	maxDeadline time.Duration

	cache  *cache.Cache
	sf     cache.Group
	queue  chan struct{}
	health *health

	reg   *obs.Registry
	scope *obs.Scope

	inflight atomic.Int64

	// Telemetry: per-request span trees timed by clock (logical by
	// default), retained in traces for GET /v1/trace/{id} and in flight
	// for postmortem dumps under flightDir.
	clock     func() int64
	tick      atomic.Int64
	reqSeq    atomic.Int64
	dumpSeq   atomic.Int64
	traces    *obs.FlightRecorder
	flight    *obs.FlightRecorder
	flightDir string
	durable   bool
	fs        vfs.FS
	access    *accessLogger

	mu      sync.Mutex
	engines map[engineKey]*exp.Engine
}

// New builds a server and opens (creating if needed) its cache
// directory; opening runs the cache's crash-recovery scan, so a server
// restarted over a dirty directory comes up clean.
func New(o Options) (*Server, error) {
	if o.Jobs <= 0 {
		o.Jobs = runtime.GOMAXPROCS(0)
	}
	if o.Queue <= 0 {
		o.Queue = 64
	}
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if o.TraceRetain <= 0 {
		o.TraceRetain = 256
	}
	fsys := o.FS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	h := newHealth(reg.Scope("serve"))
	s := &Server{
		jobs:        o.Jobs,
		maxBudget:   o.MaxBudget,
		defDegrade:  o.Degrade,
		defDeadline: o.DefaultDeadline,
		maxDeadline: o.MaxDeadline,
		queue:       make(chan struct{}, o.Queue),
		health:      h,
		reg:         reg,
		scope:       reg.Scope("serve"),
		clock:       o.Clock,
		traces:      obs.NewFlightRecorder(o.TraceRetain),
		flight:      obs.NewFlightRecorder(o.FlightSize),
		flightDir:   o.FlightDir,
		durable:     o.Durable,
		fs:          fsys,
		access:      newAccessLogger(o.AccessLog),
		engines:     map[engineKey]*exp.Engine{},
	}
	if s.clock == nil {
		s.clock = func() int64 { return s.tick.Add(1) }
	}
	c, err := cache.New(cache.Options{
		Dir:              o.CacheDir,
		MemEntries:       o.MemEntries,
		DiskEntries:      o.DiskEntries,
		FS:               o.FS,
		Durable:          o.Durable,
		Retries:          o.DiskRetries,
		RetryBase:        o.RetryBase,
		BreakerThreshold: o.BreakerThreshold,
		BreakerProbe:     o.BreakerProbe,
		OnDiskState: func(open bool) {
			h.setBreaker(open)
			if open {
				// A tripping breaker is exactly the moment a postmortem
				// wants the recent request history. The dump goes through
				// the server's own vfs, never back into the cache.
				s.dumpFlight("breaker")
			}
		},
		Metrics: reg.Scope("serve.cache"),
	})
	if err != nil {
		return nil, err
	}
	s.cache = c
	return s, nil
}

// BeginDrain moves the server into the terminal draining state:
// readiness turns false so load balancers stop routing here, while
// in-flight and already-routed requests still complete. Call it before
// http.Server.Shutdown. The flight recorder snapshots to disk so the
// final request history survives the shutdown.
func (s *Server) BeginDrain() {
	s.health.setDraining()
	s.dumpFlight("drain")
}

// Health returns the current availability state.
func (s *Server) Health() State { return s.health.State() }

// Metrics returns the server's registry (for -metrics artifacts and
// tests).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Result is one served response: a status, the path that served it, and
// the exact body bytes.
type Result struct {
	Status int
	// Source is which path produced the bytes: "cold" (computed by this
	// request), "mem"/"disk" (cache layers), "merged" (joined another
	// request's flight), or "error".
	Source string
	Body   []byte
	// TraceID names the request's span tree, retrievable while retained
	// via GET /v1/trace/{id}. Cached success bodies stay byte-identical
	// across requests, so the ID travels in the X-Gmtserve-Trace header
	// and — for never-cached error bodies — a trace_id body field.
	TraceID string
}

func errResult(status int, err error, traceID string) Result {
	body, _ := json.Marshal(errorBody{Error: err.Error(), TraceID: traceID})
	return Result{Status: status, Source: "error", Body: body, TraceID: traceID}
}

// Do serves one request through the full path: validate, deadline, key,
// cache, singleflight, bounded compute. It never panics the caller;
// every failure is a Result with a JSON error body. The full lifecycle
// is recorded as a span tree retained for GET /v1/trace/{id} and the
// flight recorder.
func (s *Server) Do(ctx context.Context, req *Request) Result {
	seq := s.reqSeq.Add(1)
	id := obs.TraceID("req", strconv.FormatInt(seq, 10), req.Workload, req.Name, req.Partitioner)
	tree := obs.NewSpanTree(id, s.clock)
	root := tree.Root("request")
	res := s.serveTraced(ctx, req, root, id)
	res.TraceID = id
	root.SetInt("status", int64(res.Status))
	root.SetStr("source", res.Source)
	root.Finish()
	s.finishTrace(tree, root, req, res)
	return res
}

// serveTraced is the request path proper, recording spans under root.
func (s *Server) serveTraced(ctx context.Context, req *Request, root *obs.Span, id string) Result {
	s.scope.Counter("requests").Inc()
	s.scope.Gauge("inflight").SetMax(s.inflight.Add(1))
	defer s.inflight.Add(-1)

	d := s.deadlineFor(req)
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	w, inline, err := req.workload()
	if err != nil {
		return errResult(http.StatusBadRequest, err, id)
	}
	root.SetStr("workload", w.Name)
	partName := req.Partitioner
	if partName == "" {
		partName = "gremio"
	}
	p, err := cli.ResolvePartitioner(partName)
	if err != nil {
		return errResult(http.StatusBadRequest, err, id)
	}
	root.SetStr("partitioner", p.Name())
	b := req.Budget.toBudget(s.maxBudget)
	degrade := s.defDegrade
	if req.Degrade != nil {
		degrade = *req.Degrade
	}
	key := requestKey(w, p.Name(), req.Sim, b, degrade)

	lookup := root.Child("cache.lookup")
	var lev cache.OpEvents
	body, ok := s.cache.GetEv(key, &lev)
	spanCacheEvents(lookup, &lev)
	lookup.Finish()
	root.SetStr("cache", lev.Layer)
	if ok {
		// Which layer served it shows up in the hit.mem/hit.disk
		// counters; the header only distinguishes warm from cold/merged.
		return Result{Status: http.StatusOK, Source: "warm", Body: body}
	}

	body, err, merged := s.sf.Do(key, func() ([]byte, error) {
		adm := root.Child("admission")
		depth := int64(len(s.queue))
		adm.SetInt("depth", depth).SetInt("capacity", int64(cap(s.queue)))
		// Admission-time distributions, not just high-water marks: the
		// queue depth seen by each arriving computation and the slack its
		// deadline allows (the resolved deadline is deterministic; the
		// remaining wall time is not).
		s.scope.Histogram("admission.queue_depth").Observe(depth)
		s.scope.Histogram("admission.deadline_slack_ms").Observe(d.Milliseconds())
		select {
		case s.queue <- struct{}{}:
		default:
			s.scope.Counter("queue.rejected").Inc()
			adm.SetStr("outcome", "rejected")
			adm.Finish()
			return nil, errQueueFull
		}
		s.scope.Gauge("queue.depth").SetMax(int64(len(s.queue)))
		adm.SetStr("outcome", "admitted")
		adm.Finish()
		defer func() { <-s.queue }()
		// A flight that completed between our cache probe and joining the
		// group has already put its bytes; serve those rather than
		// recomputing.
		recheck := root.Child("cache.recheck")
		var rev cache.OpEvents
		body, ok := s.cache.GetEv(key, &rev)
		spanCacheEvents(recheck, &rev)
		recheck.Finish()
		if ok {
			return body, nil
		}
		return s.compute(ctx, w, inline, p, req.Sim, b, degrade, key, root)
	})
	switch {
	case err == nil && merged:
		s.scope.Counter("singleflight.merged").Inc()
		return Result{Status: http.StatusOK, Source: "merged", Body: body}
	case err == nil:
		return Result{Status: http.StatusOK, Source: "cold", Body: body}
	case errors.Is(err, errQueueFull):
		return errResult(http.StatusServiceUnavailable, err, id)
	case errors.Is(err, context.DeadlineExceeded):
		s.scope.Counter("deadline.exceeded").Inc()
		return errResult(http.StatusGatewayTimeout, err, id)
	case ctx.Err() != nil:
		return errResult(http.StatusServiceUnavailable, err, id)
	default:
		s.scope.Counter("errors").Inc()
		return errResult(http.StatusInternalServerError, err, id)
	}
}

// deadlineFor resolves a request's effective deadline: the requested
// value, else the server default, clamped to the server cap. The result
// never enters the cache key — a deadline changes whether a response
// arrives in time, never which bytes it holds.
func (s *Server) deadlineFor(req *Request) time.Duration {
	d := time.Duration(req.DeadlineMS) * time.Millisecond
	if d <= 0 {
		d = s.defDeadline
	}
	if s.maxDeadline > 0 && (d <= 0 || d > s.maxDeadline) {
		d = s.maxDeadline
	}
	return d
}

// compute runs the scheduling pipeline once and caches the exact response
// bytes. The serve.compute counter is the "did the pipeline actually
// run?" signal tests and the smoke job assert on.
func (s *Server) compute(ctx context.Context, w *workloads.Workload, inline bool,
	p partition.Partitioner, runSim bool, b budget.Budget, degrade bool, key string, root *obs.Span) ([]byte, error) {
	s.scope.Counter("compute").Inc()
	eng := s.engine(inline, b, degrade)

	resp := Response{
		Schema:      SchemaVersion,
		Workload:    w.Name,
		Partitioner: p.Name(),
		Fingerprint: w.Fingerprint(),
	}
	csp := root.Child("compute.comm")
	comm, err := eng.CommCellSpan(ctx, w, p, csp)
	csp.Finish()
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", w.Name, p.Name(), err)
	}
	resp.Comm = &Comm{
		Naive:    comm.Naive,
		Coco:     comm.Coco,
		NaivePct: commPct(comm.Naive),
		CocoPct:  commPct(comm.Coco),
		Fallback: comm.Fallback,
	}
	if runSim {
		ssp := root.Child("compute.sim")
		row, err := eng.SpeedupCellSpan(ctx, sim.DefaultConfig(), w, p, ssp)
		ssp.Finish()
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", w.Name, p.Name(), err)
		}
		cy := &Cycles{
			SingleThreaded: row.STCycles,
			Naive:          row.NaiveCycles,
			Coco:           row.CocoCycles,
			Fallback:       row.Fallback,
		}
		if row.CocoCycles > 0 {
			cy.Speedup = float64(row.STCycles) / float64(row.CocoCycles)
		}
		resp.Cycles = cy
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		return nil, err
	}
	psp := root.Child("cache.put")
	var pev cache.OpEvents
	if err := s.cache.PutEv(key, body, &pev); err != nil {
		// A failed disk write must not fail the request: the bytes are
		// computed and the memory layer has them.
		s.scope.Counter("cache.put_errors").Inc()
		psp.SetStr("outcome", "error")
	}
	spanCacheEvents(psp, &pev)
	psp.Finish()
	return body, nil
}

func commPct(c interp.CommStats) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(c.Comm()) / float64(t)
}

// engine returns the shared engine for (budget, degrade) — named
// workloads reuse memoized artifacts across requests — or a transient one
// for inline IR, whose artifacts would otherwise accumulate without
// bound.
func (s *Server) engine(inline bool, b budget.Budget, degrade bool) *exp.Engine {
	opts := exp.EngineOptions{Jobs: 1, Budget: b, Degrade: degrade}
	if inline {
		return exp.NewEngine(opts)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := engineKey{budget: b, degrade: degrade}
	e := s.engines[k]
	if e == nil {
		e = exp.NewEngine(opts)
		s.engines[k] = e
	}
	return e
}

// Handler returns the HTTP API:
//
//	POST /v1/schedule     one request  -> one response
//	POST /v1/batch        {"requests":[...]} -> {"responses":[...]} in order
//	GET  /v1/workloads    built-in workload names
//	GET  /v1/partitioners partitioner names
//	GET  /v1/stats        serving counters (cache, singleflight, queue, health)
//	GET  /v1/metrics      the full metrics registry (JSON)
//	GET  /v1/trace/{id}   a retained request's span tree
//	GET  /v1/healthz      liveness; add ?ready=1 for readiness (503 while draining)
//	GET  /metrics         Prometheus text exposition of the same registry
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"workloads": cli.WorkloadNames()})
	})
	mux.HandleFunc("GET /v1/partitioners", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"partitioners": cli.PartitionerNames()})
	})
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.reg.WriteJSON(w)
	})
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		s.reg.WriteProm(w)
	})
	return mux
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req Request
	if !readJSON(w, r, &req) {
		return
	}
	res := s.Do(r.Context(), &req)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Gmtserve-Source", res.Source)
	w.Header().Set("X-Gmtserve-Trace", res.TraceID)
	w.WriteHeader(res.Status)
	w.Write(res.Body)
}

// handleTrace serves a retained request trace by ID. Traces are kept in
// a bounded ring (Options.TraceRetain), so an old enough trace is gone
// — 404, not an error.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, ok := s.traces.Get(id)
	if !ok {
		res := errResult(http.StatusNotFound, fmt.Errorf("trace %q is not retained", id), "")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.Status)
		w.Write(res.Body)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	w.Write([]byte("\n"))
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchItem is one in-order element of a batch response. Body carries the
// exact bytes the request would have received from /v1/schedule.
type BatchItem struct {
	Status  int             `json:"status"`
	Source  string          `json:"source"`
	TraceID string          `json:"trace_id"`
	Body    json.RawMessage `json:"body"`
}

// BatchResponse is the body of POST /v1/batch.
type BatchResponse struct {
	Responses []BatchItem `json:"responses"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	if !readJSON(w, r, &batch) {
		return
	}
	s.scope.Counter("batches").Inc()
	items := make([]BatchItem, len(batch.Requests))
	// Responses land in preallocated index-addressed slots, so the order
	// is the request order at any Jobs setting. Per-item failures are
	// item statuses, not batch failures; par.Run only propagates context
	// cancellation from Do (which never returns an error).
	par.Run(r.Context(), s.jobs, len(batch.Requests), func(i int) error {
		res := s.Do(r.Context(), &batch.Requests[i])
		items[i] = BatchItem{Status: res.Status, Source: res.Source, TraceID: res.TraceID, Body: res.Body}
		return nil
	})
	writeJSON(w, http.StatusOK, BatchResponse{Responses: items})
}

// Stats is the body of GET /v1/stats: the counters the smoke job and
// operators check.
type Stats struct {
	Schema             int   `json:"schema"`
	Requests           int64 `json:"requests"`
	Compute            int64 `json:"compute"`
	Errors             int64 `json:"errors"`
	CacheHitMem        int64 `json:"cache_hit_mem"`
	CacheHitDisk       int64 `json:"cache_hit_disk"`
	CacheMiss          int64 `json:"cache_miss"`
	CacheCorrupt       int64 `json:"cache_corrupt"`
	CacheEvictMem      int64 `json:"cache_evict_mem"`
	CacheEvictDisk     int64 `json:"cache_evict_disk"`
	SingleflightMerged int64 `json:"singleflight_merged"`
	QueueRejected      int64 `json:"queue_rejected"`
	QueueCapacity      int   `json:"queue_capacity"`
	QueueDepth         int   `json:"queue_depth"`
	Inflight           int64 `json:"inflight"`

	// Robustness counters: the health state machine, the disk breaker,
	// recovery-at-open results, and per-operation fault handling.
	Health           string `json:"health"`
	BreakerOpen      bool   `json:"breaker_open"`
	BreakerTrips     int64  `json:"breaker_trips"`
	BreakerCloses    int64  `json:"breaker_closes"`
	CacheRecovered   int64  `json:"cache_recovered"`
	CacheQuarantined int64  `json:"cache_quarantined"`
	CachePutErrors   int64  `json:"cache_put_errors"`
	CacheReadErrors  int64  `json:"cache_read_errors"`
	CacheWriteErrors int64  `json:"cache_write_errors"`
	CacheRetries     int64  `json:"cache_retries"`
	CacheBypass      int64  `json:"cache_bypass"`
	DeadlineExceeded int64  `json:"deadline_exceeded"`

	// Telemetry counters: retained traces and flight-recorder activity.
	TracesRetained   int   `json:"traces_retained"`
	FlightDumps      int64 `json:"flight_dumps"`
	FlightDumpErrors int64 `json:"flight_dump_errors"`
}

// StatsSnapshot reads the current counters (also used by tests).
func (s *Server) StatsSnapshot() Stats {
	cs := s.reg.Scope("serve.cache")
	return Stats{
		Schema:             SchemaVersion,
		Requests:           s.scope.Counter("requests").Value(),
		Compute:            s.scope.Counter("compute").Value(),
		Errors:             s.scope.Counter("errors").Value(),
		CacheHitMem:        cs.Counter("hit.mem").Value(),
		CacheHitDisk:       cs.Counter("hit.disk").Value(),
		CacheMiss:          cs.Counter("miss").Value(),
		CacheCorrupt:       cs.Counter("corrupt").Value(),
		CacheEvictMem:      cs.Counter("evict.mem").Value(),
		CacheEvictDisk:     cs.Counter("evict.disk").Value(),
		SingleflightMerged: s.scope.Counter("singleflight.merged").Value(),
		QueueRejected:      s.scope.Counter("queue.rejected").Value(),
		QueueCapacity:      cap(s.queue),
		QueueDepth:         len(s.queue),
		Inflight:           s.inflight.Load(),
		Health:             s.health.State().String(),
		BreakerOpen:        s.health.BreakerOpen(),
		BreakerTrips:       cs.Counter("breaker.trip").Value(),
		BreakerCloses:      cs.Counter("breaker.close").Value(),
		CacheRecovered:     cs.Counter("recovered").Value(),
		CacheQuarantined:   cs.Counter("quarantined").Value(),
		CachePutErrors:     s.scope.Counter("cache.put_errors").Value(),
		CacheReadErrors:    cs.Counter("read_error").Value(),
		CacheWriteErrors:   cs.Counter("write_error").Value(),
		CacheRetries:       cs.Counter("retry").Value(),
		CacheBypass:        cs.Counter("bypass").Value(),
		DeadlineExceeded:   s.scope.Counter("deadline.exceeded").Value(),
		TracesRetained:     s.traces.Len(),
		FlightDumps:        s.scope.Counter("flight.dumps").Value(),
		FlightDumpErrors:   s.scope.Counter("flight.dump_errors").Value(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// healthzBody is the /v1/healthz response.
type healthzBody struct {
	// Ok is liveness: the process is up and answering. It stays true in
	// every state — even draining, where the process is alive on purpose
	// to finish in-flight work.
	Ok bool `json:"ok"`
	// State is the availability state machine's position:
	// healthy/degraded/draining.
	State string `json:"state"`
	// Ready is readiness: should a balancer route new work here. False
	// only while draining; degraded still serves (fail-open).
	Ready bool `json:"ready"`
}

// handleHealthz separates liveness from readiness: the plain endpoint is
// a liveness probe (always 200 while the process runs), and ?ready=1
// makes it a readiness probe (503 once draining, so balancers pull the
// instance while in-flight requests complete).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := s.health.State()
	body := healthzBody{Ok: true, State: state.String(), Ready: state != Draining}
	status := http.StatusOK
	if r.URL.Query().Get("ready") != "" && !body.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// readJSON decodes a bounded request body, replying 400 on bad JSON.
func readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err == nil {
		err = json.Unmarshal(body, into)
	}
	if err != nil {
		res := errResult(http.StatusBadRequest, fmt.Errorf("decoding request: %v", err), "")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.Status)
		w.Write(res.Body)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}
