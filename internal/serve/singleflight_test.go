package serve

import (
	"context"
	"net/http"
	"runtime"
	"testing"

	"repro/internal/cli"
)

// TestMergedFlightCancellationNotCounted pins the serving layer's
// singleflight accounting under cancellation: a request that joins
// another flight and receives an error from it (here: the leader was
// cancelled) must get the 503 degradation path and must NOT increment the
// serve.singleflight.merged counter — that counter means "a caller was
// served identical bytes from another's flight", and no bytes were
// served. The group-level join count still records the join, which is
// what keeps the queue-pressure picture honest.
func TestMergedFlightCancellationNotCounted(t *testing.T) {
	s := newServer(t, Options{Degrade: true})

	// Derive the exact cache/flight key the request below will use, and
	// plant a leader flight on it that ends in cancellation.
	req := &Request{Workload: "ks", Partitioner: "gremio"}
	w, _, err := req.workload()
	if err != nil {
		t.Fatal(err)
	}
	p, err := cli.ResolvePartitioner("gremio")
	if err != nil {
		t.Fatal(err)
	}
	key := requestKey(w, p.Name(), req.Sim, req.Budget.toBudget(s.maxBudget), s.defDegrade)

	started := make(chan struct{})
	release := make(chan struct{})
	go s.sf.Do(key, func() ([]byte, error) {
		close(started)
		<-release
		return nil, context.Canceled
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan Result, 1)
	go func() { done <- s.Do(ctx, req) }()

	// Wait for the request to join the planted flight, then cancel it.
	for s.sf.Merged() != 1 {
		runtime.Gosched()
	}
	close(release)
	res := <-done

	if res.Status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", res.Status, res.Body)
	}
	if res.Source != "error" {
		t.Fatalf("source = %q, want error", res.Source)
	}
	st := s.StatsSnapshot()
	if st.SingleflightMerged != 0 {
		t.Fatalf("singleflight.merged = %d, want 0: a cancelled merge served no bytes", st.SingleflightMerged)
	}
	if s.sf.Merged() != 1 {
		t.Fatalf("group joins = %d, want 1: the join itself must still be counted", s.sf.Merged())
	}

	// The failed flight must not poison the key: the same request now
	// computes cleanly.
	ok := s.Do(context.Background(), req)
	if ok.Status != http.StatusOK || ok.Source != "cold" {
		t.Fatalf("post-cancellation request: status=%d source=%q, want 200/cold", ok.Status, ok.Source)
	}
	if got := s.StatsSnapshot().SingleflightMerged; got != 0 {
		t.Fatalf("singleflight.merged after clean compute = %d, want 0", got)
	}
}
