package serve

import (
	"sync"

	"repro/internal/obs"
)

// State is the server's availability state, a three-state machine:
//
//	healthy  — full service, disk-backed cache online
//	degraded — the cache circuit breaker tripped the disk layer to
//	           memory-only mode; requests are still served (fail-open),
//	           warmth across restarts is what's lost
//	draining — shutdown has begun; in-flight and already-routed requests
//	           complete, readiness turns false so balancers stop routing
//
// healthy and degraded flip with the breaker; draining is terminal.
type State int32

const (
	Healthy State = iota
	Degraded
	Draining
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Draining:
		return "draining"
	}
	return "unknown"
}

// health drives the state machine from its two inputs — breaker state
// and drain — and publishes every transition to the metrics registry
// (serve.health.state gauge, serve.health.transitions counter).
type health struct {
	scope *obs.Scope

	mu          sync.Mutex
	breakerOpen bool
	draining    bool
	state       State
}

func newHealth(scope *obs.Scope) *health {
	h := &health{scope: scope}
	scope.Gauge("health.state").Set(int64(Healthy))
	return h
}

// setBreaker records a cache breaker transition (open=true means the
// disk layer went offline).
func (h *health) setBreaker(open bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.breakerOpen = open
	h.recompute()
}

// setDraining moves the machine to its terminal state.
func (h *health) setDraining() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.draining = true
	h.recompute()
}

// recompute folds the inputs into the state; callers hold h.mu.
func (h *health) recompute() {
	next := Healthy
	if h.breakerOpen {
		next = Degraded
	}
	if h.draining {
		next = Draining
	}
	if next == h.state {
		return
	}
	h.state = next
	h.scope.Counter("health.transitions").Inc()
	h.scope.Gauge("health.state").Set(int64(next))
}

// State returns the current availability state.
func (h *health) State() State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// BreakerOpen reports whether the disk breaker input is currently open.
func (h *health) BreakerOpen() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.breakerOpen
}
