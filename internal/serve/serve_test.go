package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/budget"
	"repro/internal/workloads"
)

func newServer(t *testing.T, o Options) *Server {
	t.Helper()
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ksReq() *Request {
	return &Request{Workload: "ks", Partitioner: "gremio", Sim: true}
}

func mustOK(t *testing.T, res Result) Response {
	t.Helper()
	if res.Status != http.StatusOK {
		t.Fatalf("status %d: %s", res.Status, res.Body)
	}
	var resp Response
	if err := json.Unmarshal(res.Body, &resp); err != nil {
		t.Fatalf("response not valid JSON: %v\n%s", err, res.Body)
	}
	return resp
}

// TestColdWarmRestartBytesIdentical is the serving contract: cold
// compute, warm memory hit, and warm disk hit after a restart all return
// the exact same bytes — and the warm paths never re-run the pipeline.
func TestColdWarmRestartBytesIdentical(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s1 := newServer(t, Options{CacheDir: dir, Degrade: true})

	cold := s1.Do(ctx, ksReq())
	resp := mustOK(t, cold)
	if cold.Source != "cold" {
		t.Fatalf("first request source = %q, want cold", cold.Source)
	}
	if resp.Schema != SchemaVersion || resp.Workload != "ks" || resp.Comm == nil || resp.Cycles == nil {
		t.Fatalf("incomplete response: %+v", resp)
	}
	if resp.Cycles.Speedup <= 0 {
		t.Fatalf("speedup = %v", resp.Cycles.Speedup)
	}
	if st := s1.StatsSnapshot(); st.Compute != 1 {
		t.Fatalf("cold compute count = %d, want 1", st.Compute)
	}

	warm := s1.Do(ctx, ksReq())
	mustOK(t, warm)
	if warm.Source != "warm" {
		t.Fatalf("second request source = %q, want warm", warm.Source)
	}
	if !bytes.Equal(cold.Body, warm.Body) {
		t.Fatalf("warm bytes differ from cold:\n%s\n%s", cold.Body, warm.Body)
	}
	st := s1.StatsSnapshot()
	if st.Compute != 1 {
		t.Fatalf("warm request re-ran the pipeline: compute = %d", st.Compute)
	}
	if st.CacheHitMem == 0 {
		t.Fatalf("warm request did not hit the memory layer: %+v", st)
	}

	// Restart: a fresh server over the same cache dir must serve the
	// same bytes from disk without computing anything.
	s2 := newServer(t, Options{CacheDir: dir, Degrade: true})
	restart := s2.Do(ctx, ksReq())
	mustOK(t, restart)
	if restart.Source != "warm" {
		t.Fatalf("post-restart source = %q, want warm", restart.Source)
	}
	if !bytes.Equal(cold.Body, restart.Body) {
		t.Fatalf("post-restart bytes differ from cold")
	}
	st2 := s2.StatsSnapshot()
	if st2.Compute != 0 {
		t.Fatalf("post-restart request re-ran the pipeline: compute = %d", st2.Compute)
	}
	if st2.CacheHitDisk != 1 {
		t.Fatalf("post-restart hit.disk = %d, want 1", st2.CacheHitDisk)
	}
}

// TestConcurrentMixedRequests is the -race stress: 64 concurrent requests
// over a handful of distinct configurations must each compute exactly
// once, and every response for a given configuration must be
// byte-identical regardless of which path (cold, merged, warm) served it.
func TestConcurrentMixedRequests(t *testing.T) {
	s := newServer(t, Options{Degrade: true})
	ctx := context.Background()

	mk := func(workload, part string) *Request {
		return &Request{Workload: workload, Partitioner: part}
	}
	configs := []*Request{
		mk("ks", "gremio"),
		mk("ks", "dswp"),
		mk("adpcmdec", "gremio"),
		mk("adpcmdec", "dswp"),
	}
	const perConfig = 16 // 64 requests total

	results := make([][]Result, len(configs))
	for i := range results {
		results[i] = make([]Result, perConfig)
	}
	var wg sync.WaitGroup
	for ci := range configs {
		for j := 0; j < perConfig; j++ {
			wg.Add(1)
			go func(ci, j int) {
				defer wg.Done()
				results[ci][j] = s.Do(ctx, configs[ci])
			}(ci, j)
		}
	}
	wg.Wait()

	for ci := range configs {
		first := results[ci][0]
		mustOK(t, first)
		for j, r := range results[ci] {
			if r.Status != http.StatusOK {
				t.Fatalf("config %d request %d: status %d: %s", ci, j, r.Status, r.Body)
			}
			if !bytes.Equal(first.Body, r.Body) {
				t.Fatalf("config %d request %d: bytes differ across paths", ci, j)
			}
		}
	}
	st := s.StatsSnapshot()
	if st.Compute != int64(len(configs)) {
		t.Fatalf("compute = %d, want exactly %d (one per distinct configuration)", st.Compute, len(configs))
	}
	if st.Requests != int64(len(configs)*perConfig) {
		t.Fatalf("requests = %d, want %d", st.Requests, len(configs)*perConfig)
	}
}

// TestUnknownNamesListValid mirrors the CLI contract over HTTP: unknown
// workload/partitioner names are 400s whose message lists the valid
// names.
func TestUnknownNamesListValid(t *testing.T) {
	s := newServer(t, Options{})
	ctx := context.Background()

	res := s.Do(ctx, &Request{Workload: "bogus"})
	if res.Status != http.StatusBadRequest {
		t.Fatalf("unknown workload status = %d, want 400", res.Status)
	}
	if !strings.Contains(string(res.Body), "ks") || !strings.Contains(string(res.Body), "181.mcf") {
		t.Fatalf("unknown-workload error does not list valid names: %s", res.Body)
	}

	res = s.Do(ctx, &Request{Workload: "ks", Partitioner: "stripe"})
	if res.Status != http.StatusBadRequest {
		t.Fatalf("unknown partitioner status = %d, want 400", res.Status)
	}
	if !strings.Contains(string(res.Body), "gremio") || !strings.Contains(string(res.Body), "dswp") {
		t.Fatalf("unknown-partitioner error does not list valid names: %s", res.Body)
	}

	res = s.Do(ctx, &Request{})
	if res.Status != http.StatusBadRequest {
		t.Fatalf("empty request status = %d, want 400", res.Status)
	}
}

// TestQueueFull is the bounded-admission contract: with the only slot
// occupied, a cache-missing request is rejected with 503 and counted,
// never queued unboundedly.
func TestQueueFull(t *testing.T) {
	s := newServer(t, Options{Queue: 1})
	s.queue <- struct{}{} // occupy the only compute slot
	res := s.Do(context.Background(), &Request{Workload: "ks"})
	if res.Status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", res.Status, res.Body)
	}
	if st := s.StatsSnapshot(); st.QueueRejected != 1 || st.Compute != 0 {
		t.Fatalf("rejected = %d compute = %d, want 1 / 0", st.QueueRejected, st.Compute)
	}
	<-s.queue
	// With the slot free the same request computes normally.
	res = s.Do(context.Background(), &Request{Workload: "ks"})
	mustOK(t, res)
}

// TestInlineIR schedules an inline IR function (the ks kernel round-
// tripped through its canonical text) and checks the response is
// deterministic across servers.
func TestInlineIR(t *testing.T) {
	ks := workloads.KS()
	in := ks.Train()
	req := &Request{
		IR:          ks.F.String(),
		Name:        "inline-ks",
		Args:        in.Args,
		Mem:         in.Mem,
		Partitioner: "gremio",
	}
	for _, o := range ks.Objects {
		req.Objects = append(req.Objects, MemObject{Name: o.Name, Base: o.Base, Size: o.Size})
	}
	ctx := context.Background()

	s1 := newServer(t, Options{Degrade: true})
	r1 := s1.Do(ctx, req)
	resp := mustOK(t, r1)
	if resp.Workload != "inline-ks" || resp.Comm == nil {
		t.Fatalf("inline response: %+v", resp)
	}
	s2 := newServer(t, Options{Degrade: true})
	r2 := s2.Do(ctx, req)
	mustOK(t, r2)
	if !bytes.Equal(r1.Body, r2.Body) {
		t.Fatalf("inline IR responses differ across servers:\n%s\n%s", r1.Body, r2.Body)
	}

	if res := s1.Do(ctx, &Request{IR: "not ir at all {{{"}); res.Status != http.StatusBadRequest {
		t.Fatalf("bad IR status = %d, want 400: %s", res.Status, res.Body)
	}
	if res := s1.Do(ctx, &Request{Workload: "ks", IR: "x"}); res.Status != http.StatusBadRequest {
		t.Fatalf("workload+ir status = %d, want 400", res.Status)
	}
}

// TestBudgetClampSharesKey: requested budgets past the server cap clamp
// to the cap before keying, so an over-ask and an exact-ask share one
// cache entry and one computation.
func TestBudgetClampSharesKey(t *testing.T) {
	max := budget.Budget{ProfileSteps: 50_000_000, MeasureSteps: 50_000_000, SimCycles: 100_000_000}
	s := newServer(t, Options{MaxBudget: max, Degrade: true})
	ctx := context.Background()

	over := &Request{Workload: "ks", Budget: Budget{MeasureSteps: 999_999_999_999}}
	exact := &Request{Workload: "ks", Budget: Budget{
		ProfileSteps: max.ProfileSteps, MeasureSteps: max.MeasureSteps, SimCycles: max.SimCycles,
	}}
	r1 := s.Do(ctx, over)
	mustOK(t, r1)
	r2 := s.Do(ctx, exact)
	mustOK(t, r2)
	if !bytes.Equal(r1.Body, r2.Body) {
		t.Fatalf("clamped requests produced different bytes")
	}
	if st := s.StatsSnapshot(); st.Compute != 1 {
		t.Fatalf("compute = %d, want 1 (clamped budgets share a key)", st.Compute)
	}
}

// TestHTTPEndpoints drives the real handler: schedule with source
// headers, batch ordering with per-item statuses, stats, names, health,
// and bad-JSON handling.
func TestHTTPEndpoints(t *testing.T) {
	s := newServer(t, Options{Degrade: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		res, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(res.Body)
		return res, buf.Bytes()
	}
	get := func(path string) []byte {
		t.Helper()
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, res.StatusCode)
		}
		var buf bytes.Buffer
		buf.ReadFrom(res.Body)
		return buf.Bytes()
	}

	res, cold := post("/v1/schedule", `{"workload":"adpcmdec","partitioner":"dswp"}`)
	if res.StatusCode != http.StatusOK || res.Header.Get("X-Gmtserve-Source") != "cold" {
		t.Fatalf("schedule: %d source=%q: %s", res.StatusCode, res.Header.Get("X-Gmtserve-Source"), cold)
	}
	res, warm := post("/v1/schedule", `{"workload":"adpcmdec","partitioner":"dswp"}`)
	if res.Header.Get("X-Gmtserve-Source") != "warm" || !bytes.Equal(cold, warm) {
		t.Fatalf("schedule warm: source=%q, equal=%v", res.Header.Get("X-Gmtserve-Source"), bytes.Equal(cold, warm))
	}

	res, body := post("/v1/batch", `{"requests":[
		{"workload":"adpcmdec","partitioner":"dswp"},
		{"workload":"nope"},
		{"workload":"adpcmdec","partitioner":"dswp"}
	]}`)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d: %s", res.StatusCode, body)
	}
	var batch BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Responses) != 3 {
		t.Fatalf("batch responses = %d, want 3", len(batch.Responses))
	}
	if batch.Responses[0].Status != 200 || batch.Responses[1].Status != 400 || batch.Responses[2].Status != 200 {
		t.Fatalf("batch statuses = %+v", batch.Responses)
	}
	if !bytes.Equal(batch.Responses[0].Body, batch.Responses[2].Body) {
		t.Fatal("identical batch items returned different bytes")
	}
	if !bytes.Equal(batch.Responses[0].Body, cold) {
		t.Fatal("batch bytes differ from schedule bytes for the same request")
	}

	var stats Stats
	if err := json.Unmarshal(get("/v1/stats"), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Compute != 1 {
		t.Fatalf("stats compute = %d, want 1", stats.Compute)
	}
	var names map[string][]string
	if err := json.Unmarshal(get("/v1/workloads"), &names); err != nil {
		t.Fatal(err)
	}
	if len(names["workloads"]) == 0 {
		t.Fatal("no workloads listed")
	}
	if err := json.Unmarshal(get("/v1/partitioners"), &names); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(names["partitioners"]) != "[gremio dswp]" {
		t.Fatalf("partitioners = %v", names["partitioners"])
	}
	if !json.Valid(get("/v1/metrics")) {
		t.Fatal("metrics endpoint is not valid JSON")
	}
	get("/v1/healthz")

	res, body = post("/v1/schedule", `{"workload":`)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d: %s", res.StatusCode, body)
	}
}

// TestCorruptDiskEntryRecomputes: a truncated cache file must be treated
// as a miss — the server recomputes and rewrites it, and the corrupt
// bytes are never served.
func TestCorruptDiskEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	req := &Request{Workload: "adpcmdec"}

	s1 := newServer(t, Options{CacheDir: dir, Degrade: true})
	good := s1.Do(ctx, req)
	mustOK(t, good)

	truncateCacheEntries(t, dir)

	s2 := newServer(t, Options{CacheDir: dir, Degrade: true})
	res := s2.Do(ctx, req)
	mustOK(t, res)
	if res.Source != "cold" {
		t.Fatalf("corrupt entry was served: source = %q", res.Source)
	}
	if !bytes.Equal(good.Body, res.Body) {
		t.Fatal("recomputed bytes differ")
	}
	st := s2.StatsSnapshot()
	if st.CacheCorrupt == 0 || st.Compute != 1 {
		t.Fatalf("corrupt = %d compute = %d, want >0 / 1", st.CacheCorrupt, st.Compute)
	}
}

// truncateCacheEntries chops every on-disk cache entry under dir in half,
// simulating a crash mid-write that somehow survived the atomic rename
// (or simple disk damage).
func truncateCacheEntries(t *testing.T, dir string) {
	t.Helper()
	shards, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, shard.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			p := filepath.Join(dir, shard.Name(), f.Name())
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("no cache entries found to corrupt")
	}
}
