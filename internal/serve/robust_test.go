package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/vfs"
)

// failingFS fails the first failWrites WriteFile calls with EIO, then
// passes through (the disk "heals") — the script the breaker-driven
// health tests need.
type failingFS struct {
	vfs.OS
	mu         sync.Mutex
	failWrites int
	failReads  int
	writes     int
	reads      int
}

func (f *failingFS) WriteFile(path string, data []byte, durable bool) error {
	f.mu.Lock()
	f.writes++
	fail := f.writes <= f.failWrites
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("scripted write fault: %w", syscall.EIO)
	}
	return f.OS.WriteFile(path, data, durable)
}

func (f *failingFS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	f.reads++
	fail := f.reads <= f.failReads
	f.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("scripted read fault: %w", syscall.EIO)
	}
	return f.OS.ReadFile(path)
}

// TestPutFaultNeverFailsRequest: a disk too full to cache the response
// must not fail the request — the bytes are computed, served with 200,
// counted under cache_put_errors, and identical to a fault-free server's.
func TestPutFaultNeverFailsRequest(t *testing.T) {
	ctx := context.Background()
	clean := newServer(t, Options{CacheDir: t.TempDir(), Degrade: true})
	want := mustOK(t, clean.Do(ctx, ksReq()))
	wantBytes := clean.Do(ctx, ksReq()).Body

	// ByteBudget 1: the very first cache write overflows the disk.
	faulty := vfs.NewFaulty(vfs.Spec{Class: vfs.WriteENOSPC, Seed: 1, ByteBudget: 1})
	s := newServer(t, Options{CacheDir: t.TempDir(), Degrade: true, FS: faulty, BreakerThreshold: -1})
	res := s.Do(ctx, ksReq())
	got := mustOK(t, res)
	if res.Source != "cold" {
		t.Fatalf("source = %q, want cold", res.Source)
	}
	if !bytes.Equal(res.Body, wantBytes) {
		t.Fatalf("full-disk response differs from fault-free:\n%s\n%s", res.Body, wantBytes)
	}
	if got.Fingerprint != want.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", got.Fingerprint, want.Fingerprint)
	}
	st := s.StatsSnapshot()
	if st.CachePutErrors == 0 {
		t.Fatal("cache_put_errors = 0, want the failed Put counted")
	}
	if st.Errors != 0 {
		t.Fatalf("errors = %d, want 0 (the request succeeded)", st.Errors)
	}
	// The memory layer still has the bytes: the retry is warm and equal.
	warm := s.Do(ctx, ksReq())
	if warm.Source != "warm" || !bytes.Equal(warm.Body, wantBytes) {
		t.Fatalf("post-fault warm request: source %q, bytes equal %v", warm.Source, bytes.Equal(warm.Body, wantBytes))
	}
}

// TestReadFaultBytesIdentical: transient read faults under a warm disk
// never change response bytes — retries (or a recompute) serve the same
// payload a fault-free server does.
func TestReadFaultBytesIdentical(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s1 := newServer(t, Options{CacheDir: dir, Degrade: true})
	wantBytes := s1.Do(ctx, ksReq()).Body
	if len(wantBytes) == 0 {
		t.Fatal("seed request returned no bytes")
	}

	// A restarted server over the same cache, with flaky reads: every
	// response still byte-identical.
	faulty := vfs.NewFaulty(vfs.Spec{Class: vfs.ReadEIO, Seed: 3})
	s2 := newServer(t, Options{CacheDir: dir, MemEntries: 1, Degrade: true, FS: faulty})
	for i := 0; i < 5; i++ {
		res := s2.Do(ctx, ksReq())
		if res.Status != http.StatusOK || !bytes.Equal(res.Body, wantBytes) {
			t.Fatalf("request %d under read faults: status %d, bytes equal %v", i, res.Status, bytes.Equal(res.Body, wantBytes))
		}
	}
}

// TestSingleflightUnderDiskFaults: concurrent identical requests during
// injected disk faults resolve to one consistent outcome — every joiner
// gets the leader's bytes, and singleflight_merged matches the number of
// merged responses exactly (breaker activity must not double-count).
func TestSingleflightUnderDiskFaults(t *testing.T) {
	ctx := context.Background()
	// Writes fail long enough to trip the breaker mid-burst; reads are
	// healthy so the outcome is the computed payload either way.
	fs := &failingFS{failWrites: 100}
	s := newServer(t, Options{
		CacheDir: t.TempDir(), Degrade: true, FS: fs,
		DiskRetries: -1, BreakerThreshold: 2,
	})

	const n = 8
	results := make([]Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.Do(ctx, ksReq())
		}(i)
	}
	wg.Wait()

	merged := 0
	for i, res := range results {
		if res.Status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, res.Status, res.Body)
		}
		if !bytes.Equal(res.Body, results[0].Body) {
			t.Fatalf("request %d bytes differ from request 0", i)
		}
		if res.Source == "merged" {
			merged++
		}
	}
	st := s.StatsSnapshot()
	if st.SingleflightMerged != int64(merged) {
		t.Fatalf("singleflight_merged = %d, want %d (one per merged response, no double-counting)",
			st.SingleflightMerged, merged)
	}
	if st.Compute == 0 || st.Compute+st.SingleflightMerged+st.CacheHitMem+st.CacheHitDisk < n {
		t.Fatalf("outcome accounting doesn't cover the burst: %+v", st)
	}
}

// TestDeadlineExceeded: a request whose deadline expires mid-compute
// gets 504 and the deadline_exceeded counter; the same request without
// a deadline succeeds, proving the deadline — not the workload — failed.
func TestDeadlineExceeded(t *testing.T) {
	ctx := context.Background()
	s := newServer(t, Options{Degrade: true})
	req := ksReq()
	req.DeadlineMS = 1
	res := s.Do(ctx, req)
	if res.Status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", res.Status, res.Body)
	}
	if st := s.StatsSnapshot(); st.DeadlineExceeded != 1 {
		t.Fatalf("deadline_exceeded = %d, want 1", st.DeadlineExceeded)
	}
	mustOK(t, s.Do(ctx, ksReq()))
}

// TestDeadlineClamp: the effective deadline is requested-else-default
// clamped to the cap, and it never reaches the cache key.
func TestDeadlineClamp(t *testing.T) {
	s := newServer(t, Options{DefaultDeadline: 2 * time.Second, MaxDeadline: 5 * time.Second})
	for _, tc := range []struct {
		reqMS int64
		want  time.Duration
	}{
		{0, 2 * time.Second},      // default
		{1000, time.Second},       // requested under the cap
		{60_000, 5 * time.Second}, // clamped
	} {
		if got := s.deadlineFor(&Request{DeadlineMS: tc.reqMS}); got != tc.want {
			t.Errorf("deadlineFor(%d ms) = %v, want %v", tc.reqMS, got, tc.want)
		}
	}
	// No default: only the cap applies.
	s2 := newServer(t, Options{MaxDeadline: 3 * time.Second})
	if got := s2.deadlineFor(&Request{}); got != 3*time.Second {
		t.Errorf("capped no-default deadline = %v, want the cap", got)
	}
	s3 := newServer(t, Options{})
	if got := s3.deadlineFor(&Request{}); got != 0 {
		t.Errorf("unconfigured deadline = %v, want none", got)
	}

	// Two requests differing only in deadline share one cache entry.
	ctx := context.Background()
	s4 := newServer(t, Options{Degrade: true})
	a := s4.Do(ctx, ksReq())
	reqB := ksReq()
	reqB.DeadlineMS = 30_000
	b := s4.Do(ctx, reqB)
	if b.Source != "warm" || !bytes.Equal(a.Body, b.Body) {
		t.Fatalf("deadline leaked into the cache key: source %q", b.Source)
	}
}

// TestHealthStateMachine drives healthy → degraded (breaker trip) →
// healthy (probe closes) → draining (terminal), checking /v1/healthz
// liveness vs readiness at each stop.
func TestHealthStateMachine(t *testing.T) {
	ctx := context.Background()
	// Threshold 1: each request's healthy cache-miss read resets the
	// consecutive-fault count, so a higher threshold would need faults on
	// both paths to trip.
	fs := &failingFS{failWrites: 1}
	s := newServer(t, Options{
		CacheDir: t.TempDir(), Degrade: true, FS: fs,
		DiskRetries: -1, BreakerThreshold: 1, BreakerProbe: 1,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	checkHealthz := func(wantState string, wantReady bool) {
		t.Helper()
		for _, ready := range []bool{false, true} {
			url := ts.URL + "/v1/healthz"
			if ready {
				url += "?ready=1"
			}
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			var body struct {
				Ok    bool   `json:"ok"`
				State string `json:"state"`
				Ready bool   `json:"ready"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			wantStatus := http.StatusOK
			if ready && !wantReady {
				wantStatus = http.StatusServiceUnavailable
			}
			if resp.StatusCode != wantStatus || !body.Ok || body.State != wantState || body.Ready != wantReady {
				t.Fatalf("healthz(ready=%v) = %d %+v, want status %d state %q ready %v",
					ready, resp.StatusCode, body, wantStatus, wantState, wantReady)
			}
		}
	}

	if s.Health() != Healthy {
		t.Fatalf("initial state = %v, want healthy", s.Health())
	}
	checkHealthz("healthy", true)

	// The scripted write fault trips the breaker: degraded, still ready,
	// and the request itself succeeded (fail-open).
	mustOK(t, s.Do(ctx, ksReq()))
	if s.Health() != Degraded {
		t.Fatalf("state after breaker trip = %v, want degraded", s.Health())
	}
	checkHealthz("degraded", true)
	st := s.StatsSnapshot()
	if !st.BreakerOpen || st.BreakerTrips != 1 || st.Health != "degraded" {
		t.Fatalf("stats after trip: %+v", st)
	}

	// The disk healed after write 1; with probe-every-1 the next disk op
	// (this request's cache-miss read) probes, succeeds, and closes the
	// breaker: healthy again.
	req2 := &Request{Workload: "ks", Partitioner: "dswp"}
	mustOK(t, s.Do(ctx, req2))
	if s.Health() != Healthy {
		t.Fatalf("state after probe success = %v, want healthy", s.Health())
	}
	checkHealthz("healthy", true)
	if st := s.StatsSnapshot(); st.BreakerCloses != 1 {
		t.Fatalf("breaker_closes = %d, want 1", st.BreakerCloses)
	}
	// Closed for real: the next request's Put reaches the disk.
	req3 := &Request{Workload: "adpcmdec", Partitioner: "gremio"}
	mustOK(t, s.Do(ctx, req3))
	if st := s.StatsSnapshot(); st.CacheWriteErrors != 1 {
		t.Fatalf("cache_write_errors = %d, want only the scripted fault", st.CacheWriteErrors)
	}

	// Draining is terminal: not ready, still alive, still serving.
	s.BeginDrain()
	if s.Health() != Draining {
		t.Fatalf("state after BeginDrain = %v, want draining", s.Health())
	}
	checkHealthz("draining", false)
	mustOK(t, s.Do(ctx, ksReq())) // in-flight-style request still completes
	if s.Health() != Draining {
		t.Fatal("serving a request moved the state off draining")
	}
}
