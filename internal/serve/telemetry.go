// Request telemetry: the glue between one request's span tree and the
// places it is kept — the bounded trace store behind GET /v1/trace/{id},
// the flight recorder snapshotted to disk on 5xx, breaker trip, or
// drain, and the structured JSON access log.
//
// Everything here is timed by the server's injected clock (logical by
// default), so a serial request sequence renders byte-identical traces,
// dumps, and log lines on every run — the property the golden tests and
// the CI smoke jobs pin.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sync"

	"repro/internal/cache"
	"repro/internal/obs"
)

// spanCacheEvents copies one cache call's per-operation events onto its
// span: which layer answered and every fault-handling action the call
// took. Zero-valued events are omitted so the common clean path stays
// one attribute.
func spanCacheEvents(sp *obs.Span, ev *cache.OpEvents) {
	if sp == nil || ev == nil {
		return
	}
	if ev.Layer != "" {
		sp.SetStr("layer", ev.Layer)
	}
	for _, f := range []struct {
		key string
		n   int64
	}{
		{"retries", ev.Retries},
		{"read_errors", ev.ReadErrors},
		{"write_errors", ev.WriteErrors},
		{"corrupt", ev.Corrupt},
		{"quarantined", ev.Quarantined},
		{"breaker_bypass", ev.Bypass},
		{"breaker_probes", ev.Probes},
		{"breaker_trips", ev.BreakerTrips},
		{"breaker_closes", ev.BreakerCloses},
	} {
		if f.n > 0 {
			sp.SetInt(f.key, f.n)
		}
	}
}

// finishTrace renders a completed request's span tree once and fans the
// bytes out: trace retention, flight recorder, access log, and — on a
// 5xx — an immediate flight dump so the failure's own trace is in it.
func (s *Server) finishTrace(tree *obs.SpanTree, root *obs.Span, req *Request, res Result) {
	var buf bytes.Buffer
	tree.WriteJSON(&buf)
	rec := obs.TraceRecord{TraceID: tree.TraceID(), Status: res.Status, JSON: buf.Bytes()}
	s.traces.Record(rec)
	s.flight.Record(rec)
	s.logAccess(tree, root, req, res)
	if res.Status >= 500 {
		s.dumpFlight("5xx")
	}
}

// dumpFlight snapshots the flight recorder to
// flightDir/flight-<seq>-<reason>.json, atomically through the server's
// vfs (durable when the server is). A "" flightDir disables dumping; a
// failed dump is counted, never propagated — telemetry must not take a
// request down with it.
func (s *Server) dumpFlight(reason string) {
	if s.flightDir == "" {
		return
	}
	seq := s.dumpSeq.Add(1)
	var buf bytes.Buffer
	if err := s.flight.WriteDump(&buf, reason, seq); err != nil {
		s.scope.Counter("flight.dump_errors").Inc()
		return
	}
	path := filepath.Join(s.flightDir, fmt.Sprintf("flight-%03d-%s.json", seq, reason))
	if err := s.fs.MkdirAll(s.flightDir); err != nil {
		s.scope.Counter("flight.dump_errors").Inc()
		return
	}
	if err := s.fs.WriteFile(path, buf.Bytes(), s.durable); err != nil {
		s.scope.Counter("flight.dump_errors").Inc()
		return
	}
	s.scope.Counter("flight.dumps").Inc()
}

// accessLine is one JSON access-log record. Field order is the struct
// order, so lines are byte-stable for a deterministic request sequence.
type accessLine struct {
	TraceID     string `json:"trace_id"`
	Workload    string `json:"workload"`
	Partitioner string `json:"partitioner"`
	Status      int    `json:"status"`
	Source      string `json:"source"`
	Cache       string `json:"cache"`
	Degraded    int    `json:"degraded"`
	Start       int64  `json:"start"`
	End         int64  `json:"end"`
}

// accessLogger serializes concurrent writers onto one line-oriented
// sink. A nil logger is inert.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func newAccessLogger(w io.Writer) *accessLogger {
	if w == nil {
		return nil
	}
	return &accessLogger{w: w}
}

func (l *accessLogger) write(line []byte) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(line)
	l.w.Write([]byte("\n"))
}

// logAccess emits one structured line per request: identity, outcome,
// cache path, degradation-hop count, and the logical start/end times of
// the root span.
func (s *Server) logAccess(tree *obs.SpanTree, root *obs.Span, req *Request, res Result) {
	if s.access == nil {
		return
	}
	workload := req.Workload
	if workload == "" {
		workload = req.Name
		if workload == "" {
			workload = "inline"
		}
	}
	part := req.Partitioner
	if part == "" {
		part = "gremio"
	}
	cachePath, _ := root.StrAttr("cache")
	if cachePath == "" {
		cachePath = "none"
	}
	start, end := root.Times()
	line, err := json.Marshal(accessLine{
		TraceID:     res.TraceID,
		Workload:    workload,
		Partitioner: part,
		Status:      res.Status,
		Source:      res.Source,
		Cache:       cachePath,
		Degraded:    tree.CountSpans("degrade"),
		Start:       start,
		End:         end,
	})
	if err != nil {
		return
	}
	s.access.write(line)
}
