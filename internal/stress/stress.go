// Package stress is the corpus-scale differential torture sweep: the
// standing correctness harness behind cmd/gmtstress.
//
// A sweep is a matrix of cells. Each cell pairs one corpus program (drawn
// from internal/randprog's seeded axis pools, or regenerated from a
// corpus.json manifest) with one configuration point — partitioner ×
// thread count × scheduling policy × queue depth × fault class — drawn
// reproducibly from the cell's seed. The cell runs the full differential
// oracle pinned to that configuration (oracle.ReplayConfig.Apply), so
// every cell is exactly one committed-format reproducer away from a
// regression test.
//
// Determinism is the design invariant: the cell list, each cell's
// outcome, the merged report, and every emitted reproducer are pure
// functions of (seed, cells, max-size, sentinel). Cells execute in
// parallel over internal/par with index-addressed result slots and all
// post-processing (shrinking, reproducer emission, report rendering)
// walks cells in index order, so the output is byte-identical across runs
// and across -j values.
//
// Fault-class cells apply the detector contract (the same one
// cmd/gmtcheck -chaos enforces): a destructive fault that fires must be
// detected — an undetected one is a finding — while benign faults and
// fault-free cells must pass. The optional sentinel cell plants a
// compile-time misplan and treats it as an ordinary bug, proving
// end-to-end that the sweep can fail, shrink, and emit a replayable
// reproducer.
package stress

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/budget"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/par"
	"repro/internal/randprog"
)

// Configuration pools the cell-config draw samples from. Small, fixed,
// and ordered: changing them changes every cell drawn after the change,
// which the fingerprinted manifest makes loud rather than silent.
var (
	partPool    = []string{"dswp", "gremio", "random"}
	schedPool   = []string{"round-robin", "random", "adversarial"}
	qcapPool    = []int{1, 2, 8, 32}
	threadsPool = []int{2, 3}
	// faultPool is weighted: most cells run fault-free (the differential
	// sweep proper); the rest exercise the detector contract across every
	// runtime class plus the compile-time misplan.
	faultPool = []fault.Class{"", "", "", "", "", "",
		fault.StallThread, fault.ShrinkQueue,
		fault.DropProduce, fault.DupProduce, fault.CorruptValue,
		fault.SwapQueue, fault.MisplacePlan}
)

// splitmix advances the SplitMix64 generator (same construction randprog
// and fault use): seeded draws independent of math/rand internals.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// configSalt decorrelates the config draw from the program draw (which
// hashes the same seed inside randprog.AxesForSeed).
const configSalt = 0x73747265737363 // "stressc"

// DrawConfig draws cell i's configuration point. Pure function of the
// arguments; the returned config is exactly what a failing cell's
// reproducer records.
func DrawConfig(seed int64, i int) oracle.ReplayConfig {
	h := splitmix(uint64(seed+int64(i)) ^ configSalt)
	rc := oracle.ReplayConfig{Partitioner: partPool[h%uint64(len(partPool))]}
	h = splitmix(h)
	rc.Threads = threadsPool[h%uint64(len(threadsPool))]
	h = splitmix(h)
	rc.Schedule = schedPool[h%uint64(len(schedPool))]
	if rc.Schedule == "random" {
		h = splitmix(h)
		rc.ScheduleSeed = int64(h % 1_000_000)
	}
	h = splitmix(h)
	rc.QueueCap = qcapPool[h%uint64(len(qcapPool))]
	h = splitmix(h)
	rc.Fault = faultPool[h%uint64(len(faultPool))]
	if rc.Fault != "" {
		h = splitmix(h)
		rc.FaultSeed = int64(h%1_000_000) + 1
	}
	// The simulator cross-check is the expensive quarter of the matrix.
	h = splitmix(h)
	rc.NoSim = h%4 != 0
	return rc
}

// Status classifies one cell's outcome.
type Status string

const (
	// StatusOK: the cell satisfied its contract (clean run, or a
	// destructive fault that was duly detected).
	StatusOK Status = "ok"
	// StatusMismatch: a fault-free or benign-fault cell reported oracle
	// failures — a real correctness finding.
	StatusMismatch Status = "MISMATCH"
	// StatusUndetected: a destructive fault fired and no detector caught
	// it — a detector-coverage finding.
	StatusUndetected Status = "UNDETECTED"
	// StatusSkipped: the cell's golden run was unusable (step budget);
	// counted and reported, never silently dropped.
	StatusSkipped Status = "skipped"
)

// Cell is one matrix point: a corpus program plus a pinned configuration.
type Cell struct {
	Index int
	// Seed is the program seed (randprog corpus entry seed).
	Seed int64
	// Sentinel marks the planted-bug cell.
	Sentinel bool
	Entry    randprog.Entry
	Config   oracle.ReplayConfig
}

// CellResult is one cell's merged outcome.
type CellResult struct {
	Cell     Cell
	Status   Status
	Runs     int
	Injected int64
	// Kinds is the sorted failure-kind multiset ("" when clean).
	Kinds string
	// Detail is the first failure (or skip reason) rendered on one line.
	Detail string
	// c is the case, retained for shrinking failing cells.
	c *oracle.Case
}

// Repro is one emitted reproducer: a shrunk failing cell in the corpus
// format, replayable by gmtcheck -replay.
type Repro struct {
	Cell   int
	Status Status
	Kind   oracle.Kind
	// TraceID is the cell's deterministic trace identifier (a pure
	// function of the sweep seed and cell index), written into the
	// reproducer's trace directive so the file links back to the sweep
	// run that emitted it.
	TraceID string
	// Text is the reproducer file body (oracle corpus format, replay and
	// trace directives included).
	Text string
}

// CellTraceID derives the deterministic trace ID of one sweep cell. The
// same (sweep seed, cell index) always names the same trace, so a
// reproducer can be matched to its sweep cell long after the run.
func CellTraceID(seed int64, cell int) string {
	return obs.TraceID("stress", fmt.Sprintf("%d", seed), fmt.Sprintf("%d", cell))
}

// Options configures a sweep. Zero values mean defaults.
type Options struct {
	// Seed roots the sweep: cell i uses program seed Seed+i.
	Seed int64
	// Cells is the number of matrix cells (default 16).
	Cells int
	// Jobs bounds sweep parallelism (par.Run semantics; 0 = GOMAXPROCS).
	// Results are byte-identical for every value.
	Jobs int
	// MaxSize caps the corpus size axis (0 = full range up to ~5k).
	MaxSize int
	// Budget bounds each cell's executor runs; zero fields fall back to
	// Defaults() (tighter than budget.Experiments(): a stress cell that
	// needs 200M steps is a corpus bug, not a finding).
	Budget budget.Budget
	// Manifest, when non-nil, supplies the corpus instead of streaming
	// generation: cell i regenerates (and fingerprint-verifies) program
	// i mod len(Manifest.Programs).
	Manifest *randprog.Manifest
	// Sentinel appends one planted-bug cell (a compile-time misplan
	// treated as an ordinary cell): the sweep must fail, shrink it, and
	// emit a replayable reproducer, proving the whole pipeline can fire.
	Sentinel bool
	// MaxRepros bounds how many failing cells are shrunk into reproducers
	// (default 3; shrinking is the expensive tail).
	MaxRepros int
	// ShrinkChecks bounds each shrink's candidate evaluations (default
	// 400; each evaluation is one single-cell oracle pass).
	ShrinkChecks int
	// Metrics receives sweep counters under the "stress" scope (nil ok).
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Cells == 0 {
		o.Cells = 16
	}
	if o.MaxRepros == 0 {
		o.MaxRepros = 3
	}
	if o.ShrinkChecks == 0 {
		o.ShrinkChecks = 400
	}
	o.Budget = o.Budget.OrElse(Defaults())
	return o
}

// Defaults is the stress sweep's per-cell budget: tight enough that a
// runaway cell fails fast at corpus scale.
func Defaults() budget.Budget {
	return budget.Budget{
		ProfileSteps: 5_000_000,
		MeasureSteps: 5_000_000,
		SimCycles:    50_000_000,
	}
}

// Result is the deterministic shard-merged outcome of one sweep.
type Result struct {
	Seed                            int64
	Cells                           []CellResult
	Repros                          []Repro
	Runs                            int
	Injected                        int64
	Mismatches, Undetected, Skipped int
	// ShrinkStopped records shrink errors (IR printing bugs surfaced
	// mid-shrink); the unshrunk reproducer is still emitted.
	ShrinkStopped []string
}

// Failed reports whether the sweep found anything.
func (r *Result) Failed() bool { return r.Mismatches+r.Undetected > 0 }

// cells materializes the deterministic cell list.
func cells(opts Options) ([]Cell, error) {
	var out []Cell
	for i := 0; i < opts.Cells; i++ {
		c := Cell{Index: i, Seed: opts.Seed + int64(i), Config: DrawConfig(opts.Seed, i)}
		if m := opts.Manifest; m != nil {
			if len(m.Programs) == 0 {
				return nil, fmt.Errorf("stress: manifest has no programs")
			}
			c.Entry = m.Programs[i%len(m.Programs)]
			c.Seed = c.Entry.Seed
		} else {
			c.Entry, _ = randprog.GenerateEntry(c.Seed, opts.MaxSize)
		}
		out = append(out, c)
	}
	if opts.Sentinel {
		out = append(out, Cell{
			Index:    opts.Cells,
			Seed:     opts.Seed,
			Sentinel: true,
		})
	}
	return out, nil
}

// program rebuilds a cell's program (fingerprint-checked, so a generator
// drift between manifest and binary is loud).
func program(c Cell, opts Options) (*randprog.Program, error) {
	if c.Entry.Fingerprint == "" {
		return nil, fmt.Errorf("stress: cell %d has no corpus entry", c.Index)
	}
	m := &randprog.Manifest{Version: randprog.ManifestVersion, Programs: []randprog.Entry{c.Entry}}
	return m.Regenerate(0)
}

// oracleOptions maps a cell onto single-cell oracle options.
func oracleOptions(c Cell, opts Options) (oracle.Options, error) {
	base := oracle.Options{
		Seed:      c.Seed,
		MaxSteps:  opts.Budget.MeasureSteps,
		SimCycles: opts.Budget.SimCycles,
	}
	return c.Config.Apply(base)
}

// sentinelConfig is the planted bug: a compile-time misplan pinned to the
// cheapest single cell. FaultSeed is scanned at runtime until the fault
// actually fires (a program with no cross-thread queue has nothing to
// misplace).
func sentinelConfig(faultSeed int64) oracle.ReplayConfig {
	return oracle.ReplayConfig{
		Partitioner: "dswp", Threads: 2, Schedule: "round-robin",
		QueueCap: 32, Fault: fault.MisplacePlan, FaultSeed: faultSeed, NoSim: true,
	}
}

// runSentinel finds, deterministically, the first program seed at or
// after the base seed whose misplanned compilation both fires and fails,
// and returns that cell result. The scan itself is part of the sweep's
// pure function of the seed.
func runSentinel(c Cell, opts Options) CellResult {
	for off := int64(0); off < 64; off++ {
		seed := opts.Seed + off
		cfg := sentinelConfig(1)
		cas := oracle.FromProgram(fmt.Sprintf("sentinel seed=%d", seed), seed,
			mustProgram(seed, opts.MaxSize))
		cas.Replay = &cfg
		oopts, err := cfg.Apply(oracle.Options{Seed: seed,
			MaxSteps: opts.Budget.MeasureSteps, SimCycles: opts.Budget.SimCycles})
		if err != nil {
			return CellResult{Cell: c, Status: StatusSkipped, Detail: err.Error()}
		}
		rep, err := oracle.Check(cas, oopts)
		if err != nil || rep.Injected == 0 {
			continue // unusable or queue-free program; try the next seed
		}
		res := CellResult{Cell: c, Runs: rep.Runs, Injected: rep.Injected, c: cas}
		res.Cell.Seed = seed
		res.Cell.Config = cfg
		if rep.Ok() {
			// The planted bug escaped: exactly the finding class the
			// sentinel exists to surface.
			res.Status = StatusUndetected
			res.Detail = fmt.Sprintf("planted misplan escaped: %s", rep.FaultSchedule)
			return res
		}
		res.Status = StatusMismatch
		res.Kinds = kindSet(rep)
		res.Detail = rep.Failures[0].String()
		return res
	}
	return CellResult{Cell: c, Status: StatusSkipped,
		Detail: "no misplaceable program within 64 seeds of the base seed"}
}

func mustProgram(seed int64, maxSize int) *randprog.Program {
	_, p := randprog.GenerateEntry(seed, maxSize)
	return p
}

// kindSet renders a report's failure kinds as a sorted, deduplicated set.
func kindSet(rep *oracle.Report) string {
	seen := map[oracle.Kind]bool{}
	var ks []string
	for _, f := range rep.Failures {
		if !seen[f.Kind] {
			seen[f.Kind] = true
			ks = append(ks, string(f.Kind))
		}
	}
	// Insertion sort: the set is tiny and package sort would be the only
	// other user of its import.
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	return strings.Join(ks, ",")
}

// runCell executes one ordinary (non-sentinel) cell.
func runCell(c Cell, opts Options) CellResult {
	res := CellResult{Cell: c}
	p, err := program(c, opts)
	if err != nil {
		res.Status = StatusSkipped
		res.Detail = err.Error()
		return res
	}
	cfg := c.Config
	cas := oracle.FromProgram(fmt.Sprintf("cell=%d seed=%d", c.Index, c.Seed), c.Seed, p)
	cas.Replay = &cfg
	res.c = cas
	oopts, err := oracleOptions(c, opts)
	if err != nil {
		res.Status = StatusSkipped
		res.Detail = err.Error()
		return res
	}
	rep, err := oracle.Check(cas, oopts)
	if err != nil {
		res.Status = StatusSkipped
		res.Detail = err.Error()
		return res
	}
	res.Runs = rep.Runs
	res.Injected = rep.Injected
	res.Kinds = kindSet(rep)
	if !rep.Ok() {
		res.Detail = rep.Failures[0].String()
	}

	switch {
	case c.Config.Fault != "" && !c.Config.Fault.Benign():
		// Destructive-fault cell: the detector contract. A fault that
		// never fired is vacuous — the run must simply pass.
		if rep.Injected == 0 {
			if rep.Ok() {
				res.Status = StatusOK
			} else {
				res.Status = StatusMismatch
			}
		} else if rep.Ok() {
			res.Status = StatusUndetected
			res.Detail = fmt.Sprintf("%s fired %d time(s), no detector reported it",
				c.Config.Fault, rep.Injected)
		} else {
			res.Status = StatusOK
		}
	default:
		// Fault-free and benign-fault cells must be clean.
		if rep.Ok() {
			res.Status = StatusOK
		} else {
			res.Status = StatusMismatch
		}
	}
	return res
}

// Sweep runs the full matrix. The returned Result — including the order
// and content of Repros — is a pure function of opts (minus Jobs and
// Metrics), whatever the parallelism.
func Sweep(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	cs, err := cells(opts)
	if err != nil {
		return nil, err
	}

	results := make([]CellResult, len(cs))
	err = par.Run(ctx, opts.Jobs, len(cs), func(i int) error {
		if cs[i].Sentinel {
			results[i] = runSentinel(cs[i], opts)
		} else {
			results[i] = runCell(cs[i], opts)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Seed: opts.Seed, Cells: results}
	for _, cr := range results {
		res.Runs += cr.Runs
		res.Injected += cr.Injected
		switch cr.Status {
		case StatusMismatch:
			res.Mismatches++
		case StatusUndetected:
			res.Undetected++
		case StatusSkipped:
			res.Skipped++
		}
	}

	// Shrink failing cells into reproducers, serially and in cell order,
	// so the emitted files are identical across -j values.
	for _, cr := range results {
		if len(res.Repros) >= opts.MaxRepros {
			break
		}
		if cr.Status != StatusMismatch && cr.Status != StatusUndetected {
			continue
		}
		if cr.c == nil {
			continue
		}
		oopts, err := oracleOptions(cr.Cell, opts)
		if err != nil {
			continue
		}
		var still oracle.Property
		var kind oracle.Kind
		if cr.Status == StatusMismatch {
			kind = oracle.Kind(strings.SplitN(cr.Kinds, ",", 2)[0])
			still = oracle.StillFails(oopts, kind)
		} else {
			still = stillUndetected(oopts)
		}
		min, serr := oracle.Shrink(cr.c, still, opts.ShrinkChecks)
		if serr != nil {
			res.ShrinkStopped = append(res.ShrinkStopped,
				fmt.Sprintf("cell %d: %v", cr.Cell.Index, serr))
		}
		min.Name = fmt.Sprintf("cell=%d seed=%d (shrunk)", cr.Cell.Index, cr.Cell.Seed)
		min.TraceID = CellTraceID(opts.Seed, cr.Cell.Index)
		res.Repros = append(res.Repros, Repro{
			Cell:    cr.Cell.Index,
			Status:  cr.Status,
			Kind:    kind,
			TraceID: min.TraceID,
			Text:    oracle.FormatCase(min),
		})
	}

	if s := opts.Metrics.Scope("stress"); s != nil {
		s.Counter("cells").Add(int64(len(results)))
		s.Counter("runs").Add(int64(res.Runs))
		s.Counter("injected").Add(res.Injected)
		s.Counter("mismatches").Add(int64(res.Mismatches))
		s.Counter("undetected").Add(int64(res.Undetected))
		s.Counter("skipped").Add(int64(res.Skipped))
		s.Counter("shrinks").Add(int64(len(res.Repros)))
	}
	return res, nil
}

// stillUndetected is the shrink property for detector-coverage findings:
// the fault still fires and the oracle still misses it.
func stillUndetected(opts oracle.Options) oracle.Property {
	return func(c *oracle.Case) bool {
		rep, err := oracle.Check(c, opts)
		return err == nil && rep.Injected > 0 && rep.Ok()
	}
}

// WriteReport renders the deterministic sweep report: one line per cell
// in index order plus a summary. Byte-identical across runs and -j.
func (r *Result) WriteReport(w io.Writer) error {
	for _, cr := range r.Cells {
		label := "sentinel"
		if !cr.Cell.Sentinel {
			label = cr.Cell.Entry.Axes.String()
		}
		detail := ""
		if cr.Detail != "" {
			detail = " | " + cr.Detail
		}
		if _, err := fmt.Fprintf(w, "cell %3d seed=%d [%s] %s :: %s%s\n",
			cr.Cell.Index, cr.Cell.Seed, label, cr.Cell.Config, cr.Status, detail); err != nil {
			return err
		}
	}
	for _, s := range r.ShrinkStopped {
		if _, err := fmt.Fprintf(w, "shrink stopped early: %s\n", s); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"stress seed=%d: %d cells (%d skipped), %d runs, %d faults injected, %d mismatches, %d undetected, %d reproducers\n",
		r.Seed, len(r.Cells), r.Skipped, r.Runs, r.Injected, r.Mismatches, r.Undetected, len(r.Repros))
	return err
}
