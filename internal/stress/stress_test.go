package stress

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/randprog"
)

// render materializes everything a sweep emits — the report and every
// reproducer — so two sweeps can be compared byte for byte.
func render(t *testing.T, res *Result) string {
	t.Helper()
	var b bytes.Buffer
	if err := res.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Repros {
		b.WriteString(r.Text)
	}
	return b.String()
}

// TestSweepDeterministicAcrossJobs is the acceptance criterion: the
// shard-merged report and reproducers are byte-identical across runs and
// across -j values.
func TestSweepDeterministicAcrossJobs(t *testing.T) {
	base := Options{Seed: 5, Cells: 6, MaxSize: 120, Sentinel: true}
	var first string
	for _, jobs := range []int{1, 4, 13} {
		opts := base
		opts.Jobs = jobs
		res, err := Sweep(context.Background(), opts)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		got := render(t, res)
		if first == "" {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("sweep output differs between -j 1 and -j %d:\n--- j=1 ---\n%s--- j=%d ---\n%s",
				jobs, first, jobs, got)
		}
	}
}

// TestSentinelDetectsShrinksAndReplays pins the planted-bug pipeline: the
// sentinel cell must fail the sweep, be shrunk into a reproducer, and
// that reproducer — parsed back through the corpus format — must still
// fail under its recorded cell.
func TestSentinelDetectsShrinksAndReplays(t *testing.T) {
	res, err := Sweep(context.Background(), Options{
		Seed: 1, Cells: 1, MaxSize: 120, Sentinel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("sentinel sweep passed; the planted misplan went unnoticed")
	}
	if len(res.Repros) == 0 {
		t.Fatal("sentinel failure produced no reproducer")
	}
	r := res.Repros[len(res.Repros)-1]
	c, err := oracle.ParseCase(r.Text)
	if err != nil {
		t.Fatalf("reproducer does not parse: %v\n%s", err, r.Text)
	}
	if c.Replay == nil {
		t.Fatalf("reproducer lost its replay directive:\n%s", r.Text)
	}
	want := CellTraceID(1, r.Cell)
	if r.TraceID != want {
		t.Errorf("Repro.TraceID = %q, want %q", r.TraceID, want)
	}
	if c.TraceID != want {
		t.Errorf("reproducer trace directive parsed to %q, want %q:\n%s", c.TraceID, want, r.Text)
	}
	opts, err := c.Replay.Apply(oracle.Options{Seed: c.Seed})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := oracle.Check(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatalf("shrunk reproducer no longer fails under its recorded cell:\n%s", r.Text)
	}
}

// TestDrawConfigCoversPools: over a modest cell range the draw must hit
// every partitioner, schedule, and queue depth, and both fault-free and
// faulted cells — otherwise the matrix silently narrows.
func TestDrawConfigCoversPools(t *testing.T) {
	parts := map[string]bool{}
	scheds := map[string]bool{}
	qcaps := map[int]bool{}
	faultFree, faulted := false, false
	for i := 0; i < 256; i++ {
		rc := DrawConfig(1, i)
		parts[rc.Partitioner] = true
		scheds[rc.Schedule] = true
		qcaps[rc.QueueCap] = true
		if rc.Fault == "" {
			faultFree = true
		} else {
			faulted = true
		}
		if got := DrawConfig(1, i); got != rc {
			t.Fatalf("DrawConfig(1, %d) is not deterministic: %+v vs %+v", i, rc, got)
		}
	}
	if len(parts) != len(partPool) || len(scheds) != len(schedPool) || len(qcaps) != len(qcapPool) {
		t.Fatalf("draw does not cover the pools: parts=%v scheds=%v qcaps=%v", parts, scheds, qcaps)
	}
	if !faultFree || !faulted {
		t.Fatalf("draw does not mix fault-free and faulted cells (free=%v faulted=%v)", faultFree, faulted)
	}
}

// TestSweepFromManifestMatchesStreaming: a sweep over a recorded manifest
// reproduces the streaming sweep exactly (same seeds, same programs —
// the manifest adds only the fingerprint check).
func TestSweepFromManifestMatchesStreaming(t *testing.T) {
	streamed, err := Sweep(context.Background(), Options{Seed: 9, Cells: 4, MaxSize: 120})
	if err != nil {
		t.Fatal(err)
	}
	m := randprog.BuildManifest(9, 4, 120)
	recorded, err := Sweep(context.Background(), Options{Seed: 9, Cells: 4, MaxSize: 120, Manifest: m})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := render(t, streamed), render(t, recorded); a != b {
		t.Fatalf("manifest sweep diverged from streaming sweep:\n--- streamed ---\n%s--- recorded ---\n%s", a, b)
	}
}

// TestSweepRejectsDriftedManifest: a manifest whose fingerprints this
// binary cannot reproduce must skip those cells loudly, not run different
// programs under the recorded labels.
func TestSweepRejectsDriftedManifest(t *testing.T) {
	m := randprog.BuildManifest(9, 1, 120)
	m.Programs[0].Fingerprint = "0000000000000000"
	res, err := Sweep(context.Background(), Options{Seed: 9, Cells: 1, Manifest: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 1 {
		t.Fatalf("drifted manifest cell not skipped: %+v", res.Cells[0])
	}
	if !strings.Contains(res.Cells[0].Detail, "fingerprint") {
		t.Fatalf("skip reason does not name the fingerprint mismatch: %q", res.Cells[0].Detail)
	}
}

// TestSweepCountsMetrics: the obs counters mirror the report summary.
func TestSweepCountsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := Sweep(context.Background(), Options{
		Seed: 1, Cells: 2, MaxSize: 120, Sentinel: true, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"stress.cells":      int64(len(res.Cells)),
		"stress.runs":       int64(res.Runs),
		"stress.injected":   res.Injected,
		"stress.mismatches": int64(res.Mismatches),
		"stress.undetected": int64(res.Undetected),
		"stress.skipped":    int64(res.Skipped),
		"stress.shrinks":    int64(len(res.Repros)),
	}
	for name, v := range want {
		if got := reg.Counter(name).Value(); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
}
