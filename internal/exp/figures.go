package exp

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/interp"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// CommRow is one bar of Figures 1 and 7: the dynamic instruction mix of a
// workload under one partitioner, with and without COCO.
type CommRow struct {
	Workload    string
	Partitioner string
	Naive       interp.CommStats
	Coco        interp.CommStats
	// Fallback records what the degradation chain substituted when the
	// requested configuration failed: the alternate partitioner's name,
	// FallbackSingle for single-threaded execution, or "" when the cell
	// ran as requested.
	Fallback string
}

// CommPct returns the percentage of communication instructions under naive
// MTCG (Figure 1's bar height).
func (r CommRow) CommPct() float64 {
	t := r.Naive.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(r.Naive.Comm()) / float64(t)
}

// RelativeComm returns COCO's dynamic communication relative to naive MTCG
// in percent (Figure 7's bar height; lower is better, 100 = no change).
func (r CommRow) RelativeComm() float64 {
	if r.Naive.Comm() == 0 {
		return 100
	}
	return 100 * float64(r.Coco.Comm()) / float64(r.Naive.Comm())
}

// MemSyncRemovedPct returns the percentage of dynamic memory
// synchronizations removed by COCO, or -1 when the naive program has none.
func (r CommRow) MemSyncRemovedPct() float64 {
	n := r.Naive.MemSync()
	if n == 0 {
		return -1
	}
	return 100 * float64(n-r.Coco.MemSync()) / float64(n)
}

// CommExperiment produces the data behind Figures 1 and 7 for all
// workloads under both partitioners. It is the serial convenience wrapper
// around Engine.CommExperiment (one worker, fresh caches).
func CommExperiment(ws []*workloads.Workload) ([]CommRow, error) {
	return NewEngine(EngineOptions{Jobs: 1}).CommExperiment(context.Background(), ws)
}

// SpeedupRow is one group of Figure 8: cycle counts for a workload.
type SpeedupRow struct {
	Workload    string
	Partitioner string
	STCycles    int64
	NaiveCycles int64
	CocoCycles  int64
	// Fallback records what the degradation chain substituted (see
	// CommRow.Fallback); "" when the cell ran as requested.
	Fallback string
	// Note carries the profiler's one-line explanation of the naive→COCO
	// cycle delta when Engine.AnnotateSpeedups has run; "" otherwise.
	Note string
}

// NaiveSpeedup returns the MTCG-only speedup over single-threaded.
func (r SpeedupRow) NaiveSpeedup() float64 {
	return float64(r.STCycles) / float64(r.NaiveCycles)
}

// CocoSpeedup returns the MTCG+COCO speedup over single-threaded.
func (r SpeedupRow) CocoSpeedup() float64 {
	return float64(r.STCycles) / float64(r.CocoCycles)
}

// SpeedupExperiment produces Figure 8's data on the given machine. It is
// the serial convenience wrapper around Engine.SpeedupExperiment (one
// worker, fresh caches).
func SpeedupExperiment(cfg sim.Config, ws []*workloads.Workload) ([]SpeedupRow, error) {
	return NewEngine(EngineOptions{Jobs: 1}).SpeedupExperiment(context.Background(), cfg, ws)
}

// fallbackNote annotates a figure row that the degradation chain rescued;
// rows that ran as requested render exactly as before.
func fallbackNote(fb string) string {
	if fb == "" {
		return ""
	}
	return "  [fallback: " + fb + "]"
}

// explainNote annotates a figure row with the profiler's delta
// decomposition when -explain has run; unannotated rows render as before.
func explainNote(n string) string {
	if n == "" {
		return ""
	}
	return "  [" + n + "]"
}

// GeoMean returns the geometric mean of a positive series.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// ArithMean returns the arithmetic mean.
func ArithMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// RenderFig1 writes the Figure 1 breakdown (percent communication vs
// computation under plain MTCG) for one partitioner.
func RenderFig1(w io.Writer, rows []CommRow, partitioner string) {
	fmt.Fprintf(w, "Figure 1 (%s): breakdown of dynamic instructions under plain MTCG\n", partitioner)
	fmt.Fprintf(w, "%-14s %14s %14s %9s\n", "benchmark", "computation", "communication", "comm%")
	var pcts []float64
	for _, r := range rows {
		if r.Partitioner != partitioner {
			continue
		}
		comp := r.Naive.Total() - r.Naive.Comm()
		fmt.Fprintf(w, "%-14s %14d %14d %8.1f%%%s\n",
			r.Workload, comp, r.Naive.Comm(), r.CommPct(), fallbackNote(r.Fallback))
		pcts = append(pcts, r.CommPct())
	}
	fmt.Fprintf(w, "%-14s %30s %8.1f%%\n", "average", "", ArithMean(pcts))
}

// RenderFig7 writes Figure 7: COCO's dynamic communication relative to
// MTCG's, plus the memory-synchronization column the text discusses.
func RenderFig7(w io.Writer, rows []CommRow) {
	fmt.Fprintln(w, "Figure 7: relative dynamic communication/synchronization after COCO (% of MTCG; lower is better)")
	fmt.Fprintf(w, "%-14s %10s %10s %18s\n", "benchmark", "GREMIO", "DSWP", "mem syncs removed")
	names := orderedNames(rows)
	byKey := map[string]CommRow{}
	for _, r := range rows {
		byKey[r.Workload+"/"+r.Partitioner] = r
	}
	var gms, dms []float64
	for _, n := range names {
		g := byKey[n+"/GREMIO"]
		d := byKey[n+"/DSWP"]
		mem := "-"
		if pct := g.MemSyncRemovedPct(); pct >= 0 {
			mem = fmt.Sprintf("%.1f%% (GREMIO)", pct)
		}
		fmt.Fprintf(w, "%-14s %9.1f%% %9.1f%% %18s\n", n, g.RelativeComm(), d.RelativeComm(), mem)
		gms = append(gms, g.RelativeComm())
		dms = append(dms, d.RelativeComm())
	}
	fmt.Fprintf(w, "%-14s %9.1f%% %9.1f%%   (paper: 65.6%% / 76.2%%)\n",
		"average", ArithMean(gms), ArithMean(dms))
}

// RenderFig8 writes Figure 8: speedups over single-threaded execution with
// and without COCO.
func RenderFig8(w io.Writer, rows []SpeedupRow) {
	fmt.Fprintln(w, "Figure 8: speedup over single-threaded execution")
	fmt.Fprintf(w, "%-14s %-9s %12s %12s %10s\n", "benchmark", "scheduler", "MTCG", "MTCG+COCO", "COCO gain")
	perPart := map[string][]float64{}
	gains := map[string][]float64{}
	for _, r := range rows {
		gain := 100 * (r.CocoSpeedup()/r.NaiveSpeedup() - 1)
		fmt.Fprintf(w, "%-14s %-9s %11.2fx %11.2fx %+9.1f%%%s%s\n",
			r.Workload, r.Partitioner, r.NaiveSpeedup(), r.CocoSpeedup(), gain,
			fallbackNote(r.Fallback), explainNote(r.Note))
		perPart[r.Partitioner] = append(perPart[r.Partitioner], r.CocoSpeedup())
		gains[r.Partitioner] = append(gains[r.Partitioner], gain)
	}
	for _, part := range []string{"GREMIO", "DSWP"} {
		if len(perPart[part]) == 0 {
			continue
		}
		fmt.Fprintf(w, "%-14s %-9s geomean speedup %.2fx, mean COCO gain %+.1f%%\n",
			"average", part, GeoMean(perPart[part]), ArithMean(gains[part]))
	}
	fmt.Fprintln(w, "(paper: COCO improves GREMIO by 15.6% and DSWP by 2.7% on average; max +47.6% on ks)")
}

// RenderFig6a writes the machine configuration table.
func RenderFig6a(w io.Writer, cfg sim.Config) {
	fmt.Fprintln(w, "Figure 6(a): machine details")
	fmt.Fprintf(w, "  Core:        %d issue, %d ALU, %d memory, %d FP, %d branch\n",
		cfg.IssueWidth, cfg.ALUPorts, cfg.MemPorts, cfg.FPPorts, cfg.BranchPorts)
	fmt.Fprintf(w, "  L1D Cache:   %d cycle, %dKB, %d-way, %dB lines\n",
		cfg.L1Lat, cfg.L1Sets*cfg.L1Ways*cfg.L1Line*8/1024, cfg.L1Ways, cfg.L1Line*8)
	fmt.Fprintf(w, "  L2 Cache:    %d cycles, %dKB, %d-way, %dB lines\n",
		cfg.L2Lat, cfg.L2Sets*cfg.L2Ways*cfg.L2Line*8/1024, cfg.L2Ways, cfg.L2Line*8)
	fmt.Fprintf(w, "  Shared L3:   %d cycles, %.1fMB, %d-way, %dB lines\n",
		cfg.L3Lat, float64(cfg.L3Sets*cfg.L3Ways*cfg.L3Line*8)/(1024*1024), cfg.L3Ways, cfg.L3Line*8)
	fmt.Fprintf(w, "  Main memory: %d cycles\n", cfg.MemLat)
	fmt.Fprintf(w, "  Coherence:   snoop-based, write-invalidate\n")
	fmt.Fprintf(w, "  Synch array: %d queues x %d entries, %d-cycle access, %d shared ports\n",
		cfg.NumQueues, cfg.QueueCap, cfg.SALatency, cfg.SAPorts)
}

// RenderFig6b writes the benchmark table.
func RenderFig6b(w io.Writer, ws []*workloads.Workload) {
	fmt.Fprintln(w, "Figure 6(b): selected benchmark functions")
	fmt.Fprintf(w, "%-14s %-28s %-18s %7s\n", "benchmark", "function", "suite", "exec.%")
	for _, wl := range ws {
		fmt.Fprintf(w, "%-14s %-28s %-18s %6d%%\n", wl.Name, wl.Function, wl.Suite, wl.ExecPct)
	}
}

func orderedNames(rows []CommRow) []string {
	pos := map[string]int{}
	for i, w := range workloads.All() {
		pos[w.Name] = i
	}
	seen := map[string]bool{}
	var names []string
	for _, r := range rows {
		if !seen[r.Workload] {
			seen[r.Workload] = true
			names = append(names, r.Workload)
		}
	}
	sort.Slice(names, func(i, j int) bool { return pos[names[i]] < pos[names[j]] })
	return names
}
