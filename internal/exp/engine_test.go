package exp

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/coco"
	"repro/internal/interp"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestEngineDeterministicAcrossJobs runs the full figure suite serially
// and with a 4-worker pool and asserts identical CommRow/SpeedupRow output
// — the parallel engine must emit byte-identical figure rows to the serial
// path.
func TestEngineDeterministicAcrossJobs(t *testing.T) {
	ws := workloads.All()
	cfg := sim.DefaultConfig()
	ctx := context.Background()

	serial := NewEngine(EngineOptions{Jobs: 1})
	commSerial, err := serial.CommExperiment(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}
	speedSerial, err := serial.SpeedupExperiment(ctx, cfg, ws)
	if err != nil {
		t.Fatal(err)
	}

	par := NewEngine(EngineOptions{Jobs: 4})
	commPar, err := par.CommExperiment(ctx, ws)
	if err != nil {
		t.Fatal(err)
	}
	speedPar, err := par.SpeedupExperiment(ctx, cfg, ws)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(commSerial, commPar) {
		t.Errorf("CommRows differ between -j 1 and -j 4:\nserial: %+v\nparallel: %+v", commSerial, commPar)
	}
	if !reflect.DeepEqual(speedSerial, speedPar) {
		t.Errorf("SpeedupRows differ between -j 1 and -j 4:\nserial: %+v\nparallel: %+v", speedSerial, speedPar)
	}

	// Rendered figures must be byte-identical too.
	var a, b strings.Builder
	RenderFig1(&a, commSerial, "GREMIO")
	RenderFig7(&a, commSerial)
	RenderFig8(&a, speedSerial)
	RenderFig1(&b, commPar, "GREMIO")
	RenderFig7(&b, commPar)
	RenderFig8(&b, speedPar)
	if a.String() != b.String() {
		t.Errorf("rendered figures differ between -j 1 and -j 4:\n--- serial ---\n%s\n--- parallel ---\n%s", a.String(), b.String())
	}
}

// TestEngineComputesArtifactsOnce asserts the memoization contract: over a
// full experiment run (both figures, both partitioners) the train-input
// profile and the PDG are each computed exactly once per workload — the
// serial harness recomputed them once per (figure, partitioner), i.e. 4×.
func TestEngineComputesArtifactsOnce(t *testing.T) {
	ws := subset(t, "ks", "adpcmdec", "181.mcf")
	cfg := sim.DefaultConfig()
	ctx := context.Background()

	e := NewEngine(EngineOptions{Jobs: 4})
	if _, err := e.CommExperiment(ctx, ws); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SpeedupExperiment(ctx, cfg, ws); err != nil {
		t.Fatal(err)
	}

	stats := e.Stats()
	if got, want := stats.ProfileRuns, int64(len(ws)); got != want {
		t.Errorf("profile runs = %d, want exactly %d (one per workload)", got, want)
	}
	if got, want := stats.PDGBuilds, int64(len(ws)); got != want {
		t.Errorf("PDG builds = %d, want exactly %d (one per workload)", got, want)
	}
}

// TestEnginePipelineSharedAcrossExperiments checks the pipeline cache: the
// comm and speedup experiments must reuse the same *Pipeline value for a
// given (workload, partitioner) pair.
func TestEnginePipelineSharedAcrossExperiments(t *testing.T) {
	ws := subset(t, "ks")
	ctx := context.Background()
	e := NewEngine(EngineOptions{Jobs: 2})
	p1, err := e.Pipeline(ctx, ws[0], Partitioners()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CommExperiment(ctx, ws); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SpeedupExperiment(ctx, sim.DefaultConfig(), ws); err != nil {
		t.Fatal(err)
	}
	p2, err := e.Pipeline(ctx, ws[0], Partitioners()[0])
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("pipeline rebuilt despite cache")
	}
}

// TestEngineCancellation checks that a context cancelled mid-matrix makes
// the engine return promptly with a wrapped cancellation error.
func TestEngineCancellation(t *testing.T) {
	ws := workloads.All()

	// Pre-cancelled: deterministic, must fail immediately.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	e := NewEngine(EngineOptions{Jobs: 2})
	if _, err := e.CommExperiment(pre, ws); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}

	// Cancelled mid-matrix: must return well before a full serial run
	// would. If the matrix happens to finish before the cancel lands the
	// run legitimately succeeds, so only a slow return is a failure.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := NewEngine(EngineOptions{Jobs: 2}).CommExperiment(ctx, ws)
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-matrix: err = %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancelled run took %v, want prompt return", elapsed)
	}
}

// TestEngineBudgetEnforced checks that the configurable budget reaches the
// interpreter: an absurdly small profiling budget must abort with
// ErrStepLimit.
func TestEngineBudgetEnforced(t *testing.T) {
	ws := subset(t, "ks")
	e := NewEngine(EngineOptions{Jobs: 1, Budget: budget.Budget{ProfileSteps: 10}})
	_, err := e.CommExperiment(context.Background(), ws)
	if !errors.Is(err, interp.ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit from the 10-step profile budget", err)
	}
}

// TestAutoDefaultEquivalentOnWorkloads asserts the promoted default: the
// size-based engine selector (no engine flag set) must produce, on the
// full workload suite under both partitioners, exactly the communication
// placements (identical generated threads) the Edmonds–Karp reference
// produces — and therefore identical cut values and dynamic statistics.
func TestAutoDefaultEquivalentOnWorkloads(t *testing.T) {
	ws := workloads.All()
	if testing.Short() {
		ws = subset(t, "ks", "177.mesa", "181.mcf")
	}
	def := coco.DefaultOptions()
	if def.Dinic || def.EdmondsKarp || def.PushRelabel {
		t.Fatal("DefaultOptions no longer selects the auto engine")
	}
	ekOpts := coco.DefaultOptions()
	ekOpts.EdmondsKarp = true
	for _, w := range ws {
		for _, part := range Partitioners() {
			auto, err := Build(w, part, coco.DefaultOptions())
			if err != nil {
				t.Fatalf("%s/%s auto: %v", w.Name, part.Name(), err)
			}
			ek, err := Build(w, part, ekOpts)
			if err != nil {
				t.Fatalf("%s/%s EK: %v", w.Name, part.Name(), err)
			}
			if auto.Coco.NumQueues != ek.Coco.NumQueues {
				t.Errorf("%s/%s: queues auto %d, EK %d", w.Name, part.Name(),
					auto.Coco.NumQueues, ek.Coco.NumQueues)
			}
			for i := range auto.Coco.Threads {
				if got, want := auto.Coco.Threads[i].String(), ek.Coco.Threads[i].String(); got != want {
					t.Errorf("%s/%s: thread %d differs between auto and EK:\n--- auto ---\n%s\n--- EK ---\n%s",
						w.Name, part.Name(), i, got, want)
				}
			}
		}
	}
}
