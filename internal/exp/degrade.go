package exp

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/interp"
	"repro/internal/partition"
	"repro/internal/workloads"
)

// FailureClass classifies where in the pipeline a matrix cell failed; it is
// the structured half of a StageError and what the degradation chain keys
// its decisions on.
type FailureClass string

const (
	// FailPartition: the partitioner rejected the workload.
	FailPartition FailureClass = "partition"
	// FailCompile: MTCG, COCO, or queue allocation failed, or a generated
	// thread failed verification.
	FailCompile FailureClass = "compile"
	// FailExecution: an executor (interpreter or simulator) returned an
	// error — deadlock, step/cycle budget, bad program.
	FailExecution FailureClass = "execution"
	// FailPanic: a pipeline stage panicked; the panic was recovered and
	// converted into a structured error so one poisoned cell cannot abort
	// the whole experiment matrix.
	FailPanic FailureClass = "panic"
)

// StageError is a structured, typed pipeline failure: which cell, which
// stage, which class, and the underlying cause. The degradation chain
// records one per stage it falls back from.
type StageError struct {
	Class       FailureClass
	Stage       string // "pipeline", "measure", "simulate", ...
	Workload    string
	Partitioner string
	Err         error
}

func (e *StageError) Error() string {
	return fmt.Sprintf("exp: %s/%s: %s stage failed (%s): %v",
		e.Workload, e.Partitioner, e.Stage, e.Class, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// stageError wraps err for one cell, classifying it by stage; a nil err
// returns nil and an error that already is a StageError passes through.
func stageError(stage string, w *workloads.Workload, part partition.Partitioner, err error) *StageError {
	if err == nil {
		return nil
	}
	var se *StageError
	if errors.As(err, &se) {
		return se
	}
	cls := FailExecution
	switch stage {
	case "partition":
		cls = FailPartition
	case "pipeline":
		cls = FailCompile
	}
	return &StageError{
		Class: cls, Stage: stage,
		Workload: w.Name, Partitioner: part.Name(), Err: err,
	}
}

// recovered converts a recovered panic value into a FailPanic StageError.
func recovered(stage string, w *workloads.Workload, part partition.Partitioner, v any) *StageError {
	return &StageError{
		Class: FailPanic, Stage: stage,
		Workload: w.Name, Partitioner: part.Name(),
		Err: fmt.Errorf("panic: %v", v),
	}
}

// fallbackFor returns the degradation chain for a partitioner: the other
// real partitioner first, then single-threaded execution (nil sentinel).
// The chain ordering is deliberate: the alternate partitioner preserves the
// experiment's multi-threaded character (only the schedule changes), while
// single-threaded execution is the always-correct last resort — the
// original function run as-is, with zero communication.
func fallbackFor(part partition.Partitioner) []partition.Partitioner {
	var rest []partition.Partitioner
	for _, p := range Partitioners() {
		if p.Name() != part.Name() {
			rest = append(rest, p)
		}
	}
	return append(rest, nil) // nil = single-threaded
}

// FallbackSingle is the CommRow/SpeedupRow Fallback marker for the
// last-resort single-threaded degradation.
const FallbackSingle = "single-threaded"

// isCtxErr reports whether err is (or wraps) a context cancellation — the
// one failure the degradation chain must NOT absorb: a cancelled matrix
// should stop, not fall back to cheaper configurations.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// singleThreadedComm measures the original function single-threaded on the
// reference input: all instructions are computation, communication is zero.
// It is the last resort of the communication experiment's degradation chain
// and is correct by construction (it runs the unpartitioned program).
func (e *Engine) singleThreadedComm(ctx context.Context, w *workloads.Workload) (interp.CommStats, error) {
	in := w.Ref()
	res, err := interp.RunCtx(ctx, w.F, in.Args, in.Mem, e.budget.MeasureSteps)
	if err != nil {
		return interp.CommStats{}, fmt.Errorf("exp: single-threaded fallback for %s: %w", w.Name, err)
	}
	return interp.CommStats{Compute: res.Steps}, nil
}
