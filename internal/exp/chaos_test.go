package exp

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func chaosWorkloads(t *testing.T) []*workloads.Workload {
	t.Helper()
	var ws []*workloads.Workload
	for _, name := range []string{"ks", "adpcmdec"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

// TestCoverageMatrixContract is the detector-coverage matrix of the issue:
// every (workload × partitioner × fault class) cell must meet its class's
// contract — destructive faults detected with a named oracle kind, benign
// faults tolerated, vacuous schedules reported as not-injected. No panics,
// no silently wrong live-outs.
func TestCoverageMatrixContract(t *testing.T) {
	e := NewEngine(EngineOptions{Jobs: 4})
	cells, err := e.CoverageMatrix(context.Background(), chaosWorkloads(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := 2 * 2 * len(fault.Classes())
	if len(cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(cells), wantCells)
	}
	for _, c := range cells {
		id := c.Workload + "/" + c.Partitioner + "/" + string(c.Class)
		if !c.Expected() {
			t.Errorf("%s: outcome %q violates the class contract (injected=%d kinds=%v)",
				id, c.Outcome, c.Injected, c.Kinds)
		}
		switch c.Outcome {
		case ChaosDetected:
			if len(c.Kinds) == 0 {
				t.Errorf("%s: detected but no failure kinds named", id)
			}
			for _, k := range c.Kinds {
				if k == "" {
					t.Errorf("%s: empty failure kind", id)
				}
			}
			if c.Detail == "" {
				t.Errorf("%s: detected but no detail recorded", id)
			}
			if c.Injected == 0 {
				t.Errorf("%s: detected a fault that was never injected", id)
			}
			if c.Schedule == "" {
				t.Errorf("%s: no fault schedule recorded", id)
			}
		case ChaosTolerated:
			if c.Injected == 0 {
				t.Errorf("%s: tolerated with zero injections (should be not-injected)", id)
			}
		case ChaosNotInjected:
			if c.Injected != 0 {
				t.Errorf("%s: not-injected but Injected = %d", id, c.Injected)
			}
		default:
			t.Errorf("%s: unknown outcome %q", id, c.Outcome)
		}
	}
	if !ChaosOK(cells) {
		var buf bytes.Buffer
		RenderChaos(&buf, 1, cells)
		t.Fatalf("coverage matrix has unexpected cells:\n%s", buf.String())
	}
	if got := e.Stats().FaultsInjected; got == 0 {
		t.Error("engine recorded zero injected faults across the matrix")
	}
}

// TestCoverageMatrixDeterministic: same seed ⇒ byte-identical fault
// schedules and rendered report, regardless of worker count.
func TestCoverageMatrixDeterministic(t *testing.T) {
	ws := chaosWorkloads(t)
	render := func(jobs int) (string, []ChaosCell) {
		e := NewEngine(EngineOptions{Jobs: jobs})
		cells, err := e.CoverageMatrix(context.Background(), ws, 7)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		RenderChaos(&buf, 7, cells)
		return buf.String(), cells
	}
	r1, c1 := render(1)
	r4, c4 := render(4)
	if r1 != r4 {
		t.Errorf("renders differ between 1 and 4 workers:\n--- jobs=1\n%s\n--- jobs=4\n%s", r1, r4)
	}
	for i := range c1 {
		if c1[i].Schedule != c4[i].Schedule {
			t.Errorf("cell %d fault schedules differ:\n%s\nvs\n%s", i, c1[i].Schedule, c4[i].Schedule)
		}
	}
	rOther, _ := render(1)
	if rOther != r1 {
		t.Error("two identical runs rendered different reports")
	}
}

func TestChaosCellExpected(t *testing.T) {
	cases := []struct {
		cell ChaosCell
		want bool
	}{
		{ChaosCell{Class: fault.DropProduce, Outcome: ChaosDetected}, true},
		{ChaosCell{Class: fault.DropProduce, Outcome: ChaosTolerated}, false},
		{ChaosCell{Class: fault.StallThread, Outcome: ChaosTolerated}, true},
		{ChaosCell{Class: fault.StallThread, Outcome: ChaosDetected}, false},
		{ChaosCell{Class: fault.ShrinkQueue, Outcome: ChaosTolerated}, true},
		{ChaosCell{Class: fault.SwapQueue, Outcome: ChaosNotInjected}, true},
		{ChaosCell{Class: fault.MisplacePlan, Outcome: ChaosDetected}, true},
		{ChaosCell{Class: fault.MisplacePlan, Outcome: ChaosTolerated}, false},
	}
	for _, tc := range cases {
		if got := tc.cell.Expected(); got != tc.want {
			t.Errorf("Expected(%s, %s) = %v, want %v", tc.cell.Class, tc.cell.Outcome, got, tc.want)
		}
	}
	if ChaosOK([]ChaosCell{cases[0].cell, cases[1].cell}) {
		t.Error("ChaosOK accepted a violated contract")
	}
}

// TestDegradeCommExperiment: with destructive chaos armed and degradation
// on, the comm experiment must complete — every cell falls back to the
// single-threaded result — and the fallbacks are visible in the engine
// stats, the rows, and the obs counters.
func TestDegradeCommExperiment(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewEngine(EngineOptions{
		Jobs:    2,
		Chaos:   &fault.Spec{Class: fault.DropProduce, Seed: 1},
		Degrade: true,
		Obs:     &Obs{Metrics: reg},
	})
	ws := chaosWorkloads(t)
	rows, err := e.CommExperiment(context.Background(), ws)
	if err != nil {
		t.Fatalf("degradation chain did not rescue the experiment: %v", err)
	}
	if len(rows) != 2*len(ws) {
		t.Fatalf("got %d rows, want %d", len(rows), 2*len(ws))
	}
	for _, r := range rows {
		if r.Fallback == "" {
			t.Errorf("%s/%s: drop-produce chaos should force a fallback", r.Workload, r.Partitioner)
			continue
		}
		if r.Fallback == FallbackSingle {
			if r.Naive.Comm() != 0 || r.Naive != r.Coco {
				t.Errorf("%s/%s: single-threaded fallback row has comm stats: %+v",
					r.Workload, r.Partitioner, r.Naive)
			}
		}
		if r.Naive.Total() == 0 {
			t.Errorf("%s/%s: fallback row has no executed instructions", r.Workload, r.Partitioner)
		}
	}
	st := e.Stats()
	if st.Fallbacks == 0 {
		t.Error("Stats().Fallbacks is zero after forced degradation")
	}
	if st.FaultsInjected == 0 {
		t.Error("Stats().FaultsInjected is zero with chaos armed")
	}
	if got := reg.Counter("exp.fallbacks").Value(); got != st.Fallbacks {
		t.Errorf("exp.fallbacks counter = %d, want %d", got, st.Fallbacks)
	}
	if got := reg.Counter("fault.injected").Value(); got != st.FaultsInjected {
		t.Errorf("fault.injected counter = %d, want %d", got, st.FaultsInjected)
	}
}

// TestNoDegradeFailsFast: the same chaos without the degradation chain
// surfaces a typed StageError instead of a silently wrong figure.
func TestNoDegradeFailsFast(t *testing.T) {
	e := NewEngine(EngineOptions{
		Jobs:  1,
		Chaos: &fault.Spec{Class: fault.DropProduce, Seed: 1},
	})
	ws := chaosWorkloads(t)[:1]
	_, err := e.CommExperiment(context.Background(), ws)
	if err == nil {
		t.Fatal("chaos without degradation should fail the experiment")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a StageError", err)
	}
	if se.Class != FailExecution {
		t.Errorf("failure class = %s, want %s", se.Class, FailExecution)
	}
	if se.Workload == "" || se.Partitioner == "" {
		t.Errorf("StageError missing context: %+v", se)
	}
}

// TestDegradeSpeedupExperiment: the cycle-level experiment degrades the
// same way — MT simulation under destructive chaos falls back until the
// single-threaded baseline stands in for both MT configurations.
func TestDegradeSpeedupExperiment(t *testing.T) {
	e := NewEngine(EngineOptions{
		Jobs:    2,
		Chaos:   &fault.Spec{Class: fault.DropProduce, Seed: 1},
		Degrade: true,
	})
	ws := chaosWorkloads(t)[:1]
	rows, err := e.SpeedupExperiment(context.Background(), sim.DefaultConfig(), ws)
	if err != nil {
		t.Fatalf("degradation chain did not rescue the speedup experiment: %v", err)
	}
	for _, r := range rows {
		if r.STCycles <= 0 {
			t.Errorf("%s/%s: missing ST baseline", r.Workload, r.Partitioner)
		}
		if r.Fallback == FallbackSingle {
			if r.NaiveCycles != r.STCycles || r.CocoCycles != r.STCycles {
				t.Errorf("%s/%s: single-threaded fallback should pin MT cycles to ST: %+v",
					r.Workload, r.Partitioner, r)
			}
		}
		if r.NaiveCycles <= 0 || r.CocoCycles <= 0 {
			t.Errorf("%s/%s: non-positive cycles: %+v", r.Workload, r.Partitioner, r)
		}
	}
	if e.Stats().Fallbacks == 0 {
		t.Error("speedup experiment under chaos took no fallbacks")
	}
}

// TestChaosContextCancel: cancellation must abort the matrix, never be
// absorbed by the degradation chain.
func TestChaosContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := NewEngine(EngineOptions{Jobs: 2, Degrade: true, Chaos: &fault.Spec{Class: fault.DropProduce, Seed: 1}})
	if _, err := e.CommExperiment(ctx, chaosWorkloads(t)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled comm experiment returned %v, want context.Canceled", err)
	}
	if _, err := e.CoverageMatrix(ctx, chaosWorkloads(t), 1); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled coverage matrix returned %v, want context.Canceled", err)
	}
}
