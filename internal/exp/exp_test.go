package exp

import (
	"strings"
	"testing"

	"repro/internal/coco"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func subset(t *testing.T, names ...string) []*workloads.Workload {
	t.Helper()
	var ws []*workloads.Workload
	for _, n := range names {
		w, err := workloads.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

func TestBuildPipelineAllCombinations(t *testing.T) {
	ws := subset(t, "ks", "177.mesa")
	for _, w := range ws {
		for _, part := range Partitioners() {
			p, err := Build(w, part, coco.DefaultOptions())
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name, part.Name(), err)
			}
			if p.Naive == nil || p.Coco == nil {
				t.Fatalf("%s/%s: missing programs", w.Name, part.Name())
			}
			naive, err := p.MeasureComm(p.Naive)
			if err != nil {
				t.Fatalf("measure naive: %v", err)
			}
			opt, err := p.MeasureComm(p.Coco)
			if err != nil {
				t.Fatalf("measure coco: %v", err)
			}
			if opt.Comm() > naive.Comm() {
				t.Errorf("%s/%s: COCO increased communication", w.Name, part.Name())
			}
		}
	}
}

func TestCommExperimentRows(t *testing.T) {
	ws := subset(t, "ks")
	rows, err := CommExperiment(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // one per partitioner
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Workload != "ks" {
			t.Errorf("row workload %q", r.Workload)
		}
		if rel := r.RelativeComm(); rel < 0 || rel > 100.5 {
			t.Errorf("%s relative comm %.1f out of range", r.Partitioner, rel)
		}
		if pct := r.CommPct(); pct <= 0 || pct >= 100 {
			t.Errorf("%s comm%% %.1f implausible", r.Partitioner, pct)
		}
	}
}

func TestSpeedupExperimentRows(t *testing.T) {
	ws := subset(t, "435.gromacs")
	rows, err := SpeedupExperiment(sim.DefaultConfig(), ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.STCycles <= 0 || r.NaiveCycles <= 0 || r.CocoCycles <= 0 {
			t.Errorf("%s: non-positive cycles %+v", r.Partitioner, r)
		}
		if s := r.CocoSpeedup(); s < 0.3 || s > 3 {
			t.Errorf("%s: implausible speedup %.2f", r.Partitioner, s)
		}
	}
}

func TestRenderersProduceTables(t *testing.T) {
	ws := subset(t, "ks")
	rows, err := CommExperiment(ws)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderFig1(&sb, rows, "GREMIO")
	if !strings.Contains(sb.String(), "ks") || !strings.Contains(sb.String(), "comm%") {
		t.Errorf("Fig1 output missing expected content:\n%s", sb.String())
	}
	sb.Reset()
	RenderFig7(&sb, rows)
	if !strings.Contains(sb.String(), "GREMIO") || !strings.Contains(sb.String(), "average") {
		t.Errorf("Fig7 output missing expected content:\n%s", sb.String())
	}
	sb.Reset()
	RenderFig6a(&sb, sim.DefaultConfig())
	if !strings.Contains(sb.String(), "1.5MB") {
		t.Errorf("Fig6a output missing L3 size:\n%s", sb.String())
	}
	sb.Reset()
	RenderFig6b(&sb, workloads.All())
	if !strings.Contains(sb.String(), "FindMaxGpAndSwap") {
		t.Errorf("Fig6b output missing function name:\n%s", sb.String())
	}
}

func TestMeans(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); g < 1.99 || g > 2.01 {
		t.Errorf("GeoMean(1,4) = %v, want 2", g)
	}
	if a := ArithMean([]float64{1, 3}); a != 2 {
		t.Errorf("ArithMean(1,3) = %v, want 2", a)
	}
	if GeoMean(nil) != 0 || ArithMean(nil) != 0 {
		t.Error("means of empty series should be 0")
	}
}

func TestPartitionersOrder(t *testing.T) {
	ps := Partitioners()
	if len(ps) != 2 || ps[0].Name() != "GREMIO" || ps[1].Name() != "DSWP" {
		t.Errorf("Partitioners() = %v", []string{ps[0].Name(), ps[1].Name()})
	}
	var _ partition.Partitioner = ps[0]
}
