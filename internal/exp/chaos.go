package exp

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/fault"
	"repro/internal/oracle"
	"repro/internal/par"
	"repro/internal/workloads"
)

// Chaos cell outcomes.
const (
	// ChaosDetected: the oracle reported at least one named failure kind.
	ChaosDetected = "detected"
	// ChaosTolerated: faults were injected and every check passed — the
	// run completed with correct live-outs and intact invariants.
	ChaosTolerated = "tolerated"
	// ChaosNotInjected: the schedule never fired (e.g. swap-queue on a
	// single-queue program); the cell is vacuous.
	ChaosNotInjected = "not-injected"
)

// ChaosCell is one entry of the detector-coverage matrix: what happened
// when one fault class was injected into one (workload, partitioner)
// pipeline and the result pushed through the differential oracle.
type ChaosCell struct {
	Workload    string
	Partitioner string
	Class       fault.Class
	Outcome     string
	// Kinds lists the distinct oracle failure kinds observed, in first-
	// occurrence order (empty unless Outcome is ChaosDetected).
	Kinds []string
	// Injected counts faults injected across the cell's executor runs.
	Injected int64
	// Schedule is the deterministic fault schedule of the cell's first
	// run (or the plan mutation for misplan) — byte-identical across runs
	// with the same seed.
	Schedule string
	// Detail is the first failure line (detected cells only).
	Detail string
}

// Expected reports whether the cell's outcome matches its fault class's
// contract: destructive classes (and the mis-specified plan) must be
// detected, benign classes must be tolerated, and a cell whose schedule
// never fired is vacuously fine.
func (c ChaosCell) Expected() bool {
	if c.Outcome == ChaosNotInjected {
		return true
	}
	if c.Class.Benign() {
		return c.Outcome == ChaosTolerated
	}
	return c.Outcome == ChaosDetected
}

// ChaosOK reports whether every cell met its contract.
func ChaosOK(cells []ChaosCell) bool {
	for _, c := range cells {
		if !c.Expected() {
			return false
		}
	}
	return true
}

// CoverageMatrix runs the detector-coverage matrix — mutation testing for
// the runtime's guardrails: every (workload × partitioner × fault class)
// cell injects one deterministic fault schedule into the cell's naive
// program and pushes it through the differential oracle on the train
// input. The returned cells are in a fixed order (partitioner-major, then
// workload, then fault.Classes() order) and are deterministic at any Jobs
// setting: the same seed yields byte-identical rendered reports.
//
// The returned error reports infrastructure problems (a pipeline that
// won't build, a golden run that won't finish); fault detection results —
// including unexpected outcomes — are in the cells.
func (e *Engine) CoverageMatrix(ctx context.Context, ws []*workloads.Workload, seed int64) ([]ChaosCell, error) {
	type key struct {
		c   cell
		cls fault.Class
	}
	var keys []key
	for _, c := range matrix(ws) {
		for _, cls := range fault.Classes() {
			keys = append(keys, key{c, cls})
		}
	}
	out := make([]ChaosCell, len(keys))
	err := par.Run(ctx, e.jobs, len(keys), func(i int) error {
		cc, err := e.chaosCell(ctx, keys[i].c, keys[i].cls, seed)
		if err != nil {
			return err
		}
		out[i] = *cc
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("exp: coverage matrix: %w", err)
	}
	return out, nil
}

// chaosCell runs one coverage cell through the oracle.
func (e *Engine) chaosCell(ctx context.Context, c cell, cls fault.Class, seed int64) (*ChaosCell, error) {
	out := &ChaosCell{Workload: c.w.Name, Partitioner: c.part.Name(), Class: cls}
	p, err := e.Pipeline(ctx, c.w, c.part)
	if err != nil {
		return nil, err
	}
	train := c.w.Train()
	golden, err := oracle.RunGolden(&oracle.Case{
		Name: c.w.Name, F: c.w.F, Objects: c.w.Objects,
		Args: train.Args, Mem: train.Mem,
	}, e.budget.MeasureSteps)
	if err != nil {
		return nil, fmt.Errorf("exp: chaos golden run of %s: %w", c.w.Name, err)
	}
	opts := oracle.Options{
		// Two schedules keep the cell cheap while still exercising both a
		// fair and an adversarial interleaving against the same schedule.
		Schedules:     []oracle.SchedSpec{{Name: "round-robin"}, {Name: "adversarial"}},
		QueueCaps:     []int{p.QueueCap},
		MaxSteps:      e.budget.MeasureSteps,
		SimCycles:     e.budget.SimCycles,
		SimStallLimit: 50_000,
	}
	rep := &oracle.Report{}
	label := fmt.Sprintf("%s/chaos=%s", c.part.Name(), cls)
	if cls == fault.MisplacePlan {
		mut, desc, ok, err := fault.Misplan(p.Naive, seed)
		if err != nil {
			return nil, fmt.Errorf("exp: chaos misplan on %s/%s: %w", c.w.Name, c.part.Name(), err)
		}
		if !ok {
			out.Outcome = ChaosNotInjected
			return out, nil
		}
		out.Injected, out.Schedule = 1, desc
		oracle.CheckProgram(rep, c.w.Name, golden, label, mut, train.Args, train.Mem, opts)
	} else {
		opts.Inject = &fault.Spec{Class: cls, Seed: seed}
		oracle.CheckProgram(rep, c.w.Name, golden, label, p.Naive, train.Args, train.Mem, opts)
		out.Injected, out.Schedule = rep.Injected, rep.FaultSchedule
	}
	e.noteInjected(out.Injected)
	switch {
	case len(rep.Failures) > 0:
		out.Outcome = ChaosDetected
		seen := map[string]bool{}
		for _, f := range rep.Failures {
			if k := string(f.Kind); !seen[k] {
				seen[k] = true
				out.Kinds = append(out.Kinds, k)
			}
		}
		out.Detail = rep.Failures[0].String()
	case out.Injected == 0:
		out.Outcome = ChaosNotInjected
	default:
		out.Outcome = ChaosTolerated
	}
	return out, nil
}

// RenderChaos writes the coverage matrix as a deterministic table: same
// cells ⇒ same bytes. Unexpected cells are flagged with "!!".
func RenderChaos(w io.Writer, seed int64, cells []ChaosCell) {
	fmt.Fprintf(w, "Detector-coverage matrix (chaos seed %d)\n", seed)
	fmt.Fprintf(w, "%-12s %-8s %-14s %-13s %10s  %s\n",
		"workload", "sched", "fault", "outcome", "injected", "kinds")
	expected := 0
	for _, c := range cells {
		mark := ""
		if !c.Expected() {
			mark = " !!"
		} else {
			expected++
		}
		fmt.Fprintf(w, "%-12s %-8s %-14s %-13s %10d  %s%s\n",
			c.Workload, c.Partitioner, c.Class, c.Outcome, c.Injected,
			strings.Join(c.Kinds, ","), mark)
	}
	fmt.Fprintf(w, "%d/%d cells as expected\n", expected, len(cells))
}
