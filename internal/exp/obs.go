package exp

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Obs bundles the observability sinks threaded through the experiment
// harness. Both sinks are optional and a nil *Obs records nothing, so the
// pipeline carries no nil checks at record sites.
//
// The trace layout is deterministic: each workload is one trace process
// (pid = its position in workloads.All(), so traces from different runs
// line up), with the partitioner-independent analysis phases on tid 0 and
// each partitioner's pipeline phases on their own tid. Phase spans are
// self-clocked in abstract work units (interpreter steps, dependence-graph
// size, generated instructions, simulator cycles), so a span's width in
// the viewer is proportional to the work the phase represents and the
// whole file is byte-identical across runs and worker-pool sizes.
type Obs struct {
	// Trace receives phase spans (and, with Timeline, detailed simulator
	// and interpreter timelines).
	Trace *obs.Trace
	// Metrics receives per-phase timers/gauges under "exp.<workload>" and
	// per-run interpreter/simulator counters under
	// "exp.<workload>.<partitioner>.<naive|coco>.<interp|sim>".
	Metrics *obs.Registry
	// Timeline additionally records per-cycle simulator lanes (coalesced
	// issue-stall spans per core, queue-occupancy counters) and
	// interpreter queue-occupancy tracks. These reach hundreds of
	// thousands of events on the reference inputs — the trace's event
	// limit bounds them (drops are counted) — so the detailed lanes are
	// opt-in while phase spans stay small enough to golden-test.
	Timeline bool
}

const tidAnalysis = 0

// partTid maps a partitioner to its stable thread lane within a
// workload's trace process.
func partTid(part string) int {
	switch part {
	case "GREMIO":
		return 1
	case "DSWP":
		return 2
	}
	return 3
}

var (
	pidOnce sync.Once
	pids    map[string]int
)

// workloadPid returns the deterministic trace process ID for a workload:
// its 1-based position in workloads.All(). Workloads outside the standard
// set (hand-built test kernels) share one parking pid.
func workloadPid(name string) int {
	pidOnce.Do(func() {
		pids = map[string]int{}
		for i, w := range workloads.All() {
			pids[w.Name] = i + 1
		}
	})
	if p, ok := pids[name]; ok {
		return p
	}
	return len(pids) + 1
}

// namedLane returns the (workload pid, tid) lane with its process and
// thread labels registered.
func (o *Obs) namedLane(w string, tid int, name string) *obs.Lane {
	if o == nil || o.Trace == nil {
		return nil
	}
	pid := workloadPid(w)
	o.Trace.ProcessName(pid, w)
	o.Trace.ThreadName(pid, tid, name)
	return o.Trace.Lane(pid, tid)
}

// analysisLane is the workload's partitioner-independent lane (profiling,
// PDG construction, the single-threaded simulation baseline).
func (o *Obs) analysisLane(w string) *obs.Lane {
	return o.namedLane(w, tidAnalysis, "analysis")
}

// partLane is the (workload, partitioner) pipeline lane.
func (o *Obs) partLane(w, part string) *obs.Lane {
	return o.namedLane(w, partTid(part), part)
}

// scope is the workload's metric scope, "exp.<w>".
func (o *Obs) scope(w string) *obs.Scope {
	if o == nil {
		return nil
	}
	return o.Metrics.Scope("exp").Child(w)
}

// partScope is the (workload, partitioner) metric scope, "exp.<w>.<part>".
func (o *Obs) partScope(w, part string) *obs.Scope {
	return o.scope(w).Child(part)
}

// Detailed timelines get their own trace processes so the per-cycle lanes
// don't drown the phase spans: one pid per (workload, partitioner,
// program) simulation and one per interpreter run, derived from the same
// deterministic workload index. partTid is 0 for the single-threaded
// baseline, progBit 0 for naive and 1 for COCO.
func timelinePid(base int, w string, partTid, progBit int) int {
	return base + (workloadPid(w)-1)*8 + partTid*2 + progBit
}

const (
	simPidBase    = 1000
	interpPidBase = 2000
)

// simObserver builds the simulator observer for one measured program, or
// nil when nothing would be recorded.
func (o *Obs) simObserver(w, part, label string, progBit int) *sim.Observer {
	if o == nil {
		return nil
	}
	ob := &sim.Observer{}
	if part == "" {
		ob.Metrics = o.scope(w).Child(label + ".sim")
	} else {
		ob.Metrics = o.partScope(w, part).Child(label + ".sim")
	}
	if o.Trace != nil && o.Timeline {
		tid := 0
		if part != "" {
			tid = partTid(part)
		}
		ob.Trace = o.Trace
		ob.Pid = timelinePid(simPidBase, w, tid, progBit)
		name := w + "/" + label + " sim"
		if part != "" {
			name = w + "/" + part + "/" + label + " sim"
		}
		o.Trace.ProcessName(ob.Pid, name)
	}
	if ob.Metrics == nil && ob.Trace == nil {
		return nil
	}
	return ob
}

// interpLane returns the queue-occupancy lane for one interpreter run
// (Timeline mode only).
func (o *Obs) interpLane(w, part, label string, progBit int) *obs.Lane {
	if o == nil || o.Trace == nil || !o.Timeline {
		return nil
	}
	pid := timelinePid(interpPidBase, w, partTid(part), progBit)
	o.Trace.ProcessName(pid, w+"/"+part+"/"+label+" interp")
	o.Trace.ThreadName(pid, 0, "queues")
	return o.Trace.Lane(pid, 0)
}
