package exp

import (
	"context"
	"testing"

	"repro/internal/budget"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func budgetWith(profileSteps int64) budget.Budget {
	b := budget.Experiments()
	b.ProfileSteps = profileSteps
	return b
}

// TestEngineKeysAreContentAddressed pins the memo-key staleness fix: two
// workloads sharing a Name but differing in content (here: swapped train
// and reference inputs) must not collide in the engine's caches. Before
// the fix, artifacts and single-threaded baselines were keyed by bare
// workload name, so the second workload was served the first one's
// artifacts.
func TestEngineKeysAreContentAddressed(t *testing.T) {
	ctx := context.Background()
	cfg := sim.DefaultConfig()

	a := workloads.KS()
	b := workloads.KS()
	// Same name, same IR — different inputs. The train input drives the
	// profile artifact; the reference input drives measurements.
	b.Train, b.Ref = a.Ref, a.Train

	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("workload fingerprints ignore inputs")
	}
	if a.Fingerprint() != workloads.KS().Fingerprint() {
		t.Fatal("workload fingerprint is not deterministic")
	}

	e := NewEngine(EngineOptions{Jobs: 1})
	artA, err := e.Artifact(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	artB, err := e.Artifact(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	if artA == artB {
		t.Fatal("same-named workloads with different inputs share one artifact slot")
	}
	if st := e.Stats(); st.ProfileRuns != 2 {
		t.Fatalf("ProfileRuns = %d, want 2 (one per distinct content)", st.ProfileRuns)
	}

	cyclesA, err := e.SingleThreadedCycles(ctx, cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	cyclesB, err := e.SingleThreadedCycles(ctx, cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	if cyclesA == cyclesB {
		t.Fatalf("single-threaded baselines collide (%d cycles) despite different reference inputs", cyclesA)
	}

	// The memoization itself still works: asking again recomputes nothing.
	if _, err := e.Artifact(ctx, a); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.ProfileRuns != 2 {
		t.Fatalf("ProfileRuns after re-ask = %d, want 2", st.ProfileRuns)
	}
}

// TestEngineOptionsChangeKeys asserts the option fingerprint differs when
// budgets or COCO options differ — the scheme the persistent cache reuses.
func TestEngineOptionsChangeKeys(t *testing.T) {
	base := NewEngine(EngineOptions{})
	tighter := NewEngine(EngineOptions{Budget: budgetWith(1000)})
	if base.optsKey == tighter.optsKey {
		t.Fatal("budget not folded into the engine options key")
	}
}
