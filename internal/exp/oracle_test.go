package exp

import (
	"context"
	"testing"

	"repro/internal/workloads"
)

// TestOracleExperimentCleanOnWorkloads is the correctness gate behind the
// perf experiments: every workload × partitioner cell, under both
// communication plans, the full scheduling-policy matrix, and both queue
// depths, must agree with the single-threaded golden run and the simulator.
func TestOracleExperimentCleanOnWorkloads(t *testing.T) {
	ws := workloads.All()
	if testing.Short() {
		ws = subset(t, "ks", "adpcmdec", "181.mcf")
	}
	e := NewEngine(EngineOptions{})
	rows, err := e.OracleExperiment(context.Background(), ws, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rows), len(ws)*len(Partitioners()); got != want {
		t.Fatalf("got %d rows, want %d", got, want)
	}
	for _, r := range rows {
		if r.Programs != 2 {
			t.Errorf("%s/%s: checked %d programs, want 2 (naive and COCO)",
				r.Workload, r.Partitioner, r.Programs)
		}
		if r.Runs == 0 {
			t.Errorf("%s/%s: no executor runs", r.Workload, r.Partitioner)
		}
		for _, f := range r.Failures {
			t.Errorf("%s/%s: %v", r.Workload, r.Partitioner, f)
		}
	}
}
