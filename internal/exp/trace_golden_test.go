package exp

import (
	"bytes"
	"context"
	"flag"
	"os"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/obstest"
	"repro/internal/sim"
	"repro/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite the observability golden files")

// runObservedKS runs the ks workload through the full engine (comm +
// speedup experiments) with observability attached and returns the
// serialized trace and metrics.
func runObservedKS(t *testing.T, jobs int) (traceJSON, metricsJSON []byte) {
	t.Helper()
	w, err := workloads.ByName("ks")
	if err != nil {
		t.Fatal(err)
	}
	o := &Obs{Trace: obs.NewTrace(), Metrics: obs.NewRegistry()}
	e := NewEngine(EngineOptions{Jobs: jobs, Obs: o})
	ctx := context.Background()
	ws := []*workloads.Workload{w}
	if _, err := e.CommExperiment(ctx, ws); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SpeedupExperiment(ctx, sim.DefaultConfig(), ws); err != nil {
		t.Fatal(err)
	}
	var tb, mb bytes.Buffer
	if err := o.Trace.WriteJSON(&tb); err != nil {
		t.Fatal(err)
	}
	if o.Trace.Dropped() != 0 {
		t.Fatalf("phase-level trace dropped %d events; it must fit the limit", o.Trace.Dropped())
	}
	if err := o.Metrics.WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), mb.Bytes()
}

// TestObservabilityGoldenKS pins the exact bytes of the ks workload's
// trace and metrics files: recorded values are interpreter steps and
// simulator cycles, never wall-clock, so the files are fully
// deterministic and any diff means observed behavior changed. Regenerate
// deliberately with:
//
//	go test ./internal/exp -run ObservabilityGolden -update
func TestObservabilityGoldenKS(t *testing.T) {
	traceJSON, metricsJSON := runObservedKS(t, 1)
	obstest.CheckTraceShape(t, traceJSON)
	for _, g := range []struct {
		path string
		got  []byte
	}{
		{"testdata/trace_ks.golden.json", traceJSON},
		{"testdata/metrics_ks.golden.json", metricsJSON},
	} {
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(g.path, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(g.path)
		if err != nil {
			t.Fatalf("%v (run `go test ./internal/exp -run ObservabilityGolden -update`)", err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s: output differs from golden (%d bytes vs %d); if the change is intended, rerun with -update",
				g.path, len(g.got), len(want))
		}
	}
}

// TestObservabilityDeterministicAcrossJobs: the worker-pool size must not
// leak into the observability artifacts.
func TestObservabilityDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the ks pipeline twice")
	}
	t1, m1 := runObservedKS(t, 1)
	t4, m4 := runObservedKS(t, 4)
	if !bytes.Equal(t1, t4) {
		t.Error("trace bytes differ between jobs=1 and jobs=4")
	}
	if !bytes.Equal(m1, m4) {
		t.Error("metrics bytes differ between jobs=1 and jobs=4")
	}
}
