// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 4) — the machine table (Fig.
// 6(a)), the benchmark table (Fig. 6(b)), the dynamic-instruction breakdown
// (Fig. 1), the communication reduction from COCO (Fig. 7), and the
// speedups over single-threaded execution (Fig. 8) — using the paper's
// methodology: profile on the train input, measure on the reference input.
//
// Two entry points exist: the serial convenience functions
// (CommExperiment, SpeedupExperiment, Build) and the concurrent,
// cache-aware Engine, which fans the workload × partitioner matrix out
// over a worker pool and memoizes per-workload analysis artifacts so the
// train-input profile and the PDG are computed exactly once per workload.
package exp

import (
	"context"
	"fmt"

	"repro/internal/budget"
	"repro/internal/coco"
	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/pdg"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Artifact holds the per-workload analysis results every pipeline needs:
// the train-input edge profile and the PDG. Both are read-only after
// construction — the interpreter, partitioners, COCO and MTCG only consult
// them — so one Artifact is safely shared by concurrent pipeline builds.
type Artifact struct {
	Profile *ir.Profile
	Graph   *pdg.Graph
}

// BuildArtifact profiles w on its train input and builds its PDG.
func BuildArtifact(ctx context.Context, w *workloads.Workload, b budget.Budget) (*Artifact, error) {
	return buildArtifact(ctx, w, b, nil)
}

func buildArtifact(ctx context.Context, w *workloads.Workload, b budget.Budget, o *Obs) (*Artifact, error) {
	b = b.OrElse(budget.Experiments())
	train := w.Train()
	prof, err := interp.RunCtx(ctx, w.F, train.Args, train.Mem, b.ProfileSteps)
	if err != nil {
		return nil, fmt.Errorf("exp: profiling %s: %w", w.Name, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("exp: %s: %w", w.Name, err)
	}
	lane := o.analysisLane(w.Name)
	s := o.scope(w.Name)
	lane.Span("profile", "pipeline", prof.Steps, obs.A("steps", prof.Steps))
	s.Timer("profile").Observe(prof.Steps)

	g := pdg.Build(w.F, w.Objects)
	nodes, arcs := int64(w.F.NumInstrs()), int64(g.NumArcs())
	lane.Span("pdg-build", "pipeline", nodes+arcs, obs.A("arcs", arcs), obs.A("nodes", nodes))
	s.Gauge("pdg.nodes").Set(nodes)
	s.Gauge("pdg.arcs").Set(arcs)
	return &Artifact{Profile: prof.Profile, Graph: g}, nil
}

// Pipeline holds everything produced for one (workload, partitioner) pair:
// the partition, the naive-MTCG program, and the COCO-optimized program.
type Pipeline struct {
	W      *workloads.Workload
	Part   partition.Partitioner
	Assign map[*ir.Instr]int
	Graph  *pdg.Graph
	// Profile is the train-input edge profile used for COCO's costs.
	Profile *ir.Profile
	Naive   *mtcg.Program
	Coco    *mtcg.Program
	// QueueCap is the synchronization-array queue depth the programs are
	// executed and simulated with: the paper's 32 entries for DSWP and
	// single-entry queues otherwise (partition.QueueCapFor).
	QueueCap int

	budget budget.Budget
	o      *Obs
}

// progLabel names a measured program and gives its stable trace-pid bit:
// COCO's program is "coco"/1, everything else "naive"/0.
func (p *Pipeline) progLabel(prog *mtcg.Program) (string, int) {
	if prog != nil && prog == p.Coco {
		return "coco", 1
	}
	return "naive", 0
}

// progInstrs is the static size of a generated program across threads.
func progInstrs(prog *mtcg.Program) int64 {
	var n int64
	for _, f := range prog.Threads {
		n += int64(f.NumInstrs())
	}
	return n
}

// Build runs the full compilation pipeline for a workload and partitioner:
// train-input profiling, PDG construction, partitioning, naive MTCG, COCO,
// and queue allocation on both programs.
func Build(w *workloads.Workload, part partition.Partitioner, opts coco.Options) (*Pipeline, error) {
	return BuildObserved(w, part, opts, nil)
}

// BuildObserved is Build with every phase recorded into o's sinks (a nil
// o records nothing and is exactly Build).
func BuildObserved(w *workloads.Workload, part partition.Partitioner, opts coco.Options, o *Obs) (*Pipeline, error) {
	ctx := context.Background()
	art, err := buildArtifact(ctx, w, budget.Experiments(), o)
	if err != nil {
		return nil, err
	}
	return buildFromArtifact(ctx, w, part, opts, art, budget.Experiments(), o)
}

// BuildFromArtifact runs the partitioner-dependent tail of the pipeline —
// partitioning, naive MTCG, COCO, and queue allocation — over a
// precomputed (and possibly shared) artifact. It never mutates art.
func BuildFromArtifact(ctx context.Context, w *workloads.Workload, part partition.Partitioner,
	opts coco.Options, art *Artifact, b budget.Budget) (*Pipeline, error) {
	return buildFromArtifact(ctx, w, part, opts, art, b, nil)
}

func buildFromArtifact(ctx context.Context, w *workloads.Workload, part partition.Partitioner,
	opts coco.Options, art *Artifact, b budget.Budget, o *Obs) (*Pipeline, error) {

	g, prof := art.Graph, art.Profile
	assign, err := part.Partition(w.F, g, prof, 2)
	if err != nil {
		return nil, fmt.Errorf("exp: partitioning %s with %s: %w", w.Name, part.Name(), err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("exp: %s/%s: %w", w.Name, part.Name(), err)
	}
	lane := o.partLane(w.Name, part.Name())
	sp := o.partScope(w.Name, part.Name())
	lane.Span("partition", "pipeline", int64(w.F.NumInstrs()), obs.A("threads", 2))
	sp.Timer("partition").Observe(int64(w.F.NumInstrs()))

	naive, err := mtcg.Generate(mtcg.NaivePlan(w.F, g, assign, 2))
	if err != nil {
		return nil, fmt.Errorf("exp: naive MTCG for %s/%s: %w", w.Name, part.Name(), err)
	}
	lane.Span("mtcg-naive", "pipeline", progInstrs(naive),
		obs.A("instrs", progInstrs(naive)), obs.A("queues", int64(naive.NumQueues)))
	na := queue.Allocate(naive)
	lane.Span("queue-alloc-naive", "pipeline", int64(na.Before),
		obs.A("after", int64(na.After)), obs.A("before", int64(na.Before)))
	sp.Gauge("naive.instrs").Set(progInstrs(naive))
	sp.Gauge("naive.queues").Set(int64(naive.NumQueues))

	plan, err := coco.Plan(w.F, g, assign, 2, prof, opts)
	if err != nil {
		return nil, fmt.Errorf("exp: COCO for %s/%s: %w", w.Name, part.Name(), err)
	}
	lane.Span("coco-plan", "pipeline", int64(w.F.NumInstrs()))
	opt, err := mtcg.Generate(plan)
	if err != nil {
		return nil, fmt.Errorf("exp: optimized MTCG for %s/%s: %w", w.Name, part.Name(), err)
	}
	lane.Span("mtcg-coco", "pipeline", progInstrs(opt),
		obs.A("instrs", progInstrs(opt)), obs.A("queues", int64(opt.NumQueues)))
	ca := queue.Allocate(opt)
	lane.Span("queue-alloc-coco", "pipeline", int64(ca.Before),
		obs.A("after", int64(ca.After)), obs.A("before", int64(ca.Before)))
	sp.Gauge("coco.instrs").Set(progInstrs(opt))
	sp.Gauge("coco.queues").Set(int64(opt.NumQueues))

	return &Pipeline{
		W: w, Part: part, Assign: assign, Graph: g,
		Profile: prof, Naive: naive, Coco: opt,
		QueueCap: partition.QueueCapFor(part),
		budget:   b.OrElse(budget.Experiments()),
		o:        o,
	}, nil
}

// MeasureComm executes a generated program on the reference input with the
// counting interpreter and returns its dynamic instruction statistics.
func (p *Pipeline) MeasureComm(prog *mtcg.Program) (interp.CommStats, error) {
	return p.measureComm(context.Background(), prog)
}

func (p *Pipeline) measureComm(ctx context.Context, prog *mtcg.Program) (interp.CommStats, error) {
	st, _, err := p.measureCommInjected(ctx, prog, nil)
	return st, err
}

// measureCommInjected is measureComm with an optional armed fault spec: a
// fresh injector is built per run (same spec ⇒ same deterministic fault
// schedule) and the number of faults actually injected is returned even
// when the run fails — a chaos run that dies of an injected deadlock still
// reports its injections.
func (p *Pipeline) measureCommInjected(ctx context.Context, prog *mtcg.Program, spec *fault.Spec) (interp.CommStats, int64, error) {
	label, bit := p.progLabel(prog)
	in := p.W.Ref()
	cfg := interp.MTConfig{
		Threads:   prog.Threads,
		NumQueues: prog.NumQueues,
		QueueCap:  p.QueueCap,
		Assign:    p.Assign,
		Args:      in.Args,
		Mem:       in.Mem,
		MaxSteps:  p.measureBudget().MeasureSteps,
		Ctx:       ctx,
	}
	if spec != nil {
		cfg.Inject = spec.New()
	}
	if p.o != nil {
		cfg.Metrics = p.o.partScope(p.W.Name, p.Part.Name()).Child(label + ".interp")
		cfg.Trace = p.o.interpLane(p.W.Name, p.Part.Name(), label, bit)
	}
	mt, err := interp.RunMT(cfg)
	if err != nil {
		return interp.CommStats{}, cfg.Inject.Count(),
			fmt.Errorf("exp: measuring %s/%s: %w", p.W.Name, p.Part.Name(), err)
	}
	p.o.partLane(p.W.Name, p.Part.Name()).Span("measure-"+label, "measure",
		mt.Steps, obs.A("steps", mt.Steps))
	return mt.Stats, cfg.Inject.Count(), nil
}

// Machine returns cfg adjusted to the pipeline's partitioner: the
// synchronization-array queue depth becomes the partitioner's (32 entries
// for DSWP, single-entry otherwise). The experiment harness simulates
// multi-threaded programs on this machine; pass cfg directly to
// MeasureCycles to sweep machine parameters instead.
func (p *Pipeline) Machine(cfg sim.Config) sim.Config {
	if p.QueueCap > 0 {
		cfg.QueueCap = p.QueueCap
	}
	return cfg
}

// MeasureCycles simulates a generated program on the reference input and
// returns the cycle count. The machine is taken as given; callers modeling
// the paper's per-partitioner queue depths wrap cfg with Machine first.
func (p *Pipeline) MeasureCycles(cfg sim.Config, prog *mtcg.Program) (int64, error) {
	cycles, _, err := p.measureCyclesInjected(cfg, prog, nil)
	return cycles, err
}

// measureCyclesInjected is MeasureCycles with an optional armed fault spec
// (fresh deterministic injector per run); it also returns the number of
// faults injected, even when the simulation fails.
func (p *Pipeline) measureCyclesInjected(cfg sim.Config, prog *mtcg.Program, spec *fault.Spec) (int64, int64, error) {
	label, bit := p.progLabel(prog)
	in := p.W.Ref()
	ob := p.o.simObserver(p.W.Name, p.Part.Name(), label, bit)
	var inj *fault.Injector
	if spec != nil {
		inj = spec.New()
	}
	res, err := sim.RunInjected(cfg, prog.Threads, in.Args, in.Mem, p.measureBudget().SimCycles, ob, inj)
	if err != nil {
		return 0, inj.Count(), fmt.Errorf("exp: simulating %s/%s: %w", p.W.Name, p.Part.Name(), err)
	}
	p.o.partLane(p.W.Name, p.Part.Name()).Span("simulate-"+label, "measure",
		res.Cycles, obs.A("cycles", res.Cycles))
	return res.Cycles, inj.Count(), nil
}

// measureBudget returns the pipeline's budget, defaulting for pipelines
// constructed by hand (a zero Pipeline literal in tests).
func (p *Pipeline) measureBudget() budget.Budget {
	return p.budget.OrElse(budget.Experiments())
}

// SingleThreadedCycles simulates the original function on one core.
func SingleThreadedCycles(cfg sim.Config, w *workloads.Workload) (int64, error) {
	return singleThreadedCycles(cfg, w, budget.Experiments(), nil)
}

// SingleThreadedCyclesObserved is SingleThreadedCycles with the baseline
// simulation recorded into o's sinks.
func SingleThreadedCyclesObserved(cfg sim.Config, w *workloads.Workload, o *Obs) (int64, error) {
	return singleThreadedCycles(cfg, w, budget.Experiments(), o)
}

func singleThreadedCycles(cfg sim.Config, w *workloads.Workload, b budget.Budget, o *Obs) (int64, error) {
	in := w.Ref()
	ob := o.simObserver(w.Name, "", "st", 0)
	res, err := sim.RunObserved(cfg, []*ir.Function{w.F}, in.Args, in.Mem,
		b.OrElse(budget.Experiments()).SimCycles, ob)
	if err != nil {
		return 0, fmt.Errorf("exp: single-threaded %s: %w", w.Name, err)
	}
	o.analysisLane(w.Name).Span("simulate-st", "measure", res.Cycles, obs.A("cycles", res.Cycles))
	return res.Cycles, nil
}

// Partitioners returns the two GMT schedulers of the evaluation.
func Partitioners() []partition.Partitioner {
	return []partition.Partitioner{partition.GREMIO{}, partition.DSWP{}}
}
