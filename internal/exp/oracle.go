package exp

import (
	"context"
	"fmt"

	"repro/internal/budget"
	"repro/internal/oracle"
	"repro/internal/par"
	"repro/internal/workloads"
)

// OracleRow summarizes the differential-oracle pass over one matrix cell
// (workload × partitioner, both communication plans).
type OracleRow struct {
	Workload    string
	Partitioner string
	// Programs and Runs count the generated programs checked and the
	// executor runs compared.
	Programs int
	Runs     int
	// Failures holds every divergence found (empty on a clean pass).
	Failures []oracle.Failure
}

// OracleExperiment cross-checks the whole workload × partitioner matrix
// with the differential-execution oracle: each cell's naive and COCO
// programs run on the train input under every scheduling policy, at the
// partitioner's queue depth and at single-entry depth, against the
// single-threaded golden run and the cycle-level simulator. It is the
// correctness gate the perf experiments stand on; a clean pass means no
// interleaving, queue depth, or executor disagrees on any workload.
func (e *Engine) OracleExperiment(ctx context.Context, ws []*workloads.Workload, schedSeed int64) ([]OracleRow, error) {
	cells := matrix(ws)
	rows := make([]OracleRow, len(cells))
	err := par.Run(ctx, e.jobs, len(cells), func(i int) error {
		c := cells[i]
		p, err := e.Pipeline(ctx, c.w, c.part)
		if err != nil {
			return err
		}
		row, err := oraclePass(c.w, p, schedSeed, e.budget)
		if err != nil {
			return fmt.Errorf("exp: oracle on %s/%s: %w", c.w.Name, c.part.Name(), err)
		}
		rows[i] = *row
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("exp: oracle experiment: %w", err)
	}
	return rows, nil
}

// oraclePass checks one pipeline's two programs on the train input.
func oraclePass(w *workloads.Workload, p *Pipeline, schedSeed int64, b budget.Budget) (*OracleRow, error) {
	b = b.OrElse(budget.Experiments())
	train := w.Train()
	golden, err := oracle.RunGolden(&oracle.Case{
		Name: w.Name, F: w.F, Objects: w.Objects,
		Args: train.Args, Mem: train.Mem,
	}, b.MeasureSteps)
	if err != nil {
		return nil, fmt.Errorf("golden run: %w", err)
	}
	caps := []int{p.QueueCap}
	if p.QueueCap != 1 {
		caps = append(caps, 1)
	}
	opts := oracle.Options{
		Schedules: oracle.DefaultSchedules(schedSeed),
		QueueCaps: caps,
		MaxSteps:  b.MeasureSteps,
		SimCycles: b.SimCycles,
	}
	rep := &oracle.Report{}
	oracle.CheckProgram(rep, w.Name, golden, p.Part.Name()+"/naive", p.Naive, train.Args, train.Mem, opts)
	oracle.CheckProgram(rep, w.Name, golden, p.Part.Name()+"/coco", p.Coco, train.Args, train.Mem, opts)
	return &OracleRow{
		Workload: w.Name, Partitioner: p.Part.Name(),
		Programs: rep.Programs, Runs: rep.Runs, Failures: rep.Failures,
	}, nil
}
