package exp

import (
	"testing"

	"repro/internal/coco"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestMaxFlowEnginesAgreeOnWorkloadMatrix runs the full workload matrix
// through the pipeline once per max-flow engine selection (Edmonds–Karp,
// Dinic, push-relabel, and the default size-based auto selector) and
// demands identical end-to-end cycle counts. Placement differences — the
// only way an engine could alter anything downstream — would surface as a
// cycle divergence here; the per-placement equivalence is pinned directly
// in internal/coco and internal/mincut.
func TestMaxFlowEnginesAgreeOnWorkloadMatrix(t *testing.T) {
	ek := coco.DefaultOptions()
	ek.EdmondsKarp = true
	dn := coco.DefaultOptions()
	dn.Dinic = true
	pr := coco.DefaultOptions()
	pr.PushRelabel = true
	variants := []struct {
		name string
		opts coco.Options
	}{
		{"edmonds-karp", ek},
		{"dinic", dn},
		{"push-relabel", pr},
		{"auto", coco.DefaultOptions()},
	}

	cfg := sim.DefaultConfig()
	for _, w := range workloads.All() {
		var ref int64
		for i, v := range variants {
			p, err := Build(w, partition.GREMIO{}, v.opts)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", w.Name, v.name, err)
			}
			cycles, err := p.MeasureCycles(p.Machine(cfg), p.Coco)
			if err != nil {
				t.Fatalf("%s/%s: measure: %v", w.Name, v.name, err)
			}
			if i == 0 {
				ref = cycles
			} else if cycles != ref {
				t.Errorf("%s: engine %s measured %d cycles, edmonds-karp %d",
					w.Name, v.name, cycles, ref)
			}
		}
	}
}
