package exp

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/coco"
	"repro/internal/fault"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// EngineOptions configures an Engine.
type EngineOptions struct {
	// Jobs is the worker-pool size for experiment matrices; <= 0 means
	// runtime.GOMAXPROCS(0). Jobs == 1 restores the serial path.
	Jobs int
	// Budget bounds interpreter and simulator runs; zero fields default
	// to budget.Experiments(), the paper's limits.
	Budget budget.Budget
	// Coco, when non-nil, overrides coco.DefaultOptions() for every
	// pipeline the engine builds (nil rather than a zero Options because
	// the zero value — everything off — is a meaningful ablation).
	Coco *coco.Options
	// Obs, when non-nil, records every pipeline phase, interpreter run,
	// and simulation into its trace/metrics sinks. Memoization means each
	// phase is recorded exactly once per engine regardless of Jobs, so
	// the written trace is identical at any worker-pool size.
	Obs *Obs
	// Chaos, when non-nil, arms deterministic fault injection on every
	// measurement run (a fresh injector per run, so the fault schedule is
	// identical at any Jobs setting). Injections are counted in Stats and
	// the "fault.injected" metrics counter.
	Chaos *fault.Spec
	// Degrade enables the graceful-degradation chain: a matrix cell whose
	// pipeline or measurement fails falls back requested partitioner →
	// alternate partitioner → single-threaded execution instead of
	// aborting the whole experiment. Fallbacks are recorded in the row's
	// Fallback field, in Stats, and in the "exp.fallbacks" counter.
	// Context cancellation is never absorbed.
	Degrade bool
}

// Engine runs the workload × partitioner experiment matrix concurrently,
// memoizing per-workload analysis artifacts. The train-input profile and
// the PDG are computed exactly once per workload, and each (workload,
// partitioner) pipeline exactly once per engine, shared between the
// communication and speedup experiments; the serial harness recomputed
// both for every figure. All caches are filled under sync.Once, so any
// number of concurrent experiments observe exactly one build.
//
// Results are deterministic: matrix cells are identified by their index in
// the serial iteration order and written to preallocated slots, so an
// engine at any Jobs setting emits byte-identical rows to the serial path.
//
// Cache slots record the first outcome permanently (sync.Once), including
// a cancellation that landed mid-build — discard an engine whose run was
// cancelled rather than reusing it.
type Engine struct {
	jobs    int
	budget  budget.Budget
	opts    coco.Options
	optsKey string
	obs     *Obs
	chaos   *fault.Spec
	degrade bool

	profileRuns    atomic.Int64
	pdgBuilds      atomic.Int64
	fallbacks      atomic.Int64
	faultsInjected atomic.Int64

	mu        sync.Mutex
	artifacts map[string]*memo[*Artifact]
	pipelines map[string]*memo[*Pipeline]
	stCycles  map[stKey]*memo[int64]
}

// memo is a once-filled cache slot.
type memo[T any] struct {
	once sync.Once
	val  T
	err  error
}

// do fills the slot on first use and returns the cached result afterwards.
func (m *memo[T]) do(f func() (T, error)) (T, error) {
	m.once.Do(func() { m.val, m.err = f() })
	return m.val, m.err
}

type stKey struct {
	workload string // content fingerprint, not name
	cfg      sim.Config
}

// optionsKey fingerprints every engine-level option that affects the
// memoized artifacts: the budgets bound profiling/measurement/simulation
// and the COCO options change generated programs. It is folded into every
// cache key so the keying scheme stays correct if two engines ever share
// a store — the same scheme internal/cache uses for its persistent keys.
func optionsKey(b budget.Budget, opts coco.Options) string {
	h := cache.NewHasher(1)
	h.Int("budget.profile", b.ProfileSteps)
	h.Int("budget.measure", b.MeasureSteps)
	h.Int("budget.sim", b.SimCycles)
	h.Bool("coco.control", opts.ControlPenalties)
	h.Bool("coco.sharemem", opts.ShareMemSync)
	h.Bool("coco.dinic", opts.Dinic)
	h.Bool("coco.edmondskarp", opts.EdmondsKarp)
	h.Bool("coco.pushrelabel", opts.PushRelabel)
	return h.Sum()
}

// artifactKey identifies a workload's memoized artifact by content: the
// workload fingerprint covers the IR, memory objects, and both inputs, so
// two different workloads that happen to share a Name never collide (they
// did when artifacts were keyed by bare name).
func (e *Engine) artifactKey(w *workloads.Workload) string {
	return e.optsKey + "|" + w.Fingerprint()
}

// NewEngine returns an engine with empty caches.
func NewEngine(o EngineOptions) *Engine {
	opts := coco.DefaultOptions()
	if o.Coco != nil {
		opts = *o.Coco
	}
	b := o.Budget.OrElse(budget.Experiments())
	return &Engine{
		jobs:      o.Jobs,
		budget:    b,
		opts:      opts,
		optsKey:   optionsKey(b, opts),
		obs:       o.Obs,
		chaos:     o.Chaos,
		degrade:   o.Degrade,
		artifacts: map[string]*memo[*Artifact]{},
		pipelines: map[string]*memo[*Pipeline]{},
		stCycles:  map[stKey]*memo[int64]{},
	}
}

// EngineStats counts the expensive analysis work an engine has performed;
// tests assert the caches collapse the 4× recomputation of the serial
// harness to exactly one profile and one PDG per workload.
type EngineStats struct {
	ProfileRuns int64 // train-input interpreter passes
	PDGBuilds   int64 // PDG constructions
	// Fallbacks counts degradation-chain steps taken (stages fallen back
	// from); FaultsInjected counts injected faults across all runs.
	Fallbacks      int64
	FaultsInjected int64
}

// Stats returns the engine's work counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		ProfileRuns:    e.profileRuns.Load(),
		PDGBuilds:      e.pdgBuilds.Load(),
		Fallbacks:      e.fallbacks.Load(),
		FaultsInjected: e.faultsInjected.Load(),
	}
}

// noteFallback records one degradation step in the engine stats and the
// "exp.fallbacks" metrics counter.
func (e *Engine) noteFallback() {
	e.fallbacks.Add(1)
	if e.obs != nil && e.obs.Metrics != nil {
		e.obs.Metrics.Scope("exp").Counter("fallbacks").Inc()
	}
}

// noteInjected records injected faults in the engine stats and the
// "fault.injected" metrics counter.
func (e *Engine) noteInjected(n int64) {
	if n == 0 {
		return
	}
	e.faultsInjected.Add(n)
	if e.obs != nil && e.obs.Metrics != nil {
		e.obs.Metrics.Scope("fault").Counter("injected").Add(n)
	}
}

func (e *Engine) artifactSlot(name string) *memo[*Artifact] {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.artifacts[name]
	if !ok {
		s = &memo[*Artifact]{}
		e.artifacts[name] = s
	}
	return s
}

func (e *Engine) pipelineSlot(key string) *memo[*Pipeline] {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.pipelines[key]
	if !ok {
		s = &memo[*Pipeline]{}
		e.pipelines[key] = s
	}
	return s
}

func (e *Engine) stSlot(key stKey) *memo[int64] {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.stCycles[key]
	if !ok {
		s = &memo[int64]{}
		e.stCycles[key] = s
	}
	return s
}

// Artifact returns w's memoized profile + PDG, computing them on first use.
func (e *Engine) Artifact(ctx context.Context, w *workloads.Workload) (*Artifact, error) {
	return e.artifactSlot(e.artifactKey(w)).do(func() (*Artifact, error) {
		e.profileRuns.Add(1)
		e.pdgBuilds.Add(1)
		return buildArtifact(ctx, w, e.budget, e.obs)
	})
}

// Pipeline returns the memoized pipeline for (w, part), building it — and
// its underlying artifact — on first use.
func (e *Engine) Pipeline(ctx context.Context, w *workloads.Workload, part partition.Partitioner) (*Pipeline, error) {
	return e.pipelineSlot(e.artifactKey(w) + "/" + part.Name()).do(func() (*Pipeline, error) {
		art, err := e.Artifact(ctx, w)
		if err != nil {
			return nil, err
		}
		return buildFromArtifact(ctx, w, part, e.opts, art, e.budget, e.obs)
	})
}

// SingleThreadedCycles returns w's memoized single-threaded cycle count on
// the given machine.
func (e *Engine) SingleThreadedCycles(ctx context.Context, cfg sim.Config, w *workloads.Workload) (int64, error) {
	return e.stSlot(stKey{workload: e.artifactKey(w), cfg: cfg}).do(func() (int64, error) {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("exp: single-threaded %s: %w", w.Name, err)
		}
		return singleThreadedCycles(cfg, w, e.budget, e.obs)
	})
}

// CommCell measures a single (workload, partitioner) matrix cell — the
// unit of work the serve daemon computes per request. The degradation
// chain applies exactly as in CommExperiment.
func (e *Engine) CommCell(ctx context.Context, w *workloads.Workload, part partition.Partitioner) (CommRow, error) {
	return e.commCell(ctx, cell{part: part, w: w}, nil)
}

// CommCellSpan is CommCell with per-call trace capture: each attempt of
// the degradation chain, its pipeline/measure stages, and every
// fallback hop are recorded as children of sp. Engines are shared
// across requests (memoization), so per-request observation rides the
// call, not EngineOptions.Obs. A nil span records nothing.
func (e *Engine) CommCellSpan(ctx context.Context, w *workloads.Workload, part partition.Partitioner, sp *obs.Span) (CommRow, error) {
	return e.commCell(ctx, cell{part: part, w: w}, sp)
}

// SpeedupCell simulates a single (workload, partitioner) matrix cell on
// the given machine, with the degradation chain of SpeedupExperiment.
func (e *Engine) SpeedupCell(ctx context.Context, cfg sim.Config, w *workloads.Workload, part partition.Partitioner) (SpeedupRow, error) {
	return e.speedupCell(ctx, cfg, cell{part: part, w: w}, nil)
}

// SpeedupCellSpan is SpeedupCell with per-call trace capture into sp
// (which may be nil), mirroring CommCellSpan.
func (e *Engine) SpeedupCellSpan(ctx context.Context, cfg sim.Config, w *workloads.Workload, part partition.Partitioner, sp *obs.Span) (SpeedupRow, error) {
	return e.speedupCell(ctx, cfg, cell{part: part, w: w}, sp)
}

// spanAttempt opens one degradation-chain attempt span under sp.
func spanAttempt(sp *obs.Span, part partition.Partitioner) *obs.Span {
	asp := sp.Child("attempt")
	if part == nil {
		asp.SetStr("partitioner", FallbackSingle)
	} else {
		asp.SetStr("partitioner", part.Name())
	}
	return asp
}

// spanFail stamps a failed attempt with its structured cause and
// records the fallback hop the chain is about to take.
func spanFail(sp, asp *obs.Span, serr *StageError) {
	asp.SetStr("outcome", "failed").SetStr("stage", serr.Stage).SetStr("class", string(serr.Class))
	asp.Finish()
	hop := sp.Child("degrade")
	hop.SetStr("from", serr.Partitioner).SetStr("stage", serr.Stage).SetStr("class", string(serr.Class))
	hop.Finish()
}

// cell identifies one matrix position: the serial iteration order is
// partitioner-major (for each partitioner, for each workload), which the
// index encodes so parallel runs fill rows identically.
type cell struct {
	part partition.Partitioner
	w    *workloads.Workload
}

func matrix(ws []*workloads.Workload) []cell {
	var cs []cell
	for _, part := range Partitioners() {
		for _, w := range ws {
			cs = append(cs, cell{part: part, w: w})
		}
	}
	return cs
}

// CommExperiment produces the data behind Figures 1 and 7 for all
// workloads under both partitioners, fanning the matrix out over the
// engine's worker pool. Rows are in the serial order regardless of Jobs.
// With Degrade enabled, a failing cell falls back (alternate partitioner,
// then single-threaded) instead of aborting the matrix; the row's Fallback
// field records what happened.
func (e *Engine) CommExperiment(ctx context.Context, ws []*workloads.Workload) ([]CommRow, error) {
	cells := matrix(ws)
	rows := make([]CommRow, len(cells))
	err := par.Run(ctx, e.jobs, len(cells), func(i int) error {
		row, err := e.commCell(ctx, cells[i], nil)
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("exp: communication experiment: %w", err)
	}
	return rows, nil
}

// commCell measures one matrix cell, walking the degradation chain when
// enabled: requested partitioner → alternate partitioner → single-threaded.
func (e *Engine) commCell(ctx context.Context, c cell, sp *obs.Span) (CommRow, error) {
	row := CommRow{Workload: c.w.Name, Partitioner: c.part.Name()}
	attempts := []partition.Partitioner{c.part}
	if e.degrade {
		attempts = append(attempts, fallbackFor(c.part)...)
	}
	for _, part := range attempts {
		asp := spanAttempt(sp, part)
		if part == nil { // last resort: the unpartitioned program
			st, err := e.singleThreadedComm(ctx, c.w)
			if err != nil {
				asp.SetStr("outcome", "failed")
				asp.Finish()
				return row, err
			}
			row.Naive, row.Coco, row.Fallback = st, st, FallbackSingle
			asp.SetStr("outcome", "ok")
			asp.Finish()
			return row, nil
		}
		naive, opt, serr := e.measureCommAttempt(ctx, c.w, part, asp)
		if serr == nil {
			row.Naive, row.Coco = naive, opt
			if part.Name() != c.part.Name() {
				row.Fallback = part.Name()
			}
			asp.SetStr("outcome", "ok")
			asp.Finish()
			return row, nil
		}
		if !e.degrade || isCtxErr(serr) {
			asp.SetStr("outcome", "failed").SetStr("stage", serr.Stage).SetStr("class", string(serr.Class))
			asp.Finish()
			return row, serr
		}
		e.noteFallback()
		spanFail(sp, asp, serr)
	}
	return row, fmt.Errorf("exp: %s/%s: degradation chain exhausted", c.w.Name, c.part.Name())
}

// measureCommAttempt builds and measures one (workload, partitioner)
// pipeline, converting any failure — including a panic — into a structured
// StageError.
func (e *Engine) measureCommAttempt(ctx context.Context, w *workloads.Workload,
	part partition.Partitioner, sp *obs.Span) (naive, opt interp.CommStats, serr *StageError) {
	defer func() {
		if v := recover(); v != nil {
			serr = recovered("measure", w, part, v)
		}
	}()
	psp := sp.Child("pipeline")
	p, err := e.Pipeline(ctx, w, part)
	psp.Finish()
	if err != nil {
		return naive, opt, stageError("pipeline", w, part, err)
	}
	msp := sp.Child("measure-naive")
	n, injected, err := p.measureCommInjected(ctx, p.Naive, e.chaos)
	e.noteInjected(injected)
	msp.SetInt("compute", n.Compute).SetInt("produce", n.Produce)
	msp.Finish()
	if err != nil {
		return naive, opt, stageError("measure", w, part, err)
	}
	msp = sp.Child("measure-coco")
	o, injected, err := p.measureCommInjected(ctx, p.Coco, e.chaos)
	e.noteInjected(injected)
	msp.SetInt("compute", o.Compute).SetInt("produce", o.Produce)
	msp.Finish()
	if err != nil {
		return naive, opt, stageError("measure", w, part, err)
	}
	return n, o, nil
}

// SpeedupExperiment produces Figure 8's data on the given machine, fanning
// the matrix out over the engine's worker pool. Single-threaded baselines
// are memoized per workload, as in the serial harness. With Degrade
// enabled, a failing cell falls back (alternate partitioner, then the
// single-threaded baseline itself — speedup 1.0x) instead of aborting.
func (e *Engine) SpeedupExperiment(ctx context.Context, cfg sim.Config, ws []*workloads.Workload) ([]SpeedupRow, error) {
	cells := matrix(ws)
	rows := make([]SpeedupRow, len(cells))
	err := par.Run(ctx, e.jobs, len(cells), func(i int) error {
		row, err := e.speedupCell(ctx, cfg, cells[i], nil)
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("exp: speedup experiment: %w", err)
	}
	return rows, nil
}

// speedupCell simulates one matrix cell, walking the degradation chain
// when enabled.
func (e *Engine) speedupCell(ctx context.Context, cfg sim.Config, c cell, sp *obs.Span) (SpeedupRow, error) {
	row := SpeedupRow{Workload: c.w.Name, Partitioner: c.part.Name()}
	ssp := sp.Child("single-threaded-baseline")
	st, err := e.SingleThreadedCycles(ctx, cfg, c.w)
	ssp.SetInt("cycles", st)
	ssp.Finish()
	if err != nil {
		return row, err
	}
	row.STCycles = st
	attempts := []partition.Partitioner{c.part}
	if e.degrade {
		attempts = append(attempts, fallbackFor(c.part)...)
	}
	for _, part := range attempts {
		asp := spanAttempt(sp, part)
		if part == nil { // last resort: the single-threaded baseline itself
			row.NaiveCycles, row.CocoCycles, row.Fallback = st, st, FallbackSingle
			asp.SetStr("outcome", "ok")
			asp.Finish()
			return row, nil
		}
		naive, opt, serr := e.measureCyclesAttempt(ctx, cfg, c.w, part, asp)
		if serr == nil {
			row.NaiveCycles, row.CocoCycles = naive, opt
			if part.Name() != c.part.Name() {
				row.Fallback = part.Name()
			}
			asp.SetStr("outcome", "ok")
			asp.Finish()
			return row, nil
		}
		if !e.degrade || isCtxErr(serr) {
			asp.SetStr("outcome", "failed").SetStr("stage", serr.Stage).SetStr("class", string(serr.Class))
			asp.Finish()
			return row, serr
		}
		e.noteFallback()
		spanFail(sp, asp, serr)
	}
	return row, fmt.Errorf("exp: %s/%s: degradation chain exhausted", c.w.Name, c.part.Name())
}

// measureCyclesAttempt builds and simulates one (workload, partitioner)
// pipeline, converting any failure — including a panic — into a structured
// StageError. With chaos armed the no-progress watchdog is lowered so an
// injected deadlock fails in bounded time.
func (e *Engine) measureCyclesAttempt(ctx context.Context, cfg sim.Config, w *workloads.Workload,
	part partition.Partitioner, sp *obs.Span) (naive, opt int64, serr *StageError) {
	defer func() {
		if v := recover(); v != nil {
			serr = recovered("simulate", w, part, v)
		}
	}()
	psp := sp.Child("pipeline")
	p, err := e.Pipeline(ctx, w, part)
	psp.Finish()
	if err != nil {
		return naive, opt, stageError("pipeline", w, part, err)
	}
	mtCfg := p.Machine(cfg)
	if e.chaos != nil {
		mtCfg.StallLimit = 100_000
	}
	ssp := sp.Child("simulate-naive")
	n, injected, err := p.measureCyclesInjected(mtCfg, p.Naive, e.chaos)
	e.noteInjected(injected)
	ssp.SetInt("cycles", n)
	ssp.Finish()
	if err != nil {
		return naive, opt, stageError("simulate", w, part, err)
	}
	ssp = sp.Child("simulate-coco")
	o, injected, err := p.measureCyclesInjected(mtCfg, p.Coco, e.chaos)
	e.noteInjected(injected)
	ssp.SetInt("cycles", o)
	ssp.Finish()
	if err != nil {
		return naive, opt, stageError("simulate", w, part, err)
	}
	return n, o, nil
}
