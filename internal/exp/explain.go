package exp

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Profile runs the cycle-attribution profiler over one generated program of
// a (workload, partitioner) pipeline: the simulation re-runs on the given
// machine with attribution and dependence-event collection enabled, and the
// report carries the exact per-core bucket decomposition plus the dynamic
// critical path. useCoco selects the COCO-optimized program (false = naive
// MTCG). When tr is non-nil the run's timeline — including produce→consume
// flow arrows — lands under pid in the trace.
func (e *Engine) Profile(ctx context.Context, cfg sim.Config, w *workloads.Workload,
	part partition.Partitioner, useCoco bool, tr *obs.Trace, pid int) (*profile.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("exp: profiling %s/%s: %w", w.Name, part.Name(), err)
	}
	p, err := e.Pipeline(ctx, w, part)
	if err != nil {
		return nil, err
	}
	prog, label := p.Coco, "coco"
	if !useCoco {
		prog, label = p.Naive, "naive"
	}
	in := w.Ref()
	o := profile.Options{
		Workload:    w.Name,
		Partitioner: part.Name(),
		Program:     label,
		Cfg:         p.Machine(cfg),
		Threads:     prog.Threads,
		Args:        in.Args,
		Mem:         in.Mem,
		MaxCycles:   e.budget.SimCycles,
		Trace:       tr,
		Pid:         pid,
		Flows:       tr != nil,
	}
	if tr != nil {
		tr.ProcessName(pid, w.Name+"/"+part.Name()+"/"+label+" profile")
	}
	if e.obs != nil && e.obs.Metrics != nil {
		o.Metrics = e.obs.Metrics.Scope("profile." + w.Name + "." + part.Name() + "." + label)
	}
	return profile.Run(o)
}

// AnnotateSpeedups fills each speedup row's Note with the profiler's
// explanation of COCO's effect: the dominant per-bucket contributions to
// the naive→COCO cycle delta. Rows rescued by the degradation chain (or
// measured single-threaded) are left unannotated. Profiling re-simulates
// both programs of every cell, so this is as expensive as the speedup
// experiment itself; it fans out over the engine's worker pool and the
// notes are deterministic at any Jobs setting.
func (e *Engine) AnnotateSpeedups(ctx context.Context, cfg sim.Config, ws []*workloads.Workload, rows []SpeedupRow) error {
	byName := map[string]*workloads.Workload{}
	for _, w := range ws {
		byName[w.Name] = w
	}
	parts := map[string]partition.Partitioner{}
	for _, p := range Partitioners() {
		parts[p.Name()] = p
	}
	err := par.Run(ctx, e.jobs, len(rows), func(i int) error {
		r := &rows[i]
		w, p := byName[r.Workload], parts[r.Partitioner]
		if w == nil || p == nil || r.Fallback != "" {
			return nil
		}
		naive, err := e.Profile(ctx, cfg, w, p, false, nil, 0)
		if err != nil {
			return err
		}
		coco, err := e.Profile(ctx, cfg, w, p, true, nil, 0)
		if err != nil {
			return err
		}
		r.Note = profile.Explain(naive, coco).Summary()
		return nil
	})
	if err != nil {
		return fmt.Errorf("exp: explaining speedups: %w", err)
	}
	return nil
}
