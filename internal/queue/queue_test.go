package queue_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/pdg"
	"repro/internal/queue"
	"repro/internal/testprog"
)

func generate(t *testing.T, p *testprog.Prog) *mtcg.Program {
	t.Helper()
	g := pdg.Build(p.F, p.Objects)
	prog, err := mtcg.Generate(mtcg.NaivePlan(p.F, g, p.Assign, 2))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return prog
}

func TestAllocateMergesSamePairSamePoints(t *testing.T) {
	// Craft a plan with two registers communicated at identical points:
	// they must share a queue after allocation.
	p := testprog.Fig4()
	g := pdg.Build(p.F, p.Objects)
	plan := mtcg.NaivePlan(p.F, g, p.Assign, 2)
	// Duplicate the r1 communication under a different register to force
	// an identical-point, same-pair pair. Use the loop counter register
	// (also defined in thread 0): communicated at the same point as r1.
	var r1c *mtcg.Comm
	for _, c := range plan.Comms {
		if c.Kind == pdg.KindReg && c.Reg == p.Regs["r1"] {
			r1c = c
		}
	}
	if r1c == nil {
		t.Fatal("no r1 comm in naive plan")
	}
	extra := &mtcg.Comm{
		Kind: pdg.KindReg, Reg: p.Regs["i"], Src: r1c.Src, Dst: r1c.Dst,
		Points: append([]mtcg.Point(nil), r1c.Points...),
	}
	plan.Comms = append(plan.Comms, extra)

	prog, err := mtcg.Generate(plan)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	alloc := queue.Allocate(prog)
	if alloc.After >= alloc.Before {
		t.Errorf("allocation did not merge: before=%d after=%d", alloc.Before, alloc.After)
	}
	if prog.NumQueues != alloc.After {
		t.Errorf("program NumQueues=%d, allocation says %d", prog.NumQueues, alloc.After)
	}
	if r1c.Queue != extra.Queue {
		t.Errorf("identical-point comms got queues %d and %d, want shared", r1c.Queue, extra.Queue)
	}

	// The merged program must still execute correctly.
	st, err := interp.Run(p.F, nil, nil, 1_000_000)
	if err != nil {
		t.Fatalf("ST: %v", err)
	}
	mt, err := interp.RunMT(interp.MTConfig{
		Threads: prog.Threads, NumQueues: prog.NumQueues,
		Assign: p.Assign, MaxSteps: 1_000_000,
	})
	if err != nil {
		t.Fatalf("MT after allocation: %v", err)
	}
	if mt.LiveOuts[0] != st.LiveOuts[0] {
		t.Errorf("live-out %d after merging, want %d", mt.LiveOuts[0], st.LiveOuts[0])
	}
}

func TestAllocateKeepsDistinctPairsApart(t *testing.T) {
	p := testprog.Fig5()
	prog := generate(t, p)
	before := map[int]*mtcg.Comm{}
	for _, c := range prog.Comms {
		before[c.Queue] = c
	}
	queue.Allocate(prog)
	// Communications between different thread pairs or at different
	// points must keep distinct queues.
	seen := map[int]*mtcg.Comm{}
	for _, c := range prog.Comms {
		if other, dup := seen[c.Queue]; dup {
			same := other.Src == c.Src && other.Dst == c.Dst &&
				len(other.Points) == len(c.Points)
			if same {
				for i := range other.Points {
					if other.Points[i] != c.Points[i] {
						same = false
					}
				}
			}
			if !same {
				t.Errorf("queue %d shared by incompatible comms %v and %v", c.Queue, other, c)
			}
		}
		seen[c.Queue] = c
	}
}

func TestAllocateRewritesInstructions(t *testing.T) {
	p := testprog.Fig3()
	prog := generate(t, p)
	queue.Allocate(prog)
	for _, ft := range prog.Threads {
		ft.Instrs(func(in *ir.Instr) {
			if in.Op.IsComm() {
				if in.Queue < 0 || in.Queue >= prog.NumQueues {
					t.Errorf("instruction %v references queue outside [0,%d)", in, prog.NumQueues)
				}
			}
		})
		if ft.NumQueues != prog.NumQueues {
			t.Errorf("thread %s NumQueues=%d, program=%d", ft.Name, ft.NumQueues, prog.NumQueues)
		}
		if err := ft.Verify(); err != nil {
			t.Errorf("thread %s invalid after allocation: %v", ft.Name, err)
		}
	}
}

func TestAllocateIdempotent(t *testing.T) {
	p := testprog.Fig5()
	prog := generate(t, p)
	first := queue.Allocate(prog)
	second := queue.Allocate(prog)
	if second.Before != first.After || second.After != first.After {
		t.Errorf("second allocation changed queues: first %d->%d, second %d->%d",
			first.Before, first.After, second.Before, second.After)
	}
}
