// Package queue implements synchronization-array queue allocation. MTCG
// uses one queue per communicated dependence for simplicity; footnote 1 of
// the paper notes that "a queue-allocation algorithm can reduce the number
// of queues necessary" — the hardware provides only 256. This allocator
// merges communications that provably share FIFO order: same producer
// thread, same consumer thread, identical placement points. Both threads
// emit the merged operations at the same points in the same deterministic
// order, so pushes and pops still match pairwise.
package queue

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/mtcg"
)

// Allocation reports the result of queue allocation.
type Allocation struct {
	// Before and After are the queue counts prior to and after merging.
	Before, After int
	// Mapping holds the physical queue chosen for each original queue.
	Mapping []int
}

// Allocate renumbers the queues of a generated multi-threaded program in
// place, merging mergeable communications, and returns the allocation. The
// program's thread functions and NumQueues are updated.
func Allocate(prog *mtcg.Program) Allocation {
	type groupKey struct {
		src, dst int
		points   string
	}
	pointsKey := func(c *mtcg.Comm) string {
		pts := append([]mtcg.Point(nil), c.Points...)
		sort.Slice(pts, func(i, j int) bool {
			if pts[i].Block.ID != pts[j].Block.ID {
				return pts[i].Block.ID < pts[j].Block.ID
			}
			return pts[i].Index < pts[j].Index
		})
		s := ""
		for _, pt := range pts {
			s += fmt.Sprintf("%d.%d;", pt.Block.ID, pt.Index)
		}
		return s
	}

	alloc := Allocation{
		Before:  prog.NumQueues,
		Mapping: make([]int, prog.NumQueues),
	}
	groups := map[groupKey]int{}
	next := 0
	for _, c := range prog.Comms {
		k := groupKey{c.Src, c.Dst, pointsKey(c)}
		phys, ok := groups[k]
		if !ok {
			phys = next
			next++
			groups[k] = phys
		}
		alloc.Mapping[c.Queue] = phys
	}
	alloc.After = next

	for _, ft := range prog.Threads {
		ft.Instrs(func(in *ir.Instr) {
			if in.Op.IsComm() {
				in.Queue = alloc.Mapping[in.Queue]
			}
		})
		ft.NumQueues = next
	}
	for _, c := range prog.Comms {
		c.Queue = alloc.Mapping[c.Queue]
	}
	prog.NumQueues = next
	return alloc
}
