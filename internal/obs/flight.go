package obs

import (
	"fmt"
	"io"
	"sync"
)

// TraceRecord is one completed request trace, rendered once at request
// end so retention costs no re-serialization and dumps are byte-stable.
type TraceRecord struct {
	// TraceID identifies the request.
	TraceID string
	// Status is the request's final HTTP-style status code.
	Status int
	// JSON is the rendered span tree (no trailing newline).
	JSON []byte
}

// FlightRecorder is a bounded ring buffer of the last-N request traces.
// It backs both the trace-by-ID endpoint and the postmortem dumps the
// serving layer snapshots to disk on 5xx, breaker trip, or drain. All
// methods are safe for concurrent use; a nil recorder is inert.
type FlightRecorder struct {
	mu   sync.Mutex
	cap  int
	seq  int64
	recs []TraceRecord
}

// NewFlightRecorder returns a recorder retaining the last n traces
// (n ≤ 0 selects the default of 32).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = 32
	}
	return &FlightRecorder{cap: n, recs: make([]TraceRecord, 0, n)}
}

// Record retains r, evicting the oldest trace when full.
func (f *FlightRecorder) Record(r TraceRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.recs) < f.cap {
		f.recs = append(f.recs, r)
	} else {
		f.recs[f.seq%int64(f.cap)] = r
	}
	f.seq++
}

// Len returns how many traces are currently retained.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.recs)
}

// Get returns the rendered trace with the given ID, searching newest to
// oldest.
func (f *FlightRecorder) Get(id string) ([]byte, bool) {
	if f == nil {
		return nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	recs := f.ordered()
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].TraceID == id {
			return recs[i].JSON, true
		}
	}
	return nil, false
}

// ordered returns retained records oldest to newest. Caller holds f.mu.
func (f *FlightRecorder) ordered() []TraceRecord {
	if f.seq <= int64(f.cap) {
		return f.recs
	}
	head := int(f.seq % int64(f.cap))
	out := make([]TraceRecord, 0, len(f.recs))
	out = append(out, f.recs[head:]...)
	out = append(out, f.recs[:head]...)
	return out
}

// WriteDump renders every retained trace oldest to newest, with the
// dump's reason and sequence number, in a stable format: two dumps of
// the same recorder state are byte-identical.
func (f *FlightRecorder) WriteDump(w io.Writer, reason string, dumpSeq int64) error {
	if f == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	f.mu.Lock()
	recs := append([]TraceRecord(nil), f.ordered()...)
	total := f.seq
	f.mu.Unlock()
	if _, err := fmt.Fprintf(w, "{\n\"schema\": 1,\n\"reason\": %s,\n\"dump\": %d,\n\"recorded\": %d,\n\"retained\": %d,\n\"traces\": [",
		jsonString(reason), dumpSeq, total, len(recs)); err != nil {
		return err
	}
	for i, r := range recs {
		sep := ","
		if i == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s\n{\"trace_id\": %s, \"status\": %d, \"trace\":\n%s}",
			sep, jsonString(r.TraceID), r.Status, r.JSON); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n}\n")
	return err
}
