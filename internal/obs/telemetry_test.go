package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/obs/obstest"
)

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{-3, 0, 1, 2, 3, 4, 7, 8, 1000, math.MaxInt64} {
		h.Observe(v)
	}
	if h.Count() != 10 {
		t.Errorf("Count = %d, want 10", h.Count())
	}
	// Sum overflows deliberately unchecked; spot-check a smaller histogram.
	h2 := &Histogram{}
	h2.Observe(3)
	h2.Observe(4)
	if h2.Sum() != 7 {
		t.Errorf("Sum = %d, want 7", h2.Sum())
	}

	want := []HistogramBucket{
		{Bound: 0, N: 2},             // -3, 0
		{Bound: 1, N: 1},             // 1
		{Bound: 3, N: 2},             // 2, 3
		{Bound: 7, N: 2},             // 4, 7
		{Bound: 15, N: 1},            // 8
		{Bound: 1023, N: 1},          // 1000
		{Bound: math.MaxInt64, N: 1}, // MaxInt64
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("Buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Bounds must be strictly ascending so the Prometheus exposition's
	// cumulative le series is well-formed.
	for i := 1; i < histBuckets; i++ {
		if BucketBound(i) <= BucketBound(i-1) {
			t.Errorf("BucketBound(%d) = %d not above BucketBound(%d) = %d",
				i, BucketBound(i), i-1, BucketBound(i-1))
		}
	}

	var nilH *Histogram
	nilH.Observe(5)
	if nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Buckets() != nil {
		t.Error("nil histogram must be inert")
	}
}

// TestHistogramSerializationStable: two registries fed the same
// observations in different orders render byte-identical JSON — the
// property the serve layer's cross-jobs determinism test leans on.
func TestHistogramSerializationStable(t *testing.T) {
	obs := []int64{1, 5, 9, 100, 0, 7}
	render := func(order []int64) string {
		r := NewRegistry()
		h := r.Scope("serve").Histogram("queue_depth")
		for _, v := range order {
			h.Observe(v)
		}
		var b bytes.Buffer
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	rev := make([]int64, len(obs))
	for i, v := range obs {
		rev[len(obs)-1-i] = v
	}
	if a, b := render(obs), render(rev); a != b {
		t.Errorf("histogram JSON depends on observation order:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(render(obs), `"buckets": [[0,1],[1,1],[7,2],[15,1],[127,1]]`) {
		t.Errorf("unexpected bucket rendering:\n%s", render(obs))
	}
}

func TestTraceIDDeterministic(t *testing.T) {
	a := TraceID("req", "1", "ks")
	if b := TraceID("req", "1", "ks"); a != b {
		t.Errorf("same parts gave %q and %q", a, b)
	}
	if len(a) != 16 {
		t.Errorf("TraceID length = %d, want 16 hex digits", len(a))
	}
	// The NUL separator keeps part boundaries significant.
	if TraceID("ab", "c") == TraceID("a", "bc") {
		t.Error("part boundaries are not significant")
	}
}

func TestSpanTreeWriteJSON(t *testing.T) {
	tr := NewSpanTree("deadbeef00000000", nil)
	root := tr.Root("request")
	root.SetStr("workload", "ks").SetInt("status", 200)
	child := root.Child("cache.lookup")
	child.SetStr("layer", "mem")
	child.Finish()
	root.Finish()

	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.HasSuffix(out, "\n") {
		t.Error("WriteJSON must not end with a newline (dumps embed it)")
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("WriteJSON output is not valid JSON:\n%s", out)
	}
	var doc struct {
		TraceID string `json:"trace_id"`
		Clock   string `json:"clock"`
		Spans   []struct {
			ID     int            `json:"id"`
			Parent int            `json:"parent"`
			Name   string         `json:"name"`
			Start  int64          `json:"start"`
			End    int64          `json:"end"`
			Attrs  map[string]any `json:"attrs"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != "deadbeef00000000" || doc.Clock != "logical" {
		t.Errorf("header = (%q, %q)", doc.TraceID, doc.Clock)
	}
	if len(doc.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(doc.Spans))
	}
	r, c := doc.Spans[0], doc.Spans[1]
	if r.Parent != 0 || c.Parent != r.ID {
		t.Errorf("parent links: root=%d child=%d (root id %d)", r.Parent, c.Parent, r.ID)
	}
	// Logical clock: root starts at 1; the child's events nest inside.
	if !(r.Start == 1 && r.Start < c.Start && c.Start < c.End && c.End < r.End) {
		t.Errorf("logical times not nested: root [%d,%d], child [%d,%d]",
			r.Start, r.End, c.Start, c.End)
	}
	if r.Attrs["workload"] != "ks" || r.Attrs["status"] != float64(200) {
		t.Errorf("root attrs = %v", r.Attrs)
	}

	// Identical trees render identical bytes.
	tr2 := NewSpanTree("deadbeef00000000", nil)
	root2 := tr2.Root("request")
	root2.SetStr("workload", "ks").SetInt("status", 200)
	c2 := root2.Child("cache.lookup")
	c2.SetStr("layer", "mem")
	c2.Finish()
	root2.Finish()
	var b2 bytes.Buffer
	tr2.WriteJSON(&b2)
	if !bytes.Equal(b.Bytes(), b2.Bytes()) {
		t.Error("identical span trees rendered different bytes")
	}
}

// TestSpanNilSafety: every span and tree method must accept nil, so
// instrumented code paths carry no checks.
func TestSpanNilSafety(t *testing.T) {
	var tr *SpanTree
	if tr.TraceID() != "" || tr.CountSpans("x") != 0 {
		t.Error("nil tree must be inert")
	}
	sp := tr.Root("r")
	if sp != nil {
		t.Fatal("nil tree must yield nil spans")
	}
	sp.SetStr("k", "v").SetInt("n", 1)
	sp.Child("c").Finish()
	sp.Finish()
	if _, ok := sp.StrAttr("k"); ok {
		t.Error("nil span returned an attribute")
	}
	if s, e := sp.Times(); s != 0 || e != 0 {
		t.Error("nil span returned times")
	}
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil || b.String() != "{}" {
		t.Errorf("nil tree WriteJSON = %q, %v", b.String(), err)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 1; i <= 5; i++ {
		f.Record(TraceRecord{
			TraceID: fmt.Sprintf("id%d", i),
			Status:  200,
			JSON:    []byte(fmt.Sprintf("{\"n\": %d}", i)),
		})
	}
	if f.Len() != 3 {
		t.Errorf("Len = %d, want 3", f.Len())
	}
	if _, ok := f.Get("id2"); ok {
		t.Error("evicted trace id2 still retrievable")
	}
	for i := 3; i <= 5; i++ {
		if _, ok := f.Get(fmt.Sprintf("id%d", i)); !ok {
			t.Errorf("retained trace id%d not found", i)
		}
	}

	var b bytes.Buffer
	if err := f.WriteDump(&b, "test", 1); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("dump is not valid JSON:\n%s", b.String())
	}
	var doc struct {
		Schema   int    `json:"schema"`
		Reason   string `json:"reason"`
		Dump     int64  `json:"dump"`
		Recorded int64  `json:"recorded"`
		Retained int    `json:"retained"`
		Traces   []struct {
			TraceID string `json:"trace_id"`
			Status  int    `json:"status"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != 1 || doc.Reason != "test" || doc.Dump != 1 || doc.Recorded != 5 || doc.Retained != 3 {
		t.Errorf("dump header = %+v", doc)
	}
	// Oldest to newest.
	for i, tr := range doc.Traces {
		if want := fmt.Sprintf("id%d", i+3); tr.TraceID != want {
			t.Errorf("dump trace %d = %q, want %q", i, tr.TraceID, want)
		}
	}

	var b2 bytes.Buffer
	f.WriteDump(&b2, "test", 1)
	if !bytes.Equal(b.Bytes(), b2.Bytes()) {
		t.Error("two dumps of the same state differ")
	}

	var nilF *FlightRecorder
	nilF.Record(TraceRecord{})
	if nilF.Len() != 0 {
		t.Error("nil recorder must be inert")
	}
	if _, ok := nilF.Get("x"); ok {
		t.Error("nil recorder returned a trace")
	}
}

// TestWritePromParses renders a registry with every instrument type and
// feeds it through the obstest parser — the same check the CI smoke job
// applies to a live /metrics scrape.
func TestWritePromParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.requests").Add(7)
	r.Gauge("serve.queue.depth").Set(2)
	r.Timer("exp.measure-steps").Observe(100)
	r.Timer("exp.measure-steps").Observe(50)
	h := r.Histogram("serve.admission.queue_depth")
	for _, v := range []int64{0, 1, 2, 9, 100} {
		h.Observe(v)
	}

	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	fams := obstest.CheckProm(t, b.Bytes())

	if f := fams["serve_requests"]; f == nil || f.Type != "counter" || f.Samples[0].Value != 7 {
		t.Errorf("serve_requests family = %+v", fams["serve_requests"])
	}
	if f := fams["serve_queue_depth"]; f == nil || f.Type != "gauge" {
		t.Errorf("serve_queue_depth family = %+v", fams["serve_queue_depth"])
	}
	if f := fams["exp_measure_steps"]; f == nil || f.Type != "summary" {
		t.Fatalf("exp_measure_steps family = %+v", fams["exp_measure_steps"])
	}
	hist := fams["serve_admission_queue_depth"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family = %+v", hist)
	}
	var inf float64
	var count float64
	for _, s := range hist.Samples {
		if s.Name == "serve_admission_queue_depth_bucket" && s.Labels["le"] == "+Inf" {
			inf = s.Value
		}
		if s.Name == "serve_admission_queue_depth_count" {
			count = s.Value
		}
	}
	if inf != 5 || count != 5 {
		t.Errorf("+Inf bucket = %v, _count = %v, want 5 observations", inf, count)
	}

	// Byte-stability across renders.
	var b2 bytes.Buffer
	r.WriteProm(&b2)
	if !bytes.Equal(b.Bytes(), b2.Bytes()) {
		t.Error("two WriteProm renders of the same registry differ")
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"serve.requests":  "serve_requests",
		"a-b/c":           "a_b_c",
		"9lives":          "_9lives",
		"":                "_",
		"already_fine_42": "already_fine_42",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
