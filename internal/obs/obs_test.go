package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs/obstest"
)

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Inc()
	r.Gauge("g").Set(5)
	r.Gauge("g").SetMax(2) // lower: no effect
	r.Gauge("g").SetMax(9)
	r.Timer("t").Observe(10)
	r.Timer("t").Observe(20)

	if got := r.Counter("a").Value(); got != 4 {
		t.Errorf("counter a = %d, want 4", got)
	}
	if got := r.Gauge("g").Value(); got != 9 {
		t.Errorf("gauge g = %d, want 9", got)
	}
	if tm := r.Timer("t"); tm.Count() != 2 || tm.Total() != 30 {
		t.Errorf("timer t = (%d, %d), want (2, 30)", tm.Count(), tm.Total())
	}
}

func TestScopePrefixing(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("exp").Child("ks")
	s.Counter("steps").Add(7)
	if got := r.Counter("exp.ks.steps").Value(); got != 7 {
		t.Errorf("exp.ks.steps = %d, want 7", got)
	}
}

// TestNilSafety: a nil registry/scope/lane must accept every call, so
// instrumented code carries no nil checks at record sites.
func TestNilSafety(t *testing.T) {
	var r *Registry
	s := r.Scope("x")
	if s != nil {
		t.Fatal("nil registry must yield nil scope")
	}
	s.Counter("c").Add(1)
	s.Gauge("g").SetMax(2)
	s.Timer("t").Observe(3)
	s.Child("y").Counter("c").Inc()
	if got := s.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter = %d, want 0", got)
	}

	var tr *Trace
	l := tr.Lane(1, 1)
	if l != nil {
		t.Fatal("nil trace must yield nil lane")
	}
	l.Span("a", "b", 1)
	l.SpanAt("a", "b", 0, 1)
	l.Counter("q", 0, "depth", 1)
	l.Instant("i", "c", 0)
	tr.ProcessName(1, "p")
	tr.ThreadName(1, 1, "t")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Errorf("nil trace JSON invalid: %s", buf.String())
	}
}

// TestSnapshotDeterministic: snapshot order must not depend on creation
// order.
func TestSnapshotDeterministic(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Add(1)
	a.Gauge("y").Set(2)
	b.Gauge("y").Set(2)
	b.Counter("x").Add(1)
	var ja, jb bytes.Buffer
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Errorf("registry JSON depends on creation order:\n%s\nvs\n%s", ja.String(), jb.String())
	}
	if !json.Valid(ja.Bytes()) {
		t.Errorf("registry JSON invalid: %s", ja.String())
	}
}

// TestConcurrentRecording exercises the metrics plumbing under the race
// detector: many goroutines hammer the same instruments and lanes.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := r.Scope("worker")
			for j := 0; j < 1000; j++ {
				s.Counter("steps").Inc()
				s.Gauge("hwm").SetMax(int64(j))
				s.Timer("phase").Observe(1)
				l := tr.Lane(i, 0)
				l.Span("span", "test", 1)
				l.Counter("q0", int64(j), "depth", int64(j%4))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("worker.steps").Value(); got != 8000 {
		t.Errorf("steps = %d, want 8000", got)
	}
	if got := r.Gauge("worker.hwm").Value(); got != 999 {
		t.Errorf("hwm = %d, want 999", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("concurrent trace JSON invalid")
	}
}

func TestTraceEventLimit(t *testing.T) {
	tr := NewTrace()
	tr.SetLimit(3)
	l := tr.Lane(1, 1)
	for i := 0; i < 10; i++ {
		l.Span("s", "c", 1)
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"droppedEvents\": 7") {
		t.Errorf("drop count missing from JSON:\n%s", buf.String())
	}
}

func TestLaneCursor(t *testing.T) {
	tr := NewTrace()
	l := tr.Lane(1, 1)
	if ts := l.Span("a", "c", 10); ts != 0 {
		t.Errorf("first span ts = %d, want 0", ts)
	}
	if ts := l.Span("b", "c", 5); ts != 10 {
		t.Errorf("second span ts = %d, want 10", ts)
	}
	if l.Now() != 15 {
		t.Errorf("Now = %d, want 15", l.Now())
	}
	// Same (pid, tid) resolves to the same lane and cursor.
	if tr.Lane(1, 1).Now() != 15 {
		t.Error("Lane(1,1) did not return the cached lane")
	}
}

// TestTraceJSONShape validates the written trace against the Chrome
// trace-event schema shape: object with traceEvents, every event carries
// name/ph/pid/tid, phases are from the emitted set, complete events have
// ts and dur, and events within a lane are time-ordered.
func TestTraceJSONShape(t *testing.T) {
	tr := NewTrace()
	tr.ProcessName(1, "proc")
	tr.ThreadName(1, 2, "lane")
	l := tr.Lane(1, 2)
	l.Span("phase", "pipeline", 10, A("size", 3))
	l.SpanAt("stall", "sim", 4, 2)
	l.Counter("q0", 5, "depth", 1)
	l.Instant("done", "sim", 12)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	obstest.CheckTraceShape(t, buf.Bytes())

	// Byte-stable: writing again yields identical output.
	var buf2 bytes.Buffer
	if err := tr.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteJSON is not byte-stable across calls")
	}
}

// TestTraceFieldOrdering pins the stable field ordering the golden test
// relies on: every event line has its keys in the canonical order.
func TestTraceFieldOrdering(t *testing.T) {
	tr := NewTrace()
	l := tr.Lane(1, 1)
	l.Span("phase", "pipeline", 10, A("z", 1), A("a", 2))
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "{\"name\":") && !strings.HasPrefix(line, ",{\"name\":") {
			continue
		}
		order := []string{"\"name\":", "\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":", "\"args\":"}
		pos := -1
		for _, key := range order {
			p := strings.Index(line, key)
			if p < 0 {
				continue // optional field (cat/dur depend on phase)
			}
			if p < pos {
				t.Errorf("field %s out of order in %s", key, line)
			}
			pos = p
		}
	}
	// args keys are sorted regardless of call order.
	if !strings.Contains(buf.String(), "\"a\": 2, \"z\": 1") {
		t.Errorf("args not sorted by key:\n%s", buf.String())
	}
}

// TestFlowEvents: flow start/finish pairs serialize with matching ids and
// survive the schema checker — they are how produce→consume pairs render
// as arrows across core lanes in Perfetto.
func TestFlowEvents(t *testing.T) {
	tr := NewTrace()
	prod := tr.Lane(1, 1)
	cons := tr.Lane(1, 2)
	prod.SpanAt("produce q0", "comm", 3, 1)
	cons.SpanAt("consume q0", "comm", 9, 1)
	prod.FlowStart("q0", "comm", 7, 3)
	cons.FlowEnd("q0", "comm", 7, 9)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	obstest.CheckTraceShape(t, buf.Bytes())
	out := buf.String()
	if !strings.Contains(out, "\"ph\": \"s\", \"id\": 7, \"ts\": 3") {
		t.Errorf("missing flow start:\n%s", out)
	}
	if !strings.Contains(out, "\"ph\": \"f\", \"bp\": \"e\", \"id\": 7, \"ts\": 9") {
		t.Errorf("missing flow finish:\n%s", out)
	}

	// Nil lanes swallow flow calls like every other record.
	var nilLane *Lane
	nilLane.FlowStart("x", "y", 1, 2)
	nilLane.FlowEnd("x", "y", 1, 2)
}

// TestRecordDrops: the trace's drop tally surfaces as the obs.dropped
// counter in the metrics registry, so it reaches the metrics JSON rather
// than staying an internal number.
func TestRecordDrops(t *testing.T) {
	tr := NewTrace()
	tr.SetLimit(2)
	l := tr.Lane(1, 1)
	for i := 0; i < 5; i++ {
		l.Instant("e", "c", int64(i))
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
	r := NewRegistry()
	RecordDrops(tr, r)
	if got := r.Counter("obs.dropped").Value(); got != 3 {
		t.Errorf("obs.dropped = %d, want 3", got)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"name\": \"obs.dropped\", \"type\": \"counter\", \"value\": 3") {
		t.Errorf("obs.dropped missing from metrics JSON:\n%s", buf.String())
	}

	// Nil-safe in both directions.
	RecordDrops(nil, r)
	RecordDrops(tr, nil)
}
