// Span trees: a lightweight per-request trace. Where the Chrome
// trace-event writer (trace.go) records whole-experiment timelines for
// offline viewing, a SpanTree records the causal story of one request —
// parent-linked spans with typed attributes — cheaply enough to build
// one per served request and render it byte-deterministically for the
// trace endpoint and the flight recorder.
//
// Durations are logical: the default clock is a per-tree counter that
// ticks once per span event, so "duration" means "number of trace
// events that happened inside this span", which is deterministic for a
// serial request. Wall-clock can only enter through an injected clock;
// no code path in this package reads time.Now.
package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync"
)

// TraceID derives a stable 16-hex-digit identifier from the given
// parts. The same parts always produce the same ID, which is what lets
// two runs of the same scenario emit byte-identical traces and lets a
// stress-sweep cell name its trace before it runs.
func TraceID(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// SpanTree is one trace: a set of spans linked by parent IDs. All
// methods are safe for concurrent use and inert on a nil tree.
type SpanTree struct {
	mu      sync.Mutex
	traceID string
	clock   func() int64
	logical int64
	spans   []*Span
}

// NewSpanTree starts an empty trace. clock supplies timestamps; nil
// means a per-tree logical counter that ticks once per span event
// (start, finish), which keeps serial traces byte-deterministic.
func NewSpanTree(traceID string, clock func() int64) *SpanTree {
	return &SpanTree{traceID: traceID, clock: clock}
}

// TraceID returns the trace's identifier.
func (t *SpanTree) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// now must be called with t.mu held.
func (t *SpanTree) now() int64 {
	if t.clock != nil {
		return t.clock()
	}
	t.logical++
	return t.logical
}

func (t *SpanTree) newSpan(parent int, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{tree: t, id: len(t.spans) + 1, parent: parent, name: name, start: t.now()}
	s.end = s.start
	t.spans = append(t.spans, s)
	return s
}

// Root starts a top-level span.
func (t *SpanTree) Root(name string) *Span {
	return t.newSpan(0, name)
}

// CountSpans returns how many spans in the tree have the given name.
func (t *SpanTree) CountSpans(name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, s := range t.spans {
		if s.name == name {
			n++
		}
	}
	return n
}

// Span is one node in a SpanTree. A nil span is valid and records
// nothing, so instrumented code needs no nil checks.
type Span struct {
	tree   *SpanTree
	id     int
	parent int
	name   string
	start  int64
	end    int64
	endSet bool
	attrs  []spanAttr
}

type spanAttr struct {
	key   string
	str   string
	num   int64
	isStr bool
}

// Child starts a sub-span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tree.newSpan(s.id, name)
}

// SetStr records a string attribute, replacing any prior value for key.
// It returns s for chaining.
func (s *Span) SetStr(key, v string) *Span {
	return s.setAttr(spanAttr{key: key, str: v, isStr: true})
}

// SetInt records an integer attribute, replacing any prior value for
// key. It returns s for chaining.
func (s *Span) SetInt(key string, v int64) *Span {
	return s.setAttr(spanAttr{key: key, num: v})
}

func (s *Span) setAttr(a spanAttr) *Span {
	if s == nil {
		return nil
	}
	s.tree.mu.Lock()
	defer s.tree.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].key == a.key {
			s.attrs[i] = a
			return s
		}
	}
	s.attrs = append(s.attrs, a)
	return s
}

// IntAttr returns the value of an integer attribute, if set.
func (s *Span) IntAttr(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.tree.mu.Lock()
	defer s.tree.mu.Unlock()
	for _, a := range s.attrs {
		if a.key == key && !a.isStr {
			return a.num, true
		}
	}
	return 0, false
}

// StrAttr returns the value of a string attribute, if set.
func (s *Span) StrAttr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.tree.mu.Lock()
	defer s.tree.mu.Unlock()
	for _, a := range s.attrs {
		if a.key == key && a.isStr {
			return a.str, true
		}
	}
	return "", false
}

// Times returns the span's recorded start and end timestamps.
func (s *Span) Times() (start, end int64) {
	if s == nil {
		return 0, 0
	}
	s.tree.mu.Lock()
	defer s.tree.mu.Unlock()
	return s.start, s.end
}

// Finish stamps the span's end time. A second Finish is a no-op; an
// unfinished span renders with end == start.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.tree.mu.Lock()
	defer s.tree.mu.Unlock()
	if !s.endSet {
		s.end = s.tree.now()
		s.endSet = true
	}
}

// WriteJSON renders the tree with stable field ordering: one span per
// line in creation order, attributes sorted by key. The output carries
// no trailing newline so it can be embedded verbatim in a flight dump.
func (t *SpanTree) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{}")
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := fmt.Fprintf(w, "{\n\"trace_id\": %s,\n\"clock\": %s,\n\"spans\": [",
		jsonString(t.traceID), jsonString("logical")); err != nil {
		return err
	}
	for i, s := range t.spans {
		sep := ","
		if i == 0 {
			sep = ""
		}
		attrs := append([]spanAttr(nil), s.attrs...)
		sort.Slice(attrs, func(i, j int) bool { return attrs[i].key < attrs[j].key })
		var ab []byte
		for j, a := range attrs {
			if j > 0 {
				ab = append(ab, ", "...)
			}
			if a.isStr {
				ab = append(ab, fmt.Sprintf("%s: %s", jsonString(a.key), jsonString(a.str))...)
			} else {
				ab = append(ab, fmt.Sprintf("%s: %d", jsonString(a.key), a.num)...)
			}
		}
		if _, err := fmt.Fprintf(w, "%s\n{\"id\": %d, \"parent\": %d, \"name\": %s, \"start\": %d, \"end\": %d, \"attrs\": {%s}}",
			sep, s.id, s.parent, jsonString(s.name), s.start, s.end, ab); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n}")
	return err
}
