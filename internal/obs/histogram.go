package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of fixed log2 buckets: bucket 0 holds
// non-positive observations, bucket i (1 ≤ i ≤ 63) holds values whose
// bit length is i, i.e. the inclusive range [2^(i-1), 2^i − 1]. Bucket
// 63's upper bound is MaxInt64, so every int64 lands in exactly one
// bucket.
const histBuckets = 64

// Histogram is a fixed-bucket log2 histogram with exact counts. Like
// every obs instrument it measures abstract deterministic units
// (steps, cycles, queue slots — never wall-clock), is safe for
// concurrent use, and is inert when nil. The bucket layout is fixed at
// compile time so two runs of the same workload serialize to identical
// bytes.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps an observation to its bucket: 0 for v ≤ 0, else the
// bit length of v.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBound returns the inclusive upper bound of bucket i: 0, 1, 3,
// 7, …, MaxInt64.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramBucket is one non-empty bucket in a snapshot.
type HistogramBucket struct {
	// Bound is the bucket's inclusive upper bound.
	Bound int64
	// N is the exact (non-cumulative) count in this bucket.
	N int64
}

// Buckets returns the non-empty buckets in ascending bound order.
func (h *Histogram) Buckets() []HistogramBucket {
	if h == nil {
		return nil
	}
	var bs []HistogramBucket
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			bs = append(bs, HistogramBucket{Bound: BucketBound(i), N: n})
		}
	}
	return bs
}
