// Package obs is the observability layer: a deterministic metrics
// registry and a Chrome trace-event writer shared by the compile
// pipeline (internal/exp), the multi-threaded interpreter
// (internal/interp), and the cycle-level simulator (internal/sim).
//
// Every recorded value is deterministic: durations and timestamps are
// interpreter steps or simulator cycles, never wall-clock, so two runs of
// the same experiment produce byte-identical metrics and trace files —
// which is what lets the golden tests pin the output and lets a perf PR
// diff before/after artifacts without noise.
//
// All instruments are safe for concurrent use (the experiment engine
// records from its worker pool); counters and gauges are single atomic
// words, so recording on a hot path costs one uncontended atomic op.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count (instructions issued,
// values produced, phases run).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-or-max value (queue depth high-water mark, artifact
// size).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax raises the gauge to v if v is larger (high-water tracking).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates durations measured in abstract units (interpreter
// steps, simulator cycles — never wall-clock).
type Timer struct {
	count atomic.Int64
	total atomic.Int64
}

// Observe records one duration of d units.
func (t *Timer) Observe(d int64) {
	if t == nil {
		return
	}
	t.count.Add(1)
	t.total.Add(d)
}

// Count returns the number of observations.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the accumulated units.
func (t *Timer) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}

// Registry holds named metrics. Instruments are created on first use and
// identified by their full dotted name; concurrent lookups of the same
// name return the same instrument.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		timers:     map[string]*Timer{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the timer with the given name, creating it if needed.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Scope returns a view of the registry that prefixes every metric name
// with prefix + ".". A nil registry yields a nil scope, whose instruments
// are inert, so instrumented code needs no nil checks at record sites.
func (r *Registry) Scope(prefix string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{r: r, prefix: prefix}
}

// Scope is a name-prefixed view of a registry. The zero of *Scope (nil)
// is valid and records nothing.
type Scope struct {
	r      *Registry
	prefix string
}

func (s *Scope) name(n string) string {
	if s.prefix == "" {
		return n
	}
	return s.prefix + "." + n
}

// Counter returns the scoped counter (nil instrument on a nil scope).
func (s *Scope) Counter(n string) *Counter {
	if s == nil {
		return nil
	}
	return s.r.Counter(s.name(n))
}

// Gauge returns the scoped gauge (nil instrument on a nil scope).
func (s *Scope) Gauge(n string) *Gauge {
	if s == nil {
		return nil
	}
	return s.r.Gauge(s.name(n))
}

// Timer returns the scoped timer (nil instrument on a nil scope).
func (s *Scope) Timer(n string) *Timer {
	if s == nil {
		return nil
	}
	return s.r.Timer(s.name(n))
}

// Histogram returns the scoped histogram (nil instrument on a nil
// scope).
func (s *Scope) Histogram(n string) *Histogram {
	if s == nil {
		return nil
	}
	return s.r.Histogram(s.name(n))
}

// Child returns a sub-scope with prefix appended.
func (s *Scope) Child(prefix string) *Scope {
	if s == nil {
		return nil
	}
	return &Scope{r: s.r, prefix: s.name(prefix)}
}

// Metric is one exported measurement.
type Metric struct {
	Name string
	// Type is "counter", "gauge", "timer", or "histogram".
	Type string
	// Value is the count, gauge value, timer total, or histogram sum.
	Value int64
	// Count is the number of observations (timers and histograms).
	Count int64
	// Buckets holds the non-empty buckets (histograms only).
	Buckets []HistogramBucket
}

// Snapshot returns every metric sorted by (type, name) — a deterministic
// ordering independent of creation order.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.timers))
	for name, c := range r.counters {
		ms = append(ms, Metric{Name: name, Type: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		ms = append(ms, Metric{Name: name, Type: "gauge", Value: g.Value()})
	}
	for name, t := range r.timers {
		ms = append(ms, Metric{Name: name, Type: "timer", Value: t.Total(), Count: t.Count()})
	}
	for name, h := range r.histograms {
		ms = append(ms, Metric{Name: name, Type: "histogram", Value: h.Sum(), Count: h.Count(), Buckets: h.Buckets()})
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Name != ms[j].Name {
			return ms[i].Name < ms[j].Name
		}
		return ms[i].Type < ms[j].Type
	})
	return ms
}

// WriteJSON renders the registry with stable field ordering: one metric
// per line, sorted by name, fields always in the order name, type, value
// [, count]. The output is byte-identical across runs of a deterministic
// workload.
func (r *Registry) WriteJSON(w io.Writer) error {
	ms := r.Snapshot()
	if _, err := fmt.Fprintf(w, "{\n\"clock\": %s,\n\"metrics\": [",
		jsonString("deterministic (interpreter steps / simulator cycles)")); err != nil {
		return err
	}
	for i, m := range ms {
		sep := ","
		if i == 0 {
			sep = ""
		}
		var line string
		if m.Type == "histogram" {
			var bs []byte
			for i, b := range m.Buckets {
				if i > 0 {
					bs = append(bs, ',')
				}
				bs = append(bs, fmt.Sprintf("[%d,%d]", b.Bound, b.N)...)
			}
			line = fmt.Sprintf("%s\n{\"name\": %s, \"type\": %s, \"value\": %d, \"count\": %d, \"buckets\": [%s]}",
				sep, jsonString(m.Name), jsonString(m.Type), m.Value, m.Count, bs)
		} else if m.Type == "timer" {
			line = fmt.Sprintf("%s\n{\"name\": %s, \"type\": %s, \"value\": %d, \"count\": %d}",
				sep, jsonString(m.Name), jsonString(m.Type), m.Value, m.Count)
		} else {
			line = fmt.Sprintf("%s\n{\"name\": %s, \"type\": %s, \"value\": %d}",
				sep, jsonString(m.Name), jsonString(m.Type), m.Value)
		}
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n}\n")
	return err
}

// jsonString renders s as a JSON string literal (encoding/json escaping,
// so any name is safe).
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		panic(err)
	}
	return string(b)
}
