package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// DefaultTraceLimit bounds the number of timeline events a Trace buffers.
// Detailed per-cycle timelines (simulator stalls, queue occupancy) can
// reach hundreds of thousands of events on the reference inputs; beyond
// the limit events are dropped and counted, never silently discarded —
// the drop count appears in the written JSON's otherData and via
// Dropped().
const DefaultTraceLimit = 200_000

// Arg is one key/value pair attached to a trace event. Values are int64
// because every recorded quantity is a deterministic count.
type Arg struct {
	Key string
	Val int64
}

// A is shorthand for constructing an Arg.
func A(key string, val int64) Arg { return Arg{Key: key, Val: val} }

type laneKey struct{ pid, tid int }

type event struct {
	name, cat string
	ph        byte // 'X' complete, 'C' counter, 'i' instant, 's'/'f' flow
	ts, dur   int64
	pid, tid  int
	seq       int64
	id        int64 // flow-event binding id ('s'/'f' only)
	args      []Arg
}

// Trace buffers Chrome trace-event (about://tracing, Perfetto) events.
// Timestamps are abstract units — interpreter steps or simulator cycles —
// chosen by the instrumented code; the viewer renders them as
// microseconds, which only affects axis labels.
//
// Events are appended concurrently from the experiment engine's worker
// pool; WriteJSON orders them by (pid, tid, ts, sequence), which is
// deterministic because every lane is written by one logical sequence of
// phases.
type Trace struct {
	mu          sync.Mutex
	limit       int
	dropped     int64
	seq         int64
	events      []event
	lanes       map[laneKey]*Lane
	procNames   map[int]string
	threadNames map[laneKey]string
}

// NewTrace returns an empty trace with the default event limit.
func NewTrace() *Trace {
	return &Trace{
		limit:       DefaultTraceLimit,
		lanes:       map[laneKey]*Lane{},
		procNames:   map[int]string{},
		threadNames: map[laneKey]string{},
	}
}

// SetLimit replaces the event limit (<= 0 restores the default).
// Metadata (process and thread names) is never dropped.
func (t *Trace) SetLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 {
		n = DefaultTraceLimit
	}
	t.limit = n
}

// Dropped returns the number of events discarded over the limit.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of buffered timeline events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// ProcessName labels a pid in the viewer.
func (t *Trace) ProcessName(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procNames[pid] = name
}

// ThreadName labels a (pid, tid) lane in the viewer.
func (t *Trace) ThreadName(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.threadNames[laneKey{pid, tid}] = name
}

// Lane returns the (pid, tid) lane, creating it on first use. Repeated
// calls return the same lane, so its cursor survives across phases.
// A nil trace returns a nil lane, whose methods record nothing.
func (t *Trace) Lane(pid, tid int) *Lane {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := laneKey{pid, tid}
	l, ok := t.lanes[k]
	if !ok {
		l = &Lane{t: t, pid: pid, tid: tid}
		t.lanes[k] = l
	}
	return l
}

func (t *Trace) emit(e event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.seq++
	e.seq = t.seq
	sort.Slice(e.args, func(i, j int) bool { return e.args[i].Key < e.args[j].Key })
	t.events = append(t.events, e)
}

// Lane is one (pid, tid) track of the trace. The cursor supports
// self-clocked spans: each Span starts where the previous one on the
// lane ended, so pipeline phases with abstract durations tile the track.
// A nil lane records nothing.
type Lane struct {
	t        *Trace
	pid, tid int

	mu     sync.Mutex
	cursor int64
}

// Now returns the lane cursor (the end of the last self-clocked span).
func (l *Lane) Now() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cursor
}

// Span appends a complete event of the given abstract duration at the
// lane cursor and advances the cursor past it. It returns the span's
// start timestamp.
func (l *Lane) Span(name, cat string, dur int64, args ...Arg) int64 {
	if l == nil {
		return 0
	}
	if dur < 0 {
		dur = 0
	}
	l.mu.Lock()
	ts := l.cursor
	l.cursor += dur
	l.mu.Unlock()
	l.t.emit(event{name: name, cat: cat, ph: 'X', ts: ts, dur: dur, pid: l.pid, tid: l.tid, args: args})
	return ts
}

// SpanAt appends a complete event at an explicit timestamp (simulator
// cycle, interpreter step) without touching the cursor.
func (l *Lane) SpanAt(name, cat string, ts, dur int64, args ...Arg) {
	if l == nil {
		return
	}
	l.t.emit(event{name: name, cat: cat, ph: 'X', ts: ts, dur: dur, pid: l.pid, tid: l.tid, args: args})
}

// Counter appends a counter sample (rendered as a stacked area track).
func (l *Lane) Counter(name string, ts int64, series string, v int64) {
	if l == nil {
		return
	}
	l.t.emit(event{name: name, ph: 'C', ts: ts, pid: l.pid, tid: l.tid, args: []Arg{{series, v}}})
}

// Instant appends an instant event at an explicit timestamp.
func (l *Lane) Instant(name, cat string, ts int64, args ...Arg) {
	if l == nil {
		return
	}
	l.t.emit(event{name: name, cat: cat, ph: 'i', ts: ts, pid: l.pid, tid: l.tid, args: args})
}

// FlowStart appends a flow-start event ('s') at an explicit timestamp. A
// flow links two points of the trace — Perfetto draws an arrow from the
// start to the matching FlowEnd with the same id — and is how the
// simulator's produce→consume pairs are made visible across core lanes.
func (l *Lane) FlowStart(name, cat string, id, ts int64) {
	if l == nil {
		return
	}
	l.t.emit(event{name: name, cat: cat, ph: 's', ts: ts, pid: l.pid, tid: l.tid, id: id})
}

// FlowEnd appends the matching flow-finish event ('f', binding point
// "enclosing slice") for the FlowStart with the same id.
func (l *Lane) FlowEnd(name, cat string, id, ts int64) {
	if l == nil {
		return
	}
	l.t.emit(event{name: name, cat: cat, ph: 'f', ts: ts, pid: l.pid, tid: l.tid, id: id})
}

// RecordDrops surfaces the trace's drop tally as the "obs.dropped" counter
// in r, so metrics consumers see how many timeline events fell past the
// event limit without having to consult the trace file's otherData. Call it
// once, after the run and before serializing r; nil t or r records nothing.
func RecordDrops(t *Trace, r *Registry) {
	if t == nil || r == nil {
		return
	}
	r.Counter("obs.dropped").Add(t.Dropped())
}

// WriteJSON renders the trace in Chrome trace-event format: a JSON
// object with a traceEvents array that loads in chrome://tracing and
// Perfetto. Output is deterministic: metadata first (sorted by pid, tid),
// then timeline events sorted by (pid, tid, ts, seq), one event per line,
// fields always in the order name, cat, ph, ts, dur, pid, tid, args with
// args keys sorted.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "{\"traceEvents\": []}\n")
		return err
	}
	t.mu.Lock()
	events := make([]event, len(t.events))
	copy(events, t.events)
	dropped := t.dropped
	procs := make([]int, 0, len(t.procNames))
	for pid := range t.procNames {
		procs = append(procs, pid)
	}
	threads := make([]laneKey, 0, len(t.threadNames))
	for k := range t.threadNames {
		threads = append(threads, k)
	}
	procNames := t.procNames
	threadNames := t.threadNames
	t.mu.Unlock()

	sort.Ints(procs)
	sort.Slice(threads, func(i, j int) bool {
		if threads[i].pid != threads[j].pid {
			return threads[i].pid < threads[j].pid
		}
		return threads[i].tid < threads[j].tid
	})
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		return a.seq < b.seq
	})

	if _, err := fmt.Fprintf(w,
		"{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"clock\": %s, \"droppedEvents\": %d},\n\"traceEvents\": [",
		jsonString("deterministic (interpreter steps / simulator cycles)"), dropped); err != nil {
		return err
	}
	first := true
	line := func(format string, args ...any) error {
		sep := ","
		if first {
			sep = ""
			first = false
		}
		_, err := fmt.Fprintf(w, sep+"\n"+format, args...)
		return err
	}
	for _, pid := range procs {
		if err := line("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": 0, \"args\": {\"name\": %s}}",
			pid, jsonString(procNames[pid])); err != nil {
			return err
		}
	}
	for _, k := range threads {
		if err := line("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": %d, \"args\": {\"name\": %s}}",
			k.pid, k.tid, jsonString(threadNames[k])); err != nil {
			return err
		}
	}
	for _, e := range events {
		args := ""
		for i, a := range e.args {
			if i > 0 {
				args += ", "
			}
			args += fmt.Sprintf("%s: %d", jsonString(a.Key), a.Val)
		}
		var err error
		switch e.ph {
		case 'X':
			err = line("{\"name\": %s, \"cat\": %s, \"ph\": \"X\", \"ts\": %d, \"dur\": %d, \"pid\": %d, \"tid\": %d, \"args\": {%s}}",
				jsonString(e.name), jsonString(e.cat), e.ts, e.dur, e.pid, e.tid, args)
		case 'C':
			err = line("{\"name\": %s, \"ph\": \"C\", \"ts\": %d, \"pid\": %d, \"tid\": %d, \"args\": {%s}}",
				jsonString(e.name), e.ts, e.pid, e.tid, args)
		case 'i':
			err = line("{\"name\": %s, \"cat\": %s, \"ph\": \"i\", \"ts\": %d, \"pid\": %d, \"tid\": %d, \"s\": \"t\", \"args\": {%s}}",
				jsonString(e.name), jsonString(e.cat), e.ts, e.pid, e.tid, args)
		case 's':
			err = line("{\"name\": %s, \"cat\": %s, \"ph\": \"s\", \"id\": %d, \"ts\": %d, \"pid\": %d, \"tid\": %d, \"args\": {%s}}",
				jsonString(e.name), jsonString(e.cat), e.id, e.ts, e.pid, e.tid, args)
		case 'f':
			err = line("{\"name\": %s, \"cat\": %s, \"ph\": \"f\", \"bp\": \"e\", \"id\": %d, \"ts\": %d, \"pid\": %d, \"tid\": %d, \"args\": {%s}}",
				jsonString(e.name), jsonString(e.cat), e.id, e.ts, e.pid, e.tid, args)
		}
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n}\n")
	return err
}
