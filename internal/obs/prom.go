package obs

import (
	"fmt"
	"io"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm renders the registry in the Prometheus text exposition
// format: counters and gauges directly, timers as summaries (_sum and
// _count, no quantiles), histograms with cumulative le buckets ending
// in +Inf. Dotted metric names are sanitized to the Prometheus charset
// (serve.requests → serve_requests); the HELP line keeps the original
// name. Output is sorted and byte-stable for a given registry state.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, m := range r.Snapshot() {
		name := promName(m.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, m.Name); err != nil {
			return err
		}
		var err error
		switch m.Type {
		case "counter":
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, m.Value)
		case "gauge":
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, m.Value)
		case "timer":
			_, err = fmt.Fprintf(w, "# TYPE %s summary\n%s_sum %d\n%s_count %d\n",
				name, name, m.Value, name, m.Count)
		case "histogram":
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			cum := int64(0)
			for _, b := range m.Buckets {
				cum += b.N
				if _, err = fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Bound, cum); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				name, m.Count, name, m.Value, name, m.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// promName maps a dotted metric name onto the Prometheus name charset
// [a-zA-Z0-9_]: every other rune becomes '_', and a leading digit gets
// a '_' prefix.
func promName(s string) string {
	b := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			c = '_'
		}
		if i == 0 && c >= '0' && c <= '9' {
			b = append(b, '_')
		}
		b = append(b, c)
	}
	if len(b) == 0 {
		return "_"
	}
	return string(b)
}
