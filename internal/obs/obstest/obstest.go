// Package obstest provides test helpers for validating observability
// artifacts, shared by the obs unit tests and the experiment harness's
// golden-trace tests.
package obstest

import (
	"encoding/json"
	"testing"
)

// CheckTraceShape asserts raw is a schema-shaped Chrome trace-event file:
// a JSON object with a non-empty traceEvents array and a drop counter,
// every event carrying name/ph/pid/tid, phases drawn from the emitted set
// (M metadata, X complete, C counter, i instant, s/f flow), complete
// events with a non-negative duration, flow events with a binding id and
// every start matched by exactly one finish, and events time-ordered
// within each (pid, tid) lane — the properties Perfetto and
// chrome://tracing rely on.
func CheckTraceShape(t *testing.T, raw []byte) {
	t.Helper()
	var top struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		OtherData       struct {
			Clock         string `json:"clock"`
			DroppedEvents *int64 `json:"droppedEvents"`
		} `json:"otherData"`
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(top.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	if top.OtherData.DroppedEvents == nil {
		t.Error("otherData.droppedEvents missing")
	}
	lastTS := map[[2]float64]float64{}
	flowStarts := map[float64]int{}
	flowEnds := map[float64]int{}
	for i, e := range top.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, e)
			}
		}
		ph, _ := e["ph"].(string)
		switch ph {
		case "M":
			args, ok := e["args"].(map[string]any)
			if !ok || args["name"] == nil {
				t.Errorf("metadata event %d lacks args.name: %v", i, e)
			}
			continue
		case "X":
			if _, ok := e["ts"]; !ok {
				t.Errorf("complete event %d missing ts: %v", i, e)
			}
			if d, ok := e["dur"].(float64); !ok || d < 0 {
				t.Errorf("complete event %d has bad dur: %v", i, e)
			}
		case "C", "i":
			if _, ok := e["ts"]; !ok {
				t.Errorf("event %d missing ts: %v", i, e)
			}
		case "s", "f":
			if _, ok := e["ts"]; !ok {
				t.Errorf("flow event %d missing ts: %v", i, e)
			}
			id, ok := e["id"].(float64)
			if !ok {
				t.Errorf("flow event %d missing id: %v", i, e)
				continue
			}
			if ph == "s" {
				flowStarts[id]++
			} else {
				flowEnds[id]++
				if bp, _ := e["bp"].(string); bp != "e" {
					t.Errorf("flow finish %d lacks bp \"e\": %v", i, e)
				}
			}
		default:
			t.Errorf("event %d has unknown phase %q", i, ph)
			continue
		}
		pid, _ := e["pid"].(float64)
		tid, _ := e["tid"].(float64)
		ts, _ := e["ts"].(float64)
		lane := [2]float64{pid, tid}
		if prev, ok := lastTS[lane]; ok && ts < prev {
			t.Errorf("event %d out of order within lane %v: ts %v after %v", i, lane, ts, prev)
		}
		lastTS[lane] = ts
	}
	for id, n := range flowStarts {
		if flowEnds[id] != n {
			t.Errorf("flow id %v has %d starts but %d finishes", id, n, flowEnds[id])
		}
	}
	for id, n := range flowEnds {
		if _, ok := flowStarts[id]; !ok {
			t.Errorf("flow id %v has %d finishes but no start", id, n)
		}
	}
}
