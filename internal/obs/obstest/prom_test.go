package obstest

import (
	"os"
	"testing"
)

func TestParsePromAccepts(t *testing.T) {
	raw := []byte(`# HELP reqs total requests
# TYPE reqs counter
reqs 7
# TYPE depth gauge
depth{queue="main",kind="compute"} 3
# TYPE lat summary
lat_sum 150
lat_count 2
# TYPE hist histogram
hist_bucket{le="1"} 2
hist_bucket{le="7"} 4
hist_bucket{le="+Inf"} 5
hist_sum 23
hist_count 5
`)
	fams, err := ParseProm(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 4 {
		t.Fatalf("got %d families, want 4", len(fams))
	}
	if s := fams["depth"].Samples[0]; s.Labels["queue"] != "main" || s.Labels["kind"] != "compute" {
		t.Errorf("labels = %v", s.Labels)
	}
	if got := len(fams["hist"].Samples); got != 5 {
		t.Errorf("hist has %d samples, want 5", got)
	}
}

func TestParsePromRejects(t *testing.T) {
	cases := map[string]string{
		"unknown type":          "# TYPE x widget\nx 1\n",
		"duplicate TYPE":        "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"orphan sample":         "nobody_declared_me 4\n",
		"duplicate sample":      "# TYPE x counter\nx 1\nx 2\n",
		"non-float value":       "# TYPE x counter\nx banana\n",
		"bare histogram sample": "# TYPE h histogram\nh 3\nh_bucket{le=\"+Inf\"} 0\nh_count 0\n",
		"bucket without le":     "# TYPE h histogram\nh_bucket 3\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"missing +Inf":          "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"missing _count":        "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
		"+Inf != count":         "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
		"decreasing cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"unsorted bounds":       "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"unquoted label":        "# TYPE x counter\nx{a=b} 1\n",
		"unbalanced braces":     "# TYPE x counter\nx{a=\"b\" 1\n",
	}
	for name, raw := range cases {
		if _, err := ParseProm([]byte(raw)); err == nil {
			t.Errorf("%s: ParseProm accepted:\n%s", name, raw)
		}
	}
}

// TestPromScrapeFile validates a scrape captured by the CI smoke job:
// PROM_SCRAPE names a file holding the raw body of GET /metrics. Skipped
// when the variable is unset, so the ordinary test run is unaffected.
func TestPromScrapeFile(t *testing.T) {
	path := os.Getenv("PROM_SCRAPE")
	if path == "" {
		t.Skip("PROM_SCRAPE not set; this test validates a CI scrape")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fams := CheckProm(t, raw)
	for _, name := range []string{"serve_requests", "serve_admission_queue_depth"} {
		if fams[name] == nil {
			t.Errorf("scrape lacks expected family %q", name)
		}
	}
}
