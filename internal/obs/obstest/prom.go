package obstest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// PromSample is one sample line of a Prometheus text-format exposition.
type PromSample struct {
	// Name is the sample's metric name (may carry a _sum/_count/_bucket
	// suffix relative to its family).
	Name string
	// Labels holds the sample's label pairs.
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// PromFamily is one TYPE-declared metric family and its samples in file
// order.
type PromFamily struct {
	Name    string
	Type    string
	Samples []PromSample
}

// ParseProm is a minimal Prometheus text-format (version 0.0.4) parser,
// strict enough to validate a /metrics scrape: every sample must belong
// to a declared family (exact name for counters/gauges, _sum/_count for
// summaries and histograms, _bucket with an le label for histograms),
// histogram buckets must be cumulative and non-decreasing with a +Inf
// bucket equal to _count, and no two samples may repeat the same name
// and label set. Families are returned keyed by name.
func ParseProm(raw []byte) (map[string]*PromFamily, error) {
	families := map[string]*PromFamily{}
	seen := map[string]bool{}
	for ln, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				continue // bare comment
			}
			switch fields[1] {
			case "HELP":
				continue
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line: %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, ok := families[name]; ok {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				families[name] = &PromFamily{Name: name, Type: typ}
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		key := s.Name + "{" + labelKey(s.Labels) + "}"
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seen[key] = true
		fam := familyFor(families, s)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q belongs to no declared family", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	for _, fam := range families {
		if err := checkFamily(fam); err != nil {
			return nil, err
		}
	}
	return families, nil
}

// CheckProm fails the test unless raw is a valid, non-empty exposition.
func CheckProm(t testing.TB, raw []byte) map[string]*PromFamily {
	t.Helper()
	fams, err := ParseProm(raw)
	if err != nil {
		t.Fatalf("prometheus exposition does not parse: %v", err)
	}
	if len(fams) == 0 {
		t.Fatal("prometheus exposition declares no metric families")
	}
	return fams
}

func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return s, fmt.Errorf("unbalanced braces: %q", line)
		}
		s.Name = line[:i]
		for _, pair := range splitLabels(line[i+1 : j]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return s, fmt.Errorf("malformed label %q", pair)
			}
			val := strings.TrimSpace(pair[eq+1:])
			uq, err := strconv.Unquote(val)
			if err != nil {
				return s, fmt.Errorf("label value %q is not a quoted string", val)
			}
			s.Labels[strings.TrimSpace(pair[:eq])] = uq
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return s, fmt.Errorf("sample needs a name and a value: %q", line)
		}
		s.Name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("sample needs a value: %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample value %q is not a float", fields[0])
	}
	s.Value = v
	if s.Name == "" {
		return s, fmt.Errorf("sample has empty name: %q", line)
	}
	return s, nil
}

// splitLabels splits a{..} label body on commas outside quotes.
func splitLabels(body string) []string {
	var out []string
	var cur strings.Builder
	inq := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case c == '\\' && inq && i+1 < len(body):
			cur.WriteByte(c)
			i++
			cur.WriteByte(body[i])
		case c == '"':
			inq = !inq
			cur.WriteByte(c)
		case c == ',' && !inq:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	return out
}

func familyFor(families map[string]*PromFamily, s PromSample) *PromFamily {
	if fam, ok := families[s.Name]; ok {
		if fam.Type == "histogram" || fam.Type == "summary" {
			return nil // bare sample not valid for these types
		}
		return fam
	}
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		base := strings.TrimSuffix(s.Name, suffix)
		if base == s.Name {
			continue
		}
		fam, ok := families[base]
		if !ok {
			continue
		}
		switch fam.Type {
		case "histogram":
			if suffix == "_bucket" {
				if _, ok := s.Labels["le"]; !ok {
					return nil
				}
			}
			return fam
		case "summary":
			if suffix != "_bucket" {
				return fam
			}
		}
	}
	return nil
}

func checkFamily(fam *PromFamily) error {
	if fam.Type != "histogram" {
		return nil
	}
	var count float64
	haveCount := false
	var prev float64
	var prevLe float64
	havePrev := false
	haveInf := false
	var infVal float64
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_count":
			count, haveCount = s.Value, true
		case fam.Name + "_bucket":
			le := s.Labels["le"]
			if le == "+Inf" {
				haveInf = true
				infVal = s.Value
				continue
			}
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("histogram %s: bucket le %q is not a float", fam.Name, le)
			}
			if havePrev {
				if b <= prevLe {
					return fmt.Errorf("histogram %s: bucket bounds not increasing (%v after %v)", fam.Name, b, prevLe)
				}
				if s.Value < prev {
					return fmt.Errorf("histogram %s: cumulative counts decrease (%v after %v)", fam.Name, s.Value, prev)
				}
			}
			prev, prevLe, havePrev = s.Value, b, true
		}
	}
	if !haveInf {
		return fmt.Errorf("histogram %s: missing +Inf bucket", fam.Name)
	}
	if !haveCount {
		return fmt.Errorf("histogram %s: missing _count", fam.Name)
	}
	if infVal != count {
		return fmt.Errorf("histogram %s: +Inf bucket (%v) != _count (%v)", fam.Name, infVal, count)
	}
	if havePrev && prev > infVal {
		return fmt.Errorf("histogram %s: finite bucket (%v) exceeds +Inf (%v)", fam.Name, prev, infVal)
	}
	return nil
}

// labelKey renders labels in sorted order for duplicate detection.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}
