package mincut

// Pair is one source–sink commodity of a multicut problem: the cut must
// disconnect every pair's source from its sink.
type Pair struct{ S, T int }

// MultiCutResult reports the arcs chosen by the multicut heuristic and
// their total original cost.
type MultiCutResult struct {
	Arcs []ArcID
	Cost int64
}

// MultiCut approximates the NP-hard minimum multicut with the paper's
// heuristic (Section 3.1.3): the optimal single-pair algorithm is applied to
// each source–sink pair in turn, and arcs cut for one pair are removed from
// the graph so they help disconnect subsequent pairs. Cuts are extracted on
// the sink side, pushing synchronization as late as possible so downstream
// pairs share it.
//
// The graph is mutated (flows and removed arcs); callers that need it again
// must rebuild it. Pairs already disconnected (max-flow 0) contribute no
// arcs.
func MultiCut(g *Graph, pairs []Pair) MultiCutResult {
	var res MultiCutResult
	for _, p := range pairs {
		g.Reset()
		if g.MaxFlowAuto(p.S, p.T) == 0 {
			continue // already disconnected by earlier cuts
		}
		cut := g.MinCutSinkSide(p.T)
		for _, id := range cut {
			res.Cost += g.ArcCap(id)
			g.RemoveArc(id)
		}
		res.Arcs = append(res.Arcs, cut...)
	}
	return res
}

// MultiCutIndependent is the ablation baseline: each pair is cut
// independently with no sharing (arcs are not removed between pairs), as if
// every memory dependence required its own synchronization. Duplicate arcs
// across pairs are reported once but costed once per pair, modelling
// per-dependence synchronization instructions.
func MultiCutIndependent(g *Graph, pairs []Pair) MultiCutResult {
	var res MultiCutResult
	seen := map[ArcID]bool{}
	for _, p := range pairs {
		g.Reset()
		if g.MaxFlowAuto(p.S, p.T) == 0 {
			continue
		}
		cut := g.MinCutSinkSide(p.T)
		for _, id := range cut {
			res.Cost += g.ArcCap(id)
			if !seen[id] {
				seen[id] = true
				res.Arcs = append(res.Arcs, id)
			}
		}
	}
	return res
}
