// Package mincut implements the graph minimum-cut machinery behind COCO's
// communication placement: max-flow via Edmonds–Karp (the algorithm the
// paper's implementation uses, Section 4), Dinic, and FIFO push-relabel —
// with size-based auto-selection between them (MaxFlowAuto) — min-cut arc
// extraction from either side of the flow, and the successive-pair
// heuristic for the NP-hard multiple source–sink ("multicut") problem of
// Section 3.1.3. All engines yield identical cut extractions because the
// canonical minimum cuts are unique properties of the network.
package mincut

import "math"

// Inf is the capacity used for arcs that must never participate in a cut
// (the paper sets these costs "to infinity"). It is large enough to dominate
// any realistic profile weight while leaving headroom against overflow.
const Inf int64 = math.MaxInt64 / 8

// ArcID identifies an arc returned by AddArc.
type ArcID int

type arc struct {
	to   int
	cap  int64 // residual capacity
	orig int64 // original capacity
}

// Graph is a directed flow network. Nodes are dense integers [0, n).
type Graph struct {
	n    int
	arcs []arc // arcs[2k] is the k-th forward arc, arcs[2k+1] its residual twin
	adj  [][]int32
}

// New returns an empty flow network with n nodes.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]int32, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// AddArc adds a directed arc with the given capacity and returns its ID.
func (g *Graph) AddArc(from, to int, capacity int64) ArcID {
	id := ArcID(len(g.arcs) / 2)
	g.adj[from] = append(g.adj[from], int32(len(g.arcs)))
	g.arcs = append(g.arcs, arc{to: to, cap: capacity, orig: capacity})
	g.adj[to] = append(g.adj[to], int32(len(g.arcs)))
	g.arcs = append(g.arcs, arc{to: from, cap: 0, orig: 0})
	return id
}

// ArcEnds returns the endpoints of an arc.
func (g *Graph) ArcEnds(id ArcID) (from, to int) {
	return g.arcs[2*int(id)+1].to, g.arcs[2*int(id)].to
}

// ArcCap returns the arc's original capacity.
func (g *Graph) ArcCap(id ArcID) int64 { return g.arcs[2*int(id)].orig }

// Flow returns the flow currently routed through the arc.
func (g *Graph) Flow(id ArcID) int64 {
	a := g.arcs[2*int(id)]
	return a.orig - a.cap
}

// Reset zeroes all flow, restoring original capacities.
func (g *Graph) Reset() {
	for i := range g.arcs {
		g.arcs[i].cap = g.arcs[i].orig
	}
}

// RemoveArc deletes an arc from the network (capacity zero in both
// directions). Used by the multicut heuristic after an arc is chosen.
func (g *Graph) RemoveArc(id ArcID) {
	g.arcs[2*int(id)].cap = 0
	g.arcs[2*int(id)].orig = 0
	g.arcs[2*int(id)+1].cap = 0
	g.arcs[2*int(id)+1].orig = 0
}

// MaxFlow computes the maximum s→t flow with Edmonds–Karp (BFS augmenting
// paths): O(V·E²) worst case, fast in practice on CFG-shaped graphs.
func (g *Graph) MaxFlow(s, t int) int64 {
	var total int64
	parent := make([]int32, g.n) // arc index used to reach node, -1 unset
	for {
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = -2
		queue := []int{s}
		for len(queue) > 0 && parent[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for _, ai := range g.adj[u] {
				a := &g.arcs[ai]
				if a.cap > 0 && parent[a.to] == -1 {
					parent[a.to] = ai
					queue = append(queue, int(a.to))
				}
			}
		}
		if parent[t] == -1 {
			return total
		}
		// Find bottleneck.
		bottleneck := Inf * 4
		for v := t; v != s; {
			ai := parent[v]
			if c := g.arcs[ai].cap; c < bottleneck {
				bottleneck = c
			}
			v = g.arcs[ai^1].to
		}
		for v := t; v != s; {
			ai := parent[v]
			g.arcs[ai].cap -= bottleneck
			g.arcs[ai^1].cap += bottleneck
			v = g.arcs[ai^1].to
		}
		total += bottleneck
	}
}

// MaxFlowDinic computes the maximum flow with Dinic's algorithm: O(V²·E)
// worst case but near-linear on the shallow graphs min-cut placement
// produces.
func (g *Graph) MaxFlowDinic(s, t int) int64 {
	var total int64
	level := make([]int32, g.n)
	iter := make([]int, g.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, ai := range g.adj[u] {
				a := &g.arcs[ai]
				if a.cap > 0 && level[a.to] == -1 {
					level[a.to] = level[u] + 1
					queue = append(queue, int(a.to))
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u int, f int64) int64
	dfs = func(u int, f int64) int64 {
		if u == t {
			return f
		}
		for ; iter[u] < len(g.adj[u]); iter[u]++ {
			ai := g.adj[u][iter[u]]
			a := &g.arcs[ai]
			if a.cap <= 0 || level[a.to] != level[u]+1 {
				continue
			}
			d := f
			if a.cap < d {
				d = a.cap
			}
			if got := dfs(int(a.to), d); got > 0 {
				a.cap -= got
				g.arcs[ai^1].cap += got
				return got
			}
		}
		return 0
	}

	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, Inf*4)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

// MaxFlowPushRelabel computes the maximum flow with the FIFO push-relabel
// algorithm (current-arc pointers and the gap heuristic): O(V³) worst
// case, the strongest practical engine on large dense networks where
// Dinic's repeated global BFS phases dominate. The algorithm is run to
// completion — labels may climb to 2V−1, so stranded excess drains back
// to the source — which turns the preflow into a genuine maximum flow:
// per-arc Flow values and the residual graph are exactly as valid for
// min-cut extraction as after MaxFlow or MaxFlowDinic, and the canonical
// source-side/sink-side cuts are identical (minimum cuts are determined
// by the network, not by which engine found the flow).
func (g *Graph) MaxFlowPushRelabel(s, t int) int64 {
	if s == t {
		return 0
	}
	n := g.n
	height := make([]int, n)
	excess := make([]int64, n)
	count := make([]int32, 2*n+1) // nodes per height, for the gap heuristic
	iter := make([]int, n)        // current-arc pointer per node
	queue := make([]int, 0, n)    // FIFO of active nodes (excess>0, not s/t)
	inQueue := make([]bool, n)
	enq := func(u int) {
		if !inQueue[u] && u != s && u != t {
			inQueue[u] = true
			queue = append(queue, u)
		}
	}

	height[s] = n
	count[0] = int32(n - 1)
	count[n]++
	for _, ai := range g.adj[s] {
		a := &g.arcs[ai]
		if a.cap > 0 && int(a.to) != s {
			d := a.cap
			a.cap = 0
			g.arcs[ai^1].cap += d
			excess[a.to] += d
			enq(int(a.to))
		}
	}

	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		for excess[u] > 0 {
			if iter[u] == len(g.adj[u]) {
				// Relabel: lift u just above its lowest residual neighbor.
				iter[u] = 0
				oldH := height[u]
				minH := 2 * n
				for _, ai := range g.adj[u] {
					a := &g.arcs[ai]
					if a.cap > 0 && height[a.to] < minH {
						minH = height[a.to]
					}
				}
				if minH >= 2*n {
					break // no residual arc at all; cannot happen with excess
				}
				count[oldH]--
				height[u] = minH + 1
				count[minH+1]++
				// Gap heuristic: if level oldH < n just emptied, no node
				// above it (below n) can reach t anymore; lift them past n
				// so their excess heads straight back to the source.
				if count[oldH] == 0 && oldH < n {
					for v := 0; v < n; v++ {
						if v != s && height[v] > oldH && height[v] < n {
							count[height[v]]--
							height[v] = n + 1
							count[n+1]++
							iter[v] = 0
						}
					}
				}
				continue
			}
			ai := g.adj[u][iter[u]]
			a := &g.arcs[ai]
			if a.cap > 0 && height[u] == height[a.to]+1 {
				d := excess[u]
				if a.cap < d {
					d = a.cap
				}
				a.cap -= d
				g.arcs[ai^1].cap += d
				excess[u] -= d
				excess[a.to] += d
				enq(int(a.to))
			} else {
				iter[u]++
			}
		}
	}
	return excess[t]
}

// Auto-selection thresholds (arc counts), calibrated against the pipeline
// benchmarks: Edmonds–Karp's tiny constant factor wins on the small
// CFG-shaped networks COCO emits per dependence, Dinic takes the middle
// range, and push-relabel the large dense end.
const (
	autoEKMaxArcs    = 256
	autoDinicMaxArcs = 8192
)

// MaxFlowAuto computes the maximum flow with an engine picked by graph
// size. All three engines produce the same flow value and — because the
// canonical source-side and sink-side minimum cuts are unique properties
// of the network — identical cut extractions, so selection never changes
// a placement, only how fast it is found.
func (g *Graph) MaxFlowAuto(s, t int) int64 {
	m := len(g.arcs) / 2
	switch {
	case m <= autoEKMaxArcs:
		return g.MaxFlow(s, t)
	case m <= autoDinicMaxArcs:
		return g.MaxFlowDinic(s, t)
	default:
		return g.MaxFlowPushRelabel(s, t)
	}
}

// reachable returns the set of nodes reachable from start over arcs with
// residual capacity, following forward residual arcs if fwd, or arcs with
// residual capacity *into* the frontier if traversing backwards from the
// sink.
func (g *Graph) residualReach(start int, backwards bool) []bool {
	seen := make([]bool, g.n)
	seen[start] = true
	stack := []int{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ai := range g.adj[u] {
			var ok bool
			var v int
			if !backwards {
				// u -> v traversable if residual capacity remains.
				ok = g.arcs[ai].cap > 0
				v = int(g.arcs[ai].to)
			} else {
				// v -> u traversable if the arc v->u has residual
				// capacity; that arc's residual twin hangs off u.
				ok = g.arcs[ai^1].cap > 0
				v = int(g.arcs[ai].to)
			}
			if ok && !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// MinCutSourceSide returns, after MaxFlow/MaxFlowDinic, the arcs of the
// minimum cut closest to the source: arcs leaving the residual-reachable
// set of s. For register communication this is the "earliest" placement,
// which pipelines values to the consumer as soon as possible (Section 5's
// pipelining discussion).
func (g *Graph) MinCutSourceSide(s int) []ArcID {
	seen := g.residualReach(s, false)
	return g.crossingArcs(seen)
}

// MinCutSinkSide returns the minimum cut closest to the sink: arcs entering
// the set of nodes that can still reach t in the residual graph. Pushing
// cuts late maximizes sharing between source–sink pairs, which is what the
// memory multicut heuristic wants.
func (g *Graph) MinCutSinkSide(t int) []ArcID {
	canReachT := g.residualReach(t, true)
	// Source side = complement of canReachT.
	seen := make([]bool, g.n)
	for i := range seen {
		seen[i] = !canReachT[i]
	}
	return g.crossingArcs(seen)
}

// crossingArcs returns the saturated forward arcs from the set to its
// complement.
func (g *Graph) crossingArcs(inSet []bool) []ArcID {
	var out []ArcID
	for k := 0; k < len(g.arcs)/2; k++ {
		fwd := g.arcs[2*k]
		from := g.arcs[2*k+1].to
		if fwd.orig > 0 && inSet[from] && !inSet[fwd.to] {
			out = append(out, ArcID(k))
		}
	}
	return out
}

// CutCost sums the original capacities of the given arcs.
func (g *Graph) CutCost(ids []ArcID) int64 {
	var c int64
	for _, id := range ids {
		c += g.ArcCap(id)
	}
	return c
}
