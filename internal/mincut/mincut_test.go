package mincut

import (
	"math/rand"
	"testing"
)

func TestMaxFlowClassic(t *testing.T) {
	// CLRS-style network; max flow 23.
	g := New(6)
	g.AddArc(0, 1, 16)
	g.AddArc(0, 2, 13)
	g.AddArc(1, 2, 10)
	g.AddArc(2, 1, 4)
	g.AddArc(1, 3, 12)
	g.AddArc(3, 2, 9)
	g.AddArc(2, 4, 14)
	g.AddArc(4, 3, 7)
	g.AddArc(3, 5, 20)
	g.AddArc(4, 5, 4)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Errorf("Edmonds-Karp MaxFlow = %d, want 23", got)
	}
	g.Reset()
	if got := g.MaxFlowDinic(0, 5); got != 23 {
		t.Errorf("Dinic MaxFlow = %d, want 23", got)
	}
}

func TestMinCutExtraction(t *testing.T) {
	// Chain with a cheap middle arc: s -10-> a -3-> b -10-> t.
	g := New(4)
	g.AddArc(0, 1, 10)
	mid := g.AddArc(1, 2, 3)
	g.AddArc(2, 3, 10)
	if got := g.MaxFlow(0, 3); got != 3 {
		t.Fatalf("MaxFlow = %d, want 3", got)
	}
	for _, side := range []struct {
		name string
		cut  []ArcID
	}{
		{"source", g.MinCutSourceSide(0)},
		{"sink", g.MinCutSinkSide(3)},
	} {
		if len(side.cut) != 1 || side.cut[0] != mid {
			t.Errorf("%s-side cut = %v, want [%d]", side.name, side.cut, mid)
		}
	}
	if got := g.CutCost([]ArcID{mid}); got != 3 {
		t.Errorf("CutCost = %d, want 3", got)
	}
}

func TestSourceVsSinkSideCuts(t *testing.T) {
	// Two equal-cost cuts: s -5-> a -5-> t. Source side picks the first
	// arc, sink side the second.
	g := New(3)
	first := g.AddArc(0, 1, 5)
	second := g.AddArc(1, 2, 5)
	g.MaxFlow(0, 2)
	src := g.MinCutSourceSide(0)
	if len(src) != 1 || src[0] != first {
		t.Errorf("source-side cut = %v, want [%d]", src, first)
	}
	snk := g.MinCutSinkSide(2)
	if len(snk) != 1 || snk[0] != second {
		t.Errorf("sink-side cut = %v, want [%d]", snk, second)
	}
}

func TestInfiniteArcsNeverCut(t *testing.T) {
	// s -Inf-> a -7-> b -Inf-> t: only the finite arc can be cut.
	g := New(4)
	g.AddArc(0, 1, Inf)
	fin := g.AddArc(1, 2, 7)
	g.AddArc(2, 3, Inf)
	if got := g.MaxFlow(0, 3); got != 7 {
		t.Fatalf("MaxFlow = %d, want 7", got)
	}
	cut := g.MinCutSourceSide(0)
	if len(cut) != 1 || cut[0] != fin {
		t.Errorf("cut = %v, want only the finite arc", cut)
	}
}

func TestMultiCutSharesArcs(t *testing.T) {
	// Two pairs whose paths share a late arc:
	//   d -> m -> x -> k1
	//   g -> x (via m? no: g -> x directly)  ... layout:
	//   0(d) -> 2(m) -12-> 3(x) ; 1(g) -8-> 3(x) ; 3 -8-> 4 ; 4 -> sinks
	// Pair (0,5) and pair (1,6), both routed through arc 3->4.
	g := New(7)
	g.AddArc(0, 2, 12)
	g.AddArc(2, 3, 12)
	g.AddArc(1, 3, 8)
	shared := g.AddArc(3, 4, 8)
	g.AddArc(4, 5, Inf)
	g.AddArc(4, 6, Inf)
	res := MultiCut(g, []Pair{{0, 5}, {1, 6}})
	if res.Cost != 8 {
		t.Errorf("MultiCut cost = %d, want 8 (shared arc)", res.Cost)
	}
	if len(res.Arcs) != 1 || res.Arcs[0] != shared {
		t.Errorf("MultiCut arcs = %v, want [%d]", res.Arcs, shared)
	}
}

func TestMultiCutIndependentDoesNotShare(t *testing.T) {
	g := New(7)
	g.AddArc(0, 2, 12)
	g.AddArc(2, 3, 12)
	g.AddArc(1, 3, 8)
	g.AddArc(3, 4, 8)
	g.AddArc(4, 5, Inf)
	g.AddArc(4, 6, Inf)
	res := MultiCutIndependent(g, []Pair{{0, 5}, {1, 6}})
	if res.Cost != 16 {
		t.Errorf("independent cost = %d, want 16 (8 per pair)", res.Cost)
	}
}

func TestMultiCutAlreadyDisconnected(t *testing.T) {
	g := New(4)
	g.AddArc(0, 1, 5)
	// Node 2,3 disconnected from 0.
	g.AddArc(2, 3, 5)
	res := MultiCut(g, []Pair{{0, 3}})
	if res.Cost != 0 || len(res.Arcs) != 0 {
		t.Errorf("disconnected pair produced cut %v cost %d", res.Arcs, res.Cost)
	}
}

// TestEdmondsKarpAgreesWithDinicRandom cross-checks the two max-flow
// implementations on random graphs.
func TestEdmondsKarpAgreesWithDinicRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(12)
		g := New(n)
		h := New(n)
		arcs := 2 * n
		for i := 0; i < arcs; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from == to {
				continue
			}
			c := int64(1 + rng.Intn(20))
			g.AddArc(from, to, c)
			h.AddArc(from, to, c)
		}
		fg := g.MaxFlow(0, n-1)
		fh := h.MaxFlowDinic(0, n-1)
		if fg != fh {
			t.Fatalf("trial %d: Edmonds-Karp=%d Dinic=%d", trial, fg, fh)
		}
		// Min-cut duality: cut cost equals flow value.
		if fg > 0 {
			cut := g.MinCutSourceSide(0)
			if got := g.CutCost(cut); got != fg {
				t.Fatalf("trial %d: cut cost %d != flow %d", trial, got, fg)
			}
			snk := g.MinCutSinkSide(n - 1)
			if got := g.CutCost(snk); got != fg {
				t.Fatalf("trial %d: sink cut cost %d != flow %d", trial, got, fg)
			}
		}
	}
}

// TestCutDisconnects verifies that removing the extracted cut arcs actually
// disconnects source from sink on random graphs.
func TestCutDisconnects(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(10)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from != to {
				g.AddArc(from, to, int64(1+rng.Intn(9)))
			}
		}
		if g.MaxFlow(0, n-1) == 0 {
			continue
		}
		for _, id := range g.MinCutSinkSide(n - 1) {
			g.RemoveArc(id)
		}
		g.Reset()
		if f := g.MaxFlow(0, n-1); f != 0 {
			t.Fatalf("trial %d: flow %d remains after removing cut", trial, f)
		}
	}
}

func TestArcAccessors(t *testing.T) {
	g := New(3)
	id := g.AddArc(0, 2, 9)
	from, to := g.ArcEnds(id)
	if from != 0 || to != 2 {
		t.Errorf("ArcEnds = (%d,%d), want (0,2)", from, to)
	}
	if g.ArcCap(id) != 9 {
		t.Errorf("ArcCap = %d, want 9", g.ArcCap(id))
	}
	g.MaxFlow(0, 2)
	if g.Flow(id) != 9 {
		t.Errorf("Flow = %d, want 9", g.Flow(id))
	}
	g.Reset()
	if g.Flow(id) != 0 {
		t.Errorf("Flow after Reset = %d, want 0", g.Flow(id))
	}
}
