package mincut_test

import (
	"math/rand"
	"testing"

	"repro/internal/mincut"
)

// randomNetwork builds a pseudo-random layered flow network resembling the
// CFG-shaped graphs COCO produces: a source layer, several middle layers
// with forward and skip arcs, and a sink. The same seed yields the same
// network, so two independent copies can be max-flowed with different
// algorithms.
func randomNetwork(seed int64) (g *mincut.Graph, s, t int) {
	rng := rand.New(rand.NewSource(seed))
	layers := 3 + rng.Intn(4)
	width := 2 + rng.Intn(4)
	n := layers*width + 2
	g = mincut.New(n)
	s, t = n-2, n-1
	node := func(l, i int) int { return l*width + i }
	for i := 0; i < width; i++ {
		g.AddArc(s, node(0, i), int64(1+rng.Intn(50)))
		g.AddArc(node(layers-1, i), t, int64(1+rng.Intn(50)))
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				if rng.Intn(3) == 0 {
					continue // sparsify
				}
				g.AddArc(node(l, i), node(l+1, j), int64(1+rng.Intn(50)))
			}
			// Occasional skip arc and back arc, as control-flow joins
			// and loop shapes produce.
			if l+2 < layers && rng.Intn(4) == 0 {
				g.AddArc(node(l, i), node(l+2, rng.Intn(width)), int64(1+rng.Intn(50)))
			}
			if l > 0 && rng.Intn(6) == 0 {
				g.AddArc(node(l, i), node(l-1, rng.Intn(width)), int64(1+rng.Intn(50)))
			}
		}
	}
	return g, s, t
}

// TestDinicEquivalentToEdmondsKarp checks, over many random networks, that
// the two max-flow engines agree on the flow value and on both canonical
// minimum cuts. The source-side (sink-side) cut is the unique minimal
// (maximal) minimum cut, determined by the network alone and not by which
// maximum flow the algorithm found — the property that lets Dinic replace
// Edmonds–Karp as the default without changing any COCO placement.
func TestDinicEquivalentToEdmondsKarp(t *testing.T) {
	trials := 300
	if testing.Short() {
		trials = 60
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		ek, s, tt := randomNetwork(seed)
		dn, _, _ := randomNetwork(seed)

		fEK := ek.MaxFlow(s, tt)
		fDN := dn.MaxFlowDinic(s, tt)
		if fEK != fDN {
			t.Fatalf("seed %d: flow EK %d, Dinic %d", seed, fEK, fDN)
		}

		srcEK, srcDN := ek.MinCutSourceSide(s), dn.MinCutSourceSide(s)
		if !sameArcs(srcEK, srcDN) {
			t.Fatalf("seed %d: source-side cut differs: EK %v, Dinic %v", seed, srcEK, srcDN)
		}
		snkEK, snkDN := ek.MinCutSinkSide(tt), dn.MinCutSinkSide(tt)
		if !sameArcs(snkEK, snkDN) {
			t.Fatalf("seed %d: sink-side cut differs: EK %v, Dinic %v", seed, snkEK, snkDN)
		}

		if c := ek.CutCost(srcEK); c != fEK {
			t.Fatalf("seed %d: source cut cost %d != flow %d", seed, c, fEK)
		}
		if c := dn.CutCost(snkDN); c != fDN {
			t.Fatalf("seed %d: sink cut cost %d != flow %d", seed, c, fDN)
		}
	}
}

func sameArcs(a, b []mincut.ArcID) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[mincut.ArcID]bool{}
	for _, id := range a {
		seen[id] = true
	}
	for _, id := range b {
		if !seen[id] {
			return false
		}
	}
	return true
}
