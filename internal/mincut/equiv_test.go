package mincut_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mincut"
)

// randomNetwork builds a pseudo-random layered flow network resembling the
// CFG-shaped graphs COCO produces: a source layer, several middle layers
// with forward and skip arcs, and a sink. The same seed yields the same
// network, so two independent copies can be max-flowed with different
// algorithms.
func randomNetwork(seed int64) (g *mincut.Graph, s, t int) {
	rng := rand.New(rand.NewSource(seed))
	layers := 3 + rng.Intn(4)
	width := 2 + rng.Intn(4)
	n := layers*width + 2
	g = mincut.New(n)
	s, t = n-2, n-1
	node := func(l, i int) int { return l*width + i }
	for i := 0; i < width; i++ {
		g.AddArc(s, node(0, i), int64(1+rng.Intn(50)))
		g.AddArc(node(layers-1, i), t, int64(1+rng.Intn(50)))
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				if rng.Intn(3) == 0 {
					continue // sparsify
				}
				g.AddArc(node(l, i), node(l+1, j), int64(1+rng.Intn(50)))
			}
			// Occasional skip arc and back arc, as control-flow joins
			// and loop shapes produce.
			if l+2 < layers && rng.Intn(4) == 0 {
				g.AddArc(node(l, i), node(l+2, rng.Intn(width)), int64(1+rng.Intn(50)))
			}
			if l > 0 && rng.Intn(6) == 0 {
				g.AddArc(node(l, i), node(l-1, rng.Intn(width)), int64(1+rng.Intn(50)))
			}
		}
	}
	return g, s, t
}

// engines lists every max-flow implementation plus the size-based
// selector. Edmonds–Karp is the reference the others are pinned against.
var engines = []struct {
	name string
	run  func(g *mincut.Graph, s, t int) int64
}{
	{"edmonds-karp", func(g *mincut.Graph, s, t int) int64 { return g.MaxFlow(s, t) }},
	{"dinic", func(g *mincut.Graph, s, t int) int64 { return g.MaxFlowDinic(s, t) }},
	{"push-relabel", func(g *mincut.Graph, s, t int) int64 { return g.MaxFlowPushRelabel(s, t) }},
	{"auto", func(g *mincut.Graph, s, t int) int64 { return g.MaxFlowAuto(s, t) }},
}

// checkEnginesAgree max-flows independent copies of the same network with
// every engine and demands identical flow values and identical canonical
// cuts. The source-side (sink-side) cut is the unique minimal (maximal)
// minimum cut, determined by the network alone and not by which maximum
// flow the algorithm found — the property that lets any engine replace
// Edmonds–Karp without changing a COCO placement.
func checkEnginesAgree(t *testing.T, label string, build func() (*mincut.Graph, int, int)) {
	t.Helper()
	ref, s, tt := build()
	fRef := ref.MaxFlow(s, tt)
	srcRef, snkRef := ref.MinCutSourceSide(s), ref.MinCutSinkSide(tt)
	if c := ref.CutCost(srcRef); c != fRef {
		t.Fatalf("%s: source cut cost %d != flow %d", label, c, fRef)
	}
	if c := ref.CutCost(snkRef); c != fRef {
		t.Fatalf("%s: sink cut cost %d != flow %d", label, c, fRef)
	}
	for _, eng := range engines[1:] {
		g, _, _ := build()
		if f := eng.run(g, s, tt); f != fRef {
			t.Fatalf("%s: flow %s %d, edmonds-karp %d", label, eng.name, f, fRef)
		}
		if src := g.MinCutSourceSide(s); !sameArcs(src, srcRef) {
			t.Fatalf("%s: source-side cut differs: %s %v, edmonds-karp %v", label, eng.name, src, srcRef)
		}
		if snk := g.MinCutSinkSide(tt); !sameArcs(snk, snkRef) {
			t.Fatalf("%s: sink-side cut differs: %s %v, edmonds-karp %v", label, eng.name, snk, snkRef)
		}
	}
}

// TestEnginesEquivalentOnRandomNetworks pins Dinic, push-relabel, and the
// auto selector against Edmonds–Karp over many random CFG-shaped
// networks.
func TestEnginesEquivalentOnRandomNetworks(t *testing.T) {
	trials := 300
	if testing.Short() {
		trials = 60
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		seed := seed
		checkEnginesAgree(t, fmt.Sprintf("seed %d", seed), func() (*mincut.Graph, int, int) {
			return randomNetwork(seed)
		})
	}
}

// TestEnginesEquivalentWithInfArcs covers the anchored networks COCO
// builds: infinite-capacity arcs pin nodes to the source or sink side and
// must never appear in a cut.
func TestEnginesEquivalentWithInfArcs(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		checkEnginesAgree(t, fmt.Sprintf("inf seed %d", seed), func() (*mincut.Graph, int, int) {
			rng := rand.New(rand.NewSource(^seed))
			g, s, tt := randomNetwork(seed)
			n := g.NumNodes()
			// Anchor a few nodes to each side with Inf arcs, as COCO's
			// flow graphs do for instructions fixed in a thread.
			for i := 0; i < 3; i++ {
				g.AddArc(s, rng.Intn(n-2), mincut.Inf)
				g.AddArc(rng.Intn(n-2), tt, mincut.Inf)
			}
			return g, s, tt
		})
	}
}

// TestEnginesEquivalentOnLargeNetworks crosses the auto-selection
// thresholds so the selector's Dinic and push-relabel regimes are both
// exercised end to end.
func TestEnginesEquivalentOnLargeNetworks(t *testing.T) {
	sizes := []struct {
		layers, width int
	}{
		{24, 16}, // ~6k arcs: auto picks Dinic
		{40, 24}, // ~23k arcs: auto picks push-relabel
	}
	for _, sz := range sizes {
		sz := sz
		checkEnginesAgree(t, fmt.Sprintf("%dx%d", sz.layers, sz.width), func() (*mincut.Graph, int, int) {
			return layeredNetwork(11, sz.layers, sz.width)
		})
	}
}

// layeredNetwork is randomNetwork with explicit dimensions, for building
// graphs large enough to cross the auto-selection thresholds.
func layeredNetwork(seed int64, layers, width int) (g *mincut.Graph, s, t int) {
	rng := rand.New(rand.NewSource(seed))
	n := layers*width + 2
	g = mincut.New(n)
	s, t = n-2, n-1
	node := func(l, i int) int { return l*width + i }
	for i := 0; i < width; i++ {
		g.AddArc(s, node(0, i), int64(1+rng.Intn(50)))
		g.AddArc(node(layers-1, i), t, int64(1+rng.Intn(50)))
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				if rng.Intn(3) == 0 {
					continue
				}
				g.AddArc(node(l, i), node(l+1, j), int64(1+rng.Intn(50)))
			}
			if l+2 < layers && rng.Intn(4) == 0 {
				g.AddArc(node(l, i), node(l+2, rng.Intn(width)), int64(1+rng.Intn(50)))
			}
			if l > 0 && rng.Intn(6) == 0 {
				g.AddArc(node(l, i), node(l-1, rng.Intn(width)), int64(1+rng.Intn(50)))
			}
		}
	}
	return g, s, t
}

func sameArcs(a, b []mincut.ArcID) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[mincut.ArcID]bool{}
	for _, id := range a {
		seen[id] = true
	}
	for _, id := range b {
		if !seen[id] {
			return false
		}
	}
	return true
}
