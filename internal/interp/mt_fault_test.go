package interp

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/ir"
)

// outOfRangeScheduler picks a thread index that does not exist.
type outOfRangeScheduler struct{ pick int }

func (s outOfRangeScheduler) Name() string                         { return "out-of-range" }
func (s outOfRangeScheduler) Pick(_ []int, _ []int64, _ int64) int { return s.pick }

// TestOutOfRangePickRejected: a policy returning an index outside
// [0, len(threads)) is a policy bug reported as ErrBadSchedule, not an
// index panic.
func TestOutOfRangePickRejected(t *testing.T) {
	for _, pick := range []int{-1, 2, 99} {
		threads, nq := mtPair(5, true)
		_, err := RunMT(MTConfig{
			Threads: threads, NumQueues: nq,
			Sched: outOfRangeScheduler{pick}, MaxSteps: 1000,
		})
		if !errors.Is(err, ErrBadSchedule) {
			t.Errorf("pick=%d: err = %v, want ErrBadSchedule", pick, err)
		}
	}
}

// TestCtxCancelMidRunMT: a cancelled context lands between the periodic
// polls of a long multi-threaded run and surfaces as context.Canceled
// wrapped with progress, not as a deadlock or a hang.
func TestCtxCancelMidRunMT(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// ~14 dynamic instructions per exchanged value: 10k values crosses the
	// 65536-step poll boundary several times.
	threads, nq := mtPair(10_000, true)
	res, err := RunMT(MTConfig{
		Threads: threads, NumQueues: nq, MaxSteps: 10_000_000, Ctx: ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run returned a result")
	}
	if errors.Is(err, ErrDeadlock) {
		t.Error("cancellation misreported as deadlock")
	}
}

// TestCtxNotPolledOnShortRun: runs shorter than the poll interval complete
// even under a cancelled context (cancellation is cooperative, not exact).
func TestCtxNotPolledOnShortRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	threads, nq := mtPair(10, true)
	if _, err := RunMT(MTConfig{
		Threads: threads, NumQueues: nq, MaxSteps: 10_000, Ctx: ctx,
	}); err != nil {
		t.Fatalf("short run under cancelled ctx: %v", err)
	}
}

// TestBadProgramRejected: a thread referencing a queue outside
// [0, NumQueues) is a mis-specified plan caught up front by validation.
func TestBadProgramRejected(t *testing.T) {
	f := ir.NewFunction("bad")
	f.NumQueues = 1
	e := f.NewBlock("entry")
	v := f.NewReg()
	cons := f.NewInstr(ir.Consume, v)
	cons.Queue = 5
	e.Append(cons)
	e.Append(f.NewInstr(ir.Ret, ir.NoReg))
	_, err := RunMT(MTConfig{Threads: []*ir.Function{f}, NumQueues: 1, MaxSteps: 100})
	if !errors.Is(err, ErrBadProgram) {
		t.Errorf("err = %v, want ErrBadProgram", err)
	}
}

// TestInjectDropDeadlocks: dropping produces starves the consumer, and the
// existing deadlock detector names the fault — no hang, no wrong result.
func TestInjectDropDeadlocks(t *testing.T) {
	threads, nq := mtPair(2000, true)
	inj := fault.Spec{Class: fault.DropProduce, Seed: 1}.New()
	_, err := RunMT(MTConfig{
		Threads: threads, NumQueues: nq, MaxSteps: 1_000_000, Inject: inj,
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if inj.Count() == 0 {
		t.Error("no faults injected before the deadlock")
	}
}

// TestInjectStallTolerated: freezing a thread for a bounded window must be
// absorbed — same live-outs as the clean run, stall turns visible in the
// scheduler stats, Picks == BlockedTurns + issued steps preserved.
func TestInjectStallTolerated(t *testing.T) {
	threads, nq := mtPair(500, true)
	clean, err := RunMT(MTConfig{Threads: threads, NumQueues: nq, MaxSteps: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	threads2, _ := mtPair(500, true)
	inj := fault.Spec{Class: fault.StallThread, Seed: 3}.New()
	res, err := RunMT(MTConfig{
		Threads: threads2, NumQueues: nq, MaxSteps: 1_000_000, Inject: inj,
	})
	if err != nil {
		t.Fatalf("stall must be tolerated, got %v", err)
	}
	if inj.Count() == 0 {
		t.Fatal("stall never fired")
	}
	if len(res.LiveOuts) != len(clean.LiveOuts) {
		t.Fatalf("live-out count changed: %d vs %d", len(res.LiveOuts), len(clean.LiveOuts))
	}
	for i := range res.LiveOuts {
		if res.LiveOuts[i] != clean.LiveOuts[i] {
			t.Errorf("live-out[%d] = %d, want %d", i, res.LiveOuts[i], clean.LiveOuts[i])
		}
	}
	if res.Sched.BlockedTurns < inj.Count() {
		t.Errorf("BlockedTurns = %d, want >= %d injected stall turns",
			res.Sched.BlockedTurns, inj.Count())
	}
	if res.Sched.Picks != res.Sched.BlockedTurns+res.Steps {
		t.Errorf("Picks (%d) != BlockedTurns (%d) + Steps (%d)",
			res.Sched.Picks, res.Sched.BlockedTurns, res.Steps)
	}
}

// TestInjectShrinkTolerated: halving the queue capacity only adds
// back-pressure; results stay correct.
func TestInjectShrinkTolerated(t *testing.T) {
	threads, nq := mtPair(500, true)
	inj := fault.Spec{Class: fault.ShrinkQueue, Seed: 1}.New()
	res, err := RunMT(MTConfig{
		Threads: threads, NumQueues: nq, QueueCap: 32, MaxSteps: 1_000_000, Inject: inj,
	})
	if err != nil {
		t.Fatalf("shrunk queue must be tolerated, got %v", err)
	}
	if inj.Count() != 1 {
		t.Errorf("shrink injected %d events, want 1", inj.Count())
	}
	for q, hwm := range res.QueueHWM {
		if hwm > 16 {
			t.Errorf("queue %d HWM %d exceeds the shrunken capacity 16", q, hwm)
		}
	}
}
