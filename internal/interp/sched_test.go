package interp

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ir"
)

// TestRunMTSchedulesAgree runs the ping-pong program under every scheduling
// policy and queue depth and requires identical results: live-outs, stats,
// and issued-step counts are schedule-independent for correct MT code.
func TestRunMTSchedulesAgree(t *testing.T) {
	for _, qcap := range []int{1, 2, 32} {
		var want *MTResult
		for _, sched := range AllSchedulers(7) {
			threads, nq := mtPair(100, true)
			res, err := RunMT(MTConfig{
				Threads: threads, NumQueues: nq, QueueCap: qcap,
				Sched: sched, MaxSteps: 100_000,
			})
			if err != nil {
				t.Fatalf("cap=%d %s: %v", qcap, sched.Name(), err)
			}
			if res.LiveOuts[0] != 99 {
				t.Errorf("cap=%d %s: live-out = %d, want 99", qcap, sched.Name(), res.LiveOuts[0])
			}
			if want == nil {
				want = res
				continue
			}
			if res.Stats != want.Stats {
				t.Errorf("cap=%d %s: stats %+v differ from round-robin %+v",
					qcap, sched.Name(), res.Stats, want.Stats)
			}
			if res.Steps != want.Steps {
				t.Errorf("cap=%d %s: steps %d differ from round-robin %d",
					qcap, sched.Name(), res.Steps, want.Steps)
			}
		}
	}
}

// TestRunMTStepBudgetCountsIssuedOnly pins the issued-instruction count of
// the ping-pong program and asserts that blocked turns do not burn MaxSteps
// budget: with single-entry queues the threads block constantly, yet a
// budget of exactly the issued count suffices.
func TestRunMTStepBudgetCountsIssuedOnly(t *testing.T) {
	// Each thread: 3 consts + jump, 100 iterations of
	// (produce/consume + consume/produce + add + cmplt + br), and ret.
	const wantSteps = 2 * (4 + 100*5 + 1)

	run := func(maxSteps int64, qcap int) (*MTResult, error) {
		threads, nq := mtPair(100, true)
		return RunMT(MTConfig{Threads: threads, NumQueues: nq, QueueCap: qcap, MaxSteps: maxSteps})
	}

	res, err := run(wantSteps, 1)
	if err != nil {
		t.Fatalf("budget of exactly %d steps at cap=1: %v", wantSteps, err)
	}
	if res.Steps != wantSteps {
		t.Errorf("Steps = %d, want %d", res.Steps, wantSteps)
	}
	if res.Steps != res.Stats.Total() {
		t.Errorf("Steps = %d but Stats.Total() = %d; budget must count issued instructions only",
			res.Steps, res.Stats.Total())
	}
	if _, err := run(wantSteps-1, 1); !errors.Is(err, ErrStepLimit) {
		t.Errorf("budget of %d steps: err = %v, want ErrStepLimit", wantSteps-1, err)
	}
	// The same budget must behave identically at a deep queue capacity,
	// where far fewer blocked turns occur.
	if _, err := run(wantSteps, 32); err != nil {
		t.Errorf("budget of exactly %d steps at cap=32: %v", wantSteps, err)
	}
}

// TestRunMTQueueBalance checks the per-queue accounting: every value
// produced is consumed by normal termination.
func TestRunMTQueueBalance(t *testing.T) {
	threads, nq := mtPair(100, true)
	res, err := RunMT(MTConfig{Threads: threads, NumQueues: nq, MaxSteps: 100_000})
	if err != nil {
		t.Fatalf("RunMT: %v", err)
	}
	if len(res.PerQueue) != nq {
		t.Fatalf("PerQueue has %d entries, want %d", len(res.PerQueue), nq)
	}
	for q, qs := range res.PerQueue {
		if qs.Produced != 100 || qs.Consumed != 100 {
			t.Errorf("queue %d: produced/consumed = %d/%d, want 100/100", q, qs.Produced, qs.Consumed)
		}
	}
}

// deadlockPair builds two threads that each consume before producing, from
// queues only the other thread fills: a guaranteed deadlock.
func deadlockPair() []*ir.Function {
	mk := func(consumeQ, produceQ int) *ir.Function {
		f := ir.NewFunction("dead")
		f.NumQueues = 2
		e := f.NewBlock("entry")
		v := f.NewReg()
		cons := f.NewInstr(ir.Consume, v)
		cons.Queue = consumeQ
		e.Append(cons)
		p := f.NewInstr(ir.Produce, ir.NoReg, v)
		p.Queue = produceQ
		e.Append(p)
		e.Append(f.NewInstr(ir.Ret, ir.NoReg))
		return f
	}
	return []*ir.Function{mk(0, 1), mk(1, 0)}
}

// TestDeadlockDiagnosticFormat asserts the exact, deterministic format of
// the ErrDeadlock diagnostic so it stays a usable debugging artifact.
func TestDeadlockDiagnosticFormat(t *testing.T) {
	want := strings.Join([]string{
		"thread 0: blocked at entry[0]: r1 = consume [q0] (queue 0: 0/32, empty)",
		"thread 1: blocked at entry[0]: r1 = consume [q1] (queue 1: 0/32, empty)",
		"",
	}, "\n")
	var first string
	for trial := 0; trial < 3; trial++ {
		_, err := RunMT(MTConfig{Threads: deadlockPair(), NumQueues: 2, MaxSteps: 10_000})
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("err = %v, want ErrDeadlock", err)
		}
		got := strings.TrimPrefix(err.Error(), ErrDeadlock.Error()+"\n")
		if got != want {
			t.Fatalf("diagnostic:\n%q\nwant:\n%q", got, want)
		}
		if trial == 0 {
			first = got
		} else if got != first {
			t.Fatalf("diagnostic not deterministic:\n%q\nvs\n%q", got, first)
		}
	}
}

// TestDeadlockDetectedUnderEverySchedule checks that no policy can mask a
// deadlock or spin forever on one.
func TestDeadlockDetectedUnderEverySchedule(t *testing.T) {
	for _, sched := range AllSchedulers(3) {
		_, err := RunMT(MTConfig{
			Threads: deadlockPair(), NumQueues: 2, Sched: sched, MaxSteps: 10_000,
		})
		if !errors.Is(err, ErrDeadlock) {
			t.Errorf("%s: err = %v, want ErrDeadlock", sched.Name(), err)
		}
	}
}

// TestSchedulerByName covers the CLI spellings.
func TestSchedulerByName(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want string
	}{
		{"round-robin", "round-robin"},
		{"rr", "round-robin"},
		{"", "round-robin"},
		{"random", "random(5)"},
		{"adversarial", "adversarial"},
		{"adv", "adversarial"},
	} {
		s, err := SchedulerByName(tc.spec, 5)
		if err != nil {
			t.Fatalf("SchedulerByName(%q): %v", tc.spec, err)
		}
		if s.Name() != tc.want {
			t.Errorf("SchedulerByName(%q).Name() = %q, want %q", tc.spec, s.Name(), tc.want)
		}
	}
	if _, err := SchedulerByName("bogus", 0); err == nil {
		t.Error("SchedulerByName(bogus) accepted")
	}
}

// TestRandomSchedulerIsSeeded asserts that the same seed replays the same
// interleaving (via identical pick sequences on a fixed runnable set).
func TestRandomSchedulerIsSeeded(t *testing.T) {
	runnable := []int{0, 1, 2}
	lastRan := []int64{-1, -1, -1}
	a, b := Random(42), Random(42)
	c := Random(43)
	same, diff := true, true
	for i := int64(0); i < 64; i++ {
		pa, pb, pc := a.Pick(runnable, lastRan, i), b.Pick(runnable, lastRan, i), c.Pick(runnable, lastRan, i)
		if pa != pb {
			same = false
		}
		if pa != pc {
			diff = false
		}
	}
	if !same {
		t.Error("Random(42) diverged from Random(42)")
	}
	if diff {
		t.Error("Random(42) identical to Random(43) over 64 picks; seed ignored?")
	}
}

// badScheduler always picks thread 0 even when it is not runnable.
type badScheduler struct{}

func (badScheduler) Name() string                         { return "bad" }
func (badScheduler) Pick(_ []int, _ []int64, _ int64) int { return 0 }

// TestBadSchedulerRejected checks that a policy picking a blocked thread is
// reported as a policy bug rather than looping forever.
func TestBadSchedulerRejected(t *testing.T) {
	// Thread 0 consumes from an empty queue (blocks); thread 1 could run,
	// but the policy keeps picking thread 0.
	f0 := ir.NewFunction("blockee")
	f0.NumQueues = 1
	e0 := f0.NewBlock("entry")
	v := f0.NewReg()
	cons := f0.NewInstr(ir.Consume, v)
	cons.Queue = 0
	e0.Append(cons)
	e0.Append(f0.NewInstr(ir.Ret, ir.NoReg))

	f1 := ir.NewFunction("runner")
	f1.NumQueues = 1
	e1 := f1.NewBlock("entry")
	p := f1.NewInstr(ir.Produce, ir.NoReg, f1.NewReg())
	p.Queue = 0
	// The produce's source register is never written; it produces 0.
	e1.Append(f1.NewInstr(ir.Const, p.Srcs[0]))
	e1.Append(p)
	e1.Append(f1.NewInstr(ir.Ret, ir.NoReg))

	_, err := RunMT(MTConfig{
		Threads: []*ir.Function{f0, f1}, NumQueues: 1,
		Sched: badScheduler{}, MaxSteps: 1000,
	})
	if !errors.Is(err, ErrBadSchedule) {
		t.Errorf("err = %v, want ErrBadSchedule", err)
	}
}

// TestAdversarialMaximizesSkew sanity-checks the longest-blocked-first
// policy: on the ping-pong program it must still complete with correct
// results at every capacity, driving queues full before switching.
func TestAdversarialMaximizesSkew(t *testing.T) {
	for _, qcap := range []int{1, 32} {
		threads, nq := mtPair(50, true)
		res, err := RunMT(MTConfig{
			Threads: threads, NumQueues: nq, QueueCap: qcap,
			Sched: Adversarial(), MaxSteps: 100_000,
		})
		if err != nil {
			t.Fatalf("cap=%d: %v", qcap, err)
		}
		if res.LiveOuts[0] != 49 {
			t.Errorf("cap=%d: live-out = %d, want 49", qcap, res.LiveOuts[0])
		}
	}
}

func ExampleSchedulerByName() {
	s, _ := SchedulerByName("random", 11)
	fmt.Println(s.Name())
	// Output: random(11)
}
