package interp

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ir"
)

// ErrDeadlock is returned when every unfinished thread is blocked on a
// queue operation — which the MTCG construction guarantees cannot happen
// for a well-formed plan, so hitting it indicates a placement bug.
var ErrDeadlock = errors.New("interp: deadlock: all threads blocked")

// CommStats counts dynamic instructions by role. Compute covers the
// original program's instructions (including control flow); the other
// fields are multi-threading overhead.
type CommStats struct {
	Compute     int64
	Produce     int64
	Consume     int64
	ProduceSync int64
	ConsumeSync int64
	// DupBranch counts executions of branches replicated into a thread
	// that does not own them (transitive control dependences).
	DupBranch int64
}

// Comm returns the number of communication/synchronization instructions —
// the quantity Figures 1 and 7 report.
func (s CommStats) Comm() int64 {
	return s.Produce + s.Consume + s.ProduceSync + s.ConsumeSync
}

// MemSync returns the number of memory synchronization instructions.
func (s CommStats) MemSync() int64 { return s.ProduceSync + s.ConsumeSync }

// Total returns all dynamic instructions.
func (s CommStats) Total() int64 { return s.Compute + s.Comm() + s.DupBranch }

// Add accumulates o into s.
func (s *CommStats) Add(o CommStats) {
	s.Compute += o.Compute
	s.Produce += o.Produce
	s.Consume += o.Consume
	s.ProduceSync += o.ProduceSync
	s.ConsumeSync += o.ConsumeSync
	s.DupBranch += o.DupBranch
}

// MTConfig describes a multi-threaded program to execute.
type MTConfig struct {
	Threads   []*ir.Function
	NumQueues int
	// QueueCap is the queue depth (the paper: 32-entry queues for DSWP,
	// single-entry otherwise; we default to 32 for both).
	QueueCap int
	// Assign is the original partition; used to classify replicated
	// branches (via Instr.Orig).
	Assign map[*ir.Instr]int
	Args   []int64
	Mem    Memory
	// MaxSteps bounds total dynamic instructions across threads.
	MaxSteps int64
	// Ctx, when non-nil, is polled every checkEvery steps; a done context
	// aborts the run with its error. Nil means run to completion.
	Ctx context.Context
}

// MTResult is the outcome of a multi-threaded run.
type MTResult struct {
	// LiveOuts are the final live-out values, read from the thread that
	// owns the original Ret.
	LiveOuts []int64
	Mem      Memory
	// PerThread holds instruction-role counts for each thread.
	PerThread []CommStats
	// Stats is the sum over threads.
	Stats CommStats
}

// threadState is one thread's execution context.
type threadState struct {
	fn   *ir.Function
	regs []int64
	blk  *ir.Block
	idx  int
	done bool
	outs []int64 // live-outs captured at this thread's Ret
}

// RunMT executes a multi-threaded program deterministically: threads take
// turns executing one instruction each, skipping their turn while blocked
// on a full or empty queue. It returns ErrDeadlock if no thread can make
// progress and ErrStepLimit if cfg.MaxSteps is exhausted.
func RunMT(cfg MTConfig) (*MTResult, error) {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 32
	}
	queues := make([][]int64, cfg.NumQueues)
	threads := make([]*threadState, len(cfg.Threads))
	for i, fn := range cfg.Threads {
		if len(cfg.Args) != len(fn.Params) {
			return nil, fmt.Errorf("interp: thread %s takes %d params, got %d",
				fn.Name, len(fn.Params), len(cfg.Args))
		}
		ts := &threadState{fn: fn, regs: make([]int64, int(fn.MaxReg())+1), blk: fn.Entry()}
		for j, p := range fn.Params {
			ts.regs[p] = cfg.Args[j]
		}
		threads[i] = ts
	}

	res := &MTResult{Mem: cfg.Mem, PerThread: make([]CommStats, len(threads))}
	var steps int64
	for {
		progress := false
		alldone := true
		for ti, ts := range threads {
			if ts.done {
				continue
			}
			alldone = false
			stepped, err := stepThread(ts, ti, queues, cfg, &res.PerThread[ti])
			if err != nil {
				return nil, err
			}
			if stepped {
				progress = true
				steps++
				if steps > cfg.MaxSteps {
					return nil, fmt.Errorf("%w (multi-threaded, %d steps)", ErrStepLimit, steps)
				}
				if steps&(checkEvery-1) == 0 && cfg.Ctx != nil {
					if err := cfg.Ctx.Err(); err != nil {
						return nil, fmt.Errorf("interp: multi-threaded run after %d steps: %w", steps, err)
					}
				}
			}
		}
		if alldone {
			break
		}
		if !progress {
			return nil, fmt.Errorf("%w\n%s", ErrDeadlock, describeBlocked(threads, queues))
		}
	}

	for ti, ts := range threads {
		if ts.outs != nil {
			res.LiveOuts = ts.outs
		}
		res.Stats.Add(res.PerThread[ti])
	}
	return res, nil
}

// stepThread executes at most one instruction of ts, returning whether it
// made progress (false when blocked on a queue).
func stepThread(ts *threadState, ti int, queues [][]int64, cfg MTConfig, stats *CommStats) (bool, error) {
	in := ts.blk.Instrs[ts.idx]
	switch in.Op {
	case ir.Produce, ir.ProduceSync:
		if len(queues[in.Queue]) >= cfg.QueueCap {
			return false, nil // queue full
		}
		v := int64(0)
		if in.Op == ir.Produce {
			v = ts.regs[in.Srcs[0]]
			stats.Produce++
		} else {
			stats.ProduceSync++
		}
		queues[in.Queue] = append(queues[in.Queue], v)
		ts.idx++
	case ir.Consume, ir.ConsumeSync:
		if len(queues[in.Queue]) == 0 {
			return false, nil // queue empty
		}
		v := queues[in.Queue][0]
		queues[in.Queue] = queues[in.Queue][1:]
		if in.Op == ir.Consume {
			ts.regs[in.Dst] = v
			stats.Consume++
		} else {
			stats.ConsumeSync++
		}
		ts.idx++
	case ir.Br:
		if in.Orig != nil && cfg.Assign[in.Orig] != ti {
			stats.DupBranch++
		} else {
			stats.Compute++
		}
		next := ts.blk.Succs[1]
		if ts.regs[in.Srcs[0]] != 0 {
			next = ts.blk.Succs[0]
		}
		ts.blk, ts.idx = next, 0
	case ir.Jump:
		stats.Compute++
		ts.blk, ts.idx = ts.blk.Succs[0], 0
	case ir.Ret:
		stats.Compute++
		ts.done = true
		if len(in.Srcs) > 0 {
			ts.outs = []int64{}
			for _, r := range in.Srcs {
				ts.outs = append(ts.outs, ts.regs[r])
			}
		}
	default:
		stats.Compute++
		if err := exec(in, ts.regs, cfg.Mem); err != nil {
			return false, fmt.Errorf("interp: thread %d: %v: %w", ti, in, err)
		}
		ts.idx++
	}
	return true, nil
}

// describeBlocked renders a diagnostic for deadlocks.
func describeBlocked(threads []*threadState, queues [][]int64) string {
	s := ""
	for ti, ts := range threads {
		if ts.done {
			s += fmt.Sprintf("thread %d: done\n", ti)
			continue
		}
		in := ts.blk.Instrs[ts.idx]
		qlen := -1
		if in.Op.IsComm() {
			qlen = len(queues[in.Queue])
		}
		s += fmt.Sprintf("thread %d: blocked at %s[%d]: %v (queue len %d)\n",
			ti, ts.blk.Name, ts.idx, in, qlen)
	}
	return s
}
