package interp

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/attr"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/ring"
)

// ErrDeadlock is returned when every unfinished thread is blocked on a
// queue operation — which the MTCG construction guarantees cannot happen
// for a well-formed plan, so hitting it indicates a placement bug.
var ErrDeadlock = errors.New("interp: deadlock: all threads blocked")

// ErrBadSchedule is returned when a Scheduler picks a thread that is not
// runnable — a policy bug, not a program bug.
var ErrBadSchedule = errors.New("interp: scheduler picked a non-runnable thread")

// ErrBadProgram is returned when a thread references a queue outside
// [0, NumQueues) — a mis-specified plan. RunMT validates up front so a
// corrupted program is a typed error, never an index panic mid-run.
var ErrBadProgram = errors.New("interp: program references queue out of range")

// DefaultQueueCap is the queue depth used when MTConfig.QueueCap is unset:
// the 32-entry synchronization-array queues the paper evaluates DSWP with.
// The paper's other partitioners use single-entry queues; the experiment
// pipeline selects per-partitioner depths via partition.QueueCapFor.
const DefaultQueueCap = 32

// CommStats counts dynamic instructions by role. Compute covers the
// original program's instructions (including control flow); the other
// fields are multi-threading overhead.
type CommStats struct {
	Compute     int64
	Produce     int64
	Consume     int64
	ProduceSync int64
	ConsumeSync int64
	// DupBranch counts executions of branches replicated into a thread
	// that does not own them (transitive control dependences).
	DupBranch int64
}

// Comm returns the number of communication/synchronization instructions —
// the quantity Figures 1 and 7 report.
func (s CommStats) Comm() int64 {
	return s.Produce + s.Consume + s.ProduceSync + s.ConsumeSync
}

// MemSync returns the number of memory synchronization instructions.
func (s CommStats) MemSync() int64 { return s.ProduceSync + s.ConsumeSync }

// Total returns all dynamic instructions.
func (s CommStats) Total() int64 { return s.Compute + s.Comm() + s.DupBranch }

// Add accumulates o into s.
func (s *CommStats) Add(o CommStats) {
	s.Compute += o.Compute
	s.Produce += o.Produce
	s.Consume += o.Consume
	s.ProduceSync += o.ProduceSync
	s.ConsumeSync += o.ConsumeSync
	s.DupBranch += o.DupBranch
}

// QueueStats counts the dynamic traffic through one synchronization-array
// queue. At normal termination Produced == Consumed for every queue (every
// value produced is consumed); the differential oracle asserts this.
// Depth high-water marks live in MTResult.QueueHWM, not here: traffic
// counts are schedule-independent (the oracle compares them across
// policies) while occupancy depends on the interleaving.
type QueueStats struct {
	Produced int64
	Consumed int64
}

// SchedStats counts scheduler-policy activity during one run: how many
// times the policy was consulted and how many of those picks found the
// chosen thread blocked on a queue. Picks == BlockedTurns + issued steps.
type SchedStats struct {
	// Policy is the scheduling policy's name.
	Policy string
	// Picks is the number of Scheduler.Pick calls.
	Picks int64
	// BlockedTurns is the number of picks whose thread could not step
	// because its queue operation would block.
	BlockedTurns int64
}

// MTConfig describes a multi-threaded program to execute.
type MTConfig struct {
	Threads   []*ir.Function
	NumQueues int
	// QueueCap is the queue depth. The paper models 32-entry queues for
	// DSWP and single-entry queues for the other partitioners; <= 0
	// defaults to DefaultQueueCap (32). Use partition.QueueCapFor to pick
	// the paper's depth for a given partitioner.
	QueueCap int
	// Sched picks which runnable thread steps next; nil means the
	// deterministic round-robin policy. Any correct MTCG program yields
	// identical results under every policy.
	Sched Scheduler
	// Assign is the original partition; used to classify replicated
	// branches (via Instr.Orig).
	Assign map[*ir.Instr]int
	Args   []int64
	Mem    Memory
	// MaxSteps bounds total dynamic instructions across threads. Only
	// issued instructions count: turns where a thread is blocked on a
	// full or empty queue do not consume budget.
	MaxSteps int64
	// Ctx, when non-nil, is polled every checkEvery steps; a done context
	// aborts the run with its error. Nil means run to completion.
	Ctx context.Context
	// Metrics, when non-nil, receives live per-role instruction counters,
	// per-queue traffic counters and depth high-water gauges, and
	// scheduler-policy counts, recorded at the instrumentation points as
	// the run executes. This is a second accounting path, independent of
	// the MTResult bookkeeping; the oracle reconciliation tests assert the
	// two agree exactly.
	Metrics *obs.Scope
	// Trace, when non-nil, receives a per-queue occupancy timeline:
	// counter events named "q<N>" with series "depth", timestamped in
	// issued steps.
	Trace *obs.Lane
	// Inject, when non-nil, is a deterministic fault injector consulted at
	// each queue operation and scheduler pick. An injector belongs to one
	// run: create a fresh one (fault.Spec.New) per RunMT call.
	Inject *fault.Injector
	// Attr enables pick attribution: every scheduler pick is tagged with a
	// cause bucket (issue, queue-empty, queue-full, fault) into
	// MTResult.Attr, conserving exactly — per-thread bucket sums equal
	// MTResult.ThreadPicks. Attribution is observational and never changes
	// the interleaving.
	Attr bool
}

// MTResult is the outcome of a multi-threaded run.
type MTResult struct {
	// LiveOuts are the final live-out values, read from the thread that
	// owns the original Ret.
	LiveOuts []int64
	Mem      Memory
	// PerThread holds instruction-role counts for each thread.
	PerThread []CommStats
	// Stats is the sum over threads.
	Stats CommStats
	// Steps is the number of instructions issued across all threads; it
	// always equals Stats.Total().
	Steps int64
	// PerQueue counts the values produced into and consumed from each
	// queue (synchronization tokens included).
	PerQueue []QueueStats
	// QueueHWM is each queue's depth high-water mark: the largest number
	// of values buffered at once, tracked per (producer, consumer) queue
	// — never folded into one global maximum — so DSWP's 32-entry queues
	// and the single-entry queues of the other partitioners report
	// separately. Unlike PerQueue traffic counts, occupancy depends on
	// the schedule.
	QueueHWM []int64
	// Sched counts scheduler-policy activity.
	Sched SchedStats
	// ThreadPicks (attribution runs only) counts how many times each thread
	// was picked; the entries sum to Sched.Picks.
	ThreadPicks []int64
	// Attr (attribution runs only) tags every scheduler pick with a cause
	// bucket, per thread, per static instruction, and per queue. Per-thread
	// bucket sums equal ThreadPicks exactly.
	Attr *attr.Run
}

// mtMetrics holds the live obs instruments of one run — the second
// accounting path recorded alongside the MTResult bookkeeping.
type mtMetrics struct {
	steps, compute, dupBranch                  *obs.Counter
	produce, consume, produceSync, consumeSync *obs.Counter
	schedPicks, schedBlocked                   *obs.Counter
	queueProduced, queueConsumed               []*obs.Counter
	queueHWM                                   []*obs.Gauge
}

func newMTMetrics(s *obs.Scope, numQueues int) *mtMetrics {
	if s == nil {
		return nil
	}
	m := &mtMetrics{
		steps:        s.Counter("steps"),
		compute:      s.Counter("compute"),
		dupBranch:    s.Counter("dup_branch"),
		produce:      s.Counter("produce"),
		consume:      s.Counter("consume"),
		produceSync:  s.Counter("produce_sync"),
		consumeSync:  s.Counter("consume_sync"),
		schedPicks:   s.Counter("sched.picks"),
		schedBlocked: s.Counter("sched.blocked_turns"),
	}
	for q := 0; q < numQueues; q++ {
		qs := s.Child(fmt.Sprintf("queue.%d", q))
		m.queueProduced = append(m.queueProduced, qs.Counter("produced"))
		m.queueConsumed = append(m.queueConsumed, qs.Counter("consumed"))
		m.queueHWM = append(m.queueHWM, qs.Gauge("hwm"))
	}
	return m
}

// runObs bundles the optional observability sinks threaded through the
// interpreter loop; a nil *runObs (or nil fields) records nothing.
type runObs struct {
	m      *mtMetrics
	lane   *obs.Lane
	qnames []string // cached "q<N>" counter-track names for the lane
}

func newRunObs(cfg *MTConfig) *runObs {
	if cfg.Metrics == nil && cfg.Trace == nil {
		return nil
	}
	o := &runObs{m: newMTMetrics(cfg.Metrics, cfg.NumQueues), lane: cfg.Trace}
	if o.lane != nil {
		for q := 0; q < cfg.NumQueues; q++ {
			o.qnames = append(o.qnames, fmt.Sprintf("q%d", q))
		}
	}
	return o
}

// queueDepth records a queue's occupancy after a produce or consume.
func (o *runObs) queueDepth(q int, step int64, depth int) {
	if o == nil {
		return
	}
	if o.m != nil {
		o.m.queueHWM[q].SetMax(int64(depth))
	}
	if o.lane != nil {
		o.lane.Counter(o.qnames[q], step, "depth", int64(depth))
	}
}

// threadState is one thread's execution context. Register files of all
// threads share one contiguous backing allocation (regs is a window into
// it), and dup caches the replicated-branch classification per static
// instruction ID so the hot loop never consults the Assign map.
type threadState struct {
	fn   *ir.Function
	regs []int64 // window into the run's shared register backing
	dup  []bool  // instr ID -> branch replicated into a non-owning thread
	blk  *ir.Block
	idx  int
	done bool
	outs []int64 // live-outs captured at this thread's Ret
}

// mtScratch is the reusable hot-loop state of one RunMT call. Runs acquire
// a scratch from mtPool and return it on exit, so steady-state execution
// allocates only the MTResult the caller keeps: thread states, register
// backing, queue rings, and scheduler bookkeeping all settle at their
// high-water capacity. Nothing in a scratch escapes into the MTResult.
type mtScratch struct {
	threads  []threadState
	regsBack []int64
	dupBack  []bool
	queues   []ring.Buf[int64]
	blocked  []bool
	lastRan  []int64
	active   []int
	runnable []int
}

var mtPool = sync.Pool{New: func() any { return new(mtScratch) }}

// sized returns s resliced to length n, growing the backing array if
// needed. Contents are unspecified; callers reinitialize.
func sized[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// RunMT executes a multi-threaded program over blocking synchronization-
// array queues. Thread interleaving is chosen by cfg.Sched (round-robin by
// default, so runs are reproducible); a thread that cannot step because its
// queue is full or empty is set aside until another thread makes progress.
// It returns ErrDeadlock if no thread can make progress and ErrStepLimit if
// cfg.MaxSteps issued instructions are exhausted.
func RunMT(cfg MTConfig) (*MTResult, error) {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	// A ShrinkQueue injector halves the capacity for the whole run; folding
	// it into cfg keeps every later cap check (including the deadlock
	// diagnostic) consistent with the effective depth.
	cfg.QueueCap = cfg.Inject.QueueCap(cfg.QueueCap)
	sched := cfg.Sched
	if sched == nil {
		sched = RoundRobin()
	}
	sc := mtPool.Get().(*mtScratch)
	defer mtPool.Put(sc)

	nThreads := len(cfg.Threads)
	sc.queues = sized(sc.queues, cfg.NumQueues)
	queues := sc.queues
	for i := range queues {
		queues[i].Init(cfg.QueueCap)
	}
	// Size the shared register and dup-branch backings, then carve one
	// window per thread.
	regsNeed, dupNeed := 0, 0
	for _, fn := range cfg.Threads {
		regsNeed += int(fn.MaxReg()) + 1
		dupNeed += fn.NumInstrIDs()
	}
	sc.regsBack = sized(sc.regsBack, regsNeed)
	sc.dupBack = sized(sc.dupBack, dupNeed)
	clear(sc.regsBack)
	clear(sc.dupBack)
	sc.threads = sized(sc.threads, nThreads)
	threads := sc.threads
	regsOff, dupOff := 0, 0
	for i, fn := range cfg.Threads {
		if len(cfg.Args) != len(fn.Params) {
			return nil, fmt.Errorf("interp: thread %s takes %d params, got %d",
				fn.Name, len(fn.Params), len(cfg.Args))
		}
		nRegs, nIDs := int(fn.MaxReg())+1, fn.NumInstrIDs()
		ts := &threads[i]
		*ts = threadState{
			fn:   fn,
			regs: sc.regsBack[regsOff : regsOff+nRegs],
			dup:  sc.dupBack[dupOff : dupOff+nIDs],
			blk:  fn.Entry(),
		}
		regsOff += nRegs
		dupOff += nIDs
		var badQ error
		ti := i
		fn.Instrs(func(in *ir.Instr) {
			if badQ == nil && in.Op.IsComm() && (in.Queue < 0 || in.Queue >= cfg.NumQueues) {
				badQ = fmt.Errorf("%w: thread %s: %v references queue %d of %d",
					ErrBadProgram, fn.Name, in, in.Queue, cfg.NumQueues)
			}
			if in.Op == ir.Br && in.Orig != nil && cfg.Assign[in.Orig] != ti {
				ts.dup[in.ID] = true
			}
		})
		if badQ != nil {
			return nil, badQ
		}
		for j, p := range fn.Params {
			ts.regs[p] = cfg.Args[j]
		}
	}

	res := &MTResult{
		Mem:       cfg.Mem,
		PerThread: make([]CommStats, nThreads),
		PerQueue:  make([]QueueStats, cfg.NumQueues),
		QueueHWM:  make([]int64, cfg.NumQueues),
		Sched:     SchedStats{Policy: sched.Name()},
	}
	ro := newRunObs(&cfg)
	var arun *attr.Run
	if cfg.Attr {
		ids := make([]int, len(cfg.Threads))
		for i, f := range cfg.Threads {
			ids[i] = f.NumInstrIDs()
		}
		arun = attr.NewRun("picks", ids, cfg.NumQueues)
		res.Attr = arun
		res.ThreadPicks = make([]int64, nThreads)
	}
	x := &mtExec{
		queues: queues,
		qcap:   cfg.QueueCap,
		nq:     cfg.NumQueues,
		inj:    cfg.Inject,
		mem:    cfg.Mem,
		res:    res,
		ro:     ro,
	}

	// blocked[t] is set when t failed to step and cleared whenever any
	// thread issues an instruction (which is the only event that can
	// unblock a queue operation). active lists unfinished threads in
	// ascending order; blockedCount tracks how many of them are blocked,
	// so the common case (nothing blocked) hands active to the scheduler
	// without rebuilding a runnable list every pick.
	sc.blocked = sized(sc.blocked, nThreads)
	blocked := sc.blocked
	clear(blocked)
	blockedCount := 0
	sc.lastRan = sized(sc.lastRan, nThreads)
	lastRan := sc.lastRan
	for i := range lastRan {
		lastRan[i] = -1
	}
	sc.active = sized(sc.active, nThreads)
	active := sc.active[:0]
	for i := 0; i < nThreads; i++ {
		active = append(active, i)
	}
	sc.runnable = sized(sc.runnable, nThreads)

	var steps int64
	if cfg.Sched == nil && x.inj == nil && ro == nil && arun == nil {
		// Default configuration: round-robin policy, nothing observing.
		// The specialized loop below issues the same interleaving without
		// the per-pick interface dispatch and instrumentation checks;
		// TestRunMTFastPathEquivalence pins it against the general loop.
		n, err := runMTFast(&cfg, x, threads, active, blocked, res)
		if err != nil {
			return nil, err
		}
		steps = n
		res.Steps = steps
		for ti := range threads {
			if threads[ti].outs != nil {
				res.LiveOuts = threads[ti].outs
			}
			res.Stats.Add(res.PerThread[ti])
		}
		return res, nil
	}
	for len(active) > 0 {
		runnable := active
		if blockedCount > 0 {
			if blockedCount == len(active) {
				return nil, fmt.Errorf("%w\n%s", ErrDeadlock, describeBlocked(threads, queues, cfg.QueueCap))
			}
			runnable = sc.runnable[:0]
			for _, ti := range active {
				if !blocked[ti] {
					runnable = append(runnable, ti)
				}
			}
		}
		ti := sched.Pick(runnable, lastRan, steps)
		if ti < 0 || ti >= nThreads || threads[ti].done || blocked[ti] {
			return nil, fmt.Errorf("%w: %s picked thread %d (runnable %v)",
				ErrBadSchedule, sched.Name(), ti, runnable)
		}
		res.Sched.Picks++
		if res.ThreadPicks != nil {
			res.ThreadPicks[ti]++
		}
		if ro != nil && ro.m != nil {
			ro.m.schedPicks.Inc()
		}
		// curIn (attribution runs only) is the instruction the picked thread
		// is at — the one issued this pick, or the one it blocked on.
		var curIn *ir.Instr
		if arun != nil {
			curIn = threads[ti].blk.Instrs[threads[ti].idx]
		}
		if x.inj != nil && x.inj.Stall(ti, nThreads) {
			// A frozen thread wastes its turn without issuing. It is NOT
			// marked blocked: blocked[] feeds the deadlock detector, and a
			// stall window always expires, so it must never look like a
			// stuck queue operation. Counted as a blocked turn to preserve
			// Picks == BlockedTurns + issued steps.
			res.Sched.BlockedTurns++
			if arun != nil {
				arun.Note(ti, attr.Fault, curIn.ID, -1)
			}
			if ro != nil && ro.m != nil {
				ro.m.schedBlocked.Inc()
			}
			continue
		}
		stepped, err := x.stepThread(&threads[ti], ti, &res.PerThread[ti], steps)
		if err != nil {
			return nil, err
		}
		if !stepped {
			blocked[ti] = true
			blockedCount++
			res.Sched.BlockedTurns++
			if arun != nil {
				// A step only blocks on a queue operation: full for the
				// produce side, empty for the consume side.
				b := attr.QueueEmpty
				if curIn.Op == ir.Produce || curIn.Op == ir.ProduceSync {
					b = attr.QueueFull
				}
				arun.Note(ti, b, curIn.ID, curIn.Queue)
			}
			if ro != nil && ro.m != nil {
				ro.m.schedBlocked.Inc()
			}
			continue
		}
		if arun != nil {
			arun.Note(ti, attr.Issue, curIn.ID, -1)
		}
		if ro != nil && ro.m != nil {
			ro.m.steps.Inc()
		}
		if blockedCount > 0 {
			clear(blocked)
			blockedCount = 0
		}
		lastRan[ti] = steps
		steps++
		if threads[ti].done {
			for i, a := range active {
				if a == ti {
					active = append(active[:i], active[i+1:]...)
					break
				}
			}
		}
		if steps > cfg.MaxSteps {
			return nil, fmt.Errorf("%w (multi-threaded, %d steps)", ErrStepLimit, steps)
		}
		if steps&(checkEvery-1) == 0 && cfg.Ctx != nil {
			if err := cfg.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("interp: multi-threaded run after %d steps: %w", steps, err)
			}
		}
	}

	res.Steps = steps
	for ti := range threads {
		if threads[ti].outs != nil {
			res.LiveOuts = threads[ti].outs
		}
		res.Stats.Add(res.PerThread[ti])
	}
	return res, nil
}

// runMTFast is the scheduler loop specialized for RunMT's default
// configuration — round-robin policy, no fault injector, no metrics or
// trace sinks, no attribution. It issues the exact interleaving of the
// general loop (the inlined pick mirrors roundRobin.Pick: first unblocked
// thread at or after the cursor, wrapping to the first unblocked) while
// skipping the per-pick interface dispatch, scheduler validation, lastRan
// bookkeeping, and instrumentation nil-checks. Every counter the general
// loop maintains (Picks, BlockedTurns, per-queue traffic, HWM) is
// maintained identically; TestRunMTFastPathEquivalence asserts the two
// loops produce deep-equal MTResults on a program matrix.
func runMTFast(cfg *MTConfig, x *mtExec, threads []threadState, active []int, blocked []bool, res *MTResult) (int64, error) {
	var steps int64
	blockedCount := 0
	cursor := 0
	maxSteps := cfg.MaxSteps
	ctx := cfg.Ctx
	for len(active) > 0 {
		if blockedCount == len(active) {
			return 0, fmt.Errorf("%w\n%s", ErrDeadlock, describeBlocked(threads, x.queues, x.qcap))
		}
		ti := -1
		for _, a := range active {
			if !blocked[a] {
				if a >= cursor {
					ti = a
					break
				}
				if ti < 0 {
					ti = a
				}
			}
		}
		cursor = ti + 1
		res.Sched.Picks++
		stepped, err := x.stepThread(&threads[ti], ti, &res.PerThread[ti], steps)
		if err != nil {
			return 0, err
		}
		if !stepped {
			blocked[ti] = true
			blockedCount++
			res.Sched.BlockedTurns++
			continue
		}
		if blockedCount > 0 {
			clear(blocked)
			blockedCount = 0
		}
		steps++
		if threads[ti].done {
			for i, a := range active {
				if a == ti {
					active = append(active[:i], active[i+1:]...)
					break
				}
			}
		}
		if steps > maxSteps {
			return 0, fmt.Errorf("%w (multi-threaded, %d steps)", ErrStepLimit, steps)
		}
		if steps&(checkEvery-1) == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return 0, fmt.Errorf("interp: multi-threaded run after %d steps: %w", steps, err)
			}
		}
	}
	return steps, nil
}

// mtExec bundles the state stepThread touches every issued instruction.
// Passing one pointer (instead of an MTConfig value, which the compiler
// copied on every call) keeps the per-step overhead at a register's worth.
type mtExec struct {
	queues []ring.Buf[int64]
	qcap   int
	nq     int
	inj    *fault.Injector
	mem    Memory
	res    *MTResult
	ro     *runObs
}

// stepThread executes at most one instruction of ts, returning whether it
// made progress (false when blocked on a queue). x.res receives per-queue
// traffic and depth high-water bookkeeping; x.ro (optional) is the obs
// accounting path, and step is the issued-step timestamp for its queue
// occupancy timeline.
func (x *mtExec) stepThread(ts *threadState, ti int, stats *CommStats, step int64) (bool, error) {
	ro := x.ro
	in := ts.blk.Instrs[ts.idx]
	switch in.Op {
	case ir.Produce, ir.ProduceSync:
		if x.queues[in.Queue].Len() >= x.qcap {
			return false, nil // queue full
		}
		v := int64(0)
		if in.Op == ir.Produce {
			v = ts.regs[in.Srcs[0]]
			stats.Produce++
		} else {
			stats.ProduceSync++
		}
		// Role stats above count the instruction; the per-queue traffic
		// below counts what actually lands in the array. Under injection
		// the two may diverge (drop, dup, swap) — that divergence is
		// exactly what the oracle's balance/ownership checks detect.
		q, val, times := in.Queue, v, 1
		if x.inj != nil {
			q, val, times = x.inj.Produce(ti, in.Queue, v, x.nq, in.Op == ir.Produce)
		}
		for k := 0; k < times; k++ {
			qb := &x.queues[q]
			qb.Push(val)
			x.res.PerQueue[q].Produced++
			if d := int64(qb.Len()); d > x.res.QueueHWM[q] {
				x.res.QueueHWM[q] = d
			}
			if ro != nil && ro.m != nil {
				ro.m.queueProduced[q].Inc()
			}
		}
		if ro != nil {
			if ro.m != nil {
				if in.Op == ir.Produce {
					ro.m.produce.Inc()
				} else {
					ro.m.produceSync.Inc()
				}
			}
			if times > 0 {
				ro.queueDepth(q, step, x.queues[q].Len())
			}
		}
		ts.idx++
	case ir.Consume, ir.ConsumeSync:
		qb := &x.queues[in.Queue]
		if qb.Len() == 0 {
			return false, nil // queue empty
		}
		v := qb.Pop()
		x.res.PerQueue[in.Queue].Consumed++
		if in.Op == ir.Consume {
			ts.regs[in.Dst] = v
			stats.Consume++
		} else {
			stats.ConsumeSync++
		}
		if ro != nil {
			if ro.m != nil {
				if in.Op == ir.Consume {
					ro.m.consume.Inc()
				} else {
					ro.m.consumeSync.Inc()
				}
				ro.m.queueConsumed[in.Queue].Inc()
			}
			ro.queueDepth(in.Queue, step, qb.Len())
		}
		ts.idx++
	case ir.Br:
		if ts.dup[in.ID] {
			stats.DupBranch++
			if ro != nil && ro.m != nil {
				ro.m.dupBranch.Inc()
			}
		} else {
			stats.Compute++
			if ro != nil && ro.m != nil {
				ro.m.compute.Inc()
			}
		}
		next := ts.blk.Succs[1]
		if ts.regs[in.Srcs[0]] != 0 {
			next = ts.blk.Succs[0]
		}
		ts.blk, ts.idx = next, 0
	case ir.Jump:
		stats.Compute++
		if ro != nil && ro.m != nil {
			ro.m.compute.Inc()
		}
		ts.blk, ts.idx = ts.blk.Succs[0], 0
	case ir.Ret:
		stats.Compute++
		if ro != nil && ro.m != nil {
			ro.m.compute.Inc()
		}
		ts.done = true
		if len(in.Srcs) > 0 {
			ts.outs = []int64{}
			for _, r := range in.Srcs {
				ts.outs = append(ts.outs, ts.regs[r])
			}
		}
	default:
		stats.Compute++
		if ro != nil && ro.m != nil {
			ro.m.compute.Inc()
		}
		if err := exec(in, ts.regs, x.mem); err != nil {
			return false, fmt.Errorf("interp: thread %d: %v: %w", ti, in, err)
		}
		ts.idx++
	}
	return true, nil
}

// describeBlocked renders a deadlock diagnostic. The output is fully
// deterministic — threads in index order, each with its block, position,
// instruction, and the occupancy of the queue it is blocked on — so a
// deadlock report can be pasted into a regression test or bug report
// verbatim.
func describeBlocked(threads []threadState, queues []ring.Buf[int64], qcap int) string {
	s := ""
	for ti := range threads {
		ts := &threads[ti]
		if ts.done {
			s += fmt.Sprintf("thread %d: done\n", ti)
			continue
		}
		in := ts.blk.Instrs[ts.idx]
		if !in.Op.IsComm() {
			s += fmt.Sprintf("thread %d: stopped at %s[%d]: %v\n", ti, ts.blk.Name, ts.idx, in)
			continue
		}
		state := "empty"
		if qlen := queues[in.Queue].Len(); qlen >= qcap {
			state = "full"
		} else if qlen > 0 {
			state = fmt.Sprintf("%d buffered", qlen)
		}
		s += fmt.Sprintf("thread %d: blocked at %s[%d]: %v (queue %d: %d/%d, %s)\n",
			ti, ts.blk.Name, ts.idx, in, in.Queue, queues[in.Queue].Len(), qcap, state)
	}
	return s
}
