// Package interp executes IR functionally: single-threaded functions for
// golden results and edge profiles, and multi-threaded programs (the output
// of MTCG) over blocking synchronization-array queues. The multi-threaded
// interpreter is deterministic — threads step round-robin — so equivalence
// against the single-threaded run is reproducible. It also classifies every
// dynamic instruction as computation or communication, producing the data
// behind Figures 1 and 7.
package interp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/ir"
)

// ErrStepLimit is returned when execution exceeds the step budget,
// indicating a runaway loop (or a lost wake-up in multi-threaded code).
var ErrStepLimit = errors.New("interp: step limit exceeded")

// checkEvery is the number of dynamic instructions executed between
// cancellation checks; a power of two so the check compiles to a mask.
const checkEvery = 1 << 16

// Memory is the flat word-addressed program memory shared by all threads.
type Memory []int64

// Clone returns an independent copy of the memory image.
func (m Memory) Clone() Memory { return append(Memory(nil), m...) }

// Result is the outcome of a single-threaded run.
type Result struct {
	// LiveOuts holds the final value of each register listed by Ret, in
	// Ret's order.
	LiveOuts []int64
	Mem      Memory
	// Steps is the number of dynamic instructions executed.
	Steps int64
	// Profile holds the observed execution count of every CFG edge.
	Profile *ir.Profile
}

// Run executes f single-threaded with the given parameter values and memory
// image (mutated in place). It fails with ErrStepLimit after maxSteps
// instructions.
func Run(f *ir.Function, args []int64, mem Memory, maxSteps int64) (*Result, error) {
	return RunCtx(context.Background(), f, args, mem, maxSteps)
}

// RunCtx is Run with cooperative cancellation: every checkEvery dynamic
// instructions it polls ctx and aborts with ctx's error if the context is
// done, so a cancelled experiment matrix returns promptly even while a
// 200M-step profiling pass is in flight.
func RunCtx(ctx context.Context, f *ir.Function, args []int64, mem Memory, maxSteps int64) (*Result, error) {
	if len(args) != len(f.Params) {
		return nil, fmt.Errorf("interp: %s takes %d params, got %d", f.Name, len(f.Params), len(args))
	}
	regs := make([]int64, int(f.MaxReg())+1)
	for i, p := range f.Params {
		regs[p] = args[i]
	}
	res := &Result{Mem: mem, Profile: ir.NewProfile()}
	blk := f.Entry()
	idx := 0
	for {
		if res.Steps >= maxSteps {
			return nil, fmt.Errorf("%w (%s after %d steps)", ErrStepLimit, f.Name, res.Steps)
		}
		if res.Steps&(checkEvery-1) == checkEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("interp: %s after %d steps: %w", f.Name, res.Steps, err)
			}
		}
		in := blk.Instrs[idx]
		res.Steps++
		switch in.Op {
		case ir.Br:
			next := blk.Succs[1]
			if regs[in.Srcs[0]] != 0 {
				next = blk.Succs[0]
			}
			res.Profile.AddEdge(blk, next, 1)
			blk, idx = next, 0
		case ir.Jump:
			next := blk.Succs[0]
			res.Profile.AddEdge(blk, next, 1)
			blk, idx = next, 0
		case ir.Ret:
			for _, r := range in.Srcs {
				res.LiveOuts = append(res.LiveOuts, regs[r])
			}
			return res, nil
		default:
			if err := exec(in, regs, mem); err != nil {
				return nil, fmt.Errorf("interp: %s: %v: %w", f.Name, in, err)
			}
			idx++
		}
	}
}

// exec evaluates one non-control, non-communication instruction.
func exec(in *ir.Instr, regs []int64, mem Memory) error {
	get := func(i int) int64 { return regs[in.Srcs[i]] }
	fget := func(i int) float64 { return ir.Float64FromBits(uint64(get(i))) }
	setf := func(v float64) { regs[in.Dst] = int64(ir.Float64Bits(v)) }
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch in.Op {
	case ir.Nop:
	case ir.Const:
		regs[in.Dst] = in.Imm
	case ir.Mov:
		regs[in.Dst] = get(0)
	case ir.Add:
		regs[in.Dst] = get(0) + get(1)
	case ir.Sub:
		regs[in.Dst] = get(0) - get(1)
	case ir.Mul:
		regs[in.Dst] = get(0) * get(1)
	case ir.Div:
		if get(1) == 0 {
			regs[in.Dst] = 0
		} else {
			regs[in.Dst] = get(0) / get(1)
		}
	case ir.Rem:
		if get(1) == 0 {
			regs[in.Dst] = 0
		} else {
			regs[in.Dst] = get(0) % get(1)
		}
	case ir.And:
		regs[in.Dst] = get(0) & get(1)
	case ir.Or:
		regs[in.Dst] = get(0) | get(1)
	case ir.Xor:
		regs[in.Dst] = get(0) ^ get(1)
	case ir.Shl:
		regs[in.Dst] = get(0) << (uint64(get(1)) & 63)
	case ir.Shr:
		regs[in.Dst] = get(0) >> (uint64(get(1)) & 63)
	case ir.Neg:
		regs[in.Dst] = -get(0)
	case ir.Not:
		regs[in.Dst] = ^get(0)
	case ir.Abs:
		v := get(0)
		if v < 0 {
			v = -v
		}
		regs[in.Dst] = v
	case ir.CmpEQ:
		regs[in.Dst] = b2i(get(0) == get(1))
	case ir.CmpNE:
		regs[in.Dst] = b2i(get(0) != get(1))
	case ir.CmpLT:
		regs[in.Dst] = b2i(get(0) < get(1))
	case ir.CmpLE:
		regs[in.Dst] = b2i(get(0) <= get(1))
	case ir.CmpGT:
		regs[in.Dst] = b2i(get(0) > get(1))
	case ir.CmpGE:
		regs[in.Dst] = b2i(get(0) >= get(1))
	case ir.FAdd:
		setf(fget(0) + fget(1))
	case ir.FSub:
		setf(fget(0) - fget(1))
	case ir.FMul:
		setf(fget(0) * fget(1))
	case ir.FDiv:
		setf(fget(0) / fget(1))
	case ir.FNeg:
		setf(-fget(0))
	case ir.FAbs:
		v := fget(0)
		if v < 0 {
			v = -v
		}
		setf(v)
	case ir.FSqrt:
		setf(math.Sqrt(fget(0)))
	case ir.FCmpLT:
		regs[in.Dst] = b2i(fget(0) < fget(1))
	case ir.FCmpGT:
		regs[in.Dst] = b2i(fget(0) > fget(1))
	case ir.ItoF:
		setf(float64(get(0)))
	case ir.FtoI:
		regs[in.Dst] = int64(fget(0))
	case ir.Load:
		a := get(0) + in.Imm
		if a < 0 || a >= int64(len(mem)) {
			return fmt.Errorf("load address %d out of range [0,%d)", a, len(mem))
		}
		regs[in.Dst] = mem[a]
	case ir.Store:
		a := get(1) + in.Imm
		if a < 0 || a >= int64(len(mem)) {
			return fmt.Errorf("store address %d out of range [0,%d)", a, len(mem))
		}
		mem[a] = get(0)
	default:
		return fmt.Errorf("unexpected opcode %v", in.Op)
	}
	return nil
}
