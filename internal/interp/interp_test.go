package interp

import (
	"errors"
	"testing"

	"repro/internal/ir"
)

func TestRunArithmetic(t *testing.T) {
	// Exercise every ALU opcode through the interpreter.
	b := ir.NewBuilder("alu")
	x := b.Param()
	y := b.Param()

	outs := []ir.Reg{
		b.Add(x, y), b.Sub(x, y), b.Mul(x, y), b.Div(x, y), b.Rem(x, y),
		b.And(x, y), b.Or(x, y), b.Xor(x, y),
		b.Shl(x, b.Const(2)), b.Shr(x, b.Const(1)),
		b.Neg(x), b.Op1(ir.Not, x), b.Abs(b.Neg(x)),
		b.CmpEQ(x, y), b.CmpNE(x, y), b.CmpLT(x, y), b.CmpLE(x, y),
		b.CmpGT(x, y), b.CmpGE(x, y),
	}
	b.Ret(outs...)

	res, err := Run(b.F, []int64{20, 6}, nil, 1000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int64{
		26, 14, 120, 3, 2,
		4, 22, 18,
		80, 10,
		-20, ^int64(20), 20,
		0, 1, 0, 0, 1, 1,
	}
	for i, w := range want {
		if res.LiveOuts[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, res.LiveOuts[i], w)
		}
	}
}

func TestRunFloatingPoint(t *testing.T) {
	b := ir.NewBuilder("fp")
	x := b.FConst(2.25)
	y := b.FConst(4.0)
	sum := b.FAdd(x, y)
	quot := b.FDiv(y, x)
	root := b.Op1(ir.FSqrt, y)
	asInt := b.FtoI(sum)
	roundTrip := b.FtoI(b.ItoF(b.Const(17)))
	lt := b.FCmpLT(x, y)
	b.Ret(asInt, roundTrip, lt, b.FtoI(quot), b.FtoI(root))

	res, err := Run(b.F, nil, nil, 1000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int64{6, 17, 1, 1, 2}
	for i, w := range want {
		if res.LiveOuts[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, res.LiveOuts[i], w)
		}
	}
}

func TestRunDivByZeroIsDefined(t *testing.T) {
	b := ir.NewBuilder("div0")
	z := b.Const(0)
	x := b.Const(5)
	b.Ret(b.Div(x, z), b.Rem(x, z))
	res, err := Run(b.F, nil, nil, 100)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.LiveOuts[0] != 0 || res.LiveOuts[1] != 0 {
		t.Errorf("div/rem by zero = %v, want [0 0]", res.LiveOuts)
	}
}

func TestRunStepLimit(t *testing.T) {
	b := ir.NewBuilder("spin")
	loop := b.Block("loop")
	b.Jump(loop)
	b.SetBlock(loop)
	one := b.Const(1)
	b.Br(one, loop, loop) // never terminates
	_, err := Run(b.F, nil, nil, 500)
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestRunWrongArity(t *testing.T) {
	b := ir.NewBuilder("arity")
	p := b.Param()
	b.Ret(p)
	if _, err := Run(b.F, nil, nil, 100); err == nil {
		t.Error("missing args accepted")
	}
	if _, err := Run(b.F, []int64{1, 2}, nil, 100); err == nil {
		t.Error("extra args accepted")
	}
}

func TestRunMemoryFault(t *testing.T) {
	b := ir.NewBuilder("oob")
	a := b.Const(50)
	v := b.Load(a, 0)
	b.Ret(v)
	if _, err := Run(b.F, nil, make(Memory, 10), 100); err == nil {
		t.Error("out-of-range load accepted")
	}
}

func TestRunProfileCountsEdges(t *testing.T) {
	b := ir.NewBuilder("prof")
	loop := b.Block("loop")
	exit := b.Block("exit")
	i := b.F.NewReg()
	b.ConstTo(i, 0)
	b.Jump(loop)
	b.SetBlock(loop)
	one := b.Const(1)
	b.Op2To(i, ir.Add, i, one)
	lim := b.Const(7)
	c := b.CmpLT(i, lim)
	b.Br(c, loop, exit)
	b.SetBlock(exit)
	b.Ret(i)
	b.F.SplitCriticalEdges()

	res, err := Run(b.F, nil, nil, 10_000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if w := res.Profile.BlockWeight(loop); w != 7 {
		t.Errorf("loop weight = %d, want 7", w)
	}
	if w := res.Profile.BlockWeight(exit); w != 1 {
		t.Errorf("exit weight = %d, want 1", w)
	}
}

// mtPair builds a two-thread ping-pong program exchanging n values.
func mtPair(n int64, capOK bool) ([]*ir.Function, int) {
	mk := func(producer bool) *ir.Function {
		f := ir.NewFunction("t")
		f.NumQueues = 2
		entry := f.NewBlock("entry")
		loop := f.NewBlock("loop")
		exit := f.NewBlock("exit")
		i := f.NewReg()
		one := f.NewReg()
		lim := f.NewReg()
		c := f.NewReg()
		v := f.NewReg()
		ci := f.NewInstr(ir.Const, i)
		entry.Append(ci)
		c1 := f.NewInstr(ir.Const, one)
		c1.Imm = 1
		entry.Append(c1)
		cl := f.NewInstr(ir.Const, lim)
		cl.Imm = n
		entry.Append(cl)
		entry.Append(f.NewInstr(ir.Jump, ir.NoReg))
		entry.SetSuccs(loop)
		if producer {
			p := f.NewInstr(ir.Produce, ir.NoReg, i)
			p.Queue = 0
			loop.Append(p)
			cons := f.NewInstr(ir.Consume, v)
			cons.Queue = 1
			loop.Append(cons)
		} else {
			cons := f.NewInstr(ir.Consume, v)
			cons.Queue = 0
			loop.Append(cons)
			p := f.NewInstr(ir.Produce, ir.NoReg, v)
			p.Queue = 1
			loop.Append(p)
		}
		loop.Append(f.NewInstr(ir.Add, i, i, one))
		loop.Append(f.NewInstr(ir.CmpLT, c, i, lim))
		loop.Append(f.NewInstr(ir.Br, ir.NoReg, c))
		loop.SetSuccs(loop, exit)
		ret := f.NewInstr(ir.Ret, ir.NoReg)
		if producer {
			ret.Srcs = []ir.Reg{v}
		}
		exit.Append(ret)
		return f
	}
	_ = capOK
	return []*ir.Function{mk(true), mk(false)}, 2
}

func TestRunMTPingPong(t *testing.T) {
	threads, nq := mtPair(100, true)
	res, err := RunMT(MTConfig{Threads: threads, NumQueues: nq, MaxSteps: 100_000})
	if err != nil {
		t.Fatalf("RunMT: %v", err)
	}
	// The producer gets its own last value echoed back: 99.
	if len(res.LiveOuts) != 1 || res.LiveOuts[0] != 99 {
		t.Errorf("live-outs = %v, want [99]", res.LiveOuts)
	}
	if res.Stats.Produce != 200 || res.Stats.Consume != 200 {
		t.Errorf("produce/consume = %d/%d, want 200/200", res.Stats.Produce, res.Stats.Consume)
	}
}

func TestRunMTDeadlockDetected(t *testing.T) {
	// Both threads consume first from queues only the other fills later:
	// guaranteed deadlock.
	mk := func(consumeQ, produceQ int) *ir.Function {
		f := ir.NewFunction("dead")
		f.NumQueues = 2
		e := f.NewBlock("entry")
		v := f.NewReg()
		cons := f.NewInstr(ir.Consume, v)
		cons.Queue = consumeQ
		e.Append(cons)
		p := f.NewInstr(ir.Produce, ir.NoReg, v)
		p.Queue = produceQ
		e.Append(p)
		e.Append(f.NewInstr(ir.Ret, ir.NoReg))
		return f
	}
	_, err := RunMT(MTConfig{
		Threads:   []*ir.Function{mk(0, 1), mk(1, 0)},
		NumQueues: 2,
		MaxSteps:  10_000,
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("err = %v, want ErrDeadlock", err)
	}
}

func TestRunMTQueueCapacityBlocks(t *testing.T) {
	// Producer floods 100 values; consumer drains them all. With capacity
	// 1 the run still completes (blocking produce).
	threads, nq := mtPair(100, true)
	res, err := RunMT(MTConfig{Threads: threads, NumQueues: nq, QueueCap: 1, MaxSteps: 100_000})
	if err != nil {
		t.Fatalf("RunMT cap=1: %v", err)
	}
	if res.LiveOuts[0] != 99 {
		t.Errorf("live-out = %d, want 99", res.LiveOuts[0])
	}
}

func TestCommStatsArithmetic(t *testing.T) {
	s := CommStats{Compute: 10, Produce: 2, Consume: 3, ProduceSync: 4, ConsumeSync: 5, DupBranch: 6}
	if s.Comm() != 14 {
		t.Errorf("Comm = %d, want 14", s.Comm())
	}
	if s.MemSync() != 9 {
		t.Errorf("MemSync = %d, want 9", s.MemSync())
	}
	if s.Total() != 30 {
		t.Errorf("Total = %d, want 30", s.Total())
	}
	var sum CommStats
	sum.Add(s)
	sum.Add(s)
	if sum.Total() != 60 {
		t.Errorf("Add: total = %d, want 60", sum.Total())
	}
}
