package interp

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/coco"
	"repro/internal/mtcg"
	"repro/internal/pdg"
	"repro/internal/testprog"
)

func TestMTAttrConservesAndIsObservational(t *testing.T) {
	p := testprog.Fig5()
	g := pdg.Build(p.F, p.Objects)
	pl, err := coco.Plan(p.F, g, p.Assign, 2, p.Profile, coco.DefaultOptions())
	if err != nil {
		t.Fatalf("coco: %v", err)
	}
	prog, err := mtcg.Generate(pl)
	if err != nil {
		t.Fatalf("mtcg: %v", err)
	}
	mk := func(withAttr bool) *MTResult {
		res, err := RunMT(MTConfig{
			Threads:   prog.Threads,
			NumQueues: prog.NumQueues,
			Assign:    p.Assign,
			Args:      []int64{9, 1, 1},
			Mem:       make(Memory, 2),
			MaxSteps:  1_000_000,
			Attr:      withAttr,
		})
		if err != nil {
			t.Fatalf("RunMT(attr=%v): %v", withAttr, err)
		}
		return res
	}
	base, res := mk(false), mk(true)

	// Attribution must not perturb the run.
	if res.Steps != base.Steps || res.Sched != base.Sched {
		t.Errorf("attribution changed the run: steps %d/%d sched %+v/%+v",
			res.Steps, base.Steps, res.Sched, base.Sched)
	}
	if base.Attr != nil || base.ThreadPicks != nil {
		t.Errorf("attribution recorded without being requested")
	}

	// Per-thread pick counts are the conservation totals and sum to the
	// scheduler's pick count.
	var picks int64
	for _, n := range res.ThreadPicks {
		picks += n
	}
	if picks != res.Sched.Picks {
		t.Errorf("ThreadPicks sum to %d, scheduler made %d picks", picks, res.Sched.Picks)
	}
	if err := res.Attr.CheckConservation(res.ThreadPicks); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	if res.Attr.Clock != "picks" {
		t.Errorf("interpreter attribution clock = %q, want picks", res.Attr.Clock)
	}

	// The taxonomy splits picks exactly into issued steps and blocked
	// turns: Issue == Steps, queue buckets == BlockedTurns, and the
	// simulator-only buckets stay empty.
	tot := res.Attr.TotalBuckets()
	if tot[attr.Issue] != res.Steps {
		t.Errorf("issue bucket = %d, steps = %d", tot[attr.Issue], res.Steps)
	}
	if got := tot[attr.QueueEmpty] + tot[attr.QueueFull]; got != res.Sched.BlockedTurns {
		t.Errorf("queue buckets = %d, blocked turns = %d", got, res.Sched.BlockedTurns)
	}
	for _, b := range []attr.Bucket{attr.DepStall, attr.Memory, attr.CommLatency, attr.Branch, attr.Fault, attr.Idle} {
		if tot[b] != 0 {
			t.Errorf("clean interpreter run attributed %d picks to %s", tot[b], b)
		}
	}
}
