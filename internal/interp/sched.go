package interp

import (
	"fmt"
	"math/rand"
	"strings"
)

// Scheduler is a pluggable thread-scheduling policy for RunMT. The
// multi-threaded interpreter is a cooperative machine: at every step it asks
// the policy which runnable thread to attempt next. A correct MTCG program
// must produce identical live-outs and final memory under *every* policy —
// the differential oracle (internal/oracle) exercises several policies
// precisely because queue-placement and synchronization bugs can hide behind
// any single interleaving.
//
// Implementations are used by one run at a time and need not be safe for
// concurrent use.
type Scheduler interface {
	// Name identifies the policy in reports and reproducer printouts.
	Name() string
	// Pick returns the index of the thread to attempt next, chosen from
	// runnable, which is non-empty and lists thread indices in increasing
	// order (threads that are neither finished nor blocked since the last
	// progress). lastRan is the step number at which each thread last
	// issued an instruction (-1 if never); step is the number of
	// instructions issued so far.
	Pick(runnable []int, lastRan []int64, step int64) int
}

// roundRobin is the default policy and reproduces the historical RunMT
// behavior: threads take turns in index order, skipping blocked threads.
type roundRobin struct{ cursor int }

// RoundRobin returns the deterministic take-turns policy (the default).
func RoundRobin() Scheduler { return &roundRobin{} }

func (s *roundRobin) Name() string { return "round-robin" }

func (s *roundRobin) Pick(runnable []int, _ []int64, _ int64) int {
	// First runnable thread at or after the cursor, wrapping around.
	pick := runnable[0]
	for _, ti := range runnable {
		if ti >= s.cursor {
			pick = ti
			break
		}
	}
	s.cursor = pick + 1
	return pick
}

// randomSched picks uniformly among runnable threads with a seeded PRNG, so
// a failure under "random(seed)" replays exactly.
type randomSched struct {
	rng  *rand.Rand
	seed int64
}

// Random returns the seeded uniform-random policy.
func Random(seed int64) Scheduler {
	return &randomSched{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

func (s *randomSched) Name() string { return fmt.Sprintf("random(%d)", s.seed) }

func (s *randomSched) Pick(runnable []int, _ []int64, _ int64) int {
	return runnable[s.rng.Intn(len(runnable))]
}

// adversarial maximizes skew: it keeps running one thread until that thread
// blocks or finishes, then switches to the runnable thread that has waited
// longest (smallest last-ran step — "longest-blocked-first"). This drives
// queues to their capacity limits and starves consumers, the schedule most
// likely to expose placement and synchronization bugs.
type adversarial struct{ current int }

// Adversarial returns the deterministic longest-blocked-first policy.
func Adversarial() Scheduler { return &adversarial{current: -1} }

func (s *adversarial) Name() string { return "adversarial" }

func (s *adversarial) Pick(runnable []int, lastRan []int64, _ int64) int {
	for _, ti := range runnable {
		if ti == s.current {
			return ti // keep driving the same thread while it can run
		}
	}
	pick := runnable[0]
	for _, ti := range runnable[1:] {
		if lastRan[ti] < lastRan[pick] {
			pick = ti
		}
	}
	s.current = pick
	return pick
}

// SchedulerByName builds a policy from its CLI spelling: "round-robin" (or
// "rr"), "random" (seeded with seed), or "adversarial".
func SchedulerByName(name string, seed int64) (Scheduler, error) {
	switch strings.ToLower(name) {
	case "round-robin", "rr", "":
		return RoundRobin(), nil
	case "random":
		return Random(seed), nil
	case "adversarial", "adv":
		return Adversarial(), nil
	}
	return nil, fmt.Errorf("interp: unknown schedule %q (want round-robin, random, or adversarial)", name)
}

// AllSchedulers returns the oracle's standard policy matrix: round-robin,
// three seeded-random interleavings derived from seed, and the adversarial
// longest-blocked-first policy.
func AllSchedulers(seed int64) []Scheduler {
	return []Scheduler{
		RoundRobin(),
		Random(seed),
		Random(seed + 1),
		Random(seed + 2),
		Adversarial(),
	}
}
