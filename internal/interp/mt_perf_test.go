package interp

import (
	"reflect"
	"testing"
)

// TestRunMTFastPathEquivalence pins the specialized default-configuration
// loop (runMTFast) against the general scheduler loop: an explicit
// RoundRobin() scheduler routes RunMT through the general loop, a nil
// Sched through the fast one, and every observable field of the MTResult
// must be deep-equal across queue capacities and iteration counts.
func TestRunMTFastPathEquivalence(t *testing.T) {
	for _, qcap := range []int{1, 2, 3, 32} {
		for _, iters := range []int64{0, 1, 7, 100, 1000} {
			threads, nq := mtPair(iters, true)
			fast, errFast := RunMT(MTConfig{
				Threads: threads, NumQueues: nq, QueueCap: qcap, MaxSteps: 100_000,
			})
			threads2, nq2 := mtPair(iters, true)
			slow, errSlow := RunMT(MTConfig{
				Threads: threads2, NumQueues: nq2, QueueCap: qcap,
				Sched: RoundRobin(), MaxSteps: 100_000,
			})
			if (errFast != nil) != (errSlow != nil) {
				t.Fatalf("cap=%d n=%d: fast err %v, slow err %v", qcap, iters, errFast, errSlow)
			}
			if errFast != nil {
				continue
			}
			if !reflect.DeepEqual(fast, slow) {
				t.Errorf("cap=%d n=%d: fast path result differs from general loop:\nfast: %+v\nslow: %+v",
					qcap, iters, fast, slow)
			}
		}
	}
}

// TestRunMTNoObserverAllocsConstant proves the no-observer path allocates
// nothing per step: after a pool-warming run, a run 50× longer must cost
// exactly the same number of allocations (the MTResult the caller keeps),
// so per-step work — queue pushes, register writes, scheduler picks — is
// allocation-free.
func TestRunMTNoObserverAllocsConstant(t *testing.T) {
	run := func(iters int64) {
		threads, nq := mtPair(iters, true)
		if _, err := RunMT(MTConfig{
			Threads: threads, NumQueues: nq, QueueCap: 1, MaxSteps: 10_000_000,
		}); err != nil {
			t.Fatal(err)
		}
	}
	run(2000) // warm the scratch pool to its high-water capacity
	short := testing.AllocsPerRun(10, func() { run(40) })
	long := testing.AllocsPerRun(10, func() { run(2000) })
	if short != long {
		t.Errorf("allocations scale with steps: %v for 40 iterations vs %v for 2000", short, long)
	}
	// The absolute count is the escaping MTResult plus the mtPair program
	// construction the closure performs; bound it loosely so refactors
	// don't break the test, while still catching any per-step allocation
	// (which would add thousands).
	if long > 200 {
		t.Errorf("no-observer run allocated %v times, want O(1) result allocations only", long)
	}
}

// BenchmarkRunMTNoObserver measures the raw no-observer interpreter loop
// (the path BENCH_pipeline.json's MTInterp entry exercises through the
// full pipeline) on the ping-pong microprogram; run with -benchmem to see
// the zero per-step allocation profile.
func BenchmarkRunMTNoObserver(b *testing.B) {
	threads, nq := mtPair(10_000, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunMT(MTConfig{
			Threads: threads, NumQueues: nq, QueueCap: 32, MaxSteps: 10_000_000,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
