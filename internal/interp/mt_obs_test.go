package interp

import (
	"fmt"
	"testing"

	"repro/internal/ir"
	"repro/internal/obs"
)

// hwmBurst builds a two-thread program: thread 0 pushes n values into
// queue 0 back-to-back and then one value into queue 1; thread 1 spends n
// compute steps before draining both queues. Under round-robin the
// producer runs n steps ahead, so queue 0's occupancy climbs to
// min(n, cap) while queue 1 never holds more than one value.
func hwmBurst(n int) []*ir.Function {
	prod := ir.NewFunction("prod")
	prod.NumQueues = 2
	pe := prod.NewBlock("entry")
	i := prod.NewReg()
	ci := prod.NewInstr(ir.Const, i)
	ci.Imm = 7
	pe.Append(ci)
	for k := 0; k < n; k++ {
		p := prod.NewInstr(ir.Produce, ir.NoReg, i)
		p.Queue = 0
		pe.Append(p)
	}
	p1 := prod.NewInstr(ir.Produce, ir.NoReg, i)
	p1.Queue = 1
	pe.Append(p1)
	pe.Append(prod.NewInstr(ir.Ret, ir.NoReg))

	cons := ir.NewFunction("cons")
	cons.NumQueues = 2
	ce := cons.NewBlock("entry")
	j := cons.NewReg()
	ce.Append(cons.NewInstr(ir.Const, j))
	for k := 0; k < n; k++ {
		ce.Append(cons.NewInstr(ir.Add, j, j, j))
	}
	v := cons.NewReg()
	for k := 0; k < n; k++ {
		c := cons.NewInstr(ir.Consume, v)
		c.Queue = 0
		ce.Append(c)
	}
	c1 := cons.NewInstr(ir.Consume, v)
	c1.Queue = 1
	ce.Append(c1)
	ce.Append(cons.NewInstr(ir.Ret, ir.NoReg))
	return []*ir.Function{prod, cons}
}

// TestQueueHWMTrackedPerQueue pins the high-water semantics: occupancy is
// tracked per (producer, consumer) queue. A single global maximum would
// report the burst queue's depth for the single-entry queue too.
func TestQueueHWMTrackedPerQueue(t *testing.T) {
	const n = 8
	for _, tc := range []struct {
		cap    int
		wantQ0 int64
	}{
		{cap: DefaultQueueCap, wantQ0: n}, // burst fits: hwm is the burst size
		{cap: 4, wantQ0: 4},               // capped: hwm saturates at the queue depth
	} {
		reg := obs.NewRegistry()
		res, err := RunMT(MTConfig{
			Threads: hwmBurst(n), NumQueues: 2, QueueCap: tc.cap,
			MaxSteps: 10_000, Metrics: reg.Scope("interp"),
		})
		if err != nil {
			t.Fatalf("cap=%d: %v", tc.cap, err)
		}
		if res.QueueHWM[0] != tc.wantQ0 {
			t.Errorf("cap=%d: queue 0 hwm = %d, want %d", tc.cap, res.QueueHWM[0], tc.wantQ0)
		}
		if res.QueueHWM[1] != 1 {
			t.Errorf("cap=%d: queue 1 hwm = %d, want 1 (a global high-water mark would report %d)",
				tc.cap, res.QueueHWM[1], res.QueueHWM[0])
		}
		for q := 0; q < 2; q++ {
			name := fmt.Sprintf("interp.queue.%d.hwm", q)
			if g := reg.Gauge(name).Value(); g != res.QueueHWM[q] {
				t.Errorf("cap=%d: gauge %s = %d, MTResult says %d", tc.cap, name, g, res.QueueHWM[q])
			}
		}
	}
}

// TestQueueDepthTraceEvents: with a trace lane attached, every produce and
// consume emits a queue-depth counter sample stamped with the interpreter
// step.
func TestQueueDepthTraceEvents(t *testing.T) {
	tr := obs.NewTrace()
	res, err := RunMT(MTConfig{
		Threads: hwmBurst(3), NumQueues: 2, QueueCap: DefaultQueueCap,
		MaxSteps: 10_000, Trace: tr.Lane(1, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, qs := range res.PerQueue {
		want += qs.Produced + qs.Consumed
	}
	if got := int64(tr.Len()); got != want {
		t.Errorf("trace has %d events, want one per produce/consume = %d", got, want)
	}
}
