// Package par provides the bounded worker pool behind the framework's
// parallel fan-outs: the experiment engine's workload × partitioner matrix
// and gmt.ParallelizeAll. Determinism is the caller's job — work items are
// identified by dense indices so results can be written to preallocated
// slots, making parallel output identical to serial output.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Run invokes fn(i) for every i in [0, n), using up to jobs concurrent
// workers (jobs <= 0 means runtime.GOMAXPROCS(0); jobs == 1 runs serially
// on the calling goroutine). It stops dispatching new work on the first
// error or when ctx is cancelled, waits for in-flight work to finish, and
// returns the first error observed. fn must write its result to an
// index-addressed slot; Run itself imposes no ordering on execution.
func Run(ctx context.Context, jobs, n int, fn func(i int) error) error {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if n <= 0 {
		return ctx.Err()
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	// One cancellation scope for the pool: the first failure stops the
	// feeder, so queued-but-undispatched work is never started.
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	work := make(chan int)
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				if err := pctx.Err(); err != nil {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-pctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}
