package par_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/par"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, jobs := range []int{0, 1, 2, 7, 100} {
		var hits [57]atomic.Int32
		err := par.Run(context.Background(), jobs, len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("jobs=%d: index %d ran %d times", jobs, i, n)
			}
		}
	}
}

func TestRunSerialPreservesOrder(t *testing.T) {
	var order []int
	err := par.Run(context.Background(), 1, 5, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestRunFirstErrorStopsDispatch(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := par.Run(context.Background(), 2, 1000, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := ran.Load(); n == 1000 {
		t.Error("error did not stop dispatch: all 1000 items ran")
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	for _, jobs := range []int{1, 4} {
		err := par.Run(ctx, jobs, 100, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: err = %v, want context.Canceled", jobs, err)
		}
	}
	// Workers may each have picked up at most one item before noticing.
	if n := ran.Load(); n > 8 {
		t.Errorf("%d items ran after cancellation", n)
	}
}

func TestRunCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := par.Run(ctx, 2, 1000, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Error("cancellation did not stop dispatch")
	}
}

func TestRunEmpty(t *testing.T) {
	if err := par.Run(context.Background(), 4, 0, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
