// Package ring provides the fixed-overhead FIFO ring buffer behind the
// synchronization-array queues of both the multi-threaded interpreter and
// the cycle-level simulator. The previous queue representation — a Go
// slice re-sliced on every pop and appended on every push — reallocated
// its backing array every few hundred operations and, in the simulator,
// retained every value ever produced. A power-of-two ring with monotonic
// head/tail indices makes push and pop branch-free index arithmetic with
// zero steady-state allocation, which is what the paper's "fast
// synchronization array communication" model demands of the hot path.
package ring

// Buf is a growable FIFO queue over a power-of-two ring. The zero value is
// an empty queue; Init pre-sizes it. Buf is not safe for concurrent use.
//
// Capacity grows by doubling when a Push finds the ring full, preserving
// FIFO order. Growth only happens when occupancy exceeds the Init hint —
// in this codebase only under injected faults (dup-produce and swap-queue
// can push past the architectural queue capacity the interpreter checks).
type Buf[T any] struct {
	buf  []T
	head uint64 // index of the next Pop, monotonically increasing
	tail uint64 // index of the next Push, monotonically increasing
}

// Init empties the buffer and ensures capacity for at least min elements
// without growing. Existing storage is kept when large enough, so a pooled
// Buf reused across runs settles at its high-water capacity and stops
// allocating.
func (b *Buf[T]) Init(min int) {
	b.head, b.tail = 0, 0
	if min > len(b.buf) {
		b.buf = make([]T, ceilPow2(min))
	}
}

// Len returns the number of buffered elements.
func (b *Buf[T]) Len() int { return int(b.tail - b.head) }

// Cap returns the current ring capacity.
func (b *Buf[T]) Cap() int { return len(b.buf) }

// Push appends v, growing the ring if it is full.
func (b *Buf[T]) Push(v T) {
	if int(b.tail-b.head) == len(b.buf) {
		b.grow()
	}
	b.buf[b.tail&uint64(len(b.buf)-1)] = v
	b.tail++
}

// Pop removes and returns the oldest element. It must not be called on an
// empty buffer.
func (b *Buf[T]) Pop() T {
	v := b.buf[b.head&uint64(len(b.buf)-1)]
	b.head++
	return v
}

// Peek returns the oldest element without removing it. It must not be
// called on an empty buffer.
func (b *Buf[T]) Peek() T {
	return b.buf[b.head&uint64(len(b.buf)-1)]
}

// At returns the i-th element from the head (At(0) == Peek()). It must
// only be called with 0 <= i < Len().
func (b *Buf[T]) At(i int) T {
	return b.buf[(b.head+uint64(i))&uint64(len(b.buf)-1)]
}

// grow doubles the ring, copying the live elements in FIFO order.
func (b *Buf[T]) grow() {
	n := len(b.buf)
	if n == 0 {
		b.buf = make([]T, 1)
		return
	}
	nb := make([]T, 2*n)
	live := int(b.tail - b.head)
	for i := 0; i < live; i++ {
		nb[i] = b.buf[(b.head+uint64(i))&uint64(n-1)]
	}
	b.buf = nb
	b.head, b.tail = 0, uint64(live)
}

// ceilPow2 returns the smallest power of two >= n (and >= 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
