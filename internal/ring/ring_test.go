package ring

import (
	"math/rand"
	"testing"
)

// TestFIFOAgainstSlice drives a Buf and a reference slice queue with the
// same random push/pop sequence and asserts they agree at every step —
// the property the synchronization-array queues rely on, including
// wrap-around (head/tail lap the ring many times) and growth.
func TestFIFOAgainstSlice(t *testing.T) {
	for _, initCap := range []int{0, 1, 2, 8, 32} {
		rng := rand.New(rand.NewSource(int64(initCap + 1)))
		var b Buf[int64]
		b.Init(initCap)
		var ref []int64
		for step := 0; step < 100_000; step++ {
			if b.Len() != len(ref) {
				t.Fatalf("init %d step %d: Len = %d, reference %d", initCap, step, b.Len(), len(ref))
			}
			// Bias pushes slightly so the queue laps its ring.
			if len(ref) == 0 || rng.Intn(100) < 55 {
				v := rng.Int63()
				b.Push(v)
				ref = append(ref, v)
			} else {
				got, want := b.Pop(), ref[0]
				ref = ref[1:]
				if got != want {
					t.Fatalf("init %d step %d: Pop = %d, want %d", initCap, step, got, want)
				}
			}
			if len(ref) > 0 {
				if got := b.Peek(); got != ref[0] {
					t.Fatalf("init %d step %d: Peek = %d, want %d", initCap, step, got, ref[0])
				}
				i := rng.Intn(len(ref))
				if got := b.At(i); got != ref[i] {
					t.Fatalf("init %d step %d: At(%d) = %d, want %d", initCap, step, i, got, ref[i])
				}
			}
		}
	}
}

// TestGrowthPreservesOrder fills past the initial capacity at a wrapped
// head position, forcing grow() to relinearize mid-ring.
func TestGrowthPreservesOrder(t *testing.T) {
	var b Buf[int]
	b.Init(4)
	if b.Cap() != 4 {
		t.Fatalf("Cap after Init(4) = %d, want 4", b.Cap())
	}
	// Advance head so the live window wraps.
	for i := 0; i < 3; i++ {
		b.Push(-1)
	}
	for i := 0; i < 3; i++ {
		b.Pop()
	}
	for i := 0; i < 40; i++ {
		b.Push(i)
	}
	if b.Len() != 40 {
		t.Fatalf("Len = %d, want 40", b.Len())
	}
	for i := 0; i < 40; i++ {
		if got := b.Pop(); got != i {
			t.Fatalf("Pop #%d = %d, want %d", i, got, i)
		}
	}
}

// TestInitReusesStorage pins the pooling contract: Init with a smaller or
// equal hint keeps the existing backing array, so a reused Buf stops
// allocating once it has seen its high-water capacity.
func TestInitReusesStorage(t *testing.T) {
	var b Buf[int64]
	b.Init(32)
	for i := 0; i < 100; i++ {
		b.Push(int64(i)) // grows past 32
	}
	grown := b.Cap()
	if grown < 100 {
		t.Fatalf("Cap = %d, want >= 100", grown)
	}
	allocs := testing.AllocsPerRun(100, func() {
		b.Init(32)
		for i := 0; i < grown; i++ {
			b.Push(int64(i))
		}
	})
	if allocs != 0 {
		t.Fatalf("reused Buf allocated %v times per run, want 0", allocs)
	}
	if b.Cap() != grown {
		t.Fatalf("Init shrank capacity to %d, want %d kept", b.Cap(), grown)
	}
}

// TestZeroValue checks the zero Buf works without Init.
func TestZeroValue(t *testing.T) {
	var b Buf[string]
	if b.Len() != 0 {
		t.Fatalf("zero Buf Len = %d", b.Len())
	}
	b.Push("a")
	b.Push("b")
	if got := b.Pop(); got != "a" {
		t.Fatalf("Pop = %q, want a", got)
	}
	if got := b.Pop(); got != "b" {
		t.Fatalf("Pop = %q, want b", got)
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 31: 32, 32: 32, 33: 64}
	for n, want := range cases {
		if got := ceilPow2(n); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", n, got, want)
		}
	}
}
