package mtcg

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/pdg"
)

// Program is the result of multi-threaded code generation: one function per
// thread, communicating over NumQueues synchronization-array queues.
type Program struct {
	Orig       *ir.Function
	Threads    []*ir.Function
	NumQueues  int
	Comms      []*Comm
	Assign     map[*ir.Instr]int
	NumThreads int
}

// commEmit is one produce or consume to materialize at a point.
type commEmit struct {
	comm    *Comm
	produce bool
}

// Generate materializes a communication plan into per-thread functions
// (steps 1, 2 and 4 of Algorithm 1, with step 3's communication placement
// taken from the plan). It returns an error if the plan is inconsistent —
// most importantly if an irrelevant branch would have to decide between two
// different relevant successors, which indicates a broken relevant-branch
// closure.
func Generate(p *Plan) (*Program, error) {
	f := p.F
	pdomTree, err := analysis.PostDominators(f)
	if err != nil {
		return nil, fmt.Errorf("mtcg: %w", err)
	}
	retBlock := f.RetInstr().Block()

	// Assign queues: one per communication.
	for i, c := range p.Comms {
		c.Queue = i
		if c.Src == c.Dst {
			return nil, fmt.Errorf("mtcg: %v communicates within one thread", c)
		}
		if len(c.Points) == 0 {
			return nil, fmt.Errorf("mtcg: %v has no placement points", c)
		}
	}

	prog := &Program{
		Orig:       f,
		NumQueues:  len(p.Comms),
		Comms:      p.Comms,
		Assign:     p.Assign,
		NumThreads: p.NumThreads,
	}

	for t := 0; t < p.NumThreads; t++ {
		ft, err := generateThread(p, t, pdomTree, retBlock)
		if err != nil {
			return nil, err
		}
		ft.NumQueues = len(p.Comms)
		prog.Threads = append(prog.Threads, ft)
	}
	return prog, nil
}

func generateThread(p *Plan, t int, pdomTree *analysis.DomTree, retBlock *ir.Block) (*ir.Function, error) {
	f := p.F

	// Communication points involving this thread, grouped by point.
	emits := map[Point][]commEmit{}
	for _, c := range p.Comms {
		for _, pt := range c.Points {
			if c.Src == t {
				emits[pt] = append(emits[pt], commEmit{c, true})
			}
			if c.Dst == t {
				emits[pt] = append(emits[pt], commEmit{c, false})
			}
		}
	}
	// Deterministic per-point order shared by producer and consumer
	// threads: produces first (cannot deadlock and are value-correct at
	// any point of their cut), then consumes, each by queue number.
	for _, es := range emits {
		sort.Slice(es, func(i, j int) bool {
			if es[i].produce != es[j].produce {
				return es[i].produce
			}
			return es[i].comm.Queue < es[j].comm.Queue
		})
	}

	// Relevant blocks: content, communication points, replicated
	// branches, entry and exit.
	relevant := map[int]bool{
		f.Entry().ID: true,
		retBlock.ID:  true,
	}
	f.Instrs(func(in *ir.Instr) {
		if assignable(in) && p.Assign[in] == t && in.Op != ir.Ret {
			relevant[in.Block().ID] = true
		}
	})
	for pt := range emits {
		relevant[pt.Block.ID] = true
	}
	for id := range p.Relevant[t] {
		relevant[id] = true
	}

	ft := ir.NewFunction(fmt.Sprintf("%s.t%d", f.Name, t))
	ft.Params = append([]ir.Reg(nil), f.Params...)
	ft.ReserveRegs(f.MaxReg())

	// nextRel maps an original block to the first relevant block on every
	// path from it: the nearest post-dominator in the relevant set.
	nextRel := func(b *ir.Block) *ir.Block {
		var found *ir.Block
		pdomTree.WalkUp(b, func(x *ir.Block) bool {
			if relevant[x.ID] {
				found = x
				return false
			}
			return true
		})
		return found
	}

	// Create the blocks in original layout order.
	copies := map[int]*ir.Block{}
	var order []*ir.Block
	for _, b := range f.Blocks {
		if relevant[b.ID] {
			copies[b.ID] = ft.NewBlock(b.Name)
			order = append(order, b)
		}
	}

	type pendingEdge struct {
		from    *ir.Block
		targets []*ir.Block // original targets
	}
	var edges []pendingEdge

	for _, b := range order {
		nb := copies[b.ID]
		emitComms := func(idx int) {
			for _, e := range emits[Point{Block: b, Index: idx}] {
				var in *ir.Instr
				switch {
				case e.comm.Kind == pdg.KindReg && e.produce:
					in = ft.NewInstr(ir.Produce, ir.NoReg, e.comm.Reg)
				case e.comm.Kind == pdg.KindReg:
					in = ft.NewInstr(ir.Consume, e.comm.Reg)
				case e.produce:
					in = ft.NewInstr(ir.ProduceSync, ir.NoReg)
				default:
					in = ft.NewInstr(ir.ConsumeSync, ir.NoReg)
				}
				in.Queue = e.comm.Queue
				nb.Append(in)
			}
		}
		for i, in := range b.Instrs {
			emitComms(i)
			if in.IsTerminator() {
				break
			}
			if assignable(in) && p.Assign[in] == t {
				cp := ft.NewInstr(in.Op, in.Dst, append([]ir.Reg(nil), in.Srcs...)...)
				cp.Imm = in.Imm
				cp.Orig = in
				nb.Append(cp)
			}
		}

		term := b.Terminator()
		switch term.Op {
		case ir.Ret:
			var ret *ir.Instr
			if p.Assign[term] == t {
				ret = ft.NewInstr(ir.Ret, ir.NoReg, append([]ir.Reg(nil), term.Srcs...)...)
				ret.Orig = term
			} else {
				ret = ft.NewInstr(ir.Ret, ir.NoReg)
			}
			nb.Append(ret)
		case ir.Br:
			if p.Relevant[t][b.ID] || p.Assign[term] == t {
				br := ft.NewInstr(ir.Br, ir.NoReg, term.Srcs[0])
				br.Orig = term
				nb.Append(br)
				t0, t1 := nextRel(b.Succs[0]), nextRel(b.Succs[1])
				edges = append(edges, pendingEdge{nb, []*ir.Block{t0, t1}})
			} else {
				t0, t1 := nextRel(b.Succs[0]), nextRel(b.Succs[1])
				if t0 != t1 {
					return nil, fmt.Errorf(
						"mtcg: %s thread %d: irrelevant branch in %s separates relevant blocks %s and %s",
						f.Name, t, b.Name, t0.Name, t1.Name)
				}
				nb.Append(ft.NewInstr(ir.Jump, ir.NoReg))
				edges = append(edges, pendingEdge{nb, []*ir.Block{t0}})
			}
		case ir.Jump:
			nb.Append(ft.NewInstr(ir.Jump, ir.NoReg))
			edges = append(edges, pendingEdge{nb, []*ir.Block{nextRel(b.Succs[0])}})
		}
	}

	for _, e := range edges {
		var succs []*ir.Block
		for _, orig := range e.targets {
			succs = append(succs, copies[orig.ID])
		}
		e.from.SetSuccs(succs...)
	}
	return ft, nil
}
