// Package mtcg implements Multi-Threaded Code Generation: Algorithm 1 of
// the paper (originally from the DSWP paper [16]). Given any partition of a
// function's instructions into threads, it produces one control-flow graph
// per thread with produce/consume instructions satisfying every inter-thread
// dependence.
//
// The implementation is factored the way Section 3.2 suggests: a
// *communication plan* (which dependences to communicate, where, and which
// branches each thread must replicate) is materialized by a single code
// generator. NaivePlan reproduces the original MTCG placement —
// communication at the point of each dependence's source instruction —
// while package coco computes optimized plans consumed by the same
// generator.
package mtcg

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/pdg"
)

// Point is a program point in the original CFG: immediately before
// Block.Instrs[Index]. Index 0 is the block entry; the largest valid index
// is the terminator's (a point just before the terminator). Critical edges
// must have been split so that every CFG edge maps to a unique point.
type Point struct {
	Block *ir.Block
	Index int
}

// String renders the point for diagnostics.
func (p Point) String() string { return fmt.Sprintf("%s[%d]", p.Block.Name, p.Index) }

// Comm describes the communication of one dependence (one register, or the
// merged memory synchronization) from thread Src to thread Dst, placed at
// the given set of points — a cut of the register's (or memory's) flow
// graph. The Points of a single Comm share one queue.
type Comm struct {
	Kind pdg.Kind // KindReg or KindMem
	Reg  ir.Reg   // register carried (KindReg only)
	Src  int      // producing thread
	Dst  int      // consuming thread
	// Points are the placement points; the produce is inserted at each
	// point in CFG_Src and the matching consume at the same point in
	// CFG_Dst.
	Points []Point
	// Queue is the synchronization-array queue; assigned by Generate.
	Queue int
}

// String renders the communication for diagnostics.
func (c *Comm) String() string {
	what := "mem"
	if c.Kind == pdg.KindReg {
		what = c.Reg.String()
	}
	return fmt.Sprintf("comm %s T%d->T%d at %v", what, c.Src, c.Dst, c.Points)
}

// Plan is everything Generate needs: the partition, the communications with
// their placements, and the per-thread relevant branches (Definition 1) to
// replicate.
type Plan struct {
	F          *ir.Function
	Assign     map[*ir.Instr]int
	NumThreads int
	Comms      []*Comm
	// Relevant[t] holds the IDs of blocks whose terminating branch thread
	// t must contain (owned or duplicated).
	Relevant []map[int]bool
}

// assignable reports whether an instruction takes part in partitioning.
// Unconditional jumps and nops are structural; thread CFGs rebuild their own
// terminators.
func assignable(in *ir.Instr) bool { return in.Op != ir.Jump && in.Op != ir.Nop }

// After returns the point immediately after a non-terminator instruction.
func After(in *ir.Instr) Point {
	return Point{Block: in.Block(), Index: in.Index() + 1}
}

// Before returns the point immediately before an instruction.
func Before(in *ir.Instr) Point {
	return Point{Block: in.Block(), Index: in.Index()}
}

// NaivePlan builds the communication plan of the original MTCG algorithm
// (Algorithm 1): every inter-thread dependence is communicated at the point
// of its source instruction, each (value, source, target) on its own queue,
// and every transitive control dependence is implemented by replicating the
// branch and communicating its operand immediately before it.
func NaivePlan(f *ir.Function, g *pdg.Graph, assign map[*ir.Instr]int, numThreads int) *Plan {
	cdg := analysis.MustControlDeps(f, nil)
	p := &Plan{F: f, Assign: assign, NumThreads: numThreads}

	// Seed relevant branches: branches assigned to t, and branches
	// controlling an instruction assigned to t.
	seeds := make([]map[int]bool, numThreads)
	for t := range seeds {
		seeds[t] = map[int]bool{}
	}
	f.Instrs(func(in *ir.Instr) {
		if !assignable(in) {
			return
		}
		t := assign[in]
		if in.Op == ir.Br {
			seeds[t][in.Block().ID] = true
		}
		for _, a := range g.InArcs(in) {
			if a.Kind == pdg.KindControl {
				seeds[t][a.From.Block().ID] = true
			}
		}
	})

	// Data and memory communications at source points; their consume
	// points make the controlling branches relevant to the target thread
	// (the transitive control dependences of Section 2.1).
	type key struct {
		kind     pdg.Kind
		reg      ir.Reg
		src, dst int
	}
	comms := map[key]*Comm{}
	addPoint := func(k key, pt Point) {
		c := comms[k]
		if c == nil {
			c = &Comm{Kind: k.kind, Reg: k.reg, Src: k.src, Dst: k.dst}
			comms[k] = c
			p.Comms = append(p.Comms, c)
		}
		for _, q := range c.Points {
			if q == pt {
				return
			}
		}
		c.Points = append(c.Points, pt)
	}
	for _, a := range g.Arcs {
		ts, td := assign[a.From], assign[a.To]
		if ts == td || !assignable(a.From) || !assignable(a.To) {
			continue
		}
		switch a.Kind {
		case pdg.KindReg:
			addPoint(key{pdg.KindReg, a.Reg, ts, td}, After(a.From))
			for id := range cdg.Closure(a.From.Block()) {
				seeds[td][id] = true
			}
		case pdg.KindMem:
			addPoint(key{pdg.KindMem, ir.NoReg, ts, td}, After(a.From))
			for id := range cdg.Closure(a.From.Block()) {
				seeds[td][id] = true
			}
		case pdg.KindControl:
			// The branch becomes relevant to the target thread; its
			// block's own controllers follow via the closure below.
			seeds[td][a.From.Block().ID] = true
		}
	}

	p.Relevant = make([]map[int]bool, numThreads)
	for t := range p.Relevant {
		p.Relevant[t] = cdg.ClosureOf(seeds[t])
	}

	// Operand communication for every branch a thread replicates but does
	// not own: the duplicated branch's operand is a register use in that
	// thread, so — exactly as for ordinary register dependences — each
	// reaching definition in another thread is communicated right after
	// the definition. (Communicating from the branch's home thread, as
	// the literal Algorithm 1 does, is unsafe when the home thread itself
	// receives the operand at the branch: the produce would forward a
	// stale value.) Live-in pseudo-definitions need no communication
	// because every thread starts with the region's live-ins.
	// Iterate to a fixpoint: each consume point makes the branches
	// controlling it relevant to the target thread, and newly relevant
	// branches need their own operand communication.
	rd := dataflow.ComputeReachingDefs(f)
	chains := rd.Chains(dataflow.AllUses)
	for changed := true; changed; {
		changed = false
		for _, uc := range chains {
			if uc.Use.Op != ir.Br {
				continue
			}
			br := uc.Use
			for t := 0; t < numThreads; t++ {
				if !p.Relevant[t][br.Block().ID] || assign[br] == t {
					continue
				}
				for _, def := range uc.Defs {
					if def == nil || assign[def] == t {
						continue
					}
					addPoint(key{pdg.KindReg, uc.Reg, assign[def], t}, After(def))
					for id := range cdg.Closure(def.Block()) {
						if !p.Relevant[t][id] {
							p.Relevant[t][id] = true
							changed = true
						}
					}
				}
			}
		}
	}
	sortComms(p.Comms)
	return p
}

// sortComms orders communications deterministically (registers before the
// memory merge, then by register, source, destination) so queue numbering
// is reproducible.
func sortComms(cs []*Comm) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Reg != b.Reg {
			return a.Reg < b.Reg
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}
