package mtcg_test

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/pdg"
	"repro/internal/testprog"
)

// naiveProgram builds the naive-MTCG multi-threaded program for a fixture.
func naiveProgram(t *testing.T, p *testprog.Prog) *mtcg.Program {
	t.Helper()
	g := pdg.Build(p.F, p.Objects)
	plan := mtcg.NaivePlan(p.F, g, p.Assign, 2)
	prog, err := mtcg.Generate(plan)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, ft := range prog.Threads {
		if err := ft.Verify(); err != nil {
			t.Fatalf("thread %s invalid: %v\n%s", ft.Name, err, ft)
		}
	}
	return prog
}

// runBoth executes the fixture single- and multi-threaded and checks
// equivalence of live-outs and memory.
func runBoth(t *testing.T, p *testprog.Prog, prog *mtcg.Program, args []int64, memSize int64) (*interp.Result, *interp.MTResult) {
	t.Helper()
	st, err := interp.Run(p.F, args, make(interp.Memory, memSize), 1_000_000)
	if err != nil {
		t.Fatalf("single-threaded run: %v", err)
	}
	mt, err := interp.RunMT(interp.MTConfig{
		Threads:   prog.Threads,
		NumQueues: prog.NumQueues,
		Assign:    p.Assign,
		Args:      args,
		Mem:       make(interp.Memory, memSize),
		MaxSteps:  1_000_000,
	})
	if err != nil {
		t.Fatalf("multi-threaded run: %v", err)
	}
	if len(st.LiveOuts) != len(mt.LiveOuts) {
		t.Fatalf("live-out count: ST %v, MT %v", st.LiveOuts, mt.LiveOuts)
	}
	for i := range st.LiveOuts {
		if st.LiveOuts[i] != mt.LiveOuts[i] {
			t.Errorf("live-out %d: ST %d, MT %d", i, st.LiveOuts[i], mt.LiveOuts[i])
		}
	}
	for a := range st.Mem {
		if st.Mem[a] != mt.Mem[a] {
			t.Errorf("mem[%d]: ST %d, MT %d", a, st.Mem[a], mt.Mem[a])
		}
	}
	return st, mt
}

func TestFig3NaivePlan(t *testing.T) {
	p := testprog.Fig3()
	g := pdg.Build(p.F, p.Objects)
	plan := mtcg.NaivePlan(p.F, g, p.Assign, 2)

	// r1 must be communicated 0->1 at the points after A and after E.
	var r1c *mtcg.Comm
	for _, c := range plan.Comms {
		if c.Kind == pdg.KindReg && c.Reg == p.Regs["r1"] && c.Src == 0 && c.Dst == 1 {
			r1c = c
		}
	}
	if r1c == nil {
		t.Fatalf("no r1 communication in plan: %v", plan.Comms)
	}
	wantPts := map[mtcg.Point]bool{
		mtcg.After(p.Instrs["A"]): true,
		mtcg.After(p.Instrs["E"]): true,
	}
	if len(r1c.Points) != 2 || !wantPts[r1c.Points[0]] || !wantPts[r1c.Points[1]] {
		t.Errorf("r1 points = %v, want after A and after E", r1c.Points)
	}

	// D becomes relevant to thread 1 (transitive control dependence), so
	// its operand r2 is communicated right before D.
	if !plan.Relevant[1][p.Blocks["B2"].ID] {
		t.Error("branch D (B2) should be relevant to thread 1")
	}
	var r2c *mtcg.Comm
	for _, c := range plan.Comms {
		if c.Kind == pdg.KindReg && c.Reg == p.Regs["r2"] {
			r2c = c
		}
	}
	if r2c == nil {
		t.Fatal("no r2 communication for duplicated branch D")
	}
	if len(r2c.Points) != 1 || r2c.Points[0] != mtcg.Before(p.Instrs["D"]) {
		t.Errorf("r2 points = %v, want before D", r2c.Points)
	}

	// Branch operands that are unredefined live-ins (p2 of B, p3 of G)
	// need no communication.
	for _, c := range plan.Comms {
		if c.Kind == pdg.KindReg && (c.Reg == p.F.Params[1] || c.Reg == p.F.Params[2]) {
			t.Errorf("live-in parameter communicated: %v", c)
		}
	}
}

func TestFig3GenerateAndEquivalence(t *testing.T) {
	p := testprog.Fig3()
	prog := naiveProgram(t, p)

	// Thread 2 (index 1) replicates branches B, D and G; with the naive
	// plan all of B1, B2, B2e, B3 are relevant to it.
	t1 := prog.Threads[1]
	for _, name := range []string{"entry", "B2", "B2e", "B3"} {
		if t1.BlockByName(name) == nil {
			t.Errorf("thread 2 lacks block %s (naive MTCG keeps it)", name)
		}
	}
	// p3 = 0: exit after one iteration; exercise both arms via p2.
	for _, p2 := range []int64{0, 1} {
		runBoth(t, p, prog, []int64{5, p2, 0}, 0)
	}
}

func TestFig4NaiveCommunicatesInLoop(t *testing.T) {
	p := testprog.Fig4()
	prog := naiveProgram(t, p)
	_, mt := runBoth(t, p, prog, nil, 0)

	// Naive MTCG produces r1 after B on every loop-1 iteration (10) and
	// the replicated branch operand c1 on every iteration (10).
	if mt.Stats.Produce != 20 {
		t.Errorf("naive produces = %d, want 20 (r1 and c1, 10 iterations each)", mt.Stats.Produce)
	}
	if mt.Stats.Consume != mt.Stats.Produce {
		t.Errorf("consumes (%d) != produces (%d)", mt.Stats.Consume, mt.Stats.Produce)
	}
	// Thread 1 replicates loop 1's branch C: 10 dynamic duplicated
	// branches.
	if mt.Stats.DupBranch != 10 {
		t.Errorf("duplicated branch executions = %d, want 10", mt.Stats.DupBranch)
	}
	// The single-threaded result: sum 1..10 = 55, accumulated 5 times.
	if len(mt.LiveOuts) != 1 || mt.LiveOuts[0] != 275 {
		t.Errorf("live-out = %v, want [275]", mt.LiveOuts)
	}
}

func TestFig5NaiveMemorySync(t *testing.T) {
	p := testprog.Fig5()
	g := pdg.Build(p.F, p.Objects)
	plan := mtcg.NaivePlan(p.F, g, p.Assign, 2)

	var memc *mtcg.Comm
	for _, c := range plan.Comms {
		if c.Kind == pdg.KindMem {
			if c.Src != 0 || c.Dst != 1 {
				t.Errorf("memory sync direction T%d->T%d, want T0->T1", c.Src, c.Dst)
			}
			memc = c
		}
	}
	if memc == nil {
		t.Fatal("no memory synchronization in plan")
	}
	wantPts := map[mtcg.Point]bool{
		mtcg.After(p.Instrs["D"]): true,
		mtcg.After(p.Instrs["G"]): true,
	}
	if len(memc.Points) != 2 || !wantPts[memc.Points[0]] || !wantPts[memc.Points[1]] {
		t.Errorf("memory sync points = %v, want after D and after G", memc.Points)
	}

	prog, err := mtcg.Generate(plan)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, p2 := range []int64{0, 1} {
		for _, p3 := range []int64{0, 1} {
			_, mt := runBoth(t, p, prog, []int64{7, p2, p3}, 2)
			if mt.Stats.MemSync() == 0 {
				t.Error("expected dynamic memory synchronizations")
			}
		}
	}
}

func TestGenerateRejectsBadPlans(t *testing.T) {
	p := testprog.Fig4()
	g := pdg.Build(p.F, p.Objects)
	plan := mtcg.NaivePlan(p.F, g, p.Assign, 2)

	t.Run("self communication", func(t *testing.T) {
		bad := *plan
		bad.Comms = append([]*mtcg.Comm{}, plan.Comms...)
		bad.Comms = append(bad.Comms, &mtcg.Comm{
			Kind: pdg.KindReg, Reg: p.Regs["r1"], Src: 1, Dst: 1,
			Points: []mtcg.Point{mtcg.After(p.Instrs["B"])},
		})
		if _, err := mtcg.Generate(&bad); err == nil {
			t.Error("Generate accepted Src==Dst communication")
		}
	})
	t.Run("empty points", func(t *testing.T) {
		bad := *plan
		bad.Comms = append([]*mtcg.Comm{}, plan.Comms...)
		bad.Comms = append(bad.Comms, &mtcg.Comm{
			Kind: pdg.KindReg, Reg: p.Regs["r1"], Src: 0, Dst: 1,
		})
		if _, err := mtcg.Generate(&bad); err == nil {
			t.Error("Generate accepted communication without points")
		}
	})
}

func TestThreadFunctionsShareRegisterSpace(t *testing.T) {
	p := testprog.Fig3()
	prog := naiveProgram(t, p)
	for _, ft := range prog.Threads {
		if ft.MaxReg() < p.F.MaxReg() {
			t.Errorf("thread %s register space %d smaller than original %d",
				ft.Name, ft.MaxReg(), p.F.MaxReg())
		}
		if len(ft.Params) != len(p.F.Params) {
			t.Errorf("thread %s has %d params, want %d", ft.Name, len(ft.Params), len(p.F.Params))
		}
	}
}

func TestSingleThreadPlanIsIdentity(t *testing.T) {
	// Everything in one thread: no communication, thread 0 is the whole
	// program.
	p := testprog.Fig4()
	assign := map[*ir.Instr]int{}
	p.F.Instrs(func(in *ir.Instr) { assign[in] = 0 })
	g := pdg.Build(p.F, p.Objects)
	plan := mtcg.NaivePlan(p.F, g, assign, 1)
	if len(plan.Comms) != 0 {
		t.Errorf("single-thread plan has communications: %v", plan.Comms)
	}
	prog, err := mtcg.Generate(plan)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	st, err := interp.Run(p.F, nil, nil, 1_000_000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mt, err := interp.RunMT(interp.MTConfig{
		Threads: prog.Threads, Assign: assign, MaxSteps: 1_000_000,
	})
	if err != nil {
		t.Fatalf("RunMT: %v", err)
	}
	if st.LiveOuts[0] != mt.LiveOuts[0] {
		t.Errorf("live-outs differ: %v vs %v", st.LiveOuts, mt.LiveOuts)
	}
	if mt.Stats.Comm() != 0 {
		t.Errorf("single-thread run executed %d comm instructions", mt.Stats.Comm())
	}
}
