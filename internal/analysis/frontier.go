package analysis

import "repro/internal/ir"

// DominanceFrontiers computes each block's dominance frontier — the blocks
// where its dominance ends — using the Cooper–Harvey–Kennedy algorithm over
// the given dominator tree (pass nil to compute one). Frontiers are the
// standard tool for SSA placement; the framework itself is non-SSA, but
// frontiers round out the control-flow analysis suite and serve custom
// partitioners.
func DominanceFrontiers(f *ir.Function, dom *DomTree) map[int][]*ir.Block {
	if dom == nil {
		dom = Dominators(f)
	}
	df := map[int][]*ir.Block{}
	add := func(id int, b *ir.Block) {
		for _, x := range df[id] {
			if x == b {
				return
			}
		}
		df[id] = append(df[id], b)
	}
	for _, b := range f.Blocks {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			runner := p
			for runner != nil && runner != dom.IDom(b) {
				add(runner.ID, b)
				runner = dom.IDom(runner)
			}
		}
	}
	return df
}

// IsReducible reports whether the function's CFG is reducible: every
// retreating edge (an edge going backwards in some depth-first ordering) is
// a true back edge whose target dominates its source. The GMT framework's
// loop analyses assume reducible control flow; the benchmark kernels and
// the random-program generator only produce reducible CFGs, and this check
// lets clients validate theirs.
func IsReducible(f *ir.Function) bool {
	dom := Dominators(f)
	// DFS coloring to find retreating edges.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(f.Blocks))
	reducible := true
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		color[b.ID] = gray
		for _, s := range b.Succs {
			switch color[s.ID] {
			case white:
				dfs(s)
			case gray:
				// Retreating edge: must be a dominator back edge.
				if !dom.Dominates(s, b) {
					reducible = false
				}
			}
		}
		color[b.ID] = black
	}
	dfs(f.Entry())
	return reducible
}
