package analysis

import "repro/internal/ir"

// CtrlDep records that the branch terminating Branch controls the execution
// of some block: the block executes iff the branch takes the given successor
// edge (directly or transitively through blocks with only one exit).
type CtrlDep struct {
	Branch *ir.Block // block whose terminator is the controlling branch
	Edge   int       // successor index of the controlling edge (0 taken, 1 fall-through)
}

// CDG is the control-dependence graph of a function at basic-block
// granularity, computed from the post-dominator tree with the classic
// Ferrante–Ottenstein–Warren construction. A block's instructions all share
// the block's control dependences.
type CDG struct {
	fn   *ir.Function
	deps [][]CtrlDep // block ID -> direct control dependences
}

// ControlDeps computes the CDG of f using the given post-dominator tree
// (pass nil to compute one). Computing the tree fails on a function with no
// unique Ret block; see PostDominators.
func ControlDeps(f *ir.Function, pdom *DomTree) (*CDG, error) {
	if pdom == nil {
		var err error
		pdom, err = PostDominators(f)
		if err != nil {
			return nil, err
		}
	}
	g := &CDG{fn: f, deps: make([][]CtrlDep, len(f.Blocks))}
	for _, u := range f.Blocks {
		if len(u.Succs) < 2 {
			continue
		}
		for ei, v := range u.Succs {
			if pdom.StrictlyDominates(v, u) {
				continue // v strictly post-dominates u: edge not control dependent
			}
			// Every block from v up the post-dominator tree to (but
			// excluding) ipdom(u) is control dependent on (u, ei).
			stop := pdom.IDom(u)
			for w := v; w != nil && w != stop; w = pdom.IDom(w) {
				g.deps[w.ID] = append(g.deps[w.ID], CtrlDep{Branch: u, Edge: ei})
			}
		}
	}
	return g, nil
}

// MustControlDeps is ControlDeps for callers holding a verified function,
// where a missing Ret is a programming error.
func MustControlDeps(f *ir.Function, pdom *DomTree) *CDG {
	g, err := ControlDeps(f, pdom)
	if err != nil {
		panic(err)
	}
	return g
}

// Deps returns the direct control dependences of block b. The entry block
// and blocks that execute unconditionally have none.
func (g *CDG) Deps(b *ir.Block) []CtrlDep { return g.deps[b.ID] }

// ControllingBranches returns the set of blocks whose terminating branches b
// is directly control dependent on, as a block-ID set.
func (g *CDG) ControllingBranches(b *ir.Block) map[int]bool {
	set := map[int]bool{}
	for _, d := range g.deps[b.ID] {
		set[d.Branch.ID] = true
	}
	return set
}

// Closure returns the transitive control-dependence closure of block b: all
// blocks whose branches directly or indirectly control b's execution. The
// result is a block-ID set and does not include b itself unless b controls
// itself (a loop exit branch).
func (g *CDG) Closure(b *ir.Block) map[int]bool {
	set := map[int]bool{}
	var visit func(*ir.Block)
	visit = func(x *ir.Block) {
		for _, d := range g.deps[x.ID] {
			if !set[d.Branch.ID] {
				set[d.Branch.ID] = true
				visit(d.Branch)
			}
		}
	}
	visit(b)
	return set
}

// ClosureOf returns the transitive control-dependence closure of an existing
// branch-block set: the given set plus every branch controlling a member.
func (g *CDG) ClosureOf(branchBlocks map[int]bool) map[int]bool {
	set := map[int]bool{}
	var visit func(*ir.Block)
	visit = func(x *ir.Block) {
		for _, d := range g.deps[x.ID] {
			if !set[d.Branch.ID] {
				set[d.Branch.ID] = true
				visit(d.Branch)
			}
		}
	}
	for id := range branchBlocks {
		set[id] = true
		visit(g.fn.Blocks[id])
	}
	return set
}

// Controls reports whether the branch ending block br (directly or
// transitively) controls block b.
func (g *CDG) Controls(br, b *ir.Block) bool {
	return g.Closure(b)[br.ID]
}
