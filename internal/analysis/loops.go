package analysis

import "repro/internal/ir"

// Loop is a natural loop: the header plus all blocks that can reach a back
// edge into the header without leaving the loop.
type Loop struct {
	Header *ir.Block
	Blocks map[int]bool // block IDs in the loop (including the header)
	Parent *Loop        // innermost enclosing loop, nil for top-level loops
	Childs []*Loop
	Depth  int // nesting depth; top-level loops have depth 1
}

// Contains reports whether the loop contains block b.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b.ID] }

// LoopForest is the natural-loop nesting forest of a function.
type LoopForest struct {
	fn    *ir.Function
	Loops []*Loop // all loops, outermost-first within each nest
	of    []*Loop // block ID -> innermost containing loop (nil if none)
}

// FindLoops discovers natural loops from back edges (edges whose target
// dominates their source) and builds the nesting forest. Pass a dominator
// tree or nil to compute one. Irreducible control flow yields no loop for
// the offending cycle; the kernels in this repository are all reducible.
func FindLoops(f *ir.Function, dom *DomTree) *LoopForest {
	if dom == nil {
		dom = Dominators(f)
	}
	lf := &LoopForest{fn: f, of: make([]*Loop, len(f.Blocks))}
	byHeader := map[int]*Loop{}

	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if !dom.Dominates(s, b) {
				continue // not a back edge
			}
			l := byHeader[s.ID]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[int]bool{s.ID: true}}
				byHeader[s.ID] = l
				lf.Loops = append(lf.Loops, l)
			}
			// Walk backwards from the latch collecting the body.
			var stack []*ir.Block
			if !l.Blocks[b.ID] {
				l.Blocks[b.ID] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range x.Preds {
					if !l.Blocks[p.ID] {
						l.Blocks[p.ID] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}

	// Nest loops: parent is the smallest strictly-containing loop.
	for _, l := range lf.Loops {
		for _, m := range lf.Loops {
			if m == l || !m.Blocks[l.Header.ID] || len(m.Blocks) <= len(l.Blocks) {
				continue
			}
			if l.Parent == nil || len(m.Blocks) < len(l.Parent.Blocks) {
				l.Parent = m
			}
		}
	}
	for _, l := range lf.Loops {
		if l.Parent != nil {
			l.Parent.Childs = append(l.Parent.Childs, l)
		}
	}
	for _, l := range lf.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	// Innermost loop per block: the containing loop with the greatest depth.
	for _, l := range lf.Loops {
		for id := range l.Blocks {
			if lf.of[id] == nil || lf.of[id].Depth < l.Depth {
				lf.of[id] = l
			}
		}
	}
	return lf
}

// InnermostLoop returns the innermost loop containing b, or nil.
func (lf *LoopForest) InnermostLoop(b *ir.Block) *Loop { return lf.of[b.ID] }

// Depth returns the loop-nesting depth of block b (0 outside all loops).
func (lf *LoopForest) Depth(b *ir.Block) int {
	if l := lf.of[b.ID]; l != nil {
		return l.Depth
	}
	return 0
}

// TopLevel returns the loops that are not nested in any other loop.
func (lf *LoopForest) TopLevel() []*Loop {
	var out []*Loop
	for _, l := range lf.Loops {
		if l.Parent == nil {
			out = append(out, l)
		}
	}
	return out
}

// ReversePostorder returns the function's blocks in reverse postorder from
// the entry block.
func ReversePostorder(f *ir.Function) []*ir.Block {
	seen := make([]bool, len(f.Blocks))
	var post []*ir.Block
	var dfs func(*ir.Block)
	dfs = func(b *ir.Block) {
		seen[b.ID] = true
		for _, s := range b.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Reachability computes the block-level transitive reachability relation:
// result[a][b] reports whether b is reachable from a by a non-empty path.
// It is used to orient memory-dependence arcs in the PDG.
func Reachability(f *ir.Function) [][]bool {
	n := len(f.Blocks)
	r := make([][]bool, n)
	for i := range r {
		r[i] = make([]bool, n)
	}
	// BFS from each block (n is small for the regions we schedule).
	for _, b := range f.Blocks {
		var stack []*ir.Block
		for _, s := range b.Succs {
			if !r[b.ID][s.ID] {
				r[b.ID][s.ID] = true
				stack = append(stack, s)
			}
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range x.Succs {
				if !r[b.ID][s.ID] {
					r[b.ID][s.ID] = true
					stack = append(stack, s)
				}
			}
		}
	}
	return r
}
