package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
)

// buildLoopNest constructs:
//
//	entry -> outer ; outer -> inner ; inner -Br-> inner, latch
//	latch -Br-> outer, exit ; exit: ret
func buildLoopNest() *ir.Function {
	b := ir.NewBuilder("nest")
	p := b.Param()
	outer := b.Block("outer")
	inner := b.Block("inner")
	latch := b.Block("latch")
	exit := b.Block("exit")

	b.Jump(outer)
	b.SetBlock(outer)
	b.Jump(inner)
	b.SetBlock(inner)
	c1 := b.CmpGT(p, b.Const(0))
	b.Br(c1, inner, latch)
	b.SetBlock(latch)
	c2 := b.CmpGT(p, b.Const(1))
	b.Br(c2, outer, exit)
	b.SetBlock(exit)
	b.Ret()
	return b.F
}

func buildDiamond() *ir.Function {
	b := ir.NewBuilder("diamond")
	p := b.Param()
	then := b.Block("then")
	els := b.Block("else")
	join := b.Block("join")
	b.Br(p, then, els)
	b.SetBlock(then)
	b.Jump(join)
	b.SetBlock(els)
	b.Jump(join)
	b.SetBlock(join)
	b.Ret()
	return b.F
}

func mustBlock(t *testing.T, f *ir.Function, name string) *ir.Block {
	t.Helper()
	b := f.BlockByName(name)
	if b == nil {
		t.Fatalf("no block %q", name)
	}
	return b
}

func TestDominatorsDiamond(t *testing.T) {
	f := buildDiamond()
	dom := Dominators(f)
	entry := f.Entry()
	then := mustBlock(t, f, "then")
	els := mustBlock(t, f, "else")
	join := mustBlock(t, f, "join")

	if dom.IDom(entry) != nil {
		t.Error("entry should have no idom")
	}
	for _, b := range []*ir.Block{then, els, join} {
		if dom.IDom(b) != entry {
			t.Errorf("idom(%s) = %v, want entry", b.Name, dom.IDom(b))
		}
		if !dom.Dominates(entry, b) {
			t.Errorf("entry should dominate %s", b.Name)
		}
	}
	if dom.Dominates(then, join) {
		t.Error("then must not dominate join")
	}
	if !dom.Dominates(join, join) {
		t.Error("blocks dominate themselves")
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	f := buildDiamond()
	pdom := MustPostDominators(f)
	entry := f.Entry()
	then := mustBlock(t, f, "then")
	join := mustBlock(t, f, "join")

	if pdom.Root() != join {
		t.Fatalf("postdom root = %s, want join", pdom.Root().Name)
	}
	if !pdom.Dominates(join, entry) {
		t.Error("join should post-dominate entry")
	}
	if pdom.Dominates(then, entry) {
		t.Error("then must not post-dominate entry")
	}
	if pdom.IDom(then) != join {
		t.Errorf("ipdom(then) = %v, want join", pdom.IDom(then))
	}
}

func TestControlDepsDiamond(t *testing.T) {
	f := buildDiamond()
	g := MustControlDeps(f, nil)
	entry := f.Entry()
	then := mustBlock(t, f, "then")
	els := mustBlock(t, f, "else")
	join := mustBlock(t, f, "join")

	for _, tt := range []struct {
		b    *ir.Block
		edge int
	}{{then, 0}, {els, 1}} {
		deps := g.Deps(tt.b)
		if len(deps) != 1 || deps[0].Branch != entry || deps[0].Edge != tt.edge {
			t.Errorf("Deps(%s) = %v, want [{entry %d}]", tt.b.Name, deps, tt.edge)
		}
	}
	if len(g.Deps(join)) != 0 {
		t.Errorf("join should have no control deps, got %v", g.Deps(join))
	}
	if len(g.Deps(entry)) != 0 {
		t.Errorf("entry should have no control deps, got %v", g.Deps(entry))
	}
}

func TestControlDepsSelfLoop(t *testing.T) {
	f := buildLoopNest()
	g := MustControlDeps(f, nil)
	inner := mustBlock(t, f, "inner")
	latch := mustBlock(t, f, "latch")

	// The inner-loop branch controls its own re-execution.
	if !g.ControllingBranches(inner)[inner.ID] {
		t.Error("inner loop branch should control itself")
	}
	// And transitively, outer's latch controls inner.
	if !g.Closure(inner)[latch.ID] {
		t.Error("latch should transitively control inner")
	}
	// ClosureOf unions and closes over branch sets.
	set := g.ClosureOf(map[int]bool{inner.ID: true})
	if !set[latch.ID] || !set[inner.ID] {
		t.Errorf("ClosureOf(inner) = %v, want inner and latch", set)
	}
}

func TestFindLoopsNest(t *testing.T) {
	f := buildLoopNest()
	lf := FindLoops(f, nil)
	if len(lf.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(lf.Loops))
	}
	outer := mustBlock(t, f, "outer")
	inner := mustBlock(t, f, "inner")
	latch := mustBlock(t, f, "latch")
	exit := mustBlock(t, f, "exit")

	il := lf.InnermostLoop(inner)
	if il == nil || il.Header != inner {
		t.Fatalf("innermost loop of inner = %+v, want header=inner", il)
	}
	if il.Depth != 2 {
		t.Errorf("inner loop depth = %d, want 2", il.Depth)
	}
	ol := lf.InnermostLoop(outer)
	if ol == nil || ol.Header != outer || ol.Depth != 1 {
		t.Fatalf("loop of outer = %+v, want header=outer depth=1", ol)
	}
	if il.Parent != ol {
		t.Error("inner loop should nest inside outer loop")
	}
	if !ol.Contains(latch) || !ol.Contains(inner) {
		t.Error("outer loop should contain latch and inner")
	}
	if ol.Contains(exit) {
		t.Error("outer loop must not contain exit")
	}
	if lf.Depth(exit) != 0 {
		t.Errorf("Depth(exit) = %d, want 0", lf.Depth(exit))
	}
	tl := lf.TopLevel()
	if len(tl) != 1 || tl[0] != ol {
		t.Errorf("TopLevel = %v, want [outer]", tl)
	}
}

func TestReachability(t *testing.T) {
	f := buildLoopNest()
	r := Reachability(f)
	inner := mustBlock(t, f, "inner")
	outer := mustBlock(t, f, "outer")
	exit := mustBlock(t, f, "exit")

	if !r[inner.ID][inner.ID] {
		t.Error("inner should reach itself via back edge")
	}
	if !r[inner.ID][outer.ID] {
		t.Error("inner should reach outer via outer back edge")
	}
	if r[exit.ID][outer.ID] {
		t.Error("exit must not reach outer")
	}
	if !r[f.Entry().ID][exit.ID] {
		t.Error("entry should reach exit")
	}
}

// naiveDominates is the textbook O(n^2) dataflow definition of dominance,
// used as an oracle for randomized CFGs.
func naiveDominates(f *ir.Function) [][]bool {
	n := len(f.Blocks)
	dom := make([][]bool, n)
	for i := range dom {
		dom[i] = make([]bool, n)
		for j := range dom[i] {
			dom[i][j] = true
		}
	}
	entry := f.Entry().ID
	for j := 0; j < n; j++ {
		dom[entry][j] = j == entry
	}
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			if b.ID == entry {
				continue
			}
			newDom := make([]bool, n)
			for j := range newDom {
				newDom[j] = true
			}
			for _, p := range b.Preds {
				for j := 0; j < n; j++ {
					newDom[j] = newDom[j] && dom[p.ID][j]
				}
			}
			newDom[b.ID] = true
			for j := 0; j < n; j++ {
				if newDom[j] != dom[b.ID][j] {
					dom[b.ID][j] = newDom[j]
					changed = true
				}
			}
		}
	}
	// dom[b][a] == true means a dominates b; transpose for convenience.
	out := make([][]bool, n)
	for i := range out {
		out[i] = make([]bool, n)
	}
	for b := 0; b < n; b++ {
		for a := 0; a < n; a++ {
			out[a][b] = dom[b][a]
		}
	}
	return out
}

// randomCFG builds a connected CFG with single Ret where every block
// reaches the exit.
func randomCFG(rng *rand.Rand, nBlocks int) *ir.Function {
	b := ir.NewBuilder("rand")
	p := b.Param()
	blocks := []*ir.Block{b.Cur()}
	for i := 1; i < nBlocks; i++ {
		blocks = append(blocks, b.Block("b"+string(rune('0'+i))))
	}
	exit := b.Block("exit")
	for i, blk := range blocks {
		b.SetBlock(blk)
		// Forward edge to a later block (guarantees exit reachability),
		// plus an optional random edge for branches.
		fwd := exit
		if i+1 < len(blocks) && rng.Intn(4) != 0 {
			fwd = blocks[i+1+rng.Intn(len(blocks)-i-1)]
		}
		if rng.Intn(2) == 0 {
			other := blocks[rng.Intn(len(blocks))]
			if other == fwd {
				other = exit
			}
			b.Br(p, fwd, other)
		} else {
			b.Jump(fwd)
		}
	}
	b.SetBlock(exit)
	b.Ret()
	return b.F
}

func TestDominatorsMatchNaiveOracleOnRandomCFGs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		f := randomCFG(rng, 3+rng.Intn(10))
		if err := f.Verify(); err != nil {
			// Random CFGs can strand blocks unreachable from entry;
			// those don't satisfy the Verify contract, skip them.
			continue
		}
		dom := Dominators(f)
		oracle := naiveDominates(f)
		for _, a := range f.Blocks {
			for _, c := range f.Blocks {
				got := dom.Dominates(a, c)
				want := oracle[a.ID][c.ID]
				if got != want {
					t.Fatalf("trial %d: Dominates(%s,%s) = %v, oracle %v\n%s",
						trial, a.Name, c.Name, got, want, f)
				}
			}
		}
	}
}

func TestReversePostorderStartsAtEntryAndCoversCFG(t *testing.T) {
	f := buildLoopNest()
	rpo := ReversePostorder(f)
	if rpo[0] != f.Entry() {
		t.Errorf("rpo[0] = %s, want entry", rpo[0].Name)
	}
	if len(rpo) != len(f.Blocks) {
		t.Errorf("rpo covers %d blocks, want %d", len(rpo), len(f.Blocks))
	}
	// Every block before its dominated successors (ignoring back edges):
	pos := map[int]int{}
	for i, b := range rpo {
		pos[b.ID] = i
	}
	dom := Dominators(f)
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if dom.Dominates(s, b) {
				continue // back edge
			}
			if pos[s.ID] <= pos[b.ID] {
				t.Errorf("forward edge %s->%s out of order in RPO", b.Name, s.Name)
			}
		}
	}
}

// TestPostDominatorsNoRet: a function with no unique Ret block (one
// ir.Verify would reject) yields an error, not a crash — and ControlDeps
// propagates it.
func TestPostDominatorsNoRet(t *testing.T) {
	f := ir.NewFunction("noret")
	e := f.NewBlock("entry")
	e.Append(f.NewInstr(ir.Jump, ir.NoReg))
	e.SetSuccs(e)
	if _, err := PostDominators(f); err == nil {
		t.Error("PostDominators accepted a function with no Ret")
	}
	if _, err := ControlDeps(f, nil); err == nil {
		t.Error("ControlDeps accepted a function with no Ret")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPostDominators did not panic on a ret-less function")
		}
	}()
	MustPostDominators(f)
}
