package analysis

import "repro/internal/ir"

// EstimateProfile computes a static execution-frequency estimate for every
// CFG edge, in the spirit of Wu and Larus [28] — the paper notes COCO's
// costs "can be obtained through profiling or through static analyses,
// which have been demonstrated to be also very accurate". The estimator
// uses simple structural heuristics:
//
//   - each loop iterates loopIterations times per entry (back-edge
//     probability solved per loop, innermost first);
//   - non-loop branches split 50/50, except that an edge leaving a loop is
//     given the loop-exit probability.
//
// Frequencies are scaled by freqScale and floored at 1 so they can be used
// anywhere a measured ir.Profile is.
func EstimateProfile(f *ir.Function) *ir.Profile {
	const loopIterations = 10
	const freqScale = 1000

	dom := Dominators(f)
	lf := FindLoops(f, dom)

	// Edge probability out of each block.
	prob := func(b *ir.Block, idx int) float64 {
		if len(b.Succs) == 1 {
			return 1
		}
		s := b.Succs[idx]
		// Back edges get the iteration-sustaining probability.
		if dom.Dominates(s, b) {
			return 1 - 1.0/loopIterations
		}
		// The sibling of a back edge gets the exit probability.
		other := b.Succs[1-idx]
		if dom.Dominates(other, b) {
			return 1.0 / loopIterations
		}
		// If this edge leaves the innermost loop but the sibling stays,
		// treat it as a loop exit.
		if l := lf.InnermostLoop(b); l != nil {
			if !l.Contains(s) && l.Contains(other) {
				return 1.0 / loopIterations
			}
			if l.Contains(s) && !l.Contains(other) {
				return 1 - 1.0/loopIterations
			}
		}
		return 0.5
	}

	// Loop multipliers, innermost first: header executes
	// 1/(1 - cyclicProbability) times per entry.
	multiplier := map[*Loop]float64{}
	var loopsInnerFirst []*Loop
	var collect func(ls []*Loop)
	collect = func(ls []*Loop) {
		for _, l := range ls {
			collect(l.Childs)
			loopsInnerFirst = append(loopsInnerFirst, l)
		}
	}
	collect(lf.TopLevel())

	for _, l := range loopsInnerFirst {
		// Propagate one unit of flow from the header through the loop
		// body (acyclically: back edges to this header are counted as
		// cyclic probability; inner loops already have multipliers).
		cp := propagateCyclic(f, l, lf, dom, multiplier, prob)
		if cp > 0.99 {
			cp = 0.99
		}
		multiplier[l] = 1 / (1 - cp)
	}

	// Final forward propagation from the entry.
	freq := make([]float64, len(f.Blocks))
	freq[f.Entry().ID] = 1
	prof := ir.NewProfile()
	for _, b := range ReversePostorder(f) {
		fb := freq[b.ID]
		if l := lf.InnermostLoop(b); l != nil && l.Header == b {
			fb *= multiplier[l]
			freq[b.ID] = fb
		}
		for i, s := range b.Succs {
			if dom.Dominates(s, b) {
				continue // back edge: flow already accounted in multiplier
			}
			w := fb * prob(b, i)
			freq[s.ID] += w
			count := int64(w * freqScale)
			if count < 1 {
				count = 1
			}
			prof.AddEdge(b, s, count)
		}
	}
	// Back edges still need weights for completeness: header freq minus
	// entry flow, distributed over the latches.
	for _, l := range loopsInnerFirst {
		h := l.Header
		var latches []*ir.Block
		for _, p := range h.Preds {
			if l.Contains(p) && dom.Dominates(h, p) {
				latches = append(latches, p)
			}
		}
		if len(latches) == 0 {
			continue
		}
		back := freq[h.ID] * (1 - 1.0/multiplier[l])
		for _, p := range latches {
			count := int64(back / float64(len(latches)) * freqScale)
			if count < 1 {
				count = 1
			}
			prof.AddEdge(p, h, count)
		}
	}
	return prof
}

// propagateCyclic pushes one unit of flow from l's header through l's body
// and returns the fraction arriving at back edges into the header.
func propagateCyclic(f *ir.Function, l *Loop, lf *LoopForest, dom *DomTree,
	multiplier map[*Loop]float64, prob func(*ir.Block, int) float64) float64 {

	flow := make([]float64, len(f.Blocks))
	flow[l.Header.ID] = 1
	cyclic := 0.0
	for _, b := range ReversePostorder(f) {
		if !l.Contains(b) || flow[b.ID] == 0 {
			continue
		}
		fb := flow[b.ID]
		// An inner loop amplifies flow through its header.
		if inner := lf.InnermostLoop(b); inner != nil && inner != l &&
			inner.Header == b && isAncestorLoop(l, inner) {
			fb *= multiplier[inner]
		}
		for i, s := range b.Succs {
			w := fb * prob(b, i)
			if s == l.Header {
				if dom.Dominates(s, b) {
					cyclic += w
				}
				continue
			}
			if l.Contains(s) && !dom.Dominates(s, b) {
				flow[s.ID] += w
			}
		}
	}
	if cyclic > 1 {
		cyclic = 1
	}
	return cyclic
}

// isAncestorLoop reports whether anc encloses l (or is l).
func isAncestorLoop(anc, l *Loop) bool {
	for x := l; x != nil; x = x.Parent {
		if x == anc {
			return true
		}
	}
	return false
}
