package analysis

import (
	"testing"

	"repro/internal/ir"
)

func TestEstimateProfileSimpleLoop(t *testing.T) {
	f := buildLoopNest() // entry -> outer -> inner(self) -> latch -> outer|exit
	prof := EstimateProfile(f)

	entryW := prof.BlockWeight(f.Entry())
	innerW := prof.BlockWeight(mustBlock(t, f, "inner"))
	outerW := prof.BlockWeight(mustBlock(t, f, "outer"))
	exitW := prof.BlockWeight(mustBlock(t, f, "exit"))

	// The inner loop nests inside the outer one: its weight must exceed
	// the outer body's, which must exceed the entry's.
	if innerW <= outerW {
		t.Errorf("inner weight %d should exceed outer %d", innerW, outerW)
	}
	if outerW <= entryW {
		t.Errorf("outer weight %d should exceed entry %d", outerW, entryW)
	}
	// With ~10 iterations per level, inner is roughly 100x the entry.
	if innerW < 20*entryW {
		t.Errorf("inner weight %d too low versus entry %d (want ~100x)", innerW, entryW)
	}
	// The exit executes about once.
	if exitW > 2*entryW {
		t.Errorf("exit weight %d should be about the entry weight %d", exitW, entryW)
	}
}

func TestEstimateProfileDiamondSplitsEvenly(t *testing.T) {
	f := buildDiamond()
	prof := EstimateProfile(f)
	then := prof.BlockWeight(mustBlock(t, f, "then"))
	els := prof.BlockWeight(mustBlock(t, f, "else"))
	if then != els {
		t.Errorf("diamond arms weighted %d and %d, want equal", then, els)
	}
	join := prof.BlockWeight(mustBlock(t, f, "join"))
	if join != then+els {
		t.Errorf("join weight %d, want %d (sum of arms)", join, then+els)
	}
}

func TestEstimateProfileEveryEdgePositive(t *testing.T) {
	f := buildLoopNest()
	prof := EstimateProfile(f)
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if w := prof.EdgeWeight(b, s); w < 1 {
				t.Errorf("edge %s->%s weight %d, want >= 1", b.Name, s.Name, w)
			}
		}
	}
}

func TestEstimateProfileMatchesMeasuredShape(t *testing.T) {
	// A concrete counted loop: static estimation will not match the count
	// (it assumes 10 iterations) but the ordering of block weights must
	// match a measured profile's.
	b := ir.NewBuilder("counted")
	loop := b.Block("loop")
	body := b.Block("body")
	skip := b.Block("skip")
	latch := b.Block("latch")
	exit := b.Block("exit")
	i := b.F.NewReg()
	b.ConstTo(i, 0)
	b.Jump(loop)
	b.SetBlock(loop)
	c := b.CmpGT(b.And(i, b.Const(1)), b.Const(0))
	b.Br(c, body, skip)
	b.SetBlock(body)
	b.Jump(latch)
	b.SetBlock(skip)
	b.Jump(latch)
	b.SetBlock(latch)
	b.Op2To(i, ir.Add, i, b.Const(1))
	lim := b.Const(50)
	cc := b.CmpLT(i, lim)
	b.Br(cc, loop, exit)
	b.SetBlock(exit)
	b.Ret(i)
	b.F.SplitCriticalEdges()

	prof := EstimateProfile(b.F)
	if prof.BlockWeight(loop) <= prof.BlockWeight(exit) {
		t.Error("loop should be estimated hotter than exit")
	}
	if prof.BlockWeight(body) >= prof.BlockWeight(loop) {
		t.Error("conditional body should be estimated cooler than the loop header")
	}
}
