// Package analysis provides the control-flow analyses the GMT scheduling
// framework is built on: dominator and post-dominator trees, the
// control-dependence graph of Ferrante, Ottenstein and Warren, and the
// natural-loop forest.
package analysis

import (
	"fmt"

	"repro/internal/ir"
)

// DomTree is a dominator tree (forward or reverse). Use Dominators for the
// forward tree rooted at the entry block and PostDominators for the reverse
// tree rooted at the Ret block.
type DomTree struct {
	fn      *ir.Function
	post    bool
	root    int
	idom    []int   // block ID -> immediate dominator's ID; root maps to itself; -1 unreachable
	childs  [][]int // tree children
	preNum  []int   // tree DFS interval for O(1) dominance tests
	postNum []int
}

// Dominators computes the dominator tree of f rooted at the entry block,
// using the Cooper–Harvey–Kennedy iterative algorithm.
func Dominators(f *ir.Function) *DomTree {
	return buildDomTree(f, false, f.Entry().ID)
}

// PostDominators computes the post-dominator tree of f rooted at the block
// containing the Ret instruction. All blocks of a verified function reach
// Ret, so the tree covers the whole CFG. A function without a unique Ret
// block (one that ir.Verify would reject) yields an error.
func PostDominators(f *ir.Function) (*DomTree, error) {
	ret := f.RetInstr()
	if ret == nil {
		return nil, fmt.Errorf("analysis: %s has no unique Ret block", f.Name)
	}
	return buildDomTree(f, true, ret.Block().ID), nil
}

// MustPostDominators is PostDominators for callers holding a verified
// function, where a missing Ret is a programming error.
func MustPostDominators(f *ir.Function) *DomTree {
	t, err := PostDominators(f)
	if err != nil {
		panic(err)
	}
	return t
}

func buildDomTree(f *ir.Function, post bool, root int) *DomTree {
	n := len(f.Blocks)
	t := &DomTree{fn: f, post: post, root: root, idom: make([]int, n)}
	for i := range t.idom {
		t.idom[i] = -1
	}

	// Reverse postorder over the traversal direction.
	rpo := t.reversePostorder()
	order := make([]int, n) // block ID -> RPO index; -1 unreachable
	for i := range order {
		order[i] = -1
	}
	for i, id := range rpo {
		order[id] = i
	}

	t.idom[t.root] = t.root
	for changed := true; changed; {
		changed = false
		for _, id := range rpo {
			if id == t.root {
				continue
			}
			newIdom := -1
			for _, p := range t.walkPreds(id) {
				if t.idom[p] == -1 {
					continue // predecessor not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = t.intersect(newIdom, p, order)
				}
			}
			if newIdom != -1 && t.idom[id] != newIdom {
				t.idom[id] = newIdom
				changed = true
			}
		}
	}

	t.childs = make([][]int, n)
	for id := 0; id < n; id++ {
		if id != t.root && t.idom[id] >= 0 {
			t.childs[t.idom[id]] = append(t.childs[t.idom[id]], id)
		}
	}
	t.number()
	return t
}

// walkSuccs returns the successors in the traversal direction.
func (t *DomTree) walkSuccs(id int) []int {
	b := t.fn.Blocks[id]
	var out []int
	if t.post {
		for _, p := range b.Preds {
			out = append(out, p.ID)
		}
	} else {
		for _, s := range b.Succs {
			out = append(out, s.ID)
		}
	}
	return out
}

func (t *DomTree) walkPreds(id int) []int {
	b := t.fn.Blocks[id]
	var out []int
	if t.post {
		for _, s := range b.Succs {
			out = append(out, s.ID)
		}
	} else {
		for _, p := range b.Preds {
			out = append(out, p.ID)
		}
	}
	return out
}

func (t *DomTree) reversePostorder() []int {
	n := len(t.fn.Blocks)
	seen := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(id int) {
		seen[id] = true
		for _, s := range t.walkSuccs(id) {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, id)
	}
	dfs(t.root)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

func (t *DomTree) intersect(a, b int, order []int) int {
	for a != b {
		for order[a] > order[b] {
			a = t.idom[a]
		}
		for order[b] > order[a] {
			b = t.idom[b]
		}
	}
	return a
}

// number assigns DFS entry/exit numbers over the dominator tree so that
// dominance is an interval-containment test.
func (t *DomTree) number() {
	n := len(t.fn.Blocks)
	t.preNum = make([]int, n)
	t.postNum = make([]int, n)
	clock := 0
	var dfs func(int)
	dfs = func(id int) {
		clock++
		t.preNum[id] = clock
		for _, c := range t.childs[id] {
			dfs(c)
		}
		clock++
		t.postNum[id] = clock
	}
	dfs(t.root)
}

// Root returns the tree's root block.
func (t *DomTree) Root() *ir.Block { return t.fn.Blocks[t.root] }

// IDom returns b's immediate (post-)dominator, or nil for the root.
func (t *DomTree) IDom(b *ir.Block) *ir.Block {
	if b.ID == t.root || t.idom[b.ID] < 0 {
		return nil
	}
	return t.fn.Blocks[t.idom[b.ID]]
}

// Dominates reports whether a (post-)dominates b. Every block dominates
// itself.
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	return t.preNum[a.ID] <= t.preNum[b.ID] && t.postNum[b.ID] <= t.postNum[a.ID]
}

// StrictlyDominates reports whether a (post-)dominates b and a != b.
func (t *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && t.Dominates(a, b)
}

// Children returns b's children in the dominator tree.
func (t *DomTree) Children(b *ir.Block) []*ir.Block {
	var out []*ir.Block
	for _, c := range t.childs[b.ID] {
		out = append(out, t.fn.Blocks[c])
	}
	return out
}

// WalkUp calls fn on b and then each of its ancestors in tree order, stopping
// early if fn returns false.
func (t *DomTree) WalkUp(b *ir.Block, fn func(*ir.Block) bool) {
	id := b.ID
	for {
		if !fn(t.fn.Blocks[id]) {
			return
		}
		if id == t.root {
			return
		}
		id = t.idom[id]
	}
}
