package analysis

import (
	"testing"

	"repro/internal/ir"
)

func TestDominanceFrontiersDiamond(t *testing.T) {
	f := buildDiamond()
	df := DominanceFrontiers(f, nil)
	then := mustBlock(t, f, "then")
	els := mustBlock(t, f, "else")
	join := mustBlock(t, f, "join")

	// Both arms' dominance ends at the join.
	for _, arm := range []*ir.Block{then, els} {
		fr := df[arm.ID]
		if len(fr) != 1 || fr[0] != join {
			t.Errorf("DF(%s) = %v, want [join]", arm.Name, fr)
		}
	}
	// The entry dominates everything: empty frontier.
	if len(df[f.Entry().ID]) != 0 {
		t.Errorf("DF(entry) = %v, want empty", df[f.Entry().ID])
	}
	// The join dominates nothing past itself: empty frontier.
	if len(df[join.ID]) != 0 {
		t.Errorf("DF(join) = %v, want empty", df[join.ID])
	}
}

func TestDominanceFrontiersLoopHeaderInOwnFrontier(t *testing.T) {
	f := buildLoopNest()
	df := DominanceFrontiers(f, nil)
	inner := mustBlock(t, f, "inner")
	outer := mustBlock(t, f, "outer")

	has := func(id int, b *ir.Block) bool {
		for _, x := range df[id] {
			if x == b {
				return true
			}
		}
		return false
	}
	// A loop header is in its own dominance frontier (back edge).
	if !has(inner.ID, inner) {
		t.Errorf("DF(inner) = %v, want to contain inner itself", df[inner.ID])
	}
	if !has(outer.ID, outer) {
		t.Errorf("DF(outer) = %v, want to contain outer itself", df[outer.ID])
	}
}

func TestIsReducible(t *testing.T) {
	if !IsReducible(buildDiamond()) {
		t.Error("diamond CFG reported irreducible")
	}
	if !IsReducible(buildLoopNest()) {
		t.Error("loop nest reported irreducible")
	}

	// Classic irreducible CFG: two blocks jumping into each other's
	// "loop" with two distinct entries.
	b := ir.NewBuilder("irr")
	p := b.Param()
	x := b.Block("x")
	y := b.Block("y")
	exit := b.Block("exit")
	b.Br(p, x, y) // entry branches into the middle of both
	b.SetBlock(x)
	c1 := b.CmpGT(p, b.Const(0))
	b.Br(c1, y, exit)
	b.SetBlock(y)
	c2 := b.CmpGT(p, b.Const(1))
	b.Br(c2, x, exit)
	b.SetBlock(exit)
	b.Ret()
	if IsReducible(b.F) {
		t.Error("two-entry cycle reported reducible")
	}
}
