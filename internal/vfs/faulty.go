package vfs

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"repro/internal/fault"
)

// Class names one injectable filesystem fault class.
type Class string

const (
	// WriteENOSPC models a filling disk: once the cumulative bytes
	// written exceed the spec's byte budget, writes take only the
	// remaining budget into their temp file (a real full disk keeps the
	// partial data) and fail with ENOSPC; every later write fails too.
	WriteENOSPC Class = "enospc"
	// ReadEIO models flaky storage on the read path: seed-scheduled
	// reads fail with EIO. Consecutive reads never both fire (the
	// schedule period is at least two), so a single retry is a
	// meaningful recovery strategy.
	ReadEIO Class = "eio-read"
	// TornWrite models silently lossy storage: a seed-scheduled write
	// reports success but the renamed file holds only the first k bytes.
	// Only a content checksum can catch this class.
	TornWrite Class = "torn-write"
	// RenameFail models a failure at the commit point: the temp file is
	// fully written, the rename fails with EIO, and the orphaned temp
	// file is left behind — the leak the recovery scan must clean up.
	RenameFail Class = "rename-fail"
	// Crash models kill -9 at a pinned point: the CrashOp-th WriteFile
	// stops at CrashStep (leaving whatever a real crash would leave) and
	// every subsequent mutating operation fails with ErrCrashed until
	// the "process" is restarted on a fresh FS.
	Crash Class = "crash"
)

// Classes returns every fault class in a fixed report order.
func Classes() []Class {
	return []Class{WriteENOSPC, ReadEIO, TornWrite, RenameFail, Crash}
}

// CrashStep pins where inside an atomic write a Crash lands.
type CrashStep int

const (
	// CrashBeforeTemp dies before anything touches the disk.
	CrashBeforeTemp CrashStep = iota
	// CrashMidTemp dies with the temp file truncated at a seed-derived
	// byte.
	CrashMidTemp
	// CrashBeforeRename dies with the temp file complete but never
	// renamed.
	CrashBeforeRename
	// CrashAfterRename dies after the rename. Without durability the
	// entry's data blocks were never synced, so the visible file is torn
	// at a seed-derived byte; with durable=true the pre-rename fsync
	// makes the entry complete and the crash harmless.
	CrashAfterRename
)

// CrashSteps returns every crash point in sweep order.
func CrashSteps() []CrashStep {
	return []CrashStep{CrashBeforeTemp, CrashMidTemp, CrashBeforeRename, CrashAfterRename}
}

func (s CrashStep) String() string {
	switch s {
	case CrashBeforeTemp:
		return "before-temp"
	case CrashMidTemp:
		return "mid-temp"
	case CrashBeforeRename:
		return "before-rename"
	case CrashAfterRename:
		return "after-rename"
	}
	return fmt.Sprintf("step-%d", int(s))
}

// ErrCrashed is returned by every mutating operation after a Crash fault
// fired: the simulated process is dead and its writes are frozen.
var ErrCrashed = fmt.Errorf("vfs: injected crash: filesystem writes frozen")

// Spec names a fault schedule: a class, the seed that parameterizes
// where it fires, and — for Crash — the pinned crash point. A Spec is
// immutable and comparable; instantiate a fresh Faulty per run.
type Spec struct {
	Class Class
	Seed  int64
	// ByteBudget bounds total writable bytes under WriteENOSPC; <= 0
	// derives a budget from the seed.
	ByteBudget int64
	// CrashOp is the 1-based WriteFile call the Crash class dies in.
	CrashOp int64
	// CrashStep is where inside that write the crash lands.
	CrashStep CrashStep
}

// String renders the spec for reports.
func (s Spec) String() string {
	if s.Class == Crash {
		return fmt.Sprintf("%s(seed=%d,op=%d,%s)", s.Class, s.Seed, s.CrashOp, s.CrashStep)
	}
	return fmt.Sprintf("%s(seed=%d)", s.Class, s.Seed)
}

// Faulty injects a Spec's fault schedule over the host filesystem. Like
// fault.Injector, its decisions are a pure function of the spec and the
// sequence of operations presented, so the same seed over the same
// workload produces the same faults, byte for byte. All methods are
// safe for concurrent use (the cache calls them from request
// goroutines).
type Faulty struct {
	spec     Spec
	offset   int64
	period   int64
	tearSalt uint64
	budget   int64

	mu       sync.Mutex
	reads    int64
	writes   int64
	written  int64
	crashed  bool
	injected int64
}

// NewFaulty instantiates the schedule. Offset and period are small:
// filesystem operations are scarce compared to interpreter steps, and a
// period of at least two guarantees two consecutive operations never
// both fire (which is what makes one retry meaningful under ReadEIO).
func NewFaulty(spec Spec) *Faulty {
	f := &Faulty{spec: spec}
	h := fault.Splitmix(uint64(spec.Seed) ^ fault.ClassSalt(string(spec.Class)))
	f.offset = int64(h%5) + 1
	h = fault.Splitmix(h)
	f.period = int64(h%7) + 2
	h = fault.Splitmix(h)
	f.tearSalt = h
	f.budget = spec.ByteBudget
	if f.budget <= 0 {
		f.budget = int64(h%4096) + 512
	}
	return f
}

// Spec returns the immutable schedule name.
func (f *Faulty) Spec() Spec { return f.spec }

// Injected returns how many faults have fired so far.
func (f *Faulty) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Crashed reports whether the crash point has fired.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// fires reports whether opportunity n (1-based) is on the schedule.
func (f *Faulty) fires(n int64) bool {
	return n >= f.offset && (n-f.offset)%f.period == 0
}

// tearAt picks the deterministic truncation point for an n-byte payload:
// strictly less than n, so a torn write is actually torn.
func (f *Faulty) tearAt(n int) int {
	if n <= 0 {
		return 0
	}
	return int(f.tearSalt % uint64(n))
}

func (f *Faulty) ReadFile(path string) ([]byte, error) {
	if f.spec.Class == ReadEIO {
		f.mu.Lock()
		f.reads++
		fire := f.fires(f.reads)
		if fire {
			f.injected++
		}
		f.mu.Unlock()
		if fire {
			return nil, fmt.Errorf("vfs: injected read fault on %s: %w", filepath.Base(path), syscall.EIO)
		}
	}
	return os.ReadFile(path)
}

func (f *Faulty) WriteFile(path string, data []byte, durable bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.writes++
	n := f.writes
	switch f.spec.Class {
	case Crash:
		if n == f.spec.CrashOp {
			return f.crash(path, data, durable)
		}
	case WriteENOSPC:
		if f.written+int64(len(data)) > f.budget {
			// A real full disk accepts the bytes that still fit into the
			// temp file and leaves them there.
			if rem := f.budget - f.written; rem > 0 {
				writeTorn(path, data, int(rem), false)
				f.written = f.budget
			}
			f.injected++
			return fmt.Errorf("vfs: injected full disk writing %s: %w", filepath.Base(path), syscall.ENOSPC)
		}
		f.written += int64(len(data))
	case TornWrite:
		if f.fires(n) {
			f.injected++
			// Reports success; the visible file is truncated at a
			// seed-derived byte.
			return writeTorn(path, data, f.tearAt(len(data)), true)
		}
	case RenameFail:
		if f.fires(n) {
			f.injected++
			writeTorn(path, data, len(data), false) // orphaned complete temp
			return fmt.Errorf("vfs: injected rename failure on %s: %w", filepath.Base(path), syscall.EIO)
		}
	}
	return atomicWrite(path, data, durable)
}

// crash performs the partial work a kill -9 at the pinned step would
// leave behind, then freezes all subsequent mutations.
func (f *Faulty) crash(path string, data []byte, durable bool) error {
	f.crashed = true
	f.injected++
	switch f.spec.CrashStep {
	case CrashBeforeTemp:
		// Nothing reached the disk.
	case CrashMidTemp:
		writeTorn(path, data, f.tearAt(len(data)), false)
	case CrashBeforeRename:
		writeTorn(path, data, len(data), false)
	case CrashAfterRename:
		if durable {
			// fsync-before-rename means the renamed entry is complete;
			// the crash lands after a fully committed write.
			atomicWrite(path, data, true)
		} else {
			writeTorn(path, data, f.tearAt(len(data)), true)
		}
	}
	return ErrCrashed
}

func (f *Faulty) Remove(path string) error {
	if f.frozen() {
		return ErrCrashed
	}
	return os.Remove(path)
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if f.frozen() {
		return ErrCrashed
	}
	return os.Rename(oldpath, newpath)
}

func (f *Faulty) MkdirAll(dir string) error {
	if f.frozen() {
		return ErrCrashed
	}
	return os.MkdirAll(dir, 0o755)
}

func (f *Faulty) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }
func (f *Faulty) Stat(path string) (fs.FileInfo, error)     { return os.Stat(path) }

func (f *Faulty) frozen() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// writeTorn writes the first k bytes of data to a temp file next to
// path; rename additionally commits the torn bytes under the final name
// (the silently-lossy-storage case), otherwise the temp file is left
// orphaned (the crashed/failed-commit case).
func writeTorn(path string, data []byte, k int, rename bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if k > len(data) {
		k = len(data)
	}
	_, werr := tmp.Write(data[:k])
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil && rename {
		werr = os.Rename(tmp.Name(), path)
	}
	return werr
}
