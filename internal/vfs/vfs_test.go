package vfs

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

func tempNames(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmps []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			tmps = append(tmps, e.Name())
		}
	}
	return tmps
}

// TestOSAtomicWrite: the passthrough write lands complete under the
// final name, replaces prior content, and leaves no temp residue — in
// both durability modes.
func TestOSAtomicWrite(t *testing.T) {
	for _, durable := range []bool{false, true} {
		dir := t.TempDir()
		path := filepath.Join(dir, "entry")
		var fs FS = OS{}
		if err := fs.WriteFile(path, []byte("first"), durable); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(path, []byte("second"), durable); err != nil {
			t.Fatal(err)
		}
		got, err := fs.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "second" {
			t.Fatalf("durable=%v: read %q, want %q", durable, got, "second")
		}
		if tmps := tempNames(t, dir); len(tmps) != 0 {
			t.Fatalf("durable=%v: temp residue %v", durable, tmps)
		}
	}
}

// TestFaultyDeterminism: the same spec over the same operation sequence
// injects faults at identical points, run after run.
func TestFaultyDeterminism(t *testing.T) {
	run := func() []int {
		dir := t.TempDir()
		f := NewFaulty(Spec{Class: TornWrite, Seed: 42})
		var fired []int
		for i := 0; i < 20; i++ {
			path := filepath.Join(dir, "e")
			before := f.Injected()
			if err := f.WriteFile(path, bytes.Repeat([]byte{byte(i)}, 100), false); err != nil {
				t.Fatal(err)
			}
			if f.Injected() > before {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults fired in 20 writes")
	}
	if len(a) != len(b) {
		t.Fatalf("fired %v then %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fired %v then %v", a, b)
		}
	}
}

// TestFaultyENOSPC: writes past the byte budget keep a partial temp
// file (a real full disk holds onto the bytes that fit) and fail with
// ENOSPC — which Transient correctly refuses to retry.
func TestFaultyENOSPC(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(Spec{Class: WriteENOSPC, Seed: 7, ByteBudget: 150})
	path := filepath.Join(dir, "e")
	if err := f.WriteFile(path, make([]byte, 100), false); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	err := f.WriteFile(filepath.Join(dir, "e2"), make([]byte, 100), false)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("over-budget write error = %v, want ENOSPC", err)
	}
	if Transient(err) {
		t.Fatal("ENOSPC classified transient; retrying a full disk burns deadlines")
	}
	// The partial temp file holds exactly the remaining 50 budget bytes.
	tmps := tempNames(t, dir)
	if len(tmps) != 1 {
		t.Fatalf("temp files = %v, want exactly the partial one", tmps)
	}
	st, err := os.Stat(filepath.Join(dir, tmps[0]))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 50 {
		t.Fatalf("partial temp size = %d, want the remaining 50 budget bytes", st.Size())
	}
	// The disk stays full: even a tiny later write fails.
	if err := f.WriteFile(filepath.Join(dir, "e3"), []byte{1}, false); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-full write error = %v, want ENOSPC", err)
	}
}

// TestFaultyReadEIO: scheduled reads fail with a transient EIO, and the
// schedule's period >= 2 guarantees the immediate retry succeeds.
func TestFaultyReadEIO(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "e")
	if err := os.WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(Spec{Class: ReadEIO, Seed: 3})
	sawFault := false
	for i := 0; i < 20; i++ {
		_, err := f.ReadFile(path)
		if err == nil {
			continue
		}
		if !errors.Is(err, syscall.EIO) || !Transient(err) {
			t.Fatalf("read fault = %v, want transient EIO", err)
		}
		sawFault = true
		// Period >= 2: the very next read must succeed.
		if got, rerr := f.ReadFile(path); rerr != nil || string(got) != "payload" {
			t.Fatalf("retry after EIO: %q, %v", got, rerr)
		}
	}
	if !sawFault {
		t.Fatal("no read fault fired in 20 reads")
	}
}

// TestFaultyTornWrite: a scheduled tear reports success but the visible
// file is strictly shorter than the payload — the silent-corruption
// class only checksums can catch.
func TestFaultyTornWrite(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(Spec{Class: TornWrite, Seed: 11})
	payload := bytes.Repeat([]byte("x"), 200)
	torn := false
	for i := 0; i < 20 && !torn; i++ {
		path := filepath.Join(dir, "e")
		if err := f.WriteFile(path, payload, false); err != nil {
			t.Fatalf("torn write must report success, got %v", err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) < len(payload) {
			torn = true
		}
	}
	if !torn {
		t.Fatal("no torn write in 20 attempts")
	}
}

// TestFaultyRenameFail: the commit-point failure leaves a complete but
// orphaned temp file — the leak the cache recovery scan exists for.
func TestFaultyRenameFail(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(Spec{Class: RenameFail, Seed: 5})
	payload := []byte("payload-bytes")
	failedPath := ""
	for i := 0; i < 20 && failedPath == ""; i++ {
		// Distinct paths per write, so the failed commit's absence is
		// observable (a retry to the same path would mask it).
		path := filepath.Join(dir, fmt.Sprintf("e%d", i))
		err := f.WriteFile(path, payload, false)
		if err == nil {
			continue
		}
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("rename fault = %v, want EIO", err)
		}
		failedPath = path
	}
	if failedPath == "" {
		t.Fatal("no rename failure in 20 writes")
	}
	if _, err := os.Stat(failedPath); !os.IsNotExist(err) {
		t.Fatal("failed rename still produced the final file")
	}
	tmps := tempNames(t, dir)
	if len(tmps) == 0 {
		t.Fatal("no orphaned temp file after rename failure")
	}
	got, err := os.ReadFile(filepath.Join(dir, tmps[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("orphaned temp holds %q, want the complete payload", got)
	}
}

// TestFaultyCrashSteps verifies the exact disk state each crash point
// leaves behind, and that the frozen filesystem rejects every mutation
// afterwards.
func TestFaultyCrashSteps(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 300)
	for _, tc := range []struct {
		step      CrashStep
		durable   bool
		wantFile  bool // final name exists
		wantWhole bool // ...with the complete payload
		wantTemp  bool // a temp file survives
	}{
		{CrashBeforeTemp, false, false, false, false},
		{CrashMidTemp, false, false, false, true},
		{CrashBeforeRename, false, false, false, true},
		{CrashAfterRename, false, true, false, false},
		{CrashAfterRename, true, true, true, false},
	} {
		t.Run(tc.step.String()+map[bool]string{true: "-durable", false: ""}[tc.durable], func(t *testing.T) {
			dir := t.TempDir()
			f := NewFaulty(Spec{Class: Crash, Seed: 9, CrashOp: 1, CrashStep: tc.step})
			path := filepath.Join(dir, "e")
			if err := f.WriteFile(path, payload, tc.durable); !errors.Is(err, ErrCrashed) {
				t.Fatalf("crash write error = %v, want ErrCrashed", err)
			}
			if !f.Crashed() {
				t.Fatal("Crashed() = false after the crash point")
			}
			got, err := os.ReadFile(path)
			switch {
			case tc.wantWhole:
				if err != nil || !bytes.Equal(got, payload) {
					t.Fatalf("want complete entry, got %d bytes, err %v", len(got), err)
				}
			case tc.wantFile:
				if err != nil {
					t.Fatalf("want a (torn) entry under the final name: %v", err)
				}
				if bytes.Equal(got, payload) {
					t.Fatal("non-durable after-rename crash left a complete entry; want torn")
				}
			default:
				if !os.IsNotExist(err) {
					t.Fatalf("want no final file, got err %v", err)
				}
			}
			if haveTemp := len(tempNames(t, dir)) > 0; haveTemp != tc.wantTemp {
				t.Fatalf("temp residue = %v, want %v", haveTemp, tc.wantTemp)
			}
			// The dead process's filesystem is frozen.
			if err := f.WriteFile(filepath.Join(dir, "later"), []byte{1}, false); !errors.Is(err, ErrCrashed) {
				t.Fatalf("post-crash write error = %v, want ErrCrashed", err)
			}
			if err := f.Remove(path); !errors.Is(err, ErrCrashed) {
				t.Fatalf("post-crash remove error = %v, want ErrCrashed", err)
			}
			if err := f.MkdirAll(filepath.Join(dir, "sub")); !errors.Is(err, ErrCrashed) {
				t.Fatalf("post-crash mkdir error = %v, want ErrCrashed", err)
			}
			// Reads still work: recovery tooling inspects the dead disk.
			if _, err := f.ReadDir(dir); err != nil {
				t.Fatalf("post-crash readdir: %v", err)
			}
		})
	}
}
