// Package vfs abstracts the narrow filesystem surface the serving stack
// touches (read, atomic write, remove, rename, mkdir, readdir, stat) so
// that every disk operation behind the artifact cache is interceptable.
// Two implementations exist: OS, the passthrough over the host
// filesystem, and Faulty, a seeded fault injector in the style of
// internal/fault that can fill the disk, tear writes, fail renames,
// return EIO on reads, and freeze all writes at a chosen crash point to
// simulate kill -9.
//
// Durability is folded into the write primitive rather than exposed as a
// separate sync call: WriteFile(path, data, durable=true) fsyncs the
// temp file before the rename and the parent directory after it, which
// is the exact sequence that makes an entry survive a post-rename power
// loss. With durable=false the write is still atomic with respect to
// process crashes (temp + rename) but the renamed bytes may be lost or
// torn by a machine crash — which is the case the cache's recovery scan
// and checksummed envelopes exist to detect.
package vfs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// FS is the filesystem surface of the serving stack. All paths are host
// paths; implementations must keep the atomic-write contract of
// WriteFile (a reader never observes a half-written file under its
// final name unless the storage itself tore the bytes).
type FS interface {
	// ReadFile returns the contents of path.
	ReadFile(path string) ([]byte, error)
	// WriteFile atomically replaces path with data: temp file in the
	// same directory, write, rename. durable additionally fsyncs the
	// temp file before the rename and the parent directory after it.
	WriteFile(path string, data []byte, durable bool) error
	// Remove deletes path.
	Remove(path string) error
	// Rename moves oldpath to newpath (same filesystem).
	Rename(oldpath, newpath string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists dir.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// Stat describes path.
	Stat(path string) (fs.FileInfo, error)
}

// OS is the passthrough FS over the host filesystem.
type OS struct{}

func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OS) WriteFile(path string, data []byte, durable bool) error {
	return atomicWrite(path, data, durable)
}

func (OS) Remove(path string) error                  { return os.Remove(path) }
func (OS) Rename(oldpath, newpath string) error      { return os.Rename(oldpath, newpath) }
func (OS) MkdirAll(dir string) error                 { return os.MkdirAll(dir, 0o755) }
func (OS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }
func (OS) Stat(path string) (fs.FileInfo, error)     { return os.Stat(path) }

// atomicWrite is the shared temp+rename writer: the file appears under
// its final name complete or not at all (process-crash atomicity).
func atomicWrite(path string, data []byte, durable bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil && durable {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	if durable {
		return syncDir(dir)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry's name survives a
// crash (the rename itself lives in the directory's data blocks).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// Transient reports whether err is a disk fault worth retrying: an I/O
// error that a bounded backoff-retry can plausibly outlast. A full disk
// (ENOSPC), a missing file, or a frozen (crashed) filesystem are not
// transient — retrying them only burns the request's deadline.
func Transient(err error) bool {
	return errors.Is(err, syscall.EIO)
}
