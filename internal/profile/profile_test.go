package profile_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/attr"
	"repro/internal/coco"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/mtcg"
	"repro/internal/obs"
	"repro/internal/obs/obstest"
	"repro/internal/pdg"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/testprog"
)

// fig5Options builds profiling options for the paper's Figure 5 program.
func fig5Options(t *testing.T) profile.Options {
	t.Helper()
	p := testprog.Fig5()
	g := pdg.Build(p.F, p.Objects)
	pl, err := coco.Plan(p.F, g, p.Assign, 2, p.Profile, coco.DefaultOptions())
	if err != nil {
		t.Fatalf("coco: %v", err)
	}
	prog, err := mtcg.Generate(pl)
	if err != nil {
		t.Fatalf("mtcg: %v", err)
	}
	return profile.Options{
		Workload:    "fig5",
		Partitioner: "gremio",
		Program:     "coco",
		Cfg:         sim.DefaultConfig(),
		Threads:     prog.Threads,
		Args:        []int64{9, 1, 1},
		Mem:         make([]int64, 2),
		MaxCycles:   10_000_000,
	}
}

func TestRunReportInvariants(t *testing.T) {
	o := fig5Options(t)
	r, err := profile.Run(o)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	if r.Cycles <= 0 || r.Cores != 2 || r.Instrs <= 0 {
		t.Fatalf("degenerate report: %+v", r)
	}
	// Conservation is checked by Run; re-verify through the public API.
	totals := []int64{r.Cycles, r.Cycles}
	if err := r.Attr.CheckConservation(totals); err != nil {
		t.Fatalf("conservation: %v", err)
	}

	// The critical path tiles [0, Length]: instruction blames sum to
	// Length, and the path terminates no earlier than the run.
	p := r.Path
	if p.Length < r.Cycles {
		t.Errorf("path length %d shorter than the run's %d cycles", p.Length, r.Cycles)
	}
	var blame int64
	for _, b := range p.Instrs {
		blame += b.Cycles
		if b.Cycles < 0 || b.Count <= 0 || b.Label == "" {
			t.Errorf("bad blame entry %+v", b)
		}
	}
	if blame != p.Length {
		t.Errorf("instruction blames sum to %d, path length is %d", blame, p.Length)
	}
	var qblame int64
	for _, q := range p.Queues {
		qblame += q.Cycles
	}
	if qblame > p.Length {
		t.Errorf("queue blame %d exceeds path length %d", qblame, p.Length)
	}
	if p.Nodes <= 0 {
		t.Error("empty critical path")
	}
}

func TestRenderDeterministic(t *testing.T) {
	o := fig5Options(t)
	render := func() string {
		// Fresh memory image per run: profiling mutates mem.
		o := o
		o.Mem = make([]int64, 2)
		r, err := profile.Run(o)
		if err != nil {
			t.Fatalf("profile: %v", err)
		}
		var buf bytes.Buffer
		if err := r.Render(&buf, 10); err != nil {
			t.Fatalf("render: %v", err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("report is not byte-deterministic:\n%s\n----\n%s", a, b)
	}
	for _, want := range []string{
		"== profile fig5/gremio/coco ==",
		"cycle attribution (cycles):",
		"critical path:",
		"top instructions by critical-path share:",
		"top queues by critical-path share:",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("report lacks %q:\n%s", want, a)
		}
	}
}

func TestExplainDecomposesExactly(t *testing.T) {
	clean := fig5Options(t)
	a, err := profile.Run(clean)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	// Subject: the same program degraded by injected core stalls — the
	// delta must decompose with a visible fault bucket.
	faulted := fig5Options(t)
	faulted.Program = "faulted"
	faulted.Fault = &fault.Spec{Class: fault.StallThread, Seed: 7}
	b, err := profile.Run(faulted)
	if err != nil {
		t.Fatalf("faulted: %v", err)
	}
	e := profile.Explain(a, b)
	var sum, den int64
	for bk := attr.Bucket(0); bk < attr.NumBuckets; bk++ {
		var n int64
		n, den = e.BucketDelta(bk)
		sum += n
	}
	if sum != e.Delta()*den {
		t.Fatalf("bucket deltas sum to %d/%d, cycle delta is %d", sum, den, e.Delta())
	}
	if n, _ := e.BucketDelta(attr.Fault); n >= 0 {
		t.Errorf("stall-injected subject shows no fault-bucket cost (delta %d)", n)
	}
	var buf bytes.Buffer
	if err := e.Render(&buf, 5); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"== explain fig5/gremio/faulted against fig5/gremio/coco ==",
		"cycle-delta decomposition",
		"fault",
		"(sum)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation lacks %q:\n%s", want, out)
		}
	}
	if e.Summary() == "" || e.Summary() == "no cycle delta" {
		t.Errorf("empty summary for a real delta: %q", e.Summary())
	}
	var buf2 bytes.Buffer
	if err := e.Render(&buf2, 5); err != nil {
		t.Fatalf("re-render: %v", err)
	}
	if buf2.String() != out {
		t.Error("explanation is not byte-deterministic")
	}
}

func TestProfileTraceFlows(t *testing.T) {
	o := fig5Options(t)
	tr := obs.NewTrace()
	tr.ProcessName(11, "fig5 profile")
	o.Trace, o.Pid, o.Flows = tr, 11, true
	reg := obs.NewRegistry()
	o.Metrics = reg.Scope("profile")
	if _, err := profile.Run(o); err != nil {
		t.Fatalf("profile: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("trace: %v", err)
	}
	obstest.CheckTraceShape(t, buf.Bytes())
	if !bytes.Contains(buf.Bytes(), []byte(`"ph": "s"`)) {
		t.Error("profiled trace has no flow events")
	}
}

// TestPathOnHandBuiltChain pins the path math on a program small enough to
// reason about: a single thread of dependent multiplies must put every
// multiply on the critical path.
func TestPathOnHandBuiltChain(t *testing.T) {
	b := ir.NewBuilder("chain")
	v := b.Const(3)
	for i := 0; i < 5; i++ {
		v = b.Op2(ir.Mul, v, v)
	}
	b.Ret(v)
	r, err := profile.Run(profile.Options{
		Workload: "chain", Partitioner: "st", Program: "st",
		Cfg:     sim.DefaultConfig(),
		Threads: []*ir.Function{b.F},
		Args:    nil, Mem: nil, MaxCycles: 100_000,
	})
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	mulBlame := int64(0)
	for _, ib := range r.Path.Instrs {
		if strings.Contains(ib.Label, "mul") {
			mulBlame += ib.Cycles
		}
	}
	cfg := sim.DefaultConfig()
	wantMin := int64(5 * (cfg.MulLatency - 1)) // 5 muls, each bound by the previous one's latency
	if mulBlame < wantMin {
		t.Errorf("dependent multiply chain blamed for %d cycles, want >= %d\npath: %+v",
			mulBlame, wantMin, r.Path.Instrs)
	}
}
