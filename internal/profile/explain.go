package profile

import (
	"fmt"
	"io"

	"repro/internal/attr"
)

// Explanation decomposes the cycle difference between two profiled runs
// into per-bucket attribution deltas. The decomposition is exact: because
// each run's buckets conserve (they sum to cores × cycles), the per-bucket
// per-core-average deltas sum to exactly A.Cycles - B.Cycles. All
// arithmetic is integer (a common denominator of A.Cores × B.Cores), so
// rendering is byte-deterministic.
type Explanation struct {
	// A is the baseline run, B the subject ("B against A").
	A, B *Report
}

// Explain builds the explanation of B's cycles against baseline A.
func Explain(a, b *Report) *Explanation { return &Explanation{A: a, B: b} }

// Delta returns A.Cycles - B.Cycles: positive means B is faster.
func (e *Explanation) Delta() int64 { return e.A.Cycles - e.B.Cycles }

// BucketDelta returns bucket b's contribution to Delta as the exact
// rational num/den: the per-core-average cycles of the bucket in A minus
// those in B, over the common denominator den = A.Cores × B.Cores. The
// nums over all buckets sum to Delta × den.
func (e *Explanation) BucketDelta(b attr.Bucket) (num, den int64) {
	ta, tb := e.A.Attr.TotalBuckets(), e.B.Attr.TotalBuckets()
	ca, cb := int64(e.A.Cores), int64(e.B.Cores)
	return ta[b]*cb - tb[b]*ca, ca * cb
}

// check verifies the exact decomposition identity; it can only fail if a
// report's attribution does not conserve, which Run already rejects.
func (e *Explanation) check() error {
	var sum int64
	var den int64
	for b := attr.Bucket(0); b < attr.NumBuckets; b++ {
		var n int64
		n, den = e.BucketDelta(b)
		sum += n
	}
	if want := e.Delta() * den; sum != want {
		return fmt.Errorf("profile: bucket deltas sum to %d/%d, cycle delta is %d", sum, den, e.Delta())
	}
	return nil
}

// Render writes the explanation as deterministic text: the speedup of B
// over A and a per-bucket table decomposing the cycle delta. top bounds
// the critical-path comparison lists (<= 0 means all).
func (e *Explanation) Render(w io.Writer, top int) error {
	if err := e.check(); err != nil {
		return err
	}
	a, b := e.A, e.B
	if _, err := fmt.Fprintf(w, "== explain %s against %s ==\n", b.label(), a.label()); err != nil {
		return err
	}
	// Speedup in fixed-point thousandths: integer math, deterministic.
	sp := int64(0)
	if b.Cycles > 0 {
		sp = 1000 * a.Cycles / b.Cycles
	}
	fmt.Fprintf(w, "cycles: %s=%d  %s=%d  delta=%d  speedup=%d.%03dx\n",
		a.Program+"/"+a.Partitioner, a.Cycles, b.Program+"/"+b.Partitioner, b.Cycles,
		e.Delta(), sp/1000, sp%1000)
	fmt.Fprintf(w, "\ncycle-delta decomposition (per-core average, exact):\n")
	fmt.Fprintf(w, "  %-14s %12s %12s %14s\n", "bucket", "baseline", "subject", "delta-cycles")
	ta, tb := a.Attr.TotalBuckets(), b.Attr.TotalBuckets()
	ca, cb := int64(a.Cores), int64(b.Cores)
	for bk := attr.Bucket(0); bk < attr.NumBuckets; bk++ {
		num, den := e.BucketDelta(bk)
		fmt.Fprintf(w, "  %-14s %12s %12s %14s\n", bk,
			ratio(ta[bk], ca), ratio(tb[bk], cb), ratio(num, den))
	}
	fmt.Fprintf(w, "  %-14s %12s %12s %14d\n", "(sum)",
		ratio(ta.Total(), ca), ratio(tb.Total(), cb), e.Delta())

	fmt.Fprintf(w, "\ncritical path: baseline length=%d (%d events), subject length=%d (%d events)\n",
		a.Path.Length, a.Path.Nodes, b.Path.Length, b.Path.Nodes)
	fmt.Fprintf(w, "subject top critical-path instructions:\n")
	for i, ib := range capTop(b.Path.Instrs, top) {
		fmt.Fprintf(w, "  %2d. %8d cy  n=%-7d core%d #%d: %s\n",
			i+1, ib.Cycles, ib.Count, ib.Core, ib.ID, ib.Label)
	}
	fmt.Fprintf(w, "subject top critical-path queues:\n")
	for i, qb := range capTopQ(b.Path.Queues, top) {
		if _, err := fmt.Fprintf(w, "  %2d. %8d cy  n=%-7d q%d\n", i+1, qb.Cycles, qb.Count, qb.Queue); err != nil {
			return err
		}
	}
	return nil
}

// Summary returns a one-line explanation for figure annotations: the two
// largest per-bucket contributions to the cycle delta, signed from the
// subject's perspective (savings first).
func (e *Explanation) Summary() string {
	type contrib struct {
		b   attr.Bucket
		num int64
	}
	var cs []contrib
	var den int64
	for b := attr.Bucket(0); b < attr.NumBuckets; b++ {
		var n int64
		n, den = e.BucketDelta(b)
		if n != 0 {
			cs = append(cs, contrib{b, n})
		}
	}
	// Largest magnitude first; ties keep bucket order (stable by
	// construction of the insertion order plus strict comparison).
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && abs64(cs[j].num) > abs64(cs[j-1].num); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
	if len(cs) > 2 {
		cs = cs[:2]
	}
	s := ""
	for i, c := range cs {
		if i > 0 {
			s += ", "
		}
		sign := "+"
		if c.num < 0 {
			sign = "-"
		}
		s += fmt.Sprintf("%s%s %s cy", sign, c.b, ratio(abs64(c.num), den))
	}
	if s == "" {
		return "no cycle delta"
	}
	return s
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// ratio renders num/den in tenths without floating point (exact integer
// arithmetic, round-toward-zero), so output never depends on FP behavior.
func ratio(num, den int64) string {
	if den == 0 {
		return "0.0"
	}
	t := 10 * num / den
	sign := ""
	if t < 0 {
		sign, t = "-", -t
	}
	return fmt.Sprintf("%s%d.%d", sign, t/10, t%10)
}
