// Package profile is the cycle-attribution profiler: it explains where a
// multi-threaded schedule's cycles went. A profiled run is an ordinary
// cycle-level simulation with two observational layers on top:
//
//   - attribution — every core-cycle tagged with a cause bucket
//     (internal/attr), conserving exactly: per-core bucket sums equal the
//     run's cycle count; and
//   - the dynamic critical path — the run's dependence graph (intra-thread
//     register/program-order edges plus produce→consume cross-thread
//     edges) reconstructed from the simulator's event stream, with the
//     longest weighted path extracted and its cycles blamed on static
//     instructions and queues.
//
// Explain diffs two profiled runs (GREMIO vs DSWP, naive vs COCO, faulted
// vs clean) and decomposes the cycle delta exactly into per-bucket deltas.
// Everything is measured in simulator cycles — never wall-clock — and all
// renderings are byte-deterministic.
package profile

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/attr"
	"repro/internal/budget"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Options configures one profiled simulation run.
type Options struct {
	// Workload, Partitioner and Program label the report ("ks", "dswp",
	// "coco"); they do not affect measurement.
	Workload, Partitioner, Program string
	// Cfg is the machine; Threads/Args/Mem the program and input.
	Cfg     sim.Config
	Threads []*ir.Function
	Args    []int64
	Mem     []int64
	// MaxCycles bounds the simulation (<= 0 uses the default budget).
	MaxCycles int64
	// Fault, when non-nil, arms deterministic fault injection (a fresh
	// injector is built for the run), profiling the degraded schedule.
	Fault *fault.Spec
	// Metrics and Trace are optional observability sinks; Trace also
	// receives produce→consume flow events (Perfetto arrows) when Flows is
	// set. Pid places the run's lanes in the trace.
	Metrics *obs.Scope
	Trace   *obs.Trace
	Pid     int
	Flows   bool
}

// Report is the profile of one run.
type Report struct {
	Workload    string
	Partitioner string
	Program     string
	Cycles      int64
	Cores       int
	// Instrs is the number of dynamic instructions across cores.
	Instrs int64
	// Attr is the run's cycle attribution; it conserves (checked at
	// profile time): per-core bucket sums equal Cycles.
	Attr *attr.Run
	// Path is the run's dynamic critical path.
	Path *Path
}

// Run simulates the program with attribution and event collection enabled
// and returns its profile. The attribution conservation invariant is
// verified before the report is returned.
func Run(o Options) (*Report, error) {
	maxCycles := o.MaxCycles
	if maxCycles <= 0 {
		maxCycles = budget.Default().SimCycles
	}
	col := &collector{}
	ob := &sim.Observer{
		Metrics: o.Metrics,
		Trace:   o.Trace,
		Pid:     o.Pid,
		Attr:    true,
		Events:  col.add,
		Flows:   o.Flows && o.Trace != nil,
	}
	var inj *fault.Injector
	if o.Fault != nil {
		inj = o.Fault.New()
	}
	res, err := sim.RunInjected(o.Cfg, o.Threads, o.Args, o.Mem, maxCycles, ob, inj)
	if err != nil {
		return nil, fmt.Errorf("profile: %s/%s/%s: %w", o.Workload, o.Partitioner, o.Program, err)
	}
	totals := make([]int64, len(res.PerCore))
	for i := range totals {
		totals[i] = res.Cycles
	}
	if err := res.Attr.CheckConservation(totals); err != nil {
		return nil, fmt.Errorf("profile: %s/%s/%s: %w", o.Workload, o.Partitioner, o.Program, err)
	}
	var instrs int64
	for _, c := range res.PerCore {
		instrs += c.Instrs
	}
	return &Report{
		Workload:    o.Workload,
		Partitioner: o.Partitioner,
		Program:     o.Program,
		Cycles:      res.Cycles,
		Cores:       len(res.PerCore),
		Instrs:      instrs,
		Attr:        res.Attr,
		Path:        buildPath(col.events, o.Threads, inj.QueueCap(o.Cfg.QueueCap)),
	}, nil
}

// collector buffers the simulator's event stream for path reconstruction.
type collector struct{ events []sim.Event }

func (c *collector) add(e sim.Event) { c.events = append(c.events, e) }

// label renders the report's run identity ("ks/dswp/coco").
func (r *Report) label() string {
	return r.Workload + "/" + r.Partitioner + "/" + r.Program
}

// Render writes the report as deterministic text: header, per-core and
// total cycle attribution, and the critical path's top contributors
// (at most top instructions and top queues; top <= 0 means all).
func (r *Report) Render(w io.Writer, top int) error {
	if _, err := fmt.Fprintf(w, "== profile %s ==\n", r.label()); err != nil {
		return err
	}
	ipc100 := int64(0)
	if r.Cycles > 0 {
		ipc100 = 100 * r.Instrs / r.Cycles
	}
	fmt.Fprintf(w, "cycles=%d cores=%d instrs=%d ipc=%d.%02d\n",
		r.Cycles, r.Cores, r.Instrs, ipc100/100, ipc100%100)
	fmt.Fprintf(w, "\ncycle attribution (%s):\n", r.Attr.Clock)
	for c := range r.Attr.Cores {
		fmt.Fprintf(w, "  core%d: %s\n", c, bucketLine(&r.Attr.Cores[c]))
	}
	tot := r.Attr.TotalBuckets()
	fmt.Fprintf(w, "  total: %s\n", bucketLine(&tot))
	queueStalls := renderQueueStalls(r.Attr)
	if queueStalls != "" {
		fmt.Fprintf(w, "\nqueue stall blame (%s):\n%s", r.Attr.Clock, queueStalls)
	}
	p := r.Path
	fmt.Fprintf(w, "\ncritical path: length=%d %s, %d events (run: %d cycles)\n",
		p.Length, r.Attr.Clock, p.Nodes, r.Cycles)
	fmt.Fprintf(w, "top instructions by critical-path share:\n")
	for i, b := range capTop(p.Instrs, top) {
		fmt.Fprintf(w, "  %2d. %8d cy  n=%-7d core%d #%d: %s\n",
			i+1, b.Cycles, b.Count, b.Core, b.ID, b.Label)
	}
	fmt.Fprintf(w, "top queues by critical-path share:\n")
	for i, q := range capTopQ(p.Queues, top) {
		if _, err := fmt.Fprintf(w, "  %2d. %8d cy  n=%-7d q%d\n", i+1, q.Cycles, q.Count, q.Queue); err != nil {
			return err
		}
	}
	return nil
}

// bucketLine renders one tally with every bucket named, in bucket order.
func bucketLine(b *attr.Buckets) string {
	s := ""
	for i := attr.Bucket(0); i < attr.NumBuckets; i++ {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", i, b[i])
	}
	return s
}

// renderQueueStalls lists each queue's communication stall blame, skipping
// all-zero queues; empty string when no queue stalled anything.
func renderQueueStalls(a *attr.Run) string {
	s := ""
	for q := range a.Queues {
		b := &a.Queues[q]
		n := b[attr.QueueEmpty] + b[attr.QueueFull] + b[attr.CommLatency]
		if n == 0 {
			continue
		}
		s += fmt.Sprintf("  q%d: queue-empty=%d queue-full=%d comms-latency=%d\n",
			q, b[attr.QueueEmpty], b[attr.QueueFull], b[attr.CommLatency])
	}
	return s
}

func capTop(s []InstrBlame, top int) []InstrBlame {
	if top > 0 && len(s) > top {
		return s[:top]
	}
	return s
}

func capTopQ(s []QueueBlame, top int) []QueueBlame {
	if top > 0 && len(s) > top {
		return s[:top]
	}
	return s
}

// sortInstrBlame orders blame entries by cycles descending, then core,
// then instruction ID — a total, deterministic order.
func sortInstrBlame(s []InstrBlame) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Cycles != s[j].Cycles {
			return s[i].Cycles > s[j].Cycles
		}
		if s[i].Core != s[j].Core {
			return s[i].Core < s[j].Core
		}
		return s[i].ID < s[j].ID
	})
}

func sortQueueBlame(s []QueueBlame) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Cycles != s[j].Cycles {
			return s[i].Cycles > s[j].Cycles
		}
		return s[i].Queue < s[j].Queue
	})
}
