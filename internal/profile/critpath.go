package profile

import (
	"repro/internal/ir"
	"repro/internal/sim"
)

// Path is a run's dynamic critical path: the longest chain of dependent
// events, reconstructed from the simulator's issued-instruction stream.
type Path struct {
	// Length is the finish time of the path's terminal event. The path's
	// per-node blames tile [0, Length] exactly, so the blame cycles over
	// Instrs sum to Length.
	Length int64
	// Nodes is the number of events on the path.
	Nodes int
	// Instrs blames each static instruction for its share of the path,
	// sorted by cycles descending (ties: core, then instruction ID).
	Instrs []InstrBlame
	// Queues blames each synchronization-array queue for path cycles whose
	// binding arc crossed it (produce→consume arrival, or a produce waiting
	// for the consumer to free a slot), sorted like Instrs.
	Queues []QueueBlame
}

// InstrBlame is one static instruction's critical-path share.
type InstrBlame struct {
	Core   int
	ID     int
	Label  string // assembler rendering of the instruction
	Cycles int64  // cycles of the path blamed on this instruction
	Count  int64  // dynamic occurrences on the path
}

// QueueBlame is one queue's critical-path share.
type QueueBlame struct {
	Queue  int
	Cycles int64
	Count  int64
}

// Arc kinds: which dependence bound an event's issue (or completion).
const (
	arcNone    = iota // chain head: nothing earlier bound it
	arcProgram        // program order on the same core
	arcData           // register operand from an earlier instruction
	arcArrive         // consume bound by the matched produce's SA arrival
	arcSlot           // produce bound by the consume that freed its slot
)

// node is the per-event dependence record built in one pass over the
// stream: the critical (latest-binding) predecessor and its constraint
// time. Events are indexed by stream position; every predecessor has a
// smaller index (the simulator emits cycle-major, core-minor, so a matched
// produce precedes its consume and a freeing consume precedes the produce
// it unblocks).
type node struct {
	pred  int32
	time  int64
	kind  uint8
	queue int32
}

// buildPath reconstructs the dynamic dependence graph of an event stream
// and extracts its critical path. qcap is the run's effective queue
// capacity (it decides which consume freed the slot a produce filled).
func buildPath(events []sim.Event, threads []*ir.Function, qcap int) *Path {
	p := &Path{}
	if len(events) == 0 {
		return p
	}
	nodes := make([]node, len(events))

	// lastWriter[core][reg] is the index of the event that last wrote the
	// register, or -1.
	lastWriter := make([][]int32, len(threads))
	for i, f := range threads {
		w := make([]int32, int(f.MaxReg())+1)
		for r := range w {
			w[r] = -1
		}
		lastWriter[i] = w
	}
	lastOnCore := make([]int32, len(threads))
	lastWasTerm := make([]bool, len(threads))
	for i := range lastOnCore {
		lastOnCore[i] = -1
	}
	// Per-queue matching state: tokens is the FIFO of producing event
	// indices still in flight (one entry per landed value — an injected
	// dup pushes the same producer twice, a drop pushes nothing); head is
	// its consumption cursor; consumed collects consume events in pop
	// order; pushed counts landed values.
	type qstate struct {
		tokens   []int32
		head     int
		consumed []int32
		pushed   int
	}
	var qs []qstate

	queueOf := func(q int) *qstate {
		for len(qs) <= q {
			qs = append(qs, qstate{})
		}
		return &qs[q]
	}

	for i, e := range events {
		n := node{pred: -1, time: 0, kind: arcNone, queue: -1}
		// consider keeps the latest-binding constraint; on ties the first
		// offered wins, making the choice deterministic.
		consider := func(pred int32, t int64, kind uint8, queue int32) {
			if pred >= 0 && t > n.time {
				n.pred, n.time, n.kind, n.queue = pred, t, kind, queue
			}
		}

		// Program order: the previous event on the core. A terminator
		// binds with its resolution time (mispredict bubbles included);
		// anything else binds with its issue time (same-cycle multi-issue).
		if prev := lastOnCore[e.Core]; prev >= 0 {
			t := events[prev].Issue
			if lastWasTerm[e.Core] {
				t = events[prev].Done
			}
			consider(prev, t, arcProgram, -1)
		}
		// Register operands: stall-on-use means issue waited for each
		// writer's completion.
		for _, r := range e.In.Srcs {
			if w := lastWriter[e.Core][r]; w >= 0 {
				consider(w, events[w].Done, arcData, -1)
			}
		}

		switch e.In.Op {
		case ir.Produce, ir.ProduceSync:
			q := queueOf(e.Queue)
			for k := 0; k < e.Times; k++ {
				// The token occupies slot (pushed mod qcap); if the queue
				// had ever been full here, the consume that freed it is
				// pop number pushed-qcap.
				if qcap > 0 && q.pushed >= qcap {
					if ci := q.pushed - qcap; ci < len(q.consumed) {
						consider(q.consumed[ci], events[q.consumed[ci]].Issue, arcSlot, int32(e.Queue))
					}
				}
				q.tokens = append(q.tokens, int32(i))
				q.pushed++
			}
		case ir.Consume, ir.ConsumeSync:
			q := queueOf(e.Queue)
			if q.head < len(q.tokens) {
				prod := q.tokens[q.head]
				q.head++
				consider(prod, events[prod].Done, arcArrive, int32(e.Queue))
			}
			q.consumed = append(q.consumed, int32(i))
		}

		nodes[i] = n
		lastOnCore[e.Core] = int32(i)
		lastWasTerm[e.Core] = e.In.Op.IsTerminator()
		if e.In.Op.HasDst() {
			lastWriter[e.Core][e.In.Dst] = int32(i)
		}
	}

	// Terminal event: latest completion; ties go to the earliest event.
	terminal := 0
	for i, e := range events {
		if e.Done > events[terminal].Done {
			terminal = i
		}
	}
	p.Length = events[terminal].Done

	// Walk the critical chain backward, tiling [0, Length]: each node is
	// blamed for the span between the running cover and its binding
	// constraint, so the blames sum exactly to Length.
	instrBlame := map[int64]*InstrBlame{}
	queueBlame := map[int32]*QueueBlame{}
	cover := p.Length
	for i := int32(terminal); i >= 0; {
		e, n := &events[i], &nodes[i]
		seg := cover - n.time
		if seg < 0 {
			seg = 0
		} else {
			cover = n.time
		}
		p.Nodes++
		key := int64(e.Core)<<32 | int64(e.In.ID)
		ib := instrBlame[key]
		if ib == nil {
			ib = &InstrBlame{Core: e.Core, ID: e.In.ID, Label: e.In.String()}
			instrBlame[key] = ib
		}
		ib.Cycles += seg
		ib.Count++
		if n.kind == arcArrive || n.kind == arcSlot {
			qb := queueBlame[n.queue]
			if qb == nil {
				qb = &QueueBlame{Queue: int(n.queue)}
				queueBlame[n.queue] = qb
			}
			qb.Cycles += seg
			qb.Count++
		}
		i = n.pred
	}

	for _, b := range instrBlame {
		p.Instrs = append(p.Instrs, *b)
	}
	for _, b := range queueBlame {
		p.Queues = append(p.Queues, *b)
	}
	sortInstrBlame(p.Instrs)
	sortQueueBlame(p.Queues)
	return p
}
