// Package testprog provides the worked examples from the paper (Figures 3,
// 4 and 5) as executable IR fixtures, with the partitions and profile
// weights the text assumes. The MTCG and COCO tests assert the exact
// outcomes the paper derives for them: cut locations, cut costs, removed
// control flow, and shared memory synchronizations.
package testprog

import "repro/internal/ir"

// Prog bundles a fixture: the function, its memory objects, the thread
// partition by instruction, the profile, and named instructions/blocks for
// assertions.
type Prog struct {
	F       *ir.Function
	Objects []ir.MemObject
	// Assign maps each instruction to its thread (0 = T_s, 1 = T_t in the
	// two-thread figures).
	Assign  map[*ir.Instr]int
	Profile *ir.Profile
	Instrs  map[string]*ir.Instr
	Blocks  map[string]*ir.Block
	// Regs names the registers discussed in the paper's text (r1, r2, ...).
	Regs map[string]ir.Reg
}

// Fig3 reconstructs the example of Figure 3. Layout (10 loop iterations):
//
//	B1: A: r1 = p1+1            ; B: br p2 -> B2, B3     (10 executions)
//	B2: C: r2 = p1*3            ; D: br r2-ish -> B2e,B3 (7 executions)
//	B2e: E: r1 = r1+5           ; jump B3                (4 executions)
//	B3: F: r4 = r1*2 [thread 2] ; G: br p3 -> B1, exit   (10 executions)
//	exit: ret r4 [thread 2]
//
// Thread partition: P1 = {A,B,C,D,E,G}, P2 = {F, ret}. The inter-thread
// dependences are the register dependences (A->F) and (E->F) on r1 and the
// transitive control dependence (D->F) (D controls E). The paper's min-cut
// for r1 is the single arc (B3entry -> F) with cost 10; MTCG's naive cut
// {(after A), (after E)} costs 14.
func Fig3() *Prog {
	b := ir.NewBuilder("fig3")
	p1 := b.Param()
	p2 := b.Param()
	p3 := b.Param()

	b2 := b.Block("B2")
	b2e := b.Block("B2e")
	b3 := b.Block("B3")
	exit := b.Block("exit")

	f := b.F
	r1 := f.NewReg()
	// B1 (the entry block plays B1).
	one := b.Const(1)
	b.Op2To(r1, ir.Add, p1, one) // A
	iA := last(b)
	b.Br(p2, b2, b3) // B
	iB := last(b)

	b.SetBlock(b2)
	three := b.Const(3)
	r2 := b.Mul(p1, three) // C
	iC := last(b)
	b.Br(r2, b2e, b3) // D
	iD := last(b)

	b.SetBlock(b2e)
	five := b.Const(5)
	b.Op2To(r1, ir.Add, r1, five) // E
	iE := last(b)
	b.Jump(b3)

	b.SetBlock(b3)
	two := b.Const(2)
	r4 := b.Mul(r1, two) // F
	iF := last(b)
	b.Br(p3, f.Entry(), exit) // G
	iG := last(b)

	b.SetBlock(exit)
	b.Ret(r4)
	iRet := last(b)

	assign := map[*ir.Instr]int{}
	f.Instrs(func(in *ir.Instr) { assign[in] = 0 })
	assign[iF] = 1
	assign[iRet] = 1

	f.SplitCriticalEdges()

	// Profile: 10 iterations; B1->B2 7, B1->B3 3; B2->B2e 4, B2->B3 3;
	// B3->B1 9, B3->exit 1.
	prof := ir.NewProfile()
	wire(prof, f.Entry(), b2, 7)
	wire(prof, f.Entry(), b3, 3)
	wire(prof, b2, b2e, 4)
	wire(prof, b2, b3, 3)
	wire(prof, b2e, b3, 4)
	wire(prof, b3, f.Entry(), 9)
	wire(prof, b3, exit, 1)

	return &Prog{
		F:       f,
		Assign:  assign,
		Profile: prof,
		Instrs: map[string]*ir.Instr{
			"A": iA, "B": iB, "C": iC, "D": iD, "E": iE, "F": iF, "G": iG, "ret": iRet,
		},
		Blocks: map[string]*ir.Block{
			"B1": f.Entry(), "B2": b2, "B2e": b2e, "B3": b3, "exit": exit,
		},
		Regs: map[string]ir.Reg{"r1": r1, "r2": r2, "r4": r4},
	}
}

// Fig4 reconstructs the example of Figure 4: a live-out produced by a loop
// in T_s and consumed by a loop in T_t.
//
//	B1:  r1=0; i=0                       ; jump B2
//	B2:  A: i=i+1; B: r1=r1+i; C: br i<10 -> B2, B3   (loop 1, 10 iters)
//	B3:  D: j=0                          ; jump B4
//	B4:  E: s=s+r1; Jn: j=j+1; F: br j<5 -> B4, exit  (loop 2, 5 iters)
//	exit: ret s
//
// T_s = {entry, A, B, C}; T_t = {D, E, Jn, F, ret}. The only inter-thread
// dependence is (B->E) on r1. MTCG communicates r1 after B inside loop 1
// (10 dynamic communications, and T_t must replicate loop 1); COCO's
// min-cut moves the communication to the loop exit (cost 1), removing loop
// 1 from T_t entirely.
func Fig4() *Prog {
	b := ir.NewBuilder("fig4")
	b2 := b.Block("B2")
	b3 := b.Block("B3")
	b4 := b.Block("B4")
	exit := b.Block("exit")

	f := b.F
	r1 := f.NewReg()
	i := f.NewReg()
	s := f.NewReg()
	j := f.NewReg()

	b.ConstTo(r1, 0)
	b.ConstTo(i, 0)
	b.Jump(b2)

	b.SetBlock(b2)
	one := b.Const(1)
	b.Op2To(i, ir.Add, i, one) // A
	iA := last(b)
	b.Op2To(r1, ir.Add, r1, i) // B
	iB := last(b)
	ten := b.Const(10)
	c1 := b.CmpLT(i, ten)
	b.Br(c1, b2, b3) // C
	iC := last(b)

	b.SetBlock(b3)
	b.ConstTo(j, 0) // D
	iD := last(b)
	b.ConstTo(s, 0) // s is T_t state, initialized in T_t's first block
	b.Jump(b4)

	b.SetBlock(b4)
	b.Op2To(s, ir.Add, s, r1) // E
	iE := last(b)
	one2 := b.Const(1)
	b.Op2To(j, ir.Add, j, one2) // Jn
	five := b.Const(5)
	c2 := b.CmpLT(j, five)
	b.Br(c2, b4, exit) // F
	iF := last(b)

	b.SetBlock(exit)
	b.Ret(s)
	iRet := last(b)

	f.SplitCriticalEdges()

	assign := map[*ir.Instr]int{}
	f.Instrs(func(in *ir.Instr) {
		if in.Block() == f.Entry() || in.Block() == b2 {
			assign[in] = 0
		} else {
			assign[in] = 1
		}
	})

	prof := ir.NewProfile()
	wire(prof, f.Entry(), b2, 1)
	wire(prof, b2, b2, 9)
	wire(prof, b2, b3, 1)
	wire(prof, b3, b4, 1)
	wire(prof, b4, b4, 4)
	wire(prof, b4, exit, 1)

	return &Prog{
		F:       f,
		Assign:  assign,
		Profile: prof,
		Instrs: map[string]*ir.Instr{
			"A": iA, "B": iB, "C": iC, "D": iD, "E": iE, "F": iF, "ret": iRet,
		},
		Blocks: map[string]*ir.Block{
			"B1": f.Entry(), "B2": b2, "B3": b3, "B4": b4, "exit": exit,
		},
		Regs: map[string]ir.Reg{"r1": r1, "i": i, "s": s},
	}
}

// Fig5 reconstructs the example of Figure 5: a hammock whose arms define
// r1, followed by stores in T_s and loads in T_t, with a T_t-only hammock
// at the bottom.
//
//	B1:  A: r9 = p1+1            ; jump B2                (8 executions)
//	B2:  B: br p2 -> B3, B4                               (8)
//	B3:  C: r1 = p1*2 ; D: store y = r1 ; jump B6         (4)
//	B4:  E: r1 = p1+3            ; jump B6                (4)
//	B6:  G: store x = r1         ; jump B7                (8)
//	B7:  F: r1 = r1*2 [T_t]      ; jump B8                (8)
//	B8:  H: br p3 -> B8a, B9 [T_t]                        (8)
//	B8a: I: r5 = p1+4 ; J: r6 = load x [T_t] ; jump B9    (5)
//	B9:  K: r7 = load y [T_t]    ; ret r1, r7 [T_t]       (8)
//
// T_s = {A,B,C,D,E,G}, T_t = {F,H,I,J,K,ret}. Register r1 must be
// communicated from T_s to T_t; placing it in B3 and B4 would make branch B
// relevant to T_t, so the control-flow penalties steer the cut to B6/B7
// (cost 8). The memory dependences (D->K) on y and (G->J) on x share one
// synchronization placed after G (cost 8).
func Fig5() *Prog {
	b := ir.NewBuilder("fig5")
	y := b.Array("y", 1)
	x := b.Array("x", 1)

	p1 := b.Param()
	p2 := b.Param()
	p3 := b.Param()

	b2 := b.Block("B2")
	b3 := b.Block("B3")
	b4 := b.Block("B4")
	b6 := b.Block("B6")
	b7 := b.Block("B7")
	b8 := b.Block("B8")
	b8a := b.Block("B8a")
	b9 := b.Block("B9")

	f := b.F
	r1 := f.NewReg()

	one := b.Const(1)
	r9 := b.Add(p1, one) // A
	iA := last(b)
	_ = r9
	b.Jump(b2)

	b.SetBlock(b2)
	b.Br(p2, b3, b4) // B
	iB := last(b)

	b.SetBlock(b3)
	two := b.Const(2)
	b.Op2To(r1, ir.Mul, p1, two) // C
	iC := last(b)
	ybase := b.AddrOf(y)
	b.Store(r1, ybase, 0) // D
	iD := last(b)
	b.Jump(b6)

	b.SetBlock(b4)
	three := b.Const(3)
	b.Op2To(r1, ir.Add, p1, three) // E
	iE := last(b)
	b.Jump(b6)

	b.SetBlock(b6)
	xbase := b.AddrOf(x)
	b.Store(r1, xbase, 0) // G
	iG := last(b)
	b.Jump(b7)

	b.SetBlock(b7)
	two2 := b.Const(2)
	b.Op2To(r1, ir.Mul, r1, two2) // F (T_t)
	iF := last(b)
	b.Jump(b8)

	b.SetBlock(b8)
	b.Br(p3, b8a, b9) // H (T_t)
	iH := last(b)

	b.SetBlock(b8a)
	four := b.Const(4)
	r5 := b.Add(p1, four) // I
	iI := last(b)
	_ = r5
	xbase2 := b.AddrOf(x)
	r6 := b.Load(xbase2, 0) // J
	iJ := last(b)
	_ = r6
	b.Jump(b9)

	b.SetBlock(b9)
	ybase2 := b.AddrOf(y)
	r7 := b.Load(ybase2, 0) // K
	iK := last(b)
	b.Ret(r1, r7)
	iRet := last(b)

	f.SplitCriticalEdges()

	assign := map[*ir.Instr]int{}
	f.Instrs(func(in *ir.Instr) {
		switch in.Block() {
		case b7, b8, b8a, b9:
			assign[in] = 1
		default:
			assign[in] = 0
		}
	})

	prof := ir.NewProfile()
	wire(prof, f.Entry(), b2, 8)
	wire(prof, b2, b3, 4)
	wire(prof, b2, b4, 4)
	wire(prof, b3, b6, 4)
	wire(prof, b4, b6, 4)
	wire(prof, b6, b7, 8)
	wire(prof, b7, b8, 8)
	wire(prof, b8, b8a, 5)
	wire(prof, b8, b9, 3)
	wire(prof, b8a, b9, 5)

	return &Prog{
		F:       f,
		Objects: b.Objects,
		Assign:  assign,
		Profile: prof,
		Instrs: map[string]*ir.Instr{
			"A": iA, "B": iB, "C": iC, "D": iD, "E": iE, "F": iF,
			"G": iG, "H": iH, "I": iI, "J": iJ, "K": iK, "ret": iRet,
		},
		Blocks: map[string]*ir.Block{
			"B1": f.Entry(), "B2": b2, "B3": b3, "B4": b4, "B6": b6,
			"B7": b7, "B8": b8, "B8a": b8a, "B9": b9,
		},
		Regs: map[string]ir.Reg{"r1": r1},
	}
}

// last returns the most recently emitted instruction of the builder's
// current block.
func last(b *ir.Builder) *ir.Instr {
	ins := b.Cur().Instrs
	return ins[len(ins)-1]
}

// wire records w executions of the conceptual edge from->to in the profile,
// routing through the empty block SplitCriticalEdges may have inserted.
func wire(prof *ir.Profile, from, to *ir.Block, w int64) {
	for _, s := range from.Succs {
		if s == to {
			prof.AddEdge(from, to, w)
			return
		}
		if len(s.Instrs) == 1 && s.Instrs[0].Op == ir.Jump &&
			len(s.Succs) == 1 && s.Succs[0] == to && len(s.Preds) == 1 {
			prof.AddEdge(from, s, w)
			prof.AddEdge(s, to, w)
			return
		}
	}
	panic("testprog: no edge " + from.Name + " -> " + to.Name)
}
